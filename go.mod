module github.com/splicer-pcn/splicer

go 1.22
