package splicer

import (
	"testing"
	"time"
)

func buildSmall(t *testing.T) (*Graph, []Tx) {
	t.Helper()
	g, err := BuildNetwork(NetworkSpec{Seed: 5, Nodes: 60})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := GenerateWorkload(g, WorkloadSpec{Seed: 6, Rate: 40, Duration: 4})
	if err != nil {
		t.Fatal(err)
	}
	return g, trace
}

func TestBuildNetworkValidation(t *testing.T) {
	if _, err := BuildNetwork(NetworkSpec{Nodes: 0}); err == nil {
		t.Fatal("zero nodes accepted")
	}
}

func TestEndToEndPublicAPI(t *testing.T) {
	g, trace := buildSmall(t)
	sim, err := NewSimulation(g, Splicer,
		WithPaths(4),
		WithPathType("EDW"),
		WithScheduler("LIFO"),
		WithUpdateInterval(200*time.Millisecond),
		WithHubCandidates(8),
		WithPlacementOmega(0.5),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.TSR <= 0 || res.TSR > 1 {
		t.Fatalf("TSR %v", res.TSR)
	}
	if len(sim.Hubs()) == 0 {
		t.Fatal("no hubs")
	}
	if _, ok := sim.HubOf(sim.Hubs()[0]); ok {
		t.Fatal("hub has a managing hub")
	}
}

func TestOptionValidation(t *testing.T) {
	g, _ := buildSmall(t)
	cases := []Option{
		WithPaths(0),
		WithPathType("nope"),
		WithScheduler("nope"),
		WithUpdateInterval(0),
		WithHubs(),
		WithPlacementOmega(-1),
		WithHubCandidates(0),
	}
	for i, opt := range cases {
		if _, err := NewSimulation(g.Clone(), Splicer, opt); err == nil {
			t.Fatalf("case %d: invalid option accepted", i)
		}
	}
}

func TestWithHubsOverride(t *testing.T) {
	g, trace := buildSmall(t)
	sim, err := NewSimulation(g, Splicer, WithHubs(2, 9))
	if err != nil {
		t.Fatal(err)
	}
	hubs := sim.Hubs()
	if len(hubs) != 2 || hubs[0] != 2 || hubs[1] != 9 {
		t.Fatalf("hubs = %v", hubs)
	}
	if _, err := sim.Run(trace); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceHubsPublic(t *testing.T) {
	g, _ := buildSmall(t)
	candidates := TopDegreeNodes(g, 6)
	candSet := map[NodeID]bool{}
	for _, c := range candidates {
		candSet[c] = true
	}
	var clients []NodeID
	for i := 0; i < g.NumNodes(); i++ {
		if !candSet[NodeID(i)] {
			clients = append(clients, NodeID(i))
		}
	}
	plan, err := PlaceHubs(g, clients, candidates, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Exact {
		t.Fatal("6 candidates should use the exact solver")
	}
	if len(plan.Hubs) == 0 || len(plan.AssignedHub) != len(clients) {
		t.Fatalf("plan: %+v", plan)
	}
	hubSet := map[NodeID]bool{}
	for _, h := range plan.Hubs {
		hubSet[h] = true
	}
	for _, h := range plan.AssignedHub {
		if !hubSet[h] {
			t.Fatalf("client assigned to unplaced hub %d", h)
		}
	}
	if plan.TotalCost <= 0 {
		t.Fatalf("cost %v", plan.TotalCost)
	}
}

func TestGenerateWorkloadDefaults(t *testing.T) {
	g, err := BuildNetwork(NetworkSpec{Seed: 1, Nodes: 30})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := GenerateWorkload(g, WorkloadSpec{Seed: 2, Rate: 20, Duration: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range trace {
		if d := tx.Deadline - tx.Arrival; d < 3-1e-9 || d > 3+1e-9 {
			t.Fatalf("default timeout not applied: %+v", tx)
		}
	}
}

func TestSchemeComparisonViaPublicAPI(t *testing.T) {
	g, trace := buildSmall(t)
	results := map[string]Result{}
	for _, scheme := range []Scheme{Splicer, Spider, A2L} {
		sim, err := NewSimulation(g.Clone(), scheme)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(trace)
		if err != nil {
			t.Fatal(err)
		}
		results[scheme.String()] = res
	}
	if results["Splicer"].TSR < results["A2L"].TSR {
		t.Fatalf("Splicer TSR %v below A2L %v", results["Splicer"].TSR, results["A2L"].TSR)
	}
}
