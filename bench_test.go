package splicer

// One benchmark per table and figure of the paper's evaluation (§V). Each
// benchmark regenerates its figure/table through the same runner that
// cmd/experiments uses; grids are trimmed so a single iteration stays in
// benchmark budget while preserving the comparison structure. Run the full
// paper-size sweeps with:  go run ./cmd/experiments -run all
//
//	go test -bench=. -benchmem

import (
	"testing"

	"github.com/splicer-pcn/splicer/internal/experiments"
	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/pcn"
	"github.com/splicer-pcn/splicer/internal/routing"
)

// benchSmall trims the small-scale scenario for per-iteration budgets.
func benchSmall() experiments.Scenario {
	s := experiments.SmallScale()
	s.Duration = 4
	s.Rate = 80
	return s
}

// benchLarge keeps the large node count (the point of Fig. 8) with a short
// trace.
func benchLarge() experiments.Scenario {
	s := experiments.LargeScale()
	s.Duration = 2
	s.Rate = 150
	return s
}

func withGrid(b *testing.B, grid *[]float64, vals []float64) {
	b.Helper()
	old := *grid
	*grid = vals
	b.Cleanup(func() { *grid = old })
}

func benchSeries(b *testing.B, f func(experiments.Scenario) ([]experiments.Series, error), s experiments.Scenario) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		series, err := f(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(series) == 0 {
			b.Fatal("no series")
		}
	}
}

func BenchmarkFig7aChannelSizeSmall(b *testing.B) {
	withGrid(b, &experiments.ChannelScaleSweep, []float64{0.5, 2})
	benchSeries(b, experiments.FigChannelSize, benchSmall())
}

func BenchmarkFig7bTxnSizeSmall(b *testing.B) {
	withGrid(b, &experiments.ValueScaleSweep, []float64{1, 4})
	benchSeries(b, experiments.FigTxnSize, benchSmall())
}

func BenchmarkFig7cUpdateTimeSmall(b *testing.B) {
	withGrid(b, &experiments.TauSweepMs, []float64{200, 800})
	benchSeries(b, experiments.FigUpdateTime, benchSmall())
}

func BenchmarkFig7dThroughputSmall(b *testing.B) {
	withGrid(b, &experiments.TauSweepMs, []float64{200, 800})
	benchSeries(b, experiments.FigThroughput, benchSmall())
}

func BenchmarkFig8aChannelSizeLarge(b *testing.B) {
	withGrid(b, &experiments.ChannelScaleSweep, []float64{1})
	benchSeries(b, experiments.FigChannelSize, benchLarge())
}

func BenchmarkFig8bTxnSizeLarge(b *testing.B) {
	withGrid(b, &experiments.ValueScaleSweep, []float64{2})
	benchSeries(b, experiments.FigTxnSize, benchLarge())
}

func BenchmarkFig8cUpdateTimeLarge(b *testing.B) {
	withGrid(b, &experiments.TauSweepMs, []float64{400})
	benchSeries(b, experiments.FigUpdateTime, benchLarge())
}

func BenchmarkFig8dThroughputLarge(b *testing.B) {
	withGrid(b, &experiments.TauSweepMs, []float64{400})
	benchSeries(b, experiments.FigThroughput, benchLarge())
}

func BenchmarkFig9aBalanceCost(b *testing.B) {
	withGrid(b, &experiments.OmegaSweep, []float64{0.05, 0.5})
	benchSeries(b, experiments.FigBalanceCost, benchSmall())
}

func BenchmarkFig9bTradeoff(b *testing.B) {
	withGrid(b, &experiments.OmegaSweep, []float64{0.05, 0.5})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.FigCostTradeoff(benchSmall())
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFig9cHubCountSmall(b *testing.B) {
	withGrid(b, &experiments.OmegaSweep, []float64{0.05, 0.5})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := experiments.FigHubCount(benchSmall())
		if err != nil {
			b.Fatal(err)
		}
		if len(s.Points) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFig9dHubCountLarge(b *testing.B) {
	withGrid(b, &experiments.OmegaSweep, []float64{0.05})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := experiments.FigHubCount(benchLarge())
		if err != nil {
			b.Fatal(err)
		}
		if len(s.Points) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFig9eDelayOverheadSmall(b *testing.B) {
	withGrid(b, &experiments.OmegaSweep, []float64{0.05, 0.5})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.FigDelayOverhead(benchSmall())
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFig9fDelayOverheadLarge(b *testing.B) {
	withGrid(b, &experiments.OmegaSweep, []float64{0.05})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.FigDelayOverhead(benchLarge())
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkTableIMatrix(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := experiments.TableI()
		if len(t.Rows) != 6 {
			b.Fatal("bad matrix")
		}
	}
}

func BenchmarkTableIIPathType(b *testing.B) {
	s := benchSmall()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableII(s, s, experiments.TableIIOptions{
			PathTypes:   []routing.PathType{routing.EDW, routing.EDS},
			PathNumbers: []int{5},
			Schedulers:  []string{"LIFO"},
			SkipLarge:   true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("rows: %d", len(rows))
		}
	}
}

func BenchmarkTableIIPathNumber(b *testing.B) {
	s := benchSmall()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableII(s, s, experiments.TableIIOptions{
			PathTypes:   []routing.PathType{routing.EDW},
			PathNumbers: []int{1, 5},
			Schedulers:  []string{"LIFO"},
			SkipLarge:   true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("rows: %d", len(rows))
		}
	}
}

func BenchmarkTableIIScheduler(b *testing.B) {
	s := benchSmall()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableII(s, s, experiments.TableIIOptions{
			PathTypes:   []routing.PathType{routing.EDW},
			PathNumbers: []int{5},
			Schedulers:  []string{"LIFO", "FIFO"},
			SkipLarge:   true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("rows: %d", len(rows))
		}
	}
}

// BenchmarkFigScale is the scaling panel trimmed to one mid-size point; the
// full 2k-10k grid runs via  go run ./cmd/experiments -run figscale.
func BenchmarkFigScale(b *testing.B) {
	withGrid(b, &experiments.NodeCountSweep, []float64{400})
	s := experiments.Scale()
	s.Rate = 60
	s.Duration = 2
	benchSeries(b, experiments.FigScale, s)
}

// Micro-benchmarks of the core machinery (placement solvers, the
// path-computation layer and one simulation step) for the ablation story in
// DESIGN.md.

// BenchmarkPathFinder measures repeated shortest-path queries on one reused
// finder — the simulator's hot planning path after the PR-2 rewrite.
func BenchmarkPathFinder(b *testing.B) {
	g, err := BuildNetwork(NetworkSpec{Seed: 6, Nodes: 2000})
	if err != nil {
		b.Fatal(err)
	}
	pf := graph.NewPathFinder(g)
	n := g.NumNodes()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src := graph.NodeID(i % n)
		dst := graph.NodeID((i + n/2) % n)
		if _, ok := pf.ShortestPath(src, dst, graph.UnitWeight); !ok {
			b.Fatalf("%d->%d unreachable", src, dst)
		}
	}
}

// BenchmarkRouteCache measures the per-payment cost of a cached route
// lookup — the steady-state planning cost for repeat sender/recipient pairs.
func BenchmarkRouteCache(b *testing.B) {
	g, err := BuildNetwork(NetworkSpec{Seed: 7, Nodes: 500})
	if err != nil {
		b.Fatal(err)
	}
	c := pcn.NewRouteCache()
	pf := graph.NewPathFinder(g)
	n := g.NumNodes()
	keys := make([]pcn.RouteKey, 256)
	for i := range keys {
		src := graph.NodeID(i % n)
		dst := graph.NodeID((i + n/2) % n)
		keys[i] = pcn.RouteKey{Src: src, Dst: dst, Type: routing.KSP, K: 1}
		p, ok := pf.ShortestPath(src, dst, graph.UnitWeight)
		if !ok {
			b.Fatalf("%d->%d unreachable", src, dst)
		}
		c.Put(keys[i], []graph.Path{p})
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(keys[i%len(keys)]); !ok {
			b.Fatal("unexpected miss")
		}
	}
}

func BenchmarkPlacementExact10(b *testing.B) {
	g, err := BuildNetwork(NetworkSpec{Seed: 1, Nodes: 100})
	if err != nil {
		b.Fatal(err)
	}
	cands := TopDegreeNodes(g, 10)
	candSet := map[NodeID]bool{}
	for _, c := range cands {
		candSet[c] = true
	}
	var clients []NodeID
	for i := 0; i < g.NumNodes(); i++ {
		if !candSet[NodeID(i)] {
			clients = append(clients, NodeID(i))
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := PlaceHubs(g, clients, cands, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlacementApprox24(b *testing.B) {
	g, err := BuildNetwork(NetworkSpec{Seed: 2, Nodes: 1000})
	if err != nil {
		b.Fatal(err)
	}
	cands := TopDegreeNodes(g, 24)
	candSet := map[NodeID]bool{}
	for _, c := range cands {
		candSet[c] = true
	}
	var clients []NodeID
	for i := 0; i < g.NumNodes(); i++ {
		if !candSet[NodeID(i)] {
			clients = append(clients, NodeID(i))
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := PlaceHubs(g, clients, cands, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulationSplicer100(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := BuildNetwork(NetworkSpec{Seed: 3, Nodes: 100})
		if err != nil {
			b.Fatal(err)
		}
		trace, err := GenerateWorkload(g, WorkloadSpec{Seed: 4, Rate: 100, Duration: 4})
		if err != nil {
			b.Fatal(err)
		}
		sim, err := NewSimulation(g, Splicer)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(trace); err != nil {
			b.Fatal(err)
		}
	}
}
