package splicer

import (
	"fmt"

	"github.com/splicer-pcn/splicer/internal/dynamics"
	"github.com/splicer-pcn/splicer/internal/pcn"
	"github.com/splicer-pcn/splicer/internal/rng"
)

// DynamicsSpec configures a dynamic-network simulation: instead of replaying
// a pre-generated trace over a frozen topology, the network evolves — nodes
// join and leave, channels open, close, deplete and get topped up — while a
// diurnally modulated, hotspot-drifting demand process generates payments
// against whatever the network looks like at each instant.
type DynamicsSpec struct {
	// Seed drives every stochastic component of the dynamics (timeline,
	// demand, drift); equal seeds give byte-identical runs.
	Seed uint64
	// Horizon is the evolution length in seconds.
	Horizon float64
	// ChurnRate is the rate (events/sec) of each structural process: node
	// joins, node leaves, channel opens, channel closes, channel top-ups.
	// 0 keeps the topology static (demand still varies).
	ChurnRate float64
	// Rate is the base aggregate payment arrival rate (tx/sec).
	Rate float64
	// ValueScale, ZipfSkew, Timeout mirror WorkloadSpec (defaults 1 / 0.8 / 3).
	ValueScale float64
	ZipfSkew   float64
	Timeout    float64
	// ChannelScale sizes dynamically opened channels (default 1).
	ChannelScale float64
	// DiurnalAmplitude modulates the arrival rate sinusoidally over the
	// horizon, in [0,1); 0 keeps the rate constant.
	DiurnalAmplitude float64
	// HotspotDriftInterval reshuffles which nodes are the Zipf-popular
	// endpoints every interval; 0 keeps the popularity ranking fixed.
	HotspotDriftInterval float64
	// RebalanceInterval repairs the most depleted channels every interval;
	// 0 disables depletion repair.
	RebalanceInterval float64
	// ReplaceInterval re-runs Splicer's hub placement online every interval,
	// turning placement into an online algorithm (0 keeps the initial
	// placement static). Only valid with the Splicer scheme.
	ReplaceInterval float64
}

// config maps the spec onto the internal dynamics configuration.
func (spec DynamicsSpec) config() (dynamics.Config, error) {
	if spec.Horizon <= 0 {
		return dynamics.Config{}, fmt.Errorf("splicer: Horizon must be positive")
	}
	cfg := dynamics.NewConfig(spec.Horizon)
	cfg.JoinRate = spec.ChurnRate
	cfg.LeaveRate = spec.ChurnRate
	cfg.OpenRate = spec.ChurnRate
	cfg.CloseRate = spec.ChurnRate
	cfg.TopUpRate = spec.ChurnRate
	if spec.Rate > 0 {
		cfg.Rate = spec.Rate
	}
	if spec.ValueScale > 0 {
		cfg.ValueScale = spec.ValueScale
	}
	if spec.ZipfSkew > 0 {
		cfg.ZipfSkew = spec.ZipfSkew
	}
	if spec.Timeout > 0 {
		cfg.Timeout = spec.Timeout
	}
	if spec.ChannelScale > 0 {
		cfg.ChannelScale = spec.ChannelScale
	}
	// Zero uniformly means "off" for the optional processes — no hidden
	// defaults, matching the field docs.
	cfg.DiurnalAmplitude = spec.DiurnalAmplitude
	cfg.HotspotDriftInterval = spec.HotspotDriftInterval
	cfg.RebalanceInterval = spec.RebalanceInterval
	cfg.ReplaceInterval = spec.ReplaceInterval
	return cfg, nil
}

// DynamicSimulation is a configured dynamic-network run.
type DynamicSimulation struct {
	net    *pcn.Network
	driver *dynamics.Driver
}

// NewDynamicSimulation wires a scheme over the graph and attaches the
// dynamic-network driver. Like NewSimulation, it takes ownership of the
// graph. Options apply to the underlying scheme configuration.
func NewDynamicSimulation(g *Graph, scheme Scheme, spec DynamicsSpec, opts ...Option) (*DynamicSimulation, error) {
	dynCfg, err := spec.config()
	if err != nil {
		return nil, err
	}
	cfg := pcn.NewConfig(scheme)
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	net, err := pcn.NewNetwork(g, cfg)
	if err != nil {
		return nil, err
	}
	driver, err := dynamics.NewDriver(net, rng.New(spec.Seed), dynCfg)
	if err != nil {
		return nil, err
	}
	return &DynamicSimulation{net: net, driver: driver}, nil
}

// Run executes the dynamic simulation and returns the evaluation metrics.
func (s *DynamicSimulation) Run() (Result, error) {
	return s.driver.Run()
}

// Hubs returns the hub set currently in effect (it changes over time when
// online re-placement is enabled).
func (s *DynamicSimulation) Hubs() []NodeID { return s.net.Hubs() }

// Replacements reports how many online re-placements ran and how many
// failed (a failed re-placement keeps the previous hub set).
func (s *DynamicSimulation) Replacements() (runs, failed int) {
	return s.driver.ReplaceStats()
}
