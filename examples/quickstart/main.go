// Quickstart: build a Lightning-like network, let Splicer place hubs and
// route a payment workload, and print the evaluation metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	splicer "github.com/splicer-pcn/splicer"
)

func main() {
	// A 100-node small-world channel graph with heavy-tailed channel sizes
	// calibrated to the Lightning Network dataset (min 10 / median 152 /
	// mean 403 tokens).
	g, err := splicer.BuildNetwork(splicer.NetworkSpec{Seed: 42, Nodes: 100})
	if err != nil {
		log.Fatal(err)
	}

	// Eight seconds of Poisson payments at 120 tx/s with credit-card-like
	// values and a deadlock-inducing circulation component.
	trace, err := splicer.GenerateWorkload(g, splicer.WorkloadSpec{
		Seed: 43, Rate: 120, Duration: 8,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Splicer with the paper's defaults: k = 5 edge-disjoint widest paths,
	// LIFO queues, τ = 200 ms price updates, hub placement by the
	// balance-cost optimizer.
	sim, err := splicer.NewSimulation(g, splicer.Splicer)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(trace)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("hubs placed:           %v\n", sim.Hubs())
	fmt.Printf("transactions:          %d generated, %d completed\n", res.Generated, res.Completed)
	fmt.Printf("success ratio (TSR):   %.2f%%\n", 100*res.TSR)
	fmt.Printf("normalized throughput: %.2f%%\n", 100*res.NormalizedThroughput)
	fmt.Printf("mean payment delay:    %.1f ms\n", 1000*res.MeanDelay)
}
