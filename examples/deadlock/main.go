// Deadlock demo: reproduces the local-deadlock scenario of the paper's
// Fig. 1(b/c). Three parties pay each other at imbalanced rates (A→B at 1,
// C→B at 2, B→A at 2 tokens/sec). Under naive shortest-path routing the
// intermediary's channel drains — funds converge at one end and payments
// that SHOULD be routable start failing. Splicer's imbalance prices throttle
// the draining direction and keep the network nearly deadlock-free.
//
//	go run ./examples/deadlock
package main

import (
	"fmt"
	"log"

	splicer "github.com/splicer-pcn/splicer"
)

func main() {
	run := func(scheme splicer.Scheme) splicer.Result {
		// A tight-channel network (20% of Lightning scale) where the
		// circulation pattern dominates the workload: the exact conditions
		// of §II-B.
		g, err := splicer.BuildNetwork(splicer.NetworkSpec{
			Seed: 7, Nodes: 50, ChannelScale: 0.2,
		})
		if err != nil {
			log.Fatal(err)
		}
		trace, err := splicer.GenerateWorkload(g, splicer.WorkloadSpec{
			Seed:                8,
			Rate:                60,
			Duration:            6,
			ValueScale:          1.5,
			CirculationFraction: 0.5, // half the trace is the Fig. 1(b) cycle
		})
		if err != nil {
			log.Fatal(err)
		}
		sim, err := splicer.NewSimulation(g, scheme)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(trace)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	naive := run(splicer.ShortestPath)
	spl := run(splicer.Splicer)

	fmt.Println("workload: 50% circulation at the imbalanced Fig. 1(b) rates, tight channels")
	fmt.Printf("%-22s %10s %12s %18s\n", "scheme", "TSR", "throughput", "drained channels")
	fmt.Printf("%-22s %9.2f%% %11.2f%% %18d\n",
		"naive shortest-path", 100*naive.TSR, 100*naive.NormalizedThroughput, naive.DeadlockedChannels)
	fmt.Printf("%-22s %9.2f%% %11.2f%% %18d\n",
		"Splicer", 100*spl.TSR, 100*spl.NormalizedThroughput, spl.DeadlockedChannels)
	fmt.Println()
	if spl.TSR > naive.TSR {
		fmt.Println("Splicer's rate-based routing kept the circulation from deadlocking the network.")
	} else {
		fmt.Println("unexpected: Splicer did not improve on naive routing — check parameters")
	}
}
