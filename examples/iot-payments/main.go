// IoT payments: the paper's motivating large-scale low-power scenario.
// Thousands of lightweight clients (mobile/IoT devices) outsource route
// computation to a handful of optimally placed hubs; the example prints the
// placement, the per-hub client load, and the routing performance against
// Spider-style source routing, where every constrained device must compute
// its own routes over the full topology.
//
//	go run ./examples/iot-payments
package main

import (
	"fmt"
	"log"

	splicer "github.com/splicer-pcn/splicer"
)

func main() {
	const nodes = 2000

	build := func() (*splicer.Graph, []splicer.Tx) {
		g, err := splicer.BuildNetwork(splicer.NetworkSpec{Seed: 11, Nodes: nodes})
		if err != nil {
			log.Fatal(err)
		}
		trace, err := splicer.GenerateWorkload(g, splicer.WorkloadSpec{
			Seed:       12,
			Rate:       250,
			Duration:   6,
			ValueScale: 0.5, // IoT micro-payments
			ZipfSkew:   1.0, // a few gateways talk a lot
		})
		if err != nil {
			log.Fatal(err)
		}
		return g, trace
	}

	// Splicer: hubs placed by the balance-cost optimizer over 20
	// candidates.
	g, trace := build()
	sim, err := splicer.NewSimulation(g, splicer.Splicer,
		splicer.WithHubCandidates(20),
		splicer.WithPlacementOmega(0.05),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(trace)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("network: %d IoT clients, %d channels\n", nodes, g.NumEdges())
	hubs := sim.Hubs()
	fmt.Printf("hubs placed: %v\n", hubs)
	load := map[splicer.NodeID]int{}
	for i := 0; i < nodes; i++ {
		if h, ok := sim.HubOf(splicer.NodeID(i)); ok {
			load[h]++
		}
	}
	for _, h := range hubs {
		fmt.Printf("  hub %4d manages %4d clients\n", h, load[h])
	}
	fmt.Printf("Splicer: TSR %.2f%%, throughput %.2f%%, mean delay %.0f ms\n",
		100*res.TSR, 100*res.NormalizedThroughput, 1000*res.MeanDelay)

	// Source routing on the same network/trace: each device computes.
	g2, trace2 := build()
	spider, err := splicer.NewSimulation(g2, splicer.Spider)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := spider.Run(trace2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Spider:  TSR %.2f%%, throughput %.2f%%, mean delay %.0f ms\n",
		100*res2.TSR, 100*res2.NormalizedThroughput, 1000*res2.MeanDelay)
}
