// Placement tradeoff: sweeps the weight ω between management cost (hubs
// close to clients) and synchronization cost (hubs close to each other) and
// prints the Fig. 9(b)-style tradeoff curve with the number of smooth nodes
// the optimizer deploys at each point.
//
//	go run ./examples/placement-tradeoff
package main

import (
	"fmt"
	"log"

	splicer "github.com/splicer-pcn/splicer"
)

func main() {
	g, err := splicer.BuildNetwork(splicer.NetworkSpec{Seed: 21, Nodes: 100})
	if err != nil {
		log.Fatal(err)
	}
	candidates := splicer.TopDegreeNodes(g, 10)
	candSet := map[splicer.NodeID]bool{}
	for _, c := range candidates {
		candSet[c] = true
	}
	var clients []splicer.NodeID
	for i := 0; i < g.NumNodes(); i++ {
		if !candSet[splicer.NodeID(i)] {
			clients = append(clients, splicer.NodeID(i))
		}
	}

	fmt.Println("omega      hubs   mgmt-cost   sync-cost   balance-cost")
	for _, omega := range []float64{0.01, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 1.28, 2.56} {
		plan, err := splicer.PlaceHubs(g, clients, candidates, omega)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8.2f %6d %11.3f %11.3f %14.3f\n",
			omega, len(plan.Hubs), plan.ManagementCost, plan.SyncCost, plan.TotalCost)
	}
	fmt.Println()
	fmt.Println("small omega  -> management-dominated: many hubs near clients")
	fmt.Println("large omega  -> synchronization-dominated: few, central hubs")
}
