// Churn demo: a payment channel network losing and gaining nodes while
// payments flow. Splicer's hub placement is computed once at startup — so
// when churn kills a hub, every client it managed is orphaned and their
// payments start failing. Re-running placement online (every second here)
// re-homes the orphans onto surviving hubs and recovers most of the lost
// success ratio.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"

	splicer "github.com/splicer-pcn/splicer"
)

func main() {
	run := func(replaceEvery float64) splicer.Result {
		g, err := splicer.BuildNetwork(splicer.NetworkSpec{
			Seed: 7, Nodes: 80,
		})
		if err != nil {
			log.Fatal(err)
		}
		sim, err := splicer.NewDynamicSimulation(g, splicer.Splicer, splicer.DynamicsSpec{
			Seed:    9,
			Horizon: 8,
			// Aggressive churn: ~2 joins, 2 leaves, 2 channel opens, 2 closes
			// and 2 top-ups per second on an 80-node network — over the run,
			// a sizable fraction of the network turns over.
			ChurnRate:         2,
			Rate:              80,
			RebalanceInterval: 1,
			ReplaceInterval:   replaceEvery,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	static := run(0)
	online := run(1)

	fmt.Println("workload: 8 s of heavy churn (nodes join/leave, channels open/close) under live demand")
	fmt.Printf("%-28s %10s %12s %12s\n", "placement", "TSR", "throughput", "delay")
	fmt.Printf("%-28s %9.2f%% %11.2f%% %10.3f s\n",
		"static (startup only)", 100*static.TSR, 100*static.NormalizedThroughput, static.MeanDelay)
	fmt.Printf("%-28s %9.2f%% %11.2f%% %10.3f s\n",
		"online (re-place every 1s)", 100*online.TSR, 100*online.NormalizedThroughput, online.MeanDelay)
	fmt.Println()
	if online.TSR > static.TSR {
		fmt.Println("online re-placement re-homed the orphaned clients and recovered the success ratio.")
	} else {
		fmt.Println("unexpected: online re-placement did not improve on static — check parameters")
	}
}
