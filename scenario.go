package splicer

import (
	"fmt"

	"github.com/splicer-pcn/splicer/internal/scenario"
)

// ScenarioSpec is a declarative simulation cell: topology × workload ×
// optional dynamics × scheme as plain data. Load one from JSON with
// LoadScenarioSpec (see cmd/scenarios and DESIGN.md "Scenario engine" for
// the schema) or construct it literally.
type ScenarioSpec = scenario.Spec

// ScenarioTable is a rendered scenario result table (CSV/Markdown).
type ScenarioTable = scenario.Table

// LoadScenarioSpec reads and validates a JSON scenario spec file.
func LoadScenarioSpec(path string) (ScenarioSpec, error) {
	return scenario.LoadSpec(path)
}

// RunScenarioSpec executes the spec with its own scheme and returns the
// evaluation metrics. The run asserts the conservation-of-funds invariant
// at the end.
func RunScenarioSpec(spec ScenarioSpec) (Result, error) {
	return spec.Run()
}

// ScenarioNames lists the registered named scenarios (the paper's figures
// and tables plus the standalone scenarios), sorted.
func ScenarioNames() []string {
	return scenario.Names()
}

// RunNamedScenario runs a registered scenario by name on `workers` sweep
// workers (0/1 serial, -1 all cores; results are identical for any value)
// and returns its rendered table.
func RunNamedScenario(name string, workers int) (ScenarioTable, error) {
	e, ok := scenario.Lookup(name)
	if !ok {
		return ScenarioTable{}, fmt.Errorf("splicer: unknown scenario %q (see ScenarioNames)", name)
	}
	return e.Run(scenario.RunOptions{Workers: workers})
}
