// Command experiments regenerates the paper's tables and figures. Each
// figure becomes a CSV under -out (default results/) plus a markdown table
// on stdout.
//
//	experiments -run all -parallel     # everything, sweep grids on all cores
//	experiments -run fig7a,fig9b       # selected experiments
//	experiments -run small -seeds 5    # small-scale panels, 5-seed means
//	experiments -list
//
// -parallel (or -workers N) fans each figure's scheme × x × seed grid out
// over the internal/sweep worker pool; results are byte-identical to the
// serial run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"github.com/splicer-pcn/splicer/internal/experiments"
)

type runner func() (experiments.Table, error)

func main() {
	var (
		runArg   = flag.String("run", "", "comma-separated experiment ids, or 'all', 'small', 'large'")
		outDir   = flag.String("out", "results", "output directory for CSV files")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		parallel = flag.Bool("parallel", false, "run sweep grids on all cores (identical results, much faster)")
		workers  = flag.Int("workers", 0, "explicit sweep worker count; a value > 0 takes precedence over -parallel")
		seeds    = flag.Int("seeds", 1, "seeds per sweep cell; figure points report the across-seed mean")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile (post-run) to this file")
	)
	flag.Parse()

	// Profile teardown must run on the error paths too (they os.Exit, which
	// skips defers): every exit goes through fail()/finish().
	stopProfiles := func() {}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		stopProfiles = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if *memProf != "" {
		prev := stopProfiles
		stopProfiles = func() {
			prev()
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}
	}
	defer stopProfiles()
	fail := func(args ...interface{}) {
		fmt.Fprintln(os.Stderr, args...)
		stopProfiles()
		os.Exit(1)
	}

	small := experiments.SmallScale()
	large := experiments.LargeScale()
	scale := experiments.Scale()
	churn := experiments.Churn()
	for _, scen := range []*experiments.Scenario{&small, &large, &scale, &churn} {
		switch {
		case *workers > 0:
			scen.Workers = *workers
		case *parallel:
			scen.Workers = -1 // all cores
		}
		if *seeds > 1 {
			for i := 0; i < *seeds; i++ {
				scen.Seeds = append(scen.Seeds, scen.Seed+uint64(i))
			}
		}
	}

	seriesTable := func(title, x string, f func(experiments.Scenario) ([]experiments.Series, error), scen experiments.Scenario) runner {
		return func() (experiments.Table, error) {
			s, err := f(scen)
			if err != nil {
				return experiments.Table{}, err
			}
			return experiments.SeriesTable(title, x, s), nil
		}
	}

	runners := map[string]runner{
		"fig7a":    seriesTable("Fig 7(a): TSR vs channel size (small)", "channel_scale", experiments.FigChannelSize, small),
		"fig7b":    seriesTable("Fig 7(b): TSR vs transaction size (small)", "value_scale", experiments.FigTxnSize, small),
		"fig7c":    seriesTable("Fig 7(c): TSR vs update time (small)", "tau_ms", experiments.FigUpdateTime, small),
		"fig7d":    seriesTable("Fig 7(d): normalized throughput vs update time (small)", "tau_ms", experiments.FigThroughput, small),
		"fig8a":    seriesTable("Fig 8(a): TSR vs channel size (large)", "channel_scale", experiments.FigChannelSize, large),
		"fig8b":    seriesTable("Fig 8(b): TSR vs transaction size (large)", "value_scale", experiments.FigTxnSize, large),
		"fig8c":    seriesTable("Fig 8(c): TSR vs update time (large)", "tau_ms", experiments.FigUpdateTime, large),
		"fig8d":    seriesTable("Fig 8(d): normalized throughput vs update time (large)", "tau_ms", experiments.FigThroughput, large),
		"figscale": seriesTable("Scaling: normalized throughput vs |V| (2k-10k nodes)", "nodes", experiments.FigScale, scale),
		"figchurn": func() (experiments.Table, error) {
			tsr, delay, err := experiments.FigChurn(churn)
			if err != nil {
				return experiments.Table{}, err
			}
			return experiments.ChurnTable("Churn: TSR and delay vs churn rate (dynamic network)", tsr, delay), nil
		},
		"fig9a": seriesTable("Fig 9(a): balance cost vs omega (small)", "omega", experiments.FigBalanceCost, small),
		"fig9b": func() (experiments.Table, error) {
			pts, err := experiments.FigCostTradeoff(small)
			if err != nil {
				return experiments.Table{}, err
			}
			return experiments.TradeoffTable("Fig 9(b): cost tradeoff (small)", pts), nil
		},
		"fig9c": func() (experiments.Table, error) {
			s, err := experiments.FigHubCount(small)
			if err != nil {
				return experiments.Table{}, err
			}
			return experiments.SeriesTable("Fig 9(c): smooth nodes vs omega (small)", "omega", []experiments.Series{s}), nil
		},
		"fig9d": func() (experiments.Table, error) {
			s, err := experiments.FigHubCount(large)
			if err != nil {
				return experiments.Table{}, err
			}
			return experiments.SeriesTable("Fig 9(d): smooth nodes vs omega (large)", "omega", []experiments.Series{s}), nil
		},
		"fig9e": func() (experiments.Table, error) {
			pts, err := experiments.FigDelayOverhead(small)
			if err != nil {
				return experiments.Table{}, err
			}
			return experiments.DelayOverheadTable("Fig 9(e): delay vs overhead (small)", pts), nil
		},
		"fig9f": func() (experiments.Table, error) {
			pts, err := experiments.FigDelayOverhead(large)
			if err != nil {
				return experiments.Table{}, err
			}
			return experiments.DelayOverheadTable("Fig 9(f): delay vs overhead (large)", pts), nil
		},
		"table1": func() (experiments.Table, error) { return experiments.TableI(), nil },
		"table2": func() (experiments.Table, error) {
			rows, err := experiments.TableII(small, large, experiments.TableIIOptions{})
			if err != nil {
				return experiments.Table{}, err
			}
			return experiments.TableIITable(rows), nil
		},
	}

	ids := make([]string, 0, len(runners))
	for id := range runners {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	if *list || *runArg == "" {
		fmt.Println("available experiments:")
		for _, id := range ids {
			fmt.Println(" ", id)
		}
		if *runArg == "" {
			fmt.Println("\nuse -run all | small | large | <id,id,...>")
		}
		return
	}

	var selected []string
	switch *runArg {
	case "all":
		selected = ids
	case "small":
		for _, id := range ids {
			if strings.HasPrefix(id, "fig7") || id == "fig9a" || id == "fig9b" || id == "fig9c" || id == "fig9e" || id == "table1" {
				selected = append(selected, id)
			}
		}
	case "large":
		for _, id := range ids {
			if strings.HasPrefix(id, "fig8") || id == "fig9d" || id == "fig9f" {
				selected = append(selected, id)
			}
		}
	default:
		for _, id := range strings.Split(*runArg, ",") {
			id = strings.TrimSpace(id)
			if _, ok := runners[id]; !ok {
				fail(fmt.Sprintf("experiments: unknown id %q (use -list)", id))
			}
			selected = append(selected, id)
		}
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fail("experiments:", err)
	}
	for _, id := range selected {
		fmt.Fprintf(os.Stderr, "== running %s...\n", id)
		table, err := runners[id]()
		if err != nil {
			fail(fmt.Sprintf("experiments: %s: %v", id, err))
		}
		path := filepath.Join(*outDir, id+".csv")
		if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
			fail("experiments:", err)
		}
		fmt.Println(table.Markdown())
	}
}
