// Command scenarios is the front end of the declarative scenario engine:
// list the registered scenarios, describe their specs, run them (or a user
// JSON spec file), and diff regenerated output against golden CSVs.
//
//	scenarios list
//	scenarios describe fig7c
//	scenarios run figchurn -out results -workers -1
//	scenarios run -spec examples/scenarios/bursty-erdos-renyi.json
//	scenarios run all -out results
//	scenarios diff fig7c -golden internal/scenario/testdata/golden/fig7c.csv
//
// Registered scenarios reproduce the paper's figures and tables CSV-for-CSV
// (cmd/experiments renders the same registry entries); a JSON spec file
// turns a new topology × workload × dynamics × scheme combination into a
// run without writing Go.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/splicer-pcn/splicer/internal/scenario"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = list()
	case "describe":
		err = describe(os.Args[2:])
	case "run":
		err = run(os.Args[2:])
	case "diff":
		err = diff(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		usage()
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "scenarios:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  scenarios list
  scenarios describe <name>
  scenarios run <name>[,<name>...]|all [-out dir] [-workers N] [-seeds N] [-max-mem-mb M]
  scenarios run -spec file.json [-out dir]
  scenarios diff <name> [-golden file.csv] [-out dir]`)
}

func list() error {
	fmt.Println("registered scenarios:")
	for _, name := range scenario.Names() {
		e, _ := scenario.Lookup(name)
		fmt.Printf("  %-16s %s\n", name, e.Description)
	}
	fmt.Println("\nbuiltin assets (for spec files):", strings.Join(scenario.BuiltinAssets(), ", "))
	return nil
}

// describeEntry is the JSON shape of `scenarios describe`.
type describeEntry struct {
	Name      string          `json:"name"`
	Title     string          `json:"title"`
	Kind      string          `json:"kind"`
	Schemes   []string        `json:"schemes,omitempty"`
	Axis      *scenario.Axis  `json:"axis,omitempty"`
	Metric    scenario.Metric `json:"metric,omitempty"`
	Omegas    []float64       `json:"omegas,omitempty"`
	Spec      json.RawMessage `json:"spec,omitempty"`
	SpecLarge json.RawMessage `json:"spec_large,omitempty"`
	// Attack summarizes an armed adversarial injector: the attack type, the
	// swept intensity grid and the per-kind knobs (hold time, target region,
	// recovery interval) at a glance, without digging through the spec JSON.
	Attack *attackInfo `json:"attack,omitempty"`
	// Footprint sizes the entry's largest cell (worst swept axis value), so
	// 100k-node runs can be vetted against available memory up front.
	Footprint *footprintInfo `json:"footprint,omitempty"`
}

type attackInfo struct {
	Type           string    `json:"type"`
	Intensities    []float64 `json:"intensities,omitempty"`
	Start          float64   `json:"start"`
	Duration       float64   `json:"duration,omitempty"`
	Attackers      int       `json:"attackers,omitempty"`
	HoldTime       float64   `json:"hold_time,omitempty"`
	Value          float64   `json:"value,omitempty"`
	RegionFraction float64   `json:"region_fraction,omitempty"`
	RecoverAfter   float64   `json:"recover_after,omitempty"`
}

type footprintInfo struct {
	Nodes    int   `json:"nodes"`
	Edges    int   `json:"edges"`
	ApproxMB int64 `json:"approx_mb"`
}

func kindName(k scenario.Kind) string {
	switch k {
	case scenario.KindFigure:
		return "figure-sweep"
	case scenario.KindChurn:
		return "churn-panel"
	case scenario.KindBalanceCost, scenario.KindTradeoff, scenario.KindHubCount, scenario.KindDelayOverhead:
		return "placement-panel"
	case scenario.KindStatic:
		return "static-table"
	case scenario.KindRoutingChoices:
		return "routing-choices"
	case scenario.KindSchemeTable:
		return "scheme-table"
	case scenario.KindAttack:
		return "attack-panel"
	case scenario.KindRetry:
		return "retry-panel"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

func describe(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("describe takes exactly one scenario name")
	}
	e, ok := scenario.Lookup(args[0])
	if !ok {
		return fmt.Errorf("unknown scenario %q (use list)", args[0])
	}
	out := describeEntry{
		Name: e.Name, Title: e.Title, Kind: kindName(e.Kind),
		Schemes: e.Schemes, Metric: e.Metric, Omegas: e.Omegas,
	}
	if len(e.Axis.Values) > 0 {
		axis := e.Axis
		out.Axis = &axis
	}
	if e.Kind != scenario.KindStatic {
		spec, err := e.Base.JSON()
		if err != nil {
			return err
		}
		out.Spec = spec
	}
	if e.BaseLarge != nil {
		spec, err := e.BaseLarge.JSON()
		if err != nil {
			return err
		}
		out.SpecLarge = spec
	}
	if a := e.Base.Attack; a != nil {
		out.Attack = &attackInfo{
			Type: a.Type, Intensities: e.Axis.Values,
			Start: a.Start, Duration: a.Duration,
			Attackers: a.Attackers, HoldTime: a.HoldTime, Value: a.Value,
			RegionFraction: a.RegionFraction, RecoverAfter: a.RecoverAfter,
		}
	}
	if fp, err := e.MaxFootprint(); err == nil && fp.ApproxBytes > 0 {
		out.Footprint = &footprintInfo{Nodes: fp.Nodes, Edges: fp.Edges, ApproxMB: fp.ApproxMB()}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	outDir := fs.String("out", "results", "output directory for CSV files")
	workers := fs.Int("workers", 0, "sweep workers: 0/1 serial, N parallel, -1 all cores (identical results)")
	seeds := fs.Int("seeds", 1, "seeds per sweep cell; points report the across-seed mean")
	specPath := fs.String("spec", "", "run a JSON spec file instead of a registered scenario")
	maxMemMB := fs.Int64("max-mem-mb", 0, "fail fast when a run's estimated footprint exceeds this budget (MiB); 0 = available memory, negative = no gate")
	// Allow `run <name> -flags` and `run -flags <name>`.
	var names []string
	rest := args
	if len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
		names = strings.Split(rest[0], ",")
		rest = rest[1:]
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	opts := scenario.RunOptions{Workers: *workers}
	if *seeds > 1 {
		opts.SeedCount = *seeds
	}
	budget := memBudgetMB(*maxMemMB)
	if *specPath != "" {
		return runSpecFile(*specPath, *outDir, opts, budget)
	}
	if len(names) == 0 {
		return fmt.Errorf("run needs a scenario name, a comma list, 'all', or -spec file.json")
	}
	if len(names) == 1 && names[0] == "all" {
		names = scenario.Names()
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		e, ok := scenario.Lookup(name)
		if !ok {
			return fmt.Errorf("unknown scenario %q (use list)", name)
		}
		fp, err := e.MaxFootprint()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := gateFootprint(name, fp, budget); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "== running %s...\n", name)
		table, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := writeCSV(*outDir, name, table.CSV()); err != nil {
			return err
		}
		fmt.Println(table.Markdown())
	}
	return nil
}

func runSpecFile(path, outDir string, opts scenario.RunOptions, budgetMB int64) error {
	spec, err := scenario.LoadSpec(path)
	if err != nil {
		return err
	}
	name := spec.Name
	if name == "" {
		name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		spec.Name = name
	}
	fp, err := scenario.EstimateFootprint(spec)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	if err := gateFootprint(name, fp, budgetMB); err != nil {
		return err
	}
	schemes := scenario.DefaultSchemes()
	if spec.Scheme != "" {
		schemes = []string{spec.Scheme}
	}
	fmt.Fprintf(os.Stderr, "== running spec %s (%s)...\n", name, path)
	table, err := scenario.SchemeTable(spec, schemes, opts)
	if err != nil {
		return err
	}
	if err := writeCSV(outDir, name, table.CSV()); err != nil {
		return err
	}
	fmt.Println(table.Markdown())
	return nil
}

// memBudgetMB resolves the -max-mem-mb flag: an explicit positive budget is
// used as-is, 0 auto-detects available memory, and a negative value (or an
// unreadable /proc/meminfo) disables the gate (returns 0).
func memBudgetMB(flagMB int64) int64 {
	if flagMB > 0 {
		return flagMB
	}
	if flagMB < 0 {
		return 0
	}
	return availableMemMB()
}

// availableMemMB reads MemAvailable from /proc/meminfo; 0 when unknown
// (non-Linux, restricted container), which disables the gate.
func availableMemMB() int64 {
	data, err := os.ReadFile("/proc/meminfo")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "MemAvailable:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb >> 10
	}
	return 0
}

// gateFootprint fails fast when a run's estimated resident state would not
// fit the memory budget — the point of estimating the 100k-node cells before
// building them. budgetMB 0 means no gate.
func gateFootprint(name string, fp scenario.Footprint, budgetMB int64) error {
	need := fp.ApproxMB()
	if budgetMB <= 0 || need <= budgetMB {
		return nil
	}
	return fmt.Errorf("%s: estimated footprint ~%d MiB (%d nodes / %d edges) exceeds the %d MiB memory budget; rerun with -max-mem-mb %d to override or -max-mem-mb -1 to disable the gate",
		name, need, fp.Nodes, fp.Edges, budgetMB, need)
}

func diff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	golden := fs.String("golden", "", "golden CSV to compare against (default internal/scenario/testdata/golden/<name>.csv)")
	outDir := fs.String("out", "results", "where to write the regenerated CSV on mismatch")
	workers := fs.Int("workers", -1, "sweep workers (identical results for any value)")
	var name string
	rest := args
	if len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
		name = rest[0]
		rest = rest[1:]
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if name == "" {
		return fmt.Errorf("diff needs a scenario name")
	}
	e, ok := scenario.Lookup(name)
	if !ok {
		return fmt.Errorf("unknown scenario %q (use list)", name)
	}
	goldenPath := *golden
	if goldenPath == "" {
		goldenPath = filepath.Join("internal", "scenario", "testdata", "golden", name+".csv")
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		return err
	}
	table, err := e.Run(scenario.RunOptions{Workers: *workers})
	if err != nil {
		return err
	}
	got := table.CSV()
	if got == string(want) {
		fmt.Printf("%s: byte-identical to %s\n", name, goldenPath)
		return nil
	}
	if err := writeCSV(*outDir, name+".got", got); err != nil {
		return err
	}
	return fmt.Errorf("%s diverged from %s; regenerated CSV at %s",
		name, goldenPath, filepath.Join(*outDir, name+".got.csv"))
}

func writeCSV(dir, name, csv string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name+".csv"), []byte(csv), 0o644)
}
