// Command splicer runs one PCN simulation and prints the evaluation
// metrics. It is the quickest way to compare routing schemes on a synthetic
// Lightning-like network:
//
//	splicer -scheme Splicer -nodes 100 -rate 120 -duration 8
//	splicer -scheme Spider  -nodes 3000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	splicer "github.com/splicer-pcn/splicer"
)

func main() {
	var (
		schemeName = flag.String("scheme", "Splicer", "routing scheme: Splicer, Spider, Flash, Landmark, A2L, ShortestPath")
		nodes      = flag.Int("nodes", 100, "network size")
		seed       = flag.Uint64("seed", 1, "random seed")
		rate       = flag.Float64("rate", 120, "transaction arrival rate (tx/s)")
		duration   = flag.Float64("duration", 8, "trace duration (s)")
		chanScale  = flag.Float64("channel-scale", 1, "channel size multiplier")
		valScale   = flag.Float64("value-scale", 1, "transaction value multiplier")
		numPaths   = flag.Int("paths", 5, "number of multi-paths k")
		pathType   = flag.String("path-type", "EDW", "path type: KSP, Heuristic, EDW, EDS")
		scheduler  = flag.String("scheduler", "LIFO", "queue scheduler: FIFO, LIFO, SPF, EDF")
		tau        = flag.Duration("tau", 200*time.Millisecond, "price/probe update interval")
		omega      = flag.Float64("omega", 0.05, "placement cost tradeoff weight")
		candidates = flag.Int("candidates", 10, "hub candidate list size")
	)
	flag.Parse()

	if err := run(*schemeName, *nodes, *seed, *rate, *duration, *chanScale, *valScale,
		*numPaths, *pathType, *scheduler, *tau, *omega, *candidates); err != nil {
		fmt.Fprintln(os.Stderr, "splicer:", err)
		os.Exit(1)
	}
}

func run(schemeName string, nodes int, seed uint64, rate, duration, chanScale, valScale float64,
	numPaths int, pathType, scheduler string, tau time.Duration, omega float64, candidates int) error {
	var scheme splicer.Scheme
	switch schemeName {
	case "Splicer":
		scheme = splicer.Splicer
	case "Spider":
		scheme = splicer.Spider
	case "Flash":
		scheme = splicer.Flash
	case "Landmark":
		scheme = splicer.Landmark
	case "A2L":
		scheme = splicer.A2L
	case "ShortestPath":
		scheme = splicer.ShortestPath
	default:
		return fmt.Errorf("unknown scheme %q", schemeName)
	}

	g, err := splicer.BuildNetwork(splicer.NetworkSpec{
		Seed: seed, Nodes: nodes, ChannelScale: chanScale,
	})
	if err != nil {
		return err
	}
	trace, err := splicer.GenerateWorkload(g, splicer.WorkloadSpec{
		Seed: seed + 1, Rate: rate, Duration: duration, ValueScale: valScale,
	})
	if err != nil {
		return err
	}
	sim, err := splicer.NewSimulation(g, scheme,
		splicer.WithPaths(numPaths),
		splicer.WithPathType(pathType),
		splicer.WithScheduler(scheduler),
		splicer.WithUpdateInterval(tau),
		splicer.WithPlacementOmega(omega),
		splicer.WithHubCandidates(candidates),
	)
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := sim.Run(trace)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Printf("scheme:                %s\n", schemeName)
	fmt.Printf("network:               %d nodes, %d channels\n", g.NumNodes(), g.NumEdges())
	if hubs := sim.Hubs(); len(hubs) > 0 {
		fmt.Printf("hubs:                  %v\n", hubs)
	}
	fmt.Printf("transactions:          %d generated, %d completed\n", res.Generated, res.Completed)
	fmt.Printf("success ratio (TSR):   %.2f%%\n", 100*res.TSR)
	fmt.Printf("normalized throughput: %.2f%%\n", 100*res.NormalizedThroughput)
	fmt.Printf("mean delay:            %.1f ms\n", 1000*res.MeanDelay)
	fmt.Printf("mean channel imbalance:%.4f\n", res.MeanImbalance)
	fmt.Printf("drained channels:      %d\n", res.DeadlockedChannels)
	fmt.Printf("wall time:             %v\n", elapsed.Round(time.Millisecond))
	return nil
}
