// Command splicerd is the routing daemon: it holds a live PCN, answers
// path queries over HTTP from a fixed pool of snapshot-pinned query
// workers (internal/serve), and — optionally — churns the topology from a
// single writer goroutine to exercise the epoch pipeline.
//
//	splicerd -addr :8080 -nodes 10000 -topology ba -workers 4
//	curl 'localhost:8080/route?src=3&dst=4821&k=3'
//	curl 'localhost:8080/plan?src=3&dst=4821&value=250'
//	curl 'localhost:8080/topology/stats'
//
// SIGINT/SIGTERM trigger a graceful stop: the HTTP listener closes, new
// queries are refused with 503, in-flight queries get -drain-timeout to
// finish, and the process exits with no pinned epoch left behind.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/pcn"
	"github.com/splicer-pcn/splicer/internal/rng"
	"github.com/splicer-pcn/splicer/internal/serve"
	"github.com/splicer-pcn/splicer/internal/topology"
	"github.com/splicer-pcn/splicer/internal/workload"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "HTTP listen address")
		nodes        = flag.Int("nodes", 1000, "network size")
		topo         = flag.String("topology", "ws", "topology generator: ws (Watts-Strogatz) or ba (Barabasi-Albert)")
		seed         = flag.Uint64("seed", 1, "random seed")
		workers      = flag.Int("workers", 2, "query-pool size")
		queueDepth   = flag.Int("queue", 64, "per-worker job-queue depth")
		candidates   = flag.Int("candidates", 10, "hub candidate list size")
		churnRate    = flag.Float64("churn", 0, "topology churn events/sec applied by the writer goroutine (0 = static)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "how long in-flight queries get to finish on shutdown")
		reqTimeout   = flag.Duration("request-timeout", 0, "per-request deadline for /route and /plan (0 = none); exceeded requests answer 503 + Retry-After")
	)
	flag.Parse()

	if err := run(*addr, *nodes, *topo, *seed, *workers, *queueDepth, *candidates, *churnRate, *drainTimeout, *reqTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "splicerd:", err)
		os.Exit(1)
	}
}

func run(addr string, nodes int, topo string, seed uint64, workers, queueDepth, candidates int, churnRate float64, drainTimeout, reqTimeout time.Duration) error {
	src := rng.New(seed)
	sizes := workload.NewChannelSizeDist(src.Split(1), 1)
	var g *graph.Graph
	var err error
	switch topo {
	case "ws":
		g, err = topology.WattsStrogatz(src.Split(2), nodes, 4, 0.25, sizes.CapacityFunc())
	case "ba":
		g, err = topology.BarabasiAlbert(src.Split(2), nodes, 3, sizes.CapacityFunc())
	default:
		return fmt.Errorf("unknown topology %q (want ws or ba)", topo)
	}
	if err != nil {
		return err
	}
	cfg := pcn.NewConfig(pcn.SchemeSplicer)
	cfg.NumHubCandidates = candidates
	net, err := pcn.NewNetwork(g, cfg)
	if err != nil {
		return err
	}

	s := serve.NewServer(net, serve.Options{
		Workers: workers, QueueDepth: queueDepth, RequestTimeout: reqTimeout,
	})
	fmt.Fprintf(os.Stderr, "splicerd: %d nodes, %d live channels, epoch %d, %d workers, listening on %s\n",
		g.NumNodes(), g.NumLiveEdges(), s.Snapshots().Epoch(), workers, addr)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// The single writer goroutine: the network is mutated from here and
	// nowhere else. Query workers read pinned snapshots only.
	var writerWG sync.WaitGroup
	if churnRate > 0 {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			churnLoop(ctx, net, rand.New(rand.NewSource(int64(seed)+7)), churnRate)
		}()
	}

	httpSrv := &http.Server{Addr: addr, Handler: s.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.ListenAndServe() }()

	select {
	case err := <-httpErr:
		stop()
		writerWG.Wait()
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "splicerd: shutting down")
	writerWG.Wait()

	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	httpSrv.Shutdown(drainCtx)
	if err := s.Shutdown(drainCtx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "splicerd: drain cut short: %v\n", err)
	}
	if pins := s.Snapshots().ActivePins(); pins != 0 {
		return fmt.Errorf("shutdown leaked %d pinned epochs", pins)
	}
	st := s.Stats()
	fmt.Fprintf(os.Stderr, "splicerd: served %d queries (%d errors, %d shed, %d saturated, %d timeouts), final epoch %d\n",
		st.Served, st.Errors, st.Shed, st.Saturated, st.Timeouts, st.Epoch)
	return nil
}

// churnLoop applies random topology events at the configured rate until the
// context cancels. Open/close/top-up draw uniformly; errors (e.g. closing an
// already-closed channel) are expected and skipped.
func churnLoop(ctx context.Context, net *pcn.Network, rnd *rand.Rand, rate float64) {
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		g := net.Graph()
		switch rnd.Intn(3) {
		case 0:
			u := graph.NodeID(rnd.Intn(g.NumNodes()))
			v := graph.NodeID(rnd.Intn(g.NumNodes()))
			if u != v {
				net.OpenChannel(u, v, 50, 50)
			}
		case 1:
			if g.NumEdges() > 0 && g.NumLiveEdges() > 4*g.NumNodes()/3 {
				net.CloseChannel(graph.EdgeID(rnd.Intn(g.NumEdges())))
			}
		case 2:
			if g.NumEdges() > 0 {
				net.TopUpChannel(graph.EdgeID(rnd.Intn(g.NumEdges())), 25, 25)
			}
		}
	}
}
