// Command bench runs the tracked benchmark suite (internal/benchsuite) and
// emits a BENCH_*.json report — the repository's perf trajectory. It can
// also gate on a checked-in pin file, failing when a Core benchmark's
// allocs/op regresses beyond the tolerance (the CI bench job runs exactly
// that).
//
//	bench -out BENCH_PR4.json                 # full suite, write report
//	bench -short -out /tmp/b.json -pins BENCH_PR4.json
//	bench -run sim_core -list
//
// See README.md "Reading BENCH_*.json" for the report format.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"github.com/splicer-pcn/splicer/internal/benchsuite"
)

func main() {
	var (
		short     = flag.Bool("short", false, "trim the figure-level scenarios (CI budget); Core microbenchmarks are unaffected")
		out       = flag.String("out", "", "write the JSON report to this file")
		pins      = flag.String("pins", "", "compare Core benchmarks against this checked-in report; exit 1 on regression")
		tolerance = flag.Float64("tolerance", 0.20, "allowed relative allocs/op regression against -pins")
		run       = flag.String("run", "", "regexp filter over benchmark names")
		list      = flag.Bool("list", false, "list benchmark names and exit")
		loadgen   = flag.Bool("loadgen", false, "also run the serving-layer load generator (serve/ report section)")
		loadDur   = flag.Duration("loadgen-duration", 3*time.Second, "per-run duration for -loadgen")
	)
	flag.Parse()

	if *list {
		for _, bm := range benchsuite.Suite(*short) {
			tag := ""
			if bm.Core {
				tag = " [core]"
			}
			fmt.Printf("%s%s\n", bm.Name, tag)
		}
		return
	}

	var pinned *benchsuite.Report
	if *pins != "" {
		data, err := os.ReadFile(*pins)
		if err != nil {
			fatal(err)
		}
		pinned = &benchsuite.Report{}
		if err := json.Unmarshal(data, pinned); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *pins, err))
		}
	}

	rep, err := benchsuite.Run(*short, *run)
	if err != nil {
		fatal(err)
	}
	for _, r := range rep.Results {
		fmt.Printf("%-36s %12.1f ns/op %10d B/op %8d allocs/op\n", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}

	if *loadgen {
		serveResults, err := benchsuite.RunServe(*loadDur)
		if err != nil {
			fatal(err)
		}
		rep.Serve = serveResults
		for _, r := range rep.Serve {
			fmt.Printf("%-36s %12.1f routes/s  (%d workers, %d clients, %d requests, %d errors)\n",
				r.Name, r.RoutesPerSec, r.Workers, r.Clients, r.Requests, r.Errors)
		}
	}

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "bench: wrote %s (%d benchmarks, %.1fs)\n", *out, len(rep.Results), float64(rep.DurationMS)/1000)
	}

	if pinned != nil {
		if failures := checkPins(rep, *pinned, *tolerance); len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "bench: REGRESSION:", f)
			}
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "bench: no allocs/op regressions against", *pins)
	}
}

// checkPins compares Core benchmarks' allocs/op against the pinned report.
// Only allocs/op are gated: they are deterministic for fixed inputs, unlike
// wall-clock on shared CI runners.
func checkPins(cur, pin benchsuite.Report, tolerance float64) []string {
	pinned := map[string]benchsuite.Result{}
	for _, r := range pin.Results {
		if r.Core {
			pinned[r.Name] = r
		}
	}
	var failures []string
	for _, r := range cur.Results {
		p, ok := pinned[r.Name]
		if !r.Core || !ok {
			continue
		}
		limit := int64(math.Ceil(float64(p.AllocsPerOp) * (1 + tolerance)))
		if p.AllocsPerOp == 0 {
			limit = 0 // a zero-alloc benchmark must stay zero-alloc
		}
		if r.AllocsPerOp > limit {
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op, pinned %d (limit %d)", r.Name, r.AllocsPerOp, p.AllocsPerOp, limit))
		}
	}
	return failures
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
