// Command placement solves PCH placement instances and prints the plan:
// which candidates become hubs, the client assignment summary, and the
// balance-cost breakdown. Compares the exact solver against the
// double-greedy approximation when the instance is small enough.
//
//	placement -nodes 100 -candidates 10 -omega 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	splicer "github.com/splicer-pcn/splicer"
)

func main() {
	var (
		nodes      = flag.Int("nodes", 100, "network size")
		seed       = flag.Uint64("seed", 1, "random seed")
		candidates = flag.Int("candidates", 10, "hub candidate list size (top degree)")
		omega      = flag.Float64("omega", 0.5, "management/synchronization tradeoff weight")
	)
	flag.Parse()

	if err := run(*nodes, *seed, *candidates, *omega); err != nil {
		fmt.Fprintln(os.Stderr, "placement:", err)
		os.Exit(1)
	}
}

func run(nodes int, seed uint64, numCandidates int, omega float64) error {
	g, err := splicer.BuildNetwork(splicer.NetworkSpec{Seed: seed, Nodes: nodes})
	if err != nil {
		return err
	}
	cands := splicer.TopDegreeNodes(g, numCandidates)
	candSet := map[splicer.NodeID]bool{}
	for _, c := range cands {
		candSet[c] = true
	}
	var clients []splicer.NodeID
	for i := 0; i < g.NumNodes(); i++ {
		if !candSet[splicer.NodeID(i)] {
			clients = append(clients, splicer.NodeID(i))
		}
	}
	plan, err := splicer.PlaceHubs(g, clients, cands, omega)
	if err != nil {
		return err
	}
	solver := "double-greedy 1/2-approximation"
	if plan.Exact {
		solver = "exact (exhaustive over the MILP feasible set)"
	}
	fmt.Printf("network:        %d nodes, %d channels\n", g.NumNodes(), g.NumEdges())
	fmt.Printf("candidates:     %v\n", cands)
	fmt.Printf("omega:          %g\n", omega)
	fmt.Printf("solver:         %s\n", solver)
	fmt.Printf("hubs placed:    %v (%d of %d candidates)\n", plan.Hubs, len(plan.Hubs), len(cands))
	fmt.Printf("management cost: %.4f\n", plan.ManagementCost)
	fmt.Printf("sync cost:       %.4f\n", plan.SyncCost)
	fmt.Printf("balance cost:    %.4f\n", plan.TotalCost)

	// Assignment summary: clients per hub.
	counts := map[splicer.NodeID]int{}
	for _, h := range plan.AssignedHub {
		counts[h]++
	}
	fmt.Println("clients per hub:")
	for _, h := range plan.Hubs {
		fmt.Printf("  hub %4d: %d clients\n", h, counts[h])
	}
	return nil
}
