package splicer

import (
	"fmt"
	"testing"
	"time"
)

func smallSweepSpec(workers int) SweepSpec {
	return SweepSpec{
		Network:  NetworkSpec{Nodes: 40},
		Workload: WorkloadSpec{Rate: 30, Duration: 1.5},
		Schemes:  []Scheme{Splicer, ShortestPath},
		Seeds:    []uint64{11, 12, 13},
		Workers:  workers,
		Axis: &SweepAxis{
			Name:   "value_scale",
			Values: []float64{1, 4},
			Apply: func(v float64, _ *NetworkSpec, wl *WorkloadSpec) []Option {
				wl.ValueScale = v
				return nil
			},
		},
	}
}

// renderSweep canonicalizes a sweep result for byte-level comparison,
// excluding the cells' Build closures (func pointers).
func renderSweep(r SweepResult) string {
	out := ""
	for _, c := range r.Cells {
		out += fmt.Sprintf("%v/%d/%s=%g %+v\n", c.Cell.Scheme, c.Cell.Seed, c.Cell.Axis, c.Cell.X, c.Result)
	}
	return out + fmt.Sprintf("%+v", r.Summaries)
}

// TestRunSweepDeterministicAcrossWorkers: N workers must produce results
// byte-identical to the sequential run for fixed seeds.
func TestRunSweepDeterministicAcrossWorkers(t *testing.T) {
	ref, err := RunSweep(smallSweepSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	want := renderSweep(ref)
	for _, workers := range []int{4, 0} {
		got, err := RunSweep(smallSweepSpec(workers))
		if err != nil {
			t.Fatal(err)
		}
		if renderSweep(got) != want {
			t.Fatalf("workers=%d diverged from workers=1", workers)
		}
	}
}

// TestRunSweepShape: the grid produces axis × schemes × seeds cells and
// axis × schemes summaries with across-seed stats.
func TestRunSweepShape(t *testing.T) {
	res, err := RunSweep(smallSweepSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2 * 3; len(res.Cells) != want {
		t.Fatalf("got %d cells, want %d", len(res.Cells), want)
	}
	if want := 2 * 2; len(res.Summaries) != want {
		t.Fatalf("got %d summaries, want %d", len(res.Summaries), want)
	}
	for _, s := range res.Summaries {
		if s.Seeds != 3 || s.Failed != 0 {
			t.Fatalf("summary %v x=%g: Seeds=%d Failed=%d, want 3/0", s.Scheme, s.X, s.Seeds, s.Failed)
		}
		if s.TSR.Mean < 0 || s.TSR.Mean > 1 {
			t.Fatalf("summary %v x=%g: TSR mean %g out of range", s.Scheme, s.X, s.TSR.Mean)
		}
	}
	// Larger values should not improve Splicer's success ratio.
	var tsr1, tsr4 float64
	for _, s := range res.Summaries {
		if s.Scheme == Splicer && s.X == 1 {
			tsr1 = s.TSR.Mean
		}
		if s.Scheme == Splicer && s.X == 4 {
			tsr4 = s.TSR.Mean
		}
	}
	if tsr4 > tsr1 {
		t.Fatalf("Splicer TSR rose with value scale: %g → %g", tsr1, tsr4)
	}
}

// TestRunSweepOptionsAndValidation: global options apply to every cell;
// an empty scheme list and an empty axis are rejected.
func TestRunSweepOptionsAndValidation(t *testing.T) {
	spec := smallSweepSpec(0)
	spec.Axis = nil
	spec.Seeds = []uint64{11}
	spec.Options = []Option{WithUpdateInterval(100 * time.Millisecond)}
	res, err := RunSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 || len(res.Summaries) != 2 {
		t.Fatalf("axis-less sweep: %d cells / %d summaries, want 2/2", len(res.Cells), len(res.Summaries))
	}

	if _, err := RunSweep(SweepSpec{}); err == nil {
		t.Fatal("RunSweep accepted an empty scheme list")
	}
	spec.Axis = &SweepAxis{Name: "empty"}
	if _, err := RunSweep(spec); err == nil {
		t.Fatal("RunSweep accepted an axis without values")
	}
}
