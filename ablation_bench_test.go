package splicer

// Ablation benchmarks for the design choices DESIGN.md calls out: each
// benchmark reports the metric under study through testing.B metrics
// (b.ReportMetric), so `go test -bench=Ablation` doubles as an ablation
// table generator.
//
//   - imbalance prices (η) on/off  → deadlock handling (TSR on circulation)
//   - capacity prices (κ) on/off   → congestion shaping
//   - TU splitting (Max-TU)        → multi-path utilization
//   - hub capital boost            → multi-star viability

import (
	"testing"

	"github.com/splicer-pcn/splicer/internal/pcn"
	"github.com/splicer-pcn/splicer/internal/rng"
	"github.com/splicer-pcn/splicer/internal/topology"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// circulationFixture builds the deadlock-prone tight-channel scenario.
func circulationFixture(b *testing.B) (*Graph, []Tx) {
	b.Helper()
	src := rng.New(77)
	sizes := workload.NewChannelSizeDist(src.Split(1), 0.2)
	g, err := topology.WattsStrogatz(src.Split(2), 50, 4, 0.2, sizes.CapacityFunc())
	if err != nil {
		b.Fatal(err)
	}
	clients := make([]NodeID, 50)
	for i := range clients {
		clients[i] = NodeID(i)
	}
	trace, err := workload.Generate(src.Split(3), workload.Config{
		Clients: clients, Rate: 60, Duration: 6, Timeout: 3,
		ZipfSkew: 0.5, ValueScale: 1.5, CirculationFraction: 0.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	return g, trace
}

func runAblation(b *testing.B, mutate func(*pcn.Config)) float64 {
	b.Helper()
	g, trace := circulationFixture(b)
	cfg := pcn.NewConfig(pcn.SchemeSplicer)
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := pcn.NewNetwork(g.Clone(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	res, err := n.Run(trace)
	if err != nil {
		b.Fatal(err)
	}
	return res.TSR
}

func BenchmarkAblationFullSplicer(b *testing.B) {
	var tsr float64
	for i := 0; i < b.N; i++ {
		tsr = runAblation(b, nil)
	}
	b.ReportMetric(tsr, "TSR")
}

func BenchmarkAblationNoImbalancePrices(b *testing.B) {
	var tsr float64
	for i := 0; i < b.N; i++ {
		tsr = runAblation(b, func(c *pcn.Config) { c.Eta = 0 })
	}
	b.ReportMetric(tsr, "TSR")
}

func BenchmarkAblationNoCapacityPrices(b *testing.B) {
	var tsr float64
	for i := 0; i < b.N; i++ {
		tsr = runAblation(b, func(c *pcn.Config) { c.Kappa = 0 })
	}
	b.ReportMetric(tsr, "TSR")
}

func BenchmarkAblationNoTUSplitting(b *testing.B) {
	var tsr float64
	for i := 0; i < b.N; i++ {
		// Max-TU so large every payment is one unit: multi-path splitting off.
		tsr = runAblation(b, func(c *pcn.Config) { c.MaxTU = 1e9 })
	}
	b.ReportMetric(tsr, "TSR")
}

func BenchmarkAblationNoHubCapital(b *testing.B) {
	var tsr float64
	for i := 0; i < b.N; i++ {
		tsr = runAblation(b, func(c *pcn.Config) { c.HubCapitalBoost = 1 })
	}
	b.ReportMetric(tsr, "TSR")
}

func BenchmarkAblationSingleHub(b *testing.B) {
	var tsr float64
	for i := 0; i < b.N; i++ {
		tsr = runAblation(b, func(c *pcn.Config) { c.PlacementOmega = 100 })
	}
	b.ReportMetric(tsr, "TSR")
}
