// Package splicer is the public API of the Splicer reproduction: optimal
// payment-channel-hub placement and deadlock-free rate-based routing for
// payment channel network scalability (ICDCS 2023).
//
// The package wraps the internal engine behind three entry points:
//
//   - BuildNetwork / GenerateWorkload construct a Lightning-like channel
//     graph and a reproducible payment trace.
//   - PlaceHubs solves the PCH placement problem (exact MILP/enumeration on
//     small candidate sets, double-greedy 1/2-approximation on large ones).
//   - NewSimulation runs a routing scheme over the network and trace and
//     reports the paper's evaluation metrics (transaction success ratio,
//     normalized throughput, delay).
//
// See examples/ for runnable end-to-end programs and DESIGN.md for the
// paper-to-code map.
package splicer

import (
	"fmt"
	"time"

	"github.com/splicer-pcn/splicer/internal/channel"
	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/pcn"
	"github.com/splicer-pcn/splicer/internal/placement"
	"github.com/splicer-pcn/splicer/internal/rng"
	"github.com/splicer-pcn/splicer/internal/routing"
	"github.com/splicer-pcn/splicer/internal/topology"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// Graph is a payment channel network topology. Node identifiers are dense
// indices; every edge is a channel with independent per-direction funds.
type Graph = graph.Graph

// NodeID identifies a node in a Graph.
type NodeID = graph.NodeID

// Tx is one payment demand in a workload trace.
type Tx = workload.Tx

// Result summarizes a simulation run.
type Result = pcn.Result

// Scheme selects the routing scheme under evaluation.
type Scheme = pcn.Scheme

// The available schemes: Splicer and the four baselines of the paper's
// evaluation, plus a naive single-shortest-path reference.
const (
	Splicer      = pcn.SchemeSplicer
	Spider       = pcn.SchemeSpider
	Flash        = pcn.SchemeFlash
	Landmark     = pcn.SchemeLandmark
	A2L          = pcn.SchemeA2L
	ShortestPath = pcn.SchemeShortestPath
)

// NetworkSpec configures BuildNetwork.
type NetworkSpec struct {
	// Seed makes the topology reproducible.
	Seed uint64
	// Nodes is the network size (the paper evaluates 100 and 3000).
	Nodes int
	// Degree and Rewire parameterize the Watts–Strogatz generator
	// (defaults 4 and 0.25).
	Degree int
	Rewire float64
	// ChannelScale multiplies the Lightning-calibrated channel sizes
	// (min 10 / median 152 / mean 403 tokens at scale 1).
	ChannelScale float64
}

// BuildNetwork generates a connected small-world channel graph with
// heavy-tailed Lightning-like channel sizes.
func BuildNetwork(spec NetworkSpec) (*Graph, error) {
	if spec.Nodes <= 0 {
		return nil, fmt.Errorf("splicer: Nodes must be positive")
	}
	if spec.Degree == 0 {
		spec.Degree = 4
	}
	if spec.Rewire == 0 {
		spec.Rewire = 0.25
	}
	if spec.ChannelScale == 0 {
		spec.ChannelScale = 1
	}
	src := rng.New(spec.Seed)
	sizes := workload.NewChannelSizeDist(src.Split(1), spec.ChannelScale)
	g, err := topology.WattsStrogatz(src.Split(2), spec.Nodes, spec.Degree, spec.Rewire, sizes.CapacityFunc())
	if err != nil {
		return nil, fmt.Errorf("splicer: %w", err)
	}
	return g, nil
}

// WorkloadSpec configures GenerateWorkload.
type WorkloadSpec struct {
	Seed uint64
	// Rate is the aggregate Poisson arrival rate in tx/sec; Duration the
	// trace length in seconds.
	Rate     float64
	Duration float64
	// Timeout per payment (default 3 s, the paper's setting).
	Timeout float64
	// ValueScale multiplies the credit-card-like value distribution.
	ValueScale float64
	// ZipfSkew skews endpoint popularity (default 0.8).
	ZipfSkew float64
	// CirculationFraction injects the deadlock-inducing circulation pattern
	// of §II-B (default 0.2).
	CirculationFraction float64
}

// GenerateWorkload produces a reproducible payment trace over all nodes of
// the graph.
func GenerateWorkload(g *Graph, spec WorkloadSpec) ([]Tx, error) {
	if spec.Timeout == 0 {
		spec.Timeout = 3
	}
	if spec.ValueScale == 0 {
		spec.ValueScale = 1
	}
	if spec.ZipfSkew == 0 {
		spec.ZipfSkew = 0.8
	}
	if spec.CirculationFraction == 0 {
		spec.CirculationFraction = 0.2
	}
	clients := make([]NodeID, g.NumNodes())
	for i := range clients {
		clients[i] = NodeID(i)
	}
	trace, err := workload.Generate(rng.New(spec.Seed), workload.Config{
		Clients:             clients,
		Rate:                spec.Rate,
		Duration:            spec.Duration,
		Timeout:             spec.Timeout,
		ZipfSkew:            spec.ZipfSkew,
		ValueScale:          spec.ValueScale,
		CirculationFraction: spec.CirculationFraction,
	})
	if err != nil {
		return nil, fmt.Errorf("splicer: %w", err)
	}
	return trace, nil
}

// Option mutates the simulation configuration.
type Option func(*pcn.Config) error

// WithPaths sets k, the number of multi-paths (paper default 5).
func WithPaths(k int) Option {
	return func(c *pcn.Config) error {
		if k <= 0 {
			return fmt.Errorf("splicer: paths must be positive")
		}
		c.NumPaths = k
		return nil
	}
}

// WithPathType selects the path strategy: "KSP", "Heuristic", "EDW", "EDS".
func WithPathType(name string) Option {
	return func(c *pcn.Config) error {
		pt, err := routing.PathTypeByName(name)
		if err != nil {
			return err
		}
		c.PathType = pt
		return nil
	}
}

// WithScheduler selects the queue discipline: "FIFO", "LIFO", "SPF", "EDF".
func WithScheduler(name string) Option {
	return func(c *pcn.Config) error {
		s, err := channel.SchedulerByName(name)
		if err != nil {
			return err
		}
		c.Scheduler = s
		return nil
	}
}

// WithUpdateInterval sets the τ price/probe update period.
func WithUpdateInterval(d time.Duration) Option {
	return func(c *pcn.Config) error {
		if d <= 0 {
			return fmt.Errorf("splicer: update interval must be positive")
		}
		c.UpdateTau = d.Seconds()
		return nil
	}
}

// WithHubs pins the hub set instead of running placement.
func WithHubs(hubs ...NodeID) Option {
	return func(c *pcn.Config) error {
		if len(hubs) == 0 {
			return fmt.Errorf("splicer: need at least one hub")
		}
		c.Hubs = append([]NodeID(nil), hubs...)
		return nil
	}
}

// WithPlacementOmega sets the ω cost-tradeoff weight used when placement
// runs inside the simulation.
func WithPlacementOmega(omega float64) Option {
	return func(c *pcn.Config) error {
		if omega < 0 {
			return fmt.Errorf("splicer: omega must be >= 0")
		}
		c.PlacementOmega = omega
		return nil
	}
}

// WithHubCandidates bounds the smooth-node candidate list size.
func WithHubCandidates(n int) Option {
	return func(c *pcn.Config) error {
		if n < 1 {
			return fmt.Errorf("splicer: need at least one candidate")
		}
		c.NumHubCandidates = n
		return nil
	}
}

// Simulation is a configured run over one network and trace.
type Simulation struct {
	net *pcn.Network
}

// NewSimulation wires a scheme over the graph. The simulation takes
// ownership of the graph (Splicer's multi-star reshaping adds client-hub
// channels); clone it first if you need the original afterwards.
func NewSimulation(g *Graph, scheme Scheme, opts ...Option) (*Simulation, error) {
	cfg := pcn.NewConfig(scheme)
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	net, err := pcn.NewNetwork(g, cfg)
	if err != nil {
		return nil, err
	}
	return &Simulation{net: net}, nil
}

// Run executes the trace and returns the evaluation metrics.
func (s *Simulation) Run(trace []Tx) (Result, error) {
	return s.net.Run(trace)
}

// Hubs returns the hub set in effect (placement output or override).
func (s *Simulation) Hubs() []NodeID { return s.net.Hubs() }

// HubOf returns the managing hub of a client, if the scheme uses hubs.
func (s *Simulation) HubOf(client NodeID) (NodeID, bool) { return s.net.HubOf(client) }

// PlacementPlan is the outcome of a standalone placement solve.
type PlacementPlan struct {
	// Hubs are the selected smooth nodes.
	Hubs []NodeID
	// AssignedHub maps each client (by position in the Clients argument) to
	// its managing hub.
	AssignedHub []NodeID
	// ManagementCost, SyncCost and TotalCost break down the balance cost
	// C_B = C_M + ω·C_S.
	ManagementCost float64
	SyncCost       float64
	TotalCost      float64
	// Exact reports whether the plan is provably optimal (small-scale
	// track) rather than the 1/2-approximation.
	Exact bool
}

// PlaceHubs solves the PCH placement problem over the graph: candidates and
// clients are node sets, omega the management/synchronization tradeoff. The
// exact solver (the paper's MILP track) runs when the candidate set has at
// most 16 nodes; larger instances use the double-greedy approximation
// (Alg. 1).
func PlaceHubs(g *Graph, clients, candidates []NodeID, omega float64) (PlacementPlan, error) {
	inst, err := placement.NewInstanceFromGraph(g, clients, candidates, omega)
	if err != nil {
		return PlacementPlan{}, err
	}
	var plan placement.Plan
	exact := len(candidates) <= 16
	if exact {
		plan, err = inst.SolveExhaustive()
	} else {
		plan, err = inst.SolveDoubleGreedy(nil)
	}
	if err != nil {
		return PlacementPlan{}, err
	}
	out := PlacementPlan{
		ManagementCost: plan.MgmtCost,
		SyncCost:       plan.SyncCost,
		TotalCost:      plan.TotalCost,
		Exact:          exact,
	}
	for _, idx := range plan.PlacedCandidates() {
		out.Hubs = append(out.Hubs, candidates[idx])
	}
	out.AssignedHub = make([]NodeID, len(clients))
	for m, idx := range plan.Assign {
		out.AssignedHub[m] = candidates[idx]
	}
	return out, nil
}

// TopDegreeNodes returns the k best-connected nodes — the default
// excellence proxy for the smooth-node candidate list.
func TopDegreeNodes(g *Graph, k int) []NodeID {
	return topology.TopDegreeNodes(g, k)
}
