package splicer

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestScenarioPublicAPI(t *testing.T) {
	names := ScenarioNames()
	if len(names) < 18 {
		t.Fatalf("ScenarioNames returned %d entries: %v", len(names), names)
	}
	table, err := RunNamedScenario("table1", -1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.CSV(), "Splicer") {
		t.Fatalf("table1 CSV unexpected:\n%s", table.CSV())
	}
	if _, err := RunNamedScenario("figX", 1); err == nil {
		t.Fatal("RunNamedScenario accepted an unknown name")
	}
}

func TestRunScenarioSpecFromJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	spec := `{
		"name": "tiny", "seed": 3, "scheme": "ShortestPath",
		"topology": {"type": "erdos-renyi", "nodes": 25, "edge_prob": 0.2},
		"workload": {"type": "synthetic", "rate": 20, "duration": 2}
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadScenarioSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunScenarioSpec(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated == 0 || res.TSR < 0 || res.TSR > 1 {
		t.Fatalf("spec run result implausible: %+v", res)
	}
}
