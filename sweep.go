package splicer

import (
	"fmt"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/pcn"
	"github.com/splicer-pcn/splicer/internal/sweep"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// SweepAxis is an optional swept parameter dimension. For each value, Apply
// may mutate the cell's network/workload specs and/or return extra
// simulation options. A nil Apply sweeps nothing but still labels the cells.
type SweepAxis struct {
	Name   string
	Values []float64
	Apply  func(v float64, net *NetworkSpec, wl *WorkloadSpec) []Option
}

// SweepSpec describes a multi-seed × multi-scheme × multi-parameter grid.
// Every cell of the grid builds its own topology and trace from its seed, so
// the grid runs embarrassingly parallel on Workers goroutines while
// producing results identical to a sequential run.
type SweepSpec struct {
	// Network and Workload are the base specs; each cell overrides their
	// Seed with its own.
	Network  NetworkSpec
	Workload WorkloadSpec
	// Schemes to compare (required).
	Schemes []Scheme
	// Seeds replicates every (scheme, axis value) cell; aggregate stats are
	// computed across them. Defaults to the single Network.Seed.
	Seeds []uint64
	// Options apply to every cell's simulation config.
	Options []Option
	// Axis optionally sweeps one parameter dimension.
	Axis *SweepAxis
	// Workers bounds the worker pool (0 = GOMAXPROCS, 1 = sequential).
	Workers int
}

// SweepStats is the per-metric mean/stddev/95%-CI summary across seeds.
type SweepStats = sweep.Stats

// SweepSummary aggregates one (scheme, axis value) group across seeds.
type SweepSummary = sweep.Summary

// SweepCellResult is one grid cell's outcome.
type SweepCellResult = sweep.CellResult

// SweepResult is the outcome of RunSweep: the raw per-cell results in grid
// order (axis-major, then scheme, then seed) and the per-(scheme, axis
// value) aggregates.
type SweepResult struct {
	Cells     []SweepCellResult
	Summaries []SweepSummary
}

// RunSweep executes the grid. Each worker owns its cells' graphs and
// networks exclusively, so any Workers value yields identical results for
// fixed seeds; errors in any cell abort the sweep with the first error in
// grid order.
func RunSweep(spec SweepSpec) (SweepResult, error) {
	if len(spec.Schemes) == 0 {
		return SweepResult{}, fmt.Errorf("splicer: sweep needs at least one scheme")
	}
	seeds := spec.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{spec.Network.Seed}
	}
	axisValues := []float64{0}
	axisName := ""
	if spec.Axis != nil {
		if len(spec.Axis.Values) == 0 {
			return SweepResult{}, fmt.Errorf("splicer: sweep axis %q has no values", spec.Axis.Name)
		}
		axisValues = spec.Axis.Values
		axisName = spec.Axis.Name
	}
	var cells []sweep.Cell
	for _, x := range axisValues {
		for _, scheme := range spec.Schemes {
			for _, seed := range seeds {
				net, wl := spec.Network, spec.Workload
				net.Seed, wl.Seed = seed, seed
				opts := append([]Option(nil), spec.Options...)
				if spec.Axis != nil && spec.Axis.Apply != nil {
					opts = append(opts, spec.Axis.Apply(x, &net, &wl)...)
				}
				cells = append(cells, sweep.Cell{
					Scheme: scheme,
					Seed:   seed,
					Axis:   axisName,
					X:      x,
					Build:  buildCell(net, wl, scheme, opts),
				})
			}
		}
	}
	results := sweep.Run(cells, spec.Workers)
	if err := sweep.FirstErr(results); err != nil {
		return SweepResult{}, fmt.Errorf("splicer: %w", err)
	}
	return SweepResult{Cells: results, Summaries: sweep.Aggregate(results)}, nil
}

// buildCell captures one cell's private input construction: fresh graph,
// fresh trace, fresh config.
func buildCell(net NetworkSpec, wl WorkloadSpec, scheme Scheme, opts []Option) func() (*graph.Graph, []workload.Tx, pcn.Config, error) {
	return func() (*graph.Graph, []workload.Tx, pcn.Config, error) {
		g, err := BuildNetwork(net)
		if err != nil {
			return nil, nil, pcn.Config{}, err
		}
		trace, err := GenerateWorkload(g, wl)
		if err != nil {
			return nil, nil, pcn.Config{}, err
		}
		cfg := pcn.NewConfig(scheme)
		for _, opt := range opts {
			if err := opt(&cfg); err != nil {
				return nil, nil, pcn.Config{}, err
			}
		}
		return g, trace, cfg, nil
	}
}
