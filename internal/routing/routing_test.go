package routing

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/rng"
	"github.com/splicer-pcn/splicer/internal/topology"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := topology.WattsStrogatz(rng.New(5), 40, 4, 0.3, topology.UniformCapacity(100))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSelectPathsAllTypes(t *testing.T) {
	g := testGraph(t)
	for _, pt := range []PathType{KSP, Heuristic, EDW, EDS} {
		paths, err := SelectPaths(g, 0, 20, 3, pt)
		if err != nil {
			t.Fatalf("%v: %v", pt, err)
		}
		if len(paths) == 0 {
			t.Fatalf("%v: no paths", pt)
		}
		for _, p := range paths {
			if !p.Valid(g) {
				t.Fatalf("%v: invalid path %+v", pt, p)
			}
			if p.Nodes[0] != 0 || p.Nodes[len(p.Nodes)-1] != 20 {
				t.Fatalf("%v: endpoints wrong: %+v", pt, p)
			}
		}
	}
}

func TestSelectPathsEdgeDisjointness(t *testing.T) {
	g := testGraph(t)
	for _, pt := range []PathType{EDW, EDS} {
		paths, err := SelectPaths(g, 0, 20, 5, pt)
		if err != nil {
			t.Fatal(err)
		}
		used := map[graph.EdgeID]bool{}
		for _, p := range paths {
			for _, e := range p.Edges {
				if used[e] {
					t.Fatalf("%v returned non-disjoint paths", pt)
				}
				used[e] = true
			}
		}
	}
}

func TestSelectPathsValidation(t *testing.T) {
	g := testGraph(t)
	if _, err := SelectPaths(g, 0, 1, 0, EDW); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := SelectPaths(g, 0, 1, 3, PathType(99)); err == nil {
		t.Fatal("bogus path type accepted")
	}
}

func TestPathTypeByName(t *testing.T) {
	for _, name := range []string{"KSP", "Heuristic", "EDW", "EDS"} {
		pt, err := PathTypeByName(name)
		if err != nil || pt.String() != name {
			t.Fatalf("PathTypeByName(%q) = %v, %v", name, pt, err)
		}
	}
	if _, err := PathTypeByName("XXX"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestSplitDemandBasic(t *testing.T) {
	tus, err := SplitDemand(9, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range tus {
		if v < 1-1e-9 || v > 4+1e-9 {
			t.Fatalf("TU %v outside [1,4]: %v", v, tus)
		}
		sum += v
	}
	if math.Abs(sum-9) > 1e-9 {
		t.Fatalf("TUs sum to %v, want 9", sum)
	}
}

func TestSplitDemandSmallValue(t *testing.T) {
	tus, err := SplitDemand(0.5, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tus) != 1 || tus[0] != 0.5 {
		t.Fatalf("tus = %v", tus)
	}
}

func TestSplitDemandSubMinRemainder(t *testing.T) {
	// 8.5 with Max-TU 4 → naive [4, 4, 0.5] violates Min-TU; the splitter
	// must rebalance.
	tus, err := SplitDemand(8.5, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range tus {
		if v < 1-1e-9 || v > 4+1e-9 {
			t.Fatalf("TU %v outside bounds: %v", v, tus)
		}
		sum += v
	}
	if math.Abs(sum-8.5) > 1e-9 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestSplitDemandValidation(t *testing.T) {
	if _, err := SplitDemand(0, 1, 4); err == nil {
		t.Fatal("zero demand accepted")
	}
	if _, err := SplitDemand(5, 0, 4); err == nil {
		t.Fatal("zero minTU accepted")
	}
	if _, err := SplitDemand(5, 4, 1); err == nil {
		t.Fatal("inverted bounds accepted")
	}
}

func TestPropertySplitDemand(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		value := src.Float64()*200 + 0.01
		tus, err := SplitDemand(value, 1, 4)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, v := range tus {
			sum += v
			if v <= 0 || v > 4+1e-9 {
				return false
			}
			if value > 4 && v < 1-1e-9 {
				return false
			}
		}
		return math.Abs(sum-value) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func newRC(t *testing.T, k int) *RateController {
	t.Helper()
	rc, err := NewRateController(k, 0.1, 10, 0.1, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	return rc
}

func TestRateControllerValidation(t *testing.T) {
	if _, err := NewRateController(0, 0.1, 10, 0.1, 1, 4); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewRateController(2, 0, 10, 0.1, 1, 4); err == nil {
		t.Fatal("alpha=0 accepted")
	}
	if _, err := NewRateController(2, 0.1, 10, 0.1, 0, 4); err == nil {
		t.Fatal("zero init rate accepted")
	}
}

func TestRateRisesWhenCheap(t *testing.T) {
	rc := newRC(t, 2)
	r0 := rc.Rate(0)
	// Price below U'(r) = 1/2: rate must rise.
	rc.UpdateRate(0, 0)
	if rc.Rate(0) <= r0 {
		t.Fatal("rate did not rise on zero price")
	}
}

func TestRateFallsWhenExpensive(t *testing.T) {
	rc := newRC(t, 2)
	r0 := rc.Rate(0)
	rc.UpdateRate(0, 100)
	if rc.Rate(0) >= r0 {
		t.Fatal("rate did not fall on high price")
	}
	// Rate never falls below MinRate.
	for i := 0; i < 1000; i++ {
		rc.UpdateRate(0, 100)
	}
	if rc.Rate(0) < rc.MinRate {
		t.Fatalf("rate %v below floor %v", rc.Rate(0), rc.MinRate)
	}
}

func TestRateEquilibrium(t *testing.T) {
	// At price exactly U'(r) the rate is stationary.
	rc := newRC(t, 1)
	price := 1 / rc.TotalRate()
	r0 := rc.Rate(0)
	rc.UpdateRate(0, price)
	if math.Abs(rc.Rate(0)-r0) > 1e-12 {
		t.Fatalf("rate moved at equilibrium: %v -> %v", r0, rc.Rate(0))
	}
}

func TestWindowDynamics(t *testing.T) {
	rc := newRC(t, 2)
	w0 := rc.Window(0)
	rc.OnSend(0, 1)
	rc.OnSuccess(0)
	if rc.Window(0) <= w0 {
		t.Fatal("window did not grow on success")
	}
	w1 := rc.Window(0)
	rc.OnSend(0, 1)
	rc.OnAbort(0)
	if rc.Window(0) >= w1 {
		t.Fatal("window did not shrink on abort")
	}
	for i := 0; i < 100; i++ {
		rc.OnSend(0, 1)
		rc.OnAbort(0)
	}
	if rc.Window(0) < rc.MinWindow {
		t.Fatalf("window %v below floor", rc.Window(0))
	}
}

func TestWindowGatesSending(t *testing.T) {
	rc, err := NewRateController(1, 0.1, 10, 0.1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rc.CanSend(0, 1) {
		t.Fatal("fresh path cannot send")
	}
	rc.OnSend(0, 1)
	rc.OnSend(0, 1)
	if rc.CanSend(0, 1) {
		t.Fatal("window not enforced")
	}
	if rc.PickPath(1) != -1 {
		t.Fatal("PickPath returned window-blocked path")
	}
	rc.OnSuccess(0)
	if !rc.CanSend(0, 1) {
		t.Fatal("completion did not free window slot")
	}
}

func TestPickPathPrefersFastEmptyPath(t *testing.T) {
	rc := newRC(t, 2)
	// Path 0 faster.
	rc.UpdateRate(0, 0)
	rc.UpdateRate(0, 0)
	if rc.PickPath(1) != 0 {
		t.Fatal("did not pick the fastest path")
	}
	// Load path 0 heavily; path 1 becomes preferable.
	rc.OnSend(0, 1)
	rc.OnSend(0, 1)
	rc.OnSend(0, 1)
	if rc.PickPath(1) != 1 {
		t.Fatal("did not spread load to the idle path")
	}
}

func TestInflightNeverNegative(t *testing.T) {
	rc := newRC(t, 1)
	rc.OnSuccess(0) // completion without send
	if rc.Inflight(0) != 0 {
		t.Fatalf("inflight = %d", rc.Inflight(0))
	}
}

func TestPathPrice(t *testing.T) {
	p := graph.Path{Nodes: []graph.NodeID{0, 1, 2}, Edges: []graph.EdgeID{0, 1}}
	price := func(e graph.EdgeID, from graph.NodeID) float64 {
		return float64(e) + 1 // edge 0 → 1, edge 1 → 2
	}
	got := PathPrice(p, 0.1, price)
	want := 1.1 * 3
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("path price = %v, want %v", got, want)
	}
}
