// Package routing implements the decision machinery of Splicer's
// rate-based routing protocol (§IV-D, Alg. 2): path selection over four path
// types (Table II), demand splitting into transaction-units, the price-based
// path rate update (eq. 26) and the window congestion controller
// (eqs. 27-28). The event-level execution lives in internal/pcn; this
// package is pure decision logic, which keeps it independently testable.
package routing

import (
	"math"

	"fmt"

	"github.com/splicer-pcn/splicer/internal/graph"
)

// PathType selects the per-pair path computation strategy (Table II).
type PathType int

// Path types evaluated in the paper.
const (
	// KSP is Yen's k-shortest paths.
	KSP PathType = iota + 1
	// Heuristic picks the k feasible paths with the highest channel funds.
	Heuristic
	// EDW is edge-disjoint widest paths — the paper's best performer.
	EDW
	// EDS is edge-disjoint shortest paths.
	EDS
)

func (p PathType) String() string {
	switch p {
	case KSP:
		return "KSP"
	case Heuristic:
		return "Heuristic"
	case EDW:
		return "EDW"
	case EDS:
		return "EDS"
	default:
		return fmt.Sprintf("PathType(%d)", int(p))
	}
}

// PathTypeByName parses a path type name.
func PathTypeByName(name string) (PathType, error) {
	switch name {
	case "KSP":
		return KSP, nil
	case "Heuristic":
		return Heuristic, nil
	case "EDW":
		return EDW, nil
	case "EDS":
		return EDS, nil
	default:
		return 0, fmt.Errorf("routing: unknown path type %q", name)
	}
}

// SelectPaths computes up to k paths from src to dst under the given
// strategy. It may return fewer (or zero) paths on sparse graphs. Callers
// issuing repeated queries should use SelectPathsWith with a shared
// PathFinder.
func SelectPaths(g *graph.Graph, src, dst graph.NodeID, k int, pt PathType) ([]graph.Path, error) {
	return SelectPathsWith(graph.NewPathFinder(g), src, dst, k, pt)
}

// SelectPathsWith is SelectPaths running on the caller's PathFinder scratch
// state, so repeated selections (one per sender-recipient pair on a large
// network) reuse the Dijkstra buffers. All four path types run entirely on
// the finder; EDW masks extracted paths through the finder's stamped edge
// set, so no per-call graph clone is built.
func SelectPathsWith(pf *graph.PathFinder, src, dst graph.NodeID, k int, pt PathType) ([]graph.Path, error) {
	if k <= 0 {
		return nil, fmt.Errorf("routing: k must be positive, got %d", k)
	}
	switch pt {
	case KSP:
		return pf.KShortestPathsUnit(src, dst, k), nil
	case Heuristic:
		return pf.HighestFundPaths(src, dst, k), nil
	case EDW:
		return pf.EdgeDisjointWidestPaths(src, dst, k), nil
	case EDS:
		return pf.EdgeDisjointShortestPaths(src, dst, k), nil
	default:
		return nil, fmt.Errorf("routing: unknown path type %v", pt)
	}
}

// SplitDemand splits a payment value into transaction-units with
// Min-TU <= |d_i| <= Max-TU (except that a value below Min-TU becomes a
// single TU of that value, since payments cannot be padded). The paper sets
// Min-TU = 1, Max-TU = 4.
func SplitDemand(value, minTU, maxTU float64) ([]float64, error) {
	if value <= 0 {
		return nil, fmt.Errorf("routing: demand must be positive, got %v", value)
	}
	if minTU <= 0 || maxTU < minTU {
		return nil, fmt.Errorf("routing: invalid TU bounds [%v, %v]", minTU, maxTU)
	}
	if value <= maxTU {
		return []float64{value}, nil
	}
	var tus []float64
	remaining := value
	for remaining > maxTU {
		tus = append(tus, maxTU)
		remaining -= maxTU
	}
	if remaining < minTU && len(tus) > 0 {
		// Fold the sub-minimum remainder into the last full TU pair so
		// every TU respects the bounds: last TU becomes (maxTU+remaining)/2
		// split evenly across two.
		last := tus[len(tus)-1]
		tus = tus[:len(tus)-1]
		half := (last + remaining) / 2
		tus = append(tus, half, half)
	} else {
		tus = append(tus, remaining)
	}
	return tus, nil
}

// RateController maintains per-path sending rates and congestion windows
// for one source-destination pair.
type RateController struct {
	// Alpha is the rate step α in eq. 26.
	Alpha float64
	// Beta is the multiplicative window decrement β in eq. 27.
	Beta float64
	// Gamma is the window increment numerator γ in eq. 28.
	Gamma float64
	// MinRate floors path rates so a path can always probe its price.
	MinRate float64
	// MinWindow floors windows so a path is never starved forever.
	MinWindow float64
	// MaxBurst floors the token-bucket budget cap so a single TU of any
	// legal size can always eventually pass (>= Max-TU).
	MaxBurst float64

	rates    []float64
	windows  []float64
	inflight []int
	// budget is the remaining value each path may send this τ window;
	// math.Inf(1) disables budgeting (window-only control, as in Spider).
	budget []float64
	// refreshMark is the τ-tick generation this controller was last
	// refreshed in (see TryMarkRefreshed).
	refreshMark uint64
}

// NewRateController creates a controller for k paths with the given initial
// rate and window per path.
func NewRateController(k int, alpha, beta, gamma, initRate, initWindow float64) (*RateController, error) {
	if k <= 0 {
		return nil, fmt.Errorf("routing: need at least one path")
	}
	if alpha <= 0 || beta < 0 || gamma < 0 {
		return nil, fmt.Errorf("routing: invalid controller parameters α=%v β=%v γ=%v", alpha, beta, gamma)
	}
	if initRate <= 0 || initWindow <= 0 {
		return nil, fmt.Errorf("routing: initial rate and window must be positive")
	}
	rc := &RateController{
		Alpha:     alpha,
		Beta:      beta,
		Gamma:     gamma,
		MinRate:   0.1,
		MinWindow: 1,
		MaxBurst:  8,
		rates:     make([]float64, k),
		windows:   make([]float64, k),
		inflight:  make([]int, k),
		budget:    make([]float64, k),
	}
	for i := 0; i < k; i++ {
		rc.rates[i] = initRate
		rc.windows[i] = initWindow
		rc.budget[i] = math.Inf(1)
	}
	return rc, nil
}

// NumPaths returns the number of controlled paths.
func (rc *RateController) NumPaths() int { return len(rc.rates) }

// Rate returns the current sending rate of path i.
func (rc *RateController) Rate(i int) float64 { return rc.rates[i] }

// Window returns the current window of path i.
func (rc *RateController) Window(i int) float64 { return rc.windows[i] }

// Inflight returns the number of unfinished TUs on path i.
func (rc *RateController) Inflight(i int) int { return rc.inflight[i] }

// TotalRate returns Σ_p r_p, the pair's aggregate rate.
func (rc *RateController) TotalRate() float64 {
	total := 0.0
	for _, r := range rc.rates {
		total += r
	}
	return total
}

// UpdateRate applies eq. 26 for path i given the probed path price ϱ:
// r_p += α(U'(r) − ϱ) with the log-utility derivative U'(r) = 1/Σ_p r_p.
func (rc *RateController) UpdateRate(i int, pathPrice float64) {
	u := 1.0
	if tot := rc.TotalRate(); tot > 0 {
		u = 1 / tot
	}
	rc.rates[i] += rc.Alpha * (u - pathPrice)
	if rc.rates[i] < rc.MinRate {
		rc.rates[i] = rc.MinRate
	}
}

// TryMarkRefreshed records that the controller is being refreshed in tick
// generation gen and reports whether this is the first refresh of that
// generation. The τ-probe loop visits a controller through every pair and
// payment bound to it but must refill its budget exactly once per tick; the
// generation stamp replaces the per-tick map[*RateController]bool the loop
// used to allocate. Generations must start at 1 (the zero value marks
// "never refreshed").
func (rc *RateController) TryMarkRefreshed(gen uint64) bool {
	if rc.refreshMark == gen {
		return false
	}
	rc.refreshMark = gen
	return true
}

// RefillBudget adds one τ window's worth of rate to path i's token bucket,
// capped at max(2·rate·τ, MaxBurst). Called at every price-update tick;
// turns the path rate into an actual sending constraint (the rate-based
// control of §IV-D) while letting slow paths accumulate enough budget for a
// full-size TU.
func (rc *RateController) RefillBudget(i int, tau float64) {
	cap := 2 * rc.rates[i] * tau
	if cap < rc.MaxBurst {
		cap = rc.MaxBurst
	}
	b := rc.budget[i]
	if math.IsInf(b, 1) {
		b = 0 // first refill: switch from unbudgeted to budgeted mode
	}
	b += rc.rates[i] * tau
	if b > cap {
		b = cap
	}
	rc.budget[i] = b
}

// Budget returns the remaining sending budget of path i.
func (rc *RateController) Budget(i int) float64 { return rc.budget[i] }

// CanSend reports whether path i has window room and budget for a TU of
// the given value.
func (rc *RateController) CanSend(i int, value float64) bool {
	return float64(rc.inflight[i]) < rc.windows[i] && rc.budget[i] >= value
}

// OnSend records a TU of the given value dispatched on path i, consuming
// window and budget.
func (rc *RateController) OnSend(i int, value float64) {
	rc.inflight[i]++
	if !math.IsInf(rc.budget[i], 1) {
		rc.budget[i] -= value
		if rc.budget[i] < 0 {
			rc.budget[i] = 0
		}
	}
}

// OnSuccess records a completed TU on path i and grows its window
// (eq. 28): w_p += γ / Σ_{p'} w_{p'}.
func (rc *RateController) OnSuccess(i int) {
	rc.release(i)
	total := 0.0
	for _, w := range rc.windows {
		total += w
	}
	if total > 0 {
		rc.windows[i] += rc.Gamma / total
	}
}

// OnAbort records an aborted (marked/expired) TU on path i and shrinks its
// window (eq. 27): w_p -= β.
func (rc *RateController) OnAbort(i int) {
	rc.release(i)
	rc.windows[i] -= rc.Beta
	if rc.windows[i] < rc.MinWindow {
		rc.windows[i] = rc.MinWindow
	}
}

func (rc *RateController) release(i int) {
	if rc.inflight[i] > 0 {
		rc.inflight[i]--
	}
}

// PickPath chooses the path for a TU of the given value: the path with
// window room and budget whose rate headroom (rate discounted by inflight
// load) is largest. Returns -1 when every path is blocked.
func (rc *RateController) PickPath(value float64) int {
	best := -1
	bestScore := 0.0
	for i := range rc.rates {
		if !rc.CanSend(i, value) {
			continue
		}
		score := rc.rates[i] / (1 + float64(rc.inflight[i]))
		if best == -1 || score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// PathPrice sums per-channel prices ξ along a path and applies the fee
// multiplier (eq. 25): ϱ_p = (1+T_fee)·Σξ. The price function abstracts the
// channel state lookup.
func PathPrice(p graph.Path, tFee float64, price func(e graph.EdgeID, from graph.NodeID) float64) float64 {
	sum := 0.0
	for i, eid := range p.Edges {
		sum += price(eid, p.Nodes[i])
	}
	return (1 + tFee) * sum
}
