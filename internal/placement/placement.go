// Package placement implements the PCH placement problem of Splicer §IV-B/C:
// choosing which candidate smooth nodes become payment channel hubs so that
// the balance cost
//
//	C_B(x, y) = C_M(y) + ω·C_S(x, y)
//
// is minimized, where C_M is the client-management cost (eq. 3), C_S the
// hub-synchronization cost (eq. 4) and ω the tradeoff weight.
//
// Three solvers are provided:
//
//   - SolveExhaustive — enumerates all non-empty candidate subsets; the
//     ground-truth optimum for small instances.
//   - SolveMILP — the paper's small-scale track: the standard linearization
//     (eqs. 6-10) handed to the internal branch-and-bound MILP solver.
//   - SolveDoubleGreedy — the paper's large-scale track: Buchbinder et al.'s
//     double-greedy 1/2-approximation applied to the submodular complement
//     of the supermodular set function f(X) = C_B(x_X, y(x_X)) (Alg. 1).
//
// Lemma 1 (optimal assignment for a fixed placement) is implemented by
// Assign, which all three solvers share.
package placement

import (
	"fmt"
	"math"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/lp"
	"github.com/splicer-pcn/splicer/internal/milp"
	"github.com/splicer-pcn/splicer/internal/rng"
)

// Default per-hop cost coefficients from the paper's §V-A parameter
// settings: ζ_mn = 0.02·hops_mn, δ_nl = 0.01·hops_nl, ε_nl = 0.05·hops_nl.
const (
	DefaultMgmtPerHop      = 0.02
	DefaultSyncPerHop      = 0.01
	DefaultSyncConstPerHop = 0.05
)

// Instance is a concrete placement problem: the cost matrices between
// clients and candidate smooth nodes, and the tradeoff weight ω.
type Instance struct {
	// Clients and Candidates give the node identities (for reporting);
	// the cost matrices are indexed by position in these slices.
	Clients    []graph.NodeID
	Candidates []graph.NodeID
	// Mgmt[m][n] is ζ_mn, the management cost of assigning client m to
	// candidate n.
	Mgmt [][]float64
	// Sync[n][l] is δ_nl, the per-managed-client synchronization cost
	// between candidates n and l.
	Sync [][]float64
	// SyncConst[n][l] is ε_nl, the constant synchronization cost between
	// candidates n and l.
	SyncConst [][]float64
	// Omega is ω, the weight on synchronization cost.
	Omega float64
}

// Validate checks dimensions and value sanity.
func (in *Instance) Validate() error {
	m, n := len(in.Clients), len(in.Candidates)
	if m == 0 {
		return fmt.Errorf("placement: no clients")
	}
	if n == 0 {
		return fmt.Errorf("placement: no candidates")
	}
	if len(in.Mgmt) != m {
		return fmt.Errorf("placement: Mgmt has %d rows, want %d", len(in.Mgmt), m)
	}
	for i, row := range in.Mgmt {
		if len(row) != n {
			return fmt.Errorf("placement: Mgmt row %d has %d cols, want %d", i, len(row), n)
		}
	}
	for name, mat := range map[string][][]float64{"Sync": in.Sync, "SyncConst": in.SyncConst} {
		if len(mat) != n {
			return fmt.Errorf("placement: %s has %d rows, want %d", name, len(mat), n)
		}
		for i, row := range mat {
			if len(row) != n {
				return fmt.Errorf("placement: %s row %d has %d cols, want %d", name, i, len(row), n)
			}
		}
	}
	if in.Omega < 0 {
		return fmt.Errorf("placement: omega must be >= 0, got %v", in.Omega)
	}
	return nil
}

// NewInstanceFromGraph derives an instance from network hop distances using
// the paper's cost coefficients. Candidate-to-candidate and
// client-to-candidate costs are proportional to shortest-path hop counts.
func NewInstanceFromGraph(g *graph.Graph, clients, candidates []graph.NodeID, omega float64) (*Instance, error) {
	if len(clients) == 0 || len(candidates) == 0 {
		return nil, fmt.Errorf("placement: need clients and candidates")
	}
	// One BFS per candidate covers both matrices.
	hopsFrom := make([][]int, len(candidates))
	for i, c := range candidates {
		hopsFrom[i] = g.BFSHops(c)
	}
	inst := &Instance{
		Clients:    append([]graph.NodeID(nil), clients...),
		Candidates: append([]graph.NodeID(nil), candidates...),
		Mgmt:       make([][]float64, len(clients)),
		Sync:       make([][]float64, len(candidates)),
		SyncConst:  make([][]float64, len(candidates)),
		Omega:      omega,
	}
	for m, cl := range clients {
		inst.Mgmt[m] = make([]float64, len(candidates))
		for n := range candidates {
			h := hopsFrom[n][cl]
			if h < 0 {
				return nil, fmt.Errorf("placement: client %d unreachable from candidate %d", cl, candidates[n])
			}
			inst.Mgmt[m][n] = DefaultMgmtPerHop * float64(h)
		}
	}
	for n := range candidates {
		inst.Sync[n] = make([]float64, len(candidates))
		inst.SyncConst[n] = make([]float64, len(candidates))
		for l := range candidates {
			h := hopsFrom[n][candidates[l]]
			if h < 0 {
				return nil, fmt.Errorf("placement: candidate %d unreachable from candidate %d", candidates[l], candidates[n])
			}
			inst.Sync[n][l] = DefaultSyncPerHop * float64(h)
			inst.SyncConst[n][l] = DefaultSyncConstPerHop * float64(h)
		}
	}
	return inst, nil
}

// Plan is a placement decision: which candidates are hubs and how clients
// are assigned to them.
type Plan struct {
	// Placed[n] reports whether candidate n is a hub.
	Placed []bool
	// Assign[m] is the candidate index managing client m (-1 if the plan is
	// infeasible, i.e. no hub placed).
	Assign []int
	// Cost breakdown. Total = Mgmt + Omega*Sync.
	MgmtCost  float64
	SyncCost  float64
	TotalCost float64
}

// NumPlaced returns the number of hubs in the plan.
func (p Plan) NumPlaced() int {
	n := 0
	for _, placed := range p.Placed {
		if placed {
			n++
		}
	}
	return n
}

// PlacedCandidates returns the indices of the placed candidates.
func (p Plan) PlacedCandidates() []int {
	var out []int
	for n, placed := range p.Placed {
		if placed {
			out = append(out, n)
		}
	}
	return out
}

// Assign computes the Lemma-1 optimal assignment for the placement x: each
// client goes to the placed candidate n minimizing
// ω·Σ_{l placed} δ_nl + ζ_mn. It returns nil if no candidate is placed.
func (in *Instance) Assign(placed []bool) []int {
	// Precompute the sync burden of each placed candidate.
	burden := make([]float64, len(in.Candidates))
	anyPlaced := false
	for n := range in.Candidates {
		if !placed[n] {
			continue
		}
		anyPlaced = true
		for l := range in.Candidates {
			if placed[l] {
				burden[n] += in.Sync[n][l]
			}
		}
	}
	if !anyPlaced {
		return nil
	}
	assign := make([]int, len(in.Clients))
	for m := range in.Clients {
		best, bestCost := -1, math.Inf(1)
		for n := range in.Candidates {
			if !placed[n] {
				continue
			}
			c := in.Omega*burden[n] + in.Mgmt[m][n]
			if c < bestCost {
				best, bestCost = n, c
			}
		}
		assign[m] = best
	}
	return assign
}

// Evaluate computes the plan (assignment + cost breakdown) for a placement
// vector. An all-false placement yields an infeasible plan with infinite
// cost.
func (in *Instance) Evaluate(placed []bool) Plan {
	assign := in.Assign(placed)
	plan := Plan{Placed: append([]bool(nil), placed...)}
	if assign == nil {
		plan.Assign = nil
		plan.MgmtCost = math.Inf(1)
		plan.SyncCost = math.Inf(1)
		plan.TotalCost = math.Inf(1)
		return plan
	}
	plan.Assign = assign
	// C_M (eq. 3).
	for m, n := range assign {
		plan.MgmtCost += in.Mgmt[m][n]
	}
	// C_S (eq. 4): Σ_{n,l placed} (δ_nl·|clients of n| + ε_nl).
	managed := make([]float64, len(in.Candidates))
	for _, n := range assign {
		managed[n]++
	}
	for n := range in.Candidates {
		if !placed[n] {
			continue
		}
		for l := range in.Candidates {
			if !placed[l] {
				continue
			}
			plan.SyncCost += in.Sync[n][l]*managed[n] + in.SyncConst[n][l]
		}
	}
	plan.TotalCost = plan.MgmtCost + in.Omega*plan.SyncCost
	return plan
}

// SolveExhaustive enumerates every non-empty subset of candidates and
// returns the optimal plan. It is exponential in the number of candidates
// and refuses instances with more than 24.
func (in *Instance) SolveExhaustive() (Plan, error) {
	if err := in.Validate(); err != nil {
		return Plan{}, err
	}
	n := len(in.Candidates)
	if n > 24 {
		return Plan{}, fmt.Errorf("placement: exhaustive solver limited to 24 candidates, got %d", n)
	}
	best := Plan{TotalCost: math.Inf(1)}
	placed := make([]bool, n)
	for mask := 1; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			placed[i] = mask&(1<<i) != 0
		}
		plan := in.Evaluate(placed)
		if plan.TotalCost < best.TotalCost {
			best = plan
		}
	}
	return best, nil
}

// MILPOptions tunes SolveMILP.
type MILPOptions struct {
	// MaxNodes bounds branch-and-bound (0 = default).
	MaxNodes int
}

// SolveMILP builds the paper's linearized MILP (eqs. 6-10) and solves it
// exactly with branch-and-bound. Variable layout:
//
//	x_n               n in [0,N)            — candidate placed
//	y_mn              m in [0,M), n in [0,N) — client assignment
//	ϑ_nl              n,l in [0,N)           — x_n·x_l linearization
//	φ_nlm             n,l in [0,N), m in [0,M) — ϑ_nl·y_mn linearization
//
// The instance must be small: variables grow as N²·M.
func (in *Instance) SolveMILP(opts MILPOptions) (Plan, error) {
	if err := in.Validate(); err != nil {
		return Plan{}, err
	}
	M, N := len(in.Clients), len(in.Candidates)
	numVars := N + M*N + N*N + N*N*M
	if numVars > 4000 {
		return Plan{}, fmt.Errorf("placement: MILP instance too large (%d variables); use SolveDoubleGreedy", numVars)
	}
	xIdx := func(n int) int { return n }
	yIdx := func(m, n int) int { return N + m*N + n }
	thIdx := func(n, l int) int { return N + M*N + n*N + l }
	phIdx := func(n, l, m int) int { return N + M*N + N*N + (n*N+l)*M + m }

	p := milp.NewProblem(numVars)
	for i := 0; i < numVars; i++ {
		if err := p.SetBinary(i); err != nil {
			return Plan{}, err
		}
	}
	// Objective: Σ ζ_mn y_mn + ω Σ_nl (Σ_m δ_nl φ_nlm + ε_nl ϑ_nl).
	for m := 0; m < M; m++ {
		for n := 0; n < N; n++ {
			p.SetObjectiveCoeff(yIdx(m, n), in.Mgmt[m][n])
		}
	}
	for n := 0; n < N; n++ {
		for l := 0; l < N; l++ {
			p.SetObjectiveCoeff(thIdx(n, l), in.Omega*in.SyncConst[n][l])
			for m := 0; m < M; m++ {
				p.SetObjectiveCoeff(phIdx(n, l, m), in.Omega*in.Sync[n][l])
			}
		}
	}
	// Each client assigned to exactly one candidate.
	for m := 0; m < M; m++ {
		coeffs := map[int]float64{}
		for n := 0; n < N; n++ {
			coeffs[yIdx(m, n)] = 1
		}
		if err := p.AddConstraint(coeffs, lp.EQ, 1); err != nil {
			return Plan{}, err
		}
	}
	// y_mn <= x_n.
	for m := 0; m < M; m++ {
		for n := 0; n < N; n++ {
			if err := p.AddConstraint(map[int]float64{yIdx(m, n): 1, xIdx(n): -1}, lp.LE, 0); err != nil {
				return Plan{}, err
			}
		}
	}
	// ϑ_nl linearization (eq. 8). The diagonal collapses to ϑ_nn = x_n
	// because x_n·x_n = x_n for binaries.
	for n := 0; n < N; n++ {
		for l := 0; l < N; l++ {
			th := thIdx(n, l)
			if n == l {
				if err := p.AddConstraint(map[int]float64{th: 1, xIdx(n): -1}, lp.EQ, 0); err != nil {
					return Plan{}, err
				}
				continue
			}
			if err := p.AddConstraint(map[int]float64{th: 1, xIdx(n): -1}, lp.LE, 0); err != nil {
				return Plan{}, err
			}
			if err := p.AddConstraint(map[int]float64{th: 1, xIdx(l): -1}, lp.LE, 0); err != nil {
				return Plan{}, err
			}
			if err := p.AddConstraint(map[int]float64{th: 1, xIdx(n): -1, xIdx(l): -1}, lp.GE, -1); err != nil {
				return Plan{}, err
			}
		}
	}
	// φ_nlm linearization (eq. 9).
	for n := 0; n < N; n++ {
		for l := 0; l < N; l++ {
			for m := 0; m < M; m++ {
				ph := phIdx(n, l, m)
				if err := p.AddConstraint(map[int]float64{ph: 1, thIdx(n, l): -1}, lp.LE, 0); err != nil {
					return Plan{}, err
				}
				if err := p.AddConstraint(map[int]float64{ph: 1, yIdx(m, n): -1}, lp.LE, 0); err != nil {
					return Plan{}, err
				}
				if err := p.AddConstraint(map[int]float64{ph: 1, thIdx(n, l): -1, yIdx(m, n): -1}, lp.GE, -1); err != nil {
					return Plan{}, err
				}
			}
		}
	}
	sol, err := p.Solve(milp.Options{MaxNodes: opts.MaxNodes})
	if err != nil {
		return Plan{}, err
	}
	if sol.Status != lp.Optimal {
		return Plan{}, fmt.Errorf("placement: MILP solve ended with status %v", sol.Status)
	}
	placed := make([]bool, N)
	for n := 0; n < N; n++ {
		placed[n] = sol.X[xIdx(n)] > 0.5
	}
	// Re-evaluate through Lemma 1 for the canonical cost breakdown; the
	// MILP's assignment is equal-cost by optimality.
	return in.Evaluate(placed), nil
}

// infeasiblePenalty returns a large finite stand-in for f(∅) so the greedy
// marginals remain well-defined. Any value above the worst single-hub cost
// works; we use a comfortable multiple of the total cost mass.
func (in *Instance) infeasiblePenalty() float64 {
	total := 1.0
	for _, row := range in.Mgmt {
		for _, v := range row {
			total += v
		}
	}
	for n := range in.Sync {
		for l := range in.Sync[n] {
			total += in.Omega * (in.Sync[n][l]*float64(len(in.Clients)) + in.SyncConst[n][l])
		}
	}
	return 10 * total
}

// SolveDoubleGreedy runs Alg. 1 (the Buchbinder et al. double-greedy) on the
// submodular complement of f. With src == nil the deterministic variant is
// used (add u when its marginal gain on X is at least the gain of removing
// it from Y); otherwise the randomized variant with acceptance probability
// a'/(a'+b') — the paper's line 5 — is used, which carries the tight 1/2
// approximation bound.
func (in *Instance) SolveDoubleGreedy(src *rng.Source) (Plan, error) {
	if err := in.Validate(); err != nil {
		return Plan{}, err
	}
	n := len(in.Candidates)
	penalty := in.infeasiblePenalty()
	f := func(placed []bool) float64 {
		plan := in.Evaluate(placed)
		if math.IsInf(plan.TotalCost, 1) {
			return penalty
		}
		return plan.TotalCost
	}
	x := make([]bool, n) // X_0 = ∅
	y := make([]bool, n) // Y_0 = S
	for i := range y {
		y[i] = true
	}
	fx := f(x)
	fy := f(y)
	for u := 0; u < n; u++ {
		// a_u: gain (cost decrease) of adding u to X.
		x[u] = true
		fxAdd := f(x)
		x[u] = false
		a := fx - fxAdd
		// b_u: gain of removing u from Y.
		y[u] = false
		fyDel := f(y)
		y[u] = true
		b := fy - fyDel

		aPos, bPos := math.Max(a, 0), math.Max(b, 0)
		add := false
		if src == nil {
			add = a >= b
		} else {
			// Paper line 10: if a' = b' = 0, take the probability as 1.
			p := 1.0
			if aPos+bPos > 0 {
				p = aPos / (aPos + bPos)
			}
			add = src.Bool(p) || p == 1
		}
		if add {
			x[u] = true
			fx = fxAdd
		} else {
			y[u] = false
			fy = fyDel
		}
	}
	// X and Y now coincide.
	anyPlaced := false
	for _, p := range x {
		anyPlaced = anyPlaced || p
	}
	if !anyPlaced {
		// Guard: fall back to the single best hub, which always beats the
		// infeasible empty set.
		bestN, bestCost := -1, math.Inf(1)
		single := make([]bool, n)
		for u := 0; u < n; u++ {
			single[u] = true
			if c := in.Evaluate(single).TotalCost; c < bestCost {
				bestN, bestCost = u, c
			}
			single[u] = false
		}
		x[bestN] = true
	}
	return in.Evaluate(x), nil
}

// IsSupermodularUniform checks Definition 2 on the instance's set function
// for all (A ⊆ B, i ∉ B) pairs over candidate subsets — exponential, so only
// usable on tiny instances. Lemma 2 guarantees the property for uniform sync
// costs δ; tests use this to validate both the lemma and Evaluate.
func (in *Instance) IsSupermodularUniform() (bool, error) {
	n := len(in.Candidates)
	if n > 12 {
		return false, fmt.Errorf("placement: supermodularity check limited to 12 candidates")
	}
	penalty := in.infeasiblePenalty()
	f := func(mask int) float64 {
		placed := make([]bool, n)
		for i := 0; i < n; i++ {
			placed[i] = mask&(1<<i) != 0
		}
		plan := in.Evaluate(placed)
		if math.IsInf(plan.TotalCost, 1) {
			return penalty
		}
		return plan.TotalCost
	}
	vals := make([]float64, 1<<n)
	for mask := range vals {
		vals[mask] = f(mask)
	}
	for a := 0; a < 1<<n; a++ {
		for b := a; b < 1<<n; b++ {
			if a&b != a { // A not subset of B
				continue
			}
			for i := 0; i < n; i++ {
				bit := 1 << i
				if b&bit != 0 {
					continue
				}
				da := vals[a|bit] - vals[a]
				db := vals[b|bit] - vals[b]
				if da > db+1e-9 {
					return false, nil
				}
			}
		}
	}
	return true, nil
}
