package placement

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/rng"
	"github.com/splicer-pcn/splicer/internal/topology"
)

// randomInstance builds a random instance with symmetric hop-like costs.
func randomInstance(src *rng.Source, numClients, numCands int, omega float64, uniformSync bool) *Instance {
	in := &Instance{
		Clients:    make([]graph.NodeID, numClients),
		Candidates: make([]graph.NodeID, numCands),
		Mgmt:       make([][]float64, numClients),
		Sync:       make([][]float64, numCands),
		SyncConst:  make([][]float64, numCands),
		Omega:      omega,
	}
	for m := range in.Clients {
		in.Clients[m] = graph.NodeID(numCands + m)
		in.Mgmt[m] = make([]float64, numCands)
		for n := range in.Mgmt[m] {
			in.Mgmt[m][n] = 0.02 * float64(src.IntN(6)+1)
		}
	}
	uniform := 0.01 * float64(src.IntN(4)+1)
	for n := range in.Candidates {
		in.Candidates[n] = graph.NodeID(n)
		in.Sync[n] = make([]float64, numCands)
		in.SyncConst[n] = make([]float64, numCands)
	}
	for n := range in.Candidates {
		for l := n + 1; l < numCands; l++ {
			var s float64
			if uniformSync {
				s = uniform
			} else {
				s = 0.01 * float64(src.IntN(5)+1)
			}
			in.Sync[n][l], in.Sync[l][n] = s, s
			e := 0.05 * float64(src.IntN(5)+1)
			in.SyncConst[n][l], in.SyncConst[l][n] = e, e
		}
	}
	return in
}

func graphInstance(t *testing.T, seed uint64, n, numCands int, omega float64) *Instance {
	t.Helper()
	src := rng.New(seed)
	g, err := topology.WattsStrogatz(src, n, 4, 0.3, topology.UniformCapacity(100))
	if err != nil {
		t.Fatal(err)
	}
	cands := topology.TopDegreeNodes(g, numCands)
	candSet := map[graph.NodeID]bool{}
	for _, c := range cands {
		candSet[c] = true
	}
	var clients []graph.NodeID
	for i := 0; i < g.NumNodes(); i++ {
		if !candSet[graph.NodeID(i)] {
			clients = append(clients, graph.NodeID(i))
		}
	}
	in, err := NewInstanceFromGraph(g, clients, cands, omega)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestValidate(t *testing.T) {
	in := randomInstance(rng.New(1), 5, 3, 0.1, false)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *in
	bad.Omega = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("expected omega error")
	}
	bad2 := *in
	bad2.Mgmt = bad2.Mgmt[:1]
	if err := bad2.Validate(); err == nil {
		t.Fatal("expected dimension error")
	}
	empty := &Instance{}
	if err := empty.Validate(); err == nil {
		t.Fatal("expected empty error")
	}
}

func TestAssignLemma1(t *testing.T) {
	// Two candidates; candidate 0 cheap for client 0, candidate 1 cheap for
	// client 1. With both placed and omega=0, each client picks its cheap
	// candidate.
	in := &Instance{
		Clients:    []graph.NodeID{10, 11},
		Candidates: []graph.NodeID{0, 1},
		Mgmt:       [][]float64{{0.1, 0.9}, {0.9, 0.1}},
		Sync:       [][]float64{{0, 0.5}, {0.5, 0}},
		SyncConst:  [][]float64{{0, 0}, {0, 0}},
		Omega:      0,
	}
	assign := in.Assign([]bool{true, true})
	if assign[0] != 0 || assign[1] != 1 {
		t.Fatalf("assign = %v", assign)
	}
	// With a large omega, the sync burden is symmetric here so assignment
	// is unchanged; but placing only candidate 1 forces both clients there.
	assign = in.Assign([]bool{false, true})
	if assign[0] != 1 || assign[1] != 1 {
		t.Fatalf("assign = %v", assign)
	}
	if in.Assign([]bool{false, false}) != nil {
		t.Fatal("empty placement must return nil assignment")
	}
}

func TestAssignConsidersSyncBurden(t *testing.T) {
	// Client is equidistant, but candidate 0 has a heavier sync burden, so
	// with omega > 0 the client must go to candidate 1.
	in := &Instance{
		Clients:    []graph.NodeID{10},
		Candidates: []graph.NodeID{0, 1, 2},
		Mgmt:       [][]float64{{0.5, 0.5, 99}},
		Sync: [][]float64{
			{0, 0.9, 0.9},
			{0.9, 0, 0.1},
			{0.9, 0.1, 0},
		},
		SyncConst: [][]float64{{0, 0, 0}, {0, 0, 0}, {0, 0, 0}},
		Omega:     1,
	}
	assign := in.Assign([]bool{true, true, true})
	if assign[0] != 1 {
		t.Fatalf("assign = %v, want client at candidate 1", assign)
	}
}

func TestEvaluateCostBreakdown(t *testing.T) {
	in := &Instance{
		Clients:    []graph.NodeID{10, 11},
		Candidates: []graph.NodeID{0, 1},
		Mgmt:       [][]float64{{0.2, 0.4}, {0.6, 0.2}},
		Sync:       [][]float64{{0, 0.1}, {0.1, 0}},
		SyncConst:  [][]float64{{0, 0.5}, {0.5, 0}},
		Omega:      2,
	}
	plan := in.Evaluate([]bool{true, true})
	// Assignment: burden_0 = burden_1 = 0.1; client0→cand0 (0.2+2*0.1 <
	// 0.4+2*0.1), client1→cand1.
	if plan.Assign[0] != 0 || plan.Assign[1] != 1 {
		t.Fatalf("assign = %v", plan.Assign)
	}
	wantMgmt := 0.2 + 0.2
	// C_S: pairs (0,1) and (1,0): δ·managed(n) + ε each =
	// 0.1*1+0.5 + 0.1*1+0.5 = 1.2.
	wantSync := 1.2
	if math.Abs(plan.MgmtCost-wantMgmt) > 1e-12 || math.Abs(plan.SyncCost-wantSync) > 1e-12 {
		t.Fatalf("costs: mgmt=%v sync=%v, want %v, %v", plan.MgmtCost, plan.SyncCost, wantMgmt, wantSync)
	}
	if math.Abs(plan.TotalCost-(wantMgmt+2*wantSync)) > 1e-12 {
		t.Fatalf("total = %v", plan.TotalCost)
	}
}

func TestEvaluateEmptyIsInfeasible(t *testing.T) {
	in := randomInstance(rng.New(2), 4, 3, 0.5, false)
	plan := in.Evaluate([]bool{false, false, false})
	if !math.IsInf(plan.TotalCost, 1) || plan.Assign != nil {
		t.Fatalf("empty placement: %+v", plan)
	}
}

func TestSolveExhaustiveSingleCandidate(t *testing.T) {
	in := randomInstance(rng.New(3), 5, 1, 0.5, false)
	plan, err := in.SolveExhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumPlaced() != 1 {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestSolveExhaustiveRefusesLarge(t *testing.T) {
	in := randomInstance(rng.New(4), 2, 25, 0.5, false)
	if _, err := in.SolveExhaustive(); err == nil {
		t.Fatal("expected size refusal")
	}
}

func TestMILPMatchesExhaustive(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		src := rng.New(100 + seed)
		numClients := src.IntN(3) + 2 // 2..4
		numCands := src.IntN(2) + 2   // 2..3
		omega := []float64{0, 0.2, 1, 5}[src.IntN(4)]
		in := randomInstance(src, numClients, numCands, omega, false)
		exact, err := in.SolveExhaustive()
		if err != nil {
			t.Fatal(err)
		}
		milpPlan, err := in.SolveMILP(MILPOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if math.Abs(milpPlan.TotalCost-exact.TotalCost) > 1e-6 {
			t.Fatalf("seed %d: MILP cost %v != exhaustive %v (MILP placed %v, exact placed %v)",
				seed, milpPlan.TotalCost, exact.TotalCost, milpPlan.Placed, exact.Placed)
		}
	}
}

func TestMILPRefusesHuge(t *testing.T) {
	in := randomInstance(rng.New(5), 50, 10, 0.5, false)
	if _, err := in.SolveMILP(MILPOptions{}); err == nil {
		t.Fatal("expected size refusal")
	}
}

func TestSupermodularUniformHolds(t *testing.T) {
	// Lemma 2: uniform sync costs make f supermodular.
	in := randomInstance(rng.New(7), 4, 4, 0.5, true)
	// Uniform ε as well (the lemma's condition is about δ; keep ε uniform
	// for a clean check).
	for n := range in.SyncConst {
		for l := range in.SyncConst[n] {
			if n != l {
				in.SyncConst[n][l] = 0.05
			}
		}
	}
	ok, err := in.IsSupermodularUniform()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("uniform-cost instance not supermodular; Lemma 2 violated")
	}
}

func TestDoubleGreedyDeterministicQuality(t *testing.T) {
	// On small instances the deterministic double greedy should land close
	// to the optimum; we verify within 2x on the submodular-complement
	// guarantee's implied range and exactly when omega is 0 (independent
	// choices).
	for seed := uint64(0); seed < 8; seed++ {
		in := randomInstance(rng.New(200+seed), 6, 5, 0.5, true)
		exact, err := in.SolveExhaustive()
		if err != nil {
			t.Fatal(err)
		}
		approx, err := in.SolveDoubleGreedy(nil)
		if err != nil {
			t.Fatal(err)
		}
		if approx.NumPlaced() == 0 {
			t.Fatal("approximation returned empty placement")
		}
		if approx.TotalCost < exact.TotalCost-1e-9 {
			t.Fatalf("approx beat the optimum: %v < %v", approx.TotalCost, exact.TotalCost)
		}
		if approx.TotalCost > 3*exact.TotalCost+1e-9 {
			t.Fatalf("seed %d: approx cost %v too far above optimum %v", seed, approx.TotalCost, exact.TotalCost)
		}
	}
}

func TestDoubleGreedyRandomizedValid(t *testing.T) {
	in := randomInstance(rng.New(11), 8, 6, 0.5, true)
	exact, err := in.SolveExhaustive()
	if err != nil {
		t.Fatal(err)
	}
	for trial := uint64(0); trial < 5; trial++ {
		approx, err := in.SolveDoubleGreedy(rng.New(300 + trial))
		if err != nil {
			t.Fatal(err)
		}
		if approx.NumPlaced() == 0 {
			t.Fatal("randomized double greedy returned empty placement")
		}
		if approx.TotalCost < exact.TotalCost-1e-9 {
			t.Fatal("randomized approx beat the optimum")
		}
	}
}

func TestNewInstanceFromGraphCosts(t *testing.T) {
	// Path graph 0-1-2-3; candidates {0, 3}, clients {1, 2}.
	g := graph.New(4)
	for i := 0; i < 3; i++ {
		if _, err := g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 10, 10); err != nil {
			t.Fatal(err)
		}
	}
	in, err := NewInstanceFromGraph(g, []graph.NodeID{1, 2}, []graph.NodeID{0, 3}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// hops(1,0)=1, hops(1,3)=2, hops(2,0)=2, hops(2,3)=1.
	if math.Abs(in.Mgmt[0][0]-0.02) > 1e-12 || math.Abs(in.Mgmt[0][1]-0.04) > 1e-12 {
		t.Fatalf("Mgmt[0] = %v", in.Mgmt[0])
	}
	// hops(0,3)=3.
	if math.Abs(in.Sync[0][1]-0.03) > 1e-12 || math.Abs(in.SyncConst[0][1]-0.15) > 1e-12 {
		t.Fatalf("Sync[0][1]=%v SyncConst[0][1]=%v", in.Sync[0][1], in.SyncConst[0][1])
	}
	if in.Sync[0][0] != 0 || in.SyncConst[1][1] != 0 {
		t.Fatal("diagonal costs must be zero")
	}
}

func TestNewInstanceFromGraphDisconnected(t *testing.T) {
	g := graph.New(3)
	if _, err := g.AddEdge(0, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := NewInstanceFromGraph(g, []graph.NodeID{2}, []graph.NodeID{0}, 0.5); err == nil {
		t.Fatal("expected unreachable error")
	}
}

func TestOmegaMonotonicHubCount(t *testing.T) {
	// Fig. 9(c/d) shape: small omega (management-dominated) places more
	// hubs than large omega (sync-dominated).
	in := graphInstance(t, 42, 60, 8, 0)
	lowOmega := *in
	lowOmega.Omega = 0.01
	highOmega := *in
	highOmega.Omega = 20
	low, err := lowOmega.SolveExhaustive()
	if err != nil {
		t.Fatal(err)
	}
	high, err := highOmega.SolveExhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if low.NumPlaced() < high.NumPlaced() {
		t.Fatalf("hub count not monotone: %d hubs at omega=0.01, %d at omega=20",
			low.NumPlaced(), high.NumPlaced())
	}
	if low.NumPlaced() < 2 {
		t.Fatalf("tiny omega should place several hubs, got %d", low.NumPlaced())
	}
	if high.NumPlaced() != 1 {
		t.Fatalf("huge omega should place a single hub, got %d", high.NumPlaced())
	}
}

func TestPropertyExhaustiveIsLowerBound(t *testing.T) {
	// For random placements x, Evaluate(x) >= exhaustive optimum.
	f := func(seed uint64) bool {
		src := rng.New(seed)
		in := randomInstance(src, src.IntN(5)+2, src.IntN(3)+2, src.Float64()*2, false)
		exact, err := in.SolveExhaustive()
		if err != nil {
			return false
		}
		placed := make([]bool, len(in.Candidates))
		any := false
		for i := range placed {
			placed[i] = src.Bool(0.5)
			any = any || placed[i]
		}
		if !any {
			placed[0] = true
		}
		return in.Evaluate(placed).TotalCost >= exact.TotalCost-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanHelpers(t *testing.T) {
	p := Plan{Placed: []bool{true, false, true}}
	if p.NumPlaced() != 2 {
		t.Fatalf("NumPlaced = %d", p.NumPlaced())
	}
	pc := p.PlacedCandidates()
	if len(pc) != 2 || pc[0] != 0 || pc[1] != 2 {
		t.Fatalf("PlacedCandidates = %v", pc)
	}
}
