package graph

import (
	"testing"

	"github.com/splicer-pcn/splicer/internal/rng"
)

// testGraph builds a connected random graph (ring + chords) for equivalence
// checks.
func testGraph(t *testing.T, n int, seed uint64) *Graph {
	t.Helper()
	src := rng.New(seed)
	g := New(n)
	for i := 0; i < n; i++ {
		if _, err := g.AddEdge(NodeID(i), NodeID((i+1)%n), 100, 100); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		u, v := NodeID(src.IntN(n)), NodeID(src.IntN(n))
		if u == v {
			continue
		}
		if _, err := g.AddEdge(u, v, src.Float64()*200+1, src.Float64()*200+1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// A reused finder must return exactly what a fresh finder returns, query
// after query: stale stamps or heap state leaking between queries would
// corrupt later answers.
func TestPathFinderReuseMatchesFresh(t *testing.T) {
	g := testGraph(t, 60, 7)
	pf := NewPathFinder(g)
	src := rng.New(11)
	for q := 0; q < 200; q++ {
		s, d := NodeID(src.IntN(60)), NodeID(src.IntN(60))

		got, gotOK := pf.ShortestPath(s, d, UnitWeight)
		want, wantOK := NewPathFinder(g).ShortestPath(s, d, UnitWeight)
		if gotOK != wantOK || (gotOK && !got.Equal(want)) {
			t.Fatalf("query %d: shortest %d->%d reused %v/%v fresh %v/%v", q, s, d, got, gotOK, want, wantOK)
		}

		got, gotOK = pf.WidestPath(s, d)
		want, wantOK = NewPathFinder(g).WidestPath(s, d)
		if gotOK != wantOK || (gotOK && !got.Equal(want)) {
			t.Fatalf("query %d: widest %d->%d reused %v/%v fresh %v/%v", q, s, d, got, gotOK, want, wantOK)
		}
	}
}

func TestPathFinderKShortestMatchesFresh(t *testing.T) {
	g := testGraph(t, 40, 3)
	pf := NewPathFinder(g)
	src := rng.New(5)
	for q := 0; q < 40; q++ {
		s, d := NodeID(src.IntN(40)), NodeID(src.IntN(40))
		if s == d {
			continue
		}
		got := pf.KShortestPaths(s, d, 5, UnitWeight)
		want := NewPathFinder(g).KShortestPaths(s, d, 5, UnitWeight)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d->%d reused %d paths, fresh %d", q, s, d, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("query %d: %d->%d path %d differs: %v vs %v", q, s, d, i, got[i], want[i])
			}
			if !got[i].Valid(g) {
				t.Fatalf("query %d: invalid path %v", q, got[i])
			}
		}
	}
}

// Growing the graph after the finder was built must be picked up lazily
// (the multi-star reshape adds nodes' channels mid-lifetime).
func TestPathFinderTracksGraphGrowth(t *testing.T) {
	g := New(2)
	if _, err := g.AddEdge(0, 1, 10, 10); err != nil {
		t.Fatal(err)
	}
	pf := NewPathFinder(g)
	if _, ok := pf.ShortestPath(0, 1, UnitWeight); !ok {
		t.Fatal("0->1 unreachable")
	}
	v := g.AddNode()
	if _, err := g.AddEdge(1, v, 10, 10); err != nil {
		t.Fatal(err)
	}
	p, ok := pf.ShortestPath(0, v, UnitWeight)
	if !ok || p.Len() != 2 {
		t.Fatalf("after growth: path %v ok=%v", p, ok)
	}
}

// The reused finder must allocate substantially less than a fresh one per
// query — the whole point of the scratch-buffer design.
func TestPathFinderReuseAllocatesLess(t *testing.T) {
	g := testGraph(t, 500, 9)
	pf := NewPathFinder(g)
	pf.ShortestPath(0, 250, UnitWeight) // warm the heap capacity
	reused := testing.AllocsPerRun(50, func() {
		if _, ok := pf.ShortestPath(0, 250, UnitWeight); !ok {
			t.Fatal("unreachable")
		}
	})
	fresh := testing.AllocsPerRun(50, func() {
		if _, ok := NewPathFinder(g).ShortestPath(0, 250, UnitWeight); !ok {
			t.Fatal("unreachable")
		}
	})
	if reused > fresh/2 {
		t.Fatalf("reused finder allocates %v/op, fresh %v/op — want at least 2x fewer", reused, fresh)
	}
}
