package graph

// Tests for the epoch-snapshot store: publication semantics (incremental
// replay, capacity sharing, overflow resync), pin/recycle lifecycle, reader
// isolation under concurrent churn (-race), and equivalence of snapshot
// reads — including LabelView — with live-graph reads.

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSnapshotPublishAcquire(t *testing.T) {
	g := randomTestGraph(t, 900, 30, 50)
	st := NewSnapshotStore(nil)
	if st.Acquire() != nil {
		t.Fatal("Acquire before first publish must return nil")
	}
	if st.Epoch() != 0 {
		t.Fatalf("epoch before first publish = %d", st.Epoch())
	}
	epoch, published := st.Publish(g, false)
	if !published || epoch != 1 {
		t.Fatalf("first publish = (%d, %v), want (1, true)", epoch, published)
	}
	s := st.Acquire()
	if s == nil || s.Epoch() != 1 {
		t.Fatalf("acquired %+v, want epoch 1", s)
	}
	if err := ValidateSnapshot(s.Graph()); err != nil {
		t.Fatal(err)
	}
	if s.Graph() == g {
		t.Fatal("snapshot must not share the live graph object")
	}
	if got := st.ActivePins(); got != 1 {
		t.Fatalf("ActivePins = %d, want 1", got)
	}
	s.Release()
	if got := st.ActivePins(); got != 0 {
		t.Fatalf("ActivePins after release = %d, want 0", got)
	}

	// No delta: same epoch, nothing published.
	if epoch, published = st.Publish(g, false); published || epoch != 1 {
		t.Fatalf("no-delta publish = (%d, %v), want (1, false)", epoch, published)
	}
	if stats := st.Stats(); stats.SharedNoop != 1 {
		t.Fatalf("SharedNoop = %d, want 1", stats.SharedNoop)
	}
}

func TestSnapshotCapacityOnlySharesEpoch(t *testing.T) {
	g := randomTestGraph(t, 901, 30, 50)
	st := NewSnapshotStore(nil)
	st.Publish(g, false)
	s := st.Acquire()
	defer s.Release()
	oldCap := s.Graph().Edge(0).CapFwd

	// A top-up alone does not move the epoch: readers keep the (stale by
	// design) capacity view until the next shape change or forced refresh.
	g.SetCapacity(0, 12345, 54321)
	if epoch, published := st.Publish(g, false); published || epoch != 1 {
		t.Fatalf("capacity-only publish = (%d, %v), want (1, false)", epoch, published)
	}
	if stats := st.Stats(); stats.SharedCapacity != 1 {
		t.Fatalf("SharedCapacity = %d, want 1", stats.SharedCapacity)
	}
	if got := s.Graph().Edge(0).CapFwd; got != oldCap {
		t.Fatalf("shared snapshot capacity moved: %g -> %g", oldCap, got)
	}

	// Forced: new epoch with the fresh capacities.
	if epoch, published := st.Publish(g, true); !published || epoch != 2 {
		t.Fatalf("forced publish = (%d, %v), want (2, true)", epoch, published)
	}
	s2 := st.Acquire()
	defer s2.Release()
	if got := s2.Graph().Edge(0).CapFwd; got != 12345 {
		t.Fatalf("forced snapshot capacity = %g, want 12345", got)
	}
	if err := ValidateSnapshot(s2.Graph()); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotIncrementalReplay(t *testing.T) {
	g := randomTestGraph(t, 902, 40, 80)
	st := NewSnapshotStore(nil)
	st.Publish(g, false)
	rng := rand.New(rand.NewSource(77))
	for round := 0; round < 30; round++ {
		for i := 0; i < 5; i++ {
			churnStep(rng, g)
		}
		// force: a round of pure top-ups would otherwise share the previous
		// epoch, whose capacities are stale by design.
		st.Publish(g, true)
		s := st.Acquire()
		if err := ValidateSnapshot(s.Graph()); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		assertSnapshotMatchesLive(t, s.Graph(), g)
		s.Release()
	}
	stats := st.Stats()
	// Two buffers alternate; each needs one initial full build, everything
	// after must ride the journal.
	if stats.FullBuilds > uint64(stats.Buffers) || stats.Resyncs != 0 {
		t.Fatalf("builds not incremental: %+v", stats)
	}
	if stats.IncrementalBuilds == 0 {
		t.Fatalf("no incremental builds recorded: %+v", stats)
	}
}

// assertSnapshotMatchesLive checks the snapshot graph is structurally
// identical to the live graph: same shape, same adjacency order (Dijkstra
// tie-breaks are observable), same capacities.
func assertSnapshotMatchesLive(t *testing.T, snap, live *Graph) {
	t.Helper()
	if snap.NumNodes() != live.NumNodes() || snap.NumEdges() != live.NumEdges() || snap.NumLiveEdges() != live.NumLiveEdges() {
		t.Fatalf("shape mismatch: snap %d/%d/%d live %d/%d/%d",
			snap.NumNodes(), snap.NumEdges(), snap.NumLiveEdges(),
			live.NumNodes(), live.NumEdges(), live.NumLiveEdges())
	}
	for u := 0; u < live.NumNodes(); u++ {
		sa, la := snap.Incident(NodeID(u)), live.Incident(NodeID(u))
		if len(sa) != len(la) {
			t.Fatalf("node %d: %d vs %d incident edges", u, len(sa), len(la))
		}
		for i := range la {
			if sa[i] != la[i] {
				t.Fatalf("node %d arc %d: edge %d vs %d (order must match)", u, i, sa[i], la[i])
			}
		}
	}
	for id := 0; id < live.NumEdges(); id++ {
		if snap.EdgeRemoved(EdgeID(id)) != live.EdgeRemoved(EdgeID(id)) {
			t.Fatalf("edge %d: tombstone mismatch", id)
		}
		if live.EdgeRemoved(EdgeID(id)) {
			continue
		}
		se, le := snap.Edge(EdgeID(id)), live.Edge(EdgeID(id))
		if se != le {
			t.Fatalf("edge %d: %+v vs %+v", id, se, le)
		}
	}
}

func TestSnapshotJournalOverflowResyncs(t *testing.T) {
	g := randomTestGraph(t, 903, 20, 30)
	st := NewSnapshotStore(nil)
	// Warm both buffers so the overflow lands on a previously synced buffer
	// (a first-use full build is not a resync).
	st.Publish(g, false)
	g.AddNode()
	st.Publish(g, false)
	// Blow the live journal past the retained window between publishes.
	for i := 0; i < maxJournal+10; i++ {
		id, err := g.AddEdge(NodeID(i%20), NodeID((i+1)%20), 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.RemoveEdge(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, published := st.Publish(g, false); !published {
		t.Fatal("overflowed publish did not publish")
	}
	if stats := st.Stats(); stats.Resyncs == 0 {
		t.Fatalf("journal overflow did not force a resync: %+v", stats)
	}
	s := st.Acquire()
	defer s.Release()
	if err := ValidateSnapshot(s.Graph()); err != nil {
		t.Fatal(err)
	}
	assertSnapshotMatchesLive(t, s.Graph(), g)
}

func TestSnapshotPinnedBufferNotRecycled(t *testing.T) {
	g := randomTestGraph(t, 904, 20, 30)
	st := NewSnapshotStore(nil)
	st.Publish(g, false)
	old := st.Acquire() // pin epoch 1
	oldNodes := old.Graph().NumNodes()

	// Publish several epochs while the pin is held: the pinned buffer must
	// never be rewritten underneath the reader.
	for i := 0; i < 4; i++ {
		g.AddNode()
		st.Publish(g, false)
	}
	if got := old.Graph().NumNodes(); got != oldNodes {
		t.Fatalf("pinned snapshot mutated: %d -> %d nodes", oldNodes, got)
	}
	if err := ValidateSnapshot(old.Graph()); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.Buffers < 3 {
		t.Fatalf("expected a third buffer while two were held, got %+v", stats)
	}
	old.Release()

	// With the pin gone, further publishes recycle instead of growing.
	before := st.Stats().Buffers
	for i := 0; i < 4; i++ {
		g.AddNode()
		st.Publish(g, false)
	}
	after := st.Stats()
	if after.Buffers != before {
		t.Fatalf("buffer pool grew after release: %d -> %d", before, after.Buffers)
	}
	if after.Recycled == 0 {
		t.Fatalf("no recycling recorded: %+v", after)
	}
}

func TestSnapshotSetRootsForcesRelabel(t *testing.T) {
	g := randomTestGraph(t, 905, 30, 60)
	st := NewSnapshotStore([]NodeID{1, 2})
	st.Publish(g, false)
	s := st.Acquire()
	v, ok := s.Labels()
	if !ok {
		t.Fatal("no label view on rooted snapshot")
	}
	if got := v.Hubs(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("hubs = %v, want [1 2]", got)
	}
	s.Release()

	// Same topology, new roots: Publish must still cut a new epoch.
	st.SetRoots([]NodeID{5})
	if epoch, published := st.Publish(g, false); !published || epoch != 2 {
		t.Fatalf("post-SetRoots publish = (%d, %v), want (2, true)", epoch, published)
	}
	s2 := st.Acquire()
	defer s2.Release()
	v2, _ := s2.Labels()
	if got := v2.Hubs(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("hubs after SetRoots = %v, want [5]", got)
	}
}

// TestSnapshotEquivalence pins the core serving contract: every query
// against a published snapshot returns byte-identical paths to the same
// query against the live graph at publication time — including label-served
// answers through a LabelView.
func TestSnapshotEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	g := randomTestGraph(t, 906, 50, 100)
	roots := []NodeID{3, 17, 31}
	st := NewSnapshotStore(roots)
	livePF := NewPathFinder(g)
	snapPF := NewPathFinder(g)
	for round := 0; round < 20; round++ {
		st.Publish(g, true) // force so widest-path capacities match live
		s := st.Acquire()
		sg := s.Graph()
		snapPF.Rebind(sg)
		v, ok := s.Labels()
		if !ok {
			t.Fatal("no label view")
		}
		n := g.NumNodes()
		for q := 0; q < 30; q++ {
			src, dst := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			lp, lok := livePF.UnitShortestPath(src, dst)
			sp, sok := snapPF.UnitShortestPath(src, dst)
			if lok != sok || (lok && !lp.Equal(sp)) {
				t.Fatalf("round %d: unit path diverges for %d->%d", round, src, dst)
			}
			hub := roots[q%len(roots)]
			vp, vok := v.UnitShortestPath(snapPF, hub, dst)
			hp, hok := livePF.UnitShortestPath(hub, dst)
			if vok != hok || (vok && !vp.Equal(hp)) {
				t.Fatalf("round %d: label path diverges for %d->%d", round, hub, dst)
			}
			vk := v.KShortestPathsUnit(snapPF, hub, dst, 3)
			lk := livePF.KShortestPathsUnit(hub, dst, 3)
			if len(vk) != len(lk) {
				t.Fatalf("round %d: KSP count diverges for %d->%d", round, hub, dst)
			}
			for i := range vk {
				if !vk[i].Equal(lk[i]) {
					t.Fatalf("round %d: KSP[%d] diverges for %d->%d", round, i, hub, dst)
				}
			}
			wp, wok := livePF.WidestPath(src, dst)
			ws, wsok := snapPF.WidestPath(src, dst)
			if wok != wsok || (wok && !wp.Equal(ws)) {
				t.Fatalf("round %d: widest path diverges for %d->%d", round, src, dst)
			}
		}
		s.Release()
		// Mutate AFTER the comparisons so live and snapshot agree per round.
		for i := 0; i < 6; i++ {
			churnStep(rng, g)
		}
		// churnStep may remove a root's last edge; labels handle that (the
		// hub just becomes unreachable-from), nothing to fix up here.
	}
}

// TestSnapshotChurnVsReaders is the -race acceptance test: one writer
// mutates the live graph and publishes, N readers pin epochs and query.
// Readers must never observe a half-applied mutation (ValidateSnapshot
// checks full structural consistency) and every returned path must be valid
// against the pinned snapshot.
func TestSnapshotChurnVsReaders(t *testing.T) {
	const readers = 8
	const rounds = 120
	g := randomTestGraph(t, 907, 60, 120)
	st := NewSnapshotStore([]NodeID{2, 9, 21})
	st.Publish(g, false)

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, readers)

	wg.Add(1)
	go func() { // the single writer
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for round := 0; round < rounds; round++ {
			for i := 0; i < 4; i++ {
				churnStep(rng, g)
			}
			st.Publish(g, round%10 == 0)
		}
		stop.Store(true)
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var pf *PathFinder // created from the first pinned snapshot, never from the live graph
			var lastEpoch uint64
			for !stop.Load() {
				s := st.Acquire()
				if s == nil {
					continue
				}
				if e := s.Epoch(); e < lastEpoch {
					errs <- errEpochWentBackwards(lastEpoch, e)
					s.Release()
					return
				} else {
					lastEpoch = e
				}
				sg := s.Graph()
				if err := ValidateSnapshot(sg); err != nil {
					errs <- err
					s.Release()
					return
				}
				if pf == nil {
					pf = NewPathFinder(sg)
				} else {
					pf.Rebind(sg)
				}
				n := sg.NumNodes()
				for q := 0; q < 5; q++ {
					src, dst := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
					if p, ok := pf.UnitShortestPath(src, dst); ok && !p.Valid(sg) {
						errs <- errInvalidPath(s.Epoch(), src, dst)
						s.Release()
						return
					}
					if v, ok := s.Labels(); ok {
						hubs := v.Hubs()
						if p, ok := v.UnitShortestPath(pf, hubs[q%len(hubs)], dst); ok && !p.Valid(sg) {
							errs <- errInvalidPath(s.Epoch(), hubs[q%len(hubs)], dst)
							s.Release()
							return
						}
					}
				}
				s.Release()
			}
		}(int64(100 + r))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if pins := st.ActivePins(); pins != 0 {
		t.Fatalf("leaked %d pins", pins)
	}
}

type snapshotTestError string

func (e snapshotTestError) Error() string { return string(e) }

func errEpochWentBackwards(from, to uint64) error {
	return snapshotTestError("epoch went backwards: " + itoa(from) + " -> " + itoa(to))
}

func errInvalidPath(epoch uint64, src, dst NodeID) error {
	return snapshotTestError("epoch " + itoa(epoch) + ": invalid path " + itoa(uint64(src)) + "->" + itoa(uint64(dst)))
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestLabelViewRequiresBuildAll(t *testing.T) {
	g := randomTestGraph(t, 908, 20, 30)
	hl := NewHubLabels(g, nil, []NodeID{1})
	defer func() {
		if recover() == nil {
			t.Fatal("View over unbuilt labels did not panic")
		}
	}()
	hl.View()
}

func TestLabelViewServesWithoutMutation(t *testing.T) {
	g := randomTestGraph(t, 909, 30, 60)
	hl := NewHubLabels(g, nil, []NodeID{4, 7})
	hl.BuildAll()
	before := hl.Stats()
	v := hl.View()
	pf := NewPathFinder(g)
	for dst := 0; dst < g.NumNodes(); dst++ {
		vp, vok := v.UnitShortestPath(pf, 4, NodeID(dst))
		hp, hok := pf.UnitShortestPath(4, NodeID(dst))
		if vok != hok || (vok && !vp.Equal(hp)) {
			t.Fatalf("view path diverges for 4->%d", dst)
		}
	}
	if after := hl.Stats(); after != before {
		t.Fatalf("view reads mutated label stats: %+v -> %+v", before, after)
	}
}
