// Epoch-pinned graph snapshots. The batch simulator reads the one live
// Graph it also mutates; a serving deployment cannot — query workers need a
// topology that holds still for the duration of a query while churn writers
// keep mutating. The SnapshotStore turns the mutable graph into a sequence
// of immutable epochs: a writer publishes a frozen copy (CSR built, hub
// labels built), readers pin the current epoch with one atomic load plus a
// refcount, query it with zero locks on the hot path, and unpin when done.
//
// Publication is incremental, not copy-the-world: the store keeps a small
// pool of private graph buffers and brings the chosen buffer up to date by
// replaying the live graph's shape journal (see journal.go) from the
// buffer's cursor — O(mutations since this buffer last published), not
// O(E). A full clone happens only for a brand-new buffer, after a journal
// overflow, or if replay ever diverges (defensive). Buffers are recycled
// once their snapshot is retired (no longer current) and unpinned; readers
// that lose the publication race re-acquire, so a recycled buffer is never
// read mid-rewrite.
//
// Replay applies the identical mutation sequence the live graph executed,
// so the buffer's adjacency order — and therefore CSR arc order and every
// Dijkstra tie-break — matches the live graph exactly: a query against the
// snapshot returns byte-identical paths to the same query against the live
// graph at publication time. TestSnapshotEquivalence pins this.
//
// Capacity changes are deliberately second-class: the shape journal excludes
// SetCapacity (a balance-gossip refresh writes O(E) capacities per tick), so
// Publish syncs the capacity column by a compare scan only when the
// capacity counter moved. A capacity-only delta does not force a new epoch
// unless the publisher asks (force): unit-weight routing — the serving hot
// path — is capacity-blind, and width-based path types tolerate gossip-stale
// balances by design, so top-ups share the current snapshot until the next
// shape change or forced refresh. See DESIGN.md "Serving layer & epoch
// snapshots".
package graph

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Snapshot is one published epoch: an immutable graph (CSR built) plus, when
// the store has label roots, a fully built hub-label tier. A Snapshot is
// obtained pinned from SnapshotStore.Acquire and MUST be released; between
// Acquire and Release any number of goroutines may read it, each through its
// own PathFinder (see PathFinder.Rebind).
type Snapshot struct {
	epoch  uint64
	seq    uint64 // live MutationSeq this snapshot reflects
	capSeq uint64 // live CapMutations the capacity column reflects
	buf    *snapshotBuf
	store  *SnapshotStore
	pins   atomic.Int64
}

// Epoch returns the publication sequence number (1 for the first publish).
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Seq returns the live graph's shape-mutation sequence this epoch reflects.
func (s *Snapshot) Seq() uint64 { return s.seq }

// Graph returns the frozen topology. It must be treated as read-only: the
// store rewrites the underlying buffer only after the snapshot is retired
// and fully unpinned.
func (s *Snapshot) Graph() *Graph { return s.buf.g }

// Labels returns the read-only hub-label view for this epoch. ok is false
// when the store has no label roots.
func (s *Snapshot) Labels() (LabelView, bool) {
	if s.buf.hl == nil || len(s.buf.hl.hubs) == 0 {
		return LabelView{}, false
	}
	return s.buf.hl.View(), true
}

// Release unpins the snapshot. The caller must not touch the snapshot (or
// anything read through it) afterwards.
func (s *Snapshot) Release() {
	s.store.activePins.Add(-1)
	s.pins.Add(-1)
}

// snapshotBuf is one reusable graph buffer. seq/capSeq are cursors into the
// LIVE graph's counters (what this buffer currently mirrors); rootsGen
// tracks the store's label-root set the buffer's hl was built for.
type snapshotBuf struct {
	g        *Graph
	hl       *HubLabels
	seq      uint64
	capSeq   uint64
	rootsGen uint64
	snap     *Snapshot // latest snapshot wrapping this buffer (nil before first publish)
}

// SnapshotStats counts store activity, for tests and the serving layer's
// stats endpoint.
type SnapshotStats struct {
	// Publishes counts published epochs. IncrementalBuilds is the subset
	// brought up to date by journal replay; FullBuilds cloned the live graph
	// (first use of a buffer, journal overflow, or replay divergence), and
	// Resyncs is the subset of FullBuilds forced by overflow/divergence on a
	// previously synced buffer.
	Publishes         uint64 `json:"publishes"`
	IncrementalBuilds uint64 `json:"incremental_builds"`
	FullBuilds        uint64 `json:"full_builds"`
	Resyncs           uint64 `json:"resyncs"`
	// SharedCapacity counts Publish calls skipped because only capacities
	// changed (the epoch is shared; see package comment). SharedNoop counts
	// Publish calls with no delta at all.
	SharedCapacity uint64 `json:"shared_capacity"`
	SharedNoop     uint64 `json:"shared_noop"`
	// Buffers is the number of graph buffers ever allocated; Recycled counts
	// publications that reused a retired buffer.
	Buffers  int    `json:"buffers"`
	Recycled uint64 `json:"recycled"`
	// ActivePins is the number of currently pinned snapshot references.
	ActivePins int64 `json:"active_pins"`
	// Epoch is the current epoch (0 before the first publish).
	Epoch uint64 `json:"epoch"`
}

// SnapshotStore publishes epoch snapshots of one live graph and hands them
// to concurrent readers. Writers (whoever mutates the live graph) call
// Publish after their mutation batch; readers call Acquire/Release. Publish
// calls are serialized by an internal mutex; Acquire/Release never block.
type SnapshotStore struct {
	mu       sync.Mutex // serializes publishers and guards bufs/stats/roots
	cur      atomic.Pointer[Snapshot]
	bufs     []*snapshotBuf
	epoch    uint64
	roots    []NodeID
	rootsGen uint64
	stats    SnapshotStats

	activePins atomic.Int64
}

// NewSnapshotStore returns an empty store. roots seeds the hub-label tier
// built into every snapshot (nil for label-free snapshots); call Publish to
// produce the first epoch.
func NewSnapshotStore(roots []NodeID) *SnapshotStore {
	return &SnapshotStore{roots: append([]NodeID(nil), roots...), rootsGen: 1}
}

// SetRoots replaces the label-root set for subsequent publications (a hub
// re-placement). Existing epochs keep their old tier; the next Publish
// rebuilds labels from the new roots.
func (st *SnapshotStore) SetRoots(roots []NodeID) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.roots = append(st.roots[:0], roots...)
	st.rootsGen++
}

// Epoch returns the current epoch (0 before the first publish).
func (st *SnapshotStore) Epoch() uint64 {
	if s := st.cur.Load(); s != nil {
		return s.epoch
	}
	return 0
}

// ActivePins returns the number of snapshot references currently pinned —
// the serving layer's shutdown test asserts this drains to zero.
func (st *SnapshotStore) ActivePins() int64 { return st.activePins.Load() }

// Stats returns a snapshot of the store counters.
func (st *SnapshotStore) Stats() SnapshotStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.stats
	s.ActivePins = st.activePins.Load()
	s.Epoch = st.epoch
	return s
}

// Acquire pins and returns the current snapshot (nil before the first
// publish). The hot path is one atomic load, one refcount increment and one
// confirming load; the retry loop runs only when a publication lands in
// that window. Callers MUST Release exactly once.
func (st *SnapshotStore) Acquire() *Snapshot {
	for {
		s := st.cur.Load()
		if s == nil {
			return nil
		}
		s.pins.Add(1)
		// Confirm s is still current. A publisher recycles a buffer only
		// when its snapshot is retired AND unpinned; if the publication
		// raced our pin, the confirm fails before we read anything through
		// the snapshot, so a recycled buffer is never observed mid-rewrite.
		if st.cur.Load() == s {
			st.activePins.Add(1)
			return s
		}
		s.pins.Add(-1)
	}
}

// Publish makes the live graph's current state the new epoch. It returns
// the epoch serving the state and whether a new snapshot was actually
// published: a no-delta call returns the current epoch unchanged, and a
// capacity-only delta shares the current epoch unless force is set (see the
// package comment for why that is sound). The caller must be the (single)
// writer of live, or otherwise ensure live is quiescent for the duration.
func (st *SnapshotStore) Publish(live *Graph, force bool) (uint64, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	cur := st.cur.Load()
	if cur != nil && cur.buf.rootsGen == st.rootsGen {
		if live.MutationSeq() == cur.seq {
			if live.CapMutations() == cur.capSeq {
				st.stats.SharedNoop++
				return cur.epoch, false
			}
			if !force {
				st.stats.SharedCapacity++
				return cur.epoch, false
			}
		}
	}
	buf := st.takeBuf(cur)
	st.syncBuf(buf, live)
	if buf.hl == nil || buf.rootsGen != st.rootsGen {
		buf.hl = nil
		if len(st.roots) > 0 {
			buf.hl = NewHubLabels(buf.g, nil, st.roots)
		}
		buf.rootsGen = st.rootsGen
	}
	if buf.hl != nil {
		buf.hl.BuildAll()
	}
	st.epoch++
	snap := &Snapshot{epoch: st.epoch, seq: buf.seq, capSeq: buf.capSeq, buf: buf, store: st}
	buf.snap = snap
	st.cur.Store(snap)
	st.stats.Publishes++
	return st.epoch, true
}

// takeBuf returns a buffer safe to rewrite: a retired, unpinned one when
// available, else a fresh one. cur's buffer is never eligible.
func (st *SnapshotStore) takeBuf(cur *Snapshot) *snapshotBuf {
	for _, b := range st.bufs {
		if cur != nil && b == cur.buf {
			continue
		}
		if b.snap == nil || b.snap.pins.Load() == 0 {
			if b.snap != nil {
				st.stats.Recycled++
			}
			b.snap = nil
			return b
		}
	}
	b := &snapshotBuf{}
	st.bufs = append(st.bufs, b)
	st.stats.Buffers++
	return b
}

// syncBuf brings buf's graph to the live graph's current state: journal
// replay from the buffer's cursor when the window allows, full clone
// otherwise, then a capacity-column sync if capacities moved.
func (st *SnapshotStore) syncBuf(buf *snapshotBuf, live *Graph) {
	if buf.g == nil {
		st.rebuildBuf(buf, live, false)
		return
	}
	muts, ok := live.MutationsSince(buf.seq)
	if !ok {
		st.rebuildBuf(buf, live, true)
		return
	}
	for _, m := range muts {
		if !applyMutation(buf.g, m, live) {
			// Divergence should be impossible (same mutation sequence on the
			// same prefix); resync defensively rather than serving a wrong
			// topology.
			st.rebuildBuf(buf, live, true)
			return
		}
	}
	buf.seq = live.MutationSeq()
	buf.g.csrEnsure()
	st.stats.IncrementalBuilds++
	st.syncCapacities(buf, live)
}

// applyMutation replays one live-graph shape mutation onto the buffer,
// reporting whether the buffer stayed aligned (same IDs).
func applyMutation(g *Graph, m Mutation, live *Graph) bool {
	switch m.Kind {
	case MutAddNode:
		return g.AddNode() == m.U
	case MutAddEdge:
		// Fund with the live edge's CURRENT capacities: the capacity sync
		// below overwrites them anyway, and the journal records shape only.
		e := live.Edge(m.Edge)
		id, err := g.AddEdge(m.U, m.V, e.CapFwd, e.CapRev)
		return err == nil && id == m.Edge
	case MutRemoveEdge:
		return g.RemoveEdge(m.Edge) == nil
	}
	return false
}

// rebuildBuf replaces the buffer's graph with a full clone of live.
func (st *SnapshotStore) rebuildBuf(buf *snapshotBuf, live *Graph, resync bool) {
	buf.g = live.Clone()
	buf.g.csrEnsure()
	buf.hl = nil // labels were bound to the old graph object
	buf.seq = live.MutationSeq()
	buf.capSeq = live.CapMutations()
	st.stats.FullBuilds++
	if resync {
		st.stats.Resyncs++
	}
}

// syncCapacities copies changed capacities from live into the buffer (and
// its CSR capacity column) with one compare scan, skipped entirely when the
// capacity counter did not move.
func (st *SnapshotStore) syncCapacities(buf *snapshotBuf, live *Graph) {
	if buf.capSeq == live.CapMutations() {
		return
	}
	for id := range live.edges {
		le := &live.edges[id]
		be := &buf.g.edges[id]
		if be.CapFwd != le.CapFwd || be.CapRev != le.CapRev {
			if buf.g.removed[id] {
				be.CapFwd, be.CapRev = le.CapFwd, le.CapRev
				continue
			}
			buf.g.SetCapacity(EdgeID(id), le.CapFwd, le.CapRev)
		}
	}
	buf.capSeq = live.CapMutations()
}

// ValidateSnapshot checks the internal consistency of a snapshot graph: the
// CSR arc layout must mirror the adjacency lists (same arcs, same order,
// same capacities), spans must be in bounds and edge positions aligned.
// Readers in the concurrency tests call it to prove they never observe a
// half-applied mutation; it is exported because the serving-layer tests
// (outside this package) assert the same invariant.
func ValidateSnapshot(g *Graph) error {
	if !g.csr.ok {
		return fmt.Errorf("graph: snapshot published without CSR")
	}
	c := &g.csr
	if len(c.span) != len(g.adj) {
		return fmt.Errorf("graph: CSR has %d spans for %d nodes", len(c.span), len(g.adj))
	}
	live := 0
	for u := range g.adj {
		s := c.span[u]
		if s.off < 0 || int(s.off+s.n) > len(c.slab) {
			return fmt.Errorf("graph: node %d span [%d,%d) exceeds slab %d", u, s.off, s.off+s.n, len(c.slab))
		}
		if int(s.n) != len(g.adj[u]) {
			return fmt.Errorf("graph: node %d has %d arcs in CSR, %d in adjacency", u, s.n, len(g.adj[u]))
		}
		for i, eid := range g.adj[u] {
			arc := c.slab[s.off+int32(i)]
			if EdgeID(uint32(arc)) != eid {
				return fmt.Errorf("graph: node %d arc %d is edge %d in CSR, %d in adjacency", u, i, uint32(arc), eid)
			}
			e := g.edges[eid]
			if g.removed[eid] {
				return fmt.Errorf("graph: node %d lists removed edge %d", u, eid)
			}
			if NodeID(arc>>32) != e.Other(NodeID(u)) {
				return fmt.Errorf("graph: edge %d arc target mismatch at node %d", eid, u)
			}
			if c.caps[s.off+int32(i)] != e.Capacity(NodeID(u)) {
				return fmt.Errorf("graph: edge %d capacity column stale at node %d", eid, u)
			}
			live++
		}
	}
	if live != 2*g.numLive {
		return fmt.Errorf("graph: %d arcs listed, %d live edges", live, g.numLive)
	}
	return nil
}
