package graph

import "math"

// FlowPath is a path together with the flow amount assigned to it by a flow
// decomposition.
type FlowPath struct {
	Path   Path
	Amount float64
}

const flowEps = 1e-9

// maxflow residual arc. Forward arcs carry orig > 0 (the initial capacity);
// pure residual arcs have orig == 0.
type mfArc struct {
	to   NodeID
	cap  float64 // remaining residual capacity
	orig float64 // initial capacity (0 for residual-only arcs)
	rev  int     // index of the paired reverse arc within to's bucket
	edge EdgeID
}

// MaxFlow computes the maximum src→dst flow respecting directional edge
// capacities using Dinic's algorithm, and decomposes the resulting flow into
// paths. The Flash baseline uses this to route "elephant" payments.
//
// limit caps the computed flow (pass math.Inf(1) for the true max flow):
// Flash stops augmenting once the payment amount is covered.
//
// The residual network lives in one flat arc arena indexed by per-node
// offsets (counted in a first pass), so building it costs a handful of
// allocations instead of growing a slice per node — Flash calls this per
// elephant payment, which made the incremental appends the simulator's
// biggest allocation site. Arc order within each node's bucket matches the
// former append order exactly, so BFS/DFS traversal — and therefore the
// flow decomposition — is unchanged.
func (g *Graph) MaxFlow(src, dst NodeID, limit float64) (float64, []FlowPath) {
	if src == dst || limit <= 0 {
		return 0, nil
	}
	n := g.NumNodes()

	// Pass 1: count arcs per node (a forward arc at the origin plus a
	// residual arc at the target, per positive-capacity direction).
	counts := make([]int32, n+1)
	for i := range g.edges {
		if g.removed[i] {
			continue // tombstones keep their capacities; flow must not use them
		}
		e := &g.edges[i]
		if e.CapFwd > 0 {
			counts[e.U]++
			counts[e.V]++
		}
		if e.CapRev > 0 {
			counts[e.V]++
			counts[e.U]++
		}
	}
	start := make([]int32, n+1)
	for u := 0; u < n; u++ {
		start[u+1] = start[u] + counts[u]
	}
	arcs := make([]mfArc, start[n])
	cur := counts[:n]
	copy(cur, start[:n]) // reuse counts as per-node fill cursors

	// Pass 2: fill, preserving the former append order (edges in id order;
	// for each direction, the forward arc before its residual twin).
	addArc := func(u, v NodeID, c float64, eid EdgeID) {
		fi, ri := cur[u], cur[v]
		arcs[fi] = mfArc{to: v, cap: c, orig: c, rev: int(ri - start[v]), edge: eid}
		arcs[ri] = mfArc{to: u, cap: 0, orig: 0, rev: int(fi - start[u]), edge: eid}
		cur[u]++
		cur[v]++
	}
	for i := range g.edges {
		if g.removed[i] {
			continue
		}
		e := &g.edges[i]
		if e.CapFwd > 0 {
			addArc(e.U, e.V, e.CapFwd, e.ID)
		}
		if e.CapRev > 0 {
			addArc(e.V, e.U, e.CapRev, e.ID)
		}
	}

	level := make([]int, n)
	iter := make([]int32, n)
	queue := make([]NodeID, 0, n)
	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[src] = 0
		queue = append(queue[:0], src)
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for i, end := start[u], start[u+1]; i < end; i++ {
				a := &arcs[i]
				if a.cap > flowEps && level[a.to] < 0 {
					level[a.to] = level[u] + 1
					queue = append(queue, a.to)
				}
			}
		}
		return level[dst] >= 0
	}
	var dfs func(u NodeID, f float64) float64
	dfs = func(u NodeID, f float64) float64 {
		if u == dst {
			return f
		}
		for ; iter[u] < start[u+1]-start[u]; iter[u]++ {
			a := &arcs[start[u]+iter[u]]
			if a.cap > flowEps && level[a.to] == level[u]+1 {
				d := dfs(a.to, math.Min(f, a.cap))
				if d > flowEps {
					a.cap -= d
					arcs[start[a.to]+int32(a.rev)].cap += d
					return d
				}
			}
		}
		return 0
	}

	total := 0.0
	for total < limit-flowEps && bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := dfs(src, limit-total)
			if f <= flowEps {
				break
			}
			total += f
			if total >= limit-flowEps {
				break
			}
		}
	}
	if total <= flowEps {
		return 0, nil
	}

	// Net flow on each forward arc is orig - cap; residual arcs never carry
	// positive net flow of their own. Cancel opposite-direction flows on the
	// same channel so the decomposition doesn't emit 2-cycles.
	flow := make([]float64, len(arcs))
	for i := range arcs {
		if a := &arcs[i]; a.orig > 0 {
			if f := a.orig - a.cap; f > flowEps {
				flow[i] = f
			}
		}
	}

	var paths []FlowPath
	prevArc := make([]int32, n)
	prevNode := make([]NodeID, n)
	seen := make([]bool, n)
	for iterGuard := 0; iterGuard <= len(g.edges)+1; iterGuard++ {
		for i := range prevArc {
			prevArc[i] = -1
			prevNode[i] = -1
			seen[i] = false
		}
		queue = append(queue[:0], src)
		seen[src] = true
		for qi := 0; qi < len(queue) && !seen[dst]; qi++ {
			u := queue[qi]
			for i, end := start[u], start[u+1]; i < end; i++ {
				if a := &arcs[i]; flow[i] > flowEps && !seen[a.to] {
					seen[a.to] = true
					prevArc[a.to] = i
					prevNode[a.to] = u
					queue = append(queue, a.to)
				}
			}
		}
		if !seen[dst] {
			break
		}
		amount := math.Inf(1)
		for at := dst; at != src; at = prevNode[at] {
			if f := flow[prevArc[at]]; f < amount {
				amount = f
			}
		}
		var nodes []NodeID
		var eids []EdgeID
		for at := dst; at != src; at = prevNode[at] {
			nodes = append(nodes, at)
			eids = append(eids, arcs[prevArc[at]].edge)
			flow[prevArc[at]] -= amount
		}
		nodes = append(nodes, src)
		for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
			nodes[i], nodes[j] = nodes[j], nodes[i]
		}
		for i, j := 0, len(eids)-1; i < j; i, j = i+1, j-1 {
			eids[i], eids[j] = eids[j], eids[i]
		}
		paths = append(paths, FlowPath{Path: Path{Nodes: nodes, Edges: eids}, Amount: amount})
	}
	return total, paths
}
