package graph

import "math"

// FlowPath is a path together with the flow amount assigned to it by a flow
// decomposition.
type FlowPath struct {
	Path   Path
	Amount float64
}

const flowEps = 1e-9

// maxflow residual arc. Forward arcs carry orig > 0 (the initial capacity);
// pure residual arcs have orig == 0.
type mfArc struct {
	to   NodeID
	cap  float64 // remaining residual capacity
	orig float64 // initial capacity (0 for residual-only arcs)
	rev  int     // index of the paired reverse arc in arcs[to]
	edge EdgeID
}

// MaxFlow computes the maximum src→dst flow respecting directional edge
// capacities using Dinic's algorithm, and decomposes the resulting flow into
// paths. The Flash baseline uses this to route "elephant" payments.
//
// limit caps the computed flow (pass math.Inf(1) for the true max flow):
// Flash stops augmenting once the payment amount is covered.
func (g *Graph) MaxFlow(src, dst NodeID, limit float64) (float64, []FlowPath) {
	if src == dst || limit <= 0 {
		return 0, nil
	}
	n := g.NumNodes()
	arcs := make([][]mfArc, n)
	addArc := func(u, v NodeID, c float64, eid EdgeID) {
		arcs[u] = append(arcs[u], mfArc{to: v, cap: c, orig: c, rev: len(arcs[v]), edge: eid})
		arcs[v] = append(arcs[v], mfArc{to: u, cap: 0, orig: 0, rev: len(arcs[u]) - 1, edge: eid})
	}
	for i, e := range g.edges {
		if g.removed[i] {
			continue // tombstones keep their capacities; flow must not use them
		}
		if e.CapFwd > 0 {
			addArc(e.U, e.V, e.CapFwd, e.ID)
		}
		if e.CapRev > 0 {
			addArc(e.V, e.U, e.CapRev, e.ID)
		}
	}

	level := make([]int, n)
	iter := make([]int, n)
	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[src] = 0
		queue := []NodeID{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, a := range arcs[u] {
				if a.cap > flowEps && level[a.to] < 0 {
					level[a.to] = level[u] + 1
					queue = append(queue, a.to)
				}
			}
		}
		return level[dst] >= 0
	}
	var dfs func(u NodeID, f float64) float64
	dfs = func(u NodeID, f float64) float64 {
		if u == dst {
			return f
		}
		for ; iter[u] < len(arcs[u]); iter[u]++ {
			a := &arcs[u][iter[u]]
			if a.cap > flowEps && level[a.to] == level[u]+1 {
				d := dfs(a.to, math.Min(f, a.cap))
				if d > flowEps {
					a.cap -= d
					arcs[a.to][a.rev].cap += d
					return d
				}
			}
		}
		return 0
	}

	total := 0.0
	for total < limit-flowEps && bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := dfs(src, limit-total)
			if f <= flowEps {
				break
			}
			total += f
			if total >= limit-flowEps {
				break
			}
		}
	}
	if total <= flowEps {
		return 0, nil
	}

	// Net flow on each forward arc is orig - cap; residual arcs never carry
	// positive net flow of their own. Cancel opposite-direction flows on the
	// same channel so the decomposition doesn't emit 2-cycles.
	flow := make([][]float64, n)
	for u := range arcs {
		flow[u] = make([]float64, len(arcs[u]))
		for i, a := range arcs[u] {
			if a.orig > 0 {
				if f := a.orig - a.cap; f > flowEps {
					flow[u][i] = f
				}
			}
		}
	}

	var paths []FlowPath
	for iterGuard := 0; iterGuard <= len(g.edges)+1; iterGuard++ {
		prevArc := make([]int, n)
		prevNode := make([]NodeID, n)
		for i := range prevArc {
			prevArc[i] = -1
			prevNode[i] = -1
		}
		queue := []NodeID{src}
		seen := make([]bool, n)
		seen[src] = true
		for len(queue) > 0 && !seen[dst] {
			u := queue[0]
			queue = queue[1:]
			for i, a := range arcs[u] {
				if flow[u][i] > flowEps && !seen[a.to] {
					seen[a.to] = true
					prevArc[a.to] = i
					prevNode[a.to] = u
					queue = append(queue, a.to)
				}
			}
		}
		if !seen[dst] {
			break
		}
		amount := math.Inf(1)
		for at := dst; at != src; at = prevNode[at] {
			u := prevNode[at]
			if f := flow[u][prevArc[at]]; f < amount {
				amount = f
			}
		}
		var nodes []NodeID
		var eids []EdgeID
		for at := dst; at != src; at = prevNode[at] {
			u := prevNode[at]
			nodes = append(nodes, at)
			eids = append(eids, arcs[u][prevArc[at]].edge)
			flow[u][prevArc[at]] -= amount
		}
		nodes = append(nodes, src)
		for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
			nodes[i], nodes[j] = nodes[j], nodes[i]
		}
		for i, j := 0, len(eids)-1; i < j; i, j = i+1, j-1 {
			eids[i], eids[j] = eids[j], eids[i]
		}
		paths = append(paths, FlowPath{Path: Path{Nodes: nodes, Edges: eids}, Amount: amount})
	}
	return total, paths
}
