package graph

// nodeHeap is a binary min-heap of (priority, node) pairs specialized for
// Dijkstra-style traversals. Duplicate pushes of a node are allowed; stale
// entries are skipped by the caller via a visited set.
//
// The entries are fused into one struct slice (one cache line touched per
// level instead of two parallel arrays) and the sifts are hole-based (the
// moving entry is written once at its final position instead of swapped
// down level by level). Both are pure constant-factor changes: the
// comparison predicate and child-visit order are unchanged, so the pop
// order — including the order of equal-priority entries, which Dijkstra's
// tie-breaking inherits — is bit-identical to the former swap-based
// two-array heap. This heap is the simulator's hottest loop (every edge
// relaxation of every route computation passes through it).
type nodeHeapEntry struct {
	prio float64
	node NodeID
}

type nodeHeap struct {
	entries []nodeHeapEntry
}

func (h *nodeHeap) len() int { return len(h.entries) }

// reset empties the heap, keeping its backing array for reuse.
func (h *nodeHeap) reset() { h.entries = h.entries[:0] }

func (h *nodeHeap) push(n NodeID, p float64) {
	h.entries = append(h.entries, nodeHeapEntry{prio: p, node: n})
	e := h.entries
	i := len(e) - 1
	moving := e[i]
	for i > 0 {
		parent := (i - 1) / 2
		if e[parent].prio <= moving.prio {
			break
		}
		e[i] = e[parent]
		i = parent
	}
	e[i] = moving
}

func (h *nodeHeap) pop() (NodeID, float64) {
	e := h.entries
	top := e[0]
	last := len(e) - 1
	moving := e[last]
	h.entries = e[:last]
	e = h.entries
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		best := moving.prio
		if l < last && e[l].prio < best {
			smallest, best = l, e[l].prio
		}
		if r < last && e[r].prio < best {
			smallest = r
		}
		if smallest == i {
			break
		}
		e[i] = e[smallest]
		i = smallest
	}
	if last > 0 {
		e[i] = moving
	}
	return top.node, top.prio
}

// unitHeap is nodeHeap specialized for unit-weight (hop-count) queries:
// each entry packs (hops, node) into one uint64, so a sift touches 8 bytes
// per level and compares integers. Comparisons use only the hop half
// (a>>32 < b>>32) — the same strict-less predicate as nodeHeap — and the
// push/pop mechanics mirror nodeHeap exactly, so the pop order (ties
// included) is identical to running the float heap on the same sequence.
// Hop counts fit 32 bits by a margin of the graph's diameter.
type unitHeap struct {
	entries []uint64
}

func (h *unitHeap) len() int { return len(h.entries) }

func (h *unitHeap) reset() { h.entries = h.entries[:0] }

func (h *unitHeap) push(n NodeID, hops int) {
	moving := uint64(hops)<<32 | uint64(uint32(n))
	h.entries = append(h.entries, moving)
	e := h.entries
	i := len(e) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if e[parent]>>32 <= moving>>32 {
			break
		}
		e[i] = e[parent]
		i = parent
	}
	e[i] = moving
}

func (h *unitHeap) pop() (NodeID, int) {
	e := h.entries
	top := e[0]
	last := len(e) - 1
	moving := e[last]
	h.entries = e[:last]
	e = h.entries
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		best := moving >> 32
		if l < last && e[l]>>32 < best {
			smallest, best = l, e[l]>>32
		}
		if r < last && e[r]>>32 < best {
			smallest = r
		}
		if smallest == i {
			break
		}
		e[i] = e[smallest]
		i = smallest
	}
	if last > 0 {
		e[i] = moving
	}
	return NodeID(uint32(top)), int(top >> 32)
}

// candidateHeap is a binary min-heap of Yen candidate paths ordered by
// (cost, insertion sequence). The sequence tie-break makes pop order match
// the stable sort the algorithm previously used, so equal-cost paths keep
// their discovery order.
type candidateHeap struct {
	paths []Path
	costs []float64
	seqs  []uint64
	// spurs records each candidate's spur index (where it deviated from the
	// result path that spawned it), for Lawler's skip in the next round.
	spurs []int
}

func (h *candidateHeap) len() int { return len(h.paths) }

func (h *candidateHeap) less(i, j int) bool {
	if h.costs[i] != h.costs[j] {
		return h.costs[i] < h.costs[j]
	}
	return h.seqs[i] < h.seqs[j]
}

func (h *candidateHeap) swap(i, j int) {
	h.paths[i], h.paths[j] = h.paths[j], h.paths[i]
	h.costs[i], h.costs[j] = h.costs[j], h.costs[i]
	h.seqs[i], h.seqs[j] = h.seqs[j], h.seqs[i]
	h.spurs[i], h.spurs[j] = h.spurs[j], h.spurs[i]
}

func (h *candidateHeap) push(p Path, cost float64, seq uint64, spur int) {
	h.paths = append(h.paths, p)
	h.costs = append(h.costs, cost)
	h.seqs = append(h.seqs, seq)
	h.spurs = append(h.spurs, spur)
	i := len(h.paths) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *candidateHeap) pop() (Path, int) {
	p, spur := h.paths[0], h.spurs[0]
	last := len(h.paths) - 1
	h.swap(0, last)
	h.paths[last] = Path{} // release the path's slices
	h.paths = h.paths[:last]
	h.costs = h.costs[:last]
	h.seqs = h.seqs[:last]
	h.spurs = h.spurs[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.less(l, smallest) {
			smallest = l
		}
		if r < last && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.swap(i, smallest)
		i = smallest
	}
	return p, spur
}
