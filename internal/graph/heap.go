package graph

// nodeHeap is a binary min-heap of (node, priority) pairs specialized for
// Dijkstra-style traversals. Duplicate pushes of a node are allowed; stale
// entries are skipped by the caller via a visited set.
type nodeHeap struct {
	nodes []NodeID
	prio  []float64
}

func newNodeHeap() *nodeHeap { return &nodeHeap{} }

func (h *nodeHeap) len() int { return len(h.nodes) }

func (h *nodeHeap) push(n NodeID, p float64) {
	h.nodes = append(h.nodes, n)
	h.prio = append(h.prio, p)
	i := len(h.nodes) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.prio[parent] <= h.prio[i] {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *nodeHeap) pop() (NodeID, float64) {
	n, p := h.nodes[0], h.prio[0]
	last := len(h.nodes) - 1
	h.swap(0, last)
	h.nodes = h.nodes[:last]
	h.prio = h.prio[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.prio[l] < h.prio[smallest] {
			smallest = l
		}
		if r < last && h.prio[r] < h.prio[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.swap(i, smallest)
		i = smallest
	}
	return n, p
}

func (h *nodeHeap) swap(i, j int) {
	h.nodes[i], h.nodes[j] = h.nodes[j], h.nodes[i]
	h.prio[i], h.prio[j] = h.prio[j], h.prio[i]
}
