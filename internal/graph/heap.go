package graph

// nodeHeap is a binary min-heap of (node, priority) pairs specialized for
// Dijkstra-style traversals. Duplicate pushes of a node are allowed; stale
// entries are skipped by the caller via a visited set.
type nodeHeap struct {
	nodes []NodeID
	prio  []float64
}

func (h *nodeHeap) len() int { return len(h.nodes) }

// reset empties the heap, keeping its backing arrays for reuse.
func (h *nodeHeap) reset() {
	h.nodes = h.nodes[:0]
	h.prio = h.prio[:0]
}

func (h *nodeHeap) push(n NodeID, p float64) {
	h.nodes = append(h.nodes, n)
	h.prio = append(h.prio, p)
	i := len(h.nodes) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.prio[parent] <= h.prio[i] {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *nodeHeap) pop() (NodeID, float64) {
	n, p := h.nodes[0], h.prio[0]
	last := len(h.nodes) - 1
	h.swap(0, last)
	h.nodes = h.nodes[:last]
	h.prio = h.prio[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.prio[l] < h.prio[smallest] {
			smallest = l
		}
		if r < last && h.prio[r] < h.prio[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.swap(i, smallest)
		i = smallest
	}
	return n, p
}

func (h *nodeHeap) swap(i, j int) {
	h.nodes[i], h.nodes[j] = h.nodes[j], h.nodes[i]
	h.prio[i], h.prio[j] = h.prio[j], h.prio[i]
}

// candidateHeap is a binary min-heap of Yen candidate paths ordered by
// (cost, insertion sequence). The sequence tie-break makes pop order match
// the stable sort the algorithm previously used, so equal-cost paths keep
// their discovery order.
type candidateHeap struct {
	paths []Path
	costs []float64
	seqs  []uint64
}

func (h *candidateHeap) len() int { return len(h.paths) }

func (h *candidateHeap) less(i, j int) bool {
	if h.costs[i] != h.costs[j] {
		return h.costs[i] < h.costs[j]
	}
	return h.seqs[i] < h.seqs[j]
}

func (h *candidateHeap) swap(i, j int) {
	h.paths[i], h.paths[j] = h.paths[j], h.paths[i]
	h.costs[i], h.costs[j] = h.costs[j], h.costs[i]
	h.seqs[i], h.seqs[j] = h.seqs[j], h.seqs[i]
}

func (h *candidateHeap) push(p Path, cost float64, seq uint64) {
	h.paths = append(h.paths, p)
	h.costs = append(h.costs, cost)
	h.seqs = append(h.seqs, seq)
	i := len(h.paths) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *candidateHeap) pop() Path {
	p := h.paths[0]
	last := len(h.paths) - 1
	h.swap(0, last)
	h.paths[last] = Path{} // release the path's slices
	h.paths = h.paths[:last]
	h.costs = h.costs[:last]
	h.seqs = h.seqs[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.less(l, smallest) {
			smallest = l
		}
		if r < last && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.swap(i, smallest)
		i = smallest
	}
	return p
}
