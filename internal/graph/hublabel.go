// Hub-label route precomputation. The placement layer produces a small set
// of hubs that route most traffic; every scheme's hot unit-weight queries
// are rooted at one of them (hub→recipient access paths, landmark detour
// tails). A HubLabels instance precomputes one canonical unit shortest-path
// tree per hub and answers hub-rooted queries by O(path length) tree
// walks — no heap, no relaxations — falling back to the exact PathFinder
// for everything else.
//
// Correctness contract (the part the golden CSVs care about): a served
// answer is byte-identical to the PathFinder's. Each tree is built by the
// same unit Dijkstra the finder runs, expanded past every target; since a
// finalized node's dist/prev never change, stopping early at any target
// yields the same path the full expansion holds. Queries whose source is
// not a hub are NOT served from labels: reversing a hub-rooted tree path
// gives a correct shortest path but not necessarily the finder's tie-break,
// so those take the exact fallback.
//
// Churn awareness: trees observe the graph's shape journal and repair
// lazily, scoped to the hubs a mutation can actually affect:
//
//   - SetCapacity (top-ups, balance gossip) never touches labels — unit
//     trees are capacity-blind.
//   - AddNode appends an unreachable entry to each built tree.
//   - AddEdge(u,v) provably cannot change a hub's tree when the tree holds
//     dist[u] == dist[v] (both relaxations fail: in unit Dijkstra every
//     node at distance ≤ d is seen before the first distance-d pop, so an
//     equal-distance arc never improves anything — this includes the
//     both-unreachable case). Otherwise only that hub's tree is staled.
//   - RemoveEdge(e) cannot change a tree that doesn't use e as a tree arc
//     (in unit Dijkstra a seen node's dist/prev are never overwritten, so a
//     non-tree arc's relaxations were no-ops in both directions and its
//     removal leaves the whole execution identical). Otherwise only that
//     hub's tree is staled.
//
// A staled tree rebuilds on the next query that needs it; other hubs keep
// serving. Journal overflow (observer fell too far behind) stales all
// trees — a full resync, counted separately.
package graph

// LabelStats counts hub-label activity, for effectiveness reporting and
// for the repair-scoping tests.
type LabelStats struct {
	// Builds counts per-hub tree constructions (initial builds + repairs).
	Builds uint64
	// Repairs is the subset of Builds that rebuilt a previously built tree
	// after churn staled it.
	Repairs uint64
	// StaleMarks counts (mutation, tree) pairs where a shape mutation
	// staled a built tree; NoopMutations counts pairs where the repair
	// rules proved the mutation could not affect the tree.
	StaleMarks    uint64
	NoopMutations uint64
	// Resyncs counts journal-overflow events that staled every tree.
	Resyncs uint64
	// Served counts queries answered from a label tree; Fallbacks counts
	// queries routed to the exact PathFinder.
	Served    uint64
	Fallbacks uint64
}

// hubTree is one hub's canonical unit shortest-path tree. dist is −1 for
// unreachable nodes; prevNode/prevEdge are −1 at the root.
type hubTree struct {
	hub      NodeID
	dist     []int32
	prevNode []int32
	prevEdge []int32
	built    bool // arrays were ever filled
	fresh    bool // arrays match the current graph
}

// HubLabels answers unit-weight shortest-path and k-shortest queries from
// per-hub precomputed trees, with exact fallback. Not safe for concurrent
// use; like PathFinder, create one per goroutine.
type HubLabels struct {
	g      *Graph
	pf     *PathFinder
	hubs   []NodeID
	hubIdx map[NodeID]int
	trees  []hubTree
	seq    uint64 // journal cursor
	stats  LabelStats
	heap   unitHeap
	done   []bool // per-build finalization scratch
}

// NewHubLabels returns a label tier over g seeded with the given hubs
// (typically the placement output). Trees build lazily on first use. pf is
// the exact finder used for fallback and k-shortest continuations; pass nil
// to create a private one.
func NewHubLabels(g *Graph, pf *PathFinder, hubs []NodeID) *HubLabels {
	if pf == nil {
		pf = NewPathFinder(g)
	}
	hl := &HubLabels{
		g:      g,
		pf:     pf,
		hubIdx: make(map[NodeID]int, len(hubs)),
		seq:    g.MutationSeq(),
	}
	for _, h := range hubs {
		if _, dup := hl.hubIdx[h]; dup {
			continue
		}
		hl.hubIdx[h] = len(hl.hubs)
		hl.hubs = append(hl.hubs, h)
		hl.trees = append(hl.trees, hubTree{hub: h})
	}
	return hl
}

// Hubs returns the label roots (deduplicated, in seed order). The returned
// slice must not be modified.
func (hl *HubLabels) Hubs() []NodeID { return hl.hubs }

// IsHub reports whether n is a label root.
func (hl *HubLabels) IsHub(n NodeID) bool {
	_, ok := hl.hubIdx[n]
	return ok
}

// Stats returns a snapshot of the activity counters.
func (hl *HubLabels) Stats() LabelStats { return hl.stats }

// sync drains the graph's shape journal, applying the scoped repair rules.
func (hl *HubLabels) sync() {
	g := hl.g
	if g.MutationSeq() == hl.seq {
		return
	}
	muts, ok := g.MutationsSince(hl.seq)
	if !ok {
		for i := range hl.trees {
			if hl.trees[i].fresh {
				hl.trees[i].fresh = false
			}
		}
		hl.stats.Resyncs++
		hl.seq = g.MutationSeq()
		return
	}
	for _, m := range muts {
		switch m.Kind {
		case MutAddNode:
			for i := range hl.trees {
				t := &hl.trees[i]
				if !t.fresh {
					continue
				}
				t.dist = append(t.dist, -1)
				t.prevNode = append(t.prevNode, -1)
				t.prevEdge = append(t.prevEdge, -1)
			}
		case MutAddEdge:
			for i := range hl.trees {
				t := &hl.trees[i]
				if !t.fresh {
					continue
				}
				if t.dist[m.U] == t.dist[m.V] {
					hl.stats.NoopMutations++
				} else {
					t.fresh = false
					hl.stats.StaleMarks++
				}
			}
		case MutRemoveEdge:
			for i := range hl.trees {
				t := &hl.trees[i]
				if !t.fresh {
					continue
				}
				if t.prevEdge[m.U] == int32(m.Edge) || t.prevEdge[m.V] == int32(m.Edge) {
					t.fresh = false
					hl.stats.StaleMarks++
				} else {
					hl.stats.NoopMutations++
				}
			}
		}
	}
	hl.seq = g.MutationSeq()
}

// ensureTree returns hub hi's tree, (re)building it if stale.
func (hl *HubLabels) ensureTree(hi int) *hubTree {
	t := &hl.trees[hi]
	if t.fresh {
		return t
	}
	hl.buildTree(t)
	return t
}

// buildTree runs a full-expansion unit Dijkstra from the hub. The push and
// pop sequence is identical to PathFinder.runUnit's clean variant on the
// same graph (same packed heap, same relaxation outcomes: in unit Dijkstra
// a seen node is never improved, so "unseen" — dist < 0 — is the whole
// relaxation condition), which is what makes served paths byte-identical
// to the finder's.
func (hl *HubLabels) buildTree(t *hubTree) {
	g := hl.g
	g.csrEnsure()
	n := g.NumNodes()
	if cap(t.dist) < n {
		t.dist = make([]int32, n)
		t.prevNode = make([]int32, n)
		t.prevEdge = make([]int32, n)
	} else {
		t.dist = t.dist[:n]
		t.prevNode = t.prevNode[:n]
		t.prevEdge = t.prevEdge[:n]
	}
	for i := range t.dist {
		t.dist[i] = -1
		t.prevNode[i] = -1
		t.prevEdge[i] = -1
	}
	if cap(hl.done) < n {
		hl.done = make([]bool, n)
	} else {
		hl.done = hl.done[:n]
		clear(hl.done)
	}
	done := hl.done
	dist, prevNode, prevEdge := t.dist, t.prevNode, t.prevEdge
	span, slab := g.csr.span, g.csr.slab
	hl.heap.reset()
	dist[t.hub] = 0
	hl.heap.push(t.hub, 0)
	for hl.heap.len() > 0 {
		u, du := hl.heap.pop()
		if done[u] {
			continue
		}
		done[u] = true
		nd := du + 1
		s := span[u]
		for _, arc := range slab[s.off : s.off+s.n] {
			v := NodeID(arc >> 32)
			if done[v] || dist[v] >= 0 {
				continue
			}
			dist[v] = int32(nd)
			prevEdge[v] = int32(uint32(arc))
			prevNode[v] = int32(u)
			hl.heap.push(v, nd)
		}
	}
	if t.built {
		hl.stats.Repairs++
	}
	t.built = true
	t.fresh = true
	hl.stats.Builds++
}

// path reconstructs the tree path hub→dst. The caller has checked
// dist[dst] >= 0.
func (t *hubTree) path(dst NodeID) Path {
	n := int(t.dist[dst]) + 1
	nodes := make([]NodeID, n)
	edges := make([]EdgeID, n-1)
	at := dst
	for i := n - 1; ; i-- {
		nodes[i] = at
		if i == 0 {
			break
		}
		edges[i-1] = EdgeID(t.prevEdge[at])
		at = NodeID(t.prevNode[at])
	}
	return Path{Nodes: nodes, Edges: edges}
}

// UnitShortestPath answers like PathFinder.UnitShortestPath. Queries rooted
// at a hub are served from the label tree; others fall back to the exact
// finder. Either way the result is byte-identical to the finder's.
func (hl *HubLabels) UnitShortestPath(src, dst NodeID) (Path, bool) {
	hl.sync()
	if hi, ok := hl.hubIdx[src]; ok {
		t := hl.ensureTree(hi)
		hl.stats.Served++
		if int(dst) >= len(t.dist) || t.dist[dst] < 0 {
			return Path{}, false
		}
		return t.path(dst), true
	}
	hl.stats.Fallbacks++
	return hl.pf.UnitShortestPath(src, dst)
}

// UnitShortestPaths answers like PathFinder.UnitShortestPaths (the zero
// Path where unreachable), serving from the tree when src is a hub.
func (hl *HubLabels) UnitShortestPaths(src NodeID, dsts []NodeID) []Path {
	hl.sync()
	if hi, ok := hl.hubIdx[src]; ok {
		t := hl.ensureTree(hi)
		hl.stats.Served++
		out := make([]Path, len(dsts))
		for i, d := range dsts {
			if int(d) < len(t.dist) && t.dist[d] >= 0 {
				out[i] = t.path(d)
			}
		}
		return out
	}
	hl.stats.Fallbacks++
	return hl.pf.UnitShortestPaths(src, dsts)
}

// KShortestPathsUnit answers like PathFinder.KShortestPathsUnit. When src
// is a hub the label tree supplies Yen's first path and the finder runs
// only the spur searches; results are identical either way.
func (hl *HubLabels) KShortestPathsUnit(src, dst NodeID, k int) []Path {
	hl.sync()
	if hi, ok := hl.hubIdx[src]; ok && k > 0 {
		t := hl.ensureTree(hi)
		hl.stats.Served++
		if int(dst) >= len(t.dist) || t.dist[dst] < 0 {
			return nil
		}
		return hl.pf.kShortestPathsFrom(t.path(dst), dst, k, UnitWeight, true)
	}
	hl.stats.Fallbacks++
	return hl.pf.KShortestPathsUnit(src, dst, k)
}

// BuildAll drains the journal and eagerly (re)builds every stale tree, so a
// subsequent read-only View serves without mutating anything. The snapshot
// publisher calls it once per epoch; batch callers never need it (trees
// build lazily there).
func (hl *HubLabels) BuildAll() {
	hl.sync()
	for hi := range hl.trees {
		hl.ensureTree(hi)
	}
}

// View returns a read-only handle over fully built labels. The caller must
// have called BuildAll since the last graph mutation; View panics otherwise,
// because a stale view would either serve wrong paths or have to mutate
// shared state to repair itself — exactly what a view exists to avoid.
func (hl *HubLabels) View() LabelView {
	if hl.seq != hl.g.MutationSeq() {
		panic("graph: LabelView over unsynced labels; call BuildAll first")
	}
	for i := range hl.trees {
		if !hl.trees[i].fresh {
			panic("graph: LabelView over stale tree; call BuildAll first")
		}
	}
	return LabelView{hl: hl}
}

// LabelView is a frozen, read-only window onto a HubLabels tier whose trees
// are all built (see BuildAll). Unlike HubLabels itself, a view is safe for
// any number of concurrent readers — its methods touch only the immutable
// tree arrays and the CALLER's PathFinder (for fallbacks and k-shortest
// continuations), never the shared stats, journal cursor, or build scratch.
// Each reader goroutine passes its own finder, bound to the same graph the
// labels were built over.
type LabelView struct {
	hl *HubLabels
}

// Hubs returns the label roots. The returned slice must not be modified.
func (v LabelView) Hubs() []NodeID { return v.hl.hubs }

// IsHub reports whether n is a label root.
func (v LabelView) IsHub(n NodeID) bool {
	_, ok := v.hl.hubIdx[n]
	return ok
}

// UnitShortestPath answers like HubLabels.UnitShortestPath, using pf for
// non-hub-rooted fallbacks.
func (v LabelView) UnitShortestPath(pf *PathFinder, src, dst NodeID) (Path, bool) {
	if hi, ok := v.hl.hubIdx[src]; ok {
		t := &v.hl.trees[hi]
		if int(dst) >= len(t.dist) || t.dist[dst] < 0 {
			return Path{}, false
		}
		return t.path(dst), true
	}
	return pf.UnitShortestPath(src, dst)
}

// UnitShortestPaths answers like HubLabels.UnitShortestPaths.
func (v LabelView) UnitShortestPaths(pf *PathFinder, src NodeID, dsts []NodeID) []Path {
	if hi, ok := v.hl.hubIdx[src]; ok {
		t := &v.hl.trees[hi]
		out := make([]Path, len(dsts))
		for i, d := range dsts {
			if int(d) < len(t.dist) && t.dist[d] >= 0 {
				out[i] = t.path(d)
			}
		}
		return out
	}
	return pf.UnitShortestPaths(src, dsts)
}

// KShortestPathsUnit answers like HubLabels.KShortestPathsUnit: when src is
// a hub the tree supplies Yen's first path and pf runs only the spur
// searches; results are identical either way.
func (v LabelView) KShortestPathsUnit(pf *PathFinder, src, dst NodeID, k int) []Path {
	if hi, ok := v.hl.hubIdx[src]; ok && k > 0 {
		t := &v.hl.trees[hi]
		if int(dst) >= len(t.dist) || t.dist[dst] < 0 {
			return nil
		}
		return pf.kShortestPathsFrom(t.path(dst), dst, k, UnitWeight, true)
	}
	return pf.KShortestPathsUnit(src, dst, k)
}

// DistUpperBound returns min over hubs h of dist_h(src)+dist_h(dst) — the
// classic label-intersection distance, exact when some shortest src→dst
// path passes through a hub and an upper bound otherwise. ok is false when
// no hub reaches both endpoints (or there are no hubs).
func (hl *HubLabels) DistUpperBound(src, dst NodeID) (int, bool) {
	hl.sync()
	best, found := 0, false
	for hi := range hl.trees {
		t := hl.ensureTree(hi)
		if int(src) >= len(t.dist) || int(dst) >= len(t.dist) {
			continue
		}
		ds, dd := t.dist[src], t.dist[dst]
		if ds < 0 || dd < 0 {
			continue
		}
		if d := int(ds + dd); !found || d < best {
			best, found = d, true
		}
	}
	return best, found
}
