package graph

import (
	"math"
	"testing"
)

// line builds a path graph 0-1-2-...-(n-1) with unit capacities.
func lineGraph(t *testing.T, n int) *Graph {
	t.Helper()
	g := New(n)
	for i := 0; i < n-1; i++ {
		if _, err := g.AddEdge(NodeID(i), NodeID(i+1), 10, 10); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestRemoveEdge(t *testing.T) {
	g := lineGraph(t, 4) // 0-1-2-3, edges 0,1,2
	if _, err := g.AddEdge(0, 3, 5, 5); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 4 || g.NumLiveEdges() != 4 {
		t.Fatalf("NumEdges=%d NumLiveEdges=%d, want 4/4", g.NumEdges(), g.NumLiveEdges())
	}
	if err := g.RemoveEdge(1); err != nil { // cut 1-2
		t.Fatal(err)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges=%d after removal, want 4 (IDs are never reused)", g.NumEdges())
	}
	if g.NumLiveEdges() != 3 {
		t.Fatalf("NumLiveEdges=%d, want 3", g.NumLiveEdges())
	}
	if !g.EdgeRemoved(1) || g.EdgeRemoved(0) {
		t.Fatalf("EdgeRemoved wrong: e1=%v e0=%v", g.EdgeRemoved(1), g.EdgeRemoved(0))
	}
	if g.HasEdgeBetween(1, 2) {
		t.Fatal("adjacency still reports removed edge")
	}
	// The tombstone still resolves endpoints for in-flight bookkeeping.
	if e := g.Edge(1); e.U != 1 || e.V != 2 {
		t.Fatalf("tombstone endpoints = %d-%d, want 1-2", e.U, e.V)
	}
	// Routing detours around the removed edge via 0-3.
	p, ok := g.ShortestPath(1, 2, UnitWeight)
	if !ok {
		t.Fatal("no path after removal; expected detour 1-0-3-2")
	}
	for _, eid := range p.Edges {
		if eid == 1 {
			t.Fatal("path uses removed edge")
		}
	}
	if p.Len() != 3 {
		t.Fatalf("detour length = %d, want 3", p.Len())
	}
	// Double removal and out-of-range removal are errors.
	if err := g.RemoveEdge(1); err == nil {
		t.Fatal("double removal succeeded")
	}
	if err := g.RemoveEdge(99); err == nil {
		t.Fatal("out-of-range removal succeeded")
	}
}

func TestPathValidRejectsRemovedEdge(t *testing.T) {
	g := lineGraph(t, 3)
	p, ok := g.ShortestPath(0, 2, UnitWeight)
	if !ok || !p.Valid(g) {
		t.Fatal("setup: expected valid path 0-1-2")
	}
	if err := g.RemoveEdge(p.Edges[0]); err != nil {
		t.Fatal(err)
	}
	if p.Valid(g) {
		t.Fatal("path through removed edge still validates")
	}
}

func TestEdgesSkipsRemoved(t *testing.T) {
	g := lineGraph(t, 4)
	if err := g.RemoveEdge(0); err != nil {
		t.Fatal(err)
	}
	edges := g.Edges()
	if len(edges) != 2 {
		t.Fatalf("Edges() returned %d, want 2 live", len(edges))
	}
	for _, e := range edges {
		if e.ID == 0 {
			t.Fatal("Edges() includes removed edge")
		}
	}
	c := g.Clone()
	if c.NumLiveEdges() != 2 || !c.EdgeRemoved(0) {
		t.Fatal("Clone dropped removal state")
	}
}

// TestPathFinderGrowsWithGraph is the dynamic-arrival regression: a finder
// built before nodes join must serve queries touching the new nodes.
func TestPathFinderGrowsWithGraph(t *testing.T) {
	g := lineGraph(t, 3)
	pf := NewPathFinder(g)
	if _, ok := pf.ShortestPath(0, 2, UnitWeight); !ok {
		t.Fatal("setup query failed")
	}
	// A burst of arrivals, each chained to the previous frontier node.
	last := NodeID(2)
	for i := 0; i < 50; i++ {
		v := g.AddNode()
		if _, err := g.AddEdge(last, v, 7, 7); err != nil {
			t.Fatal(err)
		}
		last = v
	}
	p, ok := pf.ShortestPath(0, last, UnitWeight)
	if !ok {
		t.Fatal("no path to joined node")
	}
	if p.Len() != 52 {
		t.Fatalf("path length = %d, want 52", p.Len())
	}
	if w, ok := pf.WidestPath(0, last); !ok || w.Bottleneck(g) != 7 {
		t.Fatalf("widest path to joined node: ok=%v bottleneck=%v", ok, w.Bottleneck(g))
	}
	if ks := pf.KShortestPaths(0, last, 2, UnitWeight); len(ks) != 1 {
		t.Fatalf("KSP over grown graph = %d paths, want 1", len(ks))
	}
}

// TestPathFinderGrowthPreservesQueryState pins the copy-grow behavior: growth
// must not reset the stamp (which would alias a pre-growth query's marks)
// and must keep previously banned nodes banned.
func TestPathFinderGrowthPreservesQueryState(t *testing.T) {
	g := lineGraph(t, 4)
	pf := NewPathFinder(g)
	for i := 0; i < 5; i++ { // advance the stamp a few queries
		pf.ShortestPath(0, 3, UnitWeight)
	}
	v := g.AddNode()
	if _, err := g.AddEdge(3, v, 1, 1); err != nil {
		t.Fatal(err)
	}
	p, ok := pf.ShortestPath(0, v, UnitWeight)
	if !ok || p.Len() != 4 {
		t.Fatalf("post-growth query: ok=%v len=%d, want 4", ok, p.Len())
	}
	// Weight function that consults capacity still sees the new edge.
	if _, ok := pf.ShortestPath(0, v, CapacityFilteredUnitWeight(0.5)); !ok {
		t.Fatal("capacity-filtered query lost the new arc")
	}
	if _, ok := pf.ShortestPath(v, 0, func(e Edge, from NodeID) float64 {
		if e.Capacity(from) <= 0 {
			return math.Inf(1)
		}
		return 1
	}); !ok {
		t.Fatal("reverse query from joined node failed")
	}
}
