package graph

// Consistency tests for the graph-owned packed adjacency: after ANY
// sequence of shape and capacity mutations, CSR iteration must match the
// pointer adjacency arc for arc (same edges, same order, same capacities),
// and the cheap mutations must stay on the incremental path (no full
// rebuild for a top-up or a single channel open/close).

import (
	"math/rand"
	"testing"
)

// checkCSRMatchesAdj verifies slab/span/caps/pos against the pointer
// adjacency, which remains the order source of truth.
func checkCSRMatchesAdj(t *testing.T, g *Graph) {
	t.Helper()
	if !g.csr.ok {
		t.Fatal("CSR not built")
	}
	c := &g.csr
	if len(c.span) != g.NumNodes() {
		t.Fatalf("span len %d, nodes %d", len(c.span), g.NumNodes())
	}
	for u := 0; u < g.NumNodes(); u++ {
		s := c.span[u]
		if int(s.n) != len(g.adj[u]) {
			t.Fatalf("node %d: span has %d arcs, adj has %d", u, s.n, len(g.adj[u]))
		}
		for i, eid := range g.adj[u] {
			arc := c.slab[s.off+int32(i)]
			if EdgeID(uint32(arc)) != eid {
				t.Fatalf("node %d arc %d: slab edge %d, adj edge %d", u, i, uint32(arc), eid)
			}
			e := g.edges[eid]
			if NodeID(arc>>32) != e.Other(NodeID(u)) {
				t.Fatalf("node %d arc %d: slab other %d, want %d", u, i, arc>>32, e.Other(NodeID(u)))
			}
			if c.caps[s.off+int32(i)] != e.Capacity(NodeID(u)) {
				t.Fatalf("node %d arc %d: slab cap %g, want %g", u, i, c.caps[s.off+int32(i)], e.Capacity(NodeID(u)))
			}
			side := 0
			if e.V == NodeID(u) {
				side = 1
			}
			if c.pos[eid][side] != s.off+int32(i) {
				t.Fatalf("edge %d side %d: pos %d, arc actually at %d", eid, side, c.pos[eid][side], s.off+int32(i))
			}
		}
	}
}

// churnStep applies one random mutation, mirroring what the dynamics layer
// does: joins, channel opens/closes (tombstoning), top-ups.
func churnStep(rng *rand.Rand, g *Graph) {
	switch op := rng.Intn(10); {
	case op == 0:
		g.AddNode()
	case op < 4: // open
		if g.NumNodes() < 2 {
			return
		}
		u := NodeID(rng.Intn(g.NumNodes()))
		v := NodeID(rng.Intn(g.NumNodes()))
		if u == v {
			return
		}
		if _, err := g.AddEdge(u, v, rng.Float64()*100, rng.Float64()*100); err != nil {
			panic(err)
		}
	case op < 7: // close a random live edge
		live := -1
		for tries := 0; tries < 8; tries++ {
			if g.NumEdges() == 0 {
				return
			}
			id := rng.Intn(g.NumEdges())
			if !g.removed[id] {
				live = id
				break
			}
		}
		if live < 0 {
			return
		}
		if err := g.RemoveEdge(EdgeID(live)); err != nil {
			panic(err)
		}
	default: // top-up
		if g.NumEdges() == 0 {
			return
		}
		id := rng.Intn(g.NumEdges())
		if g.removed[id] {
			return
		}
		g.SetCapacity(EdgeID(id), rng.Float64()*200, rng.Float64()*200)
	}
}

// TestCSRMatchesAdjUnderChurn is the property test: after any seeded churn
// timeline, CSR neighbor iteration equals pointer-adjacency iteration
// exactly.
func TestCSRMatchesAdjUnderChurn(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomTestGraph(t, seed+500, 40, 80)
		g.csrEnsure()
		checkCSRMatchesAdj(t, g)
		for step := 0; step < 600; step++ {
			churnStep(rng, g)
			if step%37 == 0 {
				checkCSRMatchesAdj(t, g)
			}
		}
		checkCSRMatchesAdj(t, g)
		// And the CSR the queries see is the one we checked: a query after
		// the timeline must agree with a from-scratch finder on a clone
		// (whose CSR is a fresh dense build).
		pf := NewPathFinder(g)
		ref := NewPathFinder(g.Clone())
		for q := 0; q < 50; q++ {
			src := NodeID(rng.Intn(g.NumNodes()))
			dst := NodeID(rng.Intn(g.NumNodes()))
			got, okG := pf.UnitShortestPath(src, dst)
			want, okW := ref.UnitShortestPath(src, dst)
			if okG != okW || (okG && !pathsEqual(got, want)) {
				t.Fatalf("seed %d: %d->%d incremental %v/%v vs rebuilt %v/%v", seed, src, dst, got, okG, want, okW)
			}
		}
	}
}

// TestTopUpStaysIncremental pins the dirty-region fix: a one-channel top-up
// must not force a CSR rebuild or a full capacity re-sync — it lands as two
// arc-slot writes.
func TestTopUpStaysIncremental(t *testing.T) {
	g := randomTestGraph(t, 42, 200, 400)
	pf := NewPathFinder(g)
	if _, ok := pf.WidestPath(0, 100); !ok {
		t.Fatal("no widest path in connected graph")
	}
	base := g.CSRStats()
	if base.Rebuilds != 1 {
		t.Fatalf("expected exactly the lazy initial build, got %d rebuilds", base.Rebuilds)
	}
	e := g.Edge(0)
	g.SetCapacity(0, e.CapFwd+5, e.CapRev+5)
	if _, ok := pf.WidestPath(0, 100); !ok {
		t.Fatal("no widest path after top-up")
	}
	after := g.CSRStats()
	if after.Rebuilds != base.Rebuilds {
		t.Fatalf("top-up forced a CSR rebuild (%d -> %d)", base.Rebuilds, after.Rebuilds)
	}
	if after.CapacityWrites != base.CapacityWrites+1 {
		t.Fatalf("expected 1 incremental capacity write, got %d", after.CapacityWrites-base.CapacityWrites)
	}
	// The write must actually land: starving a bridge changes widest paths.
	p, _ := pf.WidestPath(0, 100)
	g.SetCapacity(p.Edges[0], 0, 0)
	if q, ok := pf.WidestPath(0, 100); ok {
		for _, eid := range q.Edges {
			if eid == p.Edges[0] {
				t.Fatal("widest path used a zero-capacity channel: stale CSR capacity")
			}
		}
	}
}

// TestChurnStaysIncremental pins that channel opens/closes and node joins
// apply in place rather than rebuilding the O(E) layout.
func TestChurnStaysIncremental(t *testing.T) {
	g := randomTestGraph(t, 43, 200, 400)
	pf := NewPathFinder(g)
	pf.UnitShortestPath(0, 100)
	base := g.CSRStats()
	id, err := g.AddEdge(0, 100, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveEdge(id); err != nil {
		t.Fatal(err)
	}
	v := g.AddNode()
	if _, err := g.AddEdge(0, v, 1, 1); err != nil {
		t.Fatal(err)
	}
	pf.UnitShortestPath(0, v)
	after := g.CSRStats()
	if after.Rebuilds != base.Rebuilds {
		t.Fatalf("churn forced %d CSR rebuilds", after.Rebuilds-base.Rebuilds)
	}
	if after.IncrementalOps != base.IncrementalOps+4 {
		t.Fatalf("expected 4 incremental ops, got %d", after.IncrementalOps-base.IncrementalOps)
	}
}

func TestMutationJournal(t *testing.T) {
	g := New(2)
	seq0 := g.MutationSeq()
	id, _ := g.AddEdge(0, 1, 1, 1)
	v := g.AddNode()
	if err := g.RemoveEdge(id); err != nil {
		t.Fatal(err)
	}
	muts, ok := g.MutationsSince(seq0)
	if !ok || len(muts) != 3 {
		t.Fatalf("MutationsSince = %v ok=%v, want 3 mutations", muts, ok)
	}
	want := []Mutation{
		{Kind: MutAddEdge, Edge: id, U: 0, V: 1},
		{Kind: MutAddNode, Edge: -1, U: v, V: -1},
		{Kind: MutRemoveEdge, Edge: id, U: 0, V: 1},
	}
	for i, m := range muts {
		if m != want[i] {
			t.Fatalf("mutation %d = %+v, want %+v", i, m, want[i])
		}
	}
	// A cursor taken now sees nothing.
	if muts, ok := g.MutationsSince(g.MutationSeq()); !ok || len(muts) != 0 {
		t.Fatalf("fresh cursor saw %v ok=%v", muts, ok)
	}
	// Overflow trims the window; an old cursor must get ok=false.
	for i := 0; i < maxJournal+10; i++ {
		g.AddNode()
	}
	if _, ok := g.MutationsSince(seq0); ok {
		t.Fatal("cursor survived journal overflow")
	}
	// A future (bogus) cursor is also rejected.
	if _, ok := g.MutationsSince(g.MutationSeq() + 1); ok {
		t.Fatal("future cursor accepted")
	}
}
