// Fuzz targets for the path-computation layer. The byte input decodes into
// a small random multigraph-free graph plus a query; the properties checked
// are the ones every routing policy leans on:
//
//   - returned paths are structurally valid (Path.Valid) and simple (no
//     repeated node);
//   - they actually connect the queried endpoints;
//   - capacity-filtered searches never traverse an arc below the threshold
//     (capacity-respecting);
//   - Yen's k-shortest-paths output is distinct and cost-sorted, with the
//     head equal to the plain shortest path;
//   - the allocation-free PathFinder fast paths agree with the baseline
//     Graph algorithms (cost-level equivalence; tie-breaks may differ only
//     in equal-cost paths).
//
// Seed corpora live in testdata/fuzz; CI runs a short -fuzz smoke over both
// targets.
package graph

import (
	"math"
	"testing"
)

// buildFuzzGraph decodes bytes into a graph: node count from the first
// byte, then (u, v, capFwd, capRev) quadruples. A quadruple with u == v is
// a churn directive instead of an edge: it removes the capFwd-selected live
// edge, so fuzzed inputs cover post-churn graphs (tombstoned edge slots,
// compacted adjacency) and exercise the incremental CSR maintenance, not
// just append-only construction. Returns nil when the input encodes no
// usable graph.
func buildFuzzGraph(data []byte) *Graph {
	if len(data) < 5 {
		return nil
	}
	n := int(data[0]%22) + 3 // 3..24 nodes
	g := New(n)
	rest := data[1:]
	for len(rest) >= 4 {
		b0, b1, b2, b3 := rest[0], rest[1], rest[2], rest[3]
		rest = rest[4:]
		u := NodeID(int(b0) % n)
		v := NodeID(int(b1) % n)
		if u == v { // churn directive: close the selected live edge
			if g.NumEdges() == 0 {
				continue
			}
			id := EdgeID((int(b2)<<8 | int(b3)) % g.NumEdges())
			if !g.EdgeRemoved(id) {
				if err := g.RemoveEdge(id); err != nil {
					return nil
				}
			}
			continue
		}
		if g.HasEdgeBetween(u, v) {
			continue
		}
		if _, err := g.AddEdge(u, v, float64(b2%100)+1, float64(b3%100)+1); err != nil {
			return nil
		}
	}
	if g.NumLiveEdges() == 0 {
		return nil
	}
	return g
}

// checkSimplePath asserts structural validity, simplicity and endpoints.
func checkSimplePath(t *testing.T, g *Graph, p Path, src, dst NodeID, what string) {
	t.Helper()
	if !p.Valid(g) {
		t.Fatalf("%s: structurally invalid path %v", what, p)
	}
	if p.Nodes[0] != src || p.Nodes[len(p.Nodes)-1] != dst {
		t.Fatalf("%s: path connects %d->%d, want %d->%d", what, p.Nodes[0], p.Nodes[len(p.Nodes)-1], src, dst)
	}
	seen := map[NodeID]bool{}
	for _, u := range p.Nodes {
		if seen[u] {
			t.Fatalf("%s: path revisits node %d: %v", what, u, p.Nodes)
		}
		seen[u] = true
	}
}

func pathCost(g *Graph, p Path, w WeightFunc) float64 {
	total := 0.0
	for i, eid := range p.Edges {
		total += w(g.Edge(eid), p.Nodes[i])
	}
	return total
}

func FuzzPathFinder(f *testing.F) {
	f.Add([]byte{5, 0, 1, 10, 10, 1, 2, 10, 10, 2, 3, 10, 10, 0, 3, 1, 1}, uint8(0), uint8(3), uint8(5))
	f.Add([]byte{8, 0, 1, 50, 2, 1, 2, 50, 2, 0, 2, 1, 99, 2, 3, 7, 7}, uint8(0), uint8(2), uint8(20))
	f.Add([]byte{3, 0, 1, 1, 1}, uint8(0), uint8(2), uint8(1))
	// Post-churn seeds: u==v quadruples close channels mid-build, leaving
	// tombstoned edge slots and a compacted CSR.
	f.Add([]byte{5, 0, 1, 10, 10, 1, 2, 10, 10, 2, 3, 10, 10, 0, 3, 1, 1, 2, 2, 0, 1, 1, 2, 9, 9}, uint8(0), uint8(3), uint8(5))
	f.Add([]byte{9, 0, 1, 20, 20, 1, 2, 20, 20, 2, 0, 20, 20, 3, 3, 0, 0, 0, 2, 5, 5, 4, 4, 0, 2, 2, 3, 8, 8}, uint8(0), uint8(3), uint8(4))
	f.Fuzz(func(t *testing.T, data []byte, srcRaw, dstRaw, minCapRaw uint8) {
		g := buildFuzzGraph(data)
		if g == nil {
			t.Skip()
		}
		src := NodeID(int(srcRaw) % g.NumNodes())
		dst := NodeID(int(dstRaw) % g.NumNodes())
		if src == dst {
			t.Skip()
		}
		pf := NewPathFinder(g)

		// Unit shortest path vs BFS hop distance.
		hops := g.BFSHops(src)
		p, ok := pf.UnitShortestPath(src, dst)
		if (hops[dst] >= 0) != ok {
			t.Fatalf("UnitShortestPath reachability %v disagrees with BFS %d", ok, hops[dst])
		}
		if ok {
			checkSimplePath(t, g, p, src, dst, "UnitShortestPath")
			if p.Len() != hops[dst] {
				t.Fatalf("UnitShortestPath length %d != BFS distance %d", p.Len(), hops[dst])
			}
		}

		// A hub-label tier rooted at src must serve a byte-identical answer
		// (the precomputed-vs-exact cross-check, on the fuzzed graph).
		hl := NewHubLabels(g, nil, []NodeID{src})
		lp, lok := hl.UnitShortestPath(src, dst)
		if lok != ok || (ok && !pathsEqual(lp, p)) {
			t.Fatalf("hub label %v/%v != finder %v/%v", lp, lok, p, ok)
		}

		// Weighted shortest path: finder vs baseline, cost-equivalent.
		w := func(e Edge, from NodeID) float64 { return 1 + 1/e.Capacity(from) }
		fp, fok := pf.ShortestPath(src, dst, w)
		bp, bok := g.ShortestPath(src, dst, w)
		if fok != bok {
			t.Fatalf("finder reachability %v != baseline %v", fok, bok)
		}
		if fok {
			checkSimplePath(t, g, fp, src, dst, "ShortestPath")
			fc, bc := pathCost(g, fp, w), pathCost(g, bp, w)
			if math.Abs(fc-bc) > 1e-9*(1+math.Abs(bc)) {
				t.Fatalf("finder cost %v != baseline cost %v", fc, bc)
			}
		}

		// Capacity-filtered search respects the threshold on every hop.
		minCap := float64(minCapRaw%100) + 1
		cw := CapacityFilteredUnitWeight(minCap)
		if cp, cok := pf.ShortestPath(src, dst, cw); cok {
			checkSimplePath(t, g, cp, src, dst, "CapacityFiltered")
			for i, eid := range cp.Edges {
				if got := g.Edge(eid).Capacity(cp.Nodes[i]); got < minCap {
					t.Fatalf("capacity-filtered path uses arc with capacity %v < %v", got, minCap)
				}
			}
		}

		// Widest path: finder vs baseline bottleneck equality, and the
		// bottleneck must not beat the best single-arc bound.
		wp, wok := pf.WidestPath(src, dst)
		bwp, bwok := g.WidestPath(src, dst)
		if wok != bwok {
			t.Fatalf("widest reachability %v != baseline %v", wok, bwok)
		}
		if wok {
			checkSimplePath(t, g, wp, src, dst, "WidestPath")
			if math.Abs(wp.Bottleneck(g)-bwp.Bottleneck(g)) > 1e-9 {
				t.Fatalf("widest bottleneck %v != baseline %v", wp.Bottleneck(g), bwp.Bottleneck(g))
			}
		}
	})
}

func FuzzKShortestPaths(f *testing.F) {
	f.Add([]byte{6, 0, 1, 10, 10, 1, 2, 10, 10, 0, 2, 5, 5, 2, 3, 9, 9, 1, 3, 2, 2}, uint8(0), uint8(3), uint8(4))
	f.Add([]byte{4, 0, 1, 30, 30, 1, 2, 30, 30, 0, 2, 30, 30}, uint8(0), uint8(2), uint8(3))
	f.Add([]byte{10, 0, 9, 1, 1}, uint8(0), uint8(9), uint8(7))
	// Post-churn: a closed channel (u==v directive) mid-build.
	f.Add([]byte{6, 0, 1, 10, 10, 1, 2, 10, 10, 0, 2, 5, 5, 2, 3, 9, 9, 1, 1, 0, 2, 1, 3, 2, 2}, uint8(0), uint8(3), uint8(4))
	f.Fuzz(func(t *testing.T, data []byte, srcRaw, dstRaw, kRaw uint8) {
		g := buildFuzzGraph(data)
		if g == nil {
			t.Skip()
		}
		src := NodeID(int(srcRaw) % g.NumNodes())
		dst := NodeID(int(dstRaw) % g.NumNodes())
		if src == dst {
			t.Skip()
		}
		k := int(kRaw%7) + 1
		pf := NewPathFinder(g)

		for _, tc := range []struct {
			name  string
			paths []Path
			w     WeightFunc
		}{
			{"unit", pf.KShortestPathsUnit(src, dst, k), UnitWeight},
			{"weighted", pf.KShortestPaths(src, dst, k, func(e Edge, from NodeID) float64 {
				return 1 + 1/e.Capacity(from)
			}), func(e Edge, from NodeID) float64 { return 1 + 1/e.Capacity(from) }},
		} {
			paths := tc.paths
			if len(paths) > k {
				t.Fatalf("%s: got %d paths, asked for %d", tc.name, len(paths), k)
			}
			prev := math.Inf(-1)
			for i, p := range paths {
				checkSimplePath(t, g, p, src, dst, tc.name)
				// Cost-sorted, non-decreasing.
				c := pathCost(g, p, tc.w)
				if c < prev-1e-9 {
					t.Fatalf("%s: paths not cost-sorted: %v after %v", tc.name, c, prev)
				}
				prev = c
				// Distinct.
				for j := 0; j < i; j++ {
					if p.Equal(paths[j]) {
						t.Fatalf("%s: duplicate path at %d and %d: %v", tc.name, j, i, p)
					}
				}
			}
			// Head equals the plain shortest path's cost.
			if sp, ok := pf.ShortestPath(src, dst, tc.w); ok {
				if len(paths) == 0 {
					t.Fatalf("%s: shortest path exists but KSP returned none", tc.name)
				}
				want := pathCost(g, sp, tc.w)
				got := pathCost(g, paths[0], tc.w)
				if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
					t.Fatalf("%s: KSP head cost %v != shortest path cost %v", tc.name, got, want)
				}
			} else if len(paths) > 0 {
				t.Fatalf("%s: KSP found paths where none exist", tc.name)
			}
		}

		// Edge-disjoint variants: same per-path guarantees plus pairwise
		// edge-disjointness (the property EDW/EDS routing relies on).
		for _, tc := range []struct {
			name  string
			paths []Path
		}{
			{"EDS", pf.EdgeDisjointShortestPaths(src, dst, k)},
			{"EDW", pf.EdgeDisjointWidestPaths(src, dst, k)},
		} {
			used := map[EdgeID]int{}
			for i, p := range tc.paths {
				checkSimplePath(t, g, p, src, dst, tc.name)
				for _, eid := range p.Edges {
					if prev, taken := used[eid]; taken {
						t.Fatalf("%s: edge %d reused by paths %d and %d", tc.name, eid, prev, i)
					}
					used[eid] = i
				}
			}
		}
	})
}
