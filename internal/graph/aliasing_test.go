package graph

// Regression tests for the serving pool's path-ownership contract: a Path
// returned by any PathFinder (or label) query is owned by the caller — its
// slices must not alias finder scratch that the NEXT query from the same
// finder rewrites, and must survive graph mutation. A worker answers query
// A, starts query B, and only then does A's response get serialized; if
// results aliased scratch, A's payload would silently turn into B's.

import (
	"math/rand"
	"testing"
)

// deepCopyPaths snapshots paths by value so later scratch reuse is visible.
func deepCopyPaths(ps []Path) []Path {
	out := make([]Path, len(ps))
	for i, p := range ps {
		out[i] = Path{
			Nodes: append([]NodeID(nil), p.Nodes...),
			Edges: append([]EdgeID(nil), p.Edges...),
		}
	}
	return out
}

func TestPathFinderResultsDoNotAliasScratch(t *testing.T) {
	g := randomTestGraph(t, 700, 60, 120)
	pf := NewPathFinder(g)
	rng := rand.New(rand.NewSource(7))
	n := g.NumNodes()

	// Every query family the serve layer exposes.
	queries := []func(src, dst NodeID) []Path{
		func(src, dst NodeID) []Path {
			p, ok := pf.ShortestPath(src, dst, UnitWeight)
			if !ok {
				return nil
			}
			return []Path{p}
		},
		func(src, dst NodeID) []Path {
			p, ok := pf.UnitShortestPath(src, dst)
			if !ok {
				return nil
			}
			return []Path{p}
		},
		func(src, dst NodeID) []Path {
			p, ok := pf.WidestPath(src, dst)
			if !ok {
				return nil
			}
			return []Path{p}
		},
		func(src, dst NodeID) []Path { return pf.KShortestPathsUnit(src, dst, 4) },
		func(src, dst NodeID) []Path { return pf.KShortestPaths(src, dst, 4, UnitWeight) },
		func(src, dst NodeID) []Path { return pf.EdgeDisjointShortestPaths(src, dst, 3) },
		func(src, dst NodeID) []Path { return pf.EdgeDisjointWidestPaths(src, dst, 3) },
		func(src, dst NodeID) []Path { return pf.HighestFundPaths(src, dst, 3) },
		func(src, dst NodeID) []Path { return pf.UnitShortestPaths(src, []NodeID{dst, src, 0}) },
	}

	for qi, query := range queries {
		srcA, dstA := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		srcB, dstB := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))

		resultA := query(srcA, dstA)
		saved := deepCopyPaths(resultA)

		// Interleave: a second query on the same finder, then a mutation —
		// the exact sequence a pooled worker runs between computing a
		// response and writing it out.
		query(srcB, dstB)
		churnStep(rng, g)

		for i := range resultA {
			if !resultA[i].Equal(saved[i]) {
				t.Fatalf("query family %d: result mutated by later query/mutation:\n got %+v\nwant %+v",
					qi, resultA[i], saved[i])
			}
		}
	}
}

// TestLabelResultsDoNotAliasScratch covers the hub-label serving path the
// same way: tree-served answers and Yen continuations seeded from a tree.
func TestLabelResultsDoNotAliasScratch(t *testing.T) {
	g := randomTestGraph(t, 701, 60, 120)
	hl := NewHubLabels(g, nil, []NodeID{5, 11})
	hl.BuildAll()
	v := hl.View()
	pf := NewPathFinder(g)
	rng := rand.New(rand.NewSource(9))

	first, ok := v.UnitShortestPath(pf, 5, 40)
	if !ok {
		t.Fatal("hub 5 cannot reach node 40")
	}
	ksp := v.KShortestPathsUnit(pf, 11, 33, 4)
	savedFirst := deepCopyPaths([]Path{first})[0]
	savedKSP := deepCopyPaths(ksp)

	v.UnitShortestPath(pf, 11, 7)
	v.KShortestPathsUnit(pf, 5, 29, 4)
	churnStep(rng, g)

	if !first.Equal(savedFirst) {
		t.Fatalf("label path mutated: got %+v want %+v", first, savedFirst)
	}
	for i := range ksp {
		if !ksp[i].Equal(savedKSP[i]) {
			t.Fatalf("label KSP[%d] mutated: got %+v want %+v", i, ksp[i], savedKSP[i])
		}
	}
}
