package graph

import (
	"math"
	"testing"

	"github.com/splicer-pcn/splicer/internal/rng"
)

func benchGraph(b *testing.B, n int) *Graph {
	b.Helper()
	src := rng.New(1)
	g := New(n)
	// Ring + random chords: connected with diverse paths.
	for i := 0; i < n; i++ {
		if _, err := g.AddEdge(NodeID(i), NodeID((i+1)%n), 100, 100); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		u, v := NodeID(src.IntN(n)), NodeID(src.IntN(n))
		if u == v {
			continue
		}
		if _, err := g.AddEdge(u, v, src.Float64()*200+1, src.Float64()*200+1); err != nil {
			b.Fatal(err)
		}
	}
	return g
}

func BenchmarkShortestPath1000(b *testing.B) {
	g := benchGraph(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.ShortestPath(0, 500, UnitWeight); !ok {
			b.Fatal("unreachable")
		}
	}
}

func BenchmarkWidestPath1000(b *testing.B) {
	g := benchGraph(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.WidestPath(0, 500); !ok {
			b.Fatal("unreachable")
		}
	}
}

func BenchmarkKShortestPaths5(b *testing.B) {
	g := benchGraph(b, 300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if paths := g.KShortestPaths(0, 150, 5, UnitWeight); len(paths) == 0 {
			b.Fatal("no paths")
		}
	}
}

func BenchmarkEdgeDisjointWidest5(b *testing.B) {
	g := benchGraph(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if paths := g.EdgeDisjointWidestPaths(0, 500, 5); len(paths) == 0 {
			b.Fatal("no paths")
		}
	}
}

func BenchmarkPathFinderShortest1000(b *testing.B) {
	g := benchGraph(b, 1000)
	pf := NewPathFinder(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := pf.ShortestPath(0, 500, UnitWeight); !ok {
			b.Fatal("unreachable")
		}
	}
}

func BenchmarkPathFinderWidest1000(b *testing.B) {
	g := benchGraph(b, 1000)
	pf := NewPathFinder(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := pf.WidestPath(0, 500); !ok {
			b.Fatal("unreachable")
		}
	}
}

func BenchmarkPathFinderKShortest5(b *testing.B) {
	g := benchGraph(b, 300)
	pf := NewPathFinder(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if paths := pf.KShortestPaths(0, 150, 5, UnitWeight); len(paths) == 0 {
			b.Fatal("no paths")
		}
	}
}

func BenchmarkMaxFlow1000(b *testing.B) {
	g := benchGraph(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if total, _ := g.MaxFlow(0, 500, math.Inf(1)); total <= 0 {
			b.Fatal("zero flow")
		}
	}
}

func BenchmarkBFSHops3000(b *testing.B) {
	g := benchGraph(b, 3000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFSHops(0)
	}
}
