package graph

import (
	"math"
	"sort"
)

// PathFinder owns the scratch state for repeated shortest- and widest-path
// queries over one graph: pre-sized dist/prev arrays, query-stamped validity
// marks (so "reset" between queries is O(1)), and a reusable binary heap.
// Repeated queries therefore allocate only the returned Path. Yen's
// algorithm (KShortestPaths) runs every spur search on the same scratch
// state, which is where the bulk of the path-selection allocations used to
// come from.
//
// A PathFinder is not safe for concurrent use; create one per goroutine.
// It tracks graph growth lazily, so a long-lived finder stays valid across
// AddNode/AddEdge (e.g. the multi-star reshape adding client channels).
type PathFinder struct {
	g        *Graph
	dist     []float64 // tentative cost (shortest) or bottleneck width (widest)
	hops     []int     // hop counts for widest-path tie-breaking
	prevEdge []EdgeID
	prevNode []NodeID
	// state fuses the former seen/done stamp arrays: a node is seen in the
	// current query iff state[v] >= query<<1, and finalized (done) iff
	// state[v] == query<<1|1. Query stamps strictly increase between
	// wraparounds, so one load answers both questions in the relaxation
	// loop.
	state []uint32
	query uint32
	heap  nodeHeap

	// Yen scratch.
	bannedNode []bool
	// edgeStamp/edgeGen implement the banned/masked edge sets of Yen's spur
	// searches, EDS extraction and EDW masking as O(1)-reset generation
	// stamps: an edge is in the current set iff its stamp equals edgeGen.
	// The former map[EdgeID]bool cost a hash lookup per edge relaxation in
	// every spur Dijkstra — the single hottest line of route planning.
	edgeStamp []uint32
	edgeGen   uint32

	// uheap serves the unit-weight fast path. The packed arc arrays the
	// fast paths iterate are no longer finder-private: they live on the
	// Graph itself (see csr.go) and are maintained incrementally by the
	// mutators, so a channel open/close costs O(degree) and a top-up O(1)
	// instead of an O(E) mirror rebuild. Arc order matches g.adj exactly —
	// traversal order is observable through Dijkstra tie-breaking and must
	// not change.
	uheap unitHeap

	// spur scratch: Yen's spur paths are consumed immediately (spliced into
	// a freshly allocated total path), so they reconstruct into reusable
	// buffers instead of allocating two slices per spur search.
	spurNodes []NodeID
	spurEdges []EdgeID
}

// NewPathFinder returns a finder for g.
func NewPathFinder(g *Graph) *PathFinder {
	pf := &PathFinder{g: g}
	pf.ensure()
	return pf
}

// Graph returns the graph this finder is bound to.
func (pf *PathFinder) Graph() *Graph { return pf.g }

// Rebind points the finder at a different graph, keeping its scratch
// allocations. All per-query scratch is stamp-invalidated at the next begin,
// and the persistent marks (bannedNode, the current edge set) are only
// meaningful within a single query's Yen/EDS/EDW run, so switching graphs
// between queries is safe. The serving layer uses this to retarget each
// worker's finder at the snapshot it pinned for the current query.
func (pf *PathFinder) Rebind(g *Graph) {
	if pf.g == g {
		return
	}
	pf.g = g
	pf.ensure()
	pf.ensureEdges()
}

// ensure sizes the scratch arrays to the graph's current node count. Growth
// copies the existing per-node state into the larger arrays (new nodes start
// unseen/unbanned), so a long-lived finder survives node arrivals mid-use:
// the query stamp, and any bannedNode marks held by an in-flight Yen search,
// stay valid. Growing over-allocates by 2x so a stream of single-node
// arrivals (dynamic churn) doesn't reallocate per join.
func (pf *PathFinder) ensure() {
	n := pf.g.NumNodes()
	if len(pf.dist) >= n {
		return
	}
	size := n
	if size < 2*len(pf.dist) {
		size = 2 * len(pf.dist)
	}
	pf.dist = append(make([]float64, 0, size), pf.dist...)[:size]
	pf.hops = append(make([]int, 0, size), pf.hops...)[:size]
	pf.prevEdge = append(make([]EdgeID, 0, size), pf.prevEdge...)[:size]
	pf.prevNode = append(make([]NodeID, 0, size), pf.prevNode...)[:size]
	pf.state = append(make([]uint32, 0, size), pf.state...)[:size]
	pf.bannedNode = append(make([]bool, 0, size), pf.bannedNode...)[:size]
}

// ensureEdges sizes the edge-stamp array to the graph's current edge
// count, growing 2x like ensure.
func (pf *PathFinder) ensureEdges() {
	n := pf.g.NumEdges()
	if len(pf.edgeStamp) >= n {
		return
	}
	size := n
	if size < 2*len(pf.edgeStamp) {
		size = 2 * len(pf.edgeStamp)
	}
	pf.edgeStamp = append(make([]uint32, 0, size), pf.edgeStamp...)[:size]
}

// beginEdgeSet starts a fresh banned/masked edge set in O(1). Edge-set
// users (KSP spur iterations, EDS, EDW) never nest, so one stamp array
// serves them all.
func (pf *PathFinder) beginEdgeSet() {
	pf.ensureEdges()
	pf.edgeGen++
	if pf.edgeGen == 0 { // stamp wraparound: clear once and restart
		clear(pf.edgeStamp)
		pf.edgeGen = 1
	}
}

func (pf *PathFinder) banEdge(id EdgeID) { pf.edgeStamp[id] = pf.edgeGen }

func (pf *PathFinder) edgeBanned(id EdgeID) bool { return pf.edgeStamp[id] == pf.edgeGen }

// begin starts a new query: bumping the stamp invalidates every per-node
// mark from earlier queries without touching the arrays.
func (pf *PathFinder) begin() {
	pf.ensure()
	pf.query++
	if pf.query >= 1<<31 { // stamp wraparound (query<<1|1 must fit): clear and restart
		clear(pf.state)
		pf.query = 1
	}
	pf.heap.reset()
}

// ShortestPath runs Dijkstra from src to dst under w on the finder's scratch
// state and returns the minimum-cost path. ok is false when dst is
// unreachable.
func (pf *PathFinder) ShortestPath(src, dst NodeID, w WeightFunc) (Path, bool) {
	pf.begin()
	g := pf.g
	sd := pf.query << 1
	pf.dist[src] = 0
	pf.prevEdge[src] = -1
	pf.prevNode[src] = -1
	pf.state[src] = sd
	pf.heap.push(src, 0)
	for pf.heap.len() > 0 {
		u, du := pf.heap.pop()
		if pf.state[u] == sd|1 {
			continue
		}
		pf.state[u] = sd | 1
		if u == dst {
			break
		}
		for _, eid := range g.adj[u] {
			e := g.edges[eid]
			v := e.Other(u)
			// A finalized node cannot be improved (weights are nonnegative,
			// so du+cost >= du >= dist[v]); skipping it before the weight
			// callback saves the indirect call on roughly half the edge
			// visits without changing any relaxation outcome.
			sv := pf.state[v]
			if sv == sd|1 {
				continue
			}
			cost := w(e, u)
			if math.IsInf(cost, 1) {
				continue
			}
			if cost < 0 {
				panic("graph: negative edge weight")
			}
			if nd := du + cost; sv < sd || nd < pf.dist[v] {
				pf.dist[v] = nd
				pf.prevEdge[v] = eid
				pf.prevNode[v] = u
				pf.state[v] = sd
				pf.heap.push(v, nd)
			}
		}
	}
	if pf.state[dst] < sd {
		return Path{}, false
	}
	return reconstruct(src, dst, pf.prevNode, pf.prevEdge), true
}

// UnitShortestPath is ShortestPath specialized to unit weights (hop
// counts) — the simulator's most common query (landmark detours, Flash
// mice paths, EDS extraction, the ShortestPath baseline scheme). The
// specialization removes the per-edge indirect weight call and Edge copy
// from the relaxation loop; pushes, pops and relaxation outcomes are
// bit-identical to ShortestPath(src, dst, UnitWeight).
func (pf *PathFinder) UnitShortestPath(src, dst NodeID) (Path, bool) {
	return pf.shortestUnit(src, dst, false, false)
}

// shortestUnit is the unit-weight Dijkstra core. banEdges skips edges in
// the current stamped edge set; banNodes skips the bannedNode marks (Yen
// spur roots). A banned edge/node behaves exactly like an infinite weight
// in the generic loop: the arc is skipped, nothing else changes.
func (pf *PathFinder) shortestUnit(src, dst NodeID, banEdges, banNodes bool) (Path, bool) {
	if !pf.runUnit(src, dst, banEdges, banNodes) {
		return Path{}, false
	}
	return reconstruct(src, dst, pf.prevNode, pf.prevEdge), true
}

// runUnit executes the unit Dijkstra, leaving the prev tree in the scratch
// arrays; it reports whether dst was reached.
func (pf *PathFinder) runUnit(src, dst NodeID, banEdges, banNodes bool) bool {
	pf.begin()
	pf.g.csrEnsure()
	pf.uheap.reset()
	sd := pf.query << 1
	// Local copies of the scratch arrays: none of them grow during the
	// query, and keeping them in locals lets the compiler keep the slice
	// headers in registers across the uheap.push calls (which mutate pf
	// state and would otherwise force reloads).
	state, dist := pf.state, pf.dist
	prevEdge, prevNode := pf.prevEdge, pf.prevNode
	span, slab := pf.g.csr.span, pf.g.csr.slab
	dist[src] = 0
	prevEdge[src] = -1
	prevNode[src] = -1
	state[src] = sd
	pf.uheap.push(src, 0)
	for pf.uheap.len() > 0 {
		u, du := pf.uheap.pop()
		if state[u] == sd|1 {
			continue
		}
		state[u] = sd | 1
		if u == dst {
			break
		}
		nd := du + 1
		fnd := float64(nd)
		s := span[u]
		arcs := slab[s.off : s.off+s.n]
		if !banEdges && !banNodes {
			// Clean variant (first searches, landmark detours, access
			// paths): no ban checks in the inner loop at all.
			for _, arc := range arcs {
				v := NodeID(arc >> 32)
				sv := state[v]
				if sv == sd|1 {
					continue
				}
				if sv < sd || fnd < dist[v] {
					dist[v] = fnd
					prevEdge[v] = EdgeID(uint32(arc))
					prevNode[v] = u
					state[v] = sd
					pf.uheap.push(v, nd)
				}
			}
			continue
		}
		edgeStamp, edgeGen := pf.edgeStamp, pf.edgeGen
		bannedNode := pf.bannedNode
		for _, arc := range arcs {
			eid := EdgeID(uint32(arc))
			if banEdges && edgeStamp[eid] == edgeGen {
				continue
			}
			v := NodeID(arc >> 32)
			sv := state[v]
			if sv == sd|1 {
				continue
			}
			if banNodes && bannedNode[v] {
				continue
			}
			if sv < sd || fnd < dist[v] {
				dist[v] = fnd
				prevEdge[v] = eid
				prevNode[v] = u
				state[v] = sd
				pf.uheap.push(v, nd)
			}
		}
	}
	return pf.state[dst] >= sd
}

// UnitShortestPaths runs ONE unit-weight Dijkstra from src and returns the
// shortest path to every target (the zero Path where unreachable). Each
// entry is identical to UnitShortestPath(src, dsts[i]) run separately: the
// expansion is deterministic and a finalized node's dist/prev never change,
// so running the same expansion past an early target cannot alter that
// target's already-frozen path. Landmark routing uses it to compute all k
// sender→landmark detour heads in a single traversal.
func (pf *PathFinder) UnitShortestPaths(src NodeID, dsts []NodeID) []Path {
	out := make([]Path, len(dsts))
	if len(dsts) == 0 {
		return out
	}
	pf.begin()
	pf.g.csrEnsure()
	pf.uheap.reset()
	sd := pf.query << 1
	reached := make([]bool, len(dsts))
	remaining := len(dsts)
	state, dist := pf.state, pf.dist
	prevEdge, prevNode := pf.prevEdge, pf.prevNode
	span, slab := pf.g.csr.span, pf.g.csr.slab
	dist[src] = 0
	prevEdge[src] = -1
	prevNode[src] = -1
	state[src] = sd
	pf.uheap.push(src, 0)
	for pf.uheap.len() > 0 && remaining > 0 {
		u, du := pf.uheap.pop()
		if state[u] == sd|1 {
			continue
		}
		state[u] = sd | 1
		for i, d := range dsts {
			if d == u && !reached[i] {
				reached[i] = true
				remaining--
			}
		}
		if remaining == 0 {
			break
		}
		nd := du + 1
		fnd := float64(nd)
		s := span[u]
		for _, arc := range slab[s.off : s.off+s.n] {
			v := NodeID(arc >> 32)
			sv := state[v]
			if sv == sd|1 {
				continue
			}
			if sv < sd || fnd < dist[v] {
				dist[v] = fnd
				prevEdge[v] = EdgeID(uint32(arc))
				prevNode[v] = u
				state[v] = sd
				pf.uheap.push(v, nd)
			}
		}
	}
	for i, d := range dsts {
		if reached[i] {
			out[i] = reconstruct(src, d, pf.prevNode, pf.prevEdge)
		}
	}
	return out
}

// WidestPath returns the path from src to dst maximizing the bottleneck
// directional capacity (a maximin Dijkstra). Ties are broken by hop count.
// ok is false when dst is unreachable through positive-capacity arcs.
func (pf *PathFinder) WidestPath(src, dst NodeID) (Path, bool) {
	return pf.widestPath(src, dst, false)
}

// widestPath is WidestPath with an optional mask: when masked, edges in the
// current edge set are skipped — exactly what zeroing their capacities on a
// cloned graph did, without the clone.
func (pf *PathFinder) widestPath(src, dst NodeID, masked bool) (Path, bool) {
	pf.begin()
	pf.g.csrEnsure()
	sd := pf.query << 1
	state, dist, hops := pf.state, pf.dist, pf.hops
	prevEdge, prevNode := pf.prevEdge, pf.prevNode
	span, slab, csrCap := pf.g.csr.span, pf.g.csr.slab, pf.g.csr.caps
	dist[src] = math.Inf(1) // dist doubles as the bottleneck width
	hops[src] = 0
	prevEdge[src] = -1
	prevNode[src] = -1
	state[src] = sd
	pf.heap.push(src, 0) // priority = -width so the widest pops first
	for pf.heap.len() > 0 {
		u, _ := pf.heap.pop()
		if state[u] == sd|1 {
			continue
		}
		state[u] = sd | 1
		if u == dst {
			break
		}
		du := dist[u]
		dh := hops[u] + 1
		s := span[u]
		start, end := s.off, s.off+s.n
		caps := csrCap[start:end]
		for i, arc := range slab[start:end] {
			eid := EdgeID(uint32(arc))
			if masked && pf.edgeStamp[eid] == pf.edgeGen {
				continue
			}
			c := caps[i]
			if c <= 0 {
				continue
			}
			v := NodeID(arc >> 32)
			nw := du
			if c < nw {
				nw = c
			}
			// Unlike shortest paths, a finalized node can still be refined
			// here (equal width, fewer hops), so the done bit must survive
			// the update: only an unseen node gets the plain seen stamp.
			sv := state[v]
			if sv < sd || nw > dist[v] || (nw == dist[v] && dh < hops[v]) {
				dist[v] = nw
				hops[v] = dh
				prevEdge[v] = eid
				prevNode[v] = u
				if sv < sd {
					state[v] = sd
				}
				pf.heap.push(v, -nw)
			}
		}
	}
	if pf.state[dst] < sd || (pf.prevNode[dst] == -1 && src != dst) {
		return Path{}, false
	}
	return reconstruct(src, dst, pf.prevNode, pf.prevEdge), true
}

// EdgeDisjointWidestPaths greedily extracts up to k pairwise edge-disjoint
// widest paths (the EDW path type) on the finder's scratch state: find the
// widest path, mask its edges, repeat. Masking uses the stamped edge set,
// so — unlike Graph.EdgeDisjointWidestPaths — no graph clone and no
// throwaway finder are built per query; results are identical.
func (pf *PathFinder) EdgeDisjointWidestPaths(src, dst NodeID, k int) []Path {
	pf.beginEdgeSet()
	var out []Path
	for len(out) < k {
		p, ok := pf.widestPath(src, dst, true)
		if !ok {
			break
		}
		out = append(out, p)
		for _, eid := range p.Edges {
			pf.banEdge(eid)
		}
	}
	return out
}

// KShortestPaths implements Yen's algorithm on the finder's scratch state,
// returning up to k loopless minimum-cost paths from src to dst under w, in
// nondecreasing cost order. Equal-cost candidates keep their discovery order
// (the candidate heap tie-breaks on insertion sequence, matching the
// stable-sort semantics this replaced). For unit weights prefer
// KShortestPathsUnit, which runs every spur search on the allocation- and
// indirection-free unit Dijkstra.
func (pf *PathFinder) KShortestPaths(src, dst NodeID, k int, w WeightFunc) []Path {
	return pf.kShortestPaths(src, dst, k, w, false)
}

// KShortestPathsUnit is KShortestPaths under unit (hop-count) weights,
// with identical results to KShortestPaths(src, dst, k, UnitWeight).
func (pf *PathFinder) KShortestPathsUnit(src, dst NodeID, k int) []Path {
	return pf.kShortestPaths(src, dst, k, UnitWeight, true)
}

func (pf *PathFinder) kShortestPaths(src, dst NodeID, k int, w WeightFunc, unit bool) []Path {
	if k <= 0 {
		return nil
	}
	var first Path
	var ok bool
	if unit {
		first, ok = pf.shortestUnit(src, dst, false, false)
	} else {
		first, ok = pf.ShortestPath(src, dst, w)
	}
	if !ok {
		return nil
	}
	return pf.kShortestPathsFrom(first, dst, k, w, unit)
}

// kShortestPathsFrom is Yen's continuation given a precomputed first path
// (first.Nodes[0] is the source). Yen's rounds depend only on the result
// set and the graph, so seeding with a first path equal to what the initial
// Dijkstra would return yields output identical to kShortestPaths — which
// is how the hub-label tier accelerates k-shortest queries: the label tree
// supplies the first path for free and the spur searches proceed exactly
// as before.
func (pf *PathFinder) kShortestPathsFrom(first Path, dst NodeID, k int, w WeightFunc, unit bool) []Path {
	if k <= 0 {
		return nil
	}
	pf.ensure()
	pf.ensureEdges()
	g := pf.g
	result := []Path{first}
	seen := map[string]bool{pathKey(first): true}
	var cands candidateHeap
	var seq uint64
	pathCost := func(p Path) float64 {
		if unit {
			return float64(len(p.Edges))
		}
		c := 0.0
		for i, eid := range p.Edges {
			c += w(g.edges[eid], p.Nodes[i])
		}
		return c
	}
	wf := func(e Edge, from NodeID) float64 {
		if pf.edgeBanned(e.ID) || pf.bannedNode[e.Other(from)] {
			return math.Inf(1)
		}
		return w(e, from)
	}
	sharing := make([]int, 0, k)

	// prevSpur is the spur index at which the newest result path deviated
	// from the result that spawned it (Lawler's optimization): for spur
	// indices below it, the root prefix and banned edge set are identical
	// to a search an earlier round already ran, whose candidate is in
	// `cands` or was seen-deduplicated — recomputing it cannot add
	// anything, so those Dijkstras are skipped outright. The root-node
	// bans and sharing-set filtering still advance through the skipped
	// prefix so the remaining spur searches see the exact same state.
	prevSpur := 0
	for len(result) < k {
		prev := result[len(result)-1]
		// Result paths sharing the current spur root. Every result path
		// starts at src, so all share the length-1 root; the set only
		// shrinks as the root grows, so it is filtered incrementally rather
		// than re-scanning every result path per spur node.
		sharing = sharing[:0]
		for idx := range result {
			sharing = append(sharing, idx)
		}
		for i := 0; i < len(prev.Nodes)-1; i++ {
			keep := sharing[:0]
			for _, idx := range sharing {
				if rp := result[idx]; len(rp.Nodes) > i && rp.Nodes[i] == prev.Nodes[i] {
					keep = append(keep, idx)
				}
			}
			sharing = keep
			if i > 0 {
				pf.bannedNode[prev.Nodes[i-1]] = true
			}
			if i < prevSpur {
				continue
			}
			// Exclude arcs that would recreate any already-found path
			// sharing this root, and exclude earlier root nodes to keep spur
			// paths loopless (the root grows one node per iteration).
			pf.beginEdgeSet()
			for _, idx := range sharing {
				if rp := result[idx]; len(rp.Edges) > i {
					pf.banEdge(rp.Edges[i])
				}
			}
			var spur Path
			if unit {
				// Spur paths are spliced into `total` below and discarded,
				// so they reconstruct into the finder's reusable scratch.
				if !pf.runUnit(prev.Nodes[i], dst, true, true) {
					continue
				}
				pf.spurNodes, pf.spurEdges = reconstructInto(
					pf.spurNodes[:0], pf.spurEdges[:0], prev.Nodes[i], dst, pf.prevNode, pf.prevEdge)
				spur = Path{Nodes: pf.spurNodes, Edges: pf.spurEdges}
			} else {
				var spurOK bool
				spur, spurOK = pf.ShortestPath(prev.Nodes[i], dst, wf)
				if !spurOK {
					continue
				}
			}
			total := Path{
				Nodes: append(append([]NodeID(nil), prev.Nodes[:i+1]...), spur.Nodes[1:]...),
				Edges: append(append([]EdgeID(nil), prev.Edges[:i]...), spur.Edges...),
			}
			key := pathKey(total)
			if seen[key] {
				continue
			}
			seen[key] = true
			cands.push(total, pathCost(total), seq, i)
			seq++
		}
		if n := len(prev.Nodes) - 2; n > 0 {
			for _, nid := range prev.Nodes[:n] {
				pf.bannedNode[nid] = false
			}
		}
		if cands.len() == 0 {
			break
		}
		var next Path
		next, prevSpur = cands.pop()
		result = append(result, next)
	}
	return result
}

// EdgeDisjointShortestPaths greedily extracts up to k pairwise edge-disjoint
// shortest (fewest-hop) paths on the finder's scratch state: find a shortest
// path, remove its edges, repeat.
func (pf *PathFinder) EdgeDisjointShortestPaths(src, dst NodeID, k int) []Path {
	pf.beginEdgeSet()
	var out []Path
	for len(out) < k {
		p, ok := pf.shortestUnit(src, dst, true, false)
		if !ok {
			break
		}
		out = append(out, p)
		for _, eid := range p.Edges {
			pf.banEdge(eid)
		}
	}
	return out
}

// HighestFundPaths implements the paper's "Heuristic" path type on the
// finder's scratch state: pick up to k loopless paths with the highest
// bottleneck funds, by running Yen's algorithm under an inverse-capacity
// weight and reranking by bottleneck.
func (pf *PathFinder) HighestFundPaths(src, dst NodeID, k int) []Path {
	// Generate a wider candidate pool than k, then keep the k with the
	// largest bottleneck capacity.
	pool := pf.KShortestPaths(src, dst, 3*k, func(e Edge, from NodeID) float64 {
		c := e.Capacity(from)
		if c <= 0 {
			return math.Inf(1)
		}
		return 1 / c
	})
	g := pf.g
	sort.SliceStable(pool, func(a, b int) bool {
		return pool[a].Bottleneck(g) > pool[b].Bottleneck(g)
	})
	if len(pool) > k {
		pool = pool[:k]
	}
	return pool
}
