package graph

import (
	"math"
	"sort"
)

// PathFinder owns the scratch state for repeated shortest- and widest-path
// queries over one graph: pre-sized dist/prev arrays, query-stamped validity
// marks (so "reset" between queries is O(1)), and a reusable binary heap.
// Repeated queries therefore allocate only the returned Path. Yen's
// algorithm (KShortestPaths) runs every spur search on the same scratch
// state, which is where the bulk of the path-selection allocations used to
// come from.
//
// A PathFinder is not safe for concurrent use; create one per goroutine.
// It tracks graph growth lazily, so a long-lived finder stays valid across
// AddNode/AddEdge (e.g. the multi-star reshape adding client channels).
type PathFinder struct {
	g        *Graph
	dist     []float64 // tentative cost (shortest) or bottleneck width (widest)
	hops     []int     // hop counts for widest-path tie-breaking
	prevEdge []EdgeID
	prevNode []NodeID
	seen     []uint32 // stamp: dist/prev valid in the current query
	done     []uint32 // stamp: node finalized in the current query
	query    uint32
	heap     nodeHeap

	// Yen scratch.
	bannedNode []bool
	bannedEdge map[EdgeID]bool
}

// NewPathFinder returns a finder for g.
func NewPathFinder(g *Graph) *PathFinder {
	pf := &PathFinder{g: g}
	pf.ensure()
	return pf
}

// Graph returns the graph this finder is bound to.
func (pf *PathFinder) Graph() *Graph { return pf.g }

// ensure sizes the scratch arrays to the graph's current node count. Growth
// copies the existing per-node state into the larger arrays (new nodes start
// unseen/unbanned), so a long-lived finder survives node arrivals mid-use:
// the query stamp, and any bannedNode marks held by an in-flight Yen search,
// stay valid. Growing over-allocates by 2x so a stream of single-node
// arrivals (dynamic churn) doesn't reallocate per join.
func (pf *PathFinder) ensure() {
	n := pf.g.NumNodes()
	if len(pf.dist) >= n {
		return
	}
	size := n
	if size < 2*len(pf.dist) {
		size = 2 * len(pf.dist)
	}
	pf.dist = append(make([]float64, 0, size), pf.dist...)[:size]
	pf.hops = append(make([]int, 0, size), pf.hops...)[:size]
	pf.prevEdge = append(make([]EdgeID, 0, size), pf.prevEdge...)[:size]
	pf.prevNode = append(make([]NodeID, 0, size), pf.prevNode...)[:size]
	pf.seen = append(make([]uint32, 0, size), pf.seen...)[:size]
	pf.done = append(make([]uint32, 0, size), pf.done...)[:size]
	pf.bannedNode = append(make([]bool, 0, size), pf.bannedNode...)[:size]
}

// begin starts a new query: bumping the stamp invalidates every per-node
// mark from earlier queries without touching the arrays.
func (pf *PathFinder) begin() {
	pf.ensure()
	pf.query++
	if pf.query == 0 { // stamp wraparound: clear once and restart
		for i := range pf.seen {
			pf.seen[i] = 0
			pf.done[i] = 0
		}
		pf.query = 1
	}
	pf.heap.reset()
}

// ShortestPath runs Dijkstra from src to dst under w on the finder's scratch
// state and returns the minimum-cost path. ok is false when dst is
// unreachable.
func (pf *PathFinder) ShortestPath(src, dst NodeID, w WeightFunc) (Path, bool) {
	pf.begin()
	g := pf.g
	pf.dist[src] = 0
	pf.prevEdge[src] = -1
	pf.prevNode[src] = -1
	pf.seen[src] = pf.query
	pf.heap.push(src, 0)
	for pf.heap.len() > 0 {
		u, du := pf.heap.pop()
		if pf.done[u] == pf.query {
			continue
		}
		pf.done[u] = pf.query
		if u == dst {
			break
		}
		for _, eid := range g.adj[u] {
			e := g.edges[eid]
			cost := w(e, u)
			if math.IsInf(cost, 1) {
				continue
			}
			if cost < 0 {
				panic("graph: negative edge weight")
			}
			v := e.Other(u)
			if nd := du + cost; pf.seen[v] != pf.query || nd < pf.dist[v] {
				pf.dist[v] = nd
				pf.prevEdge[v] = eid
				pf.prevNode[v] = u
				pf.seen[v] = pf.query
				pf.heap.push(v, nd)
			}
		}
	}
	if pf.seen[dst] != pf.query {
		return Path{}, false
	}
	return reconstruct(src, dst, pf.prevNode, pf.prevEdge), true
}

// WidestPath returns the path from src to dst maximizing the bottleneck
// directional capacity (a maximin Dijkstra). Ties are broken by hop count.
// ok is false when dst is unreachable through positive-capacity arcs.
func (pf *PathFinder) WidestPath(src, dst NodeID) (Path, bool) {
	pf.begin()
	g := pf.g
	pf.dist[src] = math.Inf(1) // dist doubles as the bottleneck width
	pf.hops[src] = 0
	pf.prevEdge[src] = -1
	pf.prevNode[src] = -1
	pf.seen[src] = pf.query
	pf.heap.push(src, 0) // priority = -width so the widest pops first
	for pf.heap.len() > 0 {
		u, _ := pf.heap.pop()
		if pf.done[u] == pf.query {
			continue
		}
		pf.done[u] = pf.query
		if u == dst {
			break
		}
		for _, eid := range g.adj[u] {
			e := g.edges[eid]
			c := e.Capacity(u)
			if c <= 0 {
				continue
			}
			v := e.Other(u)
			nw := math.Min(pf.dist[u], c)
			nh := pf.hops[u] + 1
			if pf.seen[v] != pf.query || nw > pf.dist[v] || (nw == pf.dist[v] && nh < pf.hops[v]) {
				pf.dist[v] = nw
				pf.hops[v] = nh
				pf.prevEdge[v] = eid
				pf.prevNode[v] = u
				pf.seen[v] = pf.query
				pf.heap.push(v, -nw)
			}
		}
	}
	if pf.seen[dst] != pf.query || (pf.prevNode[dst] == -1 && src != dst) {
		return Path{}, false
	}
	return reconstruct(src, dst, pf.prevNode, pf.prevEdge), true
}

// KShortestPaths implements Yen's algorithm on the finder's scratch state,
// returning up to k loopless minimum-cost paths from src to dst under w, in
// nondecreasing cost order. Equal-cost candidates keep their discovery order
// (the candidate heap tie-breaks on insertion sequence, matching the
// stable-sort semantics this replaced).
func (pf *PathFinder) KShortestPaths(src, dst NodeID, k int, w WeightFunc) []Path {
	if k <= 0 {
		return nil
	}
	first, ok := pf.ShortestPath(src, dst, w)
	if !ok {
		return nil
	}
	g := pf.g
	result := []Path{first}
	seen := map[string]bool{pathKey(first): true}
	if pf.bannedEdge == nil {
		pf.bannedEdge = map[EdgeID]bool{}
	}
	var cands candidateHeap
	var seq uint64
	pathCost := func(p Path) float64 {
		c := 0.0
		for i, eid := range p.Edges {
			c += w(g.edges[eid], p.Nodes[i])
		}
		return c
	}
	wf := func(e Edge, from NodeID) float64 {
		if pf.bannedEdge[e.ID] || pf.bannedNode[e.Other(from)] {
			return math.Inf(1)
		}
		return w(e, from)
	}
	sharing := make([]int, 0, k)

	for len(result) < k {
		prev := result[len(result)-1]
		// Result paths sharing the current spur root. Every result path
		// starts at src, so all share the length-1 root; the set only
		// shrinks as the root grows, so it is filtered incrementally rather
		// than re-scanning every result path per spur node.
		sharing = sharing[:0]
		for idx := range result {
			sharing = append(sharing, idx)
		}
		for i := 0; i < len(prev.Nodes)-1; i++ {
			keep := sharing[:0]
			for _, idx := range sharing {
				if rp := result[idx]; len(rp.Nodes) > i && rp.Nodes[i] == prev.Nodes[i] {
					keep = append(keep, idx)
				}
			}
			sharing = keep
			// Exclude arcs that would recreate any already-found path
			// sharing this root, and exclude earlier root nodes to keep spur
			// paths loopless (the root grows one node per iteration).
			clear(pf.bannedEdge)
			for _, idx := range sharing {
				if rp := result[idx]; len(rp.Edges) > i {
					pf.bannedEdge[rp.Edges[i]] = true
				}
			}
			if i > 0 {
				pf.bannedNode[prev.Nodes[i-1]] = true
			}
			spur, ok := pf.ShortestPath(prev.Nodes[i], dst, wf)
			if !ok {
				continue
			}
			total := Path{
				Nodes: append(append([]NodeID(nil), prev.Nodes[:i+1]...), spur.Nodes[1:]...),
				Edges: append(append([]EdgeID(nil), prev.Edges[:i]...), spur.Edges...),
			}
			key := pathKey(total)
			if seen[key] {
				continue
			}
			seen[key] = true
			cands.push(total, pathCost(total), seq)
			seq++
		}
		if n := len(prev.Nodes) - 2; n > 0 {
			for _, nid := range prev.Nodes[:n] {
				pf.bannedNode[nid] = false
			}
		}
		if cands.len() == 0 {
			break
		}
		result = append(result, cands.pop())
	}
	return result
}

// EdgeDisjointShortestPaths greedily extracts up to k pairwise edge-disjoint
// shortest (fewest-hop) paths on the finder's scratch state: find a shortest
// path, remove its edges, repeat.
func (pf *PathFinder) EdgeDisjointShortestPaths(src, dst NodeID, k int) []Path {
	used := map[EdgeID]bool{}
	w := func(e Edge, from NodeID) float64 {
		if used[e.ID] {
			return math.Inf(1)
		}
		return 1
	}
	var out []Path
	for len(out) < k {
		p, ok := pf.ShortestPath(src, dst, w)
		if !ok {
			break
		}
		out = append(out, p)
		for _, eid := range p.Edges {
			used[eid] = true
		}
	}
	return out
}

// HighestFundPaths implements the paper's "Heuristic" path type on the
// finder's scratch state: pick up to k loopless paths with the highest
// bottleneck funds, by running Yen's algorithm under an inverse-capacity
// weight and reranking by bottleneck.
func (pf *PathFinder) HighestFundPaths(src, dst NodeID, k int) []Path {
	// Generate a wider candidate pool than k, then keep the k with the
	// largest bottleneck capacity.
	pool := pf.KShortestPaths(src, dst, 3*k, func(e Edge, from NodeID) float64 {
		c := e.Capacity(from)
		if c <= 0 {
			return math.Inf(1)
		}
		return 1 / c
	})
	g := pf.g
	sort.SliceStable(pool, func(a, b int) bool {
		return pool[a].Bottleneck(g) > pool[b].Bottleneck(g)
	})
	if len(pool) > k {
		pool = pool[:k]
	}
	return pool
}
