package graph

// Correctness harness for the hub-label precomputation tier: every served
// answer must be byte-identical to the exact PathFinder's — on fresh
// graphs, after fuzzed churn timelines, and across the incremental-repair
// rules. These are the tests the CI label smoke runs (-run HubLabel).

import (
	"math/rand"
	"testing"
)

func randomHubs(rng *rand.Rand, g *Graph, k int) []NodeID {
	hubs := make([]NodeID, 0, k)
	for len(hubs) < k {
		hubs = append(hubs, NodeID(rng.Intn(g.NumNodes())))
	}
	return hubs
}

func TestHubLabelMatchesPathFinder(t *testing.T) {
	// The CI label smoke runs this with -short; the 2000-node scale is the
	// point of the smoke, so it is not reduced there.
	const n = 2000
	for seed := int64(0); seed < 3; seed++ {
		g := randomTestGraph(t, seed+900, n, 2*n)
		rng := rand.New(rand.NewSource(seed + 9000))
		hubs := randomHubs(rng, g, 6)
		hl := NewHubLabels(g, nil, hubs)
		ref := NewPathFinder(g)
		for q := 0; q < 300; q++ {
			var src NodeID
			if q%2 == 0 { // half the queries hub-rooted (served), half not (fallback)
				src = hubs[rng.Intn(len(hubs))]
			} else {
				src = NodeID(rng.Intn(g.NumNodes()))
			}
			dst := NodeID(rng.Intn(g.NumNodes()))
			got, okG := hl.UnitShortestPath(src, dst)
			want, okW := ref.UnitShortestPath(src, dst)
			if okG != okW || (okG && !pathsEqual(got, want)) {
				t.Fatalf("seed %d %d->%d: label %v/%v vs exact %v/%v", seed, src, dst, got, okG, want, okW)
			}
		}
		st := hl.Stats()
		if st.Served == 0 || st.Fallbacks == 0 {
			t.Fatalf("expected both served and fallback queries, got %+v", st)
		}
		if st.Builds != uint64(len(hl.Hubs())) {
			t.Fatalf("static graph built %d trees for %d hubs", st.Builds, len(hl.Hubs()))
		}
	}
}

// TestHubLabelChurnCrossCheck fuzzes churn timelines between query rounds:
// precomputed answers must track the live graph through opens, closes,
// joins and top-ups, with repairs scoped by the journal rules.
func TestHubLabelChurnCrossCheck(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed + 7700))
		g := randomTestGraph(t, seed+770, 150, 300)
		hubs := randomHubs(rng, g, 5)
		hl := NewHubLabels(g, nil, hubs)
		ref := NewPathFinder(g)
		for round := 0; round < 30; round++ {
			for step := 0; step < 10; step++ {
				churnStep(rng, g)
			}
			for q := 0; q < 20; q++ {
				src := hubs[rng.Intn(len(hubs))]
				dst := NodeID(rng.Intn(g.NumNodes()))
				got, okG := hl.UnitShortestPath(src, dst)
				want, okW := ref.UnitShortestPath(src, dst)
				if okG != okW || (okG && !pathsEqual(got, want)) {
					t.Fatalf("seed %d round %d %d->%d: label %v/%v vs exact %v/%v",
						seed, round, src, dst, got, okG, want, okW)
				}
			}
		}
		st := hl.Stats()
		if st.NoopMutations == 0 {
			t.Fatalf("churn timeline never exercised a proven-noop repair: %+v", st)
		}
		if st.Resyncs != 0 {
			t.Fatalf("short timeline overflowed the journal: %+v", st)
		}
	}
}

func TestHubLabelKShortestMatchesPathFinder(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := randomTestGraph(t, seed+330, 120, 260)
		rng := rand.New(rand.NewSource(seed + 3300))
		hubs := randomHubs(rng, g, 4)
		hl := NewHubLabels(g, nil, hubs)
		ref := NewPathFinder(g)
		for q := 0; q < 60; q++ {
			src := hubs[rng.Intn(len(hubs))]
			dst := NodeID(rng.Intn(g.NumNodes()))
			if src == dst {
				continue
			}
			got := hl.KShortestPathsUnit(src, dst, 4)
			want := ref.KShortestPathsUnit(src, dst, 4)
			if len(got) != len(want) {
				t.Fatalf("seed %d %d->%d: %d vs %d paths", seed, src, dst, len(got), len(want))
			}
			for i := range want {
				if !pathsEqual(got[i], want[i]) {
					t.Fatalf("seed %d %d->%d path %d:\nlabel %v\nexact %v", seed, src, dst, i, got[i], want[i])
				}
			}
		}
	}
}

func TestHubLabelMultiTargetMatchesPathFinder(t *testing.T) {
	g := randomTestGraph(t, 88, 180, 360)
	rng := rand.New(rand.NewSource(8800))
	hubs := randomHubs(rng, g, 4)
	hl := NewHubLabels(g, nil, hubs)
	ref := NewPathFinder(g)
	for q := 0; q < 60; q++ {
		src := hubs[rng.Intn(len(hubs))]
		dsts := make([]NodeID, 5)
		for i := range dsts {
			dsts[i] = NodeID(rng.Intn(g.NumNodes()))
		}
		dsts[4] = dsts[0]
		got := hl.UnitShortestPaths(src, dsts)
		want := ref.UnitShortestPaths(src, dsts)
		for i := range want {
			if !pathsEqual(got[i], want[i]) {
				t.Fatalf("%d->%v entry %d:\nlabel %v\nexact %v", src, dsts, i, got[i], want[i])
			}
		}
	}
}

// TestHubLabelRepairScoping pins that churn repairs are scoped to affected
// hubs: a removed non-tree arc stales nothing, a removed tree arc stales
// exactly the trees using it.
func TestHubLabelRepairScoping(t *testing.T) {
	// Triangle 0-1-2 plus tail 2-3. From hub 0 the tree uses e0 (0-1),
	// e2 (2-0), e3 (2-3) — e1 (1-2) is a non-tree arc. From hub 3 the tree
	// uses e3, e1, e2 — e0 is a non-tree arc.
	g := New(4)
	e0, _ := g.AddEdge(0, 1, 1, 1)
	e1, _ := g.AddEdge(1, 2, 1, 1)
	_, _ = g.AddEdge(2, 0, 1, 1)
	_, _ = g.AddEdge(2, 3, 1, 1)
	hl := NewHubLabels(g, nil, []NodeID{0, 3})
	hl.UnitShortestPath(0, 3)
	hl.UnitShortestPath(3, 0)
	if st := hl.Stats(); st.Builds != 2 {
		t.Fatalf("expected 2 initial builds, got %+v", st)
	}

	// e1 is in hub 3's tree only.
	if err := g.RemoveEdge(e1); err != nil {
		t.Fatal(err)
	}
	if p, ok := hl.UnitShortestPath(0, 3); !ok || p.Len() != 2 {
		t.Fatalf("hub0 path after e1 removal = %v ok=%v", p, ok)
	}
	st := hl.Stats()
	if st.Builds != 2 {
		t.Fatalf("hub 0 rebuilt for a non-tree removal: %+v", st)
	}
	if st.StaleMarks != 1 || st.NoopMutations != 1 {
		t.Fatalf("removal of e1 should stale hub3 only: %+v", st)
	}
	if p, ok := hl.UnitShortestPath(3, 1); !ok || p.Len() != 3 {
		t.Fatalf("hub3 path after repair = %v ok=%v", p, ok)
	}
	st = hl.Stats()
	if st.Builds != 3 || st.Repairs != 1 {
		t.Fatalf("hub 3 should have repaired once: %+v", st)
	}

	// An equal-distance edge add is a proven no-op for hub 0
	// (dist0(1) == dist0(2) == 1) but stales hub 3 (dist3(1)=3 ≠ dist3(2)=1).
	if _, err := g.AddEdge(1, 2, 1, 1); err != nil {
		t.Fatal(err)
	}
	hl.UnitShortestPath(0, 3)
	st = hl.Stats()
	if st.Builds != 3 {
		t.Fatalf("hub 0 rebuilt for an equal-distance add: %+v", st)
	}
	if st.NoopMutations != 2 || st.StaleMarks != 2 {
		t.Fatalf("equal-distance add should noop hub0, stale hub3: %+v", st)
	}
	// Capacity writes never touch labels.
	g.SetCapacity(e0, 99, 99)
	hl.UnitShortestPath(0, 3)
	hl.UnitShortestPath(3, 0)
	if st := hl.Stats(); st.Builds != 4 { // hub3's pending repair only
		t.Fatalf("top-up triggered label work: %+v", st)
	}
}

// TestHubLabelResync pins the journal-overflow path: an observer that falls
// behind the trimmed window resyncs (all trees stale) and stays correct.
func TestHubLabelResync(t *testing.T) {
	g := randomTestGraph(t, 55, 100, 200)
	hl := NewHubLabels(g, nil, []NodeID{0, 1})
	hl.UnitShortestPath(0, 50)
	for i := 0; i < maxJournal+100; i++ {
		id, err := g.AddEdge(NodeID(i%50), NodeID(50+i%50), 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.RemoveEdge(id); err != nil {
			t.Fatal(err)
		}
	}
	ref := NewPathFinder(g)
	got, okG := hl.UnitShortestPath(0, 50)
	want, okW := ref.UnitShortestPath(0, 50)
	if okG != okW || (okG && !pathsEqual(got, want)) {
		t.Fatalf("post-resync mismatch: %v/%v vs %v/%v", got, okG, want, okW)
	}
	if st := hl.Stats(); st.Resyncs != 1 {
		t.Fatalf("expected 1 resync, got %+v", st)
	}
}

func TestHubLabelDistUpperBound(t *testing.T) {
	g := randomTestGraph(t, 66, 200, 400)
	rng := rand.New(rand.NewSource(6600))
	hubs := randomHubs(rng, g, 5)
	hl := NewHubLabels(g, nil, hubs)
	ref := NewPathFinder(g)
	for q := 0; q < 100; q++ {
		src := NodeID(rng.Intn(g.NumNodes()))
		dst := NodeID(rng.Intn(g.NumNodes()))
		bound, ok := hl.DistUpperBound(src, dst)
		p, reach := ref.UnitShortestPath(src, dst)
		if !reach {
			if ok {
				t.Fatalf("%d->%d unreachable but bound %d", src, dst, bound)
			}
			continue
		}
		if ok && bound < p.Len() {
			t.Fatalf("%d->%d bound %d below true distance %d", src, dst, bound, p.Len())
		}
		// A hub-rooted query's bound through that hub is exact.
		if hl.IsHub(src) && (!ok || bound != p.Len()) {
			t.Fatalf("hub-rooted %d->%d bound %d/%v, true %d", src, dst, bound, ok, p.Len())
		}
	}
}
