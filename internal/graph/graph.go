// Package graph implements the graph algorithms Splicer's placement and
// routing layers are built on: shortest paths, Yen's k-shortest paths,
// widest (maximin-capacity) paths, edge-disjoint path extraction, and Dinic
// max-flow for the Flash baseline.
//
// A payment channel network is modeled as an undirected multigraph of nodes
// connected by channels, but every channel has independent per-direction
// state, so the algorithms here operate on a directed view: an undirected
// edge {u, v} contributes arcs u→v and v→u whose weights and capacities may
// differ.
package graph

import (
	"fmt"
	"math"
)

// NodeID identifies a node. IDs are dense indices in [0, NumNodes).
type NodeID int

// EdgeID identifies an undirected edge (channel). IDs are dense indices in
// [0, NumEdges).
type EdgeID int

// Edge is an undirected edge between two nodes with a per-direction capacity.
// CapFwd is the capacity in the U→V direction and CapRev in the V→U
// direction; for PCNs these are the channel balances on each side.
type Edge struct {
	ID     EdgeID
	U, V   NodeID
	CapFwd float64
	CapRev float64
}

// Capacity returns the capacity of the edge in the direction from node
// `from`. It panics if from is not an endpoint.
func (e Edge) Capacity(from NodeID) float64 {
	switch from {
	case e.U:
		return e.CapFwd
	case e.V:
		return e.CapRev
	default:
		panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %d", from, e.ID))
	}
}

// Other returns the endpoint opposite to `from`. It panics if from is not an
// endpoint.
func (e Edge) Other(from NodeID) NodeID {
	switch from {
	case e.U:
		return e.V
	case e.V:
		return e.U
	default:
		panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %d", from, e.ID))
	}
}

// Graph is an undirected multigraph with per-direction edge capacities.
// The zero value is an empty graph ready to use.
//
// The graph is mutable: nodes can be appended (AddNode) and edges added
// (AddEdge) or removed (RemoveEdge) at any time, which the dynamic-network
// layer uses to model channel opens/closes and node churn. Edge IDs are
// never reused: a removed edge leaves a tombstone slot so that EdgeID-indexed
// side tables (the PCN's channel array) stay aligned across removals.
type Graph struct {
	edges   []Edge
	adj     [][]EdgeID // node -> incident edge ids (live edges only)
	removed []bool     // edge id -> tombstoned by RemoveEdge
	numLive int
	// mutations counts adjacency-shape changes (AddNode/AddEdge/RemoveEdge)
	// and doubles as the shape-journal sequence number; capMutations
	// additionally counts capacity rewrites (SetCapacity). Since PR 6 the
	// packed CSR adjacency is graph-owned and maintained incrementally, so
	// the counters no longer invalidate anything — they remain as cheap
	// change detectors for external caches.
	mutations    uint64
	capMutations uint64
	// csr is the packed primary adjacency (see csr.go), built lazily on the
	// first path query and updated in place by the mutators below.
	csr csrState
	// journal records shape mutations for derived-structure observers (see
	// journal.go); journalBase is the sequence number of journal[0].
	journal     []Mutation
	journalBase uint64
}

// Mutations returns the adjacency mutation counter.
func (g *Graph) Mutations() uint64 { return g.mutations }

// EnsureCSR forces the lazy packed-adjacency build now. Path queries trigger
// the build implicitly on first use; callers about to share the graph with
// concurrent readers (speculative planning workers, each holding a private
// PathFinder over this graph) call this from the owning goroutine first so
// no reader races the one-time construction. After the build the CSR is
// maintained in place by the mutators, which such callers must serialize
// against readers themselves (see pcn's speculation quiesce contract).
func (g *Graph) EnsureCSR() { g.csrEnsure() }

// CapMutations returns the combined adjacency+capacity mutation counter.
func (g *Graph) CapMutations() uint64 { return g.mutations + g.capMutations }

// New returns a graph with n isolated nodes.
func New(n int) *Graph {
	return &Graph{adj: make([][]EdgeID, n)}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of edge slots ever allocated, including
// removed-edge tombstones; valid EdgeIDs are [0, NumEdges). Use NumLiveEdges
// for the count of edges currently in the topology.
func (g *Graph) NumEdges() int { return len(g.edges) }

// NumLiveEdges returns the number of edges not removed.
func (g *Graph) NumLiveEdges() int { return g.numLive }

// AddNode appends a new isolated node and returns its ID.
func (g *Graph) AddNode() NodeID {
	g.adj = append(g.adj, nil)
	g.mutations++
	id := NodeID(len(g.adj) - 1)
	g.journalAppend(Mutation{Kind: MutAddNode, Edge: -1, U: id, V: -1})
	if g.csr.ok {
		g.csrAddNode()
	}
	return id
}

// AddEdge adds an undirected edge between u and v with the given directional
// capacities and returns its ID. Self-loops are rejected.
func (g *Graph) AddEdge(u, v NodeID, capFwd, capRev float64) (EdgeID, error) {
	if u == v {
		return 0, fmt.Errorf("graph: self-loop on node %d", u)
	}
	if int(u) < 0 || int(u) >= len(g.adj) || int(v) < 0 || int(v) >= len(g.adj) {
		return 0, fmt.Errorf("graph: endpoint out of range: %d-%d with %d nodes", u, v, len(g.adj))
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, U: u, V: v, CapFwd: capFwd, CapRev: capRev})
	g.removed = append(g.removed, false)
	g.adj[u] = append(g.adj[u], id)
	g.adj[v] = append(g.adj[v], id)
	g.numLive++
	g.mutations++
	g.journalAppend(Mutation{Kind: MutAddEdge, Edge: id, U: u, V: v})
	if g.csr.ok {
		g.csrAddEdge(id)
	}
	return id, nil
}

// RemoveEdge removes an edge (a channel close) from the topology. The edge's
// ID slot is tombstoned, not reused: Edge(id) keeps reporting the endpoints
// (so in-flight bookkeeping can still resolve them) but the edge disappears
// from adjacency, Path.Valid and the traversal algorithms. Removing an edge
// twice is an error.
func (g *Graph) RemoveEdge(id EdgeID) error {
	if int(id) < 0 || int(id) >= len(g.edges) {
		return fmt.Errorf("graph: remove of unknown edge %d", id)
	}
	if g.removed[id] {
		return fmt.Errorf("graph: edge %d already removed", id)
	}
	e := g.edges[id]
	if g.csr.ok {
		g.csrRemoveEdge(id) // before the tombstone, while pos is live
	}
	g.adj[e.U] = dropEdgeID(g.adj[e.U], id)
	g.adj[e.V] = dropEdgeID(g.adj[e.V], id)
	g.removed[id] = true
	g.numLive--
	g.mutations++
	g.journalAppend(Mutation{Kind: MutRemoveEdge, Edge: id, U: e.U, V: e.V})
	return nil
}

// dropEdgeID removes one occurrence of id, preserving order (adjacency order
// is traversal order, which determinism tests depend on).
func dropEdgeID(ids []EdgeID, id EdgeID) []EdgeID {
	for i, x := range ids {
		if x == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// EdgeRemoved reports whether an edge slot has been tombstoned.
func (g *Graph) EdgeRemoved(id EdgeID) bool {
	return int(id) >= 0 && int(id) < len(g.removed) && g.removed[id]
}

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// SetCapacity updates the directional capacities of an edge. With the CSR
// built, the rewrite lands as two O(1) arc-slot writes — a top-up never
// invalidates the packed adjacency.
func (g *Graph) SetCapacity(id EdgeID, capFwd, capRev float64) {
	g.edges[id].CapFwd = capFwd
	g.edges[id].CapRev = capRev
	g.capMutations++
	if g.csr.ok {
		g.csrSetCapacity(id)
	}
}

// Incident returns the IDs of edges incident to node u. The returned slice
// must not be modified.
func (g *Graph) Incident(u NodeID) []EdgeID { return g.adj[u] }

// Degree returns the number of edges incident to u.
func (g *Graph) Degree(u NodeID) int { return len(g.adj[u]) }

// HasEdgeBetween reports whether at least one edge directly connects u and v.
func (g *Graph) HasEdgeBetween(u, v NodeID) bool {
	for _, id := range g.adj[u] {
		if g.edges[id].Other(u) == v {
			return true
		}
	}
	return false
}

// EdgeBetween returns the first edge between u and v, if any.
func (g *Graph) EdgeBetween(u, v NodeID) (Edge, bool) {
	for _, id := range g.adj[u] {
		if g.edges[id].Other(u) == v {
			return g.edges[id], true
		}
	}
	return Edge{}, false
}

// Edges returns a copy of all live (non-removed) edges.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.numLive)
	for i, e := range g.edges {
		if !g.removed[i] {
			out = append(out, e)
		}
	}
	return out
}

// Clone returns a deep copy of the graph, including removed-edge tombstones
// (edge IDs stay aligned between a graph and its clone).
func (g *Graph) Clone() *Graph {
	c := &Graph{
		edges:   make([]Edge, len(g.edges)),
		adj:     make([][]EdgeID, len(g.adj)),
		removed: append([]bool(nil), g.removed...),
		numLive: g.numLive,
	}
	copy(c.edges, g.edges)
	for i, a := range g.adj {
		c.adj[i] = append([]EdgeID(nil), a...)
	}
	return c
}

// Path is a walk through the graph expressed as the sequence of nodes
// visited and the edges taken between consecutive nodes
// (len(Edges) == len(Nodes)-1).
type Path struct {
	Nodes []NodeID
	Edges []EdgeID
}

// Len returns the number of hops (edges) in the path.
func (p Path) Len() int { return len(p.Edges) }

// Valid reports whether the path is structurally consistent with g: each
// edge connects the adjacent node pair.
func (p Path) Valid(g *Graph) bool {
	if len(p.Nodes) == 0 || len(p.Edges) != len(p.Nodes)-1 {
		return false
	}
	for i, eid := range p.Edges {
		if int(eid) < 0 || int(eid) >= g.NumEdges() || g.EdgeRemoved(eid) {
			return false
		}
		e := g.Edge(eid)
		u, v := p.Nodes[i], p.Nodes[i+1]
		if !(e.U == u && e.V == v) && !(e.U == v && e.V == u) {
			return false
		}
	}
	return true
}

// Bottleneck returns the minimum directional capacity along the path, i.e.
// the maximum amount routable over it in a single shot.
func (p Path) Bottleneck(g *Graph) float64 {
	b := math.Inf(1)
	for i, eid := range p.Edges {
		c := g.Edge(eid).Capacity(p.Nodes[i])
		if c < b {
			b = c
		}
	}
	return b
}

// Equal reports whether two paths take the same edges through the same
// nodes.
func (p Path) Equal(q Path) bool {
	if len(p.Nodes) != len(q.Nodes) || len(p.Edges) != len(q.Edges) {
		return false
	}
	for i := range p.Nodes {
		if p.Nodes[i] != q.Nodes[i] {
			return false
		}
	}
	for i := range p.Edges {
		if p.Edges[i] != q.Edges[i] {
			return false
		}
	}
	return true
}

// WeightFunc assigns a traversal cost to using edge e in the direction out of
// node `from`. Returning math.Inf(1) excludes the arc.
type WeightFunc func(e Edge, from NodeID) float64

// UnitWeight weights every arc 1 (hop count).
func UnitWeight(Edge, NodeID) float64 { return 1 }

// CapacityFilteredUnitWeight weights arcs 1 but excludes arcs whose
// directional capacity is below minCap.
func CapacityFilteredUnitWeight(minCap float64) WeightFunc {
	return func(e Edge, from NodeID) float64 {
		if e.Capacity(from) < minCap {
			return math.Inf(1)
		}
		return 1
	}
}

// BFSHops returns the hop distance from src to every node (-1 when
// unreachable), ignoring capacities.
func (g *Graph) BFSHops(src NodeID) []int {
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, eid := range g.adj[u] {
			v := g.edges[eid].Other(u)
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// AllPairsHops computes the hop-distance matrix via one BFS per node.
// The result is symmetric; unreachable pairs have -1.
func (g *Graph) AllPairsHops() [][]int {
	out := make([][]int, g.NumNodes())
	for i := range out {
		out[i] = g.BFSHops(NodeID(i))
	}
	return out
}

// Connected reports whether the graph is connected (vacuously true for 0 or
// 1 nodes).
func (g *Graph) Connected() bool {
	if g.NumNodes() <= 1 {
		return true
	}
	dist := g.BFSHops(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// ShortestPath runs Dijkstra from src to dst under w and returns the
// minimum-cost path. ok is false when dst is unreachable. Repeated queries
// should share a PathFinder instead, which keeps the Dijkstra scratch
// buffers across calls.
func (g *Graph) ShortestPath(src, dst NodeID, w WeightFunc) (Path, bool) {
	return NewPathFinder(g).ShortestPath(src, dst, w)
}

// WidestPath returns the path from src to dst maximizing the bottleneck
// directional capacity (a maximin Dijkstra). Ties are broken by hop count.
// ok is false when dst is unreachable through positive-capacity arcs.
// Repeated queries should share a PathFinder.
func (g *Graph) WidestPath(src, dst NodeID) (Path, bool) {
	return NewPathFinder(g).WidestPath(src, dst)
}

func reconstruct(src, dst NodeID, prevNode []NodeID, prevEdge []EdgeID) Path {
	nodes, edges := reconstructInto(nil, nil, src, dst, prevNode, prevEdge)
	return Path{Nodes: nodes, Edges: edges}
}

// reconstructInto is reconstruct appending into caller-owned buffers, for
// paths that are consumed immediately (Yen spur splicing) rather than
// retained.
func reconstructInto(nodes []NodeID, edges []EdgeID, src, dst NodeID, prevNode []NodeID, prevEdge []EdgeID) ([]NodeID, []EdgeID) {
	for at := dst; ; {
		nodes = append(nodes, at)
		if at == src {
			break
		}
		edges = append(edges, prevEdge[at])
		at = prevNode[at]
	}
	// Reverse in place.
	for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}
	for i, j := 0, len(edges)-1; i < j; i, j = i+1, j-1 {
		edges[i], edges[j] = edges[j], edges[i]
	}
	return nodes, edges
}

// KShortestPaths implements Yen's algorithm, returning up to k loopless
// minimum-cost paths from src to dst under w, in nondecreasing cost order.
// Repeated queries should share a PathFinder.
func (g *Graph) KShortestPaths(src, dst NodeID, k int, w WeightFunc) []Path {
	return NewPathFinder(g).KShortestPaths(src, dst, k, w)
}

func pathKey(p Path) string {
	b := make([]byte, 0, len(p.Nodes)*4)
	for _, n := range p.Nodes {
		b = append(b, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	}
	return string(b)
}

// EdgeDisjointShortestPaths greedily extracts up to k pairwise edge-disjoint
// shortest (fewest-hop) paths: find a shortest path, remove its edges,
// repeat. This matches the EDS path type in the paper's Table II.
// Repeated queries should share a PathFinder.
func (g *Graph) EdgeDisjointShortestPaths(src, dst NodeID, k int) []Path {
	return NewPathFinder(g).EdgeDisjointShortestPaths(src, dst, k)
}

// EdgeDisjointWidestPaths greedily extracts up to k pairwise edge-disjoint
// widest paths (the EDW path type): find the widest path, mask its edges,
// repeat. Repeated queries should share a PathFinder and call its
// EdgeDisjointWidestPaths method directly.
func (g *Graph) EdgeDisjointWidestPaths(src, dst NodeID, k int) []Path {
	return NewPathFinder(g).EdgeDisjointWidestPaths(src, dst, k)
}

// HighestFundPaths implements the paper's "Heuristic" path type: pick up to
// k loopless paths with the highest bottleneck funds, by running Yen's
// algorithm under an inverse-capacity weight and reranking by bottleneck.
// Repeated queries should share a PathFinder.
func (g *Graph) HighestFundPaths(src, dst NodeID, k int) []Path {
	return NewPathFinder(g).HighestFundPaths(src, dst, k)
}
