package graph

// Equivalence tests for the unit-weight fast paths and the CSR adjacency
// mirror: every specialized query must return bit-identical paths to its
// generic counterpart — not merely equally-short ones. Dijkstra tie-breaking
// is observable through the simulator (different equal-cost paths change
// payment trajectories and therefore figure outputs), so these tests are
// the contract that lets the fast paths replace the generic code in the
// planners.

import (
	"math/rand"
	"testing"
)

// randomTestGraph builds a connected-ish random multigraph.
func randomTestGraph(t *testing.T, seed int64, n, extra int) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for v := 1; v < n; v++ {
		u := NodeID(rng.Intn(v))
		if _, err := g.AddEdge(u, NodeID(v), 1+rng.Float64()*99, 1+rng.Float64()*99); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < extra; i++ {
		u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		if _, err := g.AddEdge(u, v, 1+rng.Float64()*99, 1+rng.Float64()*99); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func pathsEqual(a, b Path) bool {
	if len(a.Nodes) != len(b.Nodes) || len(a.Edges) != len(b.Edges) {
		return false
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			return false
		}
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			return false
		}
	}
	return true
}

func TestUnitShortestPathMatchesGeneric(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := randomTestGraph(t, seed, 120, 240)
		pfGeneric := NewPathFinder(g)
		pfUnit := NewPathFinder(g)
		rng := rand.New(rand.NewSource(seed + 1000))
		for q := 0; q < 200; q++ {
			src := NodeID(rng.Intn(g.NumNodes()))
			dst := NodeID(rng.Intn(g.NumNodes()))
			want, okW := pfGeneric.ShortestPath(src, dst, UnitWeight)
			got, okG := pfUnit.UnitShortestPath(src, dst)
			if okW != okG {
				t.Fatalf("seed %d %d->%d: ok mismatch generic=%v unit=%v", seed, src, dst, okW, okG)
			}
			if okW && !pathsEqual(want, got) {
				t.Fatalf("seed %d %d->%d:\ngeneric %v\nunit    %v", seed, src, dst, want, got)
			}
		}
	}
}

func TestUnitShortestPathsMultiMatchesSingle(t *testing.T) {
	g := randomTestGraph(t, 7, 150, 300)
	pf := NewPathFinder(g)
	rng := rand.New(rand.NewSource(77))
	for q := 0; q < 100; q++ {
		src := NodeID(rng.Intn(g.NumNodes()))
		dsts := make([]NodeID, 5)
		for i := range dsts {
			dsts[i] = NodeID(rng.Intn(g.NumNodes()))
		}
		dsts[4] = dsts[0] // duplicate targets must both resolve
		multi := pf.UnitShortestPaths(src, dsts)
		for i, d := range dsts {
			want, ok := pf.UnitShortestPath(src, d)
			if !ok {
				if multi[i].Len() != 0 || len(multi[i].Nodes) != 0 {
					t.Fatalf("%d->%d unreachable but multi returned %v", src, d, multi[i])
				}
				continue
			}
			if !pathsEqual(want, multi[i]) {
				t.Fatalf("%d->%d:\nsingle %v\nmulti  %v", src, d, want, multi[i])
			}
		}
	}
}

func TestKShortestPathsUnitMatchesGeneric(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := randomTestGraph(t, seed+20, 80, 160)
		pfGeneric := NewPathFinder(g)
		pfUnit := NewPathFinder(g)
		rng := rand.New(rand.NewSource(seed + 2000))
		for q := 0; q < 40; q++ {
			src := NodeID(rng.Intn(g.NumNodes()))
			dst := NodeID(rng.Intn(g.NumNodes()))
			if src == dst {
				continue
			}
			want := pfGeneric.KShortestPaths(src, dst, 4, UnitWeight)
			got := pfUnit.KShortestPathsUnit(src, dst, 4)
			if len(want) != len(got) {
				t.Fatalf("seed %d %d->%d: %d vs %d paths", seed, src, dst, len(want), len(got))
			}
			for i := range want {
				if !pathsEqual(want[i], got[i]) {
					t.Fatalf("seed %d %d->%d path %d:\ngeneric %v\nunit    %v", seed, src, dst, i, want[i], got[i])
				}
			}
		}
	}
}

// TestEdgeDisjointWidestPathsFinderMatchesClone pins the clone-free masked
// EDW against the reference implementation: clone the graph, zero out the
// extracted edges, rerun WidestPath.
func TestEdgeDisjointWidestPathsFinderMatchesClone(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := randomTestGraph(t, seed+40, 100, 250)
		pf := NewPathFinder(g)
		rng := rand.New(rand.NewSource(seed + 3000))
		for q := 0; q < 40; q++ {
			src := NodeID(rng.Intn(g.NumNodes()))
			dst := NodeID(rng.Intn(g.NumNodes()))
			if src == dst {
				continue
			}
			got := pf.EdgeDisjointWidestPaths(src, dst, 4)
			// Reference: mask by capacity-zeroing on a clone.
			masked := g.Clone()
			ref := NewPathFinder(masked)
			var want []Path
			for len(want) < 4 {
				p, ok := ref.WidestPath(src, dst)
				if !ok {
					break
				}
				want = append(want, p)
				for _, eid := range p.Edges {
					masked.SetCapacity(eid, 0, 0)
				}
			}
			if len(want) != len(got) {
				t.Fatalf("seed %d %d->%d: %d vs %d paths", seed, src, dst, len(want), len(got))
			}
			for i := range want {
				if !pathsEqual(want[i], got[i]) {
					t.Fatalf("seed %d %d->%d path %d:\nclone  %v\nfinder %v", seed, src, dst, i, want[i], got[i])
				}
			}
		}
	}
}

// TestCSRInvalidation exercises the adjacency mirror across topology and
// capacity mutations: results must track the live graph, never a stale
// mirror.
func TestCSRInvalidation(t *testing.T) {
	g := New(4)
	e01, _ := g.AddEdge(0, 1, 10, 10)
	_, _ = g.AddEdge(1, 2, 10, 10)
	pf := NewPathFinder(g)
	if p, ok := pf.UnitShortestPath(0, 2); !ok || p.Len() != 2 {
		t.Fatalf("initial path = %v ok=%v", p, ok)
	}
	// Adding a shortcut must invalidate the mirror.
	if _, err := g.AddEdge(0, 2, 5, 5); err != nil {
		t.Fatal(err)
	}
	if p, ok := pf.UnitShortestPath(0, 2); !ok || p.Len() != 1 {
		t.Fatalf("post-AddEdge path = %v ok=%v", p, ok)
	}
	// Removing it must be seen as well.
	if err := g.RemoveEdge(EdgeID(2)); err != nil {
		t.Fatal(err)
	}
	if p, ok := pf.UnitShortestPath(0, 2); !ok || p.Len() != 2 {
		t.Fatalf("post-RemoveEdge path = %v ok=%v", p, ok)
	}
	// Widest must see capacity rewrites (the capacity column has its own
	// invalidation stamp).
	if p, ok := pf.WidestPath(0, 2); !ok || p.Len() != 2 {
		t.Fatalf("widest = %v ok=%v", p, ok)
	}
	g.SetCapacity(e01, 0, 0) // starve the 0-1 hop
	if _, ok := pf.WidestPath(0, 2); ok {
		t.Fatal("widest found a path through a zero-capacity channel")
	}
	// A node arrival grows the mirror.
	v := g.AddNode()
	if _, err := g.AddEdge(2, v, 3, 3); err != nil {
		t.Fatal(err)
	}
	if p, ok := pf.UnitShortestPath(1, v); !ok || p.Len() != 2 {
		t.Fatalf("path to new node = %v ok=%v", p, ok)
	}
}
