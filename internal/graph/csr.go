// Graph-owned packed adjacency (CSR). Until PR 6 the flattened arc arrays
// were a PathFinder-private mirror invalidated wholesale by the mutation
// counters: any channel open/close rebuilt the whole O(E) layout, and any
// top-up resynced the whole capacity column. The CSR is now owned by the
// Graph itself and maintained incrementally — AddEdge appends into the
// node's slab region (amortized-doubling migration when full), RemoveEdge
// compacts the region in place, and SetCapacity writes the two affected arc
// slots directly — so a one-channel top-up is O(1) and a churn event is
// O(degree), never O(E).
//
// The pointer adjacency (g.adj) stays as the build-time input and the
// order source of truth: arc order within a node's slab region always
// equals g.adj[u] order. That invariant is load-bearing — Dijkstra
// tie-breaking is observable through the golden CSVs — and is what the
// CSR/adjacency property tests pin.
package graph

// arcSpan is one node's region of the arc slab: arcs live at
// slab[off : off+n], with room to grow to off+cap before the region
// migrates to the end of the slab.
type arcSpan struct {
	off int32
	n   int32
	cap int32
}

// csrState is the packed adjacency: slab packs (other<<32 | eid) per arc,
// caps holds the directional capacity out of the arc's source node at the
// same index, span locates each node's region, and pos maps each live edge
// to the slab indices of its two arcs (U-side, V-side) so capacity writes
// and removals are O(1) lookups.
type csrState struct {
	ok      bool
	slab    []uint64
	caps    []float64
	span    []arcSpan
	pos     [][2]int32
	garbage int // slab slots abandoned by span migrations
	stats   CSRStats
}

// CSRStats exposes the CSR maintenance counters, so tests (and curious
// benchmarks) can pin that a given workload stays on the incremental path.
type CSRStats struct {
	// Built reports whether the packed adjacency currently exists (it is
	// built lazily on the first path query).
	Built bool
	// Rebuilds counts full O(E) layout builds: the initial lazy build plus
	// any garbage-triggered compactions.
	Rebuilds uint64
	// Compactions counts the subset of Rebuilds triggered by migration
	// garbage exceeding half the slab.
	Compactions uint64
	// IncrementalOps counts shape mutations (AddNode/AddEdge/RemoveEdge)
	// applied in place without a rebuild.
	IncrementalOps uint64
	// CapacityWrites counts SetCapacity calls applied as two-slot writes.
	CapacityWrites uint64
	// Arcs is the live arc count (2 per live edge); SlabLen is the backing
	// slab length including growth headroom and migration garbage.
	Arcs    int
	SlabLen int
}

// CSRStats returns a snapshot of the CSR maintenance counters.
func (g *Graph) CSRStats() CSRStats {
	s := g.csr.stats
	s.Built = g.csr.ok
	s.Arcs = 2 * g.numLive
	s.SlabLen = len(g.csr.slab)
	return s
}

func packArc(other NodeID, eid EdgeID) uint64 {
	return uint64(uint32(other))<<32 | uint64(uint32(eid))
}

// csrEnsure makes the packed adjacency valid, building it on first use.
func (g *Graph) csrEnsure() {
	if !g.csr.ok {
		g.csrRebuild()
	}
}

// csrRebuild densely lays out the slab from the pointer adjacency. Used for
// the initial lazy build and for compaction; arc order is exactly g.adj
// order, regions are tight (cap == n), and migration garbage resets to 0.
func (g *Graph) csrRebuild() {
	c := &g.csr
	n := len(g.adj)
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	if cap(c.slab) < total {
		c.slab = make([]uint64, total)
		c.caps = make([]float64, total)
	} else {
		c.slab = c.slab[:total]
		c.caps = c.caps[:total]
	}
	if cap(c.span) < n {
		c.span = make([]arcSpan, n)
	} else {
		c.span = c.span[:n]
	}
	if cap(c.pos) < len(g.edges) {
		c.pos = make([][2]int32, len(g.edges))
	} else {
		c.pos = c.pos[:len(g.edges)]
	}
	off := int32(0)
	for u := range g.adj {
		ids := g.adj[u]
		c.span[u] = arcSpan{off: off, n: int32(len(ids)), cap: int32(len(ids))}
		for _, eid := range ids {
			e := &g.edges[eid]
			if e.U == NodeID(u) {
				c.slab[off] = packArc(e.V, eid)
				c.caps[off] = e.CapFwd
				c.pos[eid][0] = off
			} else {
				c.slab[off] = packArc(e.U, eid)
				c.caps[off] = e.CapRev
				c.pos[eid][1] = off
			}
			off++
		}
	}
	c.garbage = 0
	c.ok = true
	c.stats.Rebuilds++
}

// csrAddNode appends an empty region for a new node.
func (g *Graph) csrAddNode() {
	c := &g.csr
	c.span = append(c.span, arcSpan{off: int32(len(c.slab))})
	c.stats.IncrementalOps++
}

// csrAddEdge appends the new edge's two arcs to its endpoints' regions,
// matching the g.adj append order.
func (g *Graph) csrAddEdge(id EdgeID) {
	c := &g.csr
	e := g.edges[id]
	c.pos = append(c.pos, [2]int32{-1, -1})
	g.csrInsertArc(e.U, packArc(e.V, id), e.CapFwd, id, 0)
	g.csrInsertArc(e.V, packArc(e.U, id), e.CapRev, id, 1)
	c.stats.IncrementalOps++
	if len(c.slab) > 1024 && c.garbage > len(c.slab)/2 {
		g.csrRebuild()
		c.stats.Compactions++
	}
}

// csrInsertArc places one arc at the end of u's region, migrating the
// region to the slab's end with doubled capacity when it is full. Migration
// preserves arc order, so iteration order still matches g.adj[u].
func (g *Graph) csrInsertArc(u NodeID, arc uint64, capOut float64, id EdgeID, side int) {
	c := &g.csr
	s := &c.span[u]
	if s.n < s.cap {
		i := s.off + s.n
		c.slab[i] = arc
		c.caps[i] = capOut
		c.pos[id][side] = i
		s.n++
		return
	}
	newCap := 2 * s.cap
	if newCap < 4 {
		newCap = 4
	}
	newOff := int32(len(c.slab))
	c.slab = append(c.slab, c.slab[s.off:s.off+s.n]...)
	c.caps = append(c.caps, c.caps[s.off:s.off+s.n]...)
	for i := int32(0); i < s.n; i++ {
		eid := EdgeID(uint32(c.slab[newOff+i]))
		if g.edges[eid].U == u {
			c.pos[eid][0] = newOff + i
		} else {
			c.pos[eid][1] = newOff + i
		}
	}
	c.slab = append(c.slab, arc)
	c.caps = append(c.caps, capOut)
	c.pos[id][side] = newOff + s.n
	for pad := newCap - s.n - 1; pad > 0; pad-- {
		c.slab = append(c.slab, 0)
		c.caps = append(c.caps, 0)
	}
	c.garbage += int(s.cap)
	*s = arcSpan{off: newOff, n: s.n + 1, cap: newCap}
}

// csrRemoveEdge drops the edge's two arcs by ordered in-place compaction of
// each endpoint's region — the slab analogue of dropEdgeID, so surviving
// arc order still matches g.adj.
func (g *Graph) csrRemoveEdge(id EdgeID) {
	e := g.edges[id]
	g.csrRemoveArc(e.U, id)
	g.csrRemoveArc(e.V, id)
	g.csr.stats.IncrementalOps++
}

func (g *Graph) csrRemoveArc(u NodeID, id EdgeID) {
	c := &g.csr
	s := &c.span[u]
	side := 0
	if g.edges[id].V == u {
		side = 1
	}
	end := s.off + s.n
	for j := c.pos[id][side]; j < end-1; j++ {
		a := c.slab[j+1]
		c.slab[j] = a
		c.caps[j] = c.caps[j+1]
		eid := EdgeID(uint32(a))
		if g.edges[eid].U == u {
			c.pos[eid][0] = j
		} else {
			c.pos[eid][1] = j
		}
	}
	c.pos[id][side] = -1
	s.n--
}

// csrSetCapacity applies a capacity rewrite as two direct slot writes —
// the dirty-region replacement for the old "any top-up resyncs the whole
// capacity column" invalidation.
func (g *Graph) csrSetCapacity(id EdgeID) {
	c := &g.csr
	if g.removed[id] {
		return
	}
	e := &g.edges[id]
	c.caps[c.pos[id][0]] = e.CapFwd
	c.caps[c.pos[id][1]] = e.CapRev
	c.stats.CapacityWrites++
}
