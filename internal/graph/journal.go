// Shape-mutation journal. Observers that maintain derived structures over
// the graph (the hub-label precomputation tier) need to know *which*
// mutations happened since they last looked, not just that the counter
// moved — a counter alone forces a full rebuild on every channel open.
// The graph records every shape mutation (AddNode/AddEdge/RemoveEdge) in a
// bounded ring; capacity rewrites are deliberately excluded, both because
// unit-weight derived structures don't depend on capacities and because the
// balance-view refresh issues O(E) SetCapacity calls per gossip tick, which
// would flush the journal between every pair of reads.
package graph

// MutationKind discriminates journal entries.
type MutationKind uint8

const (
	// MutAddNode records an AddNode; U is the new node's id.
	MutAddNode MutationKind = iota + 1
	// MutAddEdge records an AddEdge; Edge is the new id, U/V its endpoints.
	MutAddEdge
	// MutRemoveEdge records a RemoveEdge; Edge is the tombstoned id, U/V
	// the endpoints it connected.
	MutRemoveEdge
)

// Mutation is one journaled shape change.
type Mutation struct {
	Kind MutationKind
	Edge EdgeID
	U, V NodeID
}

// maxJournal bounds journal memory; overflow trims the oldest half, and
// observers whose cursor falls off the retained window get ok=false from
// MutationsSince and must resync from scratch.
const maxJournal = 8192

func (g *Graph) journalAppend(m Mutation) {
	if len(g.journal) >= maxJournal {
		half := len(g.journal) / 2
		n := copy(g.journal, g.journal[half:])
		g.journal = g.journal[:n]
		g.journalBase += uint64(half)
	}
	g.journal = append(g.journal, m)
}

// MutationSeq returns the current shape-mutation sequence number: the seq
// to pass to MutationsSince to receive only mutations applied after this
// call. It equals Mutations().
func (g *Graph) MutationSeq() uint64 { return g.mutations }

// MutationsSince returns the shape mutations applied since seq, in order.
// ok is false when the window has been trimmed past seq (or seq is from
// another graph's future); the observer must then resync from current
// state and restart its cursor at MutationSeq. The returned slice aliases
// the journal and is valid only until the next graph mutation.
func (g *Graph) MutationsSince(seq uint64) ([]Mutation, bool) {
	if seq < g.journalBase || seq > g.journalBase+uint64(len(g.journal)) {
		return nil, false
	}
	return g.journal[seq-g.journalBase:], true
}
