package graph

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/splicer-pcn/splicer/internal/rng"
)

// line builds a path graph 0-1-2-...-(n-1) with uniform capacity c.
func line(n int, c float64) *Graph {
	g := New(n)
	for i := 0; i < n-1; i++ {
		if _, err := g.AddEdge(NodeID(i), NodeID(i+1), c, c); err != nil {
			panic(err)
		}
	}
	return g
}

func mustEdge(t *testing.T, g *Graph, u, v NodeID, cf, cr float64) EdgeID {
	t.Helper()
	id, err := g.AddEdge(u, v, cf, cr)
	if err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
	return id
}

func TestAddEdgeRejectsSelfLoop(t *testing.T) {
	g := New(3)
	if _, err := g.AddEdge(1, 1, 1, 1); err == nil {
		t.Fatal("expected error for self-loop")
	}
}

func TestAddEdgeRejectsOutOfRange(t *testing.T) {
	g := New(3)
	if _, err := g.AddEdge(0, 5, 1, 1); err == nil {
		t.Fatal("expected error for out-of-range endpoint")
	}
	if _, err := g.AddEdge(-1, 2, 1, 1); err == nil {
		t.Fatal("expected error for negative endpoint")
	}
}

func TestEdgeAccessors(t *testing.T) {
	g := New(2)
	id := mustEdge(t, g, 0, 1, 5, 7)
	e := g.Edge(id)
	if e.Capacity(0) != 5 || e.Capacity(1) != 7 {
		t.Fatalf("capacities: fwd=%v rev=%v", e.Capacity(0), e.Capacity(1))
	}
	if e.Other(0) != 1 || e.Other(1) != 0 {
		t.Fatal("Other endpoints wrong")
	}
}

func TestEdgeCapacityPanicsForNonEndpoint(t *testing.T) {
	g := New(3)
	id := mustEdge(t, g, 0, 1, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Edge(id).Capacity(2)
}

func TestBFSHops(t *testing.T) {
	g := line(5, 1)
	d := g.BFSHops(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Fatalf("dist[%d] = %d, want %d", i, d[i], want)
		}
	}
}

func TestBFSHopsUnreachable(t *testing.T) {
	g := New(3)
	mustEdge(t, g, 0, 1, 1, 1)
	d := g.BFSHops(0)
	if d[2] != -1 {
		t.Fatalf("dist to isolated node = %d, want -1", d[2])
	}
	if g.Connected() {
		t.Fatal("graph with isolated node reported connected")
	}
}

func TestConnectedTrivial(t *testing.T) {
	if !New(0).Connected() || !New(1).Connected() {
		t.Fatal("empty/singleton graphs should be connected")
	}
}

func TestAllPairsHopsSymmetric(t *testing.T) {
	g := line(6, 1)
	m := g.AllPairsHops()
	for i := range m {
		for j := range m[i] {
			if m[i][j] != m[j][i] {
				t.Fatalf("asymmetric hops: m[%d][%d]=%d m[%d][%d]=%d", i, j, m[i][j], j, i, m[j][i])
			}
		}
	}
	if m[0][5] != 5 {
		t.Fatalf("m[0][5] = %d, want 5", m[0][5])
	}
}

func TestShortestPathPrefersFewerHops(t *testing.T) {
	// 0-1-3 (2 hops) vs 0-2-4-3 (3 hops)
	g := New(5)
	mustEdge(t, g, 0, 1, 1, 1)
	mustEdge(t, g, 1, 3, 1, 1)
	mustEdge(t, g, 0, 2, 1, 1)
	mustEdge(t, g, 2, 4, 1, 1)
	mustEdge(t, g, 4, 3, 1, 1)
	p, ok := g.ShortestPath(0, 3, UnitWeight)
	if !ok || p.Len() != 2 {
		t.Fatalf("path = %+v ok=%v, want 2 hops", p, ok)
	}
	if !p.Valid(g) {
		t.Fatal("path not valid")
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 0, 1, 1, 1)
	mustEdge(t, g, 2, 3, 1, 1)
	if _, ok := g.ShortestPath(0, 3, UnitWeight); ok {
		t.Fatal("found path across disconnected components")
	}
}

func TestShortestPathRespectsWeights(t *testing.T) {
	// Direct edge 0-1 is expensive, detour 0-2-1 cheap.
	g := New(3)
	mustEdge(t, g, 0, 1, 1, 1)
	mustEdge(t, g, 0, 2, 1, 1)
	mustEdge(t, g, 2, 1, 1, 1)
	w := func(e Edge, from NodeID) float64 {
		if e.U == 0 && e.V == 1 {
			return 10
		}
		return 1
	}
	p, ok := g.ShortestPath(0, 1, w)
	if !ok || p.Len() != 2 {
		t.Fatalf("expected the 2-hop detour, got %+v", p)
	}
}

func TestShortestPathToSelf(t *testing.T) {
	g := line(3, 1)
	p, ok := g.ShortestPath(1, 1, UnitWeight)
	if !ok || p.Len() != 0 || len(p.Nodes) != 1 {
		t.Fatalf("self path = %+v ok=%v", p, ok)
	}
}

func TestCapacityFilteredUnitWeight(t *testing.T) {
	g := New(3)
	mustEdge(t, g, 0, 1, 0.5, 0.5)
	mustEdge(t, g, 0, 2, 5, 5)
	mustEdge(t, g, 2, 1, 5, 5)
	p, ok := g.ShortestPath(0, 1, CapacityFilteredUnitWeight(1))
	if !ok || p.Len() != 2 {
		t.Fatalf("expected filtered detour, got %+v ok=%v", p, ok)
	}
}

func TestWidestPathPicksHighCapacity(t *testing.T) {
	// Narrow direct edge vs wide detour.
	g := New(3)
	mustEdge(t, g, 0, 1, 2, 2)
	mustEdge(t, g, 0, 2, 100, 100)
	mustEdge(t, g, 2, 1, 50, 50)
	p, ok := g.WidestPath(0, 1)
	if !ok {
		t.Fatal("no widest path")
	}
	if got := p.Bottleneck(g); got != 50 {
		t.Fatalf("bottleneck = %v, want 50 (via detour)", got)
	}
}

func TestWidestPathTieBreaksOnHops(t *testing.T) {
	// Two paths with the same bottleneck 10: 0-1 direct and 0-2-1.
	g := New(3)
	mustEdge(t, g, 0, 1, 10, 10)
	mustEdge(t, g, 0, 2, 10, 10)
	mustEdge(t, g, 2, 1, 10, 10)
	p, ok := g.WidestPath(0, 1)
	if !ok || p.Len() != 1 {
		t.Fatalf("expected 1-hop path, got %+v", p)
	}
}

func TestWidestPathDirectional(t *testing.T) {
	// The only route 0→1 has zero capacity in that direction.
	g := New(2)
	mustEdge(t, g, 0, 1, 0, 10)
	if _, ok := g.WidestPath(0, 1); ok {
		t.Fatal("found path through zero-capacity direction")
	}
	if p, ok := g.WidestPath(1, 0); !ok || p.Bottleneck(g) != 10 {
		t.Fatal("reverse direction should be routable at width 10")
	}
}

func TestKShortestPathsOrderAndUniqueness(t *testing.T) {
	// Classic diamond: several routes 0→3.
	g := New(4)
	mustEdge(t, g, 0, 1, 1, 1)
	mustEdge(t, g, 1, 3, 1, 1)
	mustEdge(t, g, 0, 2, 1, 1)
	mustEdge(t, g, 2, 3, 1, 1)
	mustEdge(t, g, 1, 2, 1, 1)
	paths := g.KShortestPaths(0, 3, 10, UnitWeight)
	if len(paths) < 3 {
		t.Fatalf("found %d paths, want >= 3", len(paths))
	}
	prev := -1.0
	seen := map[string]bool{}
	for _, p := range paths {
		if !p.Valid(g) {
			t.Fatalf("invalid path %+v", p)
		}
		cost := float64(p.Len())
		if cost < prev {
			t.Fatalf("paths out of order: %v after %v", cost, prev)
		}
		prev = cost
		k := pathKey(p)
		if seen[k] {
			t.Fatalf("duplicate path %+v", p)
		}
		seen[k] = true
		// Looplessness.
		nodes := map[NodeID]bool{}
		for _, n := range p.Nodes {
			if nodes[n] {
				t.Fatalf("path revisits node: %+v", p)
			}
			nodes[n] = true
		}
	}
}

func TestKShortestPathsKOne(t *testing.T) {
	g := line(4, 1)
	paths := g.KShortestPaths(0, 3, 1, UnitWeight)
	if len(paths) != 1 || paths[0].Len() != 3 {
		t.Fatalf("paths = %+v", paths)
	}
}

func TestKShortestPathsNoneWhenDisconnected(t *testing.T) {
	g := New(2)
	if paths := g.KShortestPaths(0, 1, 3, UnitWeight); paths != nil {
		t.Fatalf("expected nil, got %+v", paths)
	}
}

func TestEdgeDisjointShortestPaths(t *testing.T) {
	// Two fully disjoint routes 0→3 plus a shared shortcut.
	g := New(6)
	mustEdge(t, g, 0, 1, 1, 1)
	mustEdge(t, g, 1, 3, 1, 1)
	mustEdge(t, g, 0, 2, 1, 1)
	mustEdge(t, g, 2, 3, 1, 1)
	mustEdge(t, g, 0, 4, 1, 1)
	mustEdge(t, g, 4, 5, 1, 1)
	mustEdge(t, g, 5, 3, 1, 1)
	paths := g.EdgeDisjointShortestPaths(0, 3, 5)
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3", len(paths))
	}
	used := map[EdgeID]bool{}
	for _, p := range paths {
		for _, e := range p.Edges {
			if used[e] {
				t.Fatalf("edge %d reused", e)
			}
			used[e] = true
		}
	}
	// Greedy order: the two 2-hop paths come before the 3-hop one.
	if paths[0].Len() != 2 || paths[1].Len() != 2 || paths[2].Len() != 3 {
		t.Fatalf("unexpected path lengths: %d %d %d", paths[0].Len(), paths[1].Len(), paths[2].Len())
	}
}

func TestEdgeDisjointWidestPaths(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 0, 1, 100, 100)
	mustEdge(t, g, 1, 3, 100, 100)
	mustEdge(t, g, 0, 2, 10, 10)
	mustEdge(t, g, 2, 3, 10, 10)
	paths := g.EdgeDisjointWidestPaths(0, 3, 5)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	if paths[0].Bottleneck(g) != 100 || paths[1].Bottleneck(g) != 10 {
		t.Fatalf("bottlenecks: %v, %v", paths[0].Bottleneck(g), paths[1].Bottleneck(g))
	}
}

func TestHighestFundPaths(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 0, 1, 5, 5)
	mustEdge(t, g, 1, 3, 5, 5)
	mustEdge(t, g, 0, 2, 50, 50)
	mustEdge(t, g, 2, 3, 50, 50)
	paths := g.HighestFundPaths(0, 3, 1)
	if len(paths) != 1 {
		t.Fatalf("got %d paths", len(paths))
	}
	if paths[0].Bottleneck(g) != 50 {
		t.Fatalf("heuristic picked bottleneck %v, want 50", paths[0].Bottleneck(g))
	}
}

func TestMaxFlowSimple(t *testing.T) {
	// Two disjoint unit paths → max flow 2.
	g := New(4)
	mustEdge(t, g, 0, 1, 1, 0)
	mustEdge(t, g, 1, 3, 1, 0)
	mustEdge(t, g, 0, 2, 1, 0)
	mustEdge(t, g, 2, 3, 1, 0)
	total, paths := g.MaxFlow(0, 3, math.Inf(1))
	if math.Abs(total-2) > 1e-9 {
		t.Fatalf("max flow = %v, want 2", total)
	}
	sum := 0.0
	for _, fp := range paths {
		if !fp.Path.Valid(g) {
			t.Fatalf("invalid flow path %+v", fp.Path)
		}
		sum += fp.Amount
	}
	if math.Abs(sum-total) > 1e-9 {
		t.Fatalf("decomposition sums to %v, want %v", sum, total)
	}
}

func TestMaxFlowBottleneck(t *testing.T) {
	// 0 -10→ 1 -3→ 2: flow limited to 3.
	g := New(3)
	mustEdge(t, g, 0, 1, 10, 0)
	mustEdge(t, g, 1, 2, 3, 0)
	total, _ := g.MaxFlow(0, 2, math.Inf(1))
	if math.Abs(total-3) > 1e-9 {
		t.Fatalf("max flow = %v, want 3", total)
	}
}

func TestMaxFlowRespectsLimit(t *testing.T) {
	g := New(2)
	mustEdge(t, g, 0, 1, 100, 0)
	total, paths := g.MaxFlow(0, 1, 7)
	if math.Abs(total-7) > 1e-9 {
		t.Fatalf("limited flow = %v, want 7", total)
	}
	if len(paths) != 1 || math.Abs(paths[0].Amount-7) > 1e-9 {
		t.Fatalf("paths = %+v", paths)
	}
}

func TestMaxFlowZeroWhenDisconnected(t *testing.T) {
	g := New(2)
	total, paths := g.MaxFlow(0, 1, math.Inf(1))
	if total != 0 || paths != nil {
		t.Fatalf("total=%v paths=%v", total, paths)
	}
}

func TestMaxFlowSelf(t *testing.T) {
	g := line(2, 1)
	if total, _ := g.MaxFlow(0, 0, math.Inf(1)); total != 0 {
		t.Fatalf("self flow = %v", total)
	}
}

// randomConnectedGraph builds a connected random graph for property tests.
func randomConnectedGraph(src *rng.Source, n int, extraEdges int, maxCap float64) *Graph {
	g := New(n)
	perm := src.Perm(n)
	for i := 1; i < n; i++ {
		u, v := NodeID(perm[i-1]), NodeID(perm[i])
		c1 := src.Float64()*maxCap + 1
		c2 := src.Float64()*maxCap + 1
		if _, err := g.AddEdge(u, v, c1, c2); err != nil {
			panic(err)
		}
	}
	for i := 0; i < extraEdges; i++ {
		u, v := NodeID(src.IntN(n)), NodeID(src.IntN(n))
		if u == v {
			continue
		}
		c1 := src.Float64()*maxCap + 1
		c2 := src.Float64()*maxCap + 1
		if _, err := g.AddEdge(u, v, c1, c2); err != nil {
			panic(err)
		}
	}
	return g
}

func TestPropertyWidestPathIsWidest(t *testing.T) {
	// The widest path's bottleneck must be >= the bottleneck of every
	// shortest path and every KSP path found.
	f := func(seed uint64) bool {
		src := rng.New(seed)
		g := randomConnectedGraph(src, 12, 15, 100)
		s, d := NodeID(0), NodeID(11)
		wp, ok := g.WidestPath(s, d)
		if !ok {
			return false // graph is connected, must exist
		}
		wb := wp.Bottleneck(g)
		for _, p := range g.KShortestPaths(s, d, 5, UnitWeight) {
			if p.Bottleneck(g) > wb+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMaxFlowAtLeastWidest(t *testing.T) {
	// Max flow >= widest path bottleneck (a single path is a valid flow).
	f := func(seed uint64) bool {
		src := rng.New(seed)
		g := randomConnectedGraph(src, 10, 12, 50)
		s, d := NodeID(0), NodeID(9)
		wp, ok := g.WidestPath(s, d)
		if !ok {
			return false
		}
		total, _ := g.MaxFlow(s, d, math.Inf(1))
		return total >= wp.Bottleneck(g)-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDecompositionConserves(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		g := randomConnectedGraph(src, 10, 14, 30)
		s, d := NodeID(0), NodeID(9)
		total, paths := g.MaxFlow(s, d, math.Inf(1))
		sum := 0.0
		for _, fp := range paths {
			if len(fp.Path.Nodes) == 0 || fp.Path.Nodes[0] != s || fp.Path.Nodes[len(fp.Path.Nodes)-1] != d {
				return false
			}
			if !fp.Path.Valid(g) {
				return false
			}
			sum += fp.Amount
		}
		return math.Abs(sum-total) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := line(3, 5)
	c := g.Clone()
	c.SetCapacity(0, 99, 99)
	if g.Edge(0).CapFwd == 99 {
		t.Fatal("clone shares edge storage with original")
	}
	if _, err := c.AddEdge(0, 2, 1, 1); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == c.NumEdges() {
		t.Fatal("clone shares adjacency with original")
	}
}

func TestPathEqual(t *testing.T) {
	p := Path{Nodes: []NodeID{0, 1}, Edges: []EdgeID{0}}
	q := Path{Nodes: []NodeID{0, 1}, Edges: []EdgeID{0}}
	r := Path{Nodes: []NodeID{0, 2}, Edges: []EdgeID{1}}
	if !p.Equal(q) || p.Equal(r) {
		t.Fatal("Path.Equal misbehaves")
	}
}

func TestHasEdgeBetween(t *testing.T) {
	g := line(3, 1)
	if !g.HasEdgeBetween(0, 1) || g.HasEdgeBetween(0, 2) {
		t.Fatal("HasEdgeBetween wrong")
	}
	if e, ok := g.EdgeBetween(1, 2); !ok || e.ID != 1 {
		t.Fatalf("EdgeBetween = %+v ok=%v", e, ok)
	}
	if _, ok := g.EdgeBetween(0, 2); ok {
		t.Fatal("EdgeBetween found non-existent edge")
	}
}
