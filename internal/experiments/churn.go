// FigChurn: the dynamic-network panel. No figure in the paper corresponds
// to it — the paper evaluates static snapshots only — but the paper's own
// motivation (channels deplete, demand shifts, nodes come and go) is
// dynamic, so this panel measures what the static figures cannot: how each
// scheme's TSR and delay degrade with churn rate, and how much of the
// degradation online hub re-placement (Network.RePlaceHubs every
// ChurnReplaceInterval) buys back for Splicer.

package experiments

import (
	"fmt"

	"github.com/splicer-pcn/splicer/internal/dynamics"
	"github.com/splicer-pcn/splicer/internal/pcn"
	"github.com/splicer-pcn/splicer/internal/rng"
	"github.com/splicer-pcn/splicer/internal/sweep"
	"github.com/splicer-pcn/splicer/internal/topology"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// ChurnRateSweep is the x-axis: the rate (events/sec) of each structural
// churn process — node joins, node leaves, spontaneous channel opens and
// closes. 0 is the no-churn reference (topology static, demand still
// diurnal and drifting).
var ChurnRateSweep = []float64{0, 0.5, 1, 2, 4}

// ChurnSchemes is the full six-scheme comparison: the paper's five plus the
// naive shortest-path baseline.
var ChurnSchemes = []pcn.Scheme{
	pcn.SchemeSplicer,
	pcn.SchemeSpider,
	pcn.SchemeFlash,
	pcn.SchemeLandmark,
	pcn.SchemeA2L,
	pcn.SchemeShortestPath,
}

// ChurnOnlineLabel names the Splicer-with-online-re-placement series.
const ChurnOnlineLabel = "Splicer(online)"

// ChurnReplaceInterval is how often the online variant re-runs placement.
const ChurnReplaceInterval = 1.0

// Churn returns the dynamic-network scenario: the small-scale network under
// moderate demand, evolved for 8 seconds of churn, depletion repair, and
// drifting diurnal demand.
func Churn() Scenario {
	s := SmallScale()
	s.Name = "churn"
	s.Seed = 4
	s.Rate = 100
	s.Duration = 8
	return s
}

// dynConfig maps the scenario onto a dynamics configuration with every
// structural process running at churnRate events/sec.
func (s Scenario) dynConfig(churnRate float64) dynamics.Config {
	dyn := dynamics.NewConfig(s.Duration)
	dyn.JoinRate = churnRate
	dyn.LeaveRate = churnRate
	dyn.OpenRate = churnRate
	dyn.CloseRate = churnRate
	dyn.TopUpRate = churnRate
	dyn.ChannelScale = s.ChannelScale
	dyn.Rate = s.Rate
	dyn.ValueScale = s.ValueScale
	dyn.ZipfSkew = s.ZipfSkew
	dyn.Timeout = s.Timeout
	return dyn
}

// churnCell packages one dynamic-network run as a sweep cell: the Run hook
// builds a private graph, network and driver, so cells parallelize exactly
// like static cells. The graph derives from the same seed splits as
// Scenario.Build; the driver draws from an unused split, so the x=0 topology
// matches the static scenario's bit-for-bit.
func (s Scenario) churnCell(scheme pcn.Scheme, label string, x float64, dyn dynamics.Config) sweep.Cell {
	seed := s.Seed
	return sweep.Cell{
		Scheme: scheme,
		Seed:   seed,
		Axis:   "churn_rate",
		X:      x,
		Label:  label,
		Run: func() (pcn.Result, error) {
			src := rng.New(seed)
			sizes := workload.NewChannelSizeDist(src.Split(1), s.ChannelScale)
			g, err := topology.WattsStrogatz(src.Split(2), s.Nodes, s.WSDegree, s.WSBeta, sizes.CapacityFunc())
			if err != nil {
				return pcn.Result{}, fmt.Errorf("experiments: topology: %w", err)
			}
			cfg := pcn.NewConfig(scheme)
			cfg.NumHubCandidates = s.HubCandidates
			n, err := pcn.NewNetwork(g, cfg)
			if err != nil {
				return pcn.Result{}, err
			}
			d, err := dynamics.NewDriver(n, src.Split(4), dyn)
			if err != nil {
				return pcn.Result{}, err
			}
			return d.Run()
		},
	}
}

// churnVariant is one line of the churn panel.
type churnVariant struct {
	scheme  pcn.Scheme
	label   string // aggregation label; "" for the plain scheme
	name    string // series name
	replace bool
}

func churnVariants() []churnVariant {
	var out []churnVariant
	for _, sc := range ChurnSchemes {
		out = append(out, churnVariant{scheme: sc, name: sc.String()})
	}
	out = append(out, churnVariant{
		scheme: pcn.SchemeSplicer, label: "online", name: ChurnOnlineLabel, replace: true,
	})
	return out
}

// FigChurn runs the churn panel: TSR and mean delay vs churn rate for the
// six schemes plus Splicer with online re-placement, on the sweep engine.
// Cell order is fixed (x-major, then variant, then seed), so the output is
// byte-identical for any worker count.
func FigChurn(base Scenario) (tsr, delay []Series, err error) {
	variants := churnVariants()
	var cells []sweep.Cell
	for _, x := range ChurnRateSweep {
		for _, v := range variants {
			for _, seed := range base.seedList() {
				scen := base
				scen.Seed = seed
				dyn := scen.dynConfig(x)
				if v.replace {
					dyn.ReplaceInterval = ChurnReplaceInterval
				}
				cells = append(cells, scen.churnCell(v.scheme, v.label, x, dyn))
			}
		}
	}
	results := sweep.Run(cells, base.workerCount())
	if err := sweep.FirstErr(results); err != nil {
		return nil, nil, fmt.Errorf("experiments: %w", err)
	}
	type key struct {
		scheme pcn.Scheme
		label  string
		x      float64
	}
	byKey := map[key]sweep.Summary{}
	for _, s := range sweep.Aggregate(results) {
		byKey[key{s.Scheme, s.Label, s.X}] = s
	}
	tsr = make([]Series, len(variants))
	delay = make([]Series, len(variants))
	for vi, v := range variants {
		tsr[vi].Name = v.name
		delay[vi].Name = v.name
		for _, x := range ChurnRateSweep {
			s := byKey[key{v.scheme, v.label, x}]
			tsr[vi].Points = append(tsr[vi].Points, Point{X: x, Y: s.TSR.Mean})
			delay[vi].Points = append(delay[vi].Points, Point{X: x, Y: s.MeanDelay.Mean})
		}
	}
	return tsr, delay, nil
}

// ChurnTable renders the churn panel: one row per churn rate, TSR and delay
// columns per variant.
func ChurnTable(title string, tsr, delay []Series) Table {
	t := Table{Title: title, Header: []string{"churn_rate"}}
	for _, s := range tsr {
		t.Header = append(t.Header, s.Name+" TSR")
	}
	for _, s := range delay {
		t.Header = append(t.Header, s.Name+" delay(s)")
	}
	if len(tsr) == 0 {
		return t
	}
	for i, p := range tsr[0].Points {
		row := []string{fmt.Sprintf("%g", p.X)}
		for _, s := range tsr {
			row = append(row, fmt.Sprintf("%.4f", s.Points[i].Y))
		}
		for _, s := range delay {
			row = append(row, fmt.Sprintf("%.4f", s.Points[i].Y))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
