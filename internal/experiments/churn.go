// FigChurn: the dynamic-network panel. No figure in the paper corresponds
// to it — the paper evaluates static snapshots only — but the paper's own
// motivation (channels deplete, demand shifts, nodes come and go) is
// dynamic, so this panel measures what the static figures cannot: how each
// scheme's TSR and delay degrade with churn rate, and how much of the
// degradation online hub re-placement buys back for Splicer. The panel runs
// on the scenario engine's churn runner.

package experiments

import (
	"fmt"

	"github.com/splicer-pcn/splicer/internal/pcn"
	"github.com/splicer-pcn/splicer/internal/scenario"
)

// ChurnRateSweep is the x-axis: the rate (events/sec) of each structural
// churn process — node joins, node leaves, spontaneous channel opens and
// closes. 0 is the no-churn reference (topology static, demand still
// diurnal and drifting).
var ChurnRateSweep = scenario.ChurnRateGrid()

// ChurnSchemes is the full six-scheme comparison: the paper's five plus the
// naive shortest-path baseline.
var ChurnSchemes = []pcn.Scheme{
	pcn.SchemeSplicer,
	pcn.SchemeSpider,
	pcn.SchemeFlash,
	pcn.SchemeLandmark,
	pcn.SchemeA2L,
	pcn.SchemeShortestPath,
}

// ChurnOnlineLabel names the Splicer-with-online-re-placement series.
const ChurnOnlineLabel = scenario.OnlineLabel

// ChurnReplaceInterval is how often the online variant re-runs placement.
const ChurnReplaceInterval = scenario.OnlineReplaceInterval

// Churn returns the dynamic-network scenario: the small-scale network under
// moderate demand, evolved for 8 seconds of churn, depletion repair, and
// drifting diurnal demand.
func Churn() Scenario {
	return fromSpec(scenario.ChurnSpec())
}

// FigChurn runs the churn panel: TSR and mean delay vs churn rate for the
// six schemes plus Splicer with online re-placement, on the scenario
// engine. Cell order is fixed (x-major, then variant, then seed), so the
// output is byte-identical for any worker count.
func FigChurn(base Scenario) (tsr, delay []Series, err error) {
	spec := base.Spec()
	// The dynamics driver owns the demand process; the static generator's
	// circulation knob does not apply (and the churn runner never used it).
	spec.Workload.CirculationFraction = 0
	spec.Dynamics = &scenario.DynamicsSpec{}
	tsr, delay, err = scenario.RunChurnPanel(spec, ChurnRateSweep, schemeNames(ChurnSchemes), base.runOptions())
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: %w", err)
	}
	return tsr, delay, nil
}

// ChurnTable renders the churn panel: one row per churn rate, TSR and delay
// columns per variant.
func ChurnTable(title string, tsr, delay []Series) Table {
	return scenario.ChurnTable(title, tsr, delay)
}
