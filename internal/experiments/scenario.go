// Package experiments regenerates every table and figure of the paper's
// evaluation (§V). Since the declarative scenario engine landed
// (internal/scenario), this package is a thin compatibility layer: the
// Scenario struct maps onto a scenario.Spec, every figure/table runner is a
// lookup into the same engine the `scenarios` CLI drives, and the output
// types are aliases — so the historical API (and cmd/experiments) and
// cmd/scenarios render through one code path, byte-for-byte.
package experiments

import (
	"fmt"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/pcn"
	"github.com/splicer-pcn/splicer/internal/scenario"
	"github.com/splicer-pcn/splicer/internal/sweep"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// Scenario fixes a network + workload configuration for one experiment run.
type Scenario struct {
	Name string
	Seed uint64
	// Nodes in the Watts–Strogatz channel graph (paper: 100 / 3000).
	Nodes int
	// WSDegree and WSBeta parameterize the small-world generator.
	WSDegree int
	WSBeta   float64
	// ChannelScale multiplies the LN-calibrated channel sizes.
	ChannelScale float64
	// ValueScale multiplies transaction values.
	ValueScale float64
	// Rate is the aggregate arrival rate (tx/s); Duration the trace length.
	Rate     float64
	Duration float64
	// Timeout per transaction (paper: 3 s).
	Timeout float64
	// ZipfSkew and CirculationFraction shape the endpoint distribution.
	ZipfSkew            float64
	CirculationFraction float64
	// HubCandidates for Splicer's placement.
	HubCandidates int
	// Seeds optionally replicates every sweep cell across multiple seeds;
	// figure points then report the across-seed mean. Empty means the single
	// Seed above (the seed-compatible default).
	Seeds []uint64
	// Workers bounds the sweep worker pool: 0 or 1 runs serially, N > 1 in
	// parallel, < 0 uses all cores. Results are identical for any value.
	Workers int
}

// SmallScale returns the paper's small-scale scenario (100 nodes). The
// arrival rate and duration are simulator-budget choices; the structural
// parameters follow §V-A.
func SmallScale() Scenario {
	return fromSpec(scenario.SmallSpec())
}

// LargeScale returns the paper's large-scale scenario (3000 nodes).
func LargeScale() Scenario {
	return fromSpec(scenario.LargeSpec())
}

// Scale returns the scaling scenario beyond the paper's grid: a 2000-node
// Watts–Strogatz network by default, swept up to 10k nodes by FigScale.
func Scale() Scenario {
	return fromSpec(scenario.ScaleSpec())
}

// fromSpec maps a registry base spec back onto the historical struct.
func fromSpec(sp scenario.Spec) Scenario {
	return Scenario{
		Name:                sp.Name,
		Seed:                sp.Seed,
		Nodes:               sp.Topology.Nodes,
		WSDegree:            sp.Topology.Degree,
		WSBeta:              sp.Topology.Beta,
		ChannelScale:        sp.Topology.ChannelScale,
		ValueScale:          sp.Workload.ValueScale,
		Rate:                sp.Workload.Rate,
		Duration:            sp.Workload.Duration,
		Timeout:             sp.Workload.Timeout,
		ZipfSkew:            sp.Workload.ZipfSkew,
		CirculationFraction: sp.Workload.CirculationFraction,
		HubCandidates:       sp.Routing.HubCandidates,
	}
}

// Spec maps the scenario onto the declarative engine's cell spec.
func (s Scenario) Spec() scenario.Spec {
	return scenario.Spec{
		Name: s.Name,
		Seed: s.Seed,
		Topology: scenario.TopologySpec{
			Type:         scenario.TopoWattsStrogatz,
			Nodes:        s.Nodes,
			Degree:       s.WSDegree,
			Beta:         s.WSBeta,
			ChannelScale: s.ChannelScale,
		},
		Workload: scenario.WorkloadSpec{
			Type:                scenario.WorkSynthetic,
			Rate:                s.Rate,
			Duration:            s.Duration,
			Timeout:             s.Timeout,
			ZipfSkew:            s.ZipfSkew,
			ValueScale:          s.ValueScale,
			CirculationFraction: s.CirculationFraction,
		},
		Routing: scenario.RoutingSpec{HubCandidates: s.HubCandidates},
	}
}

// runOptions maps the replication/parallelism knobs onto the engine's.
func (s Scenario) runOptions() scenario.RunOptions {
	return scenario.RunOptions{Seeds: s.Seeds, Workers: s.Workers}
}

// Build materializes the graph and trace through the scenario engine.
func (s Scenario) Build() (*graph.Graph, []workload.Tx, error) {
	g, trace, err := s.Spec().Build()
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: %w", err)
	}
	return g, trace, nil
}

// Cell packages one (scheme, config-mutation) run of the scenario as a
// sweep cell: the builder materializes a private graph and trace, so cells
// are safe to run on parallel workers. Arbitrary config mutations cannot be
// expressed declaratively, so this stays a closure-based cell; declarative
// sweeps go through scenario.RunFigure instead.
func (s Scenario) Cell(scheme pcn.Scheme, axis string, x float64, label string, mutate func(*pcn.Config)) sweep.Cell {
	return sweep.Cell{
		Scheme: scheme,
		Seed:   s.Seed,
		Axis:   axis,
		X:      x,
		Label:  label,
		Build: func() (*graph.Graph, []workload.Tx, pcn.Config, error) {
			g, trace, err := s.Build()
			if err != nil {
				return nil, nil, pcn.Config{}, err
			}
			cfg := pcn.NewConfig(scheme)
			cfg.NumHubCandidates = s.HubCandidates
			if mutate != nil {
				mutate(&cfg)
			}
			return g, trace, cfg, nil
		},
	}
}

// RunScheme executes one scheme on the scenario with optional config
// mutation.
func (s Scenario) RunScheme(scheme pcn.Scheme, mutate func(*pcn.Config)) (pcn.Result, error) {
	out := sweep.RunCell(s.Cell(scheme, "", 0, "", mutate))
	return out.Result, out.Err
}

// Schemes compared in Figs. 7-8, in the paper's legend order.
var Schemes = []pcn.Scheme{
	pcn.SchemeSplicer,
	pcn.SchemeSpider,
	pcn.SchemeFlash,
	pcn.SchemeLandmark,
	pcn.SchemeA2L,
}

// schemeNames maps schemes to their registry names for the engine.
func schemeNames(schemes []pcn.Scheme) []string {
	names := make([]string, len(schemes))
	for i, s := range schemes {
		names[i] = s.String()
	}
	return names
}

// Point is one (x, y) sample of a figure line.
type Point = scenario.Point

// Series is one labeled figure line.
type Series = scenario.Series

// Table is a rendered result table.
type Table = scenario.Table

// SeriesTable renders a set of series sharing X values into a table with
// one column per series.
func SeriesTable(title, xLabel string, series []Series) Table {
	return scenario.SeriesTable(title, xLabel, series)
}
