// Package experiments regenerates every table and figure of the paper's
// evaluation (§V): the Fig. 7/8 scheme comparisons on small (100-node) and
// large (3000-node) networks, the Fig. 9 placement evaluation, the Table I
// qualitative property matrix and the Table II routing-choice study.
//
// Runners return Series (figure lines) or Table values and can emit CSV;
// cmd/experiments is the CLI front end and bench_test.go wraps each runner
// in a testing.B benchmark.
package experiments

import (
	"fmt"
	"strings"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/pcn"
	"github.com/splicer-pcn/splicer/internal/rng"
	"github.com/splicer-pcn/splicer/internal/sweep"
	"github.com/splicer-pcn/splicer/internal/topology"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// Scenario fixes a network + workload configuration for one experiment run.
type Scenario struct {
	Name string
	Seed uint64
	// Nodes in the Watts–Strogatz channel graph (paper: 100 / 3000).
	Nodes int
	// WSDegree and WSBeta parameterize the small-world generator.
	WSDegree int
	WSBeta   float64
	// ChannelScale multiplies the LN-calibrated channel sizes.
	ChannelScale float64
	// ValueScale multiplies transaction values.
	ValueScale float64
	// Rate is the aggregate arrival rate (tx/s); Duration the trace length.
	Rate     float64
	Duration float64
	// Timeout per transaction (paper: 3 s).
	Timeout float64
	// ZipfSkew and CirculationFraction shape the endpoint distribution.
	ZipfSkew            float64
	CirculationFraction float64
	// HubCandidates for Splicer's placement.
	HubCandidates int
	// Seeds optionally replicates every sweep cell across multiple seeds;
	// figure points then report the across-seed mean. Empty means the single
	// Seed above (the seed-compatible default).
	Seeds []uint64
	// Workers bounds the sweep worker pool: 0 or 1 runs serially, N > 1 in
	// parallel, < 0 uses all cores. Results are identical for any value.
	Workers int
}

// SmallScale returns the paper's small-scale scenario (100 nodes). The
// arrival rate and duration are simulator-budget choices; the structural
// parameters follow §V-A.
func SmallScale() Scenario {
	return Scenario{
		Name:                "small",
		Seed:                1,
		Nodes:               100,
		WSDegree:            4,
		WSBeta:              0.25,
		ChannelScale:        1,
		ValueScale:          1,
		Rate:                120,
		Duration:            8,
		Timeout:             3,
		ZipfSkew:            0.8,
		CirculationFraction: 0.25,
		HubCandidates:       10,
	}
}

// LargeScale returns the paper's large-scale scenario (3000 nodes).
func LargeScale() Scenario {
	s := SmallScale()
	s.Name = "large"
	s.Seed = 2
	s.Nodes = 3000
	s.Rate = 400
	s.Duration = 6
	s.HubCandidates = 24
	return s
}

// Scale returns the scaling scenario beyond the paper's grid: a 2000-node
// Watts–Strogatz network by default, swept up to 10k nodes by FigScale. The
// trace is trimmed relative to LargeScale so the biggest graphs stay inside
// the simulation budget; the point of the scenario is stressing the
// path-computation layer (PathFinder scratch reuse, the shared RouteCache)
// with network size, not trace length.
func Scale() Scenario {
	s := SmallScale()
	s.Name = "scale"
	s.Seed = 3
	s.Nodes = 2000
	s.Rate = 200
	s.Duration = 4
	s.HubCandidates = 24
	return s
}

// Build materializes the graph and trace.
func (s Scenario) Build() (*graph.Graph, []workload.Tx, error) {
	src := rng.New(s.Seed)
	sizes := workload.NewChannelSizeDist(src.Split(1), s.ChannelScale)
	g, err := topology.WattsStrogatz(src.Split(2), s.Nodes, s.WSDegree, s.WSBeta, sizes.CapacityFunc())
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: topology: %w", err)
	}
	clients := make([]graph.NodeID, s.Nodes)
	for i := range clients {
		clients[i] = graph.NodeID(i)
	}
	trace, err := workload.Generate(src.Split(3), workload.Config{
		Clients:             clients,
		Rate:                s.Rate,
		Duration:            s.Duration,
		Timeout:             s.Timeout,
		ZipfSkew:            s.ZipfSkew,
		ValueScale:          s.ValueScale,
		CirculationFraction: s.CirculationFraction,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: workload: %w", err)
	}
	return g, trace, nil
}

// seedList returns the replication seeds (the scenario's own seed when no
// explicit list is set).
func (s Scenario) seedList() []uint64 {
	if len(s.Seeds) > 0 {
		return s.Seeds
	}
	return []uint64{s.Seed}
}

// workerCount maps the Workers knob to a sweep.Run argument.
func (s Scenario) workerCount() int {
	switch {
	case s.Workers < 0:
		return 0 // all cores
	case s.Workers == 0:
		return 1 // serial default
	default:
		return s.Workers
	}
}

// Cell packages one (scheme, config-mutation) run of the scenario as a
// sweep cell: the builder materializes a private graph and trace, so cells
// are safe to run on parallel workers.
func (s Scenario) Cell(scheme pcn.Scheme, axis string, x float64, label string, mutate func(*pcn.Config)) sweep.Cell {
	return sweep.Cell{
		Scheme: scheme,
		Seed:   s.Seed,
		Axis:   axis,
		X:      x,
		Label:  label,
		Build: func() (*graph.Graph, []workload.Tx, pcn.Config, error) {
			g, trace, err := s.Build()
			if err != nil {
				return nil, nil, pcn.Config{}, err
			}
			cfg := pcn.NewConfig(scheme)
			cfg.NumHubCandidates = s.HubCandidates
			if mutate != nil {
				mutate(&cfg)
			}
			return g, trace, cfg, nil
		},
	}
}

// RunScheme executes one scheme on the scenario with optional config
// mutation.
func (s Scenario) RunScheme(scheme pcn.Scheme, mutate func(*pcn.Config)) (pcn.Result, error) {
	out := sweep.RunCell(s.Cell(scheme, "", 0, "", mutate))
	return out.Result, out.Err
}

// Schemes compared in Figs. 7-8, in the paper's legend order.
var Schemes = []pcn.Scheme{
	pcn.SchemeSplicer,
	pcn.SchemeSpider,
	pcn.SchemeFlash,
	pcn.SchemeLandmark,
	pcn.SchemeA2L,
}

// Point is one (x, y) sample of a figure line.
type Point struct {
	X float64
	Y float64
}

// Series is one labeled figure line.
type Series struct {
	Name   string
	Points []Point
}

// Table is a rendered result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// CSV renders the table as CSV.
func (t Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// SeriesTable renders a set of series sharing X values into a table with
// one column per series.
func SeriesTable(title, xLabel string, series []Series) Table {
	t := Table{Title: title, Header: []string{xLabel}}
	for _, s := range series {
		t.Header = append(t.Header, s.Name)
	}
	if len(series) == 0 {
		return t
	}
	for i, p := range series[0].Points {
		row := []string{fmt.Sprintf("%g", p.X)}
		for _, s := range series {
			if i < len(s.Points) {
				row = append(row, fmt.Sprintf("%.4f", s.Points[i].Y))
			} else {
				row = append(row, "")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
