package experiments

import (
	"strings"
	"testing"

	"github.com/splicer-pcn/splicer/internal/pcn"
)

// These tests pin the error-propagation satellite: every failure on the
// scenario construction path — topology generator, workload generator,
// placement instance — must surface through the public figure/table
// runners rather than being swallowed into an empty or partial result.

func TestTopologyErrorsPropagate(t *testing.T) {
	bad := tinyScenario()
	bad.WSDegree = 7 // Watts-Strogatz requires an even degree
	if _, _, err := bad.Build(); err == nil || !strings.Contains(err.Error(), "topology") {
		t.Fatalf("Build: err = %v, want topology error", err)
	}
	if _, err := FigChannelSize(bad); err == nil || !strings.Contains(err.Error(), "topology") {
		t.Fatalf("FigChannelSize: err = %v, want topology error", err)
	}
	if _, err := FigBalanceCost(bad); err == nil || !strings.Contains(err.Error(), "topology") {
		t.Fatalf("FigBalanceCost: err = %v, want topology error", err)
	}
	if _, err := FigDelayOverhead(bad); err == nil || !strings.Contains(err.Error(), "topology") {
		t.Fatalf("FigDelayOverhead: err = %v, want topology error", err)
	}
	if _, err := TableII(bad, bad, TableIIOptions{SkipLarge: true, PathNumbers: []int{3}, Schedulers: []string{"LIFO"}}); err == nil {
		t.Fatal("TableII swallowed a topology error")
	}
	if _, _, err := FigChurn(bad); err == nil {
		t.Fatal("FigChurn swallowed a topology error")
	}
}

func TestWorkloadErrorsPropagate(t *testing.T) {
	bad := tinyScenario()
	bad.Rate = 0.0001
	bad.Duration = 0.001 // empty trace: workload.Generate errors
	if _, _, err := bad.Build(); err == nil || !strings.Contains(err.Error(), "workload") {
		t.Fatalf("Build: err = %v, want workload error", err)
	}
	if _, err := FigUpdateTime(bad); err == nil {
		t.Fatal("FigUpdateTime swallowed a workload error")
	}
	if _, err := bad.RunScheme(pcn.SchemeShortestPath, nil); err == nil {
		t.Fatal("RunScheme swallowed a workload error")
	}
}
