package experiments

import (
	"fmt"
	"testing"
)

// tinyChurn shrinks the churn scenario for CI-fast tests.
func tinyChurn() Scenario {
	s := Churn()
	s.Nodes = 50
	s.Rate = 40
	s.Duration = 3
	s.HubCandidates = 6
	return s
}

// withSmallChurnGrid shrinks the sweep grid for a test and restores it.
func withSmallChurnGrid(t *testing.T, xs []float64) {
	t.Helper()
	old := ChurnRateSweep
	ChurnRateSweep = xs
	t.Cleanup(func() { ChurnRateSweep = old })
}

func TestFigChurn(t *testing.T) {
	withSmallChurnGrid(t, []float64{0, 2})
	tsr, delay, err := FigChurn(tinyChurn())
	if err != nil {
		t.Fatal(err)
	}
	wantSeries := len(ChurnSchemes) + 1 // six schemes + Splicer(online)
	if len(tsr) != wantSeries || len(delay) != wantSeries {
		t.Fatalf("series = %d/%d, want %d", len(tsr), len(delay), wantSeries)
	}
	for _, s := range tsr {
		if len(s.Points) != len(ChurnRateSweep) {
			t.Fatalf("series %q has %d points, want %d", s.Name, len(s.Points), len(ChurnRateSweep))
		}
		for _, p := range s.Points {
			if p.Y < 0 || p.Y > 1 {
				t.Fatalf("series %q TSR %v out of range at x=%v", s.Name, p.Y, p.X)
			}
		}
	}
	if tsr[len(tsr)-1].Name != ChurnOnlineLabel {
		t.Fatalf("last series = %q, want %q", tsr[len(tsr)-1].Name, ChurnOnlineLabel)
	}
	table := ChurnTable("churn", tsr, delay)
	if len(table.Rows) != len(ChurnRateSweep) || len(table.Header) != 1+2*wantSeries {
		t.Fatalf("table shape %dx%d", len(table.Rows), len(table.Header))
	}
}

// TestFigChurnWorkerInvariance is the dynamics determinism satellite:
// identical seeds must give byte-identical series whether the dynamic cells
// run on 1 worker or 8.
func TestFigChurnWorkerInvariance(t *testing.T) {
	withSmallChurnGrid(t, []float64{2})
	base := tinyChurn()
	base.Duration = 2
	base.Seeds = []uint64{4, 5}

	run := func(workers int) string {
		s := base
		s.Workers = workers
		tsr, delay, err := FigChurn(s)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v %+v", tsr, delay)
	}
	serial := run(1)
	if parallel := run(8); parallel != serial {
		t.Fatalf("8-worker churn sweep diverged from serial:\nserial:   %s\nparallel: %s", serial, parallel)
	}
}
