package experiments

import (
	"fmt"
	"testing"

	"github.com/splicer-pcn/splicer/internal/routing"
)

// TestFigureSweepWorkerInvariance: a multi-seed figure sweep must emit
// byte-identical series whether it runs serially or on a full worker pool.
// This is the CI-fast smoke test for the parallel sweep path under the
// figure runners.
func TestFigureSweepWorkerInvariance(t *testing.T) {
	old := ValueScaleSweep
	ValueScaleSweep = []float64{1, 4}
	defer func() { ValueScaleSweep = old }()

	base := tinyScenario()
	base.Duration = 1.5
	base.Seeds = []uint64{1, 2}

	run := func(workers int) string {
		s := base
		s.Workers = workers
		series, err := FigTxnSize(s)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", series)
	}
	serial := run(0)
	if parallel := run(-1); parallel != serial {
		t.Fatalf("parallel series diverged from serial:\nserial:   %s\nparallel: %s", serial, parallel)
	}
}

// TestTableIIWorkerInvariance: the routing-choice study must be identical
// serial vs parallel.
func TestTableIIWorkerInvariance(t *testing.T) {
	base := tinyScenario()
	base.Duration = 1.5
	opts := TableIIOptions{
		PathNumbers: []int{1, 5},
		PathTypes:   []routing.PathType{routing.EDW},
		Schedulers:  []string{"LIFO"},
		SkipLarge:   true,
	}

	run := func(workers int) string {
		s := base
		s.Workers = workers
		rows, err := TableII(s, s, opts)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", rows)
	}
	serial := run(0)
	if parallel := run(-1); parallel != serial {
		t.Fatalf("parallel Table II diverged from serial:\nserial:   %s\nparallel: %s", serial, parallel)
	}
}
