package experiments

import (
	"fmt"

	"github.com/splicer-pcn/splicer/internal/channel"
	"github.com/splicer-pcn/splicer/internal/pcn"
	"github.com/splicer-pcn/splicer/internal/routing"
	"github.com/splicer-pcn/splicer/internal/sweep"
)

// TableI reproduces the paper's qualitative property matrix (Table I):
// which scheme family offers which property. Static by construction.
func TableI() Table {
	yes, no := "✓", "—"
	return Table{
		Title: "Table I: state-of-the-art PCN scalable schemes",
		Header: []string{
			"Property",
			"Lightning/Raiden", "Flare/Sprites", "REVIVE", "Spider", "Flash",
			"TumbleBit", "A2L", "Perun", "Commit-Chains", "Splicer",
		},
		Rows: [][]string{
			{"Improving throughput", no, no, yes, yes, yes, no, no, yes, yes, yes},
			{"Support large transactions", no, no, no, yes, yes, no, no, no, no, yes},
			{"Payment channel balance", no, no, yes, yes, no, no, no, no, no, yes},
			{"Deadlock-free routing", no, no, no, yes, no, no, no, no, no, yes},
			{"Transaction unlinkability", no, no, no, no, no, yes, yes, no, yes, yes},
			{"Optimal hub placement", no, no, no, no, no, no, no, no, no, yes},
		},
	}
}

// TableIIRow is one cell group of Table II: a routing choice and its TSR at
// both network scales.
type TableIIRow struct {
	Group  string // "Path Type", "Path Number", "Scheduling Algorithm"
	Choice string
	Small  float64
	Large  float64
}

// TableIIOptions narrows the study for test/bench budgets.
type TableIIOptions struct {
	// PathTypes, PathNumbers, Schedulers default to the paper's grids when
	// nil/empty.
	PathTypes   []routing.PathType
	PathNumbers []int
	Schedulers  []string
	// SkipLarge drops the large-scale column (test budgets).
	SkipLarge bool
}

func (o *TableIIOptions) fill() {
	if len(o.PathTypes) == 0 {
		o.PathTypes = []routing.PathType{routing.KSP, routing.Heuristic, routing.EDW, routing.EDS}
	}
	if len(o.PathNumbers) == 0 {
		o.PathNumbers = []int{1, 3, 5, 7}
	}
	if len(o.Schedulers) == 0 {
		o.Schedulers = []string{"FIFO", "LIFO", "SPF", "EDF"}
	}
}

// TableII reproduces the routing-choice study: Splicer's TSR for each path
// type, path count, and queue scheduling algorithm, at small and large
// scales. All cells run on the sweep worker pool (the small scenario's
// Workers knob); cell order is fixed so the rows are identical for any
// worker count.
func TableII(small, large Scenario, opts TableIIOptions) ([]TableIIRow, error) {
	opts.fill()
	type choice struct {
		group, name string
		mutate      func(*pcn.Config)
	}
	var choices []choice
	for _, pt := range opts.PathTypes {
		pt := pt
		choices = append(choices, choice{"Path Type", pt.String(), func(c *pcn.Config) { c.PathType = pt }})
	}
	for _, k := range opts.PathNumbers {
		k := k
		choices = append(choices, choice{"Path Number", fmt.Sprintf("%d", k), func(c *pcn.Config) { c.NumPaths = k }})
	}
	for _, name := range opts.Schedulers {
		sched, err := channel.SchedulerByName(name)
		if err != nil {
			return nil, err
		}
		choices = append(choices, choice{"Scheduling Algorithm", name, func(c *pcn.Config) { c.Scheduler = sched }})
	}
	// One cell per (choice, scale, seed); each (choice, scale) group keys on
	// its label and the rows report the across-seed mean TSR.
	var cells []sweep.Cell
	addCells := func(scen Scenario, label string, mutate func(*pcn.Config)) {
		for _, seed := range scen.seedList() {
			cell := scen
			cell.Seed = seed
			cells = append(cells, cell.Cell(pcn.SchemeSplicer, "scale", 0, label, mutate))
		}
	}
	for _, ch := range choices {
		label := ch.group + "/" + ch.name
		addCells(small, label+" small", ch.mutate)
		if !opts.SkipLarge {
			addCells(large, label+" large", ch.mutate)
		}
	}
	results := sweep.Run(cells, small.workerCount())
	if err := sweep.FirstErr(results); err != nil {
		return nil, fmt.Errorf("experiments: table II: %w", err)
	}
	tsrByLabel := map[string]float64{}
	for _, s := range sweep.Aggregate(results) {
		tsrByLabel[s.Label] = s.TSR.Mean
	}
	rows := make([]TableIIRow, len(choices))
	for i, ch := range choices {
		label := ch.group + "/" + ch.name
		rows[i] = TableIIRow{Group: ch.group, Choice: ch.name, Small: tsrByLabel[label+" small"]}
		if !opts.SkipLarge {
			rows[i].Large = tsrByLabel[label+" large"]
		}
	}
	return rows, nil
}

// TableIITable renders the rows.
func TableIITable(rows []TableIIRow) Table {
	t := Table{
		Title:  "Table II: influence of routing choices on Splicer's TSR",
		Header: []string{"Group", "Choice", "Small", "Large"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Group, r.Choice,
			fmt.Sprintf("%.2f%%", 100*r.Small),
			fmt.Sprintf("%.2f%%", 100*r.Large),
		})
	}
	return t
}
