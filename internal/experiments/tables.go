package experiments

import (
	"fmt"

	"github.com/splicer-pcn/splicer/internal/channel"
	"github.com/splicer-pcn/splicer/internal/pcn"
	"github.com/splicer-pcn/splicer/internal/routing"
)

// TableI reproduces the paper's qualitative property matrix (Table I):
// which scheme family offers which property. Static by construction.
func TableI() Table {
	yes, no := "✓", "—"
	return Table{
		Title: "Table I: state-of-the-art PCN scalable schemes",
		Header: []string{
			"Property",
			"Lightning/Raiden", "Flare/Sprites", "REVIVE", "Spider", "Flash",
			"TumbleBit", "A2L", "Perun", "Commit-Chains", "Splicer",
		},
		Rows: [][]string{
			{"Improving throughput", no, no, yes, yes, yes, no, no, yes, yes, yes},
			{"Support large transactions", no, no, no, yes, yes, no, no, no, no, yes},
			{"Payment channel balance", no, no, yes, yes, no, no, no, no, no, yes},
			{"Deadlock-free routing", no, no, no, yes, no, no, no, no, no, yes},
			{"Transaction unlinkability", no, no, no, no, no, yes, yes, no, yes, yes},
			{"Optimal hub placement", no, no, no, no, no, no, no, no, no, yes},
		},
	}
}

// TableIIRow is one cell group of Table II: a routing choice and its TSR at
// both network scales.
type TableIIRow struct {
	Group  string // "Path Type", "Path Number", "Scheduling Algorithm"
	Choice string
	Small  float64
	Large  float64
}

// TableIIOptions narrows the study for test/bench budgets.
type TableIIOptions struct {
	// PathTypes, PathNumbers, Schedulers default to the paper's grids when
	// nil/empty.
	PathTypes   []routing.PathType
	PathNumbers []int
	Schedulers  []string
	// SkipLarge drops the large-scale column (test budgets).
	SkipLarge bool
}

func (o *TableIIOptions) fill() {
	if len(o.PathTypes) == 0 {
		o.PathTypes = []routing.PathType{routing.KSP, routing.Heuristic, routing.EDW, routing.EDS}
	}
	if len(o.PathNumbers) == 0 {
		o.PathNumbers = []int{1, 3, 5, 7}
	}
	if len(o.Schedulers) == 0 {
		o.Schedulers = []string{"FIFO", "LIFO", "SPF", "EDF"}
	}
}

// TableII reproduces the routing-choice study: Splicer's TSR for each path
// type, path count, and queue scheduling algorithm, at small and large
// scales.
func TableII(small, large Scenario, opts TableIIOptions) ([]TableIIRow, error) {
	opts.fill()
	var rows []TableIIRow
	run := func(scen Scenario, mutate func(*pcn.Config)) (float64, error) {
		res, err := scen.RunScheme(pcn.SchemeSplicer, mutate)
		if err != nil {
			return 0, err
		}
		return res.TSR, nil
	}
	both := func(group, choice string, mutate func(*pcn.Config)) error {
		s, err := run(small, mutate)
		if err != nil {
			return fmt.Errorf("experiments: table II %s/%s small: %w", group, choice, err)
		}
		l := 0.0
		if !opts.SkipLarge {
			l, err = run(large, mutate)
			if err != nil {
				return fmt.Errorf("experiments: table II %s/%s large: %w", group, choice, err)
			}
		}
		rows = append(rows, TableIIRow{Group: group, Choice: choice, Small: s, Large: l})
		return nil
	}
	for _, pt := range opts.PathTypes {
		pt := pt
		if err := both("Path Type", pt.String(), func(c *pcn.Config) { c.PathType = pt }); err != nil {
			return nil, err
		}
	}
	for _, k := range opts.PathNumbers {
		k := k
		if err := both("Path Number", fmt.Sprintf("%d", k), func(c *pcn.Config) { c.NumPaths = k }); err != nil {
			return nil, err
		}
	}
	for _, name := range opts.Schedulers {
		sched, err := channel.SchedulerByName(name)
		if err != nil {
			return nil, err
		}
		if err := both("Scheduling Algorithm", name, func(c *pcn.Config) { c.Scheduler = sched }); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// TableIITable renders the rows.
func TableIITable(rows []TableIIRow) Table {
	t := Table{
		Title:  "Table II: influence of routing choices on Splicer's TSR",
		Header: []string{"Group", "Choice", "Small", "Large"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Group, r.Choice,
			fmt.Sprintf("%.2f%%", 100*r.Small),
			fmt.Sprintf("%.2f%%", 100*r.Large),
		})
	}
	return t
}
