package experiments

import (
	"fmt"

	"github.com/splicer-pcn/splicer/internal/scenario"
)

// TableI reproduces the paper's qualitative property matrix (Table I).
func TableI() Table {
	return scenario.TableI()
}

// TableIIRow is one cell group of Table II: a routing choice and its TSR at
// both network scales.
type TableIIRow = scenario.TableIIRow

// TableIIOptions narrows the study for test/bench budgets.
type TableIIOptions = scenario.ChoicesOptions

// TableII reproduces the routing-choice study through the scenario engine:
// Splicer's TSR for each path type, path count, and queue scheduling
// algorithm, at small and large scales. All cells run on the sweep worker
// pool (the small scenario's Workers knob); cell order is fixed so the rows
// are identical for any worker count. Each scale replicates over its own
// Seeds list, exactly as the hand-wired study did.
func TableII(small, large Scenario, opts TableIIOptions) ([]TableIIRow, error) {
	opts.SmallSeeds = small.Seeds
	opts.LargeSeeds = large.Seeds
	rows, err := scenario.RoutingChoices(small.Spec(), large.Spec(), opts,
		scenario.RunOptions{Workers: small.Workers})
	if err != nil {
		return nil, fmt.Errorf("experiments: table II: %w", err)
	}
	return rows, nil
}

// TableIITable renders the rows.
func TableIITable(rows []TableIIRow) Table {
	return scenario.TableIITable(rows)
}
