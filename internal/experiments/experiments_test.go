package experiments

import (
	"math"
	"strings"
	"testing"

	"github.com/splicer-pcn/splicer/internal/pcn"
	"github.com/splicer-pcn/splicer/internal/routing"
)

// tinyScenario keeps test runtime low while exercising every runner.
func tinyScenario() Scenario {
	s := SmallScale()
	s.Nodes = 50
	s.Rate = 30
	s.Duration = 3
	s.HubCandidates = 6
	return s
}

func TestScenarioBuild(t *testing.T) {
	g, trace, err := tinyScenario().Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 50 || len(trace) == 0 {
		t.Fatalf("nodes=%d trace=%d", g.NumNodes(), len(trace))
	}
	if !g.Connected() {
		t.Fatal("scenario graph not connected")
	}
}

func TestScenarioDefaultsMatchPaper(t *testing.T) {
	small, large := SmallScale(), LargeScale()
	if small.Nodes != 100 || large.Nodes != 3000 {
		t.Fatalf("scales: %d / %d, want 100 / 3000", small.Nodes, large.Nodes)
	}
	if small.Timeout != 3 {
		t.Fatalf("timeout %v, want 3s", small.Timeout)
	}
}

func TestFigChannelSizeShape(t *testing.T) {
	base := tinyScenario()
	// Two-point sweep for speed.
	old := ChannelScaleSweep
	ChannelScaleSweep = []float64{0.5, 2}
	defer func() { ChannelScaleSweep = old }()
	series, err := FigChannelSize(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != len(Schemes) {
		t.Fatalf("series count %d", len(series))
	}
	byName := map[string]Series{}
	for _, s := range series {
		if len(s.Points) != 2 {
			t.Fatalf("%s has %d points", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Y < 0 || p.Y > 1 {
				t.Fatalf("%s TSR %v out of range", s.Name, p.Y)
			}
		}
		byName[s.Name] = s
	}
	// Larger channels help every scheme (monotone non-decreasing TSR) —
	// check the flagship at least.
	sp := byName["Splicer"]
	if sp.Points[1].Y+0.02 < sp.Points[0].Y {
		t.Fatalf("Splicer TSR fell with bigger channels: %v -> %v", sp.Points[0].Y, sp.Points[1].Y)
	}
}

func TestFigUpdateTimeSplicerStable(t *testing.T) {
	base := tinyScenario()
	old := TauSweepMs
	TauSweepMs = []float64{200, 800}
	defer func() { TauSweepMs = old }()
	series, err := FigUpdateTime(base)
	if err != nil {
		t.Fatal(err)
	}
	var splicer, a2l Series
	for _, s := range series {
		switch s.Name {
		case "Splicer":
			splicer = s
		case "A2L":
			a2l = s
		}
	}
	// Paper: Splicer stays high as τ grows; A2L is the weakest of the five.
	for _, p := range splicer.Points {
		if p.Y < 0.5 {
			t.Fatalf("Splicer TSR %v at τ=%vms too low", p.Y, p.X)
		}
	}
	if a2l.Points[len(a2l.Points)-1].Y > splicer.Points[len(splicer.Points)-1].Y {
		t.Fatalf("A2L (%v) beat Splicer (%v) at large τ",
			a2l.Points[len(a2l.Points)-1].Y, splicer.Points[len(splicer.Points)-1].Y)
	}
}

func TestFigBalanceCostApproxNearOptimal(t *testing.T) {
	base := tinyScenario()
	old := OmegaSweep
	OmegaSweep = []float64{0.05, 0.5, 2}
	defer func() { OmegaSweep = old }()
	series, err := FigBalanceCost(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("expected model+optimal, got %d series", len(series))
	}
	gap := MeanGap(series[0], series[1])
	if math.IsNaN(gap) || gap > 0.5 {
		t.Fatalf("approximation gap %v too large", gap)
	}
	// Model can never beat the optimum.
	for i := range series[1].Points {
		if series[0].Points[i].Y < series[1].Points[i].Y-1e-9 {
			t.Fatal("approximation below the optimum")
		}
	}
}

func TestFigHubCountMonotone(t *testing.T) {
	base := tinyScenario()
	old := OmegaSweep
	OmegaSweep = []float64{0.01, 5.12}
	defer func() { OmegaSweep = old }()
	s, err := FigHubCount(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2 {
		t.Fatalf("points: %v", s.Points)
	}
	// Management-cost-dominated (small ω) places at least as many hubs as
	// sync-dominated (large ω) — Fig. 9(c/d) shape.
	if s.Points[0].Y < s.Points[1].Y {
		t.Fatalf("hub count not monotone: %v", s.Points)
	}
	if s.Points[1].Y < 1 {
		t.Fatal("placement must keep at least one hub")
	}
}

func TestFigCostTradeoff(t *testing.T) {
	base := tinyScenario()
	old := OmegaSweep
	OmegaSweep = []float64{0.05, 1}
	defer func() { OmegaSweep = old }()
	points, err := FigCostTradeoff(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points: %+v", points)
	}
	for _, p := range points {
		if p.NumHubs < 1 || p.MgmtCost < 0 || p.SyncCost < 0 {
			t.Fatalf("bad tradeoff point %+v", p)
		}
	}
	tab := TradeoffTable("fig9b", points)
	if len(tab.Rows) != 2 {
		t.Fatal("tradeoff table wrong")
	}
}

func TestFigDelayOverhead(t *testing.T) {
	base := tinyScenario()
	old := OmegaSweep
	OmegaSweep = []float64{0.05, 1}
	defer func() { OmegaSweep = old }()
	points, err := FigDelayOverhead(base)
	if err != nil {
		t.Fatal(err)
	}
	var withPCH, without []DelayOverheadPoint
	for _, p := range points {
		if p.WithPCH {
			withPCH = append(withPCH, p)
		} else {
			without = append(without, p)
		}
	}
	if len(withPCH) != 2 || len(without) != 1 {
		t.Fatalf("points: %+v", points)
	}
	// Paper: with PCHs the average delay is much lower at similar overhead.
	for _, p := range withPCH {
		if p.DelayMs <= 0 {
			t.Fatalf("non-positive delay %+v", p)
		}
		if p.DelayMs >= without[0].DelayMs {
			t.Fatalf("PCH delay %v not below source-routing delay %v", p.DelayMs, without[0].DelayMs)
		}
	}
	tab := DelayOverheadTable("fig9e", points)
	if len(tab.Rows) != 3 {
		t.Fatal("delay-overhead table wrong")
	}
}

func TestTableIStatic(t *testing.T) {
	tab := TableI()
	if len(tab.Rows) != 6 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	// Splicer column (last) is all ✓.
	for _, row := range tab.Rows {
		if row[len(row)-1] != "✓" {
			t.Fatalf("Splicer missing property %q", row[0])
		}
	}
	if !strings.Contains(tab.Markdown(), "Optimal hub placement") {
		t.Fatal("markdown render broken")
	}
	if !strings.Contains(tab.CSV(), "Deadlock-free routing") {
		t.Fatal("csv render broken")
	}
}

func TestTableIIReduced(t *testing.T) {
	base := tinyScenario()
	rows, err := TableII(base, base, TableIIOptions{
		PathTypes:   []routing.PathType{routing.EDW, routing.KSP},
		PathNumbers: []int{1, 5},
		Schedulers:  []string{"LIFO", "FIFO"},
		SkipLarge:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows: %d", len(rows))
	}
	byChoice := map[string]TableIIRow{}
	for _, r := range rows {
		if r.Small < 0 || r.Small > 1 {
			t.Fatalf("TSR out of range: %+v", r)
		}
		byChoice[r.Group+"/"+r.Choice] = r
	}
	// Table II shape: 5 paths beat 1 path.
	if byChoice["Path Number/5"].Small < byChoice["Path Number/1"].Small {
		t.Fatalf("k=5 (%v) worse than k=1 (%v)",
			byChoice["Path Number/5"].Small, byChoice["Path Number/1"].Small)
	}
	tab := TableIITable(rows)
	if len(tab.Rows) != 6 {
		t.Fatal("render broken")
	}
}

func TestSeriesTable(t *testing.T) {
	tab := SeriesTable("t", "x", []Series{
		{Name: "a", Points: []Point{{X: 1, Y: 0.5}, {X: 2, Y: 0.6}}},
		{Name: "b", Points: []Point{{X: 1, Y: 0.7}, {X: 2, Y: 0.8}}},
	})
	if len(tab.Rows) != 2 || tab.Header[1] != "a" || tab.Header[2] != "b" {
		t.Fatalf("table: %+v", tab)
	}
}

func TestRunSchemeMutate(t *testing.T) {
	res, err := tinyScenario().RunScheme(pcn.SchemeSplicer, func(c *pcn.Config) { c.NumPaths = 2 })
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated == 0 {
		t.Fatal("no transactions")
	}
}

func TestFigScaleShape(t *testing.T) {
	base := tinyScenario()
	base.Duration = 2
	// Tiny |V| grid for speed; the default 2k–10k grid runs via
	// cmd/experiments -run figscale.
	old := NodeCountSweep
	NodeCountSweep = []float64{40, 80}
	defer func() { NodeCountSweep = old }()
	series, err := FigScale(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != len(Schemes) {
		t.Fatalf("series count %d, want %d", len(series), len(Schemes))
	}
	for _, s := range series {
		if len(s.Points) != 2 {
			t.Fatalf("%s has %d points", s.Name, len(s.Points))
		}
		for i, p := range s.Points {
			if p.X != NodeCountSweep[i] {
				t.Fatalf("%s point %d at x=%v, want %v", s.Name, i, p.X, NodeCountSweep[i])
			}
			if p.Y < 0 || p.Y > 1 {
				t.Fatalf("%s normalized throughput %v out of range", s.Name, p.Y)
			}
		}
	}
}

func TestScaleScenarioBuilds(t *testing.T) {
	s := Scale()
	if s.Nodes != 2000 {
		t.Fatalf("Scale nodes = %d, want 2000", s.Nodes)
	}
	s.Nodes = 60 // keep the build cheap; the shape is what matters here
	g, trace, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 60 || len(trace) == 0 {
		t.Fatalf("nodes=%d trace=%d", g.NumNodes(), len(trace))
	}
	if !g.Connected() {
		t.Fatal("scale scenario graph not connected")
	}
}
