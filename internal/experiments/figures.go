package experiments

import (
	"fmt"
	"math"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/pcn"
	"github.com/splicer-pcn/splicer/internal/placement"
	"github.com/splicer-pcn/splicer/internal/rng"
	"github.com/splicer-pcn/splicer/internal/sweep"
	"github.com/splicer-pcn/splicer/internal/topology"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// Default sweep grids (figure x-axes).
var (
	// ChannelScaleSweep multiplies the LN channel-size distribution
	// (Fig. 7a/8a's "influence of the channel size").
	ChannelScaleSweep = []float64{0.25, 0.5, 1, 2, 4}
	// ValueScaleSweep multiplies transaction values (Fig. 7b/8b).
	ValueScaleSweep = []float64{0.5, 1, 2, 4, 8}
	// TauSweepMs is the update-time sweep in milliseconds (Fig. 7c/d, 8c/d).
	TauSweepMs = []float64{100, 200, 400, 600, 800, 1000}
	// NodeCountSweep is the |V| grid for the FigScale scaling panel
	// (Watts–Strogatz networks from 2k to 10k nodes).
	NodeCountSweep = []float64{2000, 4000, 6000, 8000, 10000}
)

// metric selects which Result field a sweep reports.
type metric int

const (
	metricTSR metric = iota + 1
	metricThroughput
)

func (m metric) of(s sweep.Summary) float64 {
	if m == metricThroughput {
		return s.Throughput.Mean
	}
	return s.TSR.Mean
}

// sweepFigure runs all schemes over a scenario mutation grid on the sweep
// engine: every (x, scheme, seed) cell becomes an independent simulation on
// the scenario's worker pool, and each figure point is the across-seed mean.
// Cell order is fixed (x-major, then scheme, then seed) and aggregation
// folds in that order, so the series are identical for any worker count.
func sweepFigure(base Scenario, axis string, xs []float64, m metric, apply func(Scenario, float64) (Scenario, func(*pcn.Config))) ([]Series, error) {
	var cells []sweep.Cell
	for _, x := range xs {
		scen, mutate := apply(base, x)
		for _, scheme := range Schemes {
			for _, seed := range scen.seedList() {
				cell := scen
				cell.Seed = seed
				cells = append(cells, cell.Cell(scheme, axis, x, "", mutate))
			}
		}
	}
	results := sweep.Run(cells, base.workerCount())
	if err := sweep.FirstErr(results); err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	byKey := map[figKey]sweep.Summary{}
	for _, s := range sweep.Aggregate(results) {
		byKey[figKey{s.Scheme, s.X}] = s
	}
	out := make([]Series, len(Schemes))
	for si, scheme := range Schemes {
		out[si].Name = scheme.String()
		for _, x := range xs {
			out[si].Points = append(out[si].Points, Point{X: x, Y: m.of(byKey[figKey{scheme, x}])})
		}
	}
	return out, nil
}

// figKey addresses one figure point in the aggregated sweep output.
type figKey struct {
	scheme pcn.Scheme
	x      float64
}

// FigChannelSize is Fig. 7(a) (small) / Fig. 8(a) (large): TSR vs channel
// size scale.
func FigChannelSize(base Scenario) ([]Series, error) {
	return sweepFigure(base, "channel_scale", ChannelScaleSweep, metricTSR, func(s Scenario, x float64) (Scenario, func(*pcn.Config)) {
		s.ChannelScale = x
		return s, nil
	})
}

// FigTxnSize is Fig. 7(b) / 8(b): TSR vs transaction size scale.
func FigTxnSize(base Scenario) ([]Series, error) {
	return sweepFigure(base, "value_scale", ValueScaleSweep, metricTSR, func(s Scenario, x float64) (Scenario, func(*pcn.Config)) {
		s.ValueScale = x
		return s, nil
	})
}

// FigUpdateTime is Fig. 7(c) / 8(c): TSR vs update time τ (ms).
func FigUpdateTime(base Scenario) ([]Series, error) {
	return sweepFigure(base, "tau_ms", TauSweepMs, metricTSR, func(s Scenario, x float64) (Scenario, func(*pcn.Config)) {
		return s, func(c *pcn.Config) { c.UpdateTau = x / 1000 }
	})
}

// FigThroughput is Fig. 7(d) / 8(d): normalized throughput vs update time.
func FigThroughput(base Scenario) ([]Series, error) {
	return sweepFigure(base, "tau_ms", TauSweepMs, metricThroughput, func(s Scenario, x float64) (Scenario, func(*pcn.Config)) {
		return s, func(c *pcn.Config) { c.UpdateTau = x / 1000 }
	})
}

// FigScale is the Fig. 9-style scaling panel: normalized throughput vs
// network size |V|, all schemes, on the Scale scenario. It exercises the
// path-computation layer end-to-end — every cell builds a fresh 2k–10k-node
// graph whose route planning funnels through PathFinder and the RouteCache.
func FigScale(base Scenario) ([]Series, error) {
	return sweepFigure(base, "nodes", NodeCountSweep, metricThroughput, func(s Scenario, x float64) (Scenario, func(*pcn.Config)) {
		s.Nodes = int(x)
		return s, nil
	})
}

// OmegaSweep is the weight grid for the Fig. 9 placement evaluation.
var OmegaSweep = []float64{0.01, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 1.28, 2.56, 5.12}

// placementInstance builds the placement instance of a scenario: the
// candidate list comes from the voting excellence proxy (top degree), all
// other nodes are clients.
func placementInstance(s Scenario, omega float64) (*placement.Instance, error) {
	src := rng.New(s.Seed)
	sizes := workload.NewChannelSizeDist(src.Split(1), s.ChannelScale)
	g, err := topology.WattsStrogatz(src.Split(2), s.Nodes, s.WSDegree, s.WSBeta, sizes.CapacityFunc())
	if err != nil {
		return nil, err
	}
	cands := topology.TopDegreeNodes(g, s.HubCandidates)
	candSet := map[graph.NodeID]bool{}
	for _, c := range cands {
		candSet[c] = true
	}
	var clients []graph.NodeID
	for i := 0; i < g.NumNodes(); i++ {
		if !candSet[graph.NodeID(i)] {
			clients = append(clients, graph.NodeID(i))
		}
	}
	return placement.NewInstanceFromGraph(g, clients, cands, omega)
}

// solveBoth returns the approximation plan and (when the candidate set is
// small enough) the exact plan.
func solveBoth(inst *placement.Instance) (approx placement.Plan, exact placement.Plan, haveExact bool, err error) {
	approx, err = inst.SolveDoubleGreedy(nil)
	if err != nil {
		return placement.Plan{}, placement.Plan{}, false, err
	}
	if len(inst.Candidates) <= 16 {
		exact, err = inst.SolveExhaustive()
		if err != nil {
			return placement.Plan{}, placement.Plan{}, false, err
		}
		return approx, exact, true, nil
	}
	return approx, placement.Plan{}, false, nil
}

// FigBalanceCost is Fig. 9(a): average balance cost vs ω, model
// (approximation) vs optimal.
func FigBalanceCost(base Scenario) ([]Series, error) {
	model := Series{Name: "model"}
	optimal := Series{Name: "optimal"}
	for _, omega := range OmegaSweep {
		inst, err := placementInstance(base, omega)
		if err != nil {
			return nil, err
		}
		approx, exact, haveExact, err := solveBoth(inst)
		if err != nil {
			return nil, err
		}
		model.Points = append(model.Points, Point{X: omega, Y: approx.TotalCost})
		if haveExact {
			optimal.Points = append(optimal.Points, Point{X: omega, Y: exact.TotalCost})
		}
	}
	out := []Series{model}
	if len(optimal.Points) > 0 {
		out = append(out, optimal)
	}
	return out, nil
}

// TradeoffPoint is one annotated point of Fig. 9(b).
type TradeoffPoint struct {
	Omega    float64
	MgmtCost float64
	SyncCost float64
	NumHubs  int
}

// FigCostTradeoff is Fig. 9(b): the management-vs-synchronization cost
// curve, annotated with (ω, number of smooth nodes).
func FigCostTradeoff(base Scenario) ([]TradeoffPoint, error) {
	var out []TradeoffPoint
	for _, omega := range OmegaSweep {
		inst, err := placementInstance(base, omega)
		if err != nil {
			return nil, err
		}
		plan, err := bestPlan(inst)
		if err != nil {
			return nil, err
		}
		out = append(out, TradeoffPoint{
			Omega:    omega,
			MgmtCost: plan.MgmtCost,
			SyncCost: plan.SyncCost,
			NumHubs:  plan.NumPlaced(),
		})
	}
	return out, nil
}

func bestPlan(inst *placement.Instance) (placement.Plan, error) {
	if len(inst.Candidates) <= 16 {
		return inst.SolveExhaustive()
	}
	return inst.SolveDoubleGreedy(nil)
}

// FigHubCount is Fig. 9(c) (small) / 9(d) (large): the number of smooth
// nodes placed for each weight ω.
func FigHubCount(base Scenario) (Series, error) {
	s := Series{Name: base.Name}
	for _, omega := range OmegaSweep {
		inst, err := placementInstance(base, omega)
		if err != nil {
			return Series{}, err
		}
		plan, err := bestPlan(inst)
		if err != nil {
			return Series{}, err
		}
		s.Points = append(s.Points, Point{X: omega, Y: float64(plan.NumPlaced())})
	}
	return s, nil
}

// DelayOverheadPoint is one point of Fig. 9(e/f): average transaction delay
// vs total traffic overhead, with or without PCHs.
type DelayOverheadPoint struct {
	Omega    float64 // 0 for the "without PCHs" reference
	WithPCH  bool
	DelayMs  float64
	Overhead float64
}

// perHopDelayMs is the modeled per-hop communication latency for the
// Fig. 9(e/f) analytical curves.
const perHopDelayMs = 20

// FigDelayOverhead is Fig. 9(e) / 9(f): iterate ω, compute the average
// payment delay (client → hub → hub → client path hops × per-hop latency)
// and the total communication overhead (management + synchronization cost
// mass); compare against the source-routing reference without PCHs, where
// every sender maintains the full topology.
func FigDelayOverhead(base Scenario) ([]DelayOverheadPoint, error) {
	src := rng.New(base.Seed)
	sizes := workload.NewChannelSizeDist(src.Split(1), base.ChannelScale)
	g, err := topology.WattsStrogatz(src.Split(2), base.Nodes, base.WSDegree, base.WSBeta, sizes.CapacityFunc())
	if err != nil {
		return nil, err
	}
	cands := topology.TopDegreeNodes(g, base.HubCandidates)
	candSet := map[graph.NodeID]bool{}
	for _, c := range cands {
		candSet[c] = true
	}
	var clients []graph.NodeID
	for i := 0; i < g.NumNodes(); i++ {
		if !candSet[graph.NodeID(i)] {
			clients = append(clients, graph.NodeID(i))
		}
	}
	hopsFrom := make([][]int, len(cands))
	for i, c := range cands {
		hopsFrom[i] = g.BFSHops(c)
	}

	var out []DelayOverheadPoint
	for _, omega := range OmegaSweep {
		inst, err := placement.NewInstanceFromGraph(g, clients, cands, omega)
		if err != nil {
			return nil, err
		}
		plan, err := bestPlan(inst)
		if err != nil {
			return nil, err
		}
		placed := plan.PlacedCandidates()
		// Average client→hub hop count under the plan's assignment.
		totalAccess := 0.0
		for m, hubIdx := range plan.Assign {
			totalAccess += float64(hopsFrom[hubIdx][clients[m]])
		}
		meanAccess := totalAccess / float64(len(clients))
		// Average hub→hub hop count.
		meanHubHub := 0.0
		if len(placed) > 1 {
			total, pairs := 0.0, 0
			for _, a := range placed {
				for _, b := range placed {
					if a != b {
						total += float64(hopsFrom[a][cands[b]])
						pairs++
					}
				}
			}
			meanHubHub = total / float64(pairs)
		}
		// A payment crosses: sender→hub, hub⇝hub, hub→recipient.
		delay := (2*meanAccess + meanHubHub) * perHopDelayMs
		overhead := plan.MgmtCost + plan.SyncCost
		out = append(out, DelayOverheadPoint{Omega: omega, WithPCH: true, DelayMs: delay, Overhead: overhead})
	}
	// Without PCHs: every sender source-routes. The per-payment delay has
	// three components the PCH side avoids: (i) the sender must probe its
	// candidate paths end-to-end before committing rates/amounts (a probe
	// round trip of 2×hops), (ii) the payment itself (hops), and (iii) the
	// sender-side route computation over the full topology. PCHs instead
	// decide from the epoch-synchronized global state and send immediately
	// (§III-C's management-cost motivation). Overhead: every node maintains
	// the full topology via gossip, costing management-cost-per-hop × mean
	// hops per node.
	meanPair, err := meanPairwiseHops(g, src.Split(9), 200)
	if err != nil {
		return nil, err
	}
	computeMs := pcn.NewConfig(pcn.SchemeSpider).SenderComputeDelayPerNode * float64(g.NumNodes()) * 1000
	srcDelay := 3*meanPair*perHopDelayMs + computeMs
	srcOverhead := placement.DefaultMgmtPerHop * meanPair * float64(g.NumNodes())
	out = append(out, DelayOverheadPoint{Omega: 0, WithPCH: false, DelayMs: srcDelay, Overhead: srcOverhead})
	return out, nil
}

// meanPairwiseHops estimates the mean shortest-path hop count by sampling.
func meanPairwiseHops(g *graph.Graph, src *rng.Source, samples int) (float64, error) {
	if g.NumNodes() < 2 {
		return 0, fmt.Errorf("experiments: graph too small")
	}
	total, count := 0.0, 0
	for i := 0; i < samples; i++ {
		u := graph.NodeID(src.IntN(g.NumNodes()))
		dist := g.BFSHops(u)
		v := graph.NodeID(src.IntN(g.NumNodes()))
		if u == v || dist[v] < 0 {
			continue
		}
		total += float64(dist[v])
		count++
	}
	if count == 0 {
		return 0, fmt.Errorf("experiments: no connected samples")
	}
	return total / float64(count), nil
}

// DelayOverheadTable renders Fig. 9(e/f) points.
func DelayOverheadTable(title string, points []DelayOverheadPoint) Table {
	t := Table{Title: title, Header: []string{"omega", "with_pch", "delay_ms", "overhead"}}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", p.Omega),
			fmt.Sprintf("%v", p.WithPCH),
			fmt.Sprintf("%.2f", p.DelayMs),
			fmt.Sprintf("%.3f", p.Overhead),
		})
	}
	return t
}

// TradeoffTable renders Fig. 9(b) points.
func TradeoffTable(title string, points []TradeoffPoint) Table {
	t := Table{Title: title, Header: []string{"omega", "mgmt_cost", "sync_cost", "num_hubs"}}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", p.Omega),
			fmt.Sprintf("%.4f", p.MgmtCost),
			fmt.Sprintf("%.4f", p.SyncCost),
			fmt.Sprintf("%d", p.NumHubs),
		})
	}
	return t
}

// MeanGap returns the mean relative gap between two series sharing X
// values; used by tests and EXPERIMENTS.md to quantify approximation
// quality in Fig. 9(a).
func MeanGap(a, b Series) float64 {
	n := len(a.Points)
	if len(b.Points) < n {
		n = len(b.Points)
	}
	if n == 0 {
		return math.NaN()
	}
	total := 0.0
	for i := 0; i < n; i++ {
		ref := b.Points[i].Y
		if ref == 0 {
			continue
		}
		total += math.Abs(a.Points[i].Y-ref) / math.Abs(ref)
	}
	return total / float64(n)
}
