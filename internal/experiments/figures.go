package experiments

import (
	"fmt"

	"github.com/splicer-pcn/splicer/internal/scenario"
)

// Default sweep grids (figure x-axes). These are package variables so tests
// and benchmarks can trim them; the canonical values live in the scenario
// registry.
var (
	// ChannelScaleSweep multiplies the LN channel-size distribution
	// (Fig. 7a/8a's "influence of the channel size").
	ChannelScaleSweep = scenario.ChannelScaleGrid()
	// ValueScaleSweep multiplies transaction values (Fig. 7b/8b).
	ValueScaleSweep = scenario.ValueScaleGrid()
	// TauSweepMs is the update-time sweep in milliseconds (Fig. 7c/d, 8c/d).
	TauSweepMs = scenario.TauGridMs()
	// NodeCountSweep is the |V| grid for the FigScale scaling panel
	// (Watts–Strogatz networks from 2k to 10k nodes).
	NodeCountSweep = scenario.NodeCountGrid()
	// OmegaSweep is the weight grid for the Fig. 9 placement evaluation.
	OmegaSweep = scenario.OmegaGrid()
)

// runFigure fans the scenario's scheme × x × seed grid onto the engine.
func runFigure(base Scenario, param string, xs []float64, metric scenario.Metric) ([]Series, error) {
	series, err := scenario.RunFigure(base.Spec(), scenario.Axis{Param: param, Values: xs},
		schemeNames(Schemes), metric, base.runOptions())
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return series, nil
}

// FigChannelSize is Fig. 7(a) (small) / Fig. 8(a) (large): TSR vs channel
// size scale.
func FigChannelSize(base Scenario) ([]Series, error) {
	return runFigure(base, "channel_scale", ChannelScaleSweep, scenario.MetricTSR)
}

// FigTxnSize is Fig. 7(b) / 8(b): TSR vs transaction size scale.
func FigTxnSize(base Scenario) ([]Series, error) {
	return runFigure(base, "value_scale", ValueScaleSweep, scenario.MetricTSR)
}

// FigUpdateTime is Fig. 7(c) / 8(c): TSR vs update time τ (ms).
func FigUpdateTime(base Scenario) ([]Series, error) {
	return runFigure(base, "tau_ms", TauSweepMs, scenario.MetricTSR)
}

// FigThroughput is Fig. 7(d) / 8(d): normalized throughput vs update time.
func FigThroughput(base Scenario) ([]Series, error) {
	return runFigure(base, "tau_ms", TauSweepMs, scenario.MetricThroughput)
}

// FigScale is the Fig. 9-style scaling panel: normalized throughput vs
// network size |V|, all schemes, on the Scale scenario.
func FigScale(base Scenario) ([]Series, error) {
	return runFigure(base, "nodes", NodeCountSweep, scenario.MetricThroughput)
}

// FigBalanceCost is Fig. 9(a): average balance cost vs ω, model
// (approximation) vs optimal.
func FigBalanceCost(base Scenario) ([]Series, error) {
	return scenario.BalanceCostSeries(base.Spec(), OmegaSweep)
}

// TradeoffPoint is one annotated point of Fig. 9(b).
type TradeoffPoint = scenario.TradeoffPoint

// FigCostTradeoff is Fig. 9(b): the management-vs-synchronization cost
// curve, annotated with (ω, number of smooth nodes).
func FigCostTradeoff(base Scenario) ([]TradeoffPoint, error) {
	return scenario.CostTradeoff(base.Spec(), OmegaSweep)
}

// FigHubCount is Fig. 9(c) (small) / 9(d) (large): the number of smooth
// nodes placed for each weight ω.
func FigHubCount(base Scenario) (Series, error) {
	return scenario.HubCount(base.Spec(), OmegaSweep)
}

// DelayOverheadPoint is one point of Fig. 9(e/f): average transaction delay
// vs total traffic overhead, with or without PCHs.
type DelayOverheadPoint = scenario.DelayOverheadPoint

// FigDelayOverhead is Fig. 9(e) / 9(f): average payment delay vs total
// communication overhead under the placement plan, against the
// source-routing reference without PCHs.
func FigDelayOverhead(base Scenario) ([]DelayOverheadPoint, error) {
	return scenario.DelayOverhead(base.Spec(), OmegaSweep)
}

// DelayOverheadTable renders Fig. 9(e/f) points.
func DelayOverheadTable(title string, points []DelayOverheadPoint) Table {
	return scenario.DelayOverheadTable(title, points)
}

// TradeoffTable renders Fig. 9(b) points.
func TradeoffTable(title string, points []TradeoffPoint) Table {
	return scenario.TradeoffTable(title, points)
}

// MeanGap returns the mean relative gap between two series sharing X
// values; used by tests to quantify approximation quality in Fig. 9(a).
func MeanGap(a, b Series) float64 {
	return scenario.MeanGap(a, b)
}
