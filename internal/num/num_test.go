package num

import (
	"math"
	"testing"

	"github.com/splicer-pcn/splicer/internal/graph"
)

// pathThrough builds the unique path along consecutive nodes in g.
func pathThrough(t *testing.T, g *graph.Graph, nodes ...graph.NodeID) graph.Path {
	t.Helper()
	p := graph.Path{Nodes: nodes}
	for i := 0; i+1 < len(nodes); i++ {
		e, ok := g.EdgeBetween(nodes[i], nodes[i+1])
		if !ok {
			t.Fatalf("no edge %d-%d", nodes[i], nodes[i+1])
		}
		p.Edges = append(p.Edges, e.ID)
	}
	return p
}

func line(t *testing.T, n int, c float64) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for i := 0; i < n-1; i++ {
		if _, err := g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), c, c); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestValidation(t *testing.T) {
	g := line(t, 2, 10)
	path := pathThrough(t, g, 0, 1)
	ok := Problem{Graph: g, Delta: 1, Epsilon: 1, Commodities: []Commodity{{Source: 0, Dest: 1, Paths: []graph.Path{path}}}}
	cases := []Problem{
		{Graph: nil, Delta: 1, Epsilon: 1, Commodities: ok.Commodities},
		{Graph: g, Delta: 0, Epsilon: 1, Commodities: ok.Commodities},
		{Graph: g, Delta: 1, Epsilon: -1, Commodities: ok.Commodities},
		{Graph: g, Delta: 1, Epsilon: 1},
		{Graph: g, Delta: 1, Epsilon: 1, Commodities: []Commodity{{Source: 0, Dest: 1}}},
	}
	for i, p := range cases {
		if _, err := Solve(p, Options{Iterations: 10}); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	if _, err := Solve(ok, Options{Iterations: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestBalanceConstraintThrottlesOneWayFlow(t *testing.T) {
	// One-directional demand over a single channel: the balance constraint
	// |r − 0| ≤ ε caps the rate at ε no matter how much capacity exists.
	g := line(t, 2, 1000)
	path := pathThrough(t, g, 0, 1)
	const eps = 2.0
	sol, err := Solve(Problem{
		Graph: g, Delta: 1, Epsilon: eps,
		Commodities: []Commodity{{Source: 0, Dest: 1, Paths: []graph.Path{path}}},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := sol.TotalRate(0)
	if r > eps*1.3 {
		t.Fatalf("one-way rate %v far exceeds balance slack %v", r, eps)
	}
	if r < eps*0.4 {
		t.Fatalf("one-way rate %v collapsed below the slack %v", r, eps)
	}
}

func TestCounterflowUnlocksThroughput(t *testing.T) {
	// The deadlock-freedom core claim: adding reverse demand lets BOTH
	// directions run far above ε, because balanced flows replenish each
	// other (§II-B's fix).
	g := line(t, 2, 1000)
	fwd := pathThrough(t, g, 0, 1)
	rev := pathThrough(t, g, 1, 0)
	const eps = 2.0
	oneWay, err := Solve(Problem{
		Graph: g, Delta: 1, Epsilon: eps,
		Commodities: []Commodity{{Source: 0, Dest: 1, Paths: []graph.Path{fwd}}},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	twoWay, err := Solve(Problem{
		Graph: g, Delta: 1, Epsilon: eps,
		Commodities: []Commodity{
			{Source: 0, Dest: 1, Paths: []graph.Path{fwd}},
			{Source: 1, Dest: 0, Paths: []graph.Path{rev}},
		},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if twoWay.TotalRate(0) < 3*oneWay.TotalRate(0) {
		t.Fatalf("counterflow did not unlock throughput: one-way %v, two-way fwd %v",
			oneWay.TotalRate(0), twoWay.TotalRate(0))
	}
}

func TestCapacityBindsBalancedFlow(t *testing.T) {
	// Balanced bidirectional demand over a small channel: capacity (eq. 18)
	// binds: r01 + r10 ≤ (c_fwd + c_rev)/Δ = 20.
	g := line(t, 2, 10)
	fwd := pathThrough(t, g, 0, 1)
	rev := pathThrough(t, g, 1, 0)
	sol, err := Solve(Problem{
		Graph: g, Delta: 1, Epsilon: 100,
		Commodities: []Commodity{
			{Source: 0, Dest: 1, Paths: []graph.Path{fwd}},
			{Source: 1, Dest: 0, Paths: []graph.Path{rev}},
		},
	}, Options{Iterations: 8000})
	if err != nil {
		t.Fatal(err)
	}
	sum := sol.TotalRate(0) + sol.TotalRate(1)
	if sum > 20*1.15 {
		t.Fatalf("capacity violated: total rate %v > 20", sum)
	}
	if sum < 20*0.6 {
		t.Fatalf("capacity underused: total rate %v", sum)
	}
	if sol.MaxCapacityViolation > 3 {
		t.Fatalf("residual capacity violation %v", sol.MaxCapacityViolation)
	}
}

func TestDemandConstraintBinds(t *testing.T) {
	g := line(t, 2, 1000)
	fwd := pathThrough(t, g, 0, 1)
	rev := pathThrough(t, g, 1, 0)
	sol, err := Solve(Problem{
		Graph: g, Delta: 2, Epsilon: 1000,
		Commodities: []Commodity{
			{Source: 0, Dest: 1, Paths: []graph.Path{fwd}, Demand: 10}, // Σr ≤ 5
			{Source: 1, Dest: 0, Paths: []graph.Path{rev}},
		},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r := sol.TotalRate(0); r > 5+1e-6 {
		t.Fatalf("demand constraint violated: %v > 5", r)
	}
}

func TestMultiPathSplitsAcrossBottlenecks(t *testing.T) {
	// Diamond: 0-1-3 (narrow) and 0-2-3 (wide), balanced counterflow via a
	// mirror commodity. The wide path must carry more rate.
	g := graph.New(4)
	mk := func(u, v graph.NodeID, c float64) {
		if _, err := g.AddEdge(u, v, c, c); err != nil {
			t.Fatal(err)
		}
	}
	mk(0, 1, 5)
	mk(1, 3, 5)
	mk(0, 2, 100)
	mk(2, 3, 100)
	up := []graph.Path{pathThrough(t, g, 0, 1, 3), pathThrough(t, g, 0, 2, 3)}
	down := []graph.Path{pathThrough(t, g, 3, 1, 0), pathThrough(t, g, 3, 2, 0)}
	sol, err := Solve(Problem{
		Graph: g, Delta: 1, Epsilon: 50,
		Commodities: []Commodity{
			{Source: 0, Dest: 3, Paths: up},
			{Source: 3, Dest: 0, Paths: down},
		},
	}, Options{Iterations: 8000})
	if err != nil {
		t.Fatal(err)
	}
	narrow, wide := sol.Rates[0][0], sol.Rates[0][1]
	if wide <= narrow {
		t.Fatalf("wide path rate %v not above narrow %v", wide, narrow)
	}
}

func TestUtilityFinitePositiveRates(t *testing.T) {
	g := line(t, 3, 50)
	p := pathThrough(t, g, 0, 1, 2)
	rev := pathThrough(t, g, 2, 1, 0)
	sol, err := Solve(Problem{
		Graph: g, Delta: 1, Epsilon: 5,
		Commodities: []Commodity{
			{Source: 0, Dest: 2, Paths: []graph.Path{p}},
			{Source: 2, Dest: 0, Paths: []graph.Path{rev}},
		},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(sol.Utility, -1) || math.IsNaN(sol.Utility) {
		t.Fatalf("utility = %v", sol.Utility)
	}
}
