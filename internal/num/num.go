// Package num solves the fluid-limit network utility maximization problem
// that Splicer's routing protocol approximates online (§IV-D, eqs. 16-20):
//
//	max  Σ_{s,e} log(Σ_{p∈P_se} r_p)
//	s.t. Σ_p r_p·Δ ≤ d_se                    (demand,   eq. 17)
//	     r_ab + r_ba ≤ c_ab/Δ                (capacity, eq. 18)
//	     |r_ab − r_ba| ≤ ε                   (balance,  eq. 19)
//	     r_p ≥ 0                             (eq. 20)
//
// via the same primal-dual dynamics the protocol runs: capacity prices λ
// and imbalance prices μ ascend on constraint violation (eqs. 21-22), path
// rates follow r += α(U'(r) − ϱ_p) with ϱ_p the summed path price (eqs.
// 23, 25-26). The offline solver gives the benchmark rates the online
// protocol should track, and makes the paper's deadlock-freedom argument
// checkable: with a tight balance constraint, one-directional demand is
// throttled to ε while adding counterflow demand raises the achievable
// rate — funds keep circulating instead of piling up at one end.
package num

import (
	"fmt"
	"math"

	"github.com/splicer-pcn/splicer/internal/graph"
)

// Commodity is one source-destination pair with its candidate paths and
// demand bound.
type Commodity struct {
	Source graph.NodeID
	Dest   graph.NodeID
	Paths  []graph.Path
	// Demand bounds Σ r_p·Δ (tokens outstanding); ≤ 0 means unbounded.
	Demand float64
}

// Problem is a fluid NUM instance.
type Problem struct {
	Graph *graph.Graph
	// Delta is the average acknowledgment delay Δ: r·Δ funds are locked
	// per unit rate.
	Delta float64
	// Epsilon is the balance slack ε of eq. 19.
	Epsilon     float64
	Commodities []Commodity
}

// Options tunes the primal-dual iteration.
type Options struct {
	Iterations int     // default 4000
	Alpha      float64 // rate step (default 0.05)
	Kappa      float64 // capacity price step (default 0.05)
	Eta        float64 // imbalance price step (default 0.05)
}

func (o *Options) fill() {
	if o.Iterations <= 0 {
		o.Iterations = 4000
	}
	if o.Alpha <= 0 {
		o.Alpha = 0.05
	}
	if o.Kappa <= 0 {
		o.Kappa = 0.05
	}
	if o.Eta <= 0 {
		o.Eta = 0.05
	}
}

// Solution holds the converged rates.
type Solution struct {
	// Rates[i][j] is the rate of commodity i's path j.
	Rates [][]float64
	// Utility is Σ log(Σ_p r_p).
	Utility float64
	// MaxCapacityViolation and MaxBalanceViolation report residual
	// infeasibility (≈0 at convergence).
	MaxCapacityViolation float64
	MaxBalanceViolation  float64
}

// TotalRate returns commodity i's aggregate rate.
func (s Solution) TotalRate(i int) float64 {
	total := 0.0
	for _, r := range s.Rates[i] {
		total += r
	}
	return total
}

// Solve runs the primal-dual dynamics to (approximate) convergence.
func Solve(p Problem, opts Options) (Solution, error) {
	if p.Graph == nil {
		return Solution{}, fmt.Errorf("num: nil graph")
	}
	if p.Delta <= 0 {
		return Solution{}, fmt.Errorf("num: Delta must be positive")
	}
	if p.Epsilon < 0 {
		return Solution{}, fmt.Errorf("num: Epsilon must be >= 0")
	}
	if len(p.Commodities) == 0 {
		return Solution{}, fmt.Errorf("num: no commodities")
	}
	for i, c := range p.Commodities {
		if len(c.Paths) == 0 {
			return Solution{}, fmt.Errorf("num: commodity %d has no paths", i)
		}
		for _, path := range c.Paths {
			if !path.Valid(p.Graph) {
				return Solution{}, fmt.Errorf("num: commodity %d has an invalid path", i)
			}
		}
	}
	opts.fill()

	nEdges := p.Graph.NumEdges()
	lambda := make([]float64, nEdges) // capacity price per channel
	mu := make([][2]float64, nEdges)  // imbalance price per direction
	rates := make([][]float64, len(p.Commodities))
	for i, c := range p.Commodities {
		rates[i] = make([]float64, len(c.Paths))
		for j := range rates[i] {
			rates[i][j] = 0.1 // small positive start so U' is finite
		}
	}

	// dirOf returns 0 for U→V traversal, 1 for V→U.
	dirOf := func(eid graph.EdgeID, from graph.NodeID) int {
		if p.Graph.Edge(eid).U == from {
			return 0
		}
		return 1
	}

	load := make([][2]float64, nEdges)
	for iter := 0; iter < opts.Iterations; iter++ {
		// Directional loads from current rates.
		for e := range load {
			load[e] = [2]float64{}
		}
		for i, c := range p.Commodities {
			for j, path := range c.Paths {
				r := rates[i][j]
				for h, eid := range path.Edges {
					load[eid][dirOf(eid, path.Nodes[h])] += r
				}
			}
		}
		// Dual ascent (eqs. 21-22 in fluid form).
		for e := 0; e < nEdges; e++ {
			edge := p.Graph.Edge(graph.EdgeID(e))
			capRate := (edge.CapFwd + edge.CapRev) / p.Delta
			lambda[e] += opts.Kappa * (load[e][0] + load[e][1] - capRate)
			if lambda[e] < 0 {
				lambda[e] = 0
			}
			diff := load[e][0] - load[e][1]
			mu[e][0] += opts.Eta * (diff - p.Epsilon)
			if mu[e][0] < 0 {
				mu[e][0] = 0
			}
			mu[e][1] += opts.Eta * (-diff - p.Epsilon)
			if mu[e][1] < 0 {
				mu[e][1] = 0
			}
		}
		// Primal update (eqs. 23, 25-26).
		for i, c := range p.Commodities {
			total := 0.0
			for _, r := range rates[i] {
				total += r
			}
			uPrime := 1.0
			if total > 0 {
				uPrime = 1 / total
			}
			for j, path := range c.Paths {
				price := 0.0
				for h, eid := range path.Edges {
					d := dirOf(eid, path.Nodes[h])
					price += 2*lambda[eid] + mu[eid][d] - mu[eid][1-d]
				}
				rates[i][j] += opts.Alpha * (uPrime - price)
				if rates[i][j] < 0 {
					rates[i][j] = 0
				}
			}
			// Project onto the demand constraint Σ r·Δ ≤ d.
			if c.Demand > 0 {
				total = 0
				for _, r := range rates[i] {
					total += r
				}
				if lim := c.Demand / p.Delta; total > lim {
					scale := lim / total
					for j := range rates[i] {
						rates[i][j] *= scale
					}
				}
			}
		}
	}

	sol := Solution{Rates: rates}
	for i := range p.Commodities {
		if t := sol.TotalRate(i); t > 0 {
			sol.Utility += math.Log(t)
		} else {
			sol.Utility = math.Inf(-1)
		}
	}
	// Residual violations.
	for e := range load {
		load[e] = [2]float64{}
	}
	for i, c := range p.Commodities {
		for j, path := range c.Paths {
			for h, eid := range path.Edges {
				load[eid][dirOf(eid, path.Nodes[h])] += rates[i][j]
			}
		}
	}
	for e := 0; e < nEdges; e++ {
		edge := p.Graph.Edge(graph.EdgeID(e))
		capRate := (edge.CapFwd + edge.CapRev) / p.Delta
		if v := load[e][0] + load[e][1] - capRate; v > sol.MaxCapacityViolation {
			sol.MaxCapacityViolation = v
		}
		if v := math.Abs(load[e][0]-load[e][1]) - p.Epsilon; v > sol.MaxBalanceViolation {
			sol.MaxBalanceViolation = v
		}
	}
	return sol, nil
}
