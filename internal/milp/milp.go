// Package milp implements a branch-and-bound mixed-integer linear program
// solver on top of the internal/lp simplex. The paper's small-scale optimal
// PCH placement converts the (NP-hard) placement problem into a MILP
// (§IV-C, eqs. 6-10) and hands it to a commercial solver; this package is
// the from-scratch replacement.
//
// Branching is best-first on the LP relaxation bound with most-fractional
// variable selection, which keeps the search tree small on the placement
// instances (binary x, y, ϑ, φ variables).
package milp

import (
	"container/heap"
	"fmt"
	"math"

	"github.com/splicer-pcn/splicer/internal/lp"
)

// Problem is a MILP: an LP plus integrality restrictions on a subset of
// variables. All variables are non-negative (inherited from lp).
type Problem struct {
	lp       *lp.Problem
	integer  []bool
	maximize bool
}

// NewProblem creates a minimization MILP with n non-negative continuous
// variables; mark integer variables with SetInteger.
func NewProblem(n int) *Problem {
	return &Problem{lp: lp.NewProblem(n), integer: make([]bool, n)}
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return p.lp.NumVars() }

// SetObjectiveCoeff sets the objective coefficient of variable i.
func (p *Problem) SetObjectiveCoeff(i int, c float64) { p.lp.SetObjectiveCoeff(i, c) }

// SetMaximize switches to maximization.
func (p *Problem) SetMaximize(maximize bool) {
	p.maximize = maximize
	p.lp.SetMaximize(maximize)
}

// SetInteger marks variable i as integral.
func (p *Problem) SetInteger(i int) { p.integer[i] = true }

// SetBinary marks variable i as integral and adds the bound x_i <= 1.
func (p *Problem) SetBinary(i int) error {
	p.integer[i] = true
	return p.lp.AddConstraint(map[int]float64{i: 1}, lp.LE, 1)
}

// AddConstraint appends a linear constraint.
func (p *Problem) AddConstraint(coeffs map[int]float64, op lp.Op, rhs float64) error {
	return p.lp.AddConstraint(coeffs, op, rhs)
}

// Solution is the outcome of a MILP solve.
type Solution struct {
	Status    lp.Status
	X         []float64
	Objective float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
}

// Options tunes the branch-and-bound search.
type Options struct {
	// MaxNodes bounds the search; 0 means a generous default. When the
	// limit is hit with an incumbent, the incumbent is returned (it may be
	// suboptimal); without an incumbent an error is returned.
	MaxNodes int
	// Gap is the relative optimality gap at which search stops early.
	Gap float64
}

const intTol = 1e-6

type bbNode struct {
	bound  float64 // LP relaxation objective (in minimization sense)
	lower  map[int]float64
	upper  map[int]float64
	isRoot bool
}

type nodeQueue []*bbNode

func (q nodeQueue) Len() int            { return len(q) }
func (q nodeQueue) Less(i, j int) bool  { return q[i].bound < q[j].bound }
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(*bbNode)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return item
}

// Solve runs branch-and-bound and returns the optimal mixed-integer
// solution, or Infeasible/Unbounded status.
func (p *Problem) Solve(opts Options) (Solution, error) {
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 100000
	}

	// sign converts an objective into minimization sense for bounding.
	sign := 1.0
	if p.maximize {
		sign = -1
	}

	solveRelaxation := func(node *bbNode) (lp.Solution, error) {
		rp := p.lp.Clone()
		for i, b := range node.lower {
			if err := rp.AddConstraint(map[int]float64{i: 1}, lp.GE, b); err != nil {
				return lp.Solution{}, err
			}
		}
		for i, b := range node.upper {
			if err := rp.AddConstraint(map[int]float64{i: 1}, lp.LE, b); err != nil {
				return lp.Solution{}, err
			}
		}
		return rp.Solve()
	}

	root := &bbNode{lower: map[int]float64{}, upper: map[int]float64{}, isRoot: true}
	rootSol, err := solveRelaxation(root)
	if err != nil {
		return Solution{}, err
	}
	switch rootSol.Status {
	case lp.Infeasible:
		return Solution{Status: lp.Infeasible, Nodes: 1}, nil
	case lp.Unbounded:
		// The LP relaxation being unbounded does not prove the MILP
		// unbounded in general, but for the bounded-variable problems here
		// it only arises from modeling errors; surface it.
		return Solution{Status: lp.Unbounded, Nodes: 1}, nil
	}
	root.bound = sign * rootSol.Objective

	queue := &nodeQueue{root}
	heap.Init(queue)

	var (
		incumbent    []float64
		incumbentObj = math.Inf(1) // minimization sense
	)

	explored := 0
	for queue.Len() > 0 {
		if explored >= maxNodes {
			break
		}
		node := heap.Pop(queue).(*bbNode)
		// Bound pruning.
		if node.bound >= incumbentObj-1e-9 {
			continue
		}
		explored++
		sol, err := solveRelaxation(node)
		if err != nil {
			return Solution{}, err
		}
		if sol.Status != lp.Optimal {
			continue
		}
		bound := sign * sol.Objective
		if bound >= incumbentObj-1e-9 {
			continue
		}
		// Find most-fractional integer variable.
		branchVar := -1
		worstFrac := intTol
		for i, isInt := range p.integer {
			if !isInt {
				continue
			}
			f := math.Abs(sol.X[i] - math.Round(sol.X[i]))
			if f > worstFrac {
				worstFrac = f
				branchVar = i
			}
		}
		if branchVar < 0 {
			// Integral: new incumbent.
			if bound < incumbentObj {
				incumbentObj = bound
				incumbent = append([]float64(nil), sol.X...)
				// Round integer variables exactly.
				for i, isInt := range p.integer {
					if isInt {
						incumbent[i] = math.Round(incumbent[i])
					}
				}
				if opts.Gap > 0 && queue.Len() > 0 {
					best := (*queue)[0].bound
					if gapOK(best, incumbentObj, opts.Gap) {
						break
					}
				}
			}
			continue
		}
		v := sol.X[branchVar]
		down := &bbNode{bound: bound, lower: copyBounds(node.lower), upper: copyBounds(node.upper)}
		down.upper[branchVar] = minBound(node.upper, branchVar, math.Floor(v))
		up := &bbNode{bound: bound, lower: copyBounds(node.lower), upper: copyBounds(node.upper)}
		up.lower[branchVar] = maxBound(node.lower, branchVar, math.Ceil(v))
		heap.Push(queue, down)
		heap.Push(queue, up)
	}

	if incumbent == nil {
		if explored >= maxNodes {
			return Solution{}, fmt.Errorf("milp: node limit %d reached without an integral solution", maxNodes)
		}
		return Solution{Status: lp.Infeasible, Nodes: explored}, nil
	}
	obj := sign * incumbentObj // convert back to the user's sense
	return Solution{Status: lp.Optimal, X: incumbent, Objective: obj, Nodes: explored}, nil
}

func gapOK(bestBound, incumbent, gap float64) bool {
	if incumbent == 0 {
		return bestBound >= -gap
	}
	return (incumbent-bestBound)/math.Abs(incumbent) <= gap
}

func copyBounds(b map[int]float64) map[int]float64 {
	c := make(map[int]float64, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

// minBound returns the tighter (smaller) of an inherited upper bound and the
// new candidate.
func minBound(prev map[int]float64, i int, candidate float64) float64 {
	if old, ok := prev[i]; ok && old < candidate {
		return old
	}
	return candidate
}

// maxBound returns the tighter (larger) of an inherited lower bound and the
// new candidate.
func maxBound(prev map[int]float64, i int, candidate float64) float64 {
	if old, ok := prev[i]; ok && old > candidate {
		return old
	}
	return candidate
}
