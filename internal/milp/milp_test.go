package milp

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/splicer-pcn/splicer/internal/lp"
	"github.com/splicer-pcn/splicer/internal/rng"
)

func solveOK(t *testing.T, p *Problem, opts Options) Solution {
	t.Helper()
	sol, err := p.Solve(opts)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func TestKnapsack(t *testing.T) {
	// Classic 0/1 knapsack: values {60,100,120}, weights {10,20,30}, cap 50.
	// Optimum: items 2,3 → value 220.
	p := NewProblem(3)
	p.SetMaximize(true)
	for i, v := range []float64{60, 100, 120} {
		p.SetObjectiveCoeff(i, v)
		if err := p.SetBinary(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.AddConstraint(map[int]float64{0: 10, 1: 20, 2: 30}, lp.LE, 50); err != nil {
		t.Fatal(err)
	}
	sol := solveOK(t, p, Options{})
	if sol.Status != lp.Optimal || math.Abs(sol.Objective-220) > 1e-6 {
		t.Fatalf("got %v obj=%v, want 220", sol.Status, sol.Objective)
	}
	if math.Round(sol.X[0]) != 0 || math.Round(sol.X[1]) != 1 || math.Round(sol.X[2]) != 1 {
		t.Fatalf("x = %v, want [0 1 1]", sol.X)
	}
}

func TestIntegerRounding(t *testing.T) {
	// max x s.t. 2x <= 7, x integer → x=3 (LP relaxation gives 3.5).
	p := NewProblem(1)
	p.SetMaximize(true)
	p.SetObjectiveCoeff(0, 1)
	p.SetInteger(0)
	if err := p.AddConstraint(map[int]float64{0: 2}, lp.LE, 7); err != nil {
		t.Fatal(err)
	}
	sol := solveOK(t, p, Options{})
	if sol.Status != lp.Optimal || math.Abs(sol.X[0]-3) > intTol {
		t.Fatalf("x = %v, want 3", sol.X)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min 3x + 2y, x integer, s.t. x + y >= 3.5, y <= 1.2.
	// x=2 would need y >= 1.5 > 1.2, so x=3 with y=0.5 is optimal: obj 10.
	p := NewProblem(2)
	p.SetObjectiveCoeff(0, 3)
	p.SetObjectiveCoeff(1, 2)
	p.SetInteger(0)
	if err := p.AddConstraint(map[int]float64{0: 1, 1: 1}, lp.GE, 3.5); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint(map[int]float64{1: 1}, lp.LE, 1.2); err != nil {
		t.Fatal(err)
	}
	sol := solveOK(t, p, Options{})
	if sol.Status != lp.Optimal || math.Abs(sol.Objective-10) > 1e-6 {
		t.Fatalf("obj = %v, want 10 (x=%v)", sol.Objective, sol.X)
	}
	if math.Abs(sol.X[0]-3) > intTol || math.Abs(sol.X[1]-0.5) > 1e-6 {
		t.Fatalf("x = %v, want [3 0.5]", sol.X)
	}
}

func TestInfeasibleMILP(t *testing.T) {
	// 0 <= x <= 1 integral with 0.3 <= x <= 0.7 → no integer point.
	p := NewProblem(1)
	p.SetObjectiveCoeff(0, 1)
	if err := p.SetBinary(0); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint(map[int]float64{0: 1}, lp.GE, 0.3); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint(map[int]float64{0: 1}, lp.LE, 0.7); err != nil {
		t.Fatal(err)
	}
	sol := solveOK(t, p, Options{})
	if sol.Status != lp.Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleLPRelaxation(t *testing.T) {
	p := NewProblem(1)
	if err := p.AddConstraint(map[int]float64{0: 1}, lp.LE, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint(map[int]float64{0: 1}, lp.GE, 5); err != nil {
		t.Fatal(err)
	}
	sol := solveOK(t, p, Options{})
	if sol.Status != lp.Infeasible {
		t.Fatalf("status %v", sol.Status)
	}
}

func TestSetCover(t *testing.T) {
	// Universe {1..5}; sets A={1,2,3} cost 3, B={2,4} cost 2, C={3,4,5}
	// cost 2, D={1,5} cost 2. Optimal cover: A+C cost 5? or B+D+? B∪D =
	// {1,2,4,5} missing 3. A∪C covers all: cost 5. D∪C = {1,3,4,5} missing
	// 2. Best is {A, C} = 5 or {B, C, D} = 6. So 5.
	sets := [][]int{{1, 2, 3}, {2, 4}, {3, 4, 5}, {1, 5}}
	costs := []float64{3, 2, 2, 2}
	p := NewProblem(4)
	for i, c := range costs {
		p.SetObjectiveCoeff(i, c)
		if err := p.SetBinary(i); err != nil {
			t.Fatal(err)
		}
	}
	for elem := 1; elem <= 5; elem++ {
		coeffs := map[int]float64{}
		for si, s := range sets {
			for _, e := range s {
				if e == elem {
					coeffs[si] = 1
				}
			}
		}
		if err := p.AddConstraint(coeffs, lp.GE, 1); err != nil {
			t.Fatal(err)
		}
	}
	sol := solveOK(t, p, Options{})
	if sol.Status != lp.Optimal || math.Abs(sol.Objective-5) > 1e-6 {
		t.Fatalf("obj = %v, want 5", sol.Objective)
	}
}

func TestNodeLimitErrorsWithoutIncumbent(t *testing.T) {
	p := NewProblem(2)
	p.SetMaximize(true)
	p.SetObjectiveCoeff(0, 1)
	p.SetObjectiveCoeff(1, 1)
	p.SetInteger(0)
	p.SetInteger(1)
	if err := p.AddConstraint(map[int]float64{0: 2, 1: 2}, lp.LE, 3); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint(map[int]float64{0: 2, 1: 2}, lp.GE, 3); err != nil {
		t.Fatal(err)
	}
	// The unique LP solution has x0+x1 = 1.5, never integral; with
	// MaxNodes=1 we cannot find an incumbent.
	if _, err := p.Solve(Options{MaxNodes: 1}); err == nil {
		t.Fatal("expected node-limit error")
	}
}

func TestGapEarlyStop(t *testing.T) {
	// With a huge allowed gap the solver may stop at the first incumbent;
	// the answer must still be feasible and integral.
	p := NewProblem(3)
	p.SetMaximize(true)
	for i, v := range []float64{5, 4, 3} {
		p.SetObjectiveCoeff(i, v)
		if err := p.SetBinary(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.AddConstraint(map[int]float64{0: 2, 1: 3, 2: 1}, lp.LE, 4); err != nil {
		t.Fatal(err)
	}
	sol := solveOK(t, p, Options{Gap: 0.5})
	if sol.Status != lp.Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	for i, x := range sol.X {
		if math.Abs(x-math.Round(x)) > intTol {
			t.Fatalf("x[%d] = %v not integral", i, x)
		}
	}
}

func TestPropertyAgainstBruteForce(t *testing.T) {
	// Random small binary programs: B&B must match exhaustive enumeration.
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := src.IntN(4) + 2 // 2..5 binary vars
		p := NewProblem(n)
		p.SetMaximize(true)
		obj := make([]float64, n)
		for i := range obj {
			obj[i] = math.Round(src.Float64()*20) - 5
			p.SetObjectiveCoeff(i, obj[i])
			if err := p.SetBinary(i); err != nil {
				return false
			}
		}
		nCons := src.IntN(3) + 1
		type con struct {
			coeffs []float64
			rhs    float64
		}
		cons := make([]con, nCons)
		for k := range cons {
			coeffs := make([]float64, n)
			for i := range coeffs {
				coeffs[i] = math.Round(src.Float64() * 6)
			}
			rhs := math.Round(src.Float64() * 10)
			cons[k] = con{coeffs: coeffs, rhs: rhs}
			m := map[int]float64{}
			for i, c := range coeffs {
				if c != 0 {
					m[i] = c
				}
			}
			if err := p.AddConstraint(m, lp.LE, rhs); err != nil {
				return false
			}
		}
		sol, err := p.Solve(Options{})
		if err != nil {
			return false
		}
		// Brute force over 2^n assignments.
		best := math.Inf(-1)
		feasibleExists := false
		for mask := 0; mask < 1<<n; mask++ {
			ok := true
			for _, c := range cons {
				lhs := 0.0
				for i := 0; i < n; i++ {
					if mask&(1<<i) != 0 {
						lhs += c.coeffs[i]
					}
				}
				if lhs > c.rhs+1e-9 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			feasibleExists = true
			val := 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					val += obj[i]
				}
			}
			if val > best {
				best = val
			}
		}
		if !feasibleExists {
			return sol.Status == lp.Infeasible
		}
		return sol.Status == lp.Optimal && math.Abs(sol.Objective-best) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNodesReported(t *testing.T) {
	p := NewProblem(2)
	p.SetMaximize(true)
	p.SetObjectiveCoeff(0, 1)
	p.SetObjectiveCoeff(1, 1)
	if err := p.SetBinary(0); err != nil {
		t.Fatal(err)
	}
	if err := p.SetBinary(1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint(map[int]float64{0: 1, 1: 1}, lp.LE, 1.5); err != nil {
		t.Fatal(err)
	}
	sol := solveOK(t, p, Options{})
	if sol.Nodes < 1 {
		t.Fatalf("nodes = %d, want >= 1", sol.Nodes)
	}
	if math.Abs(sol.Objective-1) > 1e-6 {
		t.Fatalf("obj = %v, want 1", sol.Objective)
	}
}
