// Package dkg implements the key management group (KMG) of Splicer §III-A:
// a committee of ι smooth nodes jointly generates ElGamal key pairs via a
// Feldman-VSS-based distributed key generation (the paper cites Gennaro et
// al. [14]), and decrypts ciphertexts via threshold partial decryptions so
// the secret key never exists in one place.
//
// Shares use Shamir secret sharing over Z_q with a degree-(t-1) polynomial;
// any t of the ι nodes can decrypt, fewer learn nothing.
package dkg

import (
	"fmt"
	"io"
	"math/big"

	"github.com/splicer-pcn/splicer/internal/group"
)

// Node is one KMG member's view after a DKG run: its share of the secret
// and the public commitments of all dealers.
type Node struct {
	Index int      // 1-based Shamir evaluation point
	Share *big.Int // s_i = Σ_j f_j(i) mod q
}

// Key is the outcome of one DKG run: a public key whose secret is shared
// among the nodes.
type Key struct {
	PK        *big.Int
	Nodes     []Node
	Threshold int
	grp       *group.Group
}

// Commitments from one dealer's Feldman VSS: C_k = g^{a_k} for polynomial
// coefficients a_k.
type commitments []*big.Int

// Generate runs a joint Feldman DKG among n nodes with the given threshold
// t (any t shares reconstruct). Every node acts as a dealer: it shares a
// random secret; the group secret is the (never materialized) sum of dealer
// secrets and the public key is the product of the dealers' C_0 values.
func Generate(grp *group.Group, r io.Reader, n, t int) (*Key, error) {
	if n < 1 {
		return nil, fmt.Errorf("dkg: need at least one node, got %d", n)
	}
	if t < 1 || t > n {
		return nil, fmt.Errorf("dkg: threshold %d out of range [1,%d]", t, n)
	}
	shares := make([]*big.Int, n) // accumulated share per node
	for i := range shares {
		shares[i] = new(big.Int)
	}
	pk := big.NewInt(1)
	for dealer := 0; dealer < n; dealer++ {
		// Random polynomial f(z) = a_0 + a_1 z + ... + a_{t-1} z^{t-1}.
		coeffs := make([]*big.Int, t)
		for k := range coeffs {
			a, err := grp.RandScalar(r)
			if err != nil {
				return nil, err
			}
			coeffs[k] = a
		}
		// Feldman commitments.
		comms := make(commitments, t)
		for k, a := range coeffs {
			comms[k] = grp.Exp(a)
		}
		// Deal share f(i) to each node and verify against commitments —
		// the verification is what makes this a VSS rather than plain
		// Shamir; a corrupted dealer would be caught here.
		for i := 1; i <= n; i++ {
			s := evalPoly(coeffs, big.NewInt(int64(i)), grp.Q)
			if !verifyShare(grp, comms, i, s) {
				return nil, fmt.Errorf("dkg: dealer %d produced an invalid share for node %d", dealer, i)
			}
			shares[i-1].Add(shares[i-1], s)
			shares[i-1].Mod(shares[i-1], grp.Q)
		}
		pk = grp.Mul(pk, comms[0])
	}
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{Index: i + 1, Share: shares[i]}
	}
	return &Key{PK: pk, Nodes: nodes, Threshold: t, grp: grp}, nil
}

// evalPoly evaluates the polynomial with the given coefficients at x mod q.
func evalPoly(coeffs []*big.Int, x, q *big.Int) *big.Int {
	// Horner's rule.
	out := new(big.Int)
	for k := len(coeffs) - 1; k >= 0; k-- {
		out.Mul(out, x)
		out.Add(out, coeffs[k])
		out.Mod(out, q)
	}
	return out
}

// verifyShare checks g^s == Π C_k^{i^k}, the Feldman VSS share validity
// equation.
func verifyShare(grp *group.Group, comms commitments, i int, share *big.Int) bool {
	lhs := grp.Exp(share)
	rhs := big.NewInt(1)
	xi := big.NewInt(1)
	bi := big.NewInt(int64(i))
	for _, c := range comms {
		rhs = grp.Mul(rhs, grp.ExpBase(c, xi))
		xi = new(big.Int).Mul(xi, bi)
		// Exponents live mod q.
		xi.Mod(xi, grp.Q)
	}
	return lhs.Cmp(rhs) == 0
}

// PartialDecrypt returns node i's partial decryption C1^{s_i} of the
// ciphertext.
func (k *Key) PartialDecrypt(node Node, ct group.Ciphertext) *big.Int {
	return k.grp.ExpBase(ct.C1, node.Share)
}

// Partial pairs a node index with its partial decryption.
type Partial struct {
	Index int
	Value *big.Int
}

// CombineDecrypt combines at least Threshold partial decryptions into the
// plaintext via Lagrange interpolation in the exponent.
func (k *Key) CombineDecrypt(parts []Partial, ct group.Ciphertext) ([]byte, error) {
	if len(parts) < k.Threshold {
		return nil, fmt.Errorf("dkg: %d partials below threshold %d", len(parts), k.Threshold)
	}
	parts = parts[:k.Threshold]
	seen := map[int]bool{}
	for _, p := range parts {
		if p.Index < 1 || seen[p.Index] {
			return nil, fmt.Errorf("dkg: duplicate or invalid partial index %d", p.Index)
		}
		seen[p.Index] = true
	}
	// shared = Π part_i ^ λ_i where λ_i are Lagrange coefficients at 0.
	shared := big.NewInt(1)
	for _, p := range parts {
		lam := lagrangeAtZero(parts, p.Index, k.grp.Q)
		shared = k.grp.Mul(shared, k.grp.ExpBase(p.Value, lam))
	}
	return k.grp.DecryptWithShared(shared, ct)
}

// lagrangeAtZero computes λ_i = Π_{j≠i} j/(j-i) mod q over the indices in
// parts.
func lagrangeAtZero(parts []Partial, i int, q *big.Int) *big.Int {
	num := big.NewInt(1)
	den := big.NewInt(1)
	bi := big.NewInt(int64(i))
	for _, p := range parts {
		if p.Index == i {
			continue
		}
		bj := big.NewInt(int64(p.Index))
		num.Mul(num, bj)
		num.Mod(num, q)
		diff := new(big.Int).Sub(bj, bi)
		diff.Mod(diff, q)
		den.Mul(den, diff)
		den.Mod(den, q)
	}
	den.ModInverse(den, q)
	out := new(big.Int).Mul(num, den)
	return out.Mod(out, q)
}

// ReconstructSecret recombines the full secret from >= Threshold shares.
// Only used by tests to validate the sharing; the protocol itself never
// calls this.
func (k *Key) ReconstructSecret(nodes []Node) (*big.Int, error) {
	if len(nodes) < k.Threshold {
		return nil, fmt.Errorf("dkg: %d shares below threshold %d", len(nodes), k.Threshold)
	}
	nodes = nodes[:k.Threshold]
	parts := make([]Partial, len(nodes))
	for i, n := range nodes {
		parts[i] = Partial{Index: n.Index}
	}
	secret := new(big.Int)
	for i, n := range nodes {
		lam := lagrangeAtZero(parts, parts[i].Index, k.grp.Q)
		term := new(big.Int).Mul(n.Share, lam)
		secret.Add(secret, term)
		secret.Mod(secret, k.grp.Q)
	}
	return secret, nil
}
