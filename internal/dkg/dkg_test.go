package dkg

import (
	"bytes"
	"testing"

	"github.com/splicer-pcn/splicer/internal/group"
)

func TestGenerateValidation(t *testing.T) {
	g := group.Default()
	if _, err := Generate(g, nil, 0, 1); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, err := Generate(g, nil, 3, 0); err == nil {
		t.Fatal("expected error for t=0")
	}
	if _, err := Generate(g, nil, 3, 4); err == nil {
		t.Fatal("expected error for t>n")
	}
}

func TestThresholdDecryption(t *testing.T) {
	g := group.Default()
	key, err := Generate(g, nil, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("payment demand: Ps -> Pr, 42 tokens")
	ct, err := g.Encrypt(nil, key.PK, msg)
	if err != nil {
		t.Fatal(err)
	}
	// Any 3 nodes decrypt; use nodes 1, 3, 5.
	parts := []Partial{
		{Index: key.Nodes[0].Index, Value: key.PartialDecrypt(key.Nodes[0], ct)},
		{Index: key.Nodes[2].Index, Value: key.PartialDecrypt(key.Nodes[2], ct)},
		{Index: key.Nodes[4].Index, Value: key.PartialDecrypt(key.Nodes[4], ct)},
	}
	got, err := key.CombineDecrypt(parts, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("threshold decryption failed: %q", got)
	}
}

func TestBelowThresholdFails(t *testing.T) {
	g := group.Default()
	key, err := Generate(g, nil, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := g.Encrypt(nil, key.PK, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	parts := []Partial{
		{Index: key.Nodes[0].Index, Value: key.PartialDecrypt(key.Nodes[0], ct)},
		{Index: key.Nodes[1].Index, Value: key.PartialDecrypt(key.Nodes[1], ct)},
	}
	if _, err := key.CombineDecrypt(parts, ct); err == nil {
		t.Fatal("expected error below threshold")
	}
}

func TestDuplicatePartialsRejected(t *testing.T) {
	g := group.Default()
	key, err := Generate(g, nil, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := g.Encrypt(nil, key.PK, []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	p := Partial{Index: key.Nodes[0].Index, Value: key.PartialDecrypt(key.Nodes[0], ct)}
	if _, err := key.CombineDecrypt([]Partial{p, p}, ct); err == nil {
		t.Fatal("expected duplicate-index error")
	}
}

func TestWrongSubsetGarbles(t *testing.T) {
	// Partials from a different ciphertext must not decrypt this one.
	g := group.Default()
	key, err := Generate(g, nil, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("real message")
	ct, err := g.Encrypt(nil, key.PK, msg)
	if err != nil {
		t.Fatal(err)
	}
	other, err := g.Encrypt(nil, key.PK, []byte("other"))
	if err != nil {
		t.Fatal(err)
	}
	parts := []Partial{
		{Index: key.Nodes[0].Index, Value: key.PartialDecrypt(key.Nodes[0], other)},
		{Index: key.Nodes[1].Index, Value: key.PartialDecrypt(key.Nodes[1], other)},
	}
	got, err := key.CombineDecrypt(parts, ct)
	if err != nil {
		// Rejection is also acceptable (shared secret off-group is not
		// possible here, but garbled output is the norm).
		return
	}
	if bytes.Equal(got, msg) {
		t.Fatal("mismatched partials decrypted the message")
	}
}

func TestReconstructSecretMatchesPK(t *testing.T) {
	g := group.Default()
	key, err := Generate(g, nil, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct from nodes {2,4,5} and check G^secret == PK.
	secret, err := key.ReconstructSecret([]Node{key.Nodes[1], key.Nodes[3], key.Nodes[4]})
	if err != nil {
		t.Fatal(err)
	}
	if g.Exp(secret).Cmp(key.PK) != 0 {
		t.Fatal("reconstructed secret does not match public key")
	}
	// A different subset reconstructs the same secret.
	secret2, err := key.ReconstructSecret([]Node{key.Nodes[0], key.Nodes[1], key.Nodes[2]})
	if err != nil {
		t.Fatal(err)
	}
	if secret.Cmp(secret2) != 0 {
		t.Fatal("different subsets reconstructed different secrets")
	}
}

func TestReconstructBelowThreshold(t *testing.T) {
	g := group.Default()
	key, err := Generate(g, nil, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := key.ReconstructSecret(key.Nodes[:2]); err == nil {
		t.Fatal("expected error below threshold")
	}
}

func TestSingleNodeDKG(t *testing.T) {
	// Degenerate ι=1 committee still produces a working key.
	g := group.Default()
	key, err := Generate(g, nil, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("solo")
	ct, err := g.Encrypt(nil, key.PK, msg)
	if err != nil {
		t.Fatal(err)
	}
	parts := []Partial{{Index: 1, Value: key.PartialDecrypt(key.Nodes[0], ct)}}
	got, err := key.CombineDecrypt(parts, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("single-node DKG failed")
	}
}

func TestFreshKeysDiffer(t *testing.T) {
	// Each payment gets a fresh (pk, sk): two runs must differ.
	g := group.Default()
	k1, err := Generate(g, nil, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Generate(g, nil, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if k1.PK.Cmp(k2.PK) == 0 {
		t.Fatal("two DKG runs produced the same public key")
	}
}
