// Snapshot publication points. A serving deployment (internal/serve) wraps
// a live Network whose writers — the dynamics driver's churn, online
// re-placement, top-ups — keep mutating the topology, while query workers
// read pinned epoch snapshots (graph.SnapshotStore). Publication rides the
// existing invalidation contract: every mutation of the routed topology
// already funnels through InvalidateRoutes, so enabling snapshots simply
// makes that call also publish the next epoch. A network that never calls
// EnableSnapshots (every batch experiment) carries a nil store and pays
// nothing — the golden panels cannot move.

package pcn

import "github.com/splicer-pcn/splicer/internal/graph"

// EnableSnapshots attaches an epoch-snapshot store to the network and
// publishes the first epoch. From then on every topology invalidation
// (channel open/close, top-up, reshape, re-placement) publishes the next
// epoch atomically; readers use Snapshots().Acquire / Release. The label
// roots follow the network's hub/label-seed set across re-placements.
// Idempotent; returns the store.
func (n *Network) EnableSnapshots() *graph.SnapshotStore {
	if n.snapshots == nil {
		n.snapshots = graph.NewSnapshotStore(n.labelRoots())
		n.snapRootGen = n.rootGen
		n.snapshots.Publish(n.g, true)
	}
	return n.snapshots
}

// Snapshots returns the epoch store, or nil when EnableSnapshots was never
// called (batch mode).
func (n *Network) Snapshots() *graph.SnapshotStore { return n.snapshots }

// PublishSnapshot forces a fresh epoch reflecting the current topology AND
// capacities. The automatic publication on InvalidateRoutes lets
// capacity-only deltas share the current epoch (gossip-stale balances are
// fine for routing); a serving deployment that wants a hard refresh — e.g.
// on a balance-gossip tick — calls this. No-op (0, false) without a store.
func (n *Network) PublishSnapshot() (uint64, bool) {
	if n.snapshots == nil {
		return 0, false
	}
	n.syncSnapshotRoots()
	return n.snapshots.Publish(n.g, true)
}

// publishSnapshot is the InvalidateRoutes hook: publish the next epoch if a
// store is attached, forcing when the label-root set changed (a re-placement
// must re-label even on an unchanged graph shape).
func (n *Network) publishSnapshot() {
	if n.snapshots == nil {
		return
	}
	force := n.syncSnapshotRoots()
	n.snapshots.Publish(n.g, force)
}

// syncSnapshotRoots pushes the network's current label roots into the store
// when they changed, reporting whether they did.
func (n *Network) syncSnapshotRoots() bool {
	if n.snapRootGen == n.rootGen {
		return false
	}
	n.snapshots.SetRoots(n.labelRoots())
	n.snapRootGen = n.rootGen
	return true
}

// labelRoots is the snapshot-label root set: hubs plus policy-registered
// seeds, the same roots HubLabels uses.
func (n *Network) labelRoots() []graph.NodeID {
	roots := make([]graph.NodeID, 0, len(n.hubs)+len(n.labelSeeds))
	roots = append(roots, n.hubs...)
	roots = append(roots, n.labelSeeds...)
	return roots
}
