package pcn

import (
	"math"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/topology"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// a2lPolicy is the single-tumbler payment-channel-hub protocol: every
// payment routes atomically through one hub, whose cryptographic
// puzzle-promise exchange is serialized and epoch-aligned.
type a2lPolicy struct{ basePolicy }

// Setup elects the best-connected node as the tumbler, manages every client
// under it, reshapes to the star topology and capitalizes the hub.
func (a2lPolicy) Setup(n *Network) error {
	hub := topology.TopDegreeNodes(n.g, 1)[0]
	n.SetHubs([]graph.NodeID{hub})
	for i := 0; i < n.g.NumNodes(); i++ {
		n.SetManagingHub(graph.NodeID(i), hub)
	}
	n.ReshapeMultiStar()
	n.CapitalizeHubs()
	return nil
}

// ComputeOwner: the tumbler performs the per-payment cryptographic protocol.
// A departed tumbler (dynamic churn) is A2L's single point of failure: the
// sender burns the protocol delay locally before discovering there is no
// hub to route through.
func (a2lPolicy) ComputeOwner(n *Network, tx workload.Tx) (graph.NodeID, float64) {
	if len(n.hubs) == 0 {
		return tx.Sender, n.cfg.A2LCryptoDelay
	}
	return n.hubs[0], n.cfg.A2LCryptoDelay
}

// AlignDispatch: the tumbler's puzzle-promise protocol runs in epochs
// aligned to the update interval: payments wait for the next epoch boundary
// before the crypto exchange starts. This is why A2L's TSR is the most
// sensitive to the update time in Figs. 7(c)/8(c).
func (a2lPolicy) AlignDispatch(n *Network, free float64) float64 {
	tau := n.cfg.UpdateTau
	epoch := math.Ceil(free/tau) * tau
	if epoch > free {
		return epoch
	}
	return free
}

// Plan routes the whole payment through the single tumbler hub in one atomic
// piece, as the PCH protocol requires.
func (a2lPolicy) Plan(n *Network, tx workload.Tx) ([]graph.Path, []Allocation, error) {
	if len(n.hubs) == 0 {
		return nil, nil, nil // tumbler departed: no route for anyone
	}
	hub := n.hubs[0]
	key := RouteKey{Src: tx.Sender, Dst: tx.Recipient, Type: ComposedRoutes, K: 1}
	paths, err := n.planRoutes(key, func() ([]graph.Path, error) {
		// Unit-weight queries (UnitShortestPath is bit-identical to
		// ShortestPath with UnitWeight), so the hub→recipient leg is served
		// from the label tier when the override is on.
		if hub == tx.Sender || hub == tx.Recipient {
			if p, found := n.unitShortestPath(tx.Sender, tx.Recipient); found {
				return []graph.Path{p}, nil
			}
			return nil, nil
		}
		p1, ok1 := n.unitShortestPath(tx.Sender, hub)
		p2, ok2 := n.unitShortestPath(hub, tx.Recipient)
		if !ok1 || !ok2 {
			return nil, nil
		}
		return []graph.Path{concatPaths(p1, p2)}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	if len(paths) == 0 {
		return nil, nil, nil
	}
	return paths, []Allocation{{PathIdx: 0, Value: tx.Value}}, nil
}

// SpeculationSafe marks Plan as a pure function of the routed topology
// (static capacities, hub assignments, config, endpoints), so it may run
// speculatively on a planning worker (see SpeculativePlanner).
func (p *a2lPolicy) SpeculationSafe() bool { return true }
