package pcn

import (
	"testing"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/routing"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// TestA2LTauSensitivity checks the Fig. 7(c)/8(c) mechanism: A2L's
// epoch-batched tumbler protocol makes its TSR degrade as the update time
// grows, unlike Splicer.
func TestA2LTauSensitivity(t *testing.T) {
	g, trace := testGraphAndTrace(t, 91, 60, 60, 5)
	run := func(tau float64) Result {
		cfg := NewConfig(SchemeA2L)
		cfg.UpdateTau = tau
		n, err := NewNetwork(g.Clone(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := n.Run(trace)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := run(0.1)
	slow := run(1.0)
	t.Logf("A2L TSR: tau=100ms %.3f, tau=1000ms %.3f", fast.TSR, slow.TSR)
	if slow.TSR > fast.TSR+0.01 {
		t.Fatalf("A2L improved with larger tau: %.3f -> %.3f", fast.TSR, slow.TSR)
	}
}

// TestSplicerTauStability checks the paper's claim that Splicer's TSR stays
// high as the update time grows.
func TestSplicerTauStability(t *testing.T) {
	g, trace := testGraphAndTrace(t, 93, 60, 60, 5)
	for _, tau := range []float64{0.2, 1.0} {
		cfg := NewConfig(SchemeSplicer)
		cfg.UpdateTau = tau
		n, err := NewNetwork(g.Clone(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := n.Run(trace)
		if err != nil {
			t.Fatal(err)
		}
		if res.TSR < 0.8 {
			t.Fatalf("Splicer TSR %.3f at tau=%v below 0.8", res.TSR, tau)
		}
	}
}

// TestFlashElephantMultiPath crafts a payment too large for any single
// path's bottleneck but coverable by the max-flow: Flash must complete it.
func TestFlashElephantMultiPath(t *testing.T) {
	// Diamond with two 30-capacity routes: a 50-token elephant needs both.
	g := graph.New(4)
	mk := func(u, v graph.NodeID) {
		if _, err := g.AddEdge(u, v, 30, 30); err != nil {
			t.Fatal(err)
		}
	}
	mk(0, 1)
	mk(1, 3)
	mk(0, 2)
	mk(2, 3)
	cfg := NewConfig(SchemeFlash)
	n, err := NewNetwork(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	trace := []workload.Tx{{
		ID: 0, Sender: 0, Recipient: 3, Value: 50, Arrival: 0.1, Deadline: 3.1,
	}}
	res, err := n.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatalf("elephant not completed: %+v", res)
	}
}

// TestSingleShortestPathCannotCarryElephant is the contrast case: the naive
// baseline fails the same payment because no single path carries it.
func TestSingleShortestPathCannotCarryElephant(t *testing.T) {
	g := graph.New(4)
	mk := func(u, v graph.NodeID) {
		if _, err := g.AddEdge(u, v, 30, 30); err != nil {
			t.Fatal(err)
		}
	}
	mk(0, 1)
	mk(1, 3)
	mk(0, 2)
	mk(2, 3)
	n, err := NewNetwork(g, NewConfig(SchemeShortestPath))
	if err != nil {
		t.Fatal(err)
	}
	trace := []workload.Tx{{
		ID: 0, Sender: 0, Recipient: 3, Value: 50, Arrival: 0.1, Deadline: 3.1,
	}}
	res, err := n.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 {
		t.Fatal("naive single-path routing carried a payment above every bottleneck")
	}
}

// TestSplicerLargePaymentViaTUs shows the paper's "support large
// transactions" property: Splicer splits the same elephant into TUs over
// multiple paths and completes it where the naive scheme cannot.
func TestSplicerLargePaymentViaTUs(t *testing.T) {
	g := graph.New(4)
	mk := func(u, v graph.NodeID) {
		if _, err := g.AddEdge(u, v, 30, 30); err != nil {
			t.Fatal(err)
		}
	}
	mk(0, 1)
	mk(1, 3)
	mk(0, 2)
	mk(2, 3)
	cfg := NewConfig(SchemeSplicer)
	cfg.Hubs = []graph.NodeID{1, 2}
	cfg.HubCapitalBoost = 1 // keep the crafted capacities meaningful
	n, err := NewNetwork(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	trace := []workload.Tx{{
		ID: 0, Sender: 0, Recipient: 3, Value: 50, Arrival: 0.1, Deadline: 3.1,
	}}
	res, err := n.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatalf("Splicer failed the large payment: %+v", res)
	}
}

// TestPathTypeConfigRespected ensures the Table II path-type knob reaches
// the hub-to-hub path computation.
func TestPathTypeConfigRespected(t *testing.T) {
	g, trace := testGraphAndTrace(t, 95, 50, 30, 3)
	for _, pt := range []routing.PathType{routing.KSP, routing.Heuristic, routing.EDW, routing.EDS} {
		cfg := NewConfig(SchemeSplicer)
		cfg.PathType = pt
		n, err := NewNetwork(g.Clone(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := n.Run(trace)
		if err != nil {
			t.Fatalf("%v: %v", pt, err)
		}
		if res.Completed == 0 {
			t.Fatalf("%v: nothing completed", pt)
		}
	}
}

// TestFeesAccrueOnlyWithPrices verifies fee accounting: fees are the
// T_fee-scaled routing prices, so they only accrue once prices move.
func TestFeesAccrueOnlyWithPrices(t *testing.T) {
	g, trace := testGraphAndTrace(t, 97, 50, 60, 5)
	cfg := NewConfig(SchemeSplicer)
	cfg.Kappa = 0
	cfg.Eta = 0 // prices pinned at zero
	n, err := NewNetwork(g.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFees != 0 {
		t.Fatalf("fees %v accrued with zero price steps", res.TotalFees)
	}
}
