package pcn

import (
	"math"
	"reflect"
	"testing"
)

// TestRoutingOverrideEquivalence pins the RoutingOverride contract: the
// hub-label tier serves byte-identical paths, so flipping the override
// must not move ANY simulation output — the whole Result (success ratio,
// throughput, delays, fees, imbalance, even the route-cache counters) is
// compared field for field.
func TestRoutingOverrideEquivalence(t *testing.T) {
	for _, scheme := range []Scheme{SchemeSplicer, SchemeLandmark, SchemeA2L} {
		run := func(override RoutingOverride) (Result, *Network) {
			g, trace := testGraphAndTrace(t, 33, 60, 40, 5)
			cfg := NewConfig(scheme)
			cfg.RoutingOverride = override
			n, err := NewNetwork(g, cfg)
			if err != nil {
				t.Fatalf("%v/%v: %v", scheme, override, err)
			}
			res, err := n.Run(trace)
			if err != nil {
				t.Fatalf("%v/%v: %v", scheme, override, err)
			}
			return res, n
		}
		exact, _ := run(RoutingExact)
		labeled, n := run(RoutingHubLabels)

		hl := n.HubLabels()
		if hl == nil {
			t.Fatalf("%v: label tier not installed under RoutingHubLabels", scheme)
		}
		if st := hl.Stats(); st.Served == 0 {
			t.Fatalf("%v: label tier never served a query: %+v", scheme, st)
		}
		if labeled.LabelServed == 0 || labeled.LabelBuilds == 0 {
			t.Fatalf("%v: label counters missing from Result: %+v", scheme, labeled)
		}
		if got := n.Metrics().Counter("label_served"); got != float64(labeled.LabelServed) {
			t.Fatalf("%v: metrics label_served %v != Result %d", scheme, got, labeled.LabelServed)
		}

		// Everything except the label-activity fields must match exactly.
		// (NaN means "no samples"; NaN != NaN, so matched NaNs are zeroed.)
		labeled.LabelServed, labeled.LabelFallbacks = 0, 0
		labeled.LabelBuilds, labeled.LabelRepairs = 0, 0
		if math.IsNaN(exact.MeanDelay) && math.IsNaN(labeled.MeanDelay) {
			exact.MeanDelay, labeled.MeanDelay = 0, 0
		}
		if math.IsNaN(exact.MeanQueueDelay) && math.IsNaN(labeled.MeanQueueDelay) {
			exact.MeanQueueDelay, labeled.MeanQueueDelay = 0, 0
		}
		if !reflect.DeepEqual(exact, labeled) {
			t.Fatalf("%v: results diverge under hub-label routing:\nexact   %+v\nlabeled %+v", scheme, exact, labeled)
		}
	}
}

// TestRoutingOverrideValidation pins that an out-of-range override is
// rejected up front rather than silently treated as exact.
func TestRoutingOverrideValidation(t *testing.T) {
	cfg := NewConfig(SchemeSplicer)
	cfg.RoutingOverride = RoutingOverride(7)
	if err := cfg.Validate(); err == nil {
		t.Fatal("invalid RoutingOverride accepted")
	}
	if RoutingExact.String() != "exact" || RoutingHubLabels.String() != "hub-labels" {
		t.Fatalf("override names changed: %v %v", RoutingExact, RoutingHubLabels)
	}
}
