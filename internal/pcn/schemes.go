package pcn

import (
	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/routing"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// planPayment computes the path set and the per-TU allocations for a
// payment under the configured scheme. An allocation with pathIdx == -1 is
// assigned to a path at send time by the rate controller.
func (n *Network) planPayment(tx workload.Tx) ([]graph.Path, []allocation, error) {
	switch n.cfg.Scheme {
	case SchemeSplicer:
		return n.planSplicer(tx)
	case SchemeSpider:
		return n.planSpider(tx)
	case SchemeFlash:
		return n.planFlash(tx)
	case SchemeLandmark:
		return n.planLandmark(tx)
	case SchemeA2L:
		return n.planA2L(tx)
	case SchemeShortestPath:
		return n.planShortestPath(tx)
	default:
		return nil, nil, errUnknownScheme
	}
}

var errUnknownScheme = errString("pcn: unknown scheme")

type errString string

func (e errString) Error() string { return string(e) }

// planSplicer routes via the sender's and recipient's managing hubs: access
// segment s→hub(s), k hub-to-hub paths of the configured path type, access
// segment hub(r)→r. Demands split into Min/Max-TU bounded units whose paths
// the rate controller assigns dynamically.
func (n *Network) planSplicer(tx workload.Tx) ([]graph.Path, []allocation, error) {
	pair := pairKey{tx.Sender, tx.Recipient}
	paths, ok := n.pathsFor[pair]
	if !ok {
		hubS := n.managingHub(tx.Sender)
		hubR := n.managingHub(tx.Recipient)
		if hubS == hubR {
			// Both endpoints are managed by the same hub: the hub computes
			// k multi-paths directly between its clients.
			var err error
			paths, err = routing.SelectPaths(n.g, tx.Sender, tx.Recipient, n.cfg.NumPaths, n.cfg.PathType)
			if err != nil {
				return nil, nil, err
			}
		} else {
			prefix, okP := n.accessPath(tx.Sender, hubS)
			suffix, okS := n.accessPath(hubR, tx.Recipient)
			if !okP || !okS {
				return nil, nil, nil
			}
			middles, err := routing.SelectPaths(n.g, hubS, hubR, n.cfg.NumPaths, n.cfg.PathType)
			if err != nil {
				return nil, nil, err
			}
			for _, mid := range middles {
				paths = append(paths, concatPaths(prefix, mid, suffix))
			}
		}
		n.pathsFor[pair] = paths
	}
	if len(paths) == 0 {
		return nil, nil, nil
	}
	tus, err := routing.SplitDemand(tx.Value, n.cfg.MinTU, n.cfg.MaxTU)
	if err != nil {
		return nil, nil, err
	}
	allocs := make([]allocation, len(tus))
	for i, v := range tus {
		allocs[i] = allocation{pathIdx: -1, value: v}
	}
	return paths, allocs, nil
}

// managingHub returns the hub handling a node's payments (the node itself
// when it is a hub).
func (n *Network) managingHub(v graph.NodeID) graph.NodeID {
	if n.isHub[v] {
		return v
	}
	if h, ok := n.hubOf[v]; ok {
		return h
	}
	return v
}

// accessPath returns the shortest path between a client and its hub (or a
// trivial path when they coincide).
func (n *Network) accessPath(from, to graph.NodeID) (graph.Path, bool) {
	if from == to {
		return graph.Path{Nodes: []graph.NodeID{from}}, true
	}
	return n.g.ShortestPath(from, to, graph.UnitWeight)
}

// concatPaths joins a→b, b→c, c→d walks sharing their junction nodes.
func concatPaths(parts ...graph.Path) graph.Path {
	var out graph.Path
	for _, p := range parts {
		if len(p.Nodes) == 0 {
			continue
		}
		if len(out.Nodes) == 0 {
			out.Nodes = append(out.Nodes, p.Nodes...)
			out.Edges = append(out.Edges, p.Edges...)
			continue
		}
		// Junction node appears at the end of out and the start of p.
		out.Nodes = append(out.Nodes, p.Nodes[1:]...)
		out.Edges = append(out.Edges, p.Edges...)
	}
	return out
}

// planSpider is multi-path source routing with packetization: k paths
// directly between sender and recipient, TU splitting, window congestion
// control — but no capacity/imbalance price coordination (that is Splicer's
// addition) and the route computation runs on the sender's machine.
func (n *Network) planSpider(tx workload.Tx) ([]graph.Path, []allocation, error) {
	pair := pairKey{tx.Sender, tx.Recipient}
	paths, ok := n.pathsFor[pair]
	if !ok {
		var err error
		paths, err = routing.SelectPaths(n.g, tx.Sender, tx.Recipient, n.cfg.NumPaths, routing.EDW)
		if err != nil {
			return nil, nil, err
		}
		n.pathsFor[pair] = paths
	}
	if len(paths) == 0 {
		return nil, nil, nil
	}
	tus, err := routing.SplitDemand(tx.Value, n.cfg.MinTU, n.cfg.MaxTU)
	if err != nil {
		return nil, nil, err
	}
	allocs := make([]allocation, len(tus))
	for i, v := range tus {
		allocs[i] = allocation{pathIdx: -1, value: v}
	}
	return paths, allocs, nil
}

// planFlash implements Flash's elephant/mice split: large payments run a
// modified max-flow on current spendable balances and send along the flow
// decomposition; small payments pick one of a few precomputed shortest
// paths at random.
func (n *Network) planFlash(tx workload.Tx) ([]graph.Path, []allocation, error) {
	if tx.Value > n.cfg.FlashElephantThreshold {
		// Plan on the τ-stale gossip snapshot when available: source
		// routers only learn balances from the periodic gossip. The live
		// view is used solely before the first refresh tick.
		view := n.flashView
		if view == nil {
			view = n.balanceView()
		}
		total, flows := view.MaxFlow(tx.Sender, tx.Recipient, tx.Value)
		if total < tx.Value-1e-9 {
			return nil, nil, nil // insufficient flow: payment infeasible now
		}
		paths := make([]graph.Path, len(flows))
		allocs := make([]allocation, len(flows))
		for i, fp := range flows {
			paths[i] = fp.Path
			allocs[i] = allocation{pathIdx: i, value: fp.Amount}
		}
		return paths, allocs, nil
	}
	pair := pairKey{tx.Sender, tx.Recipient}
	paths, ok := n.flashMice[pair]
	if !ok {
		paths = n.g.KShortestPaths(tx.Sender, tx.Recipient, n.cfg.FlashMicePaths, graph.UnitWeight)
		n.flashMice[pair] = paths
	}
	if len(paths) == 0 {
		return nil, nil, nil
	}
	idx := int(n.nextTUID) % len(paths)
	return paths, []allocation{{pathIdx: idx, value: tx.Value}}, nil
}

// balanceView snapshots the channels' current spendable balances into a
// graph for max-flow computation.
func (n *Network) balanceView() *graph.Graph {
	view := graph.New(n.g.NumNodes())
	for _, ch := range n.chans {
		if _, err := view.AddEdge(ch.U, ch.V, ch.Balance(0), ch.Balance(1)); err != nil {
			panic(err) // mirrors a valid existing edge
		}
	}
	return view
}

// planLandmark routes through each landmark: path_i = s→lm_i→r, splitting
// the value evenly across the landmarks reachable from both ends.
func (n *Network) planLandmark(tx workload.Tx) ([]graph.Path, []allocation, error) {
	var paths []graph.Path
	for _, lm := range n.landmarks {
		if lm == tx.Sender || lm == tx.Recipient {
			if p, ok := n.g.ShortestPath(tx.Sender, tx.Recipient, graph.UnitWeight); ok {
				paths = append(paths, p)
			}
			continue
		}
		p1, ok1 := n.g.ShortestPath(tx.Sender, lm, graph.UnitWeight)
		p2, ok2 := n.g.ShortestPath(lm, tx.Recipient, graph.UnitWeight)
		if ok1 && ok2 {
			paths = append(paths, concatPaths(p1, p2))
		}
	}
	if len(paths) == 0 {
		return nil, nil, nil
	}
	share := tx.Value / float64(len(paths))
	allocs := make([]allocation, len(paths))
	for i := range paths {
		allocs[i] = allocation{pathIdx: i, value: share}
	}
	return paths, allocs, nil
}

// planA2L routes the whole payment through the single tumbler hub in one
// atomic piece, as the PCH protocol requires.
func (n *Network) planA2L(tx workload.Tx) ([]graph.Path, []allocation, error) {
	hub := n.hubs[0]
	pair := pairKey{tx.Sender, tx.Recipient}
	paths, ok := n.pathsFor[pair]
	if !ok {
		if hub == tx.Sender || hub == tx.Recipient {
			if p, found := n.g.ShortestPath(tx.Sender, tx.Recipient, graph.UnitWeight); found {
				paths = []graph.Path{p}
			}
		} else {
			p1, ok1 := n.g.ShortestPath(tx.Sender, hub, graph.UnitWeight)
			p2, ok2 := n.g.ShortestPath(hub, tx.Recipient, graph.UnitWeight)
			if ok1 && ok2 {
				paths = []graph.Path{concatPaths(p1, p2)}
			}
		}
		n.pathsFor[pair] = paths
	}
	if len(paths) == 0 {
		return nil, nil, nil
	}
	return paths, []allocation{{pathIdx: 0, value: tx.Value}}, nil
}

// planShortestPath is the naive single-path HTLC baseline.
func (n *Network) planShortestPath(tx workload.Tx) ([]graph.Path, []allocation, error) {
	p, ok := n.g.ShortestPath(tx.Sender, tx.Recipient, graph.UnitWeight)
	if !ok {
		return nil, nil, nil
	}
	return []graph.Path{p}, []allocation{{pathIdx: 0, value: tx.Value}}, nil
}
