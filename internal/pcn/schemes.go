// Scheme-agnostic routing helpers shared by the SchemePolicy
// implementations (policy_*.go). Scheme-specific planning itself lives in
// the policies; nothing here branches on the scheme.

package pcn

import (
	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/routing"
)

// splitAllocations splits a demand into Min/Max-TU bounded units left for
// the rate controller to place (PathIdx == -1).
func splitAllocations(value, minTU, maxTU float64) ([]Allocation, error) {
	tus, err := routing.SplitDemand(value, minTU, maxTU)
	if err != nil {
		return nil, err
	}
	allocs := make([]Allocation, len(tus))
	for i, v := range tus {
		allocs[i] = Allocation{PathIdx: -1, Value: v}
	}
	return allocs, nil
}

// managingHub returns the hub handling a node's payments (the node itself
// when it is a hub).
func (n *Network) managingHub(v graph.NodeID) graph.NodeID {
	if n.isHub[v] {
		return v
	}
	if h, ok := n.hubOf[v]; ok {
		return h
	}
	return v
}

// accessPath returns the shortest path between a client and its hub (or a
// trivial path when they coincide).
func (n *Network) accessPath(from, to graph.NodeID) (graph.Path, bool) {
	if from == to {
		return graph.Path{Nodes: []graph.NodeID{from}}, true
	}
	return n.unitShortestPath(from, to)
}

// concatPaths joins a→b, b→c, c→d walks sharing their junction nodes.
func concatPaths(parts ...graph.Path) graph.Path {
	var out graph.Path
	for _, p := range parts {
		if len(p.Nodes) == 0 {
			continue
		}
		if len(out.Nodes) == 0 {
			out.Nodes = append(out.Nodes, p.Nodes...)
			out.Edges = append(out.Edges, p.Edges...)
			continue
		}
		// Junction node appears at the end of out and the start of p.
		out.Nodes = append(out.Nodes, p.Nodes[1:]...)
		out.Edges = append(out.Edges, p.Edges...)
	}
	return out
}

// RefreshBalanceView brings a previously built balance view up to date. While
// the live topology's shape is unchanged since the view was built (*shape
// still matches — the common case between gossip rounds), the channel ids in
// the view are aligned with n.chans, so only the capacities are rewritten in
// place: no graph rebuild, no allocations. On a shape change (channel
// open/close, node churn) it falls back to a fresh BalanceView. The returned
// view is value-identical to BalanceView() either way.
func (n *Network) RefreshBalanceView(view *graph.Graph, shape *uint64) *graph.Graph {
	if view == nil || *shape != n.g.Mutations() {
		*shape = n.g.Mutations()
		return n.BalanceView()
	}
	for i, ch := range n.chans {
		fwd, rev := ch.Balance(0), ch.Balance(1)
		if ch.Closed() {
			fwd, rev = 0, 0
		}
		view.SetCapacity(graph.EdgeID(i), fwd, rev)
	}
	return view
}

// BalanceView snapshots the channels' current spendable balances into a
// graph for max-flow computation. Closed channels appear as zero-capacity
// edges rather than being skipped: the view's edge IDs must stay aligned
// with the network's (flow decompositions come back as paths whose edges
// index n.chans), and zero-capacity arcs carry no flow.
func (n *Network) BalanceView() *graph.Graph {
	view := graph.New(n.g.NumNodes())
	for _, ch := range n.chans {
		fwd, rev := ch.Balance(0), ch.Balance(1)
		if ch.Closed() {
			fwd, rev = 0, 0
		}
		if _, err := view.AddEdge(ch.U, ch.V, fwd, rev); err != nil {
			panic(err) // mirrors a valid existing edge
		}
	}
	return view
}
