package pcn

import (
	"fmt"
	"testing"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/rng"
	"github.com/splicer-pcn/splicer/internal/topology"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// widestPolicy is a custom scheme that is NOT registered: it always routes
// on the single shortest path but pretends to be a distinct scheme. It
// exercises the Config.Policy injection point.
type widestPolicy struct{ basePolicy }

func (widestPolicy) Plan(n *Network, tx workload.Tx) ([]graph.Path, []Allocation, error) {
	p, ok := n.g.ShortestPath(tx.Sender, tx.Recipient, graph.UnitWeight)
	if !ok {
		return nil, nil, nil
	}
	return []graph.Path{p}, []Allocation{{PathIdx: 0, Value: tx.Value}}, nil
}

func policyTestNetwork(t *testing.T, cfg Config) (*Network, []workload.Tx) {
	t.Helper()
	src := rng.New(7)
	g, err := topology.WattsStrogatz(src.Split(1), 40, 4, 0.2, func() (float64, float64) { return 300, 300 })
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]graph.NodeID, g.NumNodes())
	for i := range clients {
		clients[i] = graph.NodeID(i)
	}
	trace, err := workload.Generate(src.Split(2), workload.Config{
		Clients: clients, Rate: 40, Duration: 2, Timeout: 3,
		ZipfSkew: 0.8, ValueScale: 1, CirculationFraction: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNetwork(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n, trace
}

// TestCustomPolicyInjection: a SchemePolicy supplied via Config.Policy runs
// through the full payment lifecycle without being registered.
func TestCustomPolicyInjection(t *testing.T) {
	const customScheme = Scheme(100)
	cfg := NewConfig(SchemeShortestPath)
	cfg.Scheme = customScheme // deliberately unregistered
	cfg.Policy = &widestPolicy{basePolicy{customScheme}}
	n, trace := policyTestNetwork(t, cfg)
	res, err := n.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != customScheme {
		t.Fatalf("Result.Scheme = %v, want %v", res.Scheme, customScheme)
	}
	if res.Completed == 0 {
		t.Fatal("custom policy completed no payments")
	}
	if got := res.Scheme.String(); got != "Scheme(100)" {
		t.Fatalf("unregistered scheme name = %q", got)
	}
}

// TestCustomPolicyMatchesEquivalentBuiltin: the injected shortest-path clone
// must behave exactly like the built-in ShortestPath policy — the lifecycle
// may not treat registered and injected policies differently.
func TestCustomPolicyMatchesEquivalentBuiltin(t *testing.T) {
	run := func(cfg Config) Result {
		n, trace := policyTestNetwork(t, cfg)
		res, err := n.Run(trace)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	builtin := run(NewConfig(SchemeShortestPath))
	custom := NewConfig(SchemeShortestPath)
	custom.Policy = &widestPolicy{basePolicy{SchemeShortestPath}}
	injected := run(custom)
	// The route-computation counters are policy-implementation detail (the
	// builtin plans through the RouteCache, the clone calls the graph
	// directly), not lifecycle behavior — exclude them from the comparison.
	builtin.RouteCacheHits, builtin.RouteCacheMisses = 0, 0
	injected.RouteCacheHits, injected.RouteCacheMisses = 0, 0
	// Compare formatted: NaN metrics (no queueing under this scheme) must
	// compare equal to themselves.
	b, i := fmt.Sprintf("%+v", builtin), fmt.Sprintf("%+v", injected)
	if b != i {
		t.Fatalf("injected policy diverged from builtin:\nbuiltin:  %s\ninjected: %s", b, i)
	}
}

// TestValidateRejectsUnregisteredScheme: without a Policy override, an
// unregistered scheme id must fail validation.
func TestValidateRejectsUnregisteredScheme(t *testing.T) {
	cfg := NewConfig(SchemeSplicer)
	cfg.Scheme = Scheme(100)
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted unregistered scheme without a Policy")
	}
	cfg.Policy = &widestPolicy{basePolicy{Scheme(100)}}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate rejected config with explicit Policy: %v", err)
	}
}

// TestRegistryCoversBuiltins: every built-in scheme resolves to a policy
// whose Scheme() round-trips.
func TestRegistryCoversBuiltins(t *testing.T) {
	for _, s := range registeredSchemes() {
		p, err := policyFor(s)
		if err != nil {
			t.Fatalf("policyFor(%v): %v", s, err)
		}
		if p.Scheme() != s {
			t.Fatalf("policyFor(%v).Scheme() = %v", s, p.Scheme())
		}
	}
	if len(registeredSchemes()) < 6 {
		t.Fatalf("expected ≥6 registered schemes, got %d", len(registeredSchemes()))
	}
}
