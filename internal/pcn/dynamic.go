// Dynamic-network mutators: the live-topology operations the
// internal/dynamics driver applies mid-run — channel opens/closes/top-ups,
// node arrivals/departures, and online hub re-placement. Every mutation of
// the routed topology ends in InvalidateRoutes, extending the RouteCache
// invalidation contract to dynamic mutations.
//
// Every mutator additionally brackets itself with pauseSpeculation/
// resumeSpeculation (a nil check when no speculative planning pool is
// armed): the pool's workers read the graph, the hub maps and the route
// caches concurrently, so mutations must quiesce in-flight plans first (see
// speculate.go). The pairs nest, covering DepartNode→CloseChannel and
// RePlaceHubs→ReshapeMultiStar/CapitalizeHubs.

package pcn

import (
	"fmt"

	"github.com/splicer-pcn/splicer/internal/channel"
	"github.com/splicer-pcn/splicer/internal/graph"
)

// OpenChannel opens a new channel between two active nodes mid-run, funded
// with fundU on u's side and fundV on v's side. The graph edge and the live
// channel are created in lockstep so EdgeID-indexed state stays aligned.
func (n *Network) OpenChannel(u, v graph.NodeID, fundU, fundV float64) (graph.EdgeID, error) {
	if n.departed[u] || n.departed[v] {
		return 0, fmt.Errorf("pcn: open %d-%d: endpoint departed", u, v)
	}
	if fundU < 0 || fundV < 0 {
		return 0, fmt.Errorf("pcn: open %d-%d: negative funding", u, v)
	}
	n.pauseSpeculation()
	defer n.resumeSpeculation()
	eid, err := n.g.AddEdge(u, v, fundU, fundV)
	if err != nil {
		return 0, err
	}
	ch, err := channel.New(eid, u, v, fundU, fundV)
	if err != nil {
		panic(err) // funds validated above
	}
	ch.QueueLimit = n.cfg.QueueLimit
	ch.MaxInFlight = n.cfg.MaxInFlightTUs
	n.chans = append(n.chans, ch)
	if len(n.chans) != n.g.NumEdges() {
		panic("pcn: channel array diverged from graph edges")
	}
	n.recordCapital(fundU + fundV)
	n.InvalidateRoutes()
	return eid, nil
}

// CloseChannel closes a channel mid-run: the edge leaves the topology, the
// channel stops accepting new locks, and every queued TU aborts. Funds
// locked in flight remain settleable/refundable (the HTLC is on-chain
// enforceable through the closing transaction), so in-transit payments
// crossing the channel complete or unwind normally.
func (n *Network) CloseChannel(id graph.EdgeID) error {
	if int(id) < 0 || int(id) >= len(n.chans) {
		return fmt.Errorf("pcn: close of unknown channel %d", id)
	}
	ch := n.chans[id]
	if ch.Closed() {
		return fmt.Errorf("pcn: channel %d already closed", id)
	}
	n.pauseSpeculation()
	defer n.resumeSpeculation()
	if err := n.g.RemoveEdge(id); err != nil {
		return err
	}
	// Close before unwinding the queues: aborting a TU can cascade (sibling
	// aborts, queue drains on refunded channels) into fresh forwarding
	// attempts that must already see the channel as unusable.
	ch.Close()
	for _, dir := range []channel.Direction{channel.Fwd, channel.Rev} {
		for _, q := range ch.Queued(dir) {
			if tu := n.findQueuedTU(q); tu != nil {
				n.abortTU(tu, "channel_closed")
			}
		}
	}
	n.InvalidateRoutes()
	return nil
}

// TopUpChannel deposits additional funds on both sides of an open channel
// (a splice-in). The graph's static capacities grow with the deposit so
// path selection sees the refreshed funding, and waiting TUs get a drain
// attempt against the new funds.
func (n *Network) TopUpChannel(id graph.EdgeID, addU, addV float64) error {
	if int(id) < 0 || int(id) >= len(n.chans) {
		return fmt.Errorf("pcn: top-up of unknown channel %d", id)
	}
	if addU < 0 || addV < 0 {
		return fmt.Errorf("pcn: negative top-up on channel %d", id)
	}
	ch := n.chans[id]
	if ch.Closed() {
		return fmt.Errorf("pcn: top-up on closed channel %d", id)
	}
	n.pauseSpeculation()
	defer n.resumeSpeculation()
	if err := ch.Deposit(channel.Fwd, addU); err != nil {
		return err
	}
	if err := ch.Deposit(channel.Rev, addV); err != nil {
		return err
	}
	n.recordCapital(addU + addV)
	e := n.g.Edge(id)
	n.g.SetCapacity(id, e.CapFwd+addU, e.CapRev+addV)
	n.InvalidateRoutes()
	n.drainQueue(ch, channel.Fwd)
	n.drainQueue(ch, channel.Rev)
	return nil
}

// RebalanceChannel moves `fraction` of the spendable-balance gap of a
// channel from its richer to its poorer side (off-chain circular
// rebalancing, abstracted to its effect) and returns the amount moved.
// Depleted directions regaining funds get a queue drain attempt. The static
// graph capacities are untouched: rebalancing shifts the split, not the
// total, and path selection works from the funding-time gossip view.
func (n *Network) RebalanceChannel(id graph.EdgeID, fraction float64) float64 {
	if int(id) < 0 || int(id) >= len(n.chans) {
		return 0
	}
	ch := n.chans[id]
	n.pauseSpeculation()
	defer n.resumeSpeculation()
	moved := ch.Rebalance(fraction)
	if moved > 0 {
		n.drainQueue(ch, channel.Fwd)
		n.drainQueue(ch, channel.Rev)
	}
	return moved
}

// JoinNode adds a new isolated node to the network (an arrival). The caller
// opens its channels via OpenChannel; the node participates in placement
// and demand once connected. Shared PathFinder scratch state grows lazily.
func (n *Network) JoinNode() graph.NodeID {
	n.pauseSpeculation()
	defer n.resumeSpeculation()
	return n.g.AddNode()
}

// DepartNode removes a node from the network (a departure): all its
// channels close and it stops being eligible as an endpoint, hub candidate
// or client. If the node was a hub it loses the role immediately, but its
// former clients keep their stale assignment until the next re-placement —
// clients learn about a vanished hub asynchronously, which is exactly the
// degradation online re-placement exists to repair.
func (n *Network) DepartNode(v graph.NodeID) error {
	if int(v) < 0 || int(v) >= n.g.NumNodes() {
		return fmt.Errorf("pcn: departure of unknown node %d", v)
	}
	if n.departed[v] {
		return fmt.Errorf("pcn: node %d already departed", v)
	}
	n.pauseSpeculation()
	defer n.resumeSpeculation()
	n.departed[v] = true
	// CloseChannel mutates adjacency; snapshot the incident list first.
	for _, eid := range append([]graph.EdgeID(nil), n.g.Incident(v)...) {
		if err := n.CloseChannel(eid); err != nil {
			return err
		}
	}
	if n.isHub[v] {
		delete(n.isHub, v)
		hubs := n.hubs[:0]
		for _, h := range n.hubs {
			if h != v {
				hubs = append(hubs, h)
			}
		}
		n.hubs = hubs
	}
	return nil
}

// RejoinNode reverses a departure: the node becomes eligible again as an
// endpoint, hub candidate and client. Its former channels stay closed
// (channel closing is on-chain final); the caller re-opens connectivity via
// OpenChannel, whose funding records as fresh capital. A rejoined former hub
// does not regain the role automatically — that is online re-placement's
// job, which is exactly the recovery story the hub-outage attack measures.
func (n *Network) RejoinNode(v graph.NodeID) error {
	if int(v) < 0 || int(v) >= n.g.NumNodes() {
		return fmt.Errorf("pcn: rejoin of unknown node %d", v)
	}
	if !n.departed[v] {
		return fmt.Errorf("pcn: node %d has not departed", v)
	}
	n.pauseSpeculation()
	defer n.resumeSpeculation()
	delete(n.departed, v)
	return nil
}

// Departed reports whether a node has left the network.
func (n *Network) Departed(v graph.NodeID) bool { return n.departed[v] }

// RePlaceHubs re-runs the placement pipeline on the evolved topology and
// adopts the new hub set online: client assignments refresh (orphans of
// departed hubs re-home, joiners onboard), missing client-hub channels open
// (ReshapeMultiStar), and newly promoted hubs pledge capital
// (CapitalizeHubs; channels boosted in an earlier placement keep their
// pledge and are not boosted twice). This is what turns Splicer's placement
// from a preprocessing step into an online algorithm.
func (n *Network) RePlaceHubs() error {
	n.pauseSpeculation()
	defer n.resumeSpeculation()
	hubs, err := n.placeHubs()
	if err != nil {
		return err
	}
	n.hubs = nil
	clear(n.isHub)
	clear(n.hubOf)
	n.SetHubs(hubs)
	n.assignClients()
	n.ReshapeMultiStar()
	n.CapitalizeHubs()
	return nil
}
