// Failure-aware retry: the pcn side of internal/reliability. Every TU
// resolution feeds the reliability store (success per settled hop, failure
// at the failing hop), and a retryable abort can resurrect the TU onto a
// penalty-aware re-planned path within the payment's deadline budget.
//
// Everything here is gated on n.relStore != nil (Config.Retry armed), so
// the unarmed hot path pays one nil check per TU resolution and nothing
// else — the golden panels and the retry-off benchmarks cannot move.
package pcn

import (
	"github.com/splicer-pcn/splicer/internal/graph"
)

// retryableReason reports whether a TU abort reason is worth re-planning
// around: hop-local resource exhaustion and planning staleness. Deadline
// aborts are observed by the store (the hop did fail) but never retried —
// the budget is already gone; sibling/hold/congestion unwinds are payment-
// level outcomes, not hop failures.
func retryableReason(reason string) bool {
	switch reason {
	case "no_funds", "queue_full", "channel_closed", "lock_race":
		return true
	}
	return false
}

// observableReason reports whether an abort reason is attributable to the
// TU's current hop for penalty learning.
func observableReason(reason string) bool {
	return retryableReason(reason) || reason == "deadline"
}

// observeTU feeds one TU resolution into the reliability store: a settled
// TU vouches for every hop it traversed; a hop-attributable abort penalizes
// the edge it died on (tu.hop is not advanced past a failed lock, so at
// abort time it indexes the failing edge).
func (n *Network) observeTU(tu *tuRun, ok bool, reason string) {
	now := n.engine.Now()
	if ok {
		for _, eid := range tu.path.Edges {
			n.relStore.ObserveSuccess(eid, now)
		}
		return
	}
	if observableReason(reason) && tu.hop < len(tu.path.Edges) {
		n.relStore.ObserveFailure(tu.path.Edges[tu.hop], now)
	}
}

// maybeRetryTU implements the bounded retry loop: on a retryable abort of
// an honest TU with attempts and deadline budget remaining, re-plan from
// the sender with the failed hop hard-excluded (plus the store's penalty
// overlay) and re-send after a per-attempt backoff. Returns true when the
// TU was resurrected — the caller must not resolve it.
//
// The TU keeps its id (same payment hash on retry, as in Lightning), its
// pathIdx and its rate-controller window slot: OnSend ran once at the first
// attempt, and the final resolution settles the controller exactly once,
// so window accounting stays balanced across any number of attempts.
func (n *Network) maybeRetryTU(tu *tuRun, reason string) bool {
	run := tu.tx
	if run.failed || run.finished || run.tx.Adversarial || run.tx.Hold > 0 {
		return false
	}
	if !retryableReason(reason) || tu.attempts+1 >= n.cfg.Retry.MaxAttempts {
		return false
	}
	now := n.engine.Now()
	backoff := n.cfg.Retry.Backoff * float64(tu.attempts+1)
	if n.retryRng != nil {
		// Jitter desynchronizes herd retries after a shared-edge failure;
		// the stream is seeded per run (scenario: spec Split(6)).
		backoff *= 1 + 0.1*n.retryRng.Float64()
	}
	resend := now + backoff
	if resend+n.cfg.HopDelay >= run.tx.Deadline {
		return false // not enough budget left to traverse even one hop
	}
	avoid := graph.EdgeID(-1)
	if tu.hop < len(tu.path.Edges) {
		avoid = tu.path.Edges[tu.hop]
	}
	// Penalty-aware re-plan on the exact finder: exclusion windows and the
	// avoided hop are per-query state, so the shared route cache must not
	// see these paths.
	path, ok := n.PathFinder().ShortestPath(run.tx.Sender, run.tx.Recipient,
		n.relStore.WeightAvoiding(now, avoid))
	if !ok {
		return false
	}
	tu.attempts++
	n.metrics.AddHandle(n.mh.tuRetried, 1)
	// Resurrect: abortTU already refunded the locked hops and detached the
	// queue entry; re-arm the TU on the new path and rejoin the live set so
	// the deadline watchdog can still unwind it during the backoff wait.
	tu.done = false
	tu.chain = tu.chain[:0]
	tu.hop = 0
	tu.path = path
	tu.liveIdx = len(run.live)
	run.live = append(run.live, tu)
	if _, err := n.engine.Schedule(resend, 3, tu.advance); err != nil {
		panic(err) // resend > now by construction
	}
	return true
}
