// Package pcn assembles the full payment-channel-network simulator: the
// topology with live channel state, the five routing schemes the paper
// compares (Splicer, Spider, Flash, Landmark routing, A2L), the payment/TU
// lifecycle with HTLC locking, the τ-periodic price updates and the window
// congestion controller, and the metrics the evaluation section reports
// (transaction success ratio, normalized throughput, delay, queueing).
//
// The paper's testbed is MATLAB + a modified LND testnet; this package is
// the discrete-event substitute (see DESIGN.md for the substitution table).
package pcn

import (
	"fmt"
	"strings"

	"github.com/splicer-pcn/splicer/internal/channel"
	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/placement"
	"github.com/splicer-pcn/splicer/internal/reliability"
	"github.com/splicer-pcn/splicer/internal/rng"
	"github.com/splicer-pcn/splicer/internal/routing"
	"github.com/splicer-pcn/splicer/internal/sim"
	"github.com/splicer-pcn/splicer/internal/topology"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// Scheme identifies a routing scheme under evaluation.
type Scheme int

// The five schemes of Figs. 7-8.
const (
	SchemeSplicer Scheme = iota + 1
	SchemeSpider
	SchemeFlash
	SchemeLandmark
	SchemeA2L
	// SchemeShortestPath is the naive single-shortest-path HTLC baseline
	// (not in the paper's figures; used by tests and the deadlock example).
	SchemeShortestPath
)

func (s Scheme) String() string {
	if r, ok := lookupScheme(s); ok {
		return r.name
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// SchemeByName parses a scheme name against the policy registry.
func SchemeByName(name string) (Scheme, error) {
	for _, s := range registeredSchemes() {
		if r, ok := lookupScheme(s); ok && r.name == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("pcn: unknown scheme %q", name)
}

// RoutingOverride selects the backend answering the schemes' unit-weight
// shortest-path queries. The answers are byte-identical either way (the
// hub-label tier serves only hub-rooted queries, with exact fallback), so
// the override is purely a performance knob — golden panels do not move.
type RoutingOverride int

const (
	// RoutingExact computes every query with the exact PathFinder (default).
	RoutingExact RoutingOverride = iota
	// RoutingHubLabels serves hub-rooted queries from precomputed per-hub
	// shortest-path trees (graph.HubLabels), repaired incrementally under
	// churn, and falls back to the exact finder for everything else.
	RoutingHubLabels
)

func (r RoutingOverride) String() string {
	switch r {
	case RoutingExact:
		return "exact"
	case RoutingHubLabels:
		return "hub-labels"
	}
	return fmt.Sprintf("RoutingOverride(%d)", int(r))
}

// Config parameterizes a simulation. NewConfig supplies the paper's §V-A
// defaults.
type Config struct {
	Scheme Scheme

	// Policy overrides the registry: when non-nil, NewNetwork uses this
	// SchemePolicy instance (which may be a custom or hybrid scheme) instead
	// of instantiating the one registered for Scheme. A policy instance is
	// stateful and must not be shared across networks.
	Policy SchemePolicy

	// NumPaths is k, the number of multi-paths (paper: 5).
	NumPaths int
	// PathType selects the path computation (paper default: EDW).
	PathType routing.PathType
	// RoutingOverride selects the route-computation backend for the
	// unit-weight access/detour queries (default RoutingExact). Results are
	// identical either way; RoutingHubLabels trades precomputation for
	// per-query speed on hub-heavy workloads.
	RoutingOverride RoutingOverride
	// Scheduler orders channel waiting queues (paper default: LIFO).
	Scheduler channel.Scheduler

	// UpdateTau is the price/probe update period τ in seconds (paper: 0.2).
	UpdateTau float64
	// QueueDelayThreshold is T, the queueing-delay mark threshold (0.4 s).
	QueueDelayThreshold float64
	// QueueLimit is the per-direction queue value bound (8000 tokens).
	QueueLimit float64
	// MaxInFlightTUs bounds the simultaneously locked HTLCs per channel
	// direction (Lightning's max_accepted_htlcs slot limit — the resource
	// slot-jamming exhausts); 0 means unlimited, the paper's setting.
	MaxInFlightTUs int

	// Rate/price controller parameters.
	Alpha float64 // rate step α (eq. 26)
	Beta  float64 // window decrement β (paper: 10)
	Gamma float64 // window increment γ (paper: 0.1)
	Kappa float64 // capacity price step κ (eq. 21)
	Eta   float64 // imbalance price step η (eq. 22)
	TFee  float64 // fee threshold T_fee (eq. 24)

	// TU bounds (paper: 1 and 4 tokens).
	MinTU float64
	MaxTU float64

	// InitPathRate seeds each path's sending rate (tokens/sec) before the
	// price feedback converges; InitWindow seeds the congestion window.
	InitPathRate float64
	InitWindow   float64

	// HopDelay is the per-hop forwarding latency in seconds.
	HopDelay float64

	// NumHubCandidates bounds the smooth-node candidate list for Splicer's
	// placement step; Landmark uses NumPaths landmarks; A2L uses 1 hub.
	NumHubCandidates int
	// PlacementOmega is ω for the placement solve.
	PlacementOmega float64
	// Hubs overrides placement with an explicit hub set (optional).
	Hubs []graph.NodeID

	// HubCapitalBoost multiplies the funds on channels incident to a hub
	// when the hub takes the role. The paper: hubs "perform many routes,
	// have larger capital, and thus may have a larger channel size", and
	// actual PCHs must pledge funds for access (§III-B). Applies to Splicer
	// hubs and the A2L tumbler.
	HubCapitalBoost float64
	// HubComputeDelay is the routing-computation service time at a hub per
	// payment (hubs are powerful machines; small).
	HubComputeDelay float64
	// SenderComputeDelayPerNode models source-routing cost at end-user
	// senders: each payment costs SenderComputeDelayPerNode·|V| seconds of
	// serialized sender CPU (Spider, Flash, Landmark, ShortestPath).
	SenderComputeDelayPerNode float64
	// A2LCryptoDelay is the per-payment cryptographic-protocol service time
	// at the A2L tumbler hub (puzzle promise/solver), serialized at the hub.
	A2LCryptoDelay float64

	// FlashElephantThreshold splits Flash's elephant/mice handling.
	FlashElephantThreshold float64
	// FlashMicePaths is the number of precomputed mice paths.
	FlashMicePaths int

	// Parallelism sets the speculative route-planning worker count for a
	// single run (see speculate.go). 0 or 1 runs fully serial (default); a
	// value >= 2 arms a pool of that many planning workers when the policy
	// is speculation-safe and routing is exact. The committed event stream
	// and every output are byte-identical either way — this is purely a
	// wall-clock knob for big single cells.
	Parallelism int

	// Retry arms the failure-aware retry layer (internal/reliability):
	// per-edge penalty learning with time decay, hard exclusion of recently
	// failed hops, and bounded per-TU re-sends within the payment deadline.
	// The zero value (any MaxAttempts <= 1) leaves the payment lifecycle
	// byte-identical to the retry-less simulator — no store, no
	// observations, no extra rng draws.
	Retry reliability.Config
}

// NewConfig returns the paper's default parameters for the given scheme.
func NewConfig(scheme Scheme) Config {
	return Config{
		Scheme:                    scheme,
		NumPaths:                  5,
		PathType:                  routing.EDW,
		Scheduler:                 channel.LIFO{},
		UpdateTau:                 0.2,
		QueueDelayThreshold:       0.4,
		QueueLimit:                8000,
		Alpha:                     0.4,
		Beta:                      10,
		Gamma:                     0.1,
		Kappa:                     0.002,
		Eta:                       0.002,
		TFee:                      0.1,
		MinTU:                     1,
		MaxTU:                     4,
		InitPathRate:              20,
		InitWindow:                8,
		HopDelay:                  0.02,
		NumHubCandidates:          10,
		PlacementOmega:            0.05,
		HubCapitalBoost:           8,
		HubComputeDelay:           0.001,
		SenderComputeDelayPerNode: 0.00002,
		A2LCryptoDelay:            0.04,
		FlashElephantThreshold:    20,
		FlashMicePaths:            3,
	}
}

// Validate checks configuration sanity.
func (c *Config) Validate() error {
	if c.Policy == nil {
		if _, ok := lookupScheme(c.Scheme); !ok {
			return fmt.Errorf("pcn: invalid scheme %d", int(c.Scheme))
		}
	}
	if c.NumPaths <= 0 {
		return fmt.Errorf("pcn: NumPaths must be positive")
	}
	if c.UpdateTau <= 0 || c.HopDelay <= 0 {
		return fmt.Errorf("pcn: UpdateTau and HopDelay must be positive")
	}
	if c.MinTU <= 0 || c.MaxTU < c.MinTU {
		return fmt.Errorf("pcn: invalid TU bounds [%v, %v]", c.MinTU, c.MaxTU)
	}
	if c.Scheduler == nil {
		return fmt.Errorf("pcn: nil scheduler")
	}
	if c.RoutingOverride != RoutingExact && c.RoutingOverride != RoutingHubLabels {
		return fmt.Errorf("pcn: invalid routing override %d", int(c.RoutingOverride))
	}
	if c.MaxInFlightTUs < 0 {
		return fmt.Errorf("pcn: MaxInFlightTUs must be >= 0, got %d", c.MaxInFlightTUs)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("pcn: Parallelism must be >= 0, got %d", c.Parallelism)
	}
	if err := c.Retry.Validate(); err != nil {
		return err
	}
	return nil
}

// pairKey identifies a source-destination pair for path caching and rate
// control.
type pairKey struct{ s, e graph.NodeID }

// Network is a live PCN simulation instance. All scheme-specific behavior is
// delegated to its SchemePolicy; the network owns only the shared
// infrastructure (channels, hub bookkeeping, path cache, rate controllers,
// the event engine and metrics).
type Network struct {
	cfg     Config
	policy  SchemePolicy
	g       *graph.Graph
	chans   []*channel.Channel // indexed by EdgeID
	engine  *sim.Engine
	metrics *sim.Metrics

	hubs  []graph.NodeID
	isHub map[graph.NodeID]bool
	hubOf map[graph.NodeID]graph.NodeID // client → managing hub (Splicer/A2L)
	// departed marks nodes that left the network (dynamics); boosted records
	// channels that already received the hub capital pledge so repeated
	// placements never double-boost.
	departed map[graph.NodeID]bool
	boosted  map[graph.EdgeID]bool
	// routes is the shared route-computation cache (see RouteCache for the
	// invalidation contract); pathFinder is the shared Dijkstra scratch
	// state for cache misses (a Network is single-goroutine, so one finder
	// serves every policy query); pathsFor tracks the path set most
	// recently planned per pair, which the τ-probe loop refreshes prices
	// for.
	routes     *RouteCache
	pathFinder *graph.PathFinder
	pathsFor   map[pairKey][]graph.Path
	rateCtl    map[pairKey]*routing.RateController

	// Hub-label precomputation tier (Config.RoutingOverride ==
	// RoutingHubLabels): labels serves hub-rooted unit queries from per-hub
	// trees. labelSeeds holds policy-registered roots beyond the hub set
	// (Landmark's landmarks); labelGen/rootGen detect root-set changes so
	// SetHubs or a re-placement rebuilds the tier lazily.
	labels     *graph.HubLabels
	labelSeeds []graph.NodeID
	rootGen    uint64
	labelGen   uint64

	// Epoch-snapshot store for concurrent readers (see snapshot.go). nil in
	// batch mode; attached by EnableSnapshots. snapRootGen tracks the rootGen
	// the store's label roots were last synced at.
	snapshots   *graph.SnapshotStore
	snapRootGen uint64

	// Serialized compute resources: next-free time per sender (source
	// routing) or per hub.
	cpuFree map[graph.NodeID]float64

	nextTUID uint64

	txState     map[int]*txRun
	queuedIndex map[*channel.QueuedTU]*tuRun

	// Interned metric handles and the incremental τ-tick registries (see
	// tick.go): the sorted pair registry, the swap-remove active-payment
	// registry with its reusable per-tick snapshot, the tick generation for
	// controller refresh stamps, and the dirty-channel scheduling state.
	mh       metricHandles
	priceFn  func(graph.EdgeID, graph.NodeID) float64
	pairList []pairKey
	activeTx []*txRun
	tickTx   []*txRun
	tickGen  uint64

	chanState  []uint8
	dirtyChans []graph.EdgeID
	tickHeap   edgeHeap
	inTickPass bool
	tickCursor graph.EdgeID

	// Run bookkeeping: payments registered via ScheduleArrival/Arrive, so a
	// dynamically driven run (no upfront trace) summarizes correctly.
	// Adversarial (attacker-issued) payments count separately so TSR and
	// throughput measure honest demand only.
	genCount int
	genValue float64
	advCount int
	advValue float64
	ticking  bool

	// capitalIn is the recorded capital inflow backing the
	// conservation-of-funds invariant (see invariant.go).
	capitalIn float64

	// Failure-aware retry state (see retry.go): both nil/unset unless
	// Config.Retry is armed, so the unarmed lifecycle pays one nil check.
	relStore *reliability.Store
	retryRng *rng.Source

	// Speculative route-planning state (see speculate.go). spec is the
	// per-run worker pool, nil unless Config.Parallelism arms it; specCtx is
	// non-nil only on a worker's shadow copy of the network, binding
	// planRoutes to that worker's memoizing context.
	spec    *specSession
	specCtx *specWorkerCtx
}

// NewNetwork builds a simulation over graph g under cfg. The graph's edge
// capacities become the channels' initial per-direction balances. For
// Splicer, hubs come from cfg.Hubs or the placement solver.
func NewNetwork(g *graph.Graph, cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if g.NumNodes() < 3 {
		return nil, fmt.Errorf("pcn: need at least 3 nodes, got %d", g.NumNodes())
	}
	policy := cfg.Policy
	if policy == nil {
		var err error
		policy, err = policyFor(cfg.Scheme)
		if err != nil {
			return nil, err
		}
	}
	n := &Network{
		cfg:         cfg,
		policy:      policy,
		g:           g,
		chans:       make([]*channel.Channel, g.NumEdges()),
		engine:      sim.NewEngine(),
		metrics:     sim.NewMetrics(),
		isHub:       map[graph.NodeID]bool{},
		hubOf:       map[graph.NodeID]graph.NodeID{},
		departed:    map[graph.NodeID]bool{},
		boosted:     map[graph.EdgeID]bool{},
		routes:      NewRouteCache(),
		pathsFor:    map[pairKey][]graph.Path{},
		rateCtl:     map[pairKey]*routing.RateController{},
		cpuFree:     map[graph.NodeID]float64{},
		txState:     map[int]*txRun{},
		queuedIndex: map[*channel.QueuedTU]*tuRun{},
	}
	n.initMetricHandles()
	n.priceFn = n.priceOf
	if cfg.Retry.Armed() {
		n.relStore = reliability.NewStore(cfg.Retry)
		n.retryRng = rng.New(cfg.Retry.Seed)
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(graph.EdgeID(i))
		ch, err := channel.New(e.ID, e.U, e.V, e.CapFwd, e.CapRev)
		if err != nil {
			return nil, err
		}
		ch.QueueLimit = cfg.QueueLimit
		ch.MaxInFlight = cfg.MaxInFlightTUs
		n.chans[i] = ch
		n.recordCapital(e.CapFwd + e.CapRev)
	}
	if err := n.policy.Setup(n); err != nil {
		return nil, err
	}
	if speculationArmed(cfg, n.policy) {
		n.spec = newSpecSession(n, cfg.Parallelism)
	}
	return n, nil
}

// SetHubs installs the policy's hub set (SchemePolicy.Setup).
func (n *Network) SetHubs(hubs []graph.NodeID) {
	n.hubs = append([]graph.NodeID(nil), hubs...)
	for _, h := range hubs {
		n.isHub[h] = true
	}
	n.rootGen++
}

// AddLabelRoots registers additional hub-label roots (policies with private
// root sets, like Landmark's landmark list). Idempotent root growth; the
// label tier rebuilds lazily on the next query.
func (n *Network) AddLabelRoots(roots []graph.NodeID) {
	n.labelSeeds = append(n.labelSeeds, roots...)
	n.rootGen++
}

// SetManagingHub assigns a client to a managing hub (SchemePolicy.Setup).
func (n *Network) SetManagingHub(client, hub graph.NodeID) {
	n.hubOf[client] = hub
}

// ReshapeMultiStar realizes Definition 1's multi-star topology: during
// payment preparation each client opens a direct payment channel with its
// managing hub (§III-A), funded with the client's typical channel size. The
// original graph remains as the hub-to-hub transit backbone. NewNetwork
// owns the graph, so adding edges here is safe. Safe to call again mid-run
// after a re-placement: only the missing client-hub channels open.
func (n *Network) ReshapeMultiStar() {
	n.pauseSpeculation()
	defer n.resumeSpeculation()
	for v := 0; v < n.g.NumNodes(); v++ {
		client := graph.NodeID(v)
		if n.isHub[client] || n.departed[client] {
			continue
		}
		hub, ok := n.hubOf[client]
		if !ok || n.departed[hub] || n.g.HasEdgeBetween(client, hub) {
			continue
		}
		// Fund the client side with its mean existing per-direction
		// balance (the client moves part of its liquidity to the hub
		// channel); the hub matches it.
		funds := 0.0
		deg := n.g.Degree(client)
		if deg > 0 {
			for _, eid := range n.g.Incident(client) {
				e := n.g.Edge(eid)
				funds += e.Capacity(client)
			}
			funds /= float64(deg)
		}
		if funds <= 0 {
			funds = workload.LNChannelMedian
		}
		eid, err := n.g.AddEdge(client, hub, funds, funds)
		if err != nil {
			panic(err) // client != hub and both in range
		}
		ch, err := channel.New(eid, client, hub, funds, funds)
		if err != nil {
			panic(err)
		}
		ch.QueueLimit = n.cfg.QueueLimit
		ch.MaxInFlight = n.cfg.MaxInFlightTUs
		n.chans = append(n.chans, ch)
		n.recordCapital(2 * funds)
	}
	n.InvalidateRoutes() // the graph gained channels; cached paths are stale
}

// CapitalizeHubs scales the funds of hub-incident channels by
// HubCapitalBoost: taking the hub role comes with pledging capital into the
// hub's channels (SchemePolicy.Setup). The boost is applied as a deposit of
// (boost−1)× the current spendable balance per side — identical to the
// former recreate-with-boosted-balances at setup time (nothing is locked or
// queued yet), and additionally safe mid-run for online re-placement. Each
// channel is boosted at most once over the network's lifetime: the capital
// pledge stays with the channel even if its hub is later demoted.
func (n *Network) CapitalizeHubs() {
	if n.cfg.HubCapitalBoost <= 1 {
		return
	}
	n.pauseSpeculation()
	defer n.resumeSpeculation()
	for _, h := range n.hubs {
		for _, eid := range n.g.Incident(h) {
			if n.boosted[eid] {
				continue
			}
			n.boosted[eid] = true
			ch := n.chans[eid]
			for _, d := range []channel.Direction{channel.Fwd, channel.Rev} {
				pledge := ch.Balance(d) * (n.cfg.HubCapitalBoost - 1)
				if err := ch.Deposit(d, pledge); err != nil {
					panic(err) // channel is open and the amount non-negative
				}
				n.recordCapital(pledge)
			}
		}
	}
	// Defensive eviction: path selection reads the graph's static edge
	// capacities, which this does not touch (only channel funds change), so
	// nothing cached is actually stale today — but the invalidation
	// contract is cheap to honor uniformly for every funds/topology
	// mutation, and keeps a future capacity-writing boost safe.
	n.InvalidateRoutes()
}

// placeHubs runs the placement pipeline: candidate list by excellence
// (degree), then the double-greedy approximation (the exact MILP is
// exercised by tests and cmd/placement on small instances).
//
// Under dynamics the pipeline is re-run mid-simulation, so it restricts
// itself to the nodes that can actually be placed over: departed nodes are
// excluded, and so are nodes outside the largest connected component of the
// active graph (churn can fragment it, and the placement cost matrices
// require every client to be reachable from every candidate; the largest
// component — not, say, a well-connected splinter around a former hub — is
// where placement helps the most nodes). Ties break toward the component
// holding the lowest node id. On a fresh connected network this reduces to
// the whole node set.
func (n *Network) placeHubs() ([]graph.NodeID, error) {
	visited := make([]bool, n.g.NumNodes())
	var eligible []graph.NodeID
	for v := 0; v < n.g.NumNodes(); v++ {
		id := graph.NodeID(v)
		if n.departed[id] || visited[id] {
			continue
		}
		dist := n.g.BFSHops(id)
		var comp []graph.NodeID
		for u, d := range dist {
			uid := graph.NodeID(u)
			if d >= 0 && !n.departed[uid] {
				visited[u] = true
				comp = append(comp, uid)
			}
		}
		if len(comp) > len(eligible) {
			eligible = comp
		}
	}
	if len(eligible) == 0 {
		return nil, fmt.Errorf("pcn: no active nodes to place hubs over")
	}
	numCand := n.cfg.NumHubCandidates
	if numCand > len(eligible)/2 {
		numCand = len(eligible) / 2
	}
	if numCand < 1 {
		numCand = 1
	}
	// TopDegreeNodesOf reorders its argument; keep the ascending client order
	// (matching the static pipeline) by selecting over a copy.
	cands := topology.TopDegreeNodesOf(n.g, append([]graph.NodeID(nil), eligible...), numCand)
	candSet := map[graph.NodeID]bool{}
	for _, c := range cands {
		candSet[c] = true
	}
	var clients []graph.NodeID
	for _, id := range eligible {
		if !candSet[id] {
			clients = append(clients, id)
		}
	}
	inst, err := placement.NewInstanceFromGraph(n.g, clients, cands, n.cfg.PlacementOmega)
	if err != nil {
		return nil, err
	}
	var plan placement.Plan
	if len(cands) <= 16 {
		plan, err = inst.SolveExhaustive()
	} else {
		plan, err = inst.SolveDoubleGreedy(nil)
	}
	if err != nil {
		return nil, err
	}
	var hubs []graph.NodeID
	for _, idx := range plan.PlacedCandidates() {
		hubs = append(hubs, cands[idx])
	}
	if len(hubs) == 0 {
		return nil, fmt.Errorf("pcn: placement produced no hubs")
	}
	return hubs, nil
}

// assignClients maps every non-hub node to its Lemma-1 hub: the hub
// minimizing ω·(sync burden) + ζ(hops).
func (n *Network) assignClients() {
	hopsFrom := make([][]int, len(n.hubs))
	for i, h := range n.hubs {
		hopsFrom[i] = n.g.BFSHops(h)
	}
	// Sync burden per hub: ω Σ_l δ(h, l).
	burden := make([]float64, len(n.hubs))
	for i := range n.hubs {
		for j, l := range n.hubs {
			_ = j
			if hopsFrom[i][l] > 0 {
				burden[i] += placement.DefaultSyncPerHop * float64(hopsFrom[i][l])
			}
		}
	}
	for v := 0; v < n.g.NumNodes(); v++ {
		node := graph.NodeID(v)
		if n.isHub[node] || n.departed[node] {
			continue
		}
		assigned := false
		best, bestCost := 0, 0.0
		for i := range n.hubs {
			h := hopsFrom[i][node]
			if h < 0 {
				continue
			}
			c := n.cfg.PlacementOmega*burden[i] + placement.DefaultMgmtPerHop*float64(h)
			if !assigned || c < bestCost {
				best, bestCost, assigned = i, c, true
			}
		}
		if assigned {
			n.hubOf[node] = n.hubs[best]
		}
	}
}

// Routes returns the network-wide route cache. Policies funnel every path
// computation through it (typically via GetOrCompute) so repeat payments and
// shared segments skip the graph algorithms.
func (n *Network) Routes() *RouteCache { return n.routes }

// PathFinder returns the network's shared path-computation scratch state,
// so route-cache misses run allocation-free instead of building throwaway
// Dijkstra buffers per query. The network (and hence the finder) is
// single-goroutine; parallel sweep workers each own a private Network. The
// finder tracks graph growth lazily, so it stays valid across the
// multi-star reshape.
func (n *Network) PathFinder() *graph.PathFinder {
	if n.pathFinder == nil {
		n.pathFinder = graph.NewPathFinder(n.g)
	}
	return n.pathFinder
}

// HubLabels returns the route-precomputation tier, or nil when the config
// runs exact routing or no roots are installed yet. The tier is rebuilt
// (lazily, here) whenever the root set changed since the last query; churn
// between queries is handled by the labels' own incremental repair.
func (n *Network) HubLabels() *graph.HubLabels {
	if n.cfg.RoutingOverride != RoutingHubLabels {
		return nil
	}
	if len(n.hubs) == 0 && len(n.labelSeeds) == 0 {
		return nil
	}
	if n.labels == nil || n.labelGen != n.rootGen {
		roots := make([]graph.NodeID, 0, len(n.hubs)+len(n.labelSeeds))
		roots = append(roots, n.hubs...)
		roots = append(roots, n.labelSeeds...)
		n.labels = graph.NewHubLabels(n.g, n.PathFinder(), roots)
		n.labelGen = n.rootGen
	}
	return n.labels
}

// unitShortestPath answers a unit-weight shortest-path query through the
// configured routing backend: the hub-label tier when enabled (served for
// hub-rooted sources, exact fallback otherwise), the shared PathFinder when
// not. Answers are byte-identical across backends.
func (n *Network) unitShortestPath(from, to graph.NodeID) (graph.Path, bool) {
	if hl := n.HubLabels(); hl != nil {
		return hl.UnitShortestPath(from, to)
	}
	return n.PathFinder().UnitShortestPath(from, to)
}

// unitShortestPaths is the multi-target form of unitShortestPath.
func (n *Network) unitShortestPaths(from graph.NodeID, dsts []graph.NodeID) []graph.Path {
	if hl := n.HubLabels(); hl != nil {
		return hl.UnitShortestPaths(from, dsts)
	}
	return n.PathFinder().UnitShortestPaths(from, dsts)
}

// kShortestPathsUnit routes KShortestPathsUnit through the configured
// backend (the label tier seeds Yen's first path when the source is a hub).
func (n *Network) kShortestPathsUnit(from, to graph.NodeID, k int) []graph.Path {
	if hl := n.HubLabels(); hl != nil {
		return hl.KShortestPathsUnit(from, to, k)
	}
	return n.PathFinder().KShortestPathsUnit(from, to, k)
}

// InvalidateRoutes evicts every cached path set and the per-pair probe
// registry. Topology mutations (ReshapeMultiStar, CapitalizeHubs, or any
// out-of-package Setup that reshapes the graph) call this so stale paths
// never route payments. With snapshots enabled (serving mode) it is also
// the publication point: the next epoch is built and published here, so
// readers switch atomically from the pre-mutation to the post-mutation
// topology.
func (n *Network) InvalidateRoutes() {
	n.routes.Invalidate()
	clear(n.pathsFor)
	if n.spec != nil {
		n.spec.invalidate()
	}
	n.publishSnapshot()
}

// Channel returns the live channel for an edge.
func (n *Network) Channel(id graph.EdgeID) *channel.Channel { return n.chans[id] }

// Graph returns the underlying topology.
func (n *Network) Graph() *graph.Graph { return n.g }

// Config returns the simulation parameters (for SchemePolicy
// implementations outside this package).
func (n *Network) Config() Config { return n.cfg }

// Policy returns the scheme policy driving this network.
func (n *Network) Policy() SchemePolicy { return n.policy }

// Hubs returns the scheme's hub set (nil for source-routing schemes).
func (n *Network) Hubs() []graph.NodeID { return append([]graph.NodeID(nil), n.hubs...) }

// HubOf returns the managing hub for a client (Splicer/A2L).
func (n *Network) HubOf(client graph.NodeID) (graph.NodeID, bool) {
	h, ok := n.hubOf[client]
	return h, ok
}

// Metrics exposes the metrics registry.
func (n *Network) Metrics() *sim.Metrics { return n.metrics }

// Now returns the current simulation time.
func (n *Network) Now() float64 { return n.engine.Now() }

// Result summarizes a run.
type Result struct {
	Scheme               Scheme
	Generated            int
	Completed            int
	GeneratedValue       float64
	CompletedValue       float64
	TSR                  float64
	NormalizedThroughput float64
	MeanDelay            float64 // mean completion latency of successful txs
	MeanQueueDelay       float64
	TotalFees            float64
	MeanImbalance        float64 // mean end-state channel imbalance in [0,1]
	DeadlockedChannels   int     // channels fully drained in one direction

	// Adversarial-workload accounting (internal/attack). Attacker payments
	// are excluded from Generated/Completed/TSR above; HeldTUs counts TUs
	// parked by the hold-then-Refund jamming mechanism, HeldLockValue the
	// total value·hops they kept locked.
	AdversarialGenerated int
	AdversarialCompleted int
	HeldTUs              int
	HeldLockValue        float64

	// Route-computation effectiveness: RouteCache activity over the run and,
	// when RoutingHubLabels is on, hub-label tier activity (zero otherwise).
	RouteCacheHits          int // cached path sets reused
	RouteCacheMisses        int // path sets computed
	RouteCacheInvalidations int // whole-cache evictions (topology reshapes)
	LabelServed             int // unit queries answered from a hub tree
	LabelFallbacks          int // unit queries routed to the exact finder
	LabelBuilds             int // per-hub tree constructions (incl. repairs)
	LabelRepairs            int // tree rebuilds forced by churn staleness

	// Failure-aware retry accounting (zero unless Config.Retry is armed):
	// RetryAttempts counts re-sends, RetryRecovered TUs that settled after at
	// least one retry, RetryExhausted TUs that still failed after retrying.
	RetryAttempts  int
	RetryRecovered int
	RetryExhausted int

	// FailureReasons is the per-reason failure breakdown: counts keyed by
	// abort reason, merging the TU-level (tu_failed_<reason>) and
	// payment-level (tx_failed_<reason>) counters. Nil when the run recorded
	// no attributed failures.
	FailureReasons map[string]int
}

// Run executes the trace and returns the summary. The horizon extends past
// the last arrival by the transaction timeout so in-flight payments can
// finish. It is a convenience composition of the stepwise run API below,
// which the dynamics layer drives directly to interleave topology events
// with payment arrivals.
func (n *Network) Run(trace []workload.Tx) (Result, error) {
	if len(trace) == 0 {
		return Result{}, fmt.Errorf("pcn: empty trace")
	}
	horizon := trace[len(trace)-1].Deadline + 1
	if err := n.BeginRun(horizon); err != nil {
		return Result{}, err
	}
	for i := range trace {
		if err := n.ScheduleArrival(trace[i]); err != nil {
			return Result{}, err
		}
	}
	return n.Execute(horizon)
}

// BeginRun installs the τ-periodic maintenance (price updates + queue
// staleness marking for Splicer/Spider, gossip snapshot refresh ticks for
// Flash) up to the horizon. Callers composing a dynamic run invoke it once
// before scheduling arrivals or external events.
func (n *Network) BeginRun(horizon float64) error {
	if n.ticking {
		return fmt.Errorf("pcn: BeginRun called twice")
	}
	n.ticking = true
	if n.usesQueues() || n.usesPrices() || n.policy.WantsTick() {
		return n.engine.Every(n.cfg.UpdateTau, horizon, 0, n.onTauTick)
	}
	return nil
}

// ScheduleArrival registers a payment to arrive at tx.Arrival. The payment
// counts toward the run's Generated totals immediately (adversarial
// payments toward the separate adversarial totals).
func (n *Network) ScheduleArrival(tx workload.Tx) error {
	n.countGenerated(tx)
	if n.spec != nil {
		n.spec.enqueue(tx)
	}
	_, err := n.engine.Schedule(tx.Arrival, 1, func() { n.onArrival(tx) })
	return err
}

// Arrive delivers a payment at the current simulation time. The dynamics
// layer uses it to resolve a payment's endpoints against the live node set
// at the moment of arrival rather than at trace-generation time.
func (n *Network) Arrive(tx workload.Tx) {
	n.countGenerated(tx)
	if n.spec != nil {
		n.spec.enqueue(tx)
	}
	n.onArrival(tx)
}

func (n *Network) countGenerated(tx workload.Tx) {
	if tx.Adversarial {
		n.advCount++
		n.advValue += tx.Value
		return
	}
	n.genCount++
	n.genValue += tx.Value
}

// At schedules an external event (a topology mutation, a demand-process
// step) at absolute time t. External events run before same-instant payment
// arrivals and maintenance ticks, so a payment arriving exactly when a
// channel closes sees the post-close topology.
func (n *Network) At(t float64, action func()) error {
	_, err := n.engine.Schedule(t, -1, action)
	return err
}

// Every schedules action at now+interval and then every interval until
// `until` (exclusive), at the same external-event priority as At. The
// dynamics driver uses it for its periodic processes (depletion repair,
// hotspot drift, online re-placement); tick times are drift-free like the
// engine's τ loop.
func (n *Network) Every(interval, until float64, action func()) error {
	return n.engine.Every(interval, until, -1, action)
}

// Execute runs the event loop to the horizon and summarizes. Payments whose
// dispatch was pushed past the horizon by compute backlog never produced an
// outcome event; they are failures.
func (n *Network) Execute(horizon float64) (Result, error) {
	n.engine.Run(horizon)
	if n.spec != nil {
		n.spec.stop() // no planning goroutines survive past the run
	}
	// Dynamically driven runs deliver payments via Arrive during the run, so
	// emptiness is only checkable afterwards.
	if n.genCount == 0 {
		return Result{}, fmt.Errorf("pcn: run generated no payments")
	}
	unresolved := float64(n.genCount) - n.metrics.Counter("tx_completed") - n.metrics.Counter("tx_failed")
	if unresolved > 0 {
		n.metrics.Add("tx_failed", unresolved)
		n.metrics.Add("tx_failed_compute_backlog", unresolved)
	}
	return n.summarize(), nil
}

func (n *Network) usesQueues() bool { return n.policy.UsesQueues() }

func (n *Network) usesPrices() bool { return n.policy.UsesPrices() }

func (n *Network) splitsTUs() bool { return n.policy.SplitsTUs() }

func (n *Network) summarize() Result {
	r := Result{
		Scheme:         n.policy.Scheme(),
		Generated:      n.genCount,
		GeneratedValue: n.genValue,
	}
	r.Completed = int(n.metrics.Counter("tx_completed"))
	r.CompletedValue = n.metrics.Counter("value_completed")
	if r.Generated > 0 {
		r.TSR = float64(r.Completed) / float64(r.Generated)
	}
	if r.GeneratedValue > 0 {
		r.NormalizedThroughput = r.CompletedValue / r.GeneratedValue
	}
	r.MeanDelay = n.metrics.Mean("tx_delay")
	r.MeanQueueDelay = n.metrics.Mean("queue_delay")
	r.TotalFees = n.metrics.Counter("fees")
	r.AdversarialGenerated = n.advCount
	r.AdversarialCompleted = int(n.metrics.Counter("adv_completed"))
	r.HeldTUs = int(n.metrics.Counter("tu_held"))
	r.HeldLockValue = n.metrics.Counter("tu_held_value")
	// Imbalance and deadlock are end-state health of the live topology;
	// closed channels are out of the network.
	imb, dead, open := 0.0, 0, 0
	for _, ch := range n.chans {
		if ch.Closed() {
			continue
		}
		open++
		imb += ch.Imbalance()
		if ch.Balance(channel.Fwd) <= 1e-9 || ch.Balance(channel.Rev) <= 1e-9 {
			dead++
		}
	}
	if open > 0 {
		r.MeanImbalance = imb / float64(open)
	}
	r.DeadlockedChannels = dead

	// Flush the route-computation counters into the metrics registry (they
	// accumulate in the cache/label tier, not per-event) and the Result.
	r.RouteCacheHits = int(n.routes.Hits())
	r.RouteCacheMisses = int(n.routes.Misses())
	r.RouteCacheInvalidations = int(n.routes.Generation())
	n.metrics.AddHandle(n.mh.routeCacheHits, float64(r.RouteCacheHits)-n.metrics.Counter("route_cache_hits"))
	n.metrics.AddHandle(n.mh.routeCacheMisses, float64(r.RouteCacheMisses)-n.metrics.Counter("route_cache_misses"))
	n.metrics.AddHandle(n.mh.routeCacheInvalidations, float64(r.RouteCacheInvalidations)-n.metrics.Counter("route_cache_invalidations"))
	if n.labels != nil {
		st := n.labels.Stats()
		r.LabelServed = int(st.Served)
		r.LabelFallbacks = int(st.Fallbacks)
		r.LabelBuilds = int(st.Builds)
		r.LabelRepairs = int(st.Repairs)
		n.metrics.AddHandle(n.mh.labelServed, float64(r.LabelServed)-n.metrics.Counter("label_served"))
		n.metrics.AddHandle(n.mh.labelFallbacks, float64(r.LabelFallbacks)-n.metrics.Counter("label_fallbacks"))
		n.metrics.AddHandle(n.mh.labelBuilds, float64(r.LabelBuilds)-n.metrics.Counter("label_builds"))
		n.metrics.AddHandle(n.mh.labelRepairs, float64(r.LabelRepairs)-n.metrics.Counter("label_repairs"))
	}
	r.RetryAttempts = int(n.metrics.Counter("tu_retried"))
	r.RetryRecovered = int(n.metrics.Counter("tu_retry_recovered"))
	r.RetryExhausted = int(n.metrics.Counter("tu_retry_exhausted"))
	// Fold the reason-suffixed failure counters into one breakdown map.
	// CounterNames is sorted, so the extraction order (and hence any
	// downstream fold over sorted keys) is deterministic.
	for _, name := range n.metrics.CounterNames() {
		reason, ok := strings.CutPrefix(name, "tu_failed_")
		if !ok {
			reason, ok = strings.CutPrefix(name, "tx_failed_")
		}
		if !ok || reason == "" {
			continue
		}
		if c := int(n.metrics.Counter(name)); c > 0 {
			if r.FailureReasons == nil {
				r.FailureReasons = make(map[string]int)
			}
			r.FailureReasons[reason] += c
		}
	}
	return r
}

// ReliabilityStats returns the retry layer's store counters (zero Stats when
// Config.Retry is unarmed).
func (n *Network) ReliabilityStats() reliability.Stats {
	if n.relStore == nil {
		return reliability.Stats{}
	}
	return n.relStore.Stats()
}

// SeedRetryJitter replaces the retry backoff-jitter stream. The scenario
// layer calls it with the spec source's Split(6) as the LAST split drawn
// during a build, so arming retries never shifts the channel-size, topology,
// workload, dynamics or attack streams (see the split-label contract in
// internal/scenario/spec.go). No-op when retries are unarmed.
func (n *Network) SeedRetryJitter(src *rng.Source) {
	if n.relStore != nil && src != nil {
		n.retryRng = src
	}
}
