// Conservation-of-funds invariant. Off-chain routing moves funds between
// balances and in-flight HTLC locks but never mints or burns them: every
// Lock/Settle/Refund conserves a channel's total, fees are an accounting
// metric rather than a transfer, and rebalancing shifts a channel's split,
// not its sum. The only legitimate changes to the system total are explicit
// capital events — channel funding at setup, the multi-star reshape, hub
// capital pledges, dynamic opens and top-ups — all of which this file
// records. CheckConservation compares the recorded inflow against the live
// sum, so any scheme-policy or lifecycle bug that leaks value (a double
// settle, a refund after settle, a lost in-flight TU) surfaces as a broken
// invariant instead of a silently wrong figure.

package pcn

import "fmt"

// recordCapital accounts an explicit capital inflow (channel funding or
// deposit). Amounts are recorded at the moment the funds enter a channel.
func (n *Network) recordCapital(amount float64) { n.capitalIn += amount }

// TotalFunds returns the funds currently held across all channels — both
// directions' spendable balances plus in-flight HTLC locks. Closed channels
// are included: closing settles funds on-chain but does not destroy them,
// and in-flight HTLCs on a closed channel remain settleable.
func (n *Network) TotalFunds() float64 {
	total := 0.0
	for _, ch := range n.chans {
		total += ch.Capacity()
	}
	return total
}

// ExpectedFunds returns the recorded capital inflow: initial channel funding
// plus every deposit made since (multi-star reshape, hub capital pledges,
// dynamic opens and top-ups).
func (n *Network) ExpectedFunds() float64 { return n.capitalIn }

// CheckConservation verifies the conservation-of-funds invariant. The
// tolerance scales with the capital in the system: each HTLC operation moves
// exactly what the 1e-9 Settle/Refund tolerance admits, so the live sum can
// drift from the recorded inflow only by accumulated float rounding.
func (n *Network) CheckConservation() error {
	total, want := n.TotalFunds(), n.capitalIn
	tol := 1e-9 * (1 + want)
	if diff := total - want; diff > tol || diff < -tol {
		return fmt.Errorf("pcn: funds not conserved: have %v, expected %v (diff %v, tolerance %v)",
			total, want, total-want, tol)
	}
	return nil
}
