package pcn

import (
	"testing"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/rng"
	"github.com/splicer-pcn/splicer/internal/topology"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// invariantNetwork builds a small network plus trace for conservation tests.
func invariantNetwork(t *testing.T, scheme Scheme) (*Network, []workload.Tx) {
	t.Helper()
	src := rng.New(21)
	sizes := workload.NewChannelSizeDist(src.Split(1), 1)
	g, err := topology.WattsStrogatz(src.Split(2), 40, 4, 0.25, sizes.CapacityFunc())
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]graph.NodeID, g.NumNodes())
	for i := range clients {
		clients[i] = graph.NodeID(i)
	}
	trace, err := workload.Generate(src.Split(3), workload.Config{
		Clients:             clients,
		Rate:                60,
		Duration:            3,
		Timeout:             3,
		ZipfSkew:            0.8,
		ValueScale:          1,
		CirculationFraction: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewConfig(scheme)
	cfg.NumHubCandidates = 5
	n, err := NewNetwork(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n, trace
}

// TestConservationAllSchemes pins the conservation-of-funds invariant over a
// full static run of every registered scheme: balances plus in-flight HTLCs
// must match the recorded capital inflow at the end of the run.
func TestConservationAllSchemes(t *testing.T) {
	for _, scheme := range []Scheme{
		SchemeSplicer, SchemeSpider, SchemeFlash,
		SchemeLandmark, SchemeA2L, SchemeShortestPath,
	} {
		t.Run(scheme.String(), func(t *testing.T) {
			n, trace := invariantNetwork(t, scheme)
			if err := n.CheckConservation(); err != nil {
				t.Fatalf("pre-run: %v", err)
			}
			if _, err := n.Run(trace); err != nil {
				t.Fatal(err)
			}
			if err := n.CheckConservation(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConservationDetectsLeak makes sure the checker actually fires: burning
// funds out of a channel must break the invariant.
func TestConservationDetectsLeak(t *testing.T) {
	n, _ := invariantNetwork(t, SchemeShortestPath)
	ch := n.Channel(0)
	if err := ch.Lock(0, ch.Balance(0)/2); err != nil {
		t.Fatal(err)
	}
	// A lock conserves: balance moved to the in-flight bucket.
	if err := n.CheckConservation(); err != nil {
		t.Fatalf("lock broke conservation: %v", err)
	}
	// An unrecorded deposit is a mint from the checker's point of view.
	if err := ch.Deposit(0, 100); err != nil {
		t.Fatal(err)
	}
	if err := n.CheckConservation(); err == nil {
		t.Fatal("checker missed a 100-token mint")
	}
}

// TestConservationDynamicMutations covers the mid-run capital events: opens,
// top-ups, closes, rebalances and departures must keep the ledger aligned.
func TestConservationDynamicMutations(t *testing.T) {
	n, _ := invariantNetwork(t, SchemeShortestPath)
	if _, err := n.OpenChannel(1, 7, 120, 80); err != nil {
		t.Fatal(err)
	}
	if err := n.TopUpChannel(0, 25, 30); err != nil {
		t.Fatal(err)
	}
	n.RebalanceChannel(2, 0.5)
	if err := n.CloseChannel(3); err != nil {
		t.Fatal(err)
	}
	if err := n.DepartNode(11); err != nil {
		t.Fatal(err)
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}
