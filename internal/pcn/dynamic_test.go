package pcn

import (
	"testing"

	"github.com/splicer-pcn/splicer/internal/channel"
	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/routing"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// ringNetwork builds a 6-node ring with uniform funds under the
// ShortestPath scheme (no placement side effects).
func ringNetwork(t *testing.T) *Network {
	t.Helper()
	g := graph.New(6)
	for i := 0; i < 6; i++ {
		if _, err := g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%6), 100, 100); err != nil {
			t.Fatal(err)
		}
	}
	n, err := NewNetwork(g, NewConfig(SchemeShortestPath))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestCloseChannelInvalidatesRoutes is the invalidation-contract regression:
// a cached path through a removed channel must never be returned again.
func TestCloseChannelInvalidatesRoutes(t *testing.T) {
	n := ringNetwork(t)
	key := RouteKey{Src: 0, Dst: 2, Type: routing.KSP, K: 1}
	compute := func() ([]graph.Path, error) {
		return routing.SelectPathsWith(n.PathFinder(), 0, 2, 1, routing.KSP)
	}
	paths, err := n.Routes().GetOrCompute(key, compute)
	if err != nil || len(paths) != 1 {
		t.Fatalf("seed compute: %v paths, err %v", len(paths), err)
	}
	closed := paths[0].Edges[0] // first hop of the cached 0-1-2 path
	if err := n.CloseChannel(closed); err != nil {
		t.Fatal(err)
	}
	if n.Routes().Len() != 0 {
		t.Fatalf("route cache holds %d entries after close, want 0", n.Routes().Len())
	}
	paths, err = n.Routes().GetOrCompute(key, compute)
	if err != nil || len(paths) == 0 {
		t.Fatalf("recompute after close: %v paths, err %v", len(paths), err)
	}
	for _, p := range paths {
		for _, eid := range p.Edges {
			if eid == closed {
				t.Fatal("cached path routes through the closed channel")
			}
		}
		if !p.Valid(n.Graph()) {
			t.Fatal("recomputed path invalid on the mutated graph")
		}
	}
}

func TestOpenChannelInvalidatesRoutes(t *testing.T) {
	n := ringNetwork(t)
	key := RouteKey{Src: 0, Dst: 3, Type: routing.KSP, K: 1}
	if _, err := n.Routes().GetOrCompute(key, func() ([]graph.Path, error) {
		return routing.SelectPathsWith(n.PathFinder(), 0, 3, 1, routing.KSP)
	}); err != nil {
		t.Fatal(err)
	}
	eid, err := n.OpenChannel(0, 3, 50, 50)
	if err != nil {
		t.Fatal(err)
	}
	if n.Routes().Len() != 0 {
		t.Fatal("route cache not invalidated by OpenChannel")
	}
	if n.Channel(eid).Balance(channel.Fwd) != 50 {
		t.Fatalf("new channel balance = %v, want 50", n.Channel(eid).Balance(channel.Fwd))
	}
	// The shortest 0→3 route now uses the new direct channel.
	p, ok := n.PathFinder().ShortestPath(0, 3, graph.UnitWeight)
	if !ok || p.Len() != 1 || p.Edges[0] != eid {
		t.Fatalf("direct path not found after open: ok=%v len=%d", ok, p.Len())
	}
}

func TestTopUpChannel(t *testing.T) {
	n := ringNetwork(t)
	if err := n.TopUpChannel(0, 25, 5); err != nil {
		t.Fatal(err)
	}
	ch := n.Channel(0)
	if ch.Balance(channel.Fwd) != 125 || ch.Balance(channel.Rev) != 105 {
		t.Fatalf("balances = %v/%v, want 125/105", ch.Balance(channel.Fwd), ch.Balance(channel.Rev))
	}
	e := n.Graph().Edge(0)
	if e.CapFwd != 125 || e.CapRev != 105 {
		t.Fatalf("graph caps = %v/%v, want 125/105 (path selection must see top-ups)", e.CapFwd, e.CapRev)
	}
	if err := n.TopUpChannel(0, -1, 0); err == nil {
		t.Fatal("negative top-up succeeded")
	}
	if err := n.CloseChannel(0); err != nil {
		t.Fatal(err)
	}
	if err := n.TopUpChannel(0, 1, 1); err == nil {
		t.Fatal("top-up on closed channel succeeded")
	}
}

func TestRebalanceChannel(t *testing.T) {
	n := ringNetwork(t)
	ch := n.Channel(2)
	if err := ch.Lock(channel.Fwd, 60); err != nil {
		t.Fatal(err)
	}
	if err := ch.Settle(channel.Fwd, 60); err != nil {
		t.Fatal(err)
	}
	// Now 40/160: a full rebalance evens the split.
	if moved := n.RebalanceChannel(2, 1); moved != 60 {
		t.Fatalf("moved = %v, want 60", moved)
	}
	if ch.Balance(channel.Fwd) != 100 || ch.Balance(channel.Rev) != 100 {
		t.Fatalf("balances = %v/%v, want 100/100", ch.Balance(channel.Fwd), ch.Balance(channel.Rev))
	}
}

func TestDepartNodeClosesChannels(t *testing.T) {
	n := ringNetwork(t)
	if err := n.DepartNode(1); err != nil {
		t.Fatal(err)
	}
	if !n.Departed(1) {
		t.Fatal("Departed(1) false")
	}
	if n.Graph().Degree(1) != 0 {
		t.Fatalf("departed node still has %d edges", n.Graph().Degree(1))
	}
	if !n.Channel(0).Closed() || !n.Channel(1).Closed() {
		t.Fatal("incident channels not closed on departure")
	}
	// The ring minus one node is a line; 0→2 detours the long way.
	p, ok := n.PathFinder().ShortestPath(0, 2, graph.UnitWeight)
	if !ok || p.Len() != 4 {
		t.Fatalf("detour after departure: ok=%v len=%d, want 4", ok, p.Len())
	}
	if err := n.DepartNode(1); err == nil {
		t.Fatal("double departure succeeded")
	}
	if _, err := n.OpenChannel(0, 1, 10, 10); err == nil {
		t.Fatal("open to departed node succeeded")
	}
}

// TestJoinNodeRoutable: a joined node becomes routable once connected, and
// the shared PathFinder (created before the join) serves it.
func TestJoinNodeRoutable(t *testing.T) {
	n := ringNetwork(t)
	pf := n.PathFinder() // force creation before the join
	v := n.JoinNode()
	if v != 6 {
		t.Fatalf("joined node id = %d, want 6", v)
	}
	if _, err := n.OpenChannel(v, 0, 30, 30); err != nil {
		t.Fatal(err)
	}
	p, ok := pf.ShortestPath(3, v, graph.UnitWeight)
	if !ok || p.Len() != 4 {
		t.Fatalf("path to joined node: ok=%v len=%d, want 4", ok, p.Len())
	}
}

// TestRePlaceHubsAfterHubDeparture: a Splicer network whose hub departs
// re-homes the orphaned clients on the next re-placement.
func TestRePlaceHubsAfterHubDeparture(t *testing.T) {
	g := graph.New(12)
	// Two dense centers (0 and 1) bridged, with 5 spokes each.
	mustEdge := func(u, v graph.NodeID) {
		if _, err := g.AddEdge(u, v, 200, 200); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge(0, 1)
	for i := 2; i < 7; i++ {
		mustEdge(0, graph.NodeID(i))
	}
	for i := 7; i < 12; i++ {
		mustEdge(1, graph.NodeID(i))
	}
	// Cross links so the graph stays connected when a center departs.
	mustEdge(2, 7)
	mustEdge(3, 8)
	cfg := NewConfig(SchemeSplicer)
	cfg.NumHubCandidates = 2
	n, err := NewNetwork(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hubs := n.Hubs()
	if len(hubs) == 0 {
		t.Fatal("setup placed no hubs")
	}
	dead := hubs[0]
	if err := n.DepartNode(dead); err != nil {
		t.Fatal(err)
	}
	for _, h := range n.Hubs() {
		if h == dead {
			t.Fatal("departed hub still listed")
		}
	}
	if err := n.RePlaceHubs(); err != nil {
		t.Fatal(err)
	}
	if len(n.Hubs()) == 0 {
		t.Fatal("re-placement produced no hubs")
	}
	for _, h := range n.Hubs() {
		if n.Departed(h) {
			t.Fatal("re-placement selected a departed node as hub")
		}
	}
	// Every active non-hub client is re-homed to an active hub.
	for v := 0; v < n.Graph().NumNodes(); v++ {
		id := graph.NodeID(v)
		if n.Departed(id) {
			continue
		}
		if h, ok := n.HubOf(id); ok && n.Departed(h) {
			t.Fatalf("client %d still assigned to departed hub %d", id, h)
		}
	}
}

// TestDynamicRunSurvivesChannelClose drives a payment trace while closing a
// channel mid-run through the stepwise run API.
func TestDynamicRunSurvivesChannelClose(t *testing.T) {
	n := ringNetwork(t)
	trace := []workload.Tx{
		{ID: 0, Sender: 0, Recipient: 2, Value: 5, Arrival: 0.1, Deadline: 3.1},
		{ID: 1, Sender: 3, Recipient: 5, Value: 5, Arrival: 1.5, Deadline: 4.5},
	}
	horizon := 5.0
	if err := n.BeginRun(horizon); err != nil {
		t.Fatal(err)
	}
	for _, tx := range trace {
		if err := n.ScheduleArrival(tx); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.At(1.0, func() {
		if err := n.CloseChannel(0); err != nil {
			t.Errorf("mid-run close: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	res, err := n.Execute(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated != 2 {
		t.Fatalf("Generated = %d, want 2", res.Generated)
	}
	if res.Completed < 1 {
		t.Fatalf("Completed = %d, want >= 1 (ring has detours)", res.Completed)
	}
}
