package pcn

// Serving-mode concurrency tests: the sharded RouteCache under concurrent
// readers + an invalidating writer, and snapshot isolation at the Network
// level — a churn writer (join/leave/open/close/top-up/re-placement)
// publishing epochs through InvalidateRoutes while reader goroutines query
// pinned snapshots. Run with -race in CI.

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/splicer-pcn/splicer/internal/graph"
)

func TestRouteCacheConcurrentReaders(t *testing.T) {
	c := NewRouteCache()
	const readers = 8
	const perReader = 2000
	var readersWG, writerWG sync.WaitGroup
	var stop atomic.Bool

	writerWG.Add(1)
	go func() { // invalidating writer
		defer writerWG.Done()
		for !stop.Load() {
			c.Invalidate()
		}
	}()
	for r := 0; r < readers; r++ {
		readersWG.Add(1)
		go func(seed int64) {
			defer readersWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perReader; i++ {
				key := RouteKey{
					Src: graph.NodeID(rng.Intn(50)),
					Dst: graph.NodeID(rng.Intn(50)),
					K:   1 + rng.Intn(3),
				}
				want := []graph.Path{{Nodes: []graph.NodeID{key.Src, key.Dst}}}
				got, err := c.GetOrCompute(key, func() ([]graph.Path, error) {
					return want, nil
				})
				if err != nil || len(got) != 1 {
					panic(fmt.Sprintf("GetOrCompute: %v %v", got, err))
				}
				c.Get(key)
				c.Put(key, want)
				c.Len()
			}
		}(int64(r))
	}
	readersWG.Wait()
	stop.Store(true)
	writerWG.Wait()
	// Every Get and GetOrCompute counted exactly once despite the races.
	if got := c.Hits() + c.Misses(); got != 2*readers*perReader {
		t.Fatalf("counters lost updates: hits %d + misses %d = %d, want %d",
			c.Hits(), c.Misses(), got, 2*readers*perReader)
	}
}

// TestRouteCacheSingleThreadedSemantics pins that sharding did not change
// the sequential arithmetic the batch simulator (and its Result counters)
// observes.
func TestRouteCacheSingleThreadedSemantics(t *testing.T) {
	c := NewRouteCache()
	key := RouteKey{Src: 1, Dst: 2, Type: ComposedRoutes, K: 3}
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key, nil) // unroutable marker
	if paths, ok := c.Get(key); !ok || paths != nil {
		t.Fatal("unroutable marker lost")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", c.Hits(), c.Misses())
	}
	if c.Generation() != 0 {
		t.Fatalf("fresh generation = %d", c.Generation())
	}
	c.Invalidate()
	if c.Generation() != 1 || c.Len() != 0 {
		t.Fatalf("after invalidate: gen %d len %d", c.Generation(), c.Len())
	}
}

// testServingNetwork builds a Splicer network with hubs placed and
// snapshots enabled — the serving deployment's starting state.
func testServingNetwork(t *testing.T, seed uint64, nodes int) *Network {
	t.Helper()
	g, _ := testGraphAndTrace(t, seed, nodes, 1, 1)
	cfg := NewConfig(SchemeSplicer)
	n, err := NewNetwork(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.EnableSnapshots()
	return n
}

// churnNetworkStep applies one random Network-level churn operation — the
// same op mix the dynamics driver issues.
func churnNetworkStep(rng *rand.Rand, n *Network) {
	g := n.Graph()
	switch op := rng.Intn(12); {
	case op == 0: // join + connect
		v := n.JoinNode()
		for i := 0; i < 2; i++ {
			u := graph.NodeID(rng.Intn(int(v)))
			if u != v && !n.Departed(u) {
				n.OpenChannel(u, v, 50+rng.Float64()*50, 50+rng.Float64()*50)
			}
		}
	case op == 1: // departure
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		if !n.Departed(v) && g.Degree(v) < 6 && !n.isHub[v] {
			n.DepartNode(v)
		}
	case op < 5: // open
		u := graph.NodeID(rng.Intn(g.NumNodes()))
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		if u != v && !n.Departed(u) && !n.Departed(v) {
			n.OpenChannel(u, v, 50+rng.Float64()*50, 50+rng.Float64()*50)
		}
	case op < 8: // close
		if g.NumEdges() > 0 {
			id := graph.EdgeID(rng.Intn(g.NumEdges()))
			if !g.EdgeRemoved(id) && !n.Channel(id).Closed() && g.NumLiveEdges() > 40 {
				n.CloseChannel(id)
			}
		}
	default: // top-up
		if g.NumEdges() > 0 {
			id := graph.EdgeID(rng.Intn(g.NumEdges()))
			if !g.EdgeRemoved(id) && !n.Channel(id).Closed() {
				n.TopUpChannel(id, rng.Float64()*20, rng.Float64()*20)
			}
		}
	}
}

// TestNetworkSnapshotChurnVsReaders is the Network-level -race acceptance
// test: one writer goroutine owns the Network and applies churn (each
// mutation publishing an epoch via InvalidateRoutes) while 8 readers pin
// epochs and query them. Readers must only ever observe fully published
// topologies (ValidateSnapshot) and structurally valid paths; epochs are
// monotone per reader; no pins leak.
func TestNetworkSnapshotChurnVsReaders(t *testing.T) {
	const readers = 8
	n := testServingNetwork(t, 41, 80)
	st := n.Snapshots()

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, readers)

	wg.Add(1)
	go func() { // writer: owns the Network
		defer wg.Done()
		rng := rand.New(rand.NewSource(4))
		for round := 0; round < 150; round++ {
			churnNetworkStep(rng, n)
			if round%50 == 49 {
				if err := n.RePlaceHubs(); err != nil {
					errs <- err
					break
				}
			}
		}
		stop.Store(true)
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var pf *graph.PathFinder
			var lastEpoch uint64
			for !stop.Load() {
				s := st.Acquire()
				if s == nil {
					errs <- fmt.Errorf("nil snapshot after EnableSnapshots")
					return
				}
				if s.Epoch() < lastEpoch {
					errs <- fmt.Errorf("epoch went backwards: %d -> %d", lastEpoch, s.Epoch())
					s.Release()
					return
				}
				lastEpoch = s.Epoch()
				sg := s.Graph()
				if err := graph.ValidateSnapshot(sg); err != nil {
					errs <- fmt.Errorf("epoch %d: %w", s.Epoch(), err)
					s.Release()
					return
				}
				if pf == nil {
					pf = graph.NewPathFinder(sg)
				} else {
					pf.Rebind(sg)
				}
				nn := sg.NumNodes()
				for q := 0; q < 4; q++ {
					src := graph.NodeID(rng.Intn(nn))
					dst := graph.NodeID(rng.Intn(nn))
					if p, ok := pf.UnitShortestPath(src, dst); ok && !p.Valid(sg) {
						errs <- fmt.Errorf("epoch %d: invalid unit path %d->%d", s.Epoch(), src, dst)
						s.Release()
						return
					}
					if v, ok := s.Labels(); ok {
						hubs := v.Hubs()
						hub := hubs[rng.Intn(len(hubs))]
						for _, p := range v.KShortestPathsUnit(pf, hub, dst, 3) {
							if !p.Valid(sg) {
								errs <- fmt.Errorf("epoch %d: invalid label KSP %d->%d", s.Epoch(), hub, dst)
								s.Release()
								return
							}
						}
					}
				}
				s.Release()
			}
		}(int64(10 + r))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if pins := st.ActivePins(); pins != 0 {
		t.Fatalf("leaked %d pins", pins)
	}
	if st.Epoch() < 50 {
		t.Fatalf("writer published only %d epochs", st.Epoch())
	}
}

// TestSnapshotEpochRoutingEquivalence carries the routing_override_test.go
// contract to snapshots: per epoch, label-served answers through the
// snapshot's LabelView are byte-identical to exact PathFinder answers on
// the same frozen graph — the equivalence the batch test pins for the live
// graph holds for every published epoch under churn.
func TestSnapshotEpochRoutingEquivalence(t *testing.T) {
	n := testServingNetwork(t, 42, 70)
	st := n.Snapshots()
	rng := rand.New(rand.NewSource(6))
	for round := 0; round < 25; round++ {
		churnNetworkStep(rng, n)
		if round%10 == 9 {
			if err := n.RePlaceHubs(); err != nil {
				t.Fatal(err)
			}
		}
		s := st.Acquire()
		sg := s.Graph()
		v, ok := s.Labels()
		if !ok {
			t.Fatalf("round %d: snapshot has no labels despite placed hubs", round)
		}
		exact := graph.NewPathFinder(sg)
		viewPF := graph.NewPathFinder(sg)
		nn := sg.NumNodes()
		for q := 0; q < 25; q++ {
			hubs := v.Hubs()
			hub := hubs[q%len(hubs)]
			dst := graph.NodeID(rng.Intn(nn))
			vp, vok := v.UnitShortestPath(viewPF, hub, dst)
			ep, eok := exact.UnitShortestPath(hub, dst)
			if vok != eok || (vok && !vp.Equal(ep)) {
				t.Fatalf("round %d epoch %d: unit path diverges for %d->%d", round, s.Epoch(), hub, dst)
			}
			vk := v.KShortestPathsUnit(viewPF, hub, dst, 3)
			ek := exact.KShortestPathsUnit(hub, dst, 3)
			if len(vk) != len(ek) {
				t.Fatalf("round %d epoch %d: KSP count diverges for %d->%d", round, s.Epoch(), hub, dst)
			}
			for i := range vk {
				if !vk[i].Equal(ek[i]) {
					t.Fatalf("round %d epoch %d: KSP[%d] diverges for %d->%d", round, s.Epoch(), i, hub, dst)
				}
			}
		}
		s.Release()
	}
}

// TestBatchModeHasNoSnapshotStore pins the zero-overhead contract: a batch
// Network never attaches a store, so publication is a nil-check no-op and
// golden panels cannot be affected by the serving layer.
func TestBatchModeHasNoSnapshotStore(t *testing.T) {
	g, trace := testGraphAndTrace(t, 43, 40, 20, 2)
	n, err := NewNetwork(g, NewConfig(SchemeSplicer))
	if err != nil {
		t.Fatal(err)
	}
	if n.Snapshots() != nil {
		t.Fatal("batch network has a snapshot store")
	}
	if _, err := n.Run(trace); err != nil {
		t.Fatal(err)
	}
	if n.Snapshots() != nil {
		t.Fatal("running a batch simulation attached a snapshot store")
	}
}

// TestEnableSnapshotsTracksReplacement pins that a hub re-placement carries
// the new root set into subsequent epochs.
func TestEnableSnapshotsTracksReplacement(t *testing.T) {
	n := testServingNetwork(t, 44, 60)
	st := n.Snapshots()
	if err := n.RePlaceHubs(); err != nil {
		t.Fatal(err)
	}
	s := st.Acquire()
	defer s.Release()
	v, ok := s.Labels()
	if !ok {
		t.Fatal("no labels after re-placement")
	}
	want := n.Hubs()
	got := v.Hubs()
	if len(got) < len(want) {
		t.Fatalf("snapshot labels have %d roots, network has %d hubs", len(got), len(want))
	}
	rooted := map[graph.NodeID]bool{}
	for _, h := range got {
		rooted[h] = true
	}
	for _, h := range want {
		if !rooted[h] {
			t.Fatalf("hub %d missing from snapshot label roots %v", h, got)
		}
	}
}
