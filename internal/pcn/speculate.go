package pcn

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// Speculative payment-level parallelism (ROADMAP item 3, speculative shape).
//
// The discrete-event engine stays single-threaded: event ordering, channel
// state, HTLC locking, rate control and metrics all remain exactly the
// serial simulator. What parallelizes is the part the PR 4 profile showed
// dominating big cells — route planning. For every scheme except Flash,
// SchemePolicy.Plan is a pure function of the routed topology (static edge
// capacities, hub assignments, config, and the payment endpoints): live
// channel balances never feed into path selection, and every topology
// mutation funnels through Network.InvalidateRoutes. That purity is what
// makes speculation sound, and policies opt into it explicitly via the
// SpeculativePlanner marker.
//
// Shape: when a run is armed (Config.Parallelism >= 2, exact routing, a
// marker-bearing policy), every payment handed to ScheduleArrival/Arrive is
// also enqueued to a bounded worker pool. Each worker owns a shadow Network
// — a shallow copy of the live one bound to a private graph.PathFinder —
// and speculatively executes the real policy.Plan against it. The plan
// result itself is discarded; the useful effect is a warmed session memo
// (specSession.entries) keyed by RouteKey, with each entry recording the
// nested planRoutes calls its computation performed (children), in order.
//
// The serial dispatch path then re-runs Plan as before, but planRoutes
// resolves cache misses from the memo by *replaying* the recorded lookup
// tree against the live RouteCache in the exact order the serial compute
// would have performed it — same Get/Put sequence, same hit/miss counter
// arithmetic, same stored values (the workers computed them over the same
// topology generation with the same deterministic finder). Payments whose
// speculation raced a topology mutation simply miss the memo and compute
// serially, which is the rollback-and-replay-in-timestamp-order fallback:
// the committed event stream, every metric, and every figure CSV are
// byte-identical to the serial run by construction (and pinned by the
// golden-conformance suite with parallelism forced on).
//
// Mutation safety: every mutator of worker-visible state (dynamic.go's
// channel/node operations, RePlaceHubs, ReshapeMultiStar, CapitalizeHubs)
// brackets itself with pauseSpeculation/resumeSpeculation, which waits out
// in-flight plans; InvalidateRoutes drops the memo alongside the live
// cache. Workers only ever block on each other's leader entries (the key
// space is a DAG: composed routes depend on transit legs, never the
// reverse), so pausing cannot deadlock.

// SpeculativePlanner marks a SchemePolicy whose Plan is a pure function of
// the routed topology and may therefore run speculatively on a worker
// against a shadow Network. Implementations promise that Plan (including
// everything reachable from it) never reads live channel balances, never
// mutates policy or network state shared beyond the RouteCache funnel, and
// routes every cached computation through Network.planRoutes. Flash does
// not qualify: its elephant paths read the τ-stale balance view and its
// mice path choice consumes per-payment state.
type SpeculativePlanner interface {
	SpeculationSafe() bool
}

// speculationArmed reports whether cfg+policy can run the speculative
// planning pool. Hub-label routing is excluded: the label tier's
// Served/Fallback/Builds counters flow into the Result (and panel CSVs),
// and its lazy per-hub tree builds mutate shared state per query — both
// would diverge under concurrent planning.
func speculationArmed(cfg Config, policy SchemePolicy) bool {
	if cfg.Parallelism < 2 || cfg.RoutingOverride != RoutingExact {
		return false
	}
	sp, ok := policy.(SpeculativePlanner)
	return ok && sp.SpeculationSafe()
}

// specEntry is one memoized route computation. The creating worker (leader)
// fills paths/err/children and closes done; concurrent workers needing the
// same key — and the serial committer, if dispatch catches up with an
// in-flight plan — wait on done. children lists the RouteKeys the leader's
// compute consulted via nested planRoutes, in call order, whether they were
// served from the live cache or from sibling entries: the commit replay
// reproduces the serial lookup sequence from it.
type specEntry struct {
	done     chan struct{}
	paths    []graph.Path
	err      error
	children []RouteKey
}

// SpeculationStats reports the speculative planning pool's activity. All
// zero for serial runs. The stats are observability-only: they are not part
// of Result, so result rows and CSVs stay column-identical to serial runs.
type SpeculationStats struct {
	Workers     int
	Enqueued    uint64 // payments handed to the pool
	Planned     uint64 // speculative plans executed (incl. aborted ones)
	MemoHits    uint64 // dispatch plans served by replaying the memo
	SerialPlans uint64 // dispatch plans computed serially (memo miss/stale)
	Pauses      uint64 // mutator quiesce barriers taken
}

// specSession is the per-run speculative planning pool.
type specSession struct {
	n       *Network // live network (serial committer's view)
	workers int

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []workload.Tx
	head    int
	paused  int // pause depth (mutator re-entrancy: DepartNode→CloseChannel)
	active  int // workers currently inside a speculative plan
	started bool
	closing bool
	wg      sync.WaitGroup

	emu     sync.RWMutex
	entries map[RouteKey]*specEntry

	enqueued    atomic.Uint64
	planned     atomic.Uint64
	memoHits    atomic.Uint64
	serialPlans atomic.Uint64
	pauses      atomic.Uint64
}

func newSpecSession(n *Network, workers int) *specSession {
	sp := &specSession{
		n:       n,
		workers: workers,
		entries: map[RouteKey]*specEntry{},
	}
	sp.cond = sync.NewCond(&sp.mu)
	return sp
}

// enqueue hands a payment to the pool, starting the workers lazily on first
// use (so networks that never schedule arrivals never spawn goroutines).
// Runs on the serial goroutine only.
func (sp *specSession) enqueue(tx workload.Tx) {
	sp.enqueued.Add(1)
	sp.mu.Lock()
	if !sp.started {
		sp.started = true
		sp.closing = false
		// The one-time lazy CSR build must not race the workers' private
		// finders; force it from the serial goroutine before any start.
		sp.n.g.EnsureCSR()
		for i := 0; i < sp.workers; i++ {
			w := sp.newWorker()
			sp.wg.Add(1)
			go w.loop()
		}
	}
	sp.queue = append(sp.queue, tx)
	sp.mu.Unlock()
	sp.cond.Signal()
}

// stop tears the pool down, waiting out in-flight plans so no goroutine
// touches the graph after Execute returns. Pending unplanned payments are
// dropped (their dispatch already happened or will compute serially). The
// session stays reusable: a later enqueue restarts the workers.
func (sp *specSession) stop() {
	sp.mu.Lock()
	if !sp.started {
		sp.mu.Unlock()
		return
	}
	sp.closing = true
	sp.mu.Unlock()
	sp.cond.Broadcast()
	sp.wg.Wait()
	sp.mu.Lock()
	sp.started = false
	sp.queue = nil
	sp.head = 0
	sp.mu.Unlock()
}

// pause quiesces the pool: it blocks until no worker is inside a plan and
// holds new plans off until the matching resume. Nested pause/resume pairs
// (mutators calling mutators) stack. Serial goroutine only.
func (sp *specSession) pause() {
	sp.pauses.Add(1)
	sp.mu.Lock()
	sp.paused++
	for sp.active > 0 {
		sp.cond.Wait()
	}
	sp.mu.Unlock()
}

func (sp *specSession) resume() {
	sp.mu.Lock()
	sp.paused--
	sp.mu.Unlock()
	sp.cond.Broadcast()
}

// invalidate drops the memo. Called from InvalidateRoutes on the serial
// goroutine; the surrounding mutator holds the pause, so no worker is
// mid-plan and no waiter is parked on an entry.
func (sp *specSession) invalidate() {
	sp.emu.Lock()
	sp.entries = map[RouteKey]*specEntry{}
	sp.emu.Unlock()
}

func (sp *specSession) lookup(key RouteKey) *specEntry {
	sp.emu.RLock()
	e := sp.entries[key]
	sp.emu.RUnlock()
	return e
}

// entry returns the memo entry for key, creating it if absent. leader is
// true for the creator, which must fill the entry and close done.
func (sp *specSession) entry(key RouteKey) (e *specEntry, leader bool) {
	sp.emu.Lock()
	e = sp.entries[key]
	if e == nil {
		e = &specEntry{done: make(chan struct{})}
		sp.entries[key] = e
		leader = true
	}
	sp.emu.Unlock()
	return e, leader
}

// stats snapshots the pool counters.
func (sp *specSession) stats() SpeculationStats {
	return SpeculationStats{
		Workers:     sp.workers,
		Enqueued:    sp.enqueued.Load(),
		Planned:     sp.planned.Load(),
		MemoHits:    sp.memoHits.Load(),
		SerialPlans: sp.serialPlans.Load(),
		Pauses:      sp.pauses.Load(),
	}
}

// specWorker is one planning worker: a shadow Network (shallow copy of the
// live one with a private PathFinder) plus the per-worker plan context.
type specWorker struct {
	sess   *specSession
	shadow *Network
	ctx    specWorkerCtx
}

// specWorkerCtx threads the memo through a worker's (possibly nested) plan
// computation; cur is the entry currently being computed, so nested
// planRoutes calls register as its children.
type specWorkerCtx struct {
	sess *specSession
	cur  *specEntry
}

// newWorker builds a worker with its shadow Network. The shadow shares the
// graph, channel slice, hub maps and config with the live network — all
// either immutable during speculation or mutated only under pause — but
// owns its PathFinder (Dijkstra scratch is the one per-query mutable state
// Plan needs). Speculation is exact-routing-only, so the copied label-tier
// pointers are never consulted (HubLabels() returns nil).
func (sp *specSession) newWorker() *specWorker {
	w := &specWorker{sess: sp}
	w.ctx.sess = sp
	shadow := *sp.n
	shadow.pathFinder = graph.NewPathFinder(sp.n.g)
	shadow.spec = nil
	shadow.specCtx = &w.ctx
	w.shadow = &shadow
	return w
}

func (w *specWorker) loop() {
	sp := w.sess
	defer sp.wg.Done()
	for {
		sp.mu.Lock()
		for {
			if sp.closing {
				sp.mu.Unlock()
				return
			}
			if sp.paused == 0 && sp.head < len(sp.queue) {
				break
			}
			sp.cond.Wait()
		}
		tx := sp.queue[sp.head]
		sp.head++
		sp.active++
		sp.mu.Unlock()

		w.plan(tx)

		sp.mu.Lock()
		sp.active--
		wake := sp.active == 0 && sp.paused > 0
		sp.mu.Unlock()
		if wake {
			sp.cond.Broadcast() // release a waiting pause()
		}
	}
}

// plan speculatively executes the policy's Plan against the shadow. The
// result is discarded — the warmed memo is the product. Panics are captured
// into the in-flight entry (planSpeculative's recover) or swallowed here;
// the serial committer recomputes and surfaces them debuggably.
func (w *specWorker) plan(tx workload.Tx) {
	w.sess.planned.Add(1)
	// SetHubs reassigns the hub slice (online re-placement); re-sync per
	// plan. Safe: hub mutations happen only under pause.
	w.shadow.hubs = w.sess.n.hubs
	defer func() { _ = recover() }() // see planSpeculative
	w.shadow.policy.Plan(w.shadow, tx)
}

// planSpeculative is planRoutes on a shadow Network: resolve from the live
// cache (counter-free Peek) or the memo, becoming the leader and computing
// when the key is cold. Every key consulted is recorded as a child of the
// enclosing computation.
func (ctx *specWorkerCtx) planSpeculative(key RouteKey, compute func() ([]graph.Path, error)) ([]graph.Path, error) {
	sp := ctx.sess
	if paths, ok := sp.n.routes.Peek(key); ok {
		ctx.record(key)
		return paths, nil
	}
	e, leader := sp.entry(key)
	if !leader {
		<-e.done
		ctx.record(key)
		return e.paths, e.err
	}
	parent := ctx.cur
	ctx.cur = e
	func() {
		defer func() {
			if r := recover(); r != nil {
				e.err = fmt.Errorf("pcn: speculative plan panicked: %v", r)
			}
		}()
		e.paths, e.err = compute()
	}()
	ctx.cur = parent
	close(e.done)
	ctx.record(key)
	if e.err != nil {
		// Propagate (panics included, as errors) so outer computes abort;
		// the entry is terminally erred for any waiter, and the serial
		// committer will recompute — resurfacing a panic debuggably on the
		// main goroutine.
		return nil, e.err
	}
	return e.paths, nil
}

func (ctx *specWorkerCtx) record(key RouteKey) {
	if ctx.cur != nil {
		ctx.cur.children = append(ctx.cur.children, key)
	}
}

// planCommit is planRoutes on the armed live network (serial goroutine).
// It reproduces GetOrCompute's observable behavior exactly: Get bumps one
// hit on a hit and one miss on a miss — the same arithmetic GetOrCompute
// performs — and on a miss either replays the memo (identical values,
// identical nested Get/Put order) or falls back to the serial compute.
func (sp *specSession) planCommit(key RouteKey, compute func() ([]graph.Path, error)) ([]graph.Path, error) {
	if paths, ok := sp.n.routes.Get(key); ok {
		return paths, nil
	}
	if e := sp.lookup(key); e != nil {
		<-e.done // bounded: one route computation
		if e.err == nil && sp.replayable(e) {
			sp.replay(e)
			sp.n.routes.Put(key, e.paths)
			sp.memoHits.Add(1)
			return e.paths, nil
		}
	}
	sp.serialPlans.Add(1)
	paths, err := compute()
	if err != nil {
		return nil, err
	}
	sp.n.routes.Put(key, paths)
	return paths, nil
}

// replayable reports whether e's full child tree can be reproduced against
// the live cache without side effects (Peek only): every child either
// already committed or has an error-free memo entry. In the current
// lifecycle this cannot fail for a surviving entry — children are either
// live-cache hits that persist until an invalidation (which also drops e) or
// memo entries dropped only by that same invalidation — but verifying first
// keeps the counter arithmetic exact even if a future change breaks that.
func (sp *specSession) replayable(e *specEntry) bool {
	for _, ck := range e.children {
		if _, ok := sp.n.routes.Peek(ck); ok {
			continue
		}
		ce := sp.lookup(ck)
		if ce == nil {
			return false
		}
		<-ce.done
		if ce.err != nil || !sp.replayable(ce) {
			return false
		}
	}
	return true
}

// replay performs the recorded lookup tree's live-cache effects in call
// order: a Get per child (hit if some earlier commit stored it, else a
// miss), recursing into and then Put-ing entries not yet committed —
// exactly the sequence the serial nested GetOrCompute calls would have
// produced.
func (sp *specSession) replay(e *specEntry) {
	for _, ck := range e.children {
		if _, ok := sp.n.routes.Get(ck); ok {
			continue
		}
		ce := sp.lookup(ck) // non-nil: replayable() verified
		sp.replay(ce)
		sp.n.routes.Put(ck, ce.paths)
	}
}

// planRoutes is the route-computation funnel every speculation-safe policy
// uses instead of calling Routes().GetOrCompute directly. Three modes:
// worker shadow (memoize speculatively), armed live network (commit via
// memo replay), plain serial (exact GetOrCompute passthrough — one nil
// check, no allocation).
func (n *Network) planRoutes(key RouteKey, compute func() ([]graph.Path, error)) ([]graph.Path, error) {
	if n.specCtx != nil {
		return n.specCtx.planSpeculative(key, compute)
	}
	if n.spec != nil {
		return n.spec.planCommit(key, compute)
	}
	return n.routes.GetOrCompute(key, compute)
}

// pauseSpeculation quiesces the speculative planning pool before a mutation
// of worker-visible state; resumeSpeculation releases it. No-ops (one nil
// check) on serial runs. Pairs nest.
func (n *Network) pauseSpeculation() {
	if n.spec != nil {
		n.spec.pause()
	}
}

func (n *Network) resumeSpeculation() {
	if n.spec != nil {
		n.spec.resume()
	}
}

// SpeculationStats returns the speculative planning pool's counters (zero
// Stats on serial runs).
func (n *Network) SpeculationStats() SpeculationStats {
	if n.spec == nil {
		return SpeculationStats{}
	}
	return n.spec.stats()
}
