package pcn

import (
	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/topology"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// landmarkPolicy routes through well-known landmark nodes: path_i =
// s→lm_i→r, splitting the value evenly across the landmarks reachable from
// both ends. The policy owns its elected landmark set.
type landmarkPolicy struct {
	basePolicy
	landmarks []graph.NodeID
}

func (p *landmarkPolicy) Setup(n *Network) error {
	p.landmarks = topology.TopDegreeNodes(n.g, n.cfg.NumPaths)
	return nil
}

func (p *landmarkPolicy) Plan(n *Network, tx workload.Tx) ([]graph.Path, []Allocation, error) {
	// Landmark routes are capacity-independent, so repeat pairs hit the
	// shared route cache instead of recomputing the per-landmark detours.
	key := RouteKey{Src: tx.Sender, Dst: tx.Recipient, Type: ComposedRoutes, K: n.cfg.NumPaths}
	paths, err := n.Routes().GetOrCompute(key, func() ([]graph.Path, error) {
		pf := n.PathFinder()
		var out []graph.Path
		for _, lm := range p.landmarks {
			if lm == tx.Sender || lm == tx.Recipient {
				if pa, ok := pf.ShortestPath(tx.Sender, tx.Recipient, graph.UnitWeight); ok {
					out = append(out, pa)
				}
				continue
			}
			p1, ok1 := pf.ShortestPath(tx.Sender, lm, graph.UnitWeight)
			p2, ok2 := pf.ShortestPath(lm, tx.Recipient, graph.UnitWeight)
			if ok1 && ok2 {
				out = append(out, concatPaths(p1, p2))
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, nil, err
	}
	if len(paths) == 0 {
		return nil, nil, nil
	}
	share := tx.Value / float64(len(paths))
	allocs := make([]Allocation, len(paths))
	for i := range paths {
		allocs[i] = Allocation{PathIdx: i, Value: share}
	}
	return paths, allocs, nil
}
