package pcn

import (
	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/topology"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// landmarkPolicy routes through well-known landmark nodes: path_i =
// s→lm_i→r, splitting the value evenly across the landmarks reachable from
// both ends. The policy owns its elected landmark set.
type landmarkPolicy struct {
	basePolicy
	landmarks []graph.NodeID
}

func (p *landmarkPolicy) Setup(n *Network) error {
	p.landmarks = topology.TopDegreeNodes(n.g, n.cfg.NumPaths)
	// The landmark→recipient detour tails are landmark-rooted unit queries,
	// so the label tier can precompute them when the override is on.
	n.AddLabelRoots(p.landmarks)
	return nil
}

func (p *landmarkPolicy) Plan(n *Network, tx workload.Tx) ([]graph.Path, []Allocation, error) {
	// Landmark routes are capacity-independent, so repeat pairs hit the
	// shared route cache instead of recomputing the per-landmark detours.
	key := RouteKey{Src: tx.Sender, Dst: tx.Recipient, Type: ComposedRoutes, K: n.cfg.NumPaths}
	paths, err := n.planRoutes(key, func() ([]graph.Path, error) {
		// One multi-target Dijkstra from the sender covers every
		// sender-side detour head (and the direct path for a landmark that
		// is itself an endpoint); only the landmark→recipient tails need
		// their own traversals. Paths are identical to the former
		// per-landmark single-target queries.
		heads := make([]graph.NodeID, len(p.landmarks))
		for i, lm := range p.landmarks {
			if lm == tx.Sender || lm == tx.Recipient {
				heads[i] = tx.Recipient
			} else {
				heads[i] = lm
			}
		}
		headPaths := n.unitShortestPaths(tx.Sender, heads)
		var out []graph.Path
		for i, lm := range p.landmarks {
			p1 := headPaths[i]
			if lm == tx.Sender || lm == tx.Recipient {
				if p1.Len() > 0 || tx.Sender == tx.Recipient {
					out = append(out, p1)
				}
				continue
			}
			if p1.Len() == 0 {
				continue
			}
			p2, ok2 := n.unitShortestPath(lm, tx.Recipient)
			if ok2 {
				out = append(out, concatPaths(p1, p2))
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, nil, err
	}
	if len(paths) == 0 {
		return nil, nil, nil
	}
	share := tx.Value / float64(len(paths))
	allocs := make([]Allocation, len(paths))
	for i := range paths {
		allocs[i] = Allocation{PathIdx: i, Value: share}
	}
	return paths, allocs, nil
}

// SpeculationSafe marks Plan as a pure function of the routed topology
// (static capacities, hub assignments, config, endpoints), so it may run
// speculatively on a planning worker (see SpeculativePlanner).
func (p *landmarkPolicy) SpeculationSafe() bool { return true }
