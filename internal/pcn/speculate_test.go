package pcn

import (
	"fmt"
	"testing"

	"github.com/splicer-pcn/splicer/internal/graph"
)

// runWithParallelism runs one scheme over the shared test graph/trace with
// the given planning-worker count and returns the full Result.
func runWithParallelism(t *testing.T, scheme Scheme, workers int) Result {
	t.Helper()
	g, trace := testGraphAndTrace(t, 7, 80, 60, 4)
	cfg := NewConfig(scheme)
	cfg.Parallelism = workers
	n, err := NewNetwork(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	if workers >= 2 {
		st := n.SpeculationStats()
		if _, safe := n.Policy().(SpeculativePlanner); safe && cfg.RoutingOverride == RoutingExact {
			if st.Workers != workers {
				t.Fatalf("%v: speculation pool not armed (stats %+v)", scheme, st)
			}
			if st.Enqueued == 0 {
				t.Fatalf("%v: speculation pool armed but fed nothing (stats %+v)", scheme, st)
			}
			// How many speculative plans actually ran depends on the
			// scheduler (on a single-CPU host the pool may starve and every
			// plan falls back to the serial path — which is the correctness
			// story under test); log it rather than asserting.
			t.Logf("%v: speculation stats %+v", scheme, st)
		} else if st.Workers != 0 {
			t.Fatalf("%v: speculation pool armed for a non-speculable policy", scheme)
		}
	}
	return res
}

// resultsEqual compares Results via their formatted rendering: NaN fields
// (e.g. MeanQueueDelay for schemes without queues) format identically even
// though NaN != NaN, matching the byte-identical-CSV contract the figure
// pipeline actually depends on.
func resultsEqual(a, b Result) bool {
	return fmt.Sprintf("%+v", a) == fmt.Sprintf("%+v", b)
}

// TestSpeculativePlanningMatchesSerial is the package-level byte-identity
// check: every scheme — the five speculation-safe ones and Flash, whose
// arming request must gate off to a no-op — produces a deeply equal Result
// (including the RouteCacheHits/Misses arithmetic that flows into panel
// CSVs) with 4 planning workers as with none. The scenario-level golden
// conformance twin covers the full CSV pipeline; this one localizes a
// divergence to a scheme quickly.
func TestSpeculativePlanningMatchesSerial(t *testing.T) {
	for _, scheme := range []Scheme{SchemeSplicer, SchemeSpider, SchemeFlash, SchemeLandmark, SchemeA2L, SchemeShortestPath} {
		serial := runWithParallelism(t, scheme, 0)
		parallel := runWithParallelism(t, scheme, 4)
		if !resultsEqual(serial, parallel) {
			t.Errorf("%v: parallel run diverged from serial\nserial:   %+v\nparallel: %+v", scheme, serial, parallel)
		}
	}
}

// TestSpeculationGatesOffUnderHubLabels pins the label-tier exclusion: the
// tier's Served/Fallbacks/Builds counters flow into Result, so speculative
// planning must never arm alongside RoutingHubLabels.
func TestSpeculationGatesOffUnderHubLabels(t *testing.T) {
	g, trace := testGraphAndTrace(t, 7, 80, 40, 3)
	cfg := NewConfig(SchemeSplicer)
	cfg.RoutingOverride = RoutingHubLabels
	cfg.Parallelism = 4
	n, err := NewNetwork(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(trace); err != nil {
		t.Fatal(err)
	}
	if st := n.SpeculationStats(); st.Workers != 0 {
		t.Fatalf("speculation armed under hub-label routing: %+v", st)
	}
}

// TestSpeculationQuiescesForMutations drives mid-run channel mutations (the
// dynamics entry points) against an armed network and checks the run still
// matches serial byte-for-byte — the pause/invalidate path, not just the
// static fast path.
func TestSpeculationQuiescesForMutations(t *testing.T) {
	run := func(workers int) Result {
		g, trace := testGraphAndTrace(t, 13, 60, 50, 4)
		cfg := NewConfig(SchemeSplicer)
		cfg.Parallelism = workers
		n, err := NewNetwork(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		horizon := trace[len(trace)-1].Deadline + 1
		if err := n.BeginRun(horizon); err != nil {
			t.Fatal(err)
		}
		for i := range trace {
			if err := n.ScheduleArrival(trace[i]); err != nil {
				t.Fatal(err)
			}
		}
		// Interleave topology churn with the payment stream: close a
		// channel early, top one up mid-run, open a fresh one late. Each
		// invalidates the caches and must quiesce in-flight speculation.
		if err := n.At(0.8, func() {
			if !n.Channel(0).Closed() {
				if err := n.CloseChannel(0); err != nil {
					t.Error(err)
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
		if err := n.At(1.7, func() {
			if !n.Channel(3).Closed() {
				if err := n.TopUpChannel(3, 50, 50); err != nil {
					t.Error(err)
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
		if err := n.At(2.5, func() {
			if _, err := n.OpenChannel(graph.NodeID(5), graph.NodeID(40), 120, 120); err != nil {
				t.Error(err)
			}
		}); err != nil {
			t.Fatal(err)
		}
		res, err := n.Execute(horizon)
		if err != nil {
			t.Fatal(err)
		}
		if workers >= 2 {
			if st := n.SpeculationStats(); st.Pauses == 0 {
				t.Fatalf("mutations ran without quiescing the pool: %+v", st)
			}
		}
		return res
	}
	serial := run(0)
	parallel := run(4)
	if !resultsEqual(serial, parallel) {
		t.Errorf("parallel churn run diverged from serial\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}
