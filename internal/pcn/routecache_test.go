package pcn

import (
	"fmt"
	"testing"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/routing"
	"github.com/splicer-pcn/splicer/internal/workload"
)

func TestRouteCacheGetPut(t *testing.T) {
	c := NewRouteCache()
	key := RouteKey{Src: 0, Dst: 1, Type: routing.EDW, K: 5}
	if _, ok := c.Get(key); ok {
		t.Fatal("empty cache reported a hit")
	}
	p := graph.Path{Nodes: []graph.NodeID{0, 1}, Edges: []graph.EdgeID{0}}
	c.Put(key, []graph.Path{p})
	got, ok := c.Get(key)
	if !ok || len(got) != 1 || !got[0].Equal(p) {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", c.Hits(), c.Misses())
	}
	// Distinct strategies and k values for the same pair are separate slots.
	if _, ok := c.Get(RouteKey{Src: 0, Dst: 1, Type: routing.KSP, K: 5}); ok {
		t.Fatal("KSP key collided with EDW entry")
	}
	if _, ok := c.Get(RouteKey{Src: 0, Dst: 1, Type: routing.EDW, K: 3}); ok {
		t.Fatal("k=3 key collided with k=5 entry")
	}
}

func TestRouteCacheGetOrCompute(t *testing.T) {
	c := NewRouteCache()
	key := RouteKey{Src: 2, Dst: 3, Type: routing.KSP, K: 1}
	calls := 0
	compute := func() ([]graph.Path, error) {
		calls++
		return []graph.Path{{Nodes: []graph.NodeID{2, 3}, Edges: []graph.EdgeID{7}}}, nil
	}
	for i := 0; i < 3; i++ {
		paths, err := c.GetOrCompute(key, compute)
		if err != nil || len(paths) != 1 {
			t.Fatalf("GetOrCompute = %v, %v", paths, err)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
}

func TestRouteCacheCachesUnroutable(t *testing.T) {
	c := NewRouteCache()
	key := RouteKey{Src: 4, Dst: 5, Type: ComposedRoutes, K: 1}
	calls := 0
	for i := 0; i < 2; i++ {
		paths, err := c.GetOrCompute(key, func() ([]graph.Path, error) {
			calls++
			return nil, nil // unroutable
		})
		if err != nil || paths != nil {
			t.Fatalf("GetOrCompute = %v, %v", paths, err)
		}
	}
	if calls != 1 {
		t.Fatalf("unroutable result recomputed %d times, want cached after 1", calls)
	}
}

func TestRouteCacheErrorsNotCached(t *testing.T) {
	c := NewRouteCache()
	key := RouteKey{Src: 6, Dst: 7, Type: routing.EDS, K: 2}
	calls := 0
	for i := 0; i < 2; i++ {
		if _, err := c.GetOrCompute(key, func() ([]graph.Path, error) {
			calls++
			return nil, fmt.Errorf("boom")
		}); err == nil {
			t.Fatal("error swallowed")
		}
	}
	if calls != 2 {
		t.Fatalf("failed compute cached after %d calls", calls)
	}
}

func TestRouteCacheInvalidate(t *testing.T) {
	c := NewRouteCache()
	for i := 0; i < 4; i++ {
		c.Put(RouteKey{Src: graph.NodeID(i), Dst: graph.NodeID(i + 1), Type: routing.EDW, K: 5}, nil)
	}
	if c.Len() != 4 || c.Generation() != 0 {
		t.Fatalf("len=%d gen=%d", c.Len(), c.Generation())
	}
	c.Invalidate()
	if c.Len() != 0 || c.Generation() != 1 {
		t.Fatalf("after invalidate len=%d gen=%d, want 0/1", c.Len(), c.Generation())
	}
}

// reshapePolicy caches a route in Setup before reshaping the topology, the
// way a buggy out-of-package policy might; the reshape hooks must evict it.
type reshapePolicy struct {
	basePolicy
	keyBeforeReshape RouteKey
	genBefore        uint64
}

func (p *reshapePolicy) Setup(n *Network) error {
	p.keyBeforeReshape = RouteKey{Src: 0, Dst: 1, Type: routing.KSP, K: 1}
	if _, err := n.Routes().GetOrCompute(p.keyBeforeReshape, func() ([]graph.Path, error) {
		pa, ok := n.Graph().ShortestPath(0, 1, graph.UnitWeight)
		if !ok {
			return nil, fmt.Errorf("0-1 unreachable")
		}
		return []graph.Path{pa}, nil
	}); err != nil {
		return err
	}
	p.genBefore = n.Routes().Generation()
	hub := graph.NodeID(n.Graph().NumNodes() - 1)
	n.SetHubs([]graph.NodeID{hub})
	for i := 0; i < n.Graph().NumNodes()-1; i++ {
		n.SetManagingHub(graph.NodeID(i), hub)
	}
	n.ReshapeMultiStar() // adds client→hub channels: cached paths are stale
	return nil
}

func (p *reshapePolicy) Plan(n *Network, tx workload.Tx) ([]graph.Path, []Allocation, error) {
	pa, ok := n.Graph().ShortestPath(tx.Sender, tx.Recipient, graph.UnitWeight)
	if !ok {
		return nil, nil, nil
	}
	return []graph.Path{pa}, []Allocation{{PathIdx: 0, Value: tx.Value}}, nil
}

func TestRouteCacheInvalidatedWhenSetupReshapesTopology(t *testing.T) {
	g, _ := testGraphAndTrace(t, 11, 20, 10, 1)
	pol := &reshapePolicy{basePolicy: basePolicy{SchemeShortestPath}}
	cfg := NewConfig(SchemeShortestPath)
	cfg.Policy = pol
	n, err := NewNetwork(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n.Routes().Generation() <= pol.genBefore {
		t.Fatalf("generation %d not bumped past %d by ReshapeMultiStar", n.Routes().Generation(), pol.genBefore)
	}
	if n.Routes().Len() != 0 {
		t.Fatalf("%d stale entries survived the reshape", n.Routes().Len())
	}
	if _, ok := n.Routes().Get(pol.keyBeforeReshape); ok {
		t.Fatal("pre-reshape path set still served after topology mutation")
	}
}

func TestCapitalizeHubsInvalidatesRoutes(t *testing.T) {
	g, _ := testGraphAndTrace(t, 12, 20, 10, 1)
	cfg := NewConfig(SchemeSplicer)
	cfg.Hubs = []graph.NodeID{0, 1}
	n, err := NewNetwork(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	key := RouteKey{Src: 2, Dst: 3, Type: routing.EDW, K: 2}
	n.Routes().Put(key, nil)
	gen := n.Routes().Generation()
	n.CapitalizeHubs() // rescales hub channel funds: capacity-aware paths stale
	if n.Routes().Generation() <= gen {
		t.Fatal("CapitalizeHubs did not invalidate the route cache")
	}
	if _, ok := n.Routes().Get(key); ok {
		t.Fatal("stale capacity-aware path set survived CapitalizeHubs")
	}
}

// Repeat payments between the same pair must hit the cache instead of
// recomputing the scheme's path selection.
func TestPoliciesReuseCachedRoutes(t *testing.T) {
	for _, scheme := range []Scheme{SchemeSplicer, SchemeSpider, SchemeA2L, SchemeLandmark, SchemeShortestPath} {
		g, trace := testGraphAndTrace(t, 13, 30, 40, 4)
		n, err := NewNetwork(g, NewConfig(scheme))
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if _, err := n.Run(trace); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if n.Routes().Hits() == 0 {
			t.Errorf("%v: route cache never hit over %d payments", scheme, len(trace))
		}
		if n.Routes().Misses() == 0 {
			t.Errorf("%v: route cache never missed (nothing was computed?)", scheme)
		}
	}
}
