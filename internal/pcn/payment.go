package pcn

import (
	"errors"
	"sort"

	"github.com/splicer-pcn/splicer/internal/channel"
	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/htlc"
	"github.com/splicer-pcn/splicer/internal/routing"
	"github.com/splicer-pcn/splicer/internal/sim"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// txRun tracks one payment through its lifetime.
type txRun struct {
	tx        workload.Tx
	pair      pairKey
	paths     []graph.Path
	remaining int // unresolved TUs
	failed    bool
	finished  bool
	deadline  sim.Event
	// regIdx is the payment's slot in the active-payment registry
	// (tick.go); maintained by registerTx/unregisterTx.
	regIdx int
	// rc is the rate controller this payment was dispatched under. It is
	// held by instance, not looked up by pair: a topology mutation can
	// re-plan the pair with a different path count, which swaps the pair's
	// controller — in-flight TUs must keep resolving against the controller
	// whose windows they occupy.
	rc *routing.RateController
	// pending holds TUs waiting for window room (rate-controlled schemes).
	pending []*tuRun
	// live TUs for deadline unwinding (swap-remove registry; a map here
	// cost an allocation per payment and a hash per TU transition).
	live []*tuRun
}

// tuRun is one transaction-unit in flight.
type tuRun struct {
	id            uint64
	tx            *txRun
	pathIdx       int
	path          graph.Path
	value         float64
	hop           int // next hop index to traverse
	chain         []*htlc.Contract
	lockedThrough int // number of hops currently locked
	queued        *channel.QueuedTU
	queuedAt      struct {
		ch  *channel.Channel
		dir channel.Direction
	}
	liveIdx int
	done    bool
	// attempts counts completed send attempts beyond the first (see
	// retry.go); 0 unless Config.Retry is armed and this TU was retried.
	attempts int
	// advance is the hop-forwarding closure, built once per TU and reused
	// for every per-hop timer instead of allocating a closure per hop.
	advance func()
	// pre/hash cache the TU's HTLC preimage and lock hash (both pure
	// functions of the TU id), so the per-hop path hashes once per TU
	// instead of twice per hop.
	pre  [32]byte
	hash [32]byte
}

// onArrival is the entry point for a generated payment: it models the
// route-computation service time (at the sender for source routing, at the
// managing hub for hub-based policies) and then dispatches. Which node pays
// the compute cost, and any epoch alignment, come from the SchemePolicy.
func (n *Network) onArrival(tx workload.Tx) {
	if tx.Adversarial {
		n.metrics.AddHandle(n.mh.advGenerated, 1)
	} else {
		n.metrics.AddHandle(n.mh.txGenerated, 1)
	}
	owner, service := n.policy.ComputeOwner(n, tx)
	now := n.engine.Now()
	free := n.cpuFree[owner]
	if free < now {
		free = now
	}
	free = n.policy.AlignDispatch(n, free)
	start := free + service
	n.cpuFree[owner] = start
	if _, err := n.engine.Schedule(start, 2, func() { n.dispatch(tx) }); err != nil {
		// Scheduling in the past is impossible here (start >= now).
		panic(err)
	}
}

// dispatch plans paths and TUs for the payment and starts sending.
func (n *Network) dispatch(tx workload.Tx) {
	if n.engine.Now() >= tx.Deadline {
		// Route computation (sender CPU or hub crypto backlog) outlasted
		// the payment timeout.
		n.failTx(&txRun{tx: tx}, "compute_backlog")
		return
	}
	paths, allocs, err := n.policy.Plan(n, tx)
	if err != nil || len(paths) == 0 || len(allocs) == 0 {
		reason := "no_route"
		if errors.Is(err, ErrNoFlow) {
			// Connectivity existed but the candidate paths could not carry
			// the value (max-flow infeasible) — a capacity failure, not a
			// reachability failure, so it gets its own reason column.
			reason = "no_flow"
		}
		n.failTx(&txRun{tx: tx}, reason)
		return
	}
	run := &txRun{
		tx:    tx,
		pair:  pairKey{tx.Sender, tx.Recipient},
		paths: paths,
	}
	n.txState[tx.ID] = run
	n.registerTx(run)

	rateControlled := n.splitsTUs()
	if rateControlled {
		// Register the planned path set for the τ-probe loop, which
		// refreshes path prices and rates per pair each tick.
		n.pathsFor[run.pair] = paths
		rc, ok := n.rateCtl[run.pair]
		if !ok || rc.NumPaths() != len(paths) {
			// First payment for the pair, or the pair was re-planned with a
			// different path count after a topology mutation: the old
			// controller's per-path state no longer maps onto the path set,
			// so it restarts from the initial rates. Payments in flight keep
			// their own controller reference.
			var rcErr error
			rc, rcErr = routing.NewRateController(len(paths), n.cfg.Alpha, n.cfg.Beta, n.cfg.Gamma, n.cfg.InitPathRate, n.cfg.InitWindow)
			if rcErr != nil {
				n.failTx(run, "controller")
				return
			}
			if !ok {
				n.registerPair(run.pair)
			}
			n.rateCtl[run.pair] = rc
		}
		run.rc = rc
	}

	run.remaining = len(allocs)
	for _, a := range allocs {
		tu := &tuRun{
			id:      n.nextTUID,
			tx:      run,
			pathIdx: a.PathIdx,
			value:   a.Value,
		}
		n.nextTUID++
		if rateControlled {
			run.pending = append(run.pending, tu)
		} else {
			tu.path = paths[tu.pathIdx]
			n.startTU(tu)
		}
	}
	if rateControlled {
		n.drainPending(run)
	}
	// Deadline watchdog.
	ev, err := n.engine.Schedule(tx.Deadline, 0, func() { n.onDeadline(run) })
	if err != nil {
		panic(err)
	}
	run.deadline = ev
}

// drainPending dispatches waiting TUs of a payment while window room
// exists.
func (n *Network) drainPending(run *txRun) {
	if run.failed {
		return
	}
	rc := run.rc
	if rc == nil {
		return
	}
	for len(run.pending) > 0 {
		tu := run.pending[0]
		i := rc.PickPath(tu.value)
		if i < 0 {
			return // every path window- or budget-blocked; retried on tick/ack
		}
		run.pending = run.pending[1:]
		tu.pathIdx = i
		tu.path = run.paths[i]
		rc.OnSend(i, tu.value)
		n.startTU(tu)
	}
}

// startTU begins forwarding a TU from its source.
func (n *Network) startTU(tu *tuRun) {
	tu.liveIdx = len(tu.tx.live)
	tu.tx.live = append(tu.tx.live, tu)
	tu.advance = func() { n.advanceTU(tu) }
	tu.pre = htlc.NewPreimage(tu.id)
	tu.hash = htlc.LockHash(tu.pre)
	n.metrics.AddHandle(n.mh.tuSent, 1)
	n.advanceTU(tu)
}

// advanceTU attempts the TU's next hop, queuing or aborting on resource
// exhaustion.
func (n *Network) advanceTU(tu *tuRun) {
	if tu.done {
		return
	}
	now := n.engine.Now()
	if now > tu.tx.tx.Deadline {
		n.abortTU(tu, "deadline")
		return
	}
	if tu.hop >= len(tu.path.Edges) {
		n.completeTU(tu)
		return
	}
	eid := tu.path.Edges[tu.hop]
	from := tu.path.Nodes[tu.hop]
	ch := n.chans[eid]
	if ch.Closed() {
		// The channel closed after this TU's path was planned (the route
		// cache was invalidated, but in-flight TUs keep their path).
		n.abortTU(tu, "channel_closed")
		return
	}
	dir := ch.DirFrom(from)
	ch.AddRequired(dir, tu.value)
	n.touchChannel(eid)
	if ch.CanForward(dir, tu.value) {
		n.lockAndHop(tu, ch, dir)
		return
	}
	if n.usesQueues() {
		q := &channel.QueuedTU{
			ID:       tu.id,
			Value:    tu.value,
			Deadline: tu.tx.tx.Deadline,
			Enqueued: now,
		}
		q.Resume = func() { n.resumeQueued(tu, ch, dir) }
		if err := ch.Enqueue(dir, q); err != nil {
			n.abortTU(tu, "queue_full")
			return
		}
		tu.queued = q
		tu.queuedAt.ch = ch
		tu.queuedAt.dir = dir
		n.queuedIndex[q] = tu
		n.metrics.AddHandle(n.mh.tuQueued, 1)
		return
	}
	n.abortTU(tu, "no_funds")
}

// resumeQueued is called when a queued TU is dequeued for another attempt.
func (n *Network) resumeQueued(tu *tuRun, ch *channel.Channel, dir channel.Direction) {
	if tu.queued != nil {
		n.metrics.ObserveHandle(n.mh.queueDelay, n.engine.Now()-tu.queued.Enqueued)
		delete(n.queuedIndex, tu.queued)
	}
	tu.queued = nil
	tu.queuedAt.ch = nil
	if tu.done || tu.tx.failed {
		return
	}
	if ch.CanForward(dir, tu.value) {
		n.lockAndHop(tu, ch, dir)
	} else {
		// Still blocked: go around again.
		n.advanceTU(tu)
	}
}

// lockAndHop locks the TU's value on the channel and schedules arrival at
// the next node.
func (n *Network) lockAndHop(tu *tuRun, ch *channel.Channel, dir channel.Direction) {
	if err := ch.Lock(dir, tu.value); err != nil {
		n.abortTU(tu, "lock_race")
		return
	}
	n.touchChannel(ch.Edge) // the lock consumed processing-rate budget
	contract, err := htlc.Offer(tu.hash, tu.value, tu.tx.tx.Deadline)
	if err != nil {
		panic(err) // value > 0 by construction
	}
	tu.chain = append(tu.chain, contract)
	tu.lockedThrough++
	tu.hop++
	if _, err := n.engine.After(n.cfg.HopDelay, 3, tu.advance); err != nil {
		panic(err)
	}
}

// completeTU settles the TU end-to-end (or parks it when the sender is
// withholding the preimage).
func (n *Network) completeTU(tu *tuRun) {
	if tu.done {
		return
	}
	if tu.tx.tx.Hold > 0 {
		n.holdTU(tu)
		return
	}
	tu.done = true
	tu.tx.removeLive(tu)
	now := n.engine.Now()
	pre := tu.pre
	// Settle HTLCs recipient-backwards, moving funds on each channel.
	for i := tu.lockedThrough - 1; i >= 0; i-- {
		if err := tu.chain[i].Settle(pre, now); err != nil {
			// The deadline watchdog fires strictly at Deadline with higher
			// priority, so an expired contract here means the TU raced it;
			// treat as abort.
			n.abortLockedHops(tu, i+1)
			n.resolveTU(tu, false, "htlc_expired")
			return
		}
		eid := tu.path.Edges[i]
		from := tu.path.Nodes[i]
		ch := n.chans[eid]
		dir := ch.DirFrom(from)
		if err := ch.Settle(dir, tu.value); err != nil {
			panic(err) // locked funds are tracked exactly
		}
		n.touchChannel(eid) // the arrival feeds the next imbalance-price update
		n.metrics.AddHandle(n.mh.fees, ch.Fee(dir, n.cfg.TFee)*tu.value)
		n.drainQueue(ch, dir.Reverse()) // reverse direction gained funds
	}
	n.resolveTU(tu, true, "")
}

// holdTU parks a fully locked TU instead of settling it: the sender
// withholds the settlement preimage, so every hop's HTLC stays locked —
// value unusable by honest traffic — until the hold expires or the payment
// deadline forces the unwind (the channel-jamming/griefing primitive). The
// release refunds hop by hop through the normal abort path, so the deadline
// watchdog and the release event are mutually idempotent via tu.done.
func (n *Network) holdTU(tu *tuRun) {
	n.metrics.AddHandle(n.mh.tuHeld, 1)
	n.metrics.AddHandle(n.mh.tuHeldValue, tu.value*float64(tu.lockedThrough))
	release := n.engine.Now() + tu.tx.tx.Hold
	if release > tu.tx.tx.Deadline {
		release = tu.tx.tx.Deadline
	}
	if _, err := n.engine.Schedule(release, 0, func() { n.abortTU(tu, "held_released") }); err != nil {
		panic(err) // release >= now by construction
	}
}

// abortTU refunds a TU's locked hops and resolves it as failed.
func (n *Network) abortTU(tu *tuRun, reason string) {
	if tu.done {
		return
	}
	tu.done = true
	tu.tx.removeLive(tu)
	if tu.queued != nil && tu.queuedAt.ch != nil {
		tu.queuedAt.ch.RemoveQueued(tu.queuedAt.dir, tu.queued)
		delete(n.queuedIndex, tu.queued)
		tu.queued = nil
	}
	n.abortLockedHops(tu, tu.lockedThrough)
	n.resolveTU(tu, false, reason)
}

// abortLockedHops refunds the first `through` locked hops.
func (n *Network) abortLockedHops(tu *tuRun, through int) {
	for i := 0; i < through && i < tu.lockedThrough; i++ {
		if tu.chain[i].State() == htlc.Pending {
			_ = tu.chain[i].Fail()
		}
		eid := tu.path.Edges[i]
		from := tu.path.Nodes[i]
		ch := n.chans[eid]
		dir := ch.DirFrom(from)
		if err := ch.Refund(dir, tu.value); err != nil {
			panic(err)
		}
		n.drainQueue(ch, dir) // the forward direction regained funds
	}
	tu.lockedThrough = 0
}

// resolveTU updates rate control and the parent payment. When the retry
// layer is armed it sees every resolution first: outcomes feed the
// reliability store, and a retryable abort may resurrect the TU instead of
// resolving it (see retry.go).
func (n *Network) resolveTU(tu *tuRun, ok bool, reason string) {
	if n.relStore != nil {
		n.observeTU(tu, ok, reason)
		if !ok && n.maybeRetryTU(tu, reason) {
			return
		}
	}
	run := tu.tx
	if rc := run.rc; rc != nil && tu.path.Len() > 0 {
		if ok {
			rc.OnSuccess(tu.pathIdx)
		} else {
			rc.OnAbort(tu.pathIdx)
		}
		n.drainPending(run)
	}
	run.remaining--
	if ok {
		n.metrics.AddHandle(n.mh.tuCompleted, 1)
		if tu.attempts > 0 {
			n.metrics.AddHandle(n.mh.tuRetryRecovered, 1)
		}
	} else {
		n.metrics.AddHandle(n.mh.tuFailed, 1)
		n.metrics.AddHandle(n.tuFailedReasonHandle(reason), 1)
		if tu.attempts > 0 {
			n.metrics.AddHandle(n.mh.tuRetryExhausted, 1)
		}
		if !run.failed {
			run.failed = true
			n.cancelTx(run)
		}
	}
	if run.remaining == 0 {
		n.finishTx(run)
	}
}

// removeLive swap-removes a TU from the live registry.
func (run *txRun) removeLive(tu *tuRun) {
	last := len(run.live) - 1
	moved := run.live[last]
	run.live[tu.liveIdx] = moved
	moved.liveIdx = tu.liveIdx
	run.live[last] = nil
	run.live = run.live[:last]
}

// cancelTx aborts a payment's remaining TUs (queued or pending; in-flight
// locked TUs unwind too).
func (n *Network) cancelTx(run *txRun) {
	run.pending = nil
	// Copy and order by TU id: abortTU mutates run.live, and the registry's
	// swap-remove order must not leak into simulation behavior (the former
	// map iteration was sorted the same way).
	live := append([]*tuRun(nil), run.live...)
	sort.Slice(live, func(i, j int) bool { return live[i].id < live[j].id })
	for _, tu := range live {
		n.abortTU(tu, "sibling_failed")
	}
}

// onDeadline fires at the payment's timeout.
func (n *Network) onDeadline(run *txRun) {
	if run.remaining <= 0 {
		return
	}
	run.failed = true
	// Pending TUs never occupied a window slot; they simply fail.
	pendingCount := len(run.pending)
	run.pending = nil
	run.remaining -= pendingCount
	n.metrics.AddHandle(n.mh.tuFailed, float64(pendingCount))
	n.cancelTx(run)
	if run.remaining <= 0 {
		n.finishTx(run)
	}
}

// finishTx records the payment outcome once every TU resolved. Idempotent:
// the deadline watchdog and the last TU's resolution can both reach it.
func (n *Network) finishTx(run *txRun) {
	if run.finished {
		return
	}
	run.finished = true
	run.deadline.Cancel()
	run.deadline = sim.Event{}
	delete(n.txState, run.tx.ID)
	n.unregisterTx(run)
	now := n.engine.Now()
	ok := !run.failed && now <= run.tx.Deadline+1e-9
	// Adversarial payments resolve into their own counters: Generated,
	// Completed and the unresolved-at-horizon audit in Execute all measure
	// honest demand only.
	if run.tx.Adversarial {
		if ok {
			n.metrics.AddHandle(n.mh.advCompleted, 1)
		} else {
			n.metrics.AddHandle(n.mh.advFailed, 1)
		}
		return
	}
	if ok {
		n.metrics.AddHandle(n.mh.txCompleted, 1)
		n.metrics.AddHandle(n.mh.valueCompleted, run.tx.Value)
		n.metrics.ObserveHandle(n.mh.txDelay, now-run.tx.Arrival)
	} else {
		n.metrics.AddHandle(n.mh.txFailed, 1)
	}
}

// drainQueue serves a channel direction's waiting queue while funds and the
// processing budget allow, in scheduler order.
func (n *Network) drainQueue(ch *channel.Channel, dir channel.Direction) {
	if !n.usesQueues() {
		return
	}
	for ch.QueueLen(dir) > 0 {
		// Peek via dequeue: if the chosen TU cannot be forwarded the queue
		// stays blocked (head-of-line under the chosen discipline).
		q := ch.Dequeue(dir, n.cfg.Scheduler)
		if q == nil {
			return
		}
		if q.Resume == nil {
			continue
		}
		if !ch.CanForward(dir, q.Value) {
			// Put it back and stop; re-enqueue preserves Enqueued time.
			if err := ch.Enqueue(dir, q); err != nil {
				// Queue shrank since we dequeued, so re-adding cannot
				// overflow; be defensive anyway.
				q.Resume()
			}
			return
		}
		q.Resume()
	}
}

// onTauTick is the τ-periodic maintenance: price updates (eqs. 21-22),
// stale marking and abort (congestion control), queue draining and probe-
// based rate updates (eq. 26). All working sets are incrementally
// maintained (see tick.go): the channel sweep visits only dirty channels,
// the probe loop walks the sorted pair registry and an id-sorted snapshot
// of the active payments, and controller refresh dedup is a generation
// stamp — each in the same deterministic order as the full-scan original.
func (n *Network) onTauTick() {
	now := n.engine.Now()
	n.policy.OnTick(n)
	n.runChannelMaintenance(now)
	if n.usesPrices() {
		// Probes: refresh every cached pair's path prices (eq. 26). Each
		// controller is refreshed at most once per tick generation
		// (RefillBudget grants rate·τ tokens; a double refresh would double
		// the budget).
		n.tickGen++
		gen := n.tickGen
		for _, pair := range n.pairList {
			n.refreshController(n.rateCtl[pair], n.pathsFor[pair], gen)
		}
		// In-flight payments whose controller was superseded by a re-plan
		// (topology mutation changed the pair's path count) keep receiving
		// refills against their own planned path set; otherwise their
		// pending TUs would starve on an empty budget until the deadline.
		ticking := n.sortTickSnapshot()
		for _, run := range ticking {
			n.refreshController(run.rc, run.paths, gen)
		}
		// Payments can finish while the snapshot drains (a synchronous
		// abort cascading through resolveTU); drainPending on a finished
		// run is a harmless no-op, where the old map re-lookup by id would
		// have dereferenced nil.
		for _, run := range ticking {
			n.drainPending(run)
		}
		// Drop the snapshot's references so the reused scratch never pins
		// finished payments (and their path/TU state) past the tick.
		clear(ticking)
		n.tickTx = ticking[:0]
	}
}

// findQueuedTU maps a channel queue entry back to its tuRun.
func (n *Network) findQueuedTU(q *channel.QueuedTU) *tuRun {
	return n.queuedIndex[q]
}

// failTx records an immediately failed payment (no route, etc.).
func (n *Network) failTx(run *txRun, reason string) {
	if run.tx.Adversarial {
		n.metrics.AddHandle(n.mh.advFailed, 1)
		return
	}
	n.metrics.AddHandle(n.mh.txFailed, 1)
	n.metrics.AddHandle(n.txFailedReasonHandle(reason), 1)
}
