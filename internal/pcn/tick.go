// Incremental τ-tick bookkeeping. The original onTauTick rebuilt its
// working sets from scratch every tick — sorting a pairs slice out of the
// rateCtl map, sorting an ids slice out of txState, allocating a fresh
// refreshed-set map, and walking every channel in the network including
// idle ones — an O(ticks·(P log P + C)) term that dominated long-horizon
// runs. This file replaces those with incrementally maintained registries:
//
//   - pairList: the rate-controlled pairs in ascending order, inserted once
//     at controller creation (pairs are never removed);
//   - activeTx: the in-flight payments, appended at dispatch and
//     swap-removed at finish, snapshotted and sorted per tick (O(active));
//   - RateController.TryMarkRefreshed: a generation stamp replacing the
//     per-tick map[*RateController]bool;
//   - a dirty-channel set: only channels with queued TUs, unreset window
//     statistics or a decaying capacity price are visited by the
//     maintenance pass (see Channel.NeedsMaintenance).
//
// The dirty-channel pass must replicate the full scan bit for bit. The full
// scan visited every channel once in ascending EdgeID order; visits to
// quiescent channels were no-ops. So the pass processes the dirty set in
// ascending order through a min-heap worklist, and a channel touched
// mid-pass joins this pass if its id is still ahead of the cursor (the
// full scan would reach it later this tick) or waits for the next tick if
// the cursor already passed it (the full scan visited it while it was
// still quiescent).
package pcn

import (
	"cmp"
	"slices"
	"sort"

	"github.com/splicer-pcn/splicer/internal/channel"
	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/routing"
	"github.com/splicer-pcn/splicer/internal/sim"
)

// Dirty-channel states.
const (
	chClean   uint8 = iota // quiescent: the maintenance pass skips it
	chPending              // in dirtyChans, awaiting the next pass
	chQueued               // in tickHeap, processed later this pass
)

// edgeHeap is a binary min-heap of edge ids — the maintenance pass
// worklist. No interface boxing, no allocation after warmup.
type edgeHeap []graph.EdgeID

func (h *edgeHeap) push(id graph.EdgeID) {
	*h = append(*h, id)
	e := *h
	i := len(e) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if e[parent] <= id {
			break
		}
		e[i] = e[parent]
		i = parent
	}
	e[i] = id
}

func (h *edgeHeap) pop() graph.EdgeID {
	e := *h
	top := e[0]
	last := len(e) - 1
	moving := e[last]
	*h = e[:last]
	e = *h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		best := moving
		if l < last && e[l] < best {
			smallest, best = l, e[l]
		}
		if r < last && e[r] < best {
			smallest = r
		}
		if smallest == i {
			break
		}
		e[i] = e[smallest]
		i = smallest
	}
	if last > 0 {
		e[i] = moving
	}
	return top
}

// metricHandles interns every fixed metric name the payment lifecycle
// touches, so the per-hop hot path indexes an array instead of hashing a
// string (and the reason-suffixed failure counters skip the string
// concatenation after their first use).
type metricHandles struct {
	txGenerated, txCompleted, txFailed, valueCompleted, fees sim.CounterHandle
	tuSent, tuQueued, tuCompleted, tuFailed, tuMarked        sim.CounterHandle
	tuHeld, tuHeldValue                                      sim.CounterHandle
	tuRetried, tuRetryRecovered, tuRetryExhausted            sim.CounterHandle
	advGenerated, advCompleted, advFailed                    sim.CounterHandle
	txDelay, queueDelay                                      sim.SampleHandle
	tuFailedReason, txFailedReason                           map[string]sim.CounterHandle

	// Route-computation effectiveness counters, flushed once per run by
	// summarize() from the RouteCache and hub-label snapshots so they land in
	// the same metrics registry (and hence the panel CSVs) as the payment
	// counters.
	routeCacheHits, routeCacheMisses, routeCacheInvalidations sim.CounterHandle
	labelServed, labelFallbacks, labelBuilds, labelRepairs    sim.CounterHandle
}

func (n *Network) initMetricHandles() {
	m := n.metrics
	n.mh = metricHandles{
		txGenerated:      m.CounterHandle("tx_generated"),
		txCompleted:      m.CounterHandle("tx_completed"),
		txFailed:         m.CounterHandle("tx_failed"),
		valueCompleted:   m.CounterHandle("value_completed"),
		fees:             m.CounterHandle("fees"),
		tuSent:           m.CounterHandle("tu_sent"),
		tuQueued:         m.CounterHandle("tu_queued"),
		tuCompleted:      m.CounterHandle("tu_completed"),
		tuFailed:         m.CounterHandle("tu_failed"),
		tuMarked:         m.CounterHandle("tu_marked"),
		tuHeld:           m.CounterHandle("tu_held"),
		tuHeldValue:      m.CounterHandle("tu_held_value"),
		tuRetried:        m.CounterHandle("tu_retried"),
		tuRetryRecovered: m.CounterHandle("tu_retry_recovered"),
		tuRetryExhausted: m.CounterHandle("tu_retry_exhausted"),
		advGenerated:     m.CounterHandle("adv_generated"),
		advCompleted:     m.CounterHandle("adv_completed"),
		advFailed:        m.CounterHandle("adv_failed"),
		txDelay:          m.SampleHandle("tx_delay"),
		queueDelay:       m.SampleHandle("queue_delay"),
		tuFailedReason:   map[string]sim.CounterHandle{},
		txFailedReason:   map[string]sim.CounterHandle{},

		routeCacheHits:          m.CounterHandle("route_cache_hits"),
		routeCacheMisses:        m.CounterHandle("route_cache_misses"),
		routeCacheInvalidations: m.CounterHandle("route_cache_invalidations"),
		labelServed:             m.CounterHandle("label_served"),
		labelFallbacks:          m.CounterHandle("label_fallbacks"),
		labelBuilds:             m.CounterHandle("label_builds"),
		labelRepairs:            m.CounterHandle("label_repairs"),
	}
}

func (n *Network) tuFailedReasonHandle(reason string) sim.CounterHandle {
	if h, ok := n.mh.tuFailedReason[reason]; ok {
		return h
	}
	h := n.metrics.CounterHandle("tu_failed_" + reason)
	n.mh.tuFailedReason[reason] = h
	return h
}

func (n *Network) txFailedReasonHandle(reason string) sim.CounterHandle {
	if h, ok := n.mh.txFailedReason[reason]; ok {
		return h
	}
	h := n.metrics.CounterHandle("tx_failed_" + reason)
	n.mh.txFailedReason[reason] = h
	return h
}

// touchChannel marks a channel as possibly needing τ-tick maintenance.
// Called from every site that mutates channel window statistics or queues;
// spurious touches are harmless (the pass re-checks NeedsMaintenance).
func (n *Network) touchChannel(eid graph.EdgeID) {
	if int(eid) >= len(n.chanState) {
		grown := make([]uint8, len(n.chans))
		copy(grown, n.chanState)
		n.chanState = grown
	}
	if n.chanState[eid] != chClean {
		return
	}
	if n.inTickPass && eid > n.tickCursor {
		n.chanState[eid] = chQueued
		n.tickHeap.push(eid)
	} else {
		n.chanState[eid] = chPending
		n.dirtyChans = append(n.dirtyChans, eid)
	}
}

// runChannelMaintenance is the per-τ channel sweep: price updates, stale
// marking and aborts, and queue drains, over exactly the channels where any
// of that can matter, in ascending EdgeID order like the full scan it
// replaces.
func (n *Network) runChannelMaintenance(now float64) {
	if len(n.dirtyChans) == 0 {
		return
	}
	h := append(n.tickHeap[:0], n.dirtyChans...)
	n.dirtyChans = n.dirtyChans[:0]
	// Heapify bottom-up (the list is unsorted insertion order).
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDownEdges(h, i)
	}
	n.tickHeap = h
	usesPrices := n.usesPrices()
	n.inTickPass = true
	for len(n.tickHeap) > 0 {
		eid := n.tickHeap.pop()
		n.tickCursor = eid
		n.chanState[eid] = chClean
		ch := n.chans[eid]
		if ch.Closed() {
			continue // queues already unwound at close; no prices to update
		}
		if usesPrices {
			ch.UpdatePrices(n.cfg.Kappa, n.cfg.Eta)
		} else {
			// Window/processing budgets still reset each τ.
			ch.UpdatePrices(0, 0)
		}
		for _, dir := range []channel.Direction{channel.Fwd, channel.Rev} {
			marked := ch.MarkStale(dir, now, n.cfg.QueueDelayThreshold)
			for _, q := range marked {
				n.metrics.AddHandle(n.mh.tuMarked, 1)
				// The sender cancels marked packets (eq. 27 path).
				if tu := n.findQueuedTU(q); tu != nil {
					n.abortTU(tu, "marked")
				}
			}
			n.drainQueue(ch, dir)
		}
		// A decaying price or a still-occupied queue keeps the channel in
		// next tick's pass (unless its own drain already re-marked it).
		if n.chanState[eid] == chClean && ch.NeedsMaintenance() {
			n.chanState[eid] = chPending
			n.dirtyChans = append(n.dirtyChans, eid)
		}
	}
	n.inTickPass = false
}

// siftDownEdges restores the min-heap property at index i (heapify helper).
func siftDownEdges(h edgeHeap, i int) {
	n := len(h)
	moving := h[i]
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		best := moving
		if l < n && h[l] < best {
			smallest, best = l, h[l]
		}
		if r < n && h[r] < best {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i] = h[smallest]
		i = smallest
	}
	h[i] = moving
}

// registerPair inserts a new rate-controlled pair into the ascending
// registry. Called once per pair (controller replacement after a re-plan
// reuses the slot), so the shift is amortized away from the tick path.
func (n *Network) registerPair(p pairKey) {
	i := sort.Search(len(n.pairList), func(i int) bool {
		q := n.pairList[i]
		return q.s > p.s || (q.s == p.s && q.e >= p.e)
	})
	n.pairList = append(n.pairList, pairKey{})
	copy(n.pairList[i+1:], n.pairList[i:])
	n.pairList[i] = p
}

// registerTx adds an in-flight payment to the active registry (mirrors the
// txState insert in dispatch).
func (n *Network) registerTx(run *txRun) {
	run.regIdx = len(n.activeTx)
	n.activeTx = append(n.activeTx, run)
}

// unregisterTx swap-removes a finished payment (mirrors the txState delete
// in finishTx).
func (n *Network) unregisterTx(run *txRun) {
	last := len(n.activeTx) - 1
	moved := n.activeTx[last]
	n.activeTx[run.regIdx] = moved
	moved.regIdx = run.regIdx
	n.activeTx[last] = nil
	n.activeTx = n.activeTx[:last]
}

// refreshController applies the τ-probe update (eq. 26) to one controller
// against its planned path set, at most once per tick generation.
func (n *Network) refreshController(rc *routing.RateController, paths []graph.Path, gen uint64) {
	if rc == nil || len(paths) == 0 || !rc.TryMarkRefreshed(gen) {
		return
	}
	for i := 0; i < rc.NumPaths() && i < len(paths); i++ {
		price := routing.PathPrice(paths[i], n.cfg.TFee, n.priceFn)
		rc.UpdateRate(i, price)
		rc.RefillBudget(i, n.cfg.UpdateTau)
	}
}

// priceOf reads a channel's directional routing price ξ (bound once into
// priceFn so the probe loop passes a prebuilt closure, not a fresh method
// value per path).
func (n *Network) priceOf(e graph.EdgeID, from graph.NodeID) float64 {
	ch := n.chans[e]
	return ch.Price(ch.DirFrom(from))
}

// sortTickSnapshot fills the reusable scratch with the active payments in
// ascending id order — the same iteration order the per-tick ids sort used
// to produce from the txState map. The caller (onTauTick) clears the
// snapshot after use, so between ticks the scratch holds no references.
func (n *Network) sortTickSnapshot() []*txRun {
	scratch := append(n.tickTx[:0], n.activeTx...)
	slices.SortFunc(scratch, func(a, b *txRun) int { return cmp.Compare(a.tx.ID, b.tx.ID) })
	n.tickTx = scratch
	return scratch
}
