package pcn

import (
	"testing"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/reliability"
	"github.com/splicer-pcn/splicer/internal/rng"
	"github.com/splicer-pcn/splicer/internal/topology"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// heldTx builds one adversarial payment that locks value and withholds the
// preimage for hold seconds.
func heldTx(id int, s, r graph.NodeID, at, hold float64) workload.Tx {
	return workload.Tx{
		ID: id, Sender: s, Recipient: r, Value: 2,
		Arrival: at, Deadline: at + hold + 1, Hold: hold, Adversarial: true,
	}
}

// TestHoldThenRefund pins the jamming primitive: a payment with Hold > 0
// locks funds along its path, parks fully locked (tu_held), releases at
// now+Hold via Refund, and never pollutes the honest Generated/TSR
// accounting. Conservation must hold with funds parked mid-run and after
// the release.
func TestHoldThenRefund(t *testing.T) {
	n, trace := invariantNetwork(t, SchemeSplicer)
	horizon := trace[len(trace)-1].Deadline + 4
	if err := n.BeginRun(horizon); err != nil {
		t.Fatal(err)
	}
	for _, tx := range trace {
		if err := n.ScheduleArrival(tx); err != nil {
			t.Fatal(err)
		}
	}
	const advCount = 20
	for i := 0; i < advCount; i++ {
		s := graph.NodeID(i % n.Graph().NumNodes())
		r := graph.NodeID((i + 7) % n.Graph().NumNodes())
		if err := n.ScheduleArrival(heldTx(1<<30+i, s, r, 0.5+0.05*float64(i), 1.5)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := n.Execute(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if res.AdversarialGenerated != advCount {
		t.Fatalf("AdversarialGenerated = %d, want %d", res.AdversarialGenerated, advCount)
	}
	if res.Generated != len(trace) {
		t.Fatalf("honest Generated = %d polluted by adversarial payments, want %d", res.Generated, len(trace))
	}
	if res.HeldTUs == 0 {
		t.Fatal("no TU was ever held: the hold mechanism never engaged")
	}
	if res.HeldLockValue <= 0 {
		t.Fatalf("HeldLockValue = %v, want > 0", res.HeldLockValue)
	}
	// A held payment never completes: the release aborts and refunds it.
	if res.AdversarialCompleted != 0 {
		t.Fatalf("AdversarialCompleted = %d, want 0 (held payments must refund)", res.AdversarialCompleted)
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestHoldReleasesSlots pins that held TUs free their per-direction HTLC
// slots on release: with MaxInFlight saturated by held payments, honest
// traffic recovers after the hold expires rather than failing forever.
func TestHoldReleasesSlots(t *testing.T) {
	src := rng.New(33)
	sizes := workload.NewChannelSizeDist(src.Split(1), 1)
	g, err := topology.WattsStrogatz(src.Split(2), 40, 4, 0.25, sizes.CapacityFunc())
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewConfig(SchemeShortestPath)
	cfg.MaxInFlightTUs = 2
	n, err := NewNetwork(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	horizon := 10.0
	if err := n.BeginRun(horizon); err != nil {
		t.Fatal(err)
	}
	// Saturate every channel out of node 0 with held payments, then send an
	// honest payment after the hold expires.
	for i := 0; i < 12; i++ {
		r := graph.NodeID(1 + i%20)
		if err := n.ScheduleArrival(heldTx(1<<30+i, 0, r, 0.1, 2)); err != nil {
			t.Fatal(err)
		}
	}
	late := workload.Tx{ID: 1, Sender: 0, Recipient: 20, Value: 1, Arrival: 6, Deadline: 9}
	if err := n.ScheduleArrival(late); err != nil {
		t.Fatal(err)
	}
	res, err := n.Execute(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatalf("post-hold honest payment failed (Completed = %d): held TUs did not release their slots", res.Completed)
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// FuzzConservation drives random interleavings of honest arrivals,
// adversarial held arrivals and structural churn (close/open/top-up/
// depart/rejoin) through one run and asserts the conservation-of-funds
// invariant at the end — the oracle that the hold→timeout→Refund path and
// the dynamic mutators never mint or strand funds no matter how they
// interleave. The first byte's parity additionally arms the retry layer, so
// the corpus explores retry interleavings too: a resurrected TU re-locking a
// new path while churn closes channels underneath it must conserve exactly
// like a plain abort.
func FuzzConservation(f *testing.F) {
	f.Add([]byte{0, 1, 20, 1, 3, 9, 2, 0, 0, 5, 4, 0, 6, 4, 0, 3, 2, 8})
	f.Add([]byte{1, 0, 5, 1, 5, 0, 2, 1, 1, 3, 0, 7, 4, 2, 2, 0, 9, 3})
	f.Add([]byte{5, 1, 0, 5, 2, 0, 0, 3, 4, 6, 1, 0, 6, 2, 0, 1, 4, 11})
	// Retry-armed (odd first byte) with churn ops that invalidate live paths.
	f.Add([]byte{3, 2, 14, 0, 5, 9, 2, 3, 1, 0, 8, 2, 2, 1, 0, 0, 4, 17})
	f.Add([]byte{7, 0, 11, 1, 2, 4, 5, 6, 0, 0, 9, 3, 6, 6, 0, 0, 1, 13})
	f.Fuzz(func(t *testing.T, data []byte) {
		src := rng.New(77)
		sizes := workload.NewChannelSizeDist(src.Split(1), 1)
		g, err := topology.WattsStrogatz(src.Split(2), 24, 4, 0.25, sizes.CapacityFunc())
		if err != nil {
			t.Fatal(err)
		}
		cfg := NewConfig(SchemeShortestPath)
		cfg.MaxInFlightTUs = 3
		if len(data) > 0 && data[0]%2 == 1 {
			cfg.Retry = reliability.NewConfig()
			cfg.Retry.Seed = uint64(data[0])
		}
		n, err := NewNetwork(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes := n.Graph().NumNodes()
		steps := len(data) / 3
		horizon := 0.25*float64(steps) + 6
		if err := n.BeginRun(horizon); err != nil {
			t.Fatal(err)
		}
		// Guarantee the run generates at least one honest payment.
		if err := n.ScheduleArrival(workload.Tx{
			ID: 0, Sender: 0, Recipient: 12, Value: 1, Arrival: 0.05, Deadline: 3,
		}); err != nil {
			t.Fatal(err)
		}
		id := 1
		for i := 0; i < steps; i++ {
			op, a, b := data[3*i], int(data[3*i+1]), int(data[3*i+2])
			at := 0.1 + 0.25*float64(i)
			s := graph.NodeID(a % nodes)
			r := graph.NodeID(b % nodes)
			switch op % 7 {
			case 0: // honest arrival
				if s == r {
					r = graph.NodeID((b + 1) % nodes)
				}
				tx := workload.Tx{
					ID: id, Sender: s, Recipient: r,
					Value: 0.5 + float64(b%8), Arrival: at, Deadline: at + 2,
				}
				id++
				if err := n.ScheduleArrival(tx); err != nil {
					t.Fatal(err)
				}
			case 1: // adversarial held arrival
				if s == r {
					r = graph.NodeID((b + 1) % nodes)
				}
				if err := n.ScheduleArrival(heldTx(1<<30+id, s, r, at, 1+float64(a%3))); err != nil {
					t.Fatal(err)
				}
				id++
			case 2: // close a channel
				eid := graph.EdgeID(a % n.Graph().NumEdges())
				if err := n.At(at, func() { _ = n.CloseChannel(eid) }); err != nil {
					t.Fatal(err)
				}
			case 3: // open a channel
				fundU, fundV := float64(a%10)+1, float64(b%10)+1
				if err := n.At(at, func() {
					if s != r && !n.Departed(s) && !n.Departed(r) {
						_, _ = n.OpenChannel(s, r, fundU, fundV)
					}
				}); err != nil {
					t.Fatal(err)
				}
			case 4: // top up a channel
				eid := graph.EdgeID(b % n.Graph().NumEdges())
				if err := n.At(at, func() { _ = n.TopUpChannel(eid, float64(a%5), float64(a%3)) }); err != nil {
					t.Fatal(err)
				}
			case 5: // depart a node
				if err := n.At(at, func() { _ = n.DepartNode(s) }); err != nil {
					t.Fatal(err)
				}
			case 6: // rejoin a node
				if err := n.At(at, func() { _ = n.RejoinNode(s) }); err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, err := n.Execute(horizon); err != nil {
			t.Fatal(err)
		}
		if err := n.CheckConservation(); err != nil {
			t.Fatalf("conservation violated after fuzzed interleaving: %v", err)
		}
	})
}
