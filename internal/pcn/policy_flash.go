package pcn

import (
	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/routing"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// flashPolicy implements Flash's elephant/mice split: large payments run a
// modified max-flow on current spendable balances and send along the flow
// decomposition; small payments pick one of a few precomputed shortest paths
// at random. The policy owns the τ-stale balance snapshot its max-flow runs
// against (source routers only learn balances from the periodic gossip);
// the precomputed mice paths live in the network's shared RouteCache under
// their (KSP, FlashMicePaths) key.
type flashPolicy struct {
	basePolicy
	view *graph.Graph
	// viewShape is the topology mutation stamp the snapshot graph was
	// built under; while it matches, gossip rounds refresh the snapshot's
	// capacities in place instead of rebuilding the graph. boot/bootShape
	// are the same for the live-balance bootstrap view used before the
	// first gossip round (and by post-snapshot joiners).
	viewShape uint64
	boot      *graph.Graph
	bootShape uint64
}

// WantsTick: Flash refreshes its stale balance snapshot each gossip round.
func (flashPolicy) WantsTick() bool { return true }

func (p *flashPolicy) OnTick(n *Network) {
	// Source routers see balances only as fresh as the last gossip round;
	// refresh the snapshot Flash plans against.
	p.view = n.RefreshBalanceView(p.view, &p.viewShape)
}

func (p *flashPolicy) Plan(n *Network, tx workload.Tx) ([]graph.Path, []Allocation, error) {
	if tx.Value > n.cfg.FlashElephantThreshold {
		// Plan on the τ-stale gossip snapshot when available: the live view
		// is used before the first refresh tick, and when an endpoint joined
		// the network after the snapshot was taken (the joiner bootstraps
		// from fresh gossip rather than a view that predates it). The
		// bootstrap view is cached separately from the gossip snapshot and
		// refreshed in place, so a burst of pre-first-tick elephants does
		// not rebuild the graph per payment.
		view := p.view
		if view == nil || int(tx.Sender) >= view.NumNodes() || int(tx.Recipient) >= view.NumNodes() {
			p.boot = n.RefreshBalanceView(p.boot, &p.bootShape)
			view = p.boot
		}
		total, flows := view.MaxFlow(tx.Sender, tx.Recipient, tx.Value)
		if total < tx.Value-1e-9 {
			// Infeasible now on the stale view: distinct from no_route — the
			// endpoints are connected, the balances just can't carry it.
			return nil, nil, ErrNoFlow
		}
		paths := make([]graph.Path, len(flows))
		allocs := make([]Allocation, len(flows))
		for i, fp := range flows {
			paths[i] = fp.Path
			allocs[i] = Allocation{PathIdx: i, Value: fp.Amount}
		}
		return paths, allocs, nil
	}
	key := RouteKey{Src: tx.Sender, Dst: tx.Recipient, Type: routing.KSP, K: n.cfg.FlashMicePaths}
	paths, err := n.Routes().GetOrCompute(key, func() ([]graph.Path, error) {
		return n.kShortestPathsUnit(tx.Sender, tx.Recipient, n.cfg.FlashMicePaths), nil
	})
	if err != nil {
		return nil, nil, err
	}
	if len(paths) == 0 {
		return nil, nil, nil
	}
	idx := int(n.nextTUID) % len(paths)
	return paths, []Allocation{{PathIdx: idx, Value: tx.Value}}, nil
}
