package pcn

import (
	"sync"
	"sync/atomic"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/routing"
)

// ComposedRoutes is the RouteKey.Type for policy-composed path sets — hub
// concatenations (Splicer access+transit+access, A2L tumbler detours) and
// landmark routes — that do not correspond to a plain routing.PathType
// computation. A network runs exactly one policy, so composed sets from
// different schemes can never collide.
const ComposedRoutes routing.PathType = 0

// RouteKey identifies one route computation: a source/destination pair, the
// path-selection strategy, and the requested path count. Distinct strategies
// or k values for the same pair cache independently (e.g. Flash's k=3 KSP
// mice paths never collide with another KSP query for the same pair).
type RouteKey struct {
	Src, Dst graph.NodeID
	Type     routing.PathType
	K        int
}

// routeCacheShards is the shard count (power of two so the key hash maps
// with a mask). 32 shards keep contention negligible for the serving pool's
// worker counts while costing ~2KB of mutexes per cache.
const routeCacheShards = 32

// routeCacheShard is one lock-striped slice of the key space.
type routeCacheShard struct {
	mu      sync.RWMutex
	entries map[RouteKey][]graph.Path
}

// RouteCache is the network-wide path cache shared by every SchemePolicy.
// Route computation dominates the simulator's hot path (Dijkstra/Yen per
// sender-recipient pair), so policies funnel every path set — raw SelectPaths
// results, composed hub routes, mice paths — through this cache instead of
// keeping ad-hoc per-policy maps.
//
// Invalidation contract: any mutation of the routed topology — adding
// channels (ReshapeMultiStar), rescaling channel funds (CapitalizeHubs), or
// any future graph surgery — must call Invalidate (policies go through
// Network.InvalidateRoutes). Policies must re-fetch path sets through
// Get/GetOrCompute after such a mutation rather than holding references
// across it; the generation counter exists so long-lived holders can detect
// staleness cheaply.
//
// The cache is sharded by key hash with per-shard read/write locks and
// atomic counters, so any number of concurrent readers (the serving pool's
// workers) can hit it while a writer invalidates. Cached path sets are
// immutable by contract: a Path obtained from the cache must never be
// mutated in place (policies compose by copying). GetOrCompute runs compute
// outside the shard lock — two workers racing on the same cold key may both
// compute, last write wins; both results are correct for the generation
// they were computed in, and a duplicate Dijkstra beats holding a lock
// across one. The single-threaded batch simulator observes exactly the
// pre-sharding semantics (same hits/misses/generation arithmetic).
type RouteCache struct {
	shards [routeCacheShards]routeCacheShard
	gen    atomic.Uint64
	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewRouteCache returns an empty cache.
func NewRouteCache() *RouteCache {
	c := &RouteCache{}
	for i := range c.shards {
		c.shards[i].entries = map[RouteKey][]graph.Path{}
	}
	return c
}

// shard maps a key to its shard by mixing the key fields (fibonacci-style
// multiplicative hashing; src/dst dominate, type/k disambiguate).
func (c *RouteCache) shard(key RouteKey) *routeCacheShard {
	h := uint64(key.Src)*0x9e3779b97f4a7c15 ^
		uint64(key.Dst)*0xc2b2ae3d27d4eb4f ^
		uint64(key.Type)<<32 ^ uint64(uint32(key.K))
	h ^= h >> 29
	return &c.shards[h&(routeCacheShards-1)]
}

// Get returns the cached path set for key. A present-but-empty entry records
// the pair as unroutable; ok distinguishes that from a miss.
func (c *RouteCache) Get(key RouteKey) ([]graph.Path, bool) {
	s := c.shard(key)
	s.mu.RLock()
	paths, ok := s.entries[key]
	s.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return paths, ok
}

// Peek returns the cached path set for key without touching the hit/miss
// counters. Speculative planning workers use it to read the live cache as
// warm-up input: the counters must record only the serial committer's
// arithmetic so a parallel run reports byte-identical cache statistics.
func (c *RouteCache) Peek(key RouteKey) ([]graph.Path, bool) {
	s := c.shard(key)
	s.mu.RLock()
	paths, ok := s.entries[key]
	s.mu.RUnlock()
	return paths, ok
}

// Put stores a path set. Storing nil/empty records the pair as unroutable so
// repeat payments skip the (futile) computation.
func (c *RouteCache) Put(key RouteKey, paths []graph.Path) {
	s := c.shard(key)
	s.mu.Lock()
	s.entries[key] = paths
	s.mu.Unlock()
}

// GetOrCompute returns the cached path set for key, running compute and
// caching its result (including a nil "unroutable" result) on a miss.
// Compute errors are returned uncached. Compute runs outside the shard
// lock; concurrent misses on the same key may compute twice (see the type
// comment), never deadlock, and nested GetOrCompute calls (Splicer's
// composed routes computing transit legs inside the outer compute) remain
// legal under concurrency.
func (c *RouteCache) GetOrCompute(key RouteKey, compute func() ([]graph.Path, error)) ([]graph.Path, error) {
	s := c.shard(key)
	s.mu.RLock()
	paths, ok := s.entries[key]
	s.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return paths, nil
	}
	c.misses.Add(1)
	paths, err := compute()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.entries[key] = paths
	s.mu.Unlock()
	return paths, nil
}

// Invalidate evicts every cached path set and bumps the generation. Called
// whenever the routed topology changes.
func (c *RouteCache) Invalidate() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		clear(s.entries)
		s.mu.Unlock()
	}
	c.gen.Add(1)
}

// Len returns the number of cached path sets.
func (c *RouteCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.entries)
		s.mu.RUnlock()
	}
	return n
}

// Generation counts invalidations; holders of path sets can compare
// generations instead of re-fetching to detect topology changes.
func (c *RouteCache) Generation() uint64 { return c.gen.Load() }

// Hits returns the number of cache hits (Get and GetOrCompute).
func (c *RouteCache) Hits() uint64 { return c.hits.Load() }

// Misses returns the number of cache misses.
func (c *RouteCache) Misses() uint64 { return c.misses.Load() }
