package pcn

import (
	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/routing"
)

// ComposedRoutes is the RouteKey.Type for policy-composed path sets — hub
// concatenations (Splicer access+transit+access, A2L tumbler detours) and
// landmark routes — that do not correspond to a plain routing.PathType
// computation. A network runs exactly one policy, so composed sets from
// different schemes can never collide.
const ComposedRoutes routing.PathType = 0

// RouteKey identifies one route computation: a source/destination pair, the
// path-selection strategy, and the requested path count. Distinct strategies
// or k values for the same pair cache independently (e.g. Flash's k=3 KSP
// mice paths never collide with another KSP query for the same pair).
type RouteKey struct {
	Src, Dst graph.NodeID
	Type     routing.PathType
	K        int
}

// RouteCache is the network-wide path cache shared by every SchemePolicy.
// Route computation dominates the simulator's hot path (Dijkstra/Yen per
// sender-recipient pair), so policies funnel every path set — raw SelectPaths
// results, composed hub routes, mice paths — through this cache instead of
// keeping ad-hoc per-policy maps.
//
// Invalidation contract: any mutation of the routed topology — adding
// channels (ReshapeMultiStar), rescaling channel funds (CapitalizeHubs), or
// any future graph surgery — must call Invalidate (policies go through
// Network.InvalidateRoutes). Policies must re-fetch path sets through
// Get/GetOrCompute after such a mutation rather than holding references
// across it; the generation counter exists so long-lived holders can detect
// staleness cheaply.
//
// A RouteCache belongs to one Network and is not safe for concurrent use
// (parallel sweep workers each own a private Network and cache).
type RouteCache struct {
	entries map[RouteKey][]graph.Path
	gen     uint64
	hits    uint64
	misses  uint64
}

// NewRouteCache returns an empty cache.
func NewRouteCache() *RouteCache {
	return &RouteCache{entries: map[RouteKey][]graph.Path{}}
}

// Get returns the cached path set for key. A present-but-empty entry records
// the pair as unroutable; ok distinguishes that from a miss.
func (c *RouteCache) Get(key RouteKey) ([]graph.Path, bool) {
	paths, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return paths, ok
}

// Put stores a path set. Storing nil/empty records the pair as unroutable so
// repeat payments skip the (futile) computation.
func (c *RouteCache) Put(key RouteKey, paths []graph.Path) {
	c.entries[key] = paths
}

// GetOrCompute returns the cached path set for key, running compute and
// caching its result (including a nil "unroutable" result) on a miss.
// Compute errors are returned uncached.
func (c *RouteCache) GetOrCompute(key RouteKey, compute func() ([]graph.Path, error)) ([]graph.Path, error) {
	if paths, ok := c.entries[key]; ok {
		c.hits++
		return paths, nil
	}
	c.misses++
	paths, err := compute()
	if err != nil {
		return nil, err
	}
	c.entries[key] = paths
	return paths, nil
}

// Invalidate evicts every cached path set and bumps the generation. Called
// whenever the routed topology changes.
func (c *RouteCache) Invalidate() {
	clear(c.entries)
	c.gen++
}

// Len returns the number of cached path sets.
func (c *RouteCache) Len() int { return len(c.entries) }

// Generation counts invalidations; holders of path sets can compare
// generations instead of re-fetching to detect topology changes.
func (c *RouteCache) Generation() uint64 { return c.gen }

// Hits returns the number of cache hits (Get and GetOrCompute).
func (c *RouteCache) Hits() uint64 { return c.hits }

// Misses returns the number of cache misses.
func (c *RouteCache) Misses() uint64 { return c.misses }
