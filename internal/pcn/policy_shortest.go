package pcn

import (
	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/routing"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// shortestPathPolicy is the naive single-shortest-path HTLC baseline (not in
// the paper's figures; used by tests and the deadlock example).
type shortestPathPolicy struct{ basePolicy }

func (shortestPathPolicy) Plan(n *Network, tx workload.Tx) ([]graph.Path, []Allocation, error) {
	key := RouteKey{Src: tx.Sender, Dst: tx.Recipient, Type: routing.KSP, K: 1}
	paths, err := n.planRoutes(key, func() ([]graph.Path, error) {
		p, ok := n.unitShortestPath(tx.Sender, tx.Recipient)
		if !ok {
			return nil, nil
		}
		return []graph.Path{p}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	if len(paths) == 0 {
		return nil, nil, nil
	}
	return paths, []Allocation{{PathIdx: 0, Value: tx.Value}}, nil
}

// SpeculationSafe marks Plan as a pure function of the routed topology
// (static capacities, hub assignments, config, endpoints), so it may run
// speculatively on a planning worker (see SpeculativePlanner).
func (p *shortestPathPolicy) SpeculationSafe() bool { return true }
