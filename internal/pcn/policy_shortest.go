package pcn

import (
	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// shortestPathPolicy is the naive single-shortest-path HTLC baseline (not in
// the paper's figures; used by tests and the deadlock example).
type shortestPathPolicy struct{ basePolicy }

func (shortestPathPolicy) Plan(n *Network, tx workload.Tx) ([]graph.Path, []Allocation, error) {
	p, ok := n.g.ShortestPath(tx.Sender, tx.Recipient, graph.UnitWeight)
	if !ok {
		return nil, nil, nil
	}
	return []graph.Path{p}, []Allocation{{PathIdx: 0, Value: tx.Value}}, nil
}
