package pcn

import (
	"math"
	"reflect"
	"testing"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/reliability"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// detourGraph has a 2-hop route 0-1-4 whose last hop cannot carry a
// 10-token TU (forward balance 5) and a 3-hop detour 0-2-3-4 with ample
// balance everywhere. The capacity-blind shortest-path planner always picks
// the short route first, so the first attempt deterministically dies with
// no_funds at edge 1-4 — the retry layer's bread-and-butter case.
func detourGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(5)
	for _, e := range []struct {
		u, v     graph.NodeID
		fwd, rev float64
	}{
		{0, 1, 100, 100},
		{1, 4, 5, 100},
		{0, 2, 100, 100},
		{2, 3, 100, 100},
		{3, 4, 100, 100},
	} {
		if _, err := g.AddEdge(e.u, e.v, e.fwd, e.rev); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

var detourTrace = []workload.Tx{{
	ID: 0, Sender: 0, Recipient: 4, Value: 10, Arrival: 0.1, Deadline: 3.1,
}}

func TestRetryRecoversNoFunds(t *testing.T) {
	// Unarmed baseline: the payment dies on the underfunded hop.
	n, err := NewNetwork(detourGraph(t), NewConfig(SchemeShortestPath))
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Run(detourTrace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 {
		t.Fatalf("unarmed run completed %d payments, want 0", res.Completed)
	}
	if res.FailureReasons["no_funds"] == 0 {
		t.Fatalf("unarmed failure not attributed to no_funds: %v", res.FailureReasons)
	}
	if res.RetryAttempts != 0 {
		t.Fatalf("unarmed run recorded %d retry attempts", res.RetryAttempts)
	}

	// Armed: the retry re-plans around the failed hop onto the detour.
	cfg := NewConfig(SchemeShortestPath)
	cfg.Retry = reliability.NewConfig()
	n, err = NewNetwork(detourGraph(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res, err = n.Run(detourTrace); err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatalf("armed run did not recover the payment: %+v", res)
	}
	if res.RetryAttempts != 1 || res.RetryRecovered != 1 || res.RetryExhausted != 0 {
		t.Fatalf("retry counters = %d/%d/%d, want 1 attempt, 1 recovered, 0 exhausted",
			res.RetryAttempts, res.RetryRecovered, res.RetryExhausted)
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	// The store saw the failing hop and vouched for the 3 detour hops.
	if st := n.ReliabilityStats(); st.Failures != 1 || st.Successes != 3 {
		t.Fatalf("store stats = %+v, want 1 failure, 3 successes", st)
	}
}

// TestRetryExhaustsWhenEveryRouteFails pins the bounded-loop endgame: both
// diamond routes are underfunded at the far hop, the first retry finds the
// second route (avoiding the failed hop), and the second re-plan is boxed in
// — one route avoided, the other inside its exclusion window — so the TU
// resolves as exhausted, funds conserved.
func TestRetryExhaustsWhenEveryRouteFails(t *testing.T) {
	g := graph.New(4)
	for _, e := range []struct {
		u, v     graph.NodeID
		fwd, rev float64
	}{
		{0, 1, 100, 100},
		{1, 3, 5, 100},
		{0, 2, 100, 100},
		{2, 3, 5, 100},
	} {
		if _, err := g.AddEdge(e.u, e.v, e.fwd, e.rev); err != nil {
			t.Fatal(err)
		}
	}
	cfg := NewConfig(SchemeShortestPath)
	cfg.Retry = reliability.NewConfig()
	n, err := NewNetwork(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Run([]workload.Tx{{
		ID: 0, Sender: 0, Recipient: 3, Value: 10, Arrival: 0.1, Deadline: 3.1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 {
		t.Fatalf("payment completed despite every route being underfunded: %+v", res)
	}
	if res.RetryAttempts != 1 || res.RetryExhausted != 1 || res.RetryRecovered != 0 {
		t.Fatalf("retry counters = %d/%d/%d, want 1 attempt, 0 recovered, 1 exhausted",
			res.RetryAttempts, res.RetryRecovered, res.RetryExhausted)
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	// A resurrected abort is not a resolution, so only the final exhausted
	// attempt lands in the failure breakdown — no double counting.
	if res.FailureReasons["no_funds"] != 1 {
		t.Fatalf("expected exactly the final abort attributed to no_funds: %v", res.FailureReasons)
	}
}

// TestRetryDeterminism pins that an armed run is a pure function of its
// inputs: same graph, trace, and retry seed → identical Result, twice.
func TestRetryDeterminism(t *testing.T) {
	run := func() Result {
		// The capacity-blind baseline under a heavy trace: plenty of no_funds
		// aborts, so the retry path actually executes.
		g, trace := testGraphAndTrace(t, 41, 40, 120, 4)
		cfg := NewConfig(SchemeShortestPath)
		cfg.Retry = reliability.NewConfig()
		cfg.Retry.Seed = 7
		n, err := NewNetwork(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := n.Run(trace)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.CheckConservation(); err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(res.MeanQueueDelay) {
			res.MeanQueueDelay = 0 // NaN breaks DeepEqual; queueless scheme
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("armed runs diverged:\n%+v\n%+v", a, b)
	}
	if a.RetryAttempts == 0 {
		t.Fatal("determinism run exercised no retries; test is vacuous")
	}
}

// TestRetryConservesAcrossSchemes runs a real workload with retries armed
// under both a queueing and a non-queueing scheme and checks the ledger:
// total channel funds unchanged, nothing left locked.
func TestRetryConservesAcrossSchemes(t *testing.T) {
	for _, scheme := range []Scheme{SchemeSplicer, SchemeShortestPath} {
		g, trace := testGraphAndTrace(t, 43, 40, 40, 4)
		cfg := NewConfig(scheme)
		cfg.Retry = reliability.NewConfig()
		n, err := NewNetwork(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		before := totalFunds(n)
		res, err := n.Run(trace)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if err := n.CheckConservation(); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if after := totalFunds(n); math.Abs(after-before) > 1e-6 {
			t.Fatalf("%v: funds not conserved with retries armed: %v -> %v", scheme, before, after)
		}
		if res.Generated == 0 {
			t.Fatalf("%v: vacuous run", scheme)
		}
	}
}

func TestRetryReasonClassification(t *testing.T) {
	for _, r := range []string{"no_funds", "queue_full", "channel_closed", "lock_race"} {
		if !retryableReason(r) || !observableReason(r) {
			t.Errorf("%s must be retryable and observable", r)
		}
	}
	if retryableReason("deadline") {
		t.Error("deadline aborts must not retry (budget already spent)")
	}
	if !observableReason("deadline") {
		t.Error("deadline aborts must still penalize the stuck hop")
	}
	for _, r := range []string{"held_released", "sibling_failed", "no_route", "no_flow", "htlc_expired"} {
		if retryableReason(r) {
			t.Errorf("%s must not be retryable", r)
		}
	}
}
