package pcn

import (
	"fmt"
	"math"
	"testing"

	"github.com/splicer-pcn/splicer/internal/channel"
	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/rng"
	"github.com/splicer-pcn/splicer/internal/topology"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// testNetwork builds a small connected WS graph with LN-like channel sizes.
func testGraphAndTrace(t *testing.T, seed uint64, nodes int, rate, duration float64) (*graph.Graph, []workload.Tx) {
	t.Helper()
	src := rng.New(seed)
	sizes := workload.NewChannelSizeDist(src.Split(1), 1)
	g, err := topology.WattsStrogatz(src.Split(2), nodes, 4, 0.25, sizes.CapacityFunc())
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]graph.NodeID, nodes)
	for i := range clients {
		clients[i] = graph.NodeID(i)
	}
	trace, err := workload.Generate(src.Split(3), workload.Config{
		Clients:             clients,
		Rate:                rate,
		Duration:            duration,
		Timeout:             3,
		ZipfSkew:            0.8,
		ValueScale:          1,
		CirculationFraction: 0.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, trace
}

func totalFunds(n *Network) float64 {
	total := 0.0
	for i := 0; i < n.Graph().NumEdges(); i++ {
		total += n.Channel(graph.EdgeID(i)).Capacity()
	}
	return total
}

func runScheme(t *testing.T, scheme Scheme, seed uint64, nodes int) (Result, *Network) {
	t.Helper()
	g, trace := testGraphAndTrace(t, seed, nodes, 40, 5)
	cfg := NewConfig(scheme)
	n, err := NewNetwork(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := totalFunds(n)
	res, err := n.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	if after := totalFunds(n); math.Abs(after-before) > 1e-6 {
		t.Fatalf("%v: channel funds not conserved: %v -> %v", scheme, before, after)
	}
	// No funds may remain locked after every deadline passed.
	for i := 0; i < n.Graph().NumEdges(); i++ {
		ch := n.Channel(graph.EdgeID(i))
		if ch.Locked(channel.Fwd) > 1e-9 || ch.Locked(channel.Rev) > 1e-9 {
			t.Fatalf("%v: channel %d still has locked funds after run", scheme, i)
		}
	}
	return res, n
}

func TestAllSchemesRunAndConserve(t *testing.T) {
	for _, scheme := range []Scheme{SchemeSplicer, SchemeSpider, SchemeFlash, SchemeLandmark, SchemeA2L, SchemeShortestPath} {
		res, _ := runScheme(t, scheme, 11, 60)
		if res.Generated == 0 {
			t.Fatalf("%v: no transactions generated", scheme)
		}
		if res.TSR < 0 || res.TSR > 1 {
			t.Fatalf("%v: TSR %v out of range", scheme, res.TSR)
		}
		if res.NormalizedThroughput < 0 || res.NormalizedThroughput > 1+1e-9 {
			t.Fatalf("%v: throughput %v out of range", scheme, res.NormalizedThroughput)
		}
		if res.Completed > 0 && (math.IsNaN(res.MeanDelay) || res.MeanDelay <= 0) {
			t.Fatalf("%v: bad mean delay %v with %d completions", scheme, res.MeanDelay, res.Completed)
		}
		t.Logf("%-13v TSR=%.3f thr=%.3f delay=%.3fs completed=%d/%d",
			scheme, res.TSR, res.NormalizedThroughput, res.MeanDelay, res.Completed, res.Generated)
	}
}

func TestSplicerOutperformsNaiveOnDeadlockWorkload(t *testing.T) {
	// Heavy circulation: the Fig. 1(b) pattern drains intermediaries under
	// naive shortest-path routing; Splicer's balance-aware rates must do
	// strictly better.
	src := rng.New(77)
	sizes := workload.NewChannelSizeDist(src.Split(1), 0.2) // tight channels
	g, err := topology.WattsStrogatz(src.Split(2), 50, 4, 0.2, sizes.CapacityFunc())
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]graph.NodeID, 50)
	for i := range clients {
		clients[i] = graph.NodeID(i)
	}
	trace, err := workload.Generate(src.Split(3), workload.Config{
		Clients:             clients,
		Rate:                60,
		Duration:            6,
		Timeout:             3,
		ZipfSkew:            0.5,
		ValueScale:          1.5,
		CirculationFraction: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(scheme Scheme) Result {
		n, err := NewNetwork(g.Clone(), NewConfig(scheme))
		if err != nil {
			t.Fatal(err)
		}
		res, err := n.Run(trace)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	splicer := run(SchemeSplicer)
	naive := run(SchemeShortestPath)
	t.Logf("splicer TSR=%.3f naive TSR=%.3f", splicer.TSR, naive.TSR)
	if splicer.TSR <= naive.TSR {
		t.Fatalf("Splicer TSR %.3f not above naive %.3f on deadlock workload", splicer.TSR, naive.TSR)
	}
}

func TestSplicerPlacesHubs(t *testing.T) {
	_, n := runScheme(t, SchemeSplicer, 21, 50)
	hubs := n.Hubs()
	if len(hubs) == 0 {
		t.Fatal("no hubs placed")
	}
	// Every non-hub node has a managing hub.
	for i := 0; i < n.Graph().NumNodes(); i++ {
		node := graph.NodeID(i)
		if n.isHub[node] {
			continue
		}
		if _, ok := n.HubOf(node); !ok {
			t.Fatalf("node %d has no managing hub", node)
		}
	}
}

func TestA2LSingleHub(t *testing.T) {
	_, n := runScheme(t, SchemeA2L, 23, 40)
	if len(n.Hubs()) != 1 {
		t.Fatalf("A2L hubs = %v", n.Hubs())
	}
}

func TestExplicitHubOverride(t *testing.T) {
	g, trace := testGraphAndTrace(t, 31, 40, 20, 3)
	cfg := NewConfig(SchemeSplicer)
	cfg.Hubs = []graph.NodeID{3, 7}
	n, err := NewNetwork(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hubs := n.Hubs()
	if len(hubs) != 2 || hubs[0] != 3 || hubs[1] != 7 {
		t.Fatalf("hubs = %v", hubs)
	}
	if _, err := n.Run(trace); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicResults(t *testing.T) {
	r1, _ := runScheme(t, SchemeSplicer, 41, 40)
	r2, _ := runScheme(t, SchemeSplicer, 41, 40)
	// Compare via formatting: NaN fields (empty histograms) are equal runs
	// but NaN != NaN under ==.
	s1, s2 := fmt.Sprintf("%+v", r1), fmt.Sprintf("%+v", r2)
	if s1 != s2 {
		t.Fatalf("runs differ:\n%s\n%s", s1, s2)
	}
}

func TestConfigValidation(t *testing.T) {
	mod := func(f func(*Config)) Config {
		c := NewConfig(SchemeSplicer)
		f(&c)
		return c
	}
	cases := []Config{
		mod(func(c *Config) { c.Scheme = Scheme(0) }),
		mod(func(c *Config) { c.NumPaths = 0 }),
		mod(func(c *Config) { c.UpdateTau = 0 }),
		mod(func(c *Config) { c.HopDelay = -1 }),
		mod(func(c *Config) { c.MinTU = 0 }),
		mod(func(c *Config) { c.MaxTU = 0.5 }),
		mod(func(c *Config) { c.Scheduler = nil }),
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestNewNetworkTooSmall(t *testing.T) {
	g := graph.New(2)
	if _, err := g.AddEdge(0, 1, 10, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := NewNetwork(g, NewConfig(SchemeSplicer)); err == nil {
		t.Fatal("2-node network accepted")
	}
}

func TestEmptyTraceRejected(t *testing.T) {
	g, _ := testGraphAndTrace(t, 51, 30, 10, 2)
	n, err := NewNetwork(g, NewConfig(SchemeSpider))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(nil); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestSchemeByName(t *testing.T) {
	for _, s := range []Scheme{SchemeSplicer, SchemeSpider, SchemeFlash, SchemeLandmark, SchemeA2L, SchemeShortestPath} {
		got, err := SchemeByName(s.String())
		if err != nil || got != s {
			t.Fatalf("SchemeByName(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := SchemeByName("nope"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestGeneratedCounterMatchesTrace(t *testing.T) {
	res, n := runScheme(t, SchemeSpider, 61, 40)
	if got := int(n.Metrics().Counter("tx_generated")); got != res.Generated {
		t.Fatalf("generated counter %d != trace %d", got, res.Generated)
	}
	// Completed + failed == generated (every tx resolves).
	failed := int(n.Metrics().Counter("tx_failed"))
	if res.Completed+failed != res.Generated {
		t.Fatalf("completed %d + failed %d != generated %d", res.Completed, failed, res.Generated)
	}
}
