package pcn

import (
	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/routing"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// splicerPolicy is the paper's scheme: optimal PCH placement, the multi-star
// topology, hub-computed multi-path routing, TU packetization, and the
// price/window congestion controller.
type splicerPolicy struct{ basePolicy }

func (splicerPolicy) UsesQueues() bool { return true }
func (splicerPolicy) UsesPrices() bool { return true }
func (splicerPolicy) SplitsTUs() bool  { return true }

// Setup runs the placement pipeline (or accepts cfg.Hubs), assigns every
// client its Lemma-1 hub, reshapes to the Definition-1 multi-star topology
// and capitalizes the hubs.
func (splicerPolicy) Setup(n *Network) error {
	hubs := n.cfg.Hubs
	if len(hubs) == 0 {
		var err error
		hubs, err = n.placeHubs()
		if err != nil {
			return err
		}
	}
	n.SetHubs(hubs)
	n.assignClients()
	n.ReshapeMultiStar()
	n.CapitalizeHubs()
	return nil
}

// ComputeOwner: the managing hub's (powerful) machine computes routes. A
// sender without an assignment yet (a node that joined mid-run, before the
// next re-placement) self-computes.
func (splicerPolicy) ComputeOwner(n *Network, tx workload.Tx) (graph.NodeID, float64) {
	return n.managingHub(tx.Sender), n.cfg.HubComputeDelay
}

// Plan routes via the sender's and recipient's managing hubs: access segment
// s→hub(s), k hub-to-hub paths of the configured path type, access segment
// hub(r)→r. Demands split into Min/Max-TU bounded units whose paths the rate
// controller assigns dynamically.
//
// Both the composed per-pair path set and the raw hub-to-hub transit segment
// go through the RouteCache: every client pair managed by the same
// (hub, hub) combination shares one transit computation, which is where the
// path-selection cost concentrates on large multi-star networks.
func (splicerPolicy) Plan(n *Network, tx workload.Tx) ([]graph.Path, []Allocation, error) {
	cfg := n.cfg
	key := RouteKey{Src: tx.Sender, Dst: tx.Recipient, Type: ComposedRoutes, K: cfg.NumPaths}
	paths, err := n.planRoutes(key, func() ([]graph.Path, error) {
		hubS := n.managingHub(tx.Sender)
		hubR := n.managingHub(tx.Recipient)
		if hubS == hubR {
			// Same-hub clients: the hub computes k multi-paths directly
			// between its endpoints.
			return routing.SelectPathsWith(n.PathFinder(), tx.Sender, tx.Recipient, cfg.NumPaths, cfg.PathType)
		}
		// The hub-to-hub transit segment is shared by every client pair
		// managed by (hubS, hubR) — including payments between the hubs
		// themselves — so it is cached once under its own key.
		transit := func() ([]graph.Path, error) {
			return n.planRoutes(RouteKey{Src: hubS, Dst: hubR, Type: cfg.PathType, K: cfg.NumPaths}, func() ([]graph.Path, error) {
				return routing.SelectPathsWith(n.PathFinder(), hubS, hubR, cfg.NumPaths, cfg.PathType)
			})
		}
		if hubS == tx.Sender && hubR == tx.Recipient {
			return transit()
		}
		prefix, okP := n.accessPath(tx.Sender, hubS)
		suffix, okS := n.accessPath(hubR, tx.Recipient)
		if !okP || !okS {
			return nil, nil
		}
		middles, err := transit()
		if err != nil {
			return nil, err
		}
		var composed []graph.Path
		for _, mid := range middles {
			composed = append(composed, concatPaths(prefix, mid, suffix))
		}
		return composed, nil
	})
	if err != nil {
		return nil, nil, err
	}
	if len(paths) == 0 {
		return nil, nil, nil
	}
	allocs, err := splitAllocations(tx.Value, n.cfg.MinTU, n.cfg.MaxTU)
	if err != nil {
		return nil, nil, err
	}
	return paths, allocs, nil
}

// SpeculationSafe marks Plan as a pure function of the routed topology
// (static capacities, hub assignments, config, endpoints), so it may run
// speculatively on a planning worker (see SpeculativePlanner).
func (p *splicerPolicy) SpeculationSafe() bool { return true }
