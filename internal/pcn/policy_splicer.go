package pcn

import (
	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/routing"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// splicerPolicy is the paper's scheme: optimal PCH placement, the multi-star
// topology, hub-computed multi-path routing, TU packetization, and the
// price/window congestion controller.
type splicerPolicy struct{ basePolicy }

func (splicerPolicy) UsesQueues() bool { return true }
func (splicerPolicy) UsesPrices() bool { return true }
func (splicerPolicy) SplitsTUs() bool  { return true }

// Setup runs the placement pipeline (or accepts cfg.Hubs), assigns every
// client its Lemma-1 hub, reshapes to the Definition-1 multi-star topology
// and capitalizes the hubs.
func (splicerPolicy) Setup(n *Network) error {
	hubs := n.cfg.Hubs
	if len(hubs) == 0 {
		var err error
		hubs, err = n.placeHubs()
		if err != nil {
			return err
		}
	}
	n.SetHubs(hubs)
	n.assignClients()
	n.ReshapeMultiStar()
	n.CapitalizeHubs()
	return nil
}

// ComputeOwner: the managing hub's (powerful) machine computes routes.
func (splicerPolicy) ComputeOwner(n *Network, tx workload.Tx) (graph.NodeID, float64) {
	hub := n.hubOf[tx.Sender]
	if n.isHub[tx.Sender] {
		hub = tx.Sender
	}
	return hub, n.cfg.HubComputeDelay
}

// Plan routes via the sender's and recipient's managing hubs: access segment
// s→hub(s), k hub-to-hub paths of the configured path type, access segment
// hub(r)→r. Demands split into Min/Max-TU bounded units whose paths the rate
// controller assigns dynamically.
func (splicerPolicy) Plan(n *Network, tx workload.Tx) ([]graph.Path, []Allocation, error) {
	paths, ok := n.CachedPaths(tx.Sender, tx.Recipient)
	if !ok {
		hubS := n.managingHub(tx.Sender)
		hubR := n.managingHub(tx.Recipient)
		if hubS == hubR {
			// Both endpoints are managed by the same hub: the hub computes
			// k multi-paths directly between its clients.
			var err error
			paths, err = routing.SelectPaths(n.g, tx.Sender, tx.Recipient, n.cfg.NumPaths, n.cfg.PathType)
			if err != nil {
				return nil, nil, err
			}
		} else {
			prefix, okP := n.accessPath(tx.Sender, hubS)
			suffix, okS := n.accessPath(hubR, tx.Recipient)
			if !okP || !okS {
				return nil, nil, nil
			}
			middles, err := routing.SelectPaths(n.g, hubS, hubR, n.cfg.NumPaths, n.cfg.PathType)
			if err != nil {
				return nil, nil, err
			}
			for _, mid := range middles {
				paths = append(paths, concatPaths(prefix, mid, suffix))
			}
		}
		n.CachePaths(tx.Sender, tx.Recipient, paths)
	}
	if len(paths) == 0 {
		return nil, nil, nil
	}
	allocs, err := splitAllocations(tx.Value, n.cfg.MinTU, n.cfg.MaxTU)
	if err != nil {
		return nil, nil, err
	}
	return paths, allocs, nil
}
