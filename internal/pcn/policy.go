package pcn

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// ErrNoFlow reports that routing found the endpoints connected but the
// candidate paths could not carry the payment's value (max-flow infeasible).
// Plan implementations return it (possibly wrapped) so dispatch records the
// failure as "no_flow" instead of the generic "no_route".
var ErrNoFlow = errors.New("pcn: insufficient flow for payment value")

// Allocation is a planned (path, value) assignment for one transaction unit.
// PathIdx == -1 defers the path choice to the rate controller at send time
// (rate-controlled schemes).
type Allocation struct {
	PathIdx int
	Value   float64
}

// SchemePolicy encapsulates every scheme-specific decision of the simulator.
// The payment lifecycle in payment.go is scheme-agnostic: it consults the
// network's policy at the hook points below and never branches on the scheme
// identifier. New schemes — including hybrids — implement this interface and
// either register via RegisterPolicy or inject through Config.Policy; the
// core lifecycle needs no change.
//
// A policy owns its scheme-private state (e.g. Flash's stale balance
// snapshot, Landmark's landmark set). Shared infrastructure — hub bookkeeping,
// the per-pair path cache, rate controllers — lives on Network behind
// exported accessors so out-of-package policies can use it too.
type SchemePolicy interface {
	// Scheme is the identifier reported in results and metrics.
	Scheme() Scheme

	// Setup runs once at network construction: hub placement, multi-star
	// topology reshaping, landmark election, capital boosts.
	Setup(n *Network) error

	// ComputeOwner returns the node whose serialized CPU performs the route
	// computation for this payment, and the service time it costs.
	ComputeOwner(n *Network, tx workload.Tx) (graph.NodeID, float64)

	// AlignDispatch may delay the owner's next-free time before the service
	// time is added (A2L's epoch-aligned puzzle-promise protocol). The
	// default is the identity.
	AlignDispatch(n *Network, free float64) float64

	// Plan computes the path set and per-TU allocations for a payment.
	// Returning an empty path or allocation set fails the payment with
	// "no_route"; returning an error wrapping ErrNoFlow fails it with
	// "no_flow" (connected but capacity-infeasible).
	Plan(n *Network, tx workload.Tx) ([]graph.Path, []Allocation, error)

	// UsesQueues enables channel waiting queues (Splicer, Spider).
	UsesQueues() bool
	// UsesPrices enables the τ-periodic capacity/imbalance price updates and
	// probe-based rate feedback (Splicer).
	UsesPrices() bool
	// SplitsTUs enables demand splitting with window/rate control (Splicer,
	// Spider).
	SplitsTUs() bool

	// WantsTick requests τ-periodic OnTick callbacks even when the policy
	// uses neither queues nor prices (Flash's gossip snapshot refresh).
	WantsTick() bool
	// OnTick runs at each τ boundary, before channel maintenance.
	OnTick(n *Network)
}

// basePolicy provides the default hook implementations: source routing on
// the sender's machine, no queues, no prices, no splitting, no ticks.
// Concrete policies embed it and override what they need.
type basePolicy struct{ scheme Scheme }

func (b basePolicy) Scheme() Scheme                               { return b.scheme }
func (basePolicy) Setup(*Network) error                           { return nil }
func (basePolicy) UsesQueues() bool                               { return false }
func (basePolicy) UsesPrices() bool                               { return false }
func (basePolicy) SplitsTUs() bool                                { return false }
func (basePolicy) WantsTick() bool                                { return false }
func (basePolicy) OnTick(*Network)                                {}
func (basePolicy) AlignDispatch(_ *Network, free float64) float64 { return free }

// ComputeOwner defaults to source routing: the sender's own machine computes
// routes over the full topology, so the cost grows with network size.
func (basePolicy) ComputeOwner(n *Network, tx workload.Tx) (graph.NodeID, float64) {
	return tx.Sender, n.cfg.SenderComputeDelayPerNode * float64(n.g.NumNodes())
}

// registration binds a Scheme identifier to its display name and policy
// constructor.
type registration struct {
	name    string
	factory func() SchemePolicy
}

var (
	registryMu     sync.RWMutex
	policyRegistry = map[Scheme]registration{}
)

// RegisterPolicy makes a scheme available to NewNetwork, Scheme.String and
// SchemeByName. The built-in schemes self-register; external packages can
// register additional Scheme identifiers (pick values above
// SchemeShortestPath). Registering a duplicate identifier or name panics.
// Registration is safe for concurrent use with lookups (parallel sweep
// workers read the registry), but register schemes before building the
// sweeps that use them.
func RegisterPolicy(s Scheme, name string, factory func() SchemePolicy) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := policyRegistry[s]; dup {
		panic(fmt.Sprintf("pcn: scheme %d registered twice", int(s)))
	}
	for _, r := range policyRegistry {
		if r.name == name {
			panic(fmt.Sprintf("pcn: scheme name %q registered twice", name))
		}
	}
	policyRegistry[s] = registration{name: name, factory: factory}
}

// lookupScheme returns the registration for a scheme.
func lookupScheme(s Scheme) (registration, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	r, ok := policyRegistry[s]
	return r, ok
}

// policyFor instantiates the registered policy for a scheme.
func policyFor(s Scheme) (SchemePolicy, error) {
	r, ok := lookupScheme(s)
	if !ok {
		return nil, fmt.Errorf("pcn: invalid scheme %d", int(s))
	}
	return r.factory(), nil
}

// registeredSchemes lists all known scheme identifiers in ascending order.
func registeredSchemes() []Scheme {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Scheme, 0, len(policyRegistry))
	for s := range policyRegistry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func init() {
	RegisterPolicy(SchemeSplicer, "Splicer", func() SchemePolicy {
		return &splicerPolicy{basePolicy{SchemeSplicer}}
	})
	RegisterPolicy(SchemeSpider, "Spider", func() SchemePolicy {
		return &spiderPolicy{basePolicy{SchemeSpider}}
	})
	RegisterPolicy(SchemeFlash, "Flash", func() SchemePolicy {
		return &flashPolicy{basePolicy: basePolicy{SchemeFlash}}
	})
	RegisterPolicy(SchemeLandmark, "Landmark", func() SchemePolicy {
		return &landmarkPolicy{basePolicy: basePolicy{SchemeLandmark}}
	})
	RegisterPolicy(SchemeA2L, "A2L", func() SchemePolicy {
		return &a2lPolicy{basePolicy{SchemeA2L}}
	})
	RegisterPolicy(SchemeShortestPath, "ShortestPath", func() SchemePolicy {
		return &shortestPathPolicy{basePolicy{SchemeShortestPath}}
	})
}
