package pcn

import (
	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/routing"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// spiderPolicy is multi-path source routing with packetization: k paths
// directly between sender and recipient, TU splitting, window congestion
// control — but no capacity/imbalance price coordination (that is Splicer's
// addition) and the route computation runs on the sender's machine.
type spiderPolicy struct{ basePolicy }

func (spiderPolicy) UsesQueues() bool { return true }
func (spiderPolicy) SplitsTUs() bool  { return true }

func (spiderPolicy) Plan(n *Network, tx workload.Tx) ([]graph.Path, []Allocation, error) {
	key := RouteKey{Src: tx.Sender, Dst: tx.Recipient, Type: routing.EDW, K: n.cfg.NumPaths}
	paths, err := n.planRoutes(key, func() ([]graph.Path, error) {
		return routing.SelectPathsWith(n.PathFinder(), tx.Sender, tx.Recipient, n.cfg.NumPaths, routing.EDW)
	})
	if err != nil {
		return nil, nil, err
	}
	if len(paths) == 0 {
		return nil, nil, nil
	}
	allocs, err := splitAllocations(tx.Value, n.cfg.MinTU, n.cfg.MaxTU)
	if err != nil {
		return nil, nil, err
	}
	return paths, allocs, nil
}

// SpeculationSafe marks Plan as a pure function of the routed topology
// (static capacities, hub assignments, config, endpoints), so it may run
// speculatively on a planning worker (see SpeculativePlanner).
func (p *spiderPolicy) SpeculationSafe() bool { return true }
