package attack

import (
	"reflect"
	"testing"

	"github.com/splicer-pcn/splicer/internal/dynamics"
	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/pcn"
	"github.com/splicer-pcn/splicer/internal/rng"
	"github.com/splicer-pcn/splicer/internal/topology"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// testNetwork builds a Watts–Strogatz network under the given scheme.
func testNetwork(t testing.TB, seed uint64, nodes int, scheme pcn.Scheme, maxInFlight int) *pcn.Network {
	t.Helper()
	src := rng.New(seed)
	sizes := workload.NewChannelSizeDist(src.Split(1), 1)
	g, err := topology.WattsStrogatz(src.Split(2), nodes, 4, 0.25, sizes.CapacityFunc())
	if err != nil {
		t.Fatal(err)
	}
	cfg := pcn.NewConfig(scheme)
	cfg.NumHubCandidates = 8
	cfg.MaxInFlightTUs = maxInFlight
	n, err := pcn.NewNetwork(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// testTrace generates a short honest workload over all nodes.
func testTrace(t testing.TB, seed uint64, n *pcn.Network, rate, duration float64) []workload.Tx {
	t.Helper()
	clients := make([]graph.NodeID, n.Graph().NumNodes())
	for i := range clients {
		clients[i] = graph.NodeID(i)
	}
	trace, err := workload.Generate(rng.New(seed).Split(3), workload.Config{
		Clients: clients, Rate: rate, Duration: duration,
		Timeout: 3, ZipfSkew: 0.8, ValueScale: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

// runWithAttack mirrors the scenario engine's static attack path: decomposed
// run with the injector's events installed on the same engine.
func runWithAttack(t testing.TB, n *pcn.Network, trace []workload.Tx, src *rng.Source, cfg Config) (pcn.Result, *Injector) {
	t.Helper()
	horizon := trace[len(trace)-1].Deadline + 1
	if end := cfg.End() + 1; end > horizon {
		horizon = end
	}
	if err := n.BeginRun(horizon); err != nil {
		t.Fatal(err)
	}
	for _, tx := range trace {
		if err := n.ScheduleArrival(tx); err != nil {
			t.Fatal(err)
		}
	}
	inj, err := NewInjector(n, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Install(); err != nil {
		t.Fatal(err)
	}
	res, err := n.Execute(horizon)
	if err != nil {
		t.Fatal(err)
	}
	return res, inj
}

// TestJammingHoldsAndConserves pins the jamming injector end to end:
// adversarial payments are issued during the window, hold locked TUs, stay
// out of the honest accounting, and the run conserves funds.
func TestJammingHoldsAndConserves(t *testing.T) {
	n := testNetwork(t, 5, 60, pcn.SchemeSplicer, 10)
	trace := testTrace(t, 5, n, 40, 3)
	cfg := Config{Kind: KindJamming, Start: 0.5, Duration: 2, Rate: 30, HoldTime: 1.5}
	res, inj := runWithAttack(t, n, trace, rng.New(99), cfg)
	st := inj.Stats()
	if st.AdversarialScheduled == 0 {
		t.Fatal("no adversarial payments scheduled at rate 30 over 2 s")
	}
	if res.AdversarialGenerated != st.AdversarialScheduled {
		t.Fatalf("AdversarialGenerated = %d, injector scheduled %d", res.AdversarialGenerated, st.AdversarialScheduled)
	}
	if res.Generated != len(trace) {
		t.Fatalf("honest Generated = %d polluted by the attack, want %d", res.Generated, len(trace))
	}
	if res.HeldTUs == 0 {
		t.Fatal("jamming run held no TUs")
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestInjectorDeterminism pins the seeded-attack contract: equal seeds over
// equal networks produce identical results and stats; different seeds
// produce a different attack.
func TestInjectorDeterminism(t *testing.T) {
	run := func(attackSeed uint64) (pcn.Result, Stats) {
		n := testNetwork(t, 5, 60, pcn.SchemeSplicer, 10)
		trace := testTrace(t, 5, n, 40, 3)
		cfg := Config{Kind: KindJamming, Start: 0.5, Duration: 2, Rate: 30, HoldTime: 1.5}
		res, inj := runWithAttack(t, n, trace, rng.New(attackSeed), cfg)
		if err := n.CheckConservation(); err != nil {
			t.Fatal(err)
		}
		return res, inj.Stats()
	}
	resA, stA := run(99)
	resB, stB := run(99)
	if !reflect.DeepEqual(resA, resB) || stA != stB {
		t.Fatalf("equal seeds diverged:\n%+v\n%+v", resA, resB)
	}
	resC, stC := run(100)
	if stA == stC && reflect.DeepEqual(resA, resC) {
		t.Fatal("different attack seeds produced an identical run")
	}
}

// TestFlashCrowdAddsHonestDemand pins the flash-crowd injector: spike
// payments are honest (they count toward Generated/TSR) and the run
// conserves funds under the shock.
func TestFlashCrowdAddsHonestDemand(t *testing.T) {
	n := testNetwork(t, 6, 60, pcn.SchemeSplicer, 0)
	trace := testTrace(t, 6, n, 40, 3)
	cfg := Config{
		Kind: KindFlashCrowd, Start: 1, Duration: 1,
		SpikeFactor: 20, RegionFraction: 0.2,
		BaseRate: 40, ValueScale: 1, Timeout: 3,
	}
	res, inj := runWithAttack(t, n, trace, rng.New(7), cfg)
	st := inj.Stats()
	if st.FlashScheduled == 0 {
		t.Fatal("flash crowd scheduled no spike payments at 20x")
	}
	if res.Generated != len(trace)+st.FlashScheduled {
		t.Fatalf("Generated = %d, want honest %d + spike %d", res.Generated, len(trace), st.FlashScheduled)
	}
	if res.AdversarialGenerated != 0 {
		t.Fatalf("flash payments are honest, but AdversarialGenerated = %d", res.AdversarialGenerated)
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestHubOutageStrikesAndRecovers pins the correlated-outage injector on a
// hub scheme: the top-k placement hubs depart at Start, rejoin at
// Start+RecoverAfter with their former channels re-opened, and the run
// conserves funds across the strike (closed-channel balances) and the
// recovery (fresh pledged capital).
func TestHubOutageStrikesAndRecovers(t *testing.T) {
	n := testNetwork(t, 8, 60, pcn.SchemeSplicer, 0)
	hubs := n.Hubs()
	if len(hubs) < 2 {
		t.Fatalf("placement produced %d hubs, need >= 2", len(hubs))
	}
	trace := testTrace(t, 8, n, 40, 4)
	cfg := Config{Kind: KindHubOutage, Start: 1, TopK: 2, RecoverAfter: 1.5}
	_, inj := runWithAttack(t, n, trace, rng.New(3), cfg)
	st := inj.Stats()
	if st.HubsStruck != 2 {
		t.Fatalf("HubsStruck = %d, want 2", st.HubsStruck)
	}
	if st.HubsRecovered != 2 {
		t.Fatalf("HubsRecovered = %d, want 2", st.HubsRecovered)
	}
	if st.ChannelsReopened == 0 {
		t.Fatal("recovery re-opened no channels")
	}
	for _, h := range hubs[:2] {
		if n.Departed(h) {
			t.Fatalf("hub %d still departed after recovery", h)
		}
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestHubOutageNoRecovery pins the permanent-outage variant: struck hubs
// stay departed and funds still conserve (their channel balances remain
// accounted in the closed channels).
func TestHubOutageNoRecovery(t *testing.T) {
	n := testNetwork(t, 8, 60, pcn.SchemeSplicer, 0)
	hubs := n.Hubs()
	trace := testTrace(t, 8, n, 40, 3)
	cfg := Config{Kind: KindHubOutage, Start: 1, TopK: 2}
	_, inj := runWithAttack(t, n, trace, rng.New(3), cfg)
	if st := inj.Stats(); st.HubsStruck != 2 || st.HubsRecovered != 0 {
		t.Fatalf("stats = %+v, want 2 struck / 0 recovered", st)
	}
	if !n.Departed(hubs[0]) {
		t.Fatal("struck hub rejoined without RecoverAfter")
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestAttackUnderChurn pins attack/churn composition: the injector rides a
// dynamics-driven run whose own timeline departs and joins nodes while the
// attack strikes hubs and jams channels, and conservation still holds —
// the mid-attack-churn case of the conservation satellite.
func TestAttackUnderChurn(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"jamming", Config{Kind: KindJamming, Start: 0.5, Duration: 2, Rate: 20, HoldTime: 1.5}},
		{"hub-outage", Config{Kind: KindHubOutage, Start: 1, TopK: 2, RecoverAfter: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := testNetwork(t, 9, 60, pcn.SchemeSplicer, 10)
			dcfg := dynamics.NewConfig(4)
			dcfg.JoinRate = 2
			dcfg.LeaveRate = 2
			dcfg.OpenRate = 2
			dcfg.CloseRate = 2
			dcfg.TopUpRate = 2
			dcfg.Rate = 40
			d, err := dynamics.NewDriver(n, rng.New(9).Split(4), dcfg)
			if err != nil {
				t.Fatal(err)
			}
			inj, err := NewInjector(n, rng.New(9).Split(5), tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			inj.AttachDriver(d)
			if err := inj.Install(); err != nil {
				t.Fatal(err)
			}
			if _, err := d.Run(); err != nil {
				t.Fatal(err)
			}
			if err := n.CheckConservation(); err != nil {
				t.Fatalf("conservation under churn + %s: %v", tc.name, err)
			}
		})
	}
}

// TestConfigValidate pins the per-kind parameter checks.
func TestConfigValidate(t *testing.T) {
	valid := []Config{
		{Kind: KindJamming, Rate: 10, Duration: 1},
		{Kind: KindFlashCrowd, SpikeFactor: 10, RegionFraction: 0.2, BaseRate: 50, ValueScale: 1, Timeout: 3, Duration: 1},
		{Kind: KindHubOutage, TopK: 3},
	}
	for _, c := range valid {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: unexpected error %v", c.Kind, err)
		}
	}
	invalid := []Config{
		{Kind: "ddos"},
		{Kind: KindJamming, Rate: -1},
		{Kind: KindJamming, Start: -1},
		{Kind: KindFlashCrowd, SpikeFactor: 0.5, BaseRate: 50, ValueScale: 1, Timeout: 3},
		{Kind: KindFlashCrowd, SpikeFactor: 2, RegionFraction: 1.5, BaseRate: 50, ValueScale: 1, Timeout: 3},
		{Kind: KindFlashCrowd, SpikeFactor: 2, RegionFraction: 0.2},
		{Kind: KindHubOutage, TopK: -1},
	}
	for _, c := range invalid {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v: invalid config accepted", c)
		}
	}
}
