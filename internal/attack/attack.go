// Package attack is the adversarial & stress subsystem: seeded injectors
// that subject a live pcn.Network to the three threat models the resilience
// panel measures — HTLC jamming (attacker-controlled nodes lock value along
// paths and withhold the preimage until a timeout), flash-crowd demand
// shocks (a sudden arrival-rate spike concentrated on one region), and
// correlated hub outages (the top-k placement hubs depart simultaneously,
// with optional recovery).
//
// Every injector schedules its events on the network's own sim engine (via
// At/Arrive), so attacks compose with the dynamics driver's churn timeline
// and with static trace runs alike, and determinism is preserved: one
// rng.Source seeds all attacker randomness, disjoint from the workload and
// dynamics streams. The conservation-of-funds invariant is the correctness
// oracle — an attack that creates or strands funds found a bug, not a
// vulnerability.
package attack

import (
	"fmt"

	"github.com/splicer-pcn/splicer/internal/dynamics"
	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/pcn"
	"github.com/splicer-pcn/splicer/internal/rng"
	"github.com/splicer-pcn/splicer/internal/topology"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// Kind names an attack type.
type Kind string

// The three attacks of the resilience panel.
const (
	KindJamming    Kind = "jamming"
	KindFlashCrowd Kind = "flash-crowd"
	KindHubOutage  Kind = "hub-outage"
)

// Transaction-ID bases keep attacker and spike payments out of the honest
// trace's ID space (the network keys in-flight state by tx ID).
const (
	flashIDBase   = 1 << 29
	jammingIDBase = 1 << 30
)

// Config parameterizes one injector. Only the fields of the selected Kind
// are read; zero values get the documented defaults.
type Config struct {
	Kind Kind
	// Start and Duration bound the attack window in seconds. Hub outages
	// strike once at Start (Duration unused).
	Start    float64
	Duration float64

	// Jamming: Attackers nodes (default 4) issue adversarial payments at
	// aggregate Poisson rate Rate (tx/s), each of Value tokens (default 4,
	// the MaxTU) held locked for HoldTime seconds (default 2).
	Attackers int
	Rate      float64
	HoldTime  float64
	Value     float64

	// Flash crowd: during the window the aggregate arrival rate targeting a
	// contiguous region of RegionFraction (default 0.2) of the clients is
	// SpikeFactor × BaseRate; the injector superposes the extra
	// (SpikeFactor−1)·BaseRate honest arrivals. ValueScale and Timeout echo
	// the base workload so spike payments are drawn from the same value
	// distribution and deadline rule.
	SpikeFactor    float64
	RegionFraction float64
	BaseRate       float64
	ValueScale     float64
	Timeout        float64

	// Hub outage: the TopK placement hubs (top-degree nodes for hub-less
	// schemes) depart simultaneously at Start; with RecoverAfter > 0 they
	// rejoin at Start+RecoverAfter and re-open their former channels, funded
	// with the balances held at depart time (fresh pledged capital).
	TopK         int
	RecoverAfter float64
}

// Validate checks the parameters of the selected kind.
func (c Config) Validate() error {
	switch c.Kind {
	case KindJamming, KindFlashCrowd, KindHubOutage:
	default:
		return fmt.Errorf("attack: unknown kind %q", c.Kind)
	}
	if c.Start < 0 || c.Duration < 0 {
		return fmt.Errorf("attack: window must be non-negative, got start %v duration %v", c.Start, c.Duration)
	}
	switch c.Kind {
	case KindJamming:
		if c.Rate < 0 || c.Attackers < 0 || c.HoldTime < 0 || c.Value < 0 {
			return fmt.Errorf("attack: jamming parameters must be non-negative")
		}
	case KindFlashCrowd:
		if c.SpikeFactor != 0 && c.SpikeFactor < 1 {
			return fmt.Errorf("attack: spike factor must be >= 1, got %v", c.SpikeFactor)
		}
		if c.RegionFraction < 0 || c.RegionFraction > 1 {
			return fmt.Errorf("attack: region fraction must be in [0,1], got %v", c.RegionFraction)
		}
		if c.BaseRate <= 0 || c.ValueScale <= 0 || c.Timeout <= 0 {
			return fmt.Errorf("attack: flash crowd needs positive base rate, value scale and timeout")
		}
	case KindHubOutage:
		if c.TopK < 0 || c.RecoverAfter < 0 {
			return fmt.Errorf("attack: outage parameters must be non-negative")
		}
	}
	return nil
}

// withDefaults fills the documented zero-value defaults.
func (c Config) withDefaults() Config {
	if c.Kind == KindJamming {
		if c.Attackers == 0 {
			c.Attackers = 4
		}
		if c.HoldTime == 0 {
			c.HoldTime = 2
		}
		if c.Value == 0 {
			c.Value = 4
		}
	}
	if c.Kind == KindFlashCrowd {
		if c.SpikeFactor == 0 {
			c.SpikeFactor = 1
		}
		if c.RegionFraction == 0 {
			c.RegionFraction = 0.2
		}
	}
	return c
}

// End returns the last instant the attack can schedule an event at (the
// horizon a static run must cover for a clean unwind).
func (c Config) End() float64 {
	switch c.Kind {
	case KindJamming:
		return c.Start + c.Duration + c.HoldTime + 1
	case KindFlashCrowd:
		return c.Start + c.Duration + c.Timeout
	case KindHubOutage:
		if c.RecoverAfter > 0 {
			return c.Start + c.RecoverAfter
		}
		return c.Start
	}
	return c.Start
}

// Stats counts what an injector actually did, for tests and reporting.
type Stats struct {
	AdversarialScheduled int // jamming payments scheduled
	FlashScheduled       int // spike payments scheduled
	HubsStruck           int // hubs departed by the outage
	HubsRecovered        int // hubs rejoined after RecoverAfter
	ChannelsReopened     int // former hub channels re-opened on recovery
}

// reopen records one former hub channel for recovery: the peer and the
// per-side balances at depart time.
type reopen struct {
	peer    graph.NodeID
	balHub  float64
	balPeer float64
}

// Injector installs one attack's events on a network's engine.
type Injector struct {
	net *pcn.Network
	drv *dynamics.Driver // optional demand-membership coupling
	src *rng.Source
	cfg Config

	clients []graph.NodeID
	struck  map[graph.NodeID][]reopen
	stats   Stats
}

// NewInjector builds an injector over a freshly constructed network. The
// source seeds all attacker randomness; equal seeds over equal networks
// produce identical attacks.
func NewInjector(net *pcn.Network, src *rng.Source, cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{net: net, src: src, cfg: cfg.withDefaults(), struck: map[graph.NodeID][]reopen{}}
	g := net.Graph()
	for v := 0; v < g.NumNodes(); v++ {
		if !net.Departed(graph.NodeID(v)) {
			in.clients = append(in.clients, graph.NodeID(v))
		}
	}
	if len(in.clients) < 2 {
		return nil, fmt.Errorf("attack: need >= 2 active nodes, got %d", len(in.clients))
	}
	return in, nil
}

// AttachDriver couples the injector to a dynamics driver: nodes the outage
// departs leave the driver's demand ranking (and rejoin on recovery), so the
// demand process tracks the attacked topology the way it tracks the driver's
// own churn.
func (in *Injector) AttachDriver(d *dynamics.Driver) { in.drv = d }

// Stats returns what the injector scheduled/applied so far.
func (in *Injector) Stats() Stats { return in.stats }

// Install schedules the attack's events on the network's engine. Call after
// the network (and driver, if any) is built and before the event loop runs;
// events themselves fire inside the loop.
func (in *Injector) Install() error {
	switch in.cfg.Kind {
	case KindJamming:
		return in.installJamming()
	case KindFlashCrowd:
		return in.installFlashCrowd()
	case KindHubOutage:
		return in.installHubOutage()
	}
	return fmt.Errorf("attack: unknown kind %q", in.cfg.Kind)
}

// installJamming pre-draws the adversarial payment schedule: Attackers
// nodes, chosen uniformly, emit Poisson arrivals at aggregate rate Rate
// during the window. Each payment locks Value along a path to a random
// victim and withholds the preimage for HoldTime (Tx.Hold); the deadline
// leaves a 1 s margin past the hold so the full hold is honored before the
// watchdog unwinds it.
func (in *Injector) installJamming() error {
	cfg := in.cfg
	if cfg.Rate <= 0 || cfg.Duration <= 0 || cfg.Attackers == 0 {
		return nil
	}
	pickSrc := in.src.Split(1)
	arrSrc := in.src.Split(2)
	endSrc := in.src.Split(3)

	attackers := append([]graph.NodeID(nil), in.clients...)
	pickSrc.Shuffle(len(attackers), func(i, j int) {
		attackers[i], attackers[j] = attackers[j], attackers[i]
	})
	if cfg.Attackers < len(attackers) {
		attackers = attackers[:cfg.Attackers]
	}

	id := jammingIDBase
	end := cfg.Start + cfg.Duration
	for t := cfg.Start + arrSrc.Exponential(cfg.Rate); t < end; t += arrSrc.Exponential(cfg.Rate) {
		a := attackers[endSrc.IntN(len(attackers))]
		r := in.clients[endSrc.IntN(len(in.clients))]
		for r == a {
			r = in.clients[endSrc.IntN(len(in.clients))]
		}
		tx := workload.Tx{
			ID:          id,
			Sender:      a,
			Recipient:   r,
			Value:       cfg.Value,
			Arrival:     t,
			Deadline:    t + cfg.HoldTime + 1,
			Hold:        cfg.HoldTime,
			Adversarial: true,
		}
		id++
		in.stats.AdversarialScheduled++
		if err := in.net.At(t, func() { in.deliver(tx) }); err != nil {
			return err
		}
	}
	return nil
}

// installFlashCrowd pre-generates the spike trace (honest payments — they
// count toward TSR) and schedules it alongside whatever base demand runs.
func (in *Injector) installFlashCrowd() error {
	cfg := in.cfg
	if cfg.SpikeFactor <= 1 || cfg.Duration <= 0 {
		return nil
	}
	base := workload.Config{
		Clients:    in.clients,
		Rate:       cfg.BaseRate,
		Duration:   cfg.Start + cfg.Duration, // bounds validation only; flash draws its own window
		Timeout:    cfg.Timeout,
		ValueScale: cfg.ValueScale,
	}
	spike, err := workload.GenerateFlash(in.src.Split(2), base, workload.FlashConfig{
		Start:          cfg.Start,
		Duration:       cfg.Duration,
		SpikeFactor:    cfg.SpikeFactor,
		RegionFraction: cfg.RegionFraction,
		IDBase:         flashIDBase,
	})
	if err != nil {
		return err
	}
	for i := range spike {
		tx := spike[i]
		in.stats.FlashScheduled++
		if err := in.net.At(tx.Arrival, func() { in.deliver(tx) }); err != nil {
			return err
		}
	}
	return nil
}

// deliver hands a pre-generated payment to the network unless an endpoint
// departed since scheduling (demand to a vanished node is dropped, like the
// dynamics driver's live endpoint resolution would never have drawn it).
func (in *Injector) deliver(tx workload.Tx) {
	if in.net.Departed(tx.Sender) || in.net.Departed(tx.Recipient) {
		return
	}
	in.net.Arrive(tx)
}

// installHubOutage schedules the correlated strike (and optional recovery).
func (in *Injector) installHubOutage() error {
	cfg := in.cfg
	if cfg.TopK <= 0 {
		return nil
	}
	if err := in.net.At(cfg.Start, in.strikeHubs); err != nil {
		return err
	}
	if cfg.RecoverAfter > 0 {
		return in.net.At(cfg.Start+cfg.RecoverAfter, in.recoverHubs)
	}
	return nil
}

// strikeHubs departs the top-k hubs simultaneously. Hub-based schemes lose
// their placement hubs in placement order; hub-less schemes lose the top-k
// degree nodes — the same "most load-bearing nodes fail together" stress.
// Channel state at depart time is recorded so recovery can re-open.
func (in *Injector) strikeHubs() {
	targets := in.net.Hubs()
	if len(targets) == 0 {
		var active []graph.NodeID
		for _, v := range in.clients {
			if !in.net.Departed(v) {
				active = append(active, v)
			}
		}
		targets = topology.TopDegreeNodesOf(in.net.Graph(), active, in.cfg.TopK)
	}
	if in.cfg.TopK < len(targets) {
		targets = targets[:in.cfg.TopK]
	}
	g := in.net.Graph()
	for _, h := range targets {
		if in.net.Departed(h) {
			continue
		}
		var former []reopen
		for _, eid := range g.Incident(h) {
			ch := in.net.Channel(eid)
			if ch.Closed() {
				continue
			}
			e := g.Edge(eid)
			peer := e.U
			if peer == h {
				peer = e.V
			}
			dh := ch.DirFrom(h)
			former = append(former, reopen{peer: peer, balHub: ch.Balance(dh), balPeer: ch.Balance(dh.Reverse())})
		}
		if err := in.net.DepartNode(h); err != nil {
			continue
		}
		in.struck[h] = former
		in.stats.HubsStruck++
		if in.drv != nil {
			in.drv.RemoveFromDemand(h)
		}
	}
}

// recoverHubs rejoins the struck hubs and re-opens their former channels
// with the balances held at depart time — fresh pledged capital, recorded by
// OpenChannel, so conservation holds across the outage. The rejoined node
// does not get its hub role back; online re-placement can re-promote it,
// which is the recovery dynamic the panel's Splicer(online) variant shows.
func (in *Injector) recoverHubs() {
	// Deterministic order: clients is ascending, struck hubs are a subset.
	for _, h := range in.clients {
		former, ok := in.struck[h]
		if !ok {
			continue
		}
		delete(in.struck, h)
		if err := in.net.RejoinNode(h); err != nil {
			continue
		}
		in.stats.HubsRecovered++
		if in.drv != nil {
			in.drv.AddToDemand(h)
		}
		for _, r := range former {
			if in.net.Departed(r.peer) {
				continue
			}
			if _, err := in.net.OpenChannel(h, r.peer, r.balHub, r.balPeer); err != nil {
				continue
			}
			in.stats.ChannelsReopened++
		}
	}
}
