// Package group implements a prime-order Schnorr group over a safe prime
// and ElGamal encryption in it. Splicer's key management group (KMG) hands
// out per-transaction and per-TU ElGamal key pairs (§III-A); internal/dkg
// builds the distributed key generation on top of this package.
//
// The fixed 512-bit safe prime keeps test runtime reasonable while
// exercising the genuine protocol structure; it is NOT sized for production
// security and the package says so here rather than pretending otherwise.
package group

import (
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"io"
	"math/big"
)

// Hex constants for the 512-bit safe prime p = 2q + 1 and the order-q
// subgroup generator g = 4.
const (
	pHex = "c77ff614f93528c378d3bad06f90c77af77c43c7805514c0250385683a7bc989dccc94c6a9d55c45f33d75a458a5a54da62ea86227dc1bae1102f1a7d3137353"
	qHex = "63bffb0a7c9a9461bc69dd6837c863bd7bbe21e3c02a8a601281c2b41d3de4c4ee664a6354eaae22f99ebad22c52d2a6d317543113ee0dd7088178d3e989b9a9"
)

// Group is a prime-order subgroup of Z_p^* with generator G and order Q.
type Group struct {
	P *big.Int // safe prime, p = 2q+1
	Q *big.Int // subgroup order
	G *big.Int // generator of the order-q subgroup
}

// Default returns the fixed 512-bit test group. The returned struct shares
// immutable big.Ints; callers must not mutate them.
func Default() *Group {
	p, ok := new(big.Int).SetString(pHex, 16)
	if !ok {
		panic("group: bad prime constant")
	}
	q, ok := new(big.Int).SetString(qHex, 16)
	if !ok {
		panic("group: bad order constant")
	}
	return &Group{P: p, Q: q, G: big.NewInt(4)}
}

// RandScalar returns a uniform scalar in [1, Q).
func (g *Group) RandScalar(r io.Reader) (*big.Int, error) {
	if r == nil {
		r = rand.Reader
	}
	for {
		s, err := rand.Int(r, g.Q)
		if err != nil {
			return nil, fmt.Errorf("group: scalar sampling: %w", err)
		}
		if s.Sign() > 0 {
			return s, nil
		}
	}
}

// Exp returns G^x mod P.
func (g *Group) Exp(x *big.Int) *big.Int {
	return new(big.Int).Exp(g.G, x, g.P)
}

// ExpBase returns base^x mod P.
func (g *Group) ExpBase(base, x *big.Int) *big.Int {
	return new(big.Int).Exp(base, x, g.P)
}

// Mul returns a*b mod P.
func (g *Group) Mul(a, b *big.Int) *big.Int {
	return new(big.Int).Mod(new(big.Int).Mul(a, b), g.P)
}

// Inv returns the multiplicative inverse of a mod P.
func (g *Group) Inv(a *big.Int) *big.Int {
	return new(big.Int).ModInverse(a, g.P)
}

// InGroup reports whether e is a valid element of the order-q subgroup.
func (g *Group) InGroup(e *big.Int) bool {
	if e == nil || e.Sign() <= 0 || e.Cmp(g.P) >= 0 {
		return false
	}
	return new(big.Int).Exp(e, g.Q, g.P).Cmp(big.NewInt(1)) == 0
}

// KeyPair is an ElGamal key pair: PK = G^SK.
type KeyPair struct {
	SK *big.Int
	PK *big.Int
}

// GenKeyPair samples a fresh key pair.
func (g *Group) GenKeyPair(r io.Reader) (KeyPair, error) {
	sk, err := g.RandScalar(r)
	if err != nil {
		return KeyPair{}, err
	}
	return KeyPair{SK: sk, PK: g.Exp(sk)}, nil
}

// Ciphertext is a hybrid ElGamal ciphertext: (C1, C2) = (G^k, PK^k) fixes a
// shared secret whose hash keystream encrypts the message bytes.
type Ciphertext struct {
	C1   *big.Int
	Data []byte
}

// Encrypt encrypts msg under pk. Message length is unrestricted: the shared
// secret seeds a SHA-256-based keystream.
func (g *Group) Encrypt(r io.Reader, pk *big.Int, msg []byte) (Ciphertext, error) {
	if !g.InGroup(pk) {
		return Ciphertext{}, fmt.Errorf("group: public key not in group")
	}
	k, err := g.RandScalar(r)
	if err != nil {
		return Ciphertext{}, err
	}
	c1 := g.Exp(k)
	shared := g.ExpBase(pk, k)
	data := make([]byte, len(msg))
	xorKeystream(data, msg, shared)
	return Ciphertext{C1: c1, Data: data}, nil
}

// Decrypt decrypts ct with sk.
func (g *Group) Decrypt(sk *big.Int, ct Ciphertext) ([]byte, error) {
	if !g.InGroup(ct.C1) {
		return nil, fmt.Errorf("group: ciphertext C1 not in group")
	}
	shared := g.ExpBase(ct.C1, sk)
	msg := make([]byte, len(ct.Data))
	xorKeystream(msg, ct.Data, shared)
	return msg, nil
}

// DecryptWithShared decrypts using a precomputed shared secret C1^sk; the
// threshold decryption path in internal/dkg reconstructs this value from
// per-node partial decryptions without ever assembling sk.
func (g *Group) DecryptWithShared(shared *big.Int, ct Ciphertext) ([]byte, error) {
	if !g.InGroup(shared) {
		return nil, fmt.Errorf("group: shared secret not in group")
	}
	msg := make([]byte, len(ct.Data))
	xorKeystream(msg, ct.Data, shared)
	return msg, nil
}

// xorKeystream writes src XOR KDF(shared) into dst.
func xorKeystream(dst, src []byte, shared *big.Int) {
	seed := sha256.Sum256(shared.Bytes())
	var block [32]byte
	counter := uint64(0)
	for off := 0; off < len(src); off += len(block) {
		h := sha256.New()
		h.Write(seed[:])
		var ctr [8]byte
		for i := 0; i < 8; i++ {
			ctr[i] = byte(counter >> (8 * i))
		}
		h.Write(ctr[:])
		copy(block[:], h.Sum(nil))
		counter++
		for i := 0; i < len(block) && off+i < len(src); i++ {
			dst[off+i] = src[off+i] ^ block[i]
		}
	}
}
