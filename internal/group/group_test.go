package group

import (
	"bytes"
	"math/big"
	"testing"
	"testing/quick"
)

func TestDefaultGroupParameters(t *testing.T) {
	g := Default()
	// p = 2q + 1.
	want := new(big.Int).Lsh(g.Q, 1)
	want.Add(want, big.NewInt(1))
	if g.P.Cmp(want) != 0 {
		t.Fatal("p != 2q+1")
	}
	if !g.P.ProbablyPrime(32) || !g.Q.ProbablyPrime(32) {
		t.Fatal("p or q not prime")
	}
	// G generates the order-q subgroup: G^q == 1 and G != 1.
	if !g.InGroup(g.G) {
		t.Fatal("generator not in group")
	}
}

func TestInGroupRejects(t *testing.T) {
	g := Default()
	cases := []*big.Int{
		nil,
		big.NewInt(0),
		big.NewInt(-3),
		new(big.Int).Set(g.P),
		new(big.Int).Add(g.P, big.NewInt(5)),
	}
	for _, c := range cases {
		if g.InGroup(c) {
			t.Fatalf("InGroup accepted %v", c)
		}
	}
	// An element of order 2q (a non-residue) must be rejected: -G mod P
	// has order 2q.
	bad := new(big.Int).Sub(g.P, g.G)
	if g.InGroup(bad) {
		t.Fatal("InGroup accepted an order-2q element")
	}
}

func TestKeyPairConsistency(t *testing.T) {
	g := Default()
	kp, err := g.GenKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.Exp(kp.SK).Cmp(kp.PK) != 0 {
		t.Fatal("PK != G^SK")
	}
	if !g.InGroup(kp.PK) {
		t.Fatal("PK not in group")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	g := Default()
	kp, err := g.GenKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	msgs := [][]byte{
		nil,
		[]byte(""),
		[]byte("x"),
		[]byte("a payment demand D = (Ps, Pr, val)"),
		bytes.Repeat([]byte{0xAB}, 1000),
	}
	for _, msg := range msgs {
		ct, err := g.Encrypt(nil, kp.PK, msg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := g.Decrypt(kp.SK, ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("round trip failed for %d-byte message", len(msg))
		}
	}
}

func TestDecryptWithWrongKeyGarbles(t *testing.T) {
	g := Default()
	kp1, err := g.GenKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	kp2, err := g.GenKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("confidential transaction demand")
	ct, err := g.Encrypt(nil, kp1.PK, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Decrypt(kp2.SK, ct)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("wrong key decrypted successfully")
	}
}

func TestEncryptRejectsBadPK(t *testing.T) {
	g := Default()
	if _, err := g.Encrypt(nil, big.NewInt(0), []byte("m")); err == nil {
		t.Fatal("expected error for invalid pk")
	}
}

func TestDecryptRejectsBadC1(t *testing.T) {
	g := Default()
	kp, err := g.GenKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Decrypt(kp.SK, Ciphertext{C1: big.NewInt(0), Data: []byte("x")}); err == nil {
		t.Fatal("expected error for invalid C1")
	}
}

func TestCiphertextsDiffer(t *testing.T) {
	// ElGamal is randomized: same message, different ciphertexts.
	g := Default()
	kp, err := g.GenKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("same message")
	ct1, err := g.Encrypt(nil, kp.PK, msg)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := g.Encrypt(nil, kp.PK, msg)
	if err != nil {
		t.Fatal(err)
	}
	if ct1.C1.Cmp(ct2.C1) == 0 || bytes.Equal(ct1.Data, ct2.Data) {
		t.Fatal("encryption is deterministic; unlinkability would be broken")
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	g := Default()
	kp, err := g.GenKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(msg []byte) bool {
		ct, err := g.Encrypt(nil, kp.PK, msg)
		if err != nil {
			return false
		}
		got, err := g.Decrypt(kp.SK, ct)
		if err != nil {
			return false
		}
		return bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
