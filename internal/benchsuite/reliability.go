// Reliability-layer microbenchmarks: the failure-aware store's observation
// hot path (what every TU resolution pays when retries are armed) and a
// penalty-overlay Dijkstra query (what every retry re-plan pays). Both are
// Core: fixed inputs, deterministic allocs/op, gated against the pins. The
// retry-off hot path has no entry here on purpose — with the layer unarmed
// the store does not exist, so its zero-overhead claim is covered by the
// unchanged sim_core/path_core pins instead.

package benchsuite

import (
	"testing"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/reliability"
)

// benchStoreObserve drives the observation fold: interleaved failures,
// successes, and penalty reads across a fixed edge range, decay math
// included. The edge table is pre-grown so the measured loop is
// allocation-free.
func benchStoreObserve(b *testing.B) {
	const edges = 4096
	st := reliability.NewStore(reliability.NewConfig())
	st.ObserveSuccess(graph.EdgeID(edges-1), 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := graph.EdgeID(i % edges)
		now := float64(i) * 0.001
		if i%3 == 0 {
			st.ObserveFailure(e, now)
		} else {
			st.ObserveSuccess(e, now)
		}
		_ = st.Penalty(e, now)
	}
}

// benchPenaltyOverlaySP is the retry re-plan query: a full Dijkstra on the
// shared 2000-node graph through the store's penalty overlay, with enough
// seeded failures that the overlay does real decay/penalty work rather than
// collapsing to the empty-store UnitWeight fast path.
func benchPenaltyOverlaySP(b *testing.B) {
	g := benchGraph(b, 6, 2000)
	pf := graph.NewPathFinder(g)
	n := g.NumNodes()
	st := reliability.NewStore(reliability.NewConfig())
	m := g.NumLiveEdges()
	for i := 0; i < 256; i++ {
		st.ObserveFailure(graph.EdgeID((i*7919)%m), 0.1)
	}
	// Query past every exclusion window so the seeded failures penalize
	// edges instead of disconnecting them.
	now := 0.1 + st.Config().Exclusion + 1
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src := graph.NodeID(i % n)
		dst := graph.NodeID((i + n/2) % n)
		if _, ok := pf.ShortestPath(src, dst, st.Weight(now)); !ok {
			b.Fatalf("%d->%d unreachable", src, dst)
		}
	}
}
