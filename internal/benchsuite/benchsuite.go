// Package benchsuite is the tracked benchmark suite behind cmd/bench: a
// fixed set of named benchmark bodies runnable through testing.Benchmark,
// so the perf trajectory (BENCH_*.json) can be produced by a plain binary —
// no `go test` invocation, stable names, machine-readable results.
//
// The sim-core entries are marked Core: their allocs/op are input-size
// independent (zero after the pooled-event-queue work), which makes them
// meaningful regression gates — CI fails when a checked-in pin regresses by
// more than the tolerance. The figure-level entries track end-to-end
// wall-clock and are recorded but not gated (they scale with the scenario).
package benchsuite

import (
	"fmt"
	"reflect"
	"regexp"
	"runtime"
	"testing"
	"time"

	splicer "github.com/splicer-pcn/splicer"
	"github.com/splicer-pcn/splicer/internal/experiments"
	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/rng"
	"github.com/splicer-pcn/splicer/internal/scenario"
	"github.com/splicer-pcn/splicer/internal/sim"
	"github.com/splicer-pcn/splicer/internal/topology"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// Benchmark is one tracked benchmark.
type Benchmark struct {
	Name string
	// Core marks sim-core/path-core microbenchmarks whose allocs/op are
	// deterministic for the fixed input — the CI allocs regression gate
	// compares only these against the checked-in pins.
	Core bool
	F    func(b *testing.B)
}

// Result is one benchmark outcome, as serialized into BENCH_*.json.
type Result struct {
	Name        string  `json:"name"`
	Core        bool    `json:"core"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Report is the BENCH_*.json document.
type Report struct {
	Schema     string   `json:"schema"`
	GoVersion  string   `json:"go"`
	NumCPU     int      `json:"num_cpu"`
	Short      bool     `json:"short"`
	DurationMS int64    `json:"duration_ms"`
	Results    []Result `json:"benchmarks"`
	// Serve holds serving-layer load-generator outcomes (cmd/bench -loadgen);
	// wall-clock throughput numbers, recorded but never pin-gated.
	Serve []ServeResult `json:"serve,omitempty"`
}

// Suite returns the tracked benchmarks. short trims the figure-level
// scenario (CI budget); the Core microbenchmarks are identical in both
// modes so pins stay comparable.
func Suite(short bool) []Benchmark {
	return []Benchmark{
		{Name: "sim_core/engine_schedule_run", Core: true, F: benchEngineScheduleRun},
		{Name: "sim_core/engine_cancel_churn", Core: true, F: benchEngineCancelChurn},
		{Name: "sim_core/engine_nested_timers", Core: true, F: benchEngineNestedTimers},
		{Name: "sim_core/metrics_hot", Core: true, F: benchMetricsHot},
		{Name: "path_core/unit_shortest_2000", Core: true, F: benchUnitShortest},
		{Name: "path_core/ksp_unit_k3_2000", Core: true, F: benchKSPUnit},
		{Name: "path_core/edw_k5_2000", Core: true, F: benchEDW},
		{Name: "path_core/unit_shortest_10000", Core: true, F: benchUnitShortest10k},
		{Name: "path_core/label_query_10000", Core: true, F: benchLabelQuery10k},
		{Name: "path_core/label_build_10000", Core: false, F: benchLabelBuild10k},
		{Name: "reliability/store_observe", Core: true, F: benchStoreObserve},
		{Name: "reliability/penalty_overlay_sp_2000", Core: true, F: benchPenaltyOverlaySP},
		{Name: "figures/fig8d_throughput_large", Core: false, F: figBench(short)},
		{Name: "figures/fig8d_throughput_large_w1", Core: false, F: figSpeculationBench(short, 1)},
		{Name: "figures/fig8d_throughput_large_w4", Core: false, F: figSpeculationBench(short, 4)},
		{Name: "figures/figscale_100k", Core: false, F: figscale100kBench(short)},
		{Name: "figures/figscale_100k_w4", Core: false, F: figscale100kParallelBench(short)},
	}
}

// Run executes the suite (optionally filtered by a name regexp) and
// assembles the report.
func Run(short bool, filter string) (Report, error) {
	var re *regexp.Regexp
	if filter != "" {
		var err error
		re, err = regexp.Compile(filter)
		if err != nil {
			return Report{}, fmt.Errorf("benchsuite: bad filter: %w", err)
		}
	}
	rep := Report{
		Schema:    "splicer-bench/v1",
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Short:     short,
	}
	begin := time.Now()
	for _, bm := range Suite(short) {
		if re != nil && !re.MatchString(bm.Name) {
			continue
		}
		if !bm.Core {
			// Figure-level benchmarks take >1s per op, so testing.Benchmark
			// settles at N=1 — run one discarded warmup iteration so the
			// recorded number is not a cold-cache single shot.
			testing.Benchmark(bm.F)
		}
		r := testing.Benchmark(bm.F)
		rep.Results = append(rep.Results, Result{
			Name:        bm.Name,
			Core:        bm.Core,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	rep.DurationMS = time.Since(begin).Milliseconds()
	return rep, nil
}

func benchEngineScheduleRun(b *testing.B) {
	e := sim.NewEngine()
	action := func() {}
	const batch = 1024
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; {
		t := e.Now()
		for i := 0; i < batch && n < b.N; i++ {
			if _, err := e.Schedule(t+float64(i%7)+1, i%3, action); err != nil {
				b.Fatal(err)
			}
			n++
		}
		e.Run(t + 16)
	}
}

func benchEngineCancelChurn(b *testing.B) {
	e := sim.NewEngine()
	action := func() {}
	const batch = 1024
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; {
		t := e.Now()
		for i := 0; i < batch && n < b.N; i++ {
			ev, err := e.Schedule(t+100, 0, action)
			if err != nil {
				b.Fatal(err)
			}
			if i%8 != 0 {
				ev.Cancel()
			}
			n++
		}
		e.Run(t + 200)
	}
}

func benchEngineNestedTimers(b *testing.B) {
	e := sim.NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			if _, err := e.After(1, 0, tick); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := e.Schedule(1, 0, tick); err != nil {
		b.Fatal(err)
	}
	e.Run(float64(b.N) + 2)
}

func benchMetricsHot(b *testing.B) {
	m := sim.NewMetrics()
	tuCompleted := m.CounterHandle("tu_completed")
	fees := m.CounterHandle("fees")
	queueDelay := m.SampleHandle("queue_delay")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.AddHandle(tuCompleted, 1)
		m.AddHandle(fees, 0.01)
		m.ObserveHandle(queueDelay, float64(i%100)*0.001)
	}
}

func benchGraph(b *testing.B, seed uint64, nodes int) *graph.Graph {
	b.Helper()
	g, err := splicer.BuildNetwork(splicer.NetworkSpec{Seed: seed, Nodes: nodes})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchUnitShortest(b *testing.B) {
	g := benchGraph(b, 6, 2000)
	pf := graph.NewPathFinder(g)
	n := g.NumNodes()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src := graph.NodeID(i % n)
		dst := graph.NodeID((i + n/2) % n)
		if _, ok := pf.UnitShortestPath(src, dst); !ok {
			b.Fatalf("%d->%d unreachable", src, dst)
		}
	}
}

func benchKSPUnit(b *testing.B) {
	g := benchGraph(b, 8, 2000)
	pf := graph.NewPathFinder(g)
	n := g.NumNodes()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src := graph.NodeID(i % n)
		dst := graph.NodeID((i + n/2) % n)
		if paths := pf.KShortestPathsUnit(src, dst, 3); len(paths) == 0 {
			b.Fatalf("%d->%d no paths", src, dst)
		}
	}
}

func benchEDW(b *testing.B) {
	g := benchGraph(b, 9, 2000)
	pf := graph.NewPathFinder(g)
	n := g.NumNodes()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src := graph.NodeID(i % n)
		dst := graph.NodeID((i + n/2) % n)
		if paths := pf.EdgeDisjointWidestPaths(src, dst, 5); len(paths) == 0 {
			b.Fatalf("%d->%d no paths", src, dst)
		}
	}
}

// labelBenchGraph builds the shared 10k-node scale-free graph plus the hub
// roots used by the unit_shortest_10000 / label_query_10000 pair. Both
// entries run the identical hub-rooted query stream, so their ns/op ratio is
// the precomputation speedup, not a workload difference.
const (
	labelBenchNodes = 10000
	labelBenchHubs  = 16
)

func labelBenchGraph(b *testing.B) (*graph.Graph, *graph.PathFinder, []graph.NodeID) {
	b.Helper()
	src := rng.New(10)
	sizes := workload.NewChannelSizeDist(src.Split(1), 1)
	g, err := topology.BarabasiAlbert(src.Split(2), labelBenchNodes, 3, sizes.CapacityFunc())
	if err != nil {
		b.Fatal(err)
	}
	return g, graph.NewPathFinder(g), topology.TopDegreeNodes(g, labelBenchHubs)
}

func labelBenchQuery(i, n int, hubs []graph.NodeID) (graph.NodeID, graph.NodeID) {
	return hubs[i%len(hubs)], graph.NodeID((i*7919 + n/2) % n)
}

func benchUnitShortest10k(b *testing.B) {
	g, pf, hubs := labelBenchGraph(b)
	n := g.NumNodes()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src, dst := labelBenchQuery(i, n, hubs)
		if _, ok := pf.UnitShortestPath(src, dst); !ok {
			b.Fatalf("%d->%d unreachable", src, dst)
		}
	}
}

func benchLabelQuery10k(b *testing.B) {
	g, pf, hubs := labelBenchGraph(b)
	n := g.NumNodes()
	hl := graph.NewHubLabels(g, pf, hubs)
	// Warm every hub tree (builds are measured by label_build_10000) and
	// spot-check byte-identity against the finder on the first query window.
	for i := 0; i < 64; i++ {
		src, dst := labelBenchQuery(i, n, hubs)
		lp, lok := hl.UnitShortestPath(src, dst)
		pp, pok := pf.UnitShortestPath(src, dst)
		if lok != pok || !reflect.DeepEqual(lp, pp) {
			b.Fatalf("label answer for %d->%d diverged from finder", src, dst)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src, dst := labelBenchQuery(i, n, hubs)
		if _, ok := hl.UnitShortestPath(src, dst); !ok {
			b.Fatalf("%d->%d unreachable", src, dst)
		}
	}
	b.StopTimer()
	if st := hl.Stats(); st.Fallbacks != 0 {
		b.Fatalf("hub-rooted stream hit %d fallbacks", st.Fallbacks)
	}
}

func benchLabelBuild10k(b *testing.B) {
	g, pf, hubs := labelBenchGraph(b)
	probe := graph.NodeID(g.NumNodes() / 2)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hl := graph.NewHubLabels(g, pf, hubs)
		for _, h := range hubs {
			// One query per hub forces every lazy tree build.
			if _, ok := hl.UnitShortestPath(h, probe); !ok {
				b.Fatalf("%d->%d unreachable", h, probe)
			}
		}
	}
}

// figBench mirrors the tracked BenchmarkFig8dThroughputLarge: the large
// scenario at one τ point. Short mode trims the trace for CI budget — its
// numbers are NOT comparable to a full run (the JSON records the mode).
func figBench(short bool) func(b *testing.B) {
	return func(b *testing.B) {
		old := experiments.TauSweepMs
		experiments.TauSweepMs = []float64{400}
		defer func() { experiments.TauSweepMs = old }()
		s := experiments.LargeScale()
		s.Duration = 2
		s.Rate = 150
		if short {
			s.Duration = 1
			s.Rate = 60
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			series, err := experiments.FigThroughput(s)
			if err != nil {
				b.Fatal(err)
			}
			if len(series) == 0 {
				b.Fatal("no series")
			}
		}
	}
}

// figSpeculationBench is the intra-run parallelism scaling pair: the same
// large scenario and τ point as fig8d_throughput_large, run through the
// declarative engine so the spec can carry routing.parallelism. w1 is the
// serial baseline (the pool arms at >= 2 workers); wN runs N speculative
// route planners. Outputs are byte-identical across the pair by the golden
// conformance contract — the entries exist to track the wall-clock ratio
// next to the host's num_cpu field in the report (a 1-CPU host pins the
// ratio near 1x: speculation needs spare cores to run ahead of the
// committer).
func figSpeculationBench(short bool, workers int) func(b *testing.B) {
	return func(b *testing.B) {
		spec := scenario.LargeSpec()
		spec.Workload.Duration = 2
		spec.Workload.Rate = 150
		if short {
			spec.Workload.Duration = 1
			spec.Workload.Rate = 60
		}
		spec.Routing.UpdateTauMs = 400
		spec.Routing.Parallelism = workers
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			table, err := scenario.SchemeTable(spec, []string{"Splicer"}, scenario.RunOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if table.CSV() == "" {
				b.Fatal("empty table")
			}
		}
	}
}

// figscale100kBench runs the XL scale series' largest cell end-to-end: the
// 100k-node scale-free graph under the hub-labels routing override, one
// scheme. Node count stays at 100k in short mode (the point is the scale);
// short trims only the workload.
func figscale100kBench(short bool) func(b *testing.B) {
	return figscale100k(short, 0)
}

// figscale100kParallelBench is the honest negative control for the scaling
// pair: the 100k cell requests 4 speculation workers, but its hub-labels
// routing override keeps the pool disarmed (lazy label-tree builds mutate
// shared state, so that policy is not speculation-safe). The tracked ratio
// against figscale_100k is therefore ~1x by design, recorded so the report
// distinguishes "gated off" from "failed to scale".
func figscale100kParallelBench(short bool) func(b *testing.B) {
	return figscale100k(short, 4)
}

func figscale100k(short bool, parallelism int) func(b *testing.B) {
	return func(b *testing.B) {
		spec := scenario.XLScaleSpec()
		spec.Topology.Nodes = 100000
		spec.Routing.Parallelism = parallelism
		if short {
			spec.Workload.Rate = 30
			spec.Workload.Duration = 1
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			table, err := scenario.SchemeTable(spec, []string{"Splicer"}, scenario.RunOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if table.CSV() == "" {
				b.Fatal("empty table")
			}
		}
	}
}
