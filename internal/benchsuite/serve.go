// Serving-layer throughput: sustained routes/sec through internal/serve's
// worker pool on the shared 10k-node scale-free graph (same generator as
// the label benchmarks). Unlike the testing.Benchmark entries, these are
// wall-clock load runs — serve.LoadGen drives the pool for a fixed duration
// — so they land in the report's "serve" section, not the gated Core list.
//
// Three entries are recorded: a single-worker baseline, a pool sized to
// the machine (max(2, NumCPU) workers), and the same pool under an injected
// per-job worker stall. On a multi-core host the pool entry's routes/sec
// should exceed the baseline; on a single core the two are statistically
// identical (the report carries num_cpu, so readers can tell which regime
// produced the numbers). The stalled entry is the graceful-degradation
// number: throughput drops and saturation sheds appear, but the run stays
// error-bounded instead of wedging.

package benchsuite

import (
	"context"
	"runtime"
	"time"

	"github.com/splicer-pcn/splicer/internal/pcn"
	"github.com/splicer-pcn/splicer/internal/rng"
	"github.com/splicer-pcn/splicer/internal/serve"
	"github.com/splicer-pcn/splicer/internal/topology"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// ServeResult is one load-generator outcome in the report's serve section.
type ServeResult struct {
	Name         string  `json:"name"`
	Nodes        int     `json:"nodes"`
	Workers      int     `json:"workers"`
	Clients      int     `json:"clients"`
	Requests     uint64  `json:"requests"`
	Errors       uint64  `json:"errors"`
	Saturated    uint64  `json:"saturated,omitempty"`
	StallMS      float64 `json:"stall_ms,omitempty"`
	DurationSecs float64 `json:"duration_secs"`
	RoutesPerSec float64 `json:"routes_per_sec"`
}

// RunServe measures serving throughput at two pool sizes and returns the
// serve-section entries. duration bounds each load run (the CI smoke passes
// 1s; the tracked report uses the 3s default from cmd/bench).
func RunServe(duration time.Duration) ([]ServeResult, error) {
	src := rng.New(10)
	sizes := workload.NewChannelSizeDist(src.Split(1), 1)
	g, err := topology.BarabasiAlbert(src.Split(2), labelBenchNodes, 3, sizes.CapacityFunc())
	if err != nil {
		return nil, err
	}
	cfg := pcn.NewConfig(pcn.SchemeSplicer)
	cfg.Hubs = topology.TopDegreeNodes(g, labelBenchHubs)
	net, err := pcn.NewNetwork(g, cfg)
	if err != nil {
		return nil, err
	}

	poolWorkers := runtime.NumCPU()
	if poolWorkers < 2 {
		poolWorkers = 2
	}
	// The same offered load for both runs, so throughput differences come
	// from pool capacity, not client count.
	clients := 2 * poolWorkers

	// The injected worker stall for the degradation entry: large against the
	// per-query compute (a unit-SP on 10k nodes is tens of microseconds), so
	// it reliably saturates the pool, but small enough that the stalled run
	// still completes thousands of routes in a 1s smoke.
	const stall = 500 * time.Microsecond

	var out []ServeResult
	for _, run := range []struct {
		name    string
		workers int
		stall   time.Duration
	}{
		{"serve/routes_per_sec_10000_w1", 1, 0},
		{"serve/routes_per_sec_10000", poolWorkers, 0},
		{"serve/routes_per_sec_10000_stalled", poolWorkers, stall},
	} {
		s := serve.NewServer(net, serve.Options{Workers: run.workers, StallDelay: run.stall})
		st := serve.LoadGen(context.Background(), s, serve.LoadGenConfig{
			Clients:     clients,
			Duration:    duration,
			K:           1,
			Seed:        42,
			HubFraction: 0.5,
		})
		if err := s.Shutdown(context.Background()); err != nil {
			return nil, err
		}
		out = append(out, ServeResult{
			Name:         run.name,
			Nodes:        g.NumNodes(),
			Workers:      run.workers,
			Clients:      st.Clients,
			Requests:     st.Requests,
			Errors:       st.Errors,
			Saturated:    st.Saturated,
			StallMS:      float64(run.stall) / float64(time.Millisecond),
			DurationSecs: st.DurationSecs,
			RoutesPerSec: st.RoutesPerSec,
		})
	}
	return out, nil
}
