package sim

// Tests for the pooled event arena: slot reuse must never resurrect or
// miscancel events (the generation counter is the guard), canceled events
// must not occupy the heap until their fire time (the compaction
// satellite), and the pooled 4-ary heap must execute in exactly the
// (time, priority, seq) order of the container/heap implementation it
// replaced — pinned here against a reference reimplementation.

import (
	"container/heap"
	"math/rand"
	"testing"
)

// TestCancelAfterFireIsNoop: a handle to an event that already fired must
// not cancel the slot's next occupant.
func TestCancelAfterFireIsNoop(t *testing.T) {
	e := NewEngine()
	fired := 0
	ev1, err := e.Schedule(1, 0, func() { fired++ })
	if err != nil {
		t.Fatal(err)
	}
	e.Run(2)
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	// The slot is now free; the next Schedule reuses it.
	if _, err := e.Schedule(3, 0, func() { fired += 10 }); err != nil {
		t.Fatal(err)
	}
	ev1.Cancel() // stale handle: generation mismatch, must be inert
	e.Run(4)
	if fired != 11 {
		t.Fatalf("fired = %d, want 11 (stale Cancel killed the reused slot)", fired)
	}
}

// TestCancelAfterCancelAndReuse: canceling twice across a slot reuse must
// not touch the new occupant either.
func TestCancelAfterCancelAndReuse(t *testing.T) {
	e := NewEngine()
	ran := 0
	ev, err := e.Schedule(1, 0, func() { t.Fatal("canceled event ran") })
	if err != nil {
		t.Fatal(err)
	}
	ev.Cancel()
	e.Run(2) // sweeps the canceled corpse, frees the slot
	if _, err := e.Schedule(3, 0, func() { ran++ }); err != nil {
		t.Fatal(err)
	}
	ev.Cancel() // stale: must not cancel the reused slot
	e.Run(4)
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
}

// TestZeroEventCancel: the zero Event is a valid no-op handle.
func TestZeroEventCancel(t *testing.T) {
	var ev Event
	ev.Cancel() // must not panic
}

// TestCanceledEventsCompacted is the heap-occupancy regression test: a
// long-horizon run canceling most of its deadline events must not carry
// the corpses in the heap until their fire times.
func TestCanceledEventsCompacted(t *testing.T) {
	e := NewEngine()
	const n = 10000
	events := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		ev, err := e.Schedule(1e6+float64(i), 0, func() {})
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	for _, ev := range events[:n-10] {
		ev.Cancel()
	}
	if live := e.PendingEvents(); live != 10 {
		t.Fatalf("PendingEvents = %d, want 10", live)
	}
	// Compaction triggers when corpses outnumber live events, so occupancy
	// must be bounded by ~2x the live count, not by the cancel count.
	if occ := e.heapSlots(); occ > 2*10+1 {
		t.Fatalf("heap occupancy = %d after canceling %d events, want <= %d", occ, n-10, 2*10+1)
	}
	// The survivors still run.
	ran := 0
	for i := 0; i < 10; i++ {
		if _, err := e.Schedule(float64(i), 0, func() { ran++ }); err != nil {
			t.Fatal(err)
		}
	}
	e.Run(2e6)
	if ran != 10 || e.EventsRun() != 20 {
		t.Fatalf("ran=%d eventsRun=%d, want 10/20", ran, e.EventsRun())
	}
}

// TestSlotReuseAfterPop: pool churn (schedule, run, repeat) must keep the
// arena small — slots freed by fired events are reused, not appended.
func TestSlotReuseAfterPop(t *testing.T) {
	e := NewEngine()
	for round := 0; round < 100; round++ {
		for i := 0; i < 10; i++ {
			if _, err := e.After(float64(i+1), 0, func() {}); err != nil {
				t.Fatal(err)
			}
		}
		e.Run(e.Now() + 100)
	}
	if len(e.slots) > 32 {
		t.Fatalf("arena grew to %d slots for a working set of 10", len(e.slots))
	}
}

// --- reference engine: the pre-pool container/heap implementation ---

type refEvent struct {
	time     float64
	priority int
	seq      uint64
	action   func()
	canceled bool
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].priority != h[j].priority {
		return h[i].priority < h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// TestPooledHeapMatchesContainerHeap drives the pooled engine and the
// reference container/heap side by side through a randomized
// schedule/cancel workload and requires the exact same execution order —
// the (time, priority, seq) contract is total, so the 4-ary pooled heap
// must not be distinguishable from the old implementation.
func TestPooledHeapMatchesContainerHeap(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))

		e := NewEngine()
		var gotOrder []int
		var pooled []Event

		var ref refHeap
		var refSeq uint64
		var wantOrder []int
		var refs []*refEvent

		const n = 3000
		for i := 0; i < n; i++ {
			id := i
			at := float64(rng.Intn(500)) + rng.Float64()
			prio := rng.Intn(3) - 1
			ev, err := e.Schedule(at, prio, func() { gotOrder = append(gotOrder, id) })
			if err != nil {
				t.Fatal(err)
			}
			pooled = append(pooled, ev)
			re := &refEvent{time: at, priority: prio, seq: refSeq, action: func() { wantOrder = append(wantOrder, id) }}
			refSeq++
			heap.Push(&ref, re)
			refs = append(refs, re)

			// Cancel a random earlier event now and then.
			if i%7 == 3 {
				j := rng.Intn(i + 1)
				pooled[j].Cancel()
				refs[j].canceled = true
			}
		}
		e.Run(1e9)
		for ref.Len() > 0 {
			re := heap.Pop(&ref).(*refEvent)
			if !re.canceled {
				re.action()
			}
		}
		if len(gotOrder) != len(wantOrder) {
			t.Fatalf("seed %d: executed %d events, reference executed %d", seed, len(gotOrder), len(wantOrder))
		}
		for i := range wantOrder {
			if gotOrder[i] != wantOrder[i] {
				t.Fatalf("seed %d: order diverges at %d: got %d want %d", seed, i, gotOrder[i], wantOrder[i])
			}
		}
	}
}

// TestPooledHeapNestedScheduling extends the pin to dynamically scheduled
// follow-up events (the hop-delay pattern), where slot reuse interleaves
// with execution.
func TestPooledHeapNestedScheduling(t *testing.T) {
	e := NewEngine()
	var order []int
	var chain func(id, depth int)
	chain = func(id, depth int) {
		order = append(order, id)
		if depth < 4 {
			if _, err := e.After(0.5, id%2, func() { chain(id*10, depth+1) }); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 1; i <= 5; i++ {
		id := i
		if _, err := e.Schedule(float64(i), 0, func() { chain(id, 0) }); err != nil {
			t.Fatal(err)
		}
	}
	e.Run(100)
	// 5 chains x 5 links.
	if len(order) != 25 {
		t.Fatalf("ran %d events, want 25", len(order))
	}
	// Deterministic: rerunning yields the same order.
	e2 := NewEngine()
	var order2 []int
	var chain2 func(id, depth int)
	chain2 = func(id, depth int) {
		order2 = append(order2, id)
		if depth < 4 {
			if _, err := e2.After(0.5, id%2, func() { chain2(id*10, depth+1) }); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 1; i <= 5; i++ {
		id := i
		if _, err := e2.Schedule(float64(i), 0, func() { chain2(id, 0) }); err != nil {
			t.Fatal(err)
		}
	}
	e2.Run(100)
	for i := range order {
		if order[i] != order2[i] {
			t.Fatalf("order diverges at %d", i)
		}
	}
}
