package sim

import (
	"math"
	"testing"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	add := func(at float64, id int) {
		if _, err := e.Schedule(at, 0, func() { order = append(order, id) }); err != nil {
			t.Fatal(err)
		}
	}
	add(3, 3)
	add(1, 1)
	add(2, 2)
	e.Run(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 10 {
		t.Fatalf("final time = %v, want horizon 10", e.Now())
	}
}

func TestTieBreaking(t *testing.T) {
	e := NewEngine()
	var order []string
	if _, err := e.Schedule(1, 5, func() { order = append(order, "low-prio") }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Schedule(1, 0, func() { order = append(order, "high-prio") }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Schedule(1, 0, func() { order = append(order, "fifo-second") }); err != nil {
		t.Fatal(err)
	}
	e.Run(2)
	want := []string{"high-prio", "fifo-second", "low-prio"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestScheduleInPastRejected(t *testing.T) {
	e := NewEngine()
	if _, err := e.Schedule(1, 0, func() {}); err != nil {
		t.Fatal(err)
	}
	e.Run(5)
	if _, err := e.Schedule(2, 0, func() {}); err == nil {
		t.Fatal("scheduling in the past allowed")
	}
	if _, err := e.Schedule(5, 0, nil); err == nil {
		t.Fatal("nil action allowed")
	}
}

func TestAfterRelative(t *testing.T) {
	e := NewEngine()
	var at float64 = -1
	if _, err := e.Schedule(2, 0, func() {
		if _, err := e.After(3, 0, func() { at = e.Now() }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	e.Run(10)
	if at != 5 {
		t.Fatalf("After fired at %v, want 5", at)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev, err := e.Schedule(1, 0, func() { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	ev.Cancel()
	e.Run(5)
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestEvery(t *testing.T) {
	e := NewEngine()
	var times []float64
	if err := e.Every(0.2, 1.0, 0, func() { times = append(times, e.Now()) }); err != nil {
		t.Fatal(err)
	}
	e.Run(2)
	// Ticks at 0.2, 0.4, 0.6, 0.8 (1.0 excluded).
	if len(times) != 4 {
		t.Fatalf("ticks = %v", times)
	}
	for i, want := range []float64{0.2, 0.4, 0.6, 0.8} {
		if math.Abs(times[i]-want) > 1e-9 {
			t.Fatalf("tick %d at %v, want %v", i, times[i], want)
		}
	}
}

func TestEveryValidation(t *testing.T) {
	e := NewEngine()
	if err := e.Every(0, 1, 0, func() {}); err == nil {
		t.Fatal("zero interval allowed")
	}
}

func TestHalt(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 5; i++ {
		at := float64(i)
		if _, err := e.Schedule(at, 0, func() {
			count++
			if count == 2 {
				e.Halt()
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	e.Run(10)
	if count != 2 {
		t.Fatalf("count = %d, want 2 (halted)", count)
	}
}

func TestHorizonStopsEvents(t *testing.T) {
	e := NewEngine()
	fired := false
	if _, err := e.Schedule(100, 0, func() { fired = true }); err != nil {
		t.Fatal(err)
	}
	e.Run(10)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if e.Now() != 10 {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestEventsRun(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		if _, err := e.Schedule(float64(i), 0, func() {}); err != nil {
			t.Fatal(err)
		}
	}
	e.Run(100)
	if e.EventsRun() != 7 {
		t.Fatalf("events run = %d", e.EventsRun())
	}
}

func TestMetricsCounters(t *testing.T) {
	m := NewMetrics()
	m.Add("sent", 1)
	m.Add("sent", 2)
	if m.Counter("sent") != 3 {
		t.Fatalf("counter = %v", m.Counter("sent"))
	}
	if m.Counter("missing") != 0 {
		t.Fatal("missing counter not zero")
	}
}

func TestMetricsHistograms(t *testing.T) {
	m := NewMetrics()
	for _, v := range []float64{5, 1, 3, 2, 4} {
		m.Observe("delay", v)
	}
	if m.Count("delay") != 5 {
		t.Fatalf("count = %d", m.Count("delay"))
	}
	if m.Mean("delay") != 3 {
		t.Fatalf("mean = %v", m.Mean("delay"))
	}
	if m.Quantile("delay", 0) != 1 || m.Quantile("delay", 1) != 5 {
		t.Fatal("quantile extremes wrong")
	}
	if med := m.Quantile("delay", 0.5); med != 3 {
		t.Fatalf("median = %v", med)
	}
	if !math.IsNaN(m.Mean("empty")) || !math.IsNaN(m.Quantile("empty", 0.5)) {
		t.Fatal("empty histogram should be NaN")
	}
}

func TestMetricsCounterNames(t *testing.T) {
	m := NewMetrics()
	m.Add("b", 1)
	m.Add("a", 1)
	names := m.CounterNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestNestedScheduling(t *testing.T) {
	// Events scheduled from within events run at the right times.
	e := NewEngine()
	var log []float64
	var recurse func(depth int)
	recurse = func(depth int) {
		log = append(log, e.Now())
		if depth < 3 {
			if _, err := e.After(1, 0, func() { recurse(depth + 1) }); err != nil {
				t.Error(err)
			}
		}
	}
	if _, err := e.Schedule(0, 0, func() { recurse(0) }); err != nil {
		t.Fatal(err)
	}
	e.Run(10)
	want := []float64{0, 1, 2, 3}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v", log)
		}
	}
}

func TestRunResumableAcrossHorizons(t *testing.T) {
	// A Run that stops at the horizon must leave the first past-horizon
	// event queued: the seed engine popped it, dropping one event per Run.
	e := NewEngine()
	var order []int
	for _, at := range []float64{1, 2, 3} {
		at := at
		if _, err := e.Schedule(at, 0, func() { order = append(order, int(at)) }); err != nil {
			t.Fatal(err)
		}
	}
	if now := e.Run(1.5); now != 1.5 {
		t.Fatalf("first run ended at %v, want 1.5", now)
	}
	if len(order) != 1 || order[0] != 1 {
		t.Fatalf("after first run order = %v, want [1]", order)
	}
	if now := e.Run(10); now != 10 {
		t.Fatalf("second run ended at %v, want 10", now)
	}
	if len(order) != 3 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("after second run order = %v, want [1 2 3]", order)
	}
	if e.EventsRun() != 3 {
		t.Fatalf("events run = %d, want 3", e.EventsRun())
	}
}

func TestRunRepeatedSameHorizonIdempotent(t *testing.T) {
	e := NewEngine()
	ran := 0
	if _, err := e.Schedule(5, 0, func() { ran++ }); err != nil {
		t.Fatal(err)
	}
	e.Run(2)
	e.Run(2)
	e.Run(2)
	if ran != 0 {
		t.Fatalf("event at t=5 ran %d times before its horizon", ran)
	}
	e.Run(6)
	if ran != 1 {
		t.Fatalf("event ran %d times, want 1", ran)
	}
}

func TestRunSkipsCanceledHeadBeyondHorizonCheck(t *testing.T) {
	// A canceled event at the head of the queue must be discarded even when
	// it lies beyond the horizon, so it cannot shadow the horizon logic
	// forever.
	e := NewEngine()
	ev, err := e.Schedule(5, 0, func() { t.Fatal("canceled event ran") })
	if err != nil {
		t.Fatal(err)
	}
	ev.Cancel()
	if now := e.Run(10); now != 10 {
		t.Fatalf("run ended at %v, want 10", now)
	}
}

func TestEveryNoDriftOverManyTicks(t *testing.T) {
	// Tick i must fire at exactly i*interval: the seed accumulated
	// next += interval, whose rounding error compounds over long runs and
	// desynchronizes the τ grid from ceil(t/τ)·τ epoch alignment.
	e := NewEngine()
	const interval = 0.1
	const ticks = 100000
	until := float64(ticks)*interval + interval/2
	i := 0
	err := e.Every(interval, until, 0, func() {
		i++
		if want := float64(i) * interval; e.Now() != want {
			t.Fatalf("tick %d fired at %v, want exactly %v (drift %g)", i, e.Now(), want, e.Now()-want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(until + 1)
	if i != ticks {
		t.Fatalf("ran %d ticks, want %d", i, ticks)
	}
}

func TestRunNeverRewindsTime(t *testing.T) {
	e := NewEngine()
	if _, err := e.Schedule(5, 0, func() {}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Schedule(15, 0, func() {}); err != nil {
		t.Fatal(err)
	}
	if now := e.Run(10); now != 10 {
		t.Fatalf("first run ended at %v, want 10", now)
	}
	// A smaller horizon must be a no-op, not a time rewind (which would let
	// Schedule accept timestamps in the already-executed past).
	if now := e.Run(3); now != 10 {
		t.Fatalf("Run(3) rewound time to %v, want 10", now)
	}
	if _, err := e.Schedule(4, 0, func() {}); err == nil {
		t.Fatal("Schedule accepted a timestamp in the executed past")
	}
}
