package sim

import (
	"math"
	"sort"
)

// sampleCap bounds the per-histogram sample memory. Up to sampleCap
// observations the store is exact (Quantile matches the unbounded store
// byte-for-byte); past it, a deterministic reservoir (Vitter's algorithm R
// on a seeded xorshift stream) keeps a uniform sample, so memory stays O(1)
// per metric on arbitrarily long runs. Mean and Count are streaming and
// stay exact at any length.
const sampleCap = 4096

// CounterHandle is an interned counter: Add via handle is an array index
// instead of a string hash, which is what the per-hop payment path wants.
type CounterHandle int32

// SampleHandle is an interned histogram, the Observe counterpart of
// CounterHandle.
type SampleHandle int32

type counter struct {
	name  string
	value float64
}

type sampleStore struct {
	name  string
	count int64   // total observations (not just retained ones)
	sum   float64 // running sum in observation order; Mean = sum/count
	buf   []float64
	rng   uint64 // xorshift64 state, seeded from the metric name
	// sorted caches a sorted copy of buf for Quantile; Observe invalidates
	// it, so figure code calling Quantile per scheme × metric sorts once.
	sorted   []float64
	sortedOK bool
}

// Metrics collects counters and histograms for an experiment run. The zero
// value is NOT ready to use; construct with NewMetrics.
type Metrics struct {
	counterIdx map[string]CounterHandle
	counters   []counter
	sampleIdx  map[string]SampleHandle
	samples    []sampleStore
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counterIdx: map[string]CounterHandle{},
		sampleIdx:  map[string]SampleHandle{},
	}
}

// CounterHandle interns a counter name, creating the counter (at value 0)
// if needed. Hot paths resolve their handles once and use AddHandle.
func (m *Metrics) CounterHandle(name string) CounterHandle {
	if h, ok := m.counterIdx[name]; ok {
		return h
	}
	h := CounterHandle(len(m.counters))
	m.counters = append(m.counters, counter{name: name})
	m.counterIdx[name] = h
	return h
}

// SampleHandle interns a histogram name, creating the store if needed.
func (m *Metrics) SampleHandle(name string) SampleHandle {
	if h, ok := m.sampleIdx[name]; ok {
		return h
	}
	h := SampleHandle(len(m.samples))
	m.samples = append(m.samples, sampleStore{name: name, rng: seedFor(name)})
	m.sampleIdx[name] = h
	return h
}

// AddHandle increments an interned counter by v.
func (m *Metrics) AddHandle(h CounterHandle, v float64) { m.counters[h].value += v }

// ObserveHandle appends one sample to an interned histogram.
func (m *Metrics) ObserveHandle(h SampleHandle, v float64) {
	s := &m.samples[h]
	s.count++
	s.sum += v
	s.sortedOK = false
	if len(s.buf) < sampleCap {
		s.buf = append(s.buf, v)
		return
	}
	// Algorithm R: replace a uniformly random retained sample with
	// probability sampleCap/count. The xorshift stream depends only on the
	// metric name and the observation sequence, so runs are reproducible
	// and worker-count invariant.
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	if j := s.rng % uint64(s.count); j < sampleCap {
		s.buf[j] = v
	}
}

// Add increments counter name by v.
func (m *Metrics) Add(name string, v float64) { m.AddHandle(m.CounterHandle(name), v) }

// Counter returns the current value of a counter (0 when absent).
func (m *Metrics) Counter(name string) float64 {
	if h, ok := m.counterIdx[name]; ok {
		return m.counters[h].value
	}
	return 0
}

// Observe appends one sample to histogram name.
func (m *Metrics) Observe(name string, v float64) { m.ObserveHandle(m.SampleHandle(name), v) }

// Quantile returns the q-quantile (0..1) of histogram name, or NaN when
// empty. Exact while the histogram holds at most sampleCap observations
// (the common case for per-run delay metrics); beyond that it is the
// quantile of the retained uniform reservoir.
func (m *Metrics) Quantile(name string, q float64) float64 {
	h, ok := m.sampleIdx[name]
	if !ok {
		return math.NaN()
	}
	s := &m.samples[h]
	if len(s.buf) == 0 {
		return math.NaN()
	}
	if !s.sortedOK {
		s.sorted = append(s.sorted[:0], s.buf...)
		sort.Float64s(s.sorted)
		s.sortedOK = true
	}
	idx := int(q * float64(len(s.sorted)-1))
	return s.sorted[idx]
}

// Mean returns the mean of histogram name, or NaN when empty. Streaming
// and exact: the sum accumulates in observation order, matching the former
// sum-over-slice result bit for bit.
func (m *Metrics) Mean(name string) float64 {
	h, ok := m.sampleIdx[name]
	if !ok {
		return math.NaN()
	}
	s := &m.samples[h]
	if s.count == 0 {
		return math.NaN()
	}
	return s.sum / float64(s.count)
}

// Count returns the number of samples observed for name (all observations,
// including those no longer retained by the reservoir).
func (m *Metrics) Count(name string) int {
	if h, ok := m.sampleIdx[name]; ok {
		return int(m.samples[h].count)
	}
	return 0
}

// CounterNames returns the sorted counter names (for reporting). Interned
// but never-incremented counters are included at value 0.
func (m *Metrics) CounterNames() []string {
	names := make([]string, 0, len(m.counters))
	for i := range m.counters {
		names = append(names, m.counters[i].name)
	}
	sort.Strings(names)
	return names
}

// seedFor derives a nonzero per-metric xorshift seed from the name
// (FNV-1a), so reservoir decisions depend only on the metric and its
// observation sequence — never on registry order or map iteration.
func seedFor(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return h
}
