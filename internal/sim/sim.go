// Package sim is the discrete-event simulation engine the PCN model runs
// on: a virtual clock, an event heap, periodic tasks (the τ-spaced price
// updates and epoch synchronizations of §III-B), and a metrics registry.
//
// The paper evaluates with a MATLAB simulation plus an instrumented LND
// testnet; this engine is the Go substitute — every evaluation quantity
// (TSR, normalized throughput, delay, queue occupancy) is an event-level
// measurement here.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Event is a scheduled callback.
type Event struct {
	Time float64
	// Priority breaks ties at equal times (lower runs first); sequence
	// breaks remaining ties FIFO.
	Priority int
	Action   func()
	seq      uint64
	index    int
	canceled bool
}

// Cancel prevents a scheduled event from running. Safe to call multiple
// times.
func (e *Event) Cancel() { e.canceled = true }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	if h[i].Priority != h[j].Priority {
		return h[i].Priority < h[j].Priority
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x interface{}) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator.
type Engine struct {
	now    float64
	queue  eventHeap
	seq    uint64
	nRun   uint64
	halted bool
}

// NewEngine returns an engine at time 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// EventsRun returns the number of events executed.
func (e *Engine) EventsRun() uint64 { return e.nRun }

// Schedule queues action at absolute time t (>= Now). It returns the event
// handle for cancellation.
func (e *Engine) Schedule(t float64, priority int, action func()) (*Event, error) {
	if t < e.now {
		return nil, fmt.Errorf("sim: schedule at %v before now %v", t, e.now)
	}
	if action == nil {
		return nil, fmt.Errorf("sim: nil action")
	}
	ev := &Event{Time: t, Priority: priority, Action: action, seq: e.seq}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev, nil
}

// After queues action delay seconds from now.
func (e *Engine) After(delay float64, priority int, action func()) (*Event, error) {
	return e.Schedule(e.now+delay, priority, action)
}

// Every schedules action at now+interval, then every interval seconds until
// `until` (exclusive). Used for the τ-periodic probe/price updates.
//
// Tick i fires at exactly start + i·interval. Accumulating `next += interval`
// instead would drift by a rounding error per tick, which over the 10⁵+
// ticks of a long run desynchronizes the τ grid from consumers that compute
// epoch boundaries multiplicatively (A2L's ceil(t/τ)·τ alignment).
func (e *Engine) Every(interval, until float64, priority int, action func()) error {
	if interval <= 0 {
		return fmt.Errorf("sim: interval must be positive, got %v", interval)
	}
	start := e.now
	i := int64(1)
	var tick func()
	tick = func() {
		action()
		i++
		// float64(i)*interval is nondecreasing in i, so next >= now always
		// holds inside the run loop.
		if next := start + float64(i)*interval; next < until {
			if _, err := e.Schedule(next, priority, tick); err != nil {
				panic(err)
			}
		}
	}
	first := start + interval
	if first >= until {
		return nil
	}
	_, err := e.Schedule(first, priority, tick)
	return err
}

// Halt stops the run loop after the current event.
func (e *Engine) Halt() { e.halted = true }

// Run executes events in time order until the queue empties, the horizon is
// passed, or Halt is called. It returns the final virtual time. Events
// beyond the horizon stay queued, so a later Run with a larger horizon
// resumes exactly where this one stopped and executes every scheduled event
// in order.
func (e *Engine) Run(horizon float64) float64 {
	e.halted = false
	for len(e.queue) > 0 && !e.halted {
		// Peek before popping: a past-horizon event must survive for the
		// next Run rather than being popped and dropped.
		next := e.queue[0]
		if next.canceled {
			heap.Pop(&e.queue)
			continue
		}
		if next.Time > horizon {
			// Advance to the horizon, but never rewind: a Run with a
			// horizon earlier than the current time is a no-op.
			if horizon > e.now {
				e.now = horizon
			}
			return e.now
		}
		heap.Pop(&e.queue)
		e.now = next.Time
		e.nRun++
		next.Action()
	}
	if e.now < horizon && len(e.queue) == 0 {
		e.now = horizon
	}
	return e.now
}

// Metrics collects counters, gauges and histograms for an experiment run.
// The zero value is ready to use.
type Metrics struct {
	counters map[string]float64
	samples  map[string][]float64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{counters: map[string]float64{}, samples: map[string][]float64{}}
}

// Add increments counter name by v.
func (m *Metrics) Add(name string, v float64) { m.counters[name] += v }

// Counter returns the current value of a counter.
func (m *Metrics) Counter(name string) float64 { return m.counters[name] }

// Observe appends one sample to histogram name.
func (m *Metrics) Observe(name string, v float64) {
	m.samples[name] = append(m.samples[name], v)
}

// Quantile returns the q-quantile (0..1) of histogram name, or NaN when
// empty.
func (m *Metrics) Quantile(name string, q float64) float64 {
	s := m.samples[name]
	if len(s) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), s...)
	sort.Float64s(sorted)
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// Mean returns the mean of histogram name, or NaN when empty.
func (m *Metrics) Mean(name string) float64 {
	s := m.samples[name]
	if len(s) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

// Count returns the number of samples observed for name.
func (m *Metrics) Count(name string) int { return len(m.samples[name]) }

// CounterNames returns the sorted counter names (for reporting).
func (m *Metrics) CounterNames() []string {
	names := make([]string, 0, len(m.counters))
	for n := range m.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
