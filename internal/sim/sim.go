// Package sim is the discrete-event simulation engine the PCN model runs
// on: a virtual clock, an event heap, periodic tasks (the τ-spaced price
// updates and epoch synchronizations of §III-B), and a metrics registry.
//
// The paper evaluates with a MATLAB simulation plus an instrumented LND
// testnet; this engine is the Go substitute — every evaluation quantity
// (TSR, normalized throughput, delay, queue occupancy) is an event-level
// measurement here.
//
// The event queue is a pooled, index-addressed 4-ary min-heap: events live
// in a slot arena reused through a free list, Schedule returns a value
// handle (no per-event allocation, no interface{} boxing through
// container/heap), and canceled events are compacted out of the heap when
// they outnumber the live ones, so long-horizon runs that cancel most of
// their deadline watchdogs do not carry the corpses to their fire times.
package sim

import "fmt"

// Event is a cancelable value handle to a scheduled event. The zero value
// is inert: Cancel on it is a no-op. Handles stay safe after the event has
// fired or been canceled — the slot generation counter makes a stale
// Cancel a no-op instead of touching the slot's next occupant.
type Event struct {
	e   *Engine
	idx int32
	gen uint32
}

// Cancel prevents a scheduled event from running. Safe to call multiple
// times, after the event fired, and on the zero Event.
func (ev Event) Cancel() {
	if ev.e != nil {
		ev.e.cancel(ev.idx, ev.gen)
	}
}

// slot is one arena entry. A slot is live while its event is queued; on
// release its generation bumps (invalidating outstanding handles) and the
// index returns to the free list for reuse by a future Schedule.
type slot struct {
	time     float64
	seq      uint64
	action   func()
	priority int
	gen      uint32
	canceled bool
}

// Engine is a single-threaded discrete-event simulator.
type Engine struct {
	now   float64
	slots []slot
	free  []int32 // released slot indices awaiting reuse
	heap  []int32 // 4-ary min-heap of slot indices, ordered by (time, priority, seq)
	// nCanceled counts canceled events still occupying the heap; when they
	// exceed the live events, compact() sweeps them out in one pass.
	nCanceled int
	seq       uint64
	nRun      uint64
	halted    bool
}

// NewEngine returns an engine at time 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// EventsRun returns the number of events executed.
func (e *Engine) EventsRun() uint64 { return e.nRun }

// PendingEvents returns the number of live (scheduled, not canceled) events.
func (e *Engine) PendingEvents() int { return len(e.heap) - e.nCanceled }

// heapSlots returns the heap's current occupancy including canceled
// corpses awaiting compaction or their fire time (tests pin the compaction
// behavior through it).
func (e *Engine) heapSlots() int { return len(e.heap) }

// less orders heap entries by (time, priority, seq) — identical to the
// pre-pool container/heap contract. seq makes the order total, so the heap
// arity cannot leak into execution order.
func (e *Engine) less(a, b int32) bool {
	sa, sb := &e.slots[a], &e.slots[b]
	if sa.time != sb.time {
		return sa.time < sb.time
	}
	if sa.priority != sb.priority {
		return sa.priority < sb.priority
	}
	return sa.seq < sb.seq
}

// siftUp restores the heap property from position i toward the root.
func (e *Engine) siftUp(i int) {
	h := e.heap
	moving := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !e.less(moving, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = moving
}

// siftDown restores the heap property from position i toward the leaves,
// hole-style: parents shift up into the hole and the moving entry drops in
// once no child precedes it.
func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	moving := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.less(h[c], h[best]) {
				best = c
			}
		}
		if !e.less(h[best], moving) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = moving
}

// popHead removes the heap minimum. The caller owns the returned slot index
// and must release it.
func (e *Engine) popHead() int32 {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	e.heap = h[:n]
	if n > 1 {
		e.siftDown(0)
	}
	return top
}

// release returns a slot to the free list. The generation bump invalidates
// every outstanding handle to the slot's previous occupant; dropping the
// action lets the closure (and whatever payment state it captures) be
// collected before the slot is reused.
func (e *Engine) release(idx int32) {
	s := &e.slots[idx]
	s.gen++
	s.action = nil
	e.free = append(e.free, idx)
}

// cancel marks a live event canceled. Stale handles (generation mismatch:
// the event already fired or the slot was reused) are ignored.
func (e *Engine) cancel(idx int32, gen uint32) {
	if int(idx) >= len(e.slots) {
		return
	}
	s := &e.slots[idx]
	if s.gen != gen || s.canceled {
		return
	}
	s.canceled = true
	s.action = nil // release the closure now; the corpse may linger awhile
	e.nCanceled++
	if e.nCanceled*2 > len(e.heap) {
		e.compact()
	}
}

// compact sweeps canceled events out of the heap in one pass and restores
// the heap property bottom-up. Without it, a long-horizon run that cancels
// most of its deadline watchdogs (churn workloads) would carry every corpse
// until its fire time — the pre-pool engine's leak.
func (e *Engine) compact() {
	keep := e.heap[:0]
	for _, idx := range e.heap {
		if e.slots[idx].canceled {
			e.slots[idx].canceled = false
			e.release(idx)
		} else {
			keep = append(keep, idx)
		}
	}
	e.heap = keep
	e.nCanceled = 0
	if n := len(e.heap); n > 1 {
		for i := (n - 2) / 4; i >= 0; i-- {
			e.siftDown(i)
		}
	}
}

// Schedule queues action at absolute time t (>= Now). It returns the event
// handle for cancellation. The handle is a value: storing it does not pin
// the event's memory, and the zero Event is a valid "no event" sentinel.
func (e *Engine) Schedule(t float64, priority int, action func()) (Event, error) {
	if t < e.now {
		return Event{}, fmt.Errorf("sim: schedule at %v before now %v", t, e.now)
	}
	if action == nil {
		return Event{}, fmt.Errorf("sim: nil action")
	}
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slots = append(e.slots, slot{})
		idx = int32(len(e.slots) - 1)
	}
	s := &e.slots[idx]
	s.time = t
	s.priority = priority
	s.seq = e.seq
	s.action = action
	s.canceled = false
	e.seq++
	e.heap = append(e.heap, idx)
	e.siftUp(len(e.heap) - 1)
	return Event{e: e, idx: idx, gen: s.gen}, nil
}

// After queues action delay seconds from now.
func (e *Engine) After(delay float64, priority int, action func()) (Event, error) {
	return e.Schedule(e.now+delay, priority, action)
}

// Every schedules action at now+interval, then every interval seconds until
// `until` (exclusive). Used for the τ-periodic probe/price updates.
//
// Tick i fires at exactly start + i·interval. Accumulating `next += interval`
// instead would drift by a rounding error per tick, which over the 10⁵+
// ticks of a long run desynchronizes the τ grid from consumers that compute
// epoch boundaries multiplicatively (A2L's ceil(t/τ)·τ alignment).
func (e *Engine) Every(interval, until float64, priority int, action func()) error {
	if interval <= 0 {
		return fmt.Errorf("sim: interval must be positive, got %v", interval)
	}
	start := e.now
	i := int64(1)
	var tick func()
	tick = func() {
		action()
		i++
		// float64(i)*interval is nondecreasing in i, so next >= now always
		// holds inside the run loop.
		if next := start + float64(i)*interval; next < until {
			if _, err := e.Schedule(next, priority, tick); err != nil {
				panic(err)
			}
		}
	}
	first := start + interval
	if first >= until {
		return nil
	}
	_, err := e.Schedule(first, priority, tick)
	return err
}

// Halt stops the run loop after the current event.
func (e *Engine) Halt() { e.halted = true }

// Run executes events in time order until the queue empties, the horizon is
// passed, or Halt is called. It returns the final virtual time. Events
// beyond the horizon stay queued, so a later Run with a larger horizon
// resumes exactly where this one stopped and executes every scheduled event
// in order.
func (e *Engine) Run(horizon float64) float64 {
	e.halted = false
	for len(e.heap) > 0 && !e.halted {
		// Peek before popping: a past-horizon event must survive for the
		// next Run rather than being popped and dropped.
		top := e.heap[0]
		s := &e.slots[top]
		if s.canceled {
			e.popHead()
			s.canceled = false
			e.nCanceled--
			e.release(top)
			continue
		}
		if s.time > horizon {
			// Advance to the horizon, but never rewind: a Run with a
			// horizon earlier than the current time is a no-op.
			if horizon > e.now {
				e.now = horizon
			}
			return e.now
		}
		t, action := s.time, s.action
		e.popHead()
		// Release before running: the action may schedule follow-ups that
		// reuse this slot; the generation bump keeps stale handles inert.
		e.release(top)
		e.now = t
		e.nRun++
		action()
	}
	if e.now < horizon && len(e.heap) == 0 {
		e.now = horizon
	}
	return e.now
}
