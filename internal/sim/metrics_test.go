package sim

import (
	"math"
	"sort"
	"testing"
)

// TestQuantileCachedSortInvalidation is the satellite fix: Quantile must
// not re-sort per call, and the cache must invalidate on Observe.
func TestQuantileCachedSortInvalidation(t *testing.T) {
	m := NewMetrics()
	for _, v := range []float64{9, 1, 5, 3, 7} {
		m.Observe("d", v)
	}
	if q := m.Quantile("d", 0.5); q != 5 {
		t.Fatalf("median = %v", q)
	}
	// Cached: repeated calls agree.
	if q := m.Quantile("d", 0.5); q != 5 {
		t.Fatalf("cached median = %v", q)
	}
	// New observation must invalidate the cached order.
	m.Observe("d", 0)
	if q := m.Quantile("d", 0); q != 0 {
		t.Fatalf("min after invalidation = %v, want 0", q)
	}
	if q := m.Quantile("d", 1); q != 9 {
		t.Fatalf("max after invalidation = %v, want 9", q)
	}
}

// TestQuantileDoesNotPerturbState: Quantile is read-only — interleaving
// calls must not change what later Observes/Quantiles see (the sorted view
// is a cache, not the canonical sample order).
func TestQuantileDoesNotPerturbState(t *testing.T) {
	a, b := NewMetrics(), NewMetrics()
	vals := []float64{5, 2, 8, 1, 9, 3}
	for i, v := range vals {
		a.Observe("x", v)
		b.Observe("x", v)
		if i%2 == 0 {
			a.Quantile("x", 0.5) // a interleaves reads; b does not
		}
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if a.Quantile("x", q) != b.Quantile("x", q) {
			t.Fatalf("q=%v: %v vs %v", q, a.Quantile("x", q), b.Quantile("x", q))
		}
	}
	if a.Mean("x") != b.Mean("x") || a.Count("x") != b.Count("x") {
		t.Fatal("mean/count diverged")
	}
}

// TestMeanExactUnderBounding: Mean and Count stay exact past the sample
// cap (streaming sum/count, not reservoir-based).
func TestMeanExactUnderBounding(t *testing.T) {
	m := NewMetrics()
	n := sampleCap * 3
	sum := 0.0
	for i := 0; i < n; i++ {
		v := float64(i%97) * 0.25
		m.Observe("d", v)
		sum += v
	}
	if got, want := m.Mean("d"), sum/float64(n); got != want {
		t.Fatalf("mean = %v, want exactly %v", got, want)
	}
	if m.Count("d") != n {
		t.Fatalf("count = %d, want %d", m.Count("d"), n)
	}
}

// TestBoundedMemoryAndQuantileTolerance: the retained sample set stays at
// sampleCap and quantiles remain close to the true distribution.
func TestBoundedMemoryAndQuantileTolerance(t *testing.T) {
	m := NewMetrics()
	h := m.SampleHandle("d")
	n := sampleCap * 8
	for i := 0; i < n; i++ {
		// Uniform-ish deterministic stream over [0, 1000).
		m.ObserveHandle(h, float64((i*7919)%1000))
	}
	if got := len(m.samples[h].buf); got != sampleCap {
		t.Fatalf("retained %d samples, want %d", got, sampleCap)
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		got := m.Quantile("d", q)
		want := q * 1000
		if math.Abs(got-want) > 50 { // reservoir tolerance
			t.Fatalf("q=%v: got %v, want ~%v", q, got, want)
		}
	}
}

// TestReservoirDeterministic: the reservoir depends only on the metric
// name and the observation sequence — two registries fed identically agree
// exactly, regardless of unrelated metrics registered around them.
func TestReservoirDeterministic(t *testing.T) {
	a, b := NewMetrics(), NewMetrics()
	b.Observe("unrelated", 1) // registry order must not matter
	for i := 0; i < sampleCap*4; i++ {
		v := float64((i * 31) % 1009)
		a.Observe("d", v)
		b.Observe("d", v)
	}
	ha, _ := a.sampleIdx["d"]
	hb, _ := b.sampleIdx["d"]
	if len(a.samples[ha].buf) != len(b.samples[hb].buf) {
		t.Fatal("retained counts differ")
	}
	for i := range a.samples[ha].buf {
		if a.samples[ha].buf[i] != b.samples[hb].buf[i] {
			t.Fatalf("reservoir diverges at %d", i)
		}
	}
}

// TestQuantileExactWithinCap pins the pre-cap behavior to the former
// sort-the-whole-slice implementation.
func TestQuantileExactWithinCap(t *testing.T) {
	m := NewMetrics()
	vals := []float64{13, 2, 8, 21, 1, 34, 5, 3, 1, 55}
	for _, v := range vals {
		m.Observe("d", v)
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	for _, q := range []float64{0, 0.1, 0.33, 0.5, 0.9, 1} {
		want := sorted[int(q*float64(len(sorted)-1))]
		if got := m.Quantile("d", q); got != want {
			t.Fatalf("q=%v: got %v want %v", q, got, want)
		}
	}
}

// TestHandleStringEquivalence: the interned-handle API and the string API
// address the same counters and histograms.
func TestHandleStringEquivalence(t *testing.T) {
	m := NewMetrics()
	c := m.CounterHandle("sent")
	m.AddHandle(c, 2)
	m.Add("sent", 3)
	if m.Counter("sent") != 5 {
		t.Fatalf("counter = %v", m.Counter("sent"))
	}
	s := m.SampleHandle("delay")
	m.ObserveHandle(s, 1)
	m.Observe("delay", 3)
	if m.Count("delay") != 2 || m.Mean("delay") != 2 {
		t.Fatalf("count=%d mean=%v", m.Count("delay"), m.Mean("delay"))
	}
	// Handles are stable: re-interning returns the same index.
	if m.CounterHandle("sent") != c || m.SampleHandle("delay") != s {
		t.Fatal("handle not stable across interning")
	}
}
