package sim

// Sim-core microbenchmarks: the per-event cost every simulated second pays.
// These are the "sim-core" entries of the tracked bench suite (cmd/bench);
// BENCH_*.json pins their allocs/op so a regression in the pooled event
// queue or the metrics hot path fails CI.

import "testing"

// BenchmarkEngineScheduleRun measures the schedule→pop→run cycle: b.N events
// through an engine in batches, the dominant pattern of a payment run (every
// hop is one After + one pop).
func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	action := func() {}
	const batch = 1024
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; {
		t := e.Now()
		for i := 0; i < batch && n < b.N; i++ {
			if _, err := e.Schedule(t+float64(i%7)+1, i%3, action); err != nil {
				b.Fatal(err)
			}
			n++
		}
		e.Run(t + 16)
	}
}

// BenchmarkEngineCancelChurn measures the deadline-watchdog pattern of
// long-horizon churn runs: most scheduled events are canceled before they
// fire (payments finish before their deadline).
func BenchmarkEngineCancelChurn(b *testing.B) {
	e := NewEngine()
	action := func() {}
	const batch = 1024
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; {
		t := e.Now()
		for i := 0; i < batch && n < b.N; i++ {
			ev, err := e.Schedule(t+100, 0, action)
			if err != nil {
				b.Fatal(err)
			}
			if i%8 != 0 {
				ev.Cancel() // 7 of 8 deadline events never fire
			}
			n++
		}
		e.Run(t + 200)
	}
}

// BenchmarkEngineNestedTimers measures self-rescheduling event chains (the
// τ-tick and hop-delay pattern): each event schedules its successor.
func BenchmarkEngineNestedTimers(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			if _, err := e.After(1, 0, tick); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := e.Schedule(1, 0, tick); err != nil {
		b.Fatal(err)
	}
	e.Run(float64(b.N) + 2)
}

// BenchmarkMetricsHot measures the per-hop metrics pattern: two counter adds
// and one histogram observation per iteration, the exact mix of a settled
// hop in payment.go (which resolves handles once, like here).
func BenchmarkMetricsHot(b *testing.B) {
	m := NewMetrics()
	tuCompleted := m.CounterHandle("tu_completed")
	fees := m.CounterHandle("fees")
	queueDelay := m.SampleHandle("queue_delay")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.AddHandle(tuCompleted, 1)
		m.AddHandle(fees, 0.01)
		m.ObserveHandle(queueDelay, float64(i%100)*0.001)
	}
}

// BenchmarkMetricsStringAPI is the same mix through the name-based API
// (one map hash per call) — the cost the handle interning removes.
func BenchmarkMetricsStringAPI(b *testing.B) {
	m := NewMetrics()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Add("tu_completed", 1)
		m.Add("fees", 0.01)
		m.Observe("queue_delay", float64(i%100)*0.001)
	}
}
