// Snapshot persistence: a channel graph serialized as CSV, one row per
// channel with both directions' funds. The scenario engine uses snapshots to
// run workloads over captured topologies (e.g. a Lightning-like graph
// checked in as a fixture) instead of freshly generated ones, and to freeze
// a generated topology so two runs are guaranteed the same graph.
package topology

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"github.com/splicer-pcn/splicer/internal/graph"
)

// snapshotHeader is the canonical column set of a snapshot CSV.
var snapshotHeader = []string{"u", "v", "cap_fwd", "cap_rev"}

// WriteSnapshot serializes the graph's live channels as CSV. Removed
// (tombstoned) edges are skipped, so loading the snapshot reconstructs the
// live topology with freshly dense edge ids.
func WriteSnapshot(w io.Writer, g *graph.Graph) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(snapshotHeader); err != nil {
		return err
	}
	for i := 0; i < g.NumEdges(); i++ {
		id := graph.EdgeID(i)
		if g.EdgeRemoved(id) {
			continue
		}
		e := g.Edge(id)
		rec := []string{
			strconv.Itoa(int(e.U)),
			strconv.Itoa(int(e.V)),
			strconv.FormatFloat(e.CapFwd, 'g', -1, 64),
			strconv.FormatFloat(e.CapRev, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadSnapshot parses a snapshot CSV into a graph. The node count is the
// highest endpoint id plus one; every row becomes one channel. Rows are
// validated (non-negative ids, non-negative funds, no self-loops) so a
// malformed fixture fails loudly rather than producing a silently wrong
// topology.
func ReadSnapshot(r io.Reader) (*graph.Graph, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("topology: snapshot: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("topology: snapshot: empty file")
	}
	if len(records[0]) != len(snapshotHeader) || records[0][0] != "u" {
		return nil, fmt.Errorf("topology: snapshot: missing header %v", snapshotHeader)
	}
	rows := records[1:]
	if len(rows) == 0 {
		return nil, fmt.Errorf("topology: snapshot: no channels")
	}
	type edge struct {
		u, v     int
		fwd, rev float64
	}
	edges := make([]edge, 0, len(rows))
	maxNode := -1
	for i, rec := range rows {
		var e edge
		var errs [4]error
		e.u, errs[0] = strconv.Atoi(rec[0])
		e.v, errs[1] = strconv.Atoi(rec[1])
		e.fwd, errs[2] = strconv.ParseFloat(rec[2], 64)
		e.rev, errs[3] = strconv.ParseFloat(rec[3], 64)
		for _, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("topology: snapshot row %d: %w", i+1, err)
			}
		}
		if e.u < 0 || e.v < 0 {
			return nil, fmt.Errorf("topology: snapshot row %d: negative node id", i+1)
		}
		if e.u == e.v {
			return nil, fmt.Errorf("topology: snapshot row %d: self-loop on node %d", i+1, e.u)
		}
		if e.fwd < 0 || e.rev < 0 {
			return nil, fmt.Errorf("topology: snapshot row %d: negative capacity", i+1)
		}
		if e.u > maxNode {
			maxNode = e.u
		}
		if e.v > maxNode {
			maxNode = e.v
		}
		edges = append(edges, e)
	}
	g := graph.New(maxNode + 1)
	for i, e := range edges {
		if _, err := g.AddEdge(graph.NodeID(e.u), graph.NodeID(e.v), e.fwd, e.rev); err != nil {
			return nil, fmt.Errorf("topology: snapshot row %d: %w", i+1, err)
		}
	}
	return g, nil
}

// LoadSnapshot reads a snapshot CSV from disk.
func LoadSnapshot(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("topology: snapshot: %w", err)
	}
	defer f.Close()
	return ReadSnapshot(f)
}
