package topology

import (
	"testing"
	"testing/quick"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/rng"
)

func TestWattsStrogatzBasics(t *testing.T) {
	src := rng.New(1)
	g, err := WattsStrogatz(src, 100, 4, 0.25, UniformCapacity(100))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 100 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Ring lattice has n*k/2 edges; rewiring preserves count, stitching may
	// add a few.
	if g.NumEdges() < 200 {
		t.Fatalf("edges = %d, want >= 200", g.NumEdges())
	}
	if !g.Connected() {
		t.Fatal("graph not connected")
	}
}

func TestWattsStrogatzDeterministic(t *testing.T) {
	g1, err := WattsStrogatz(rng.New(7), 50, 4, 0.3, UniformCapacity(10))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := WattsStrogatz(rng.New(7), 50, 4, 0.3, UniformCapacity(10))
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", g1.NumEdges(), g2.NumEdges())
	}
	for i := 0; i < g1.NumEdges(); i++ {
		e1, e2 := g1.Edge(graph.EdgeID(i)), g2.Edge(graph.EdgeID(i))
		if e1.U != e2.U || e1.V != e2.V {
			t.Fatalf("edge %d differs: %v-%v vs %v-%v", i, e1.U, e1.V, e2.U, e2.V)
		}
	}
}

func TestWattsStrogatzZeroBetaIsRing(t *testing.T) {
	g, err := WattsStrogatz(rng.New(1), 10, 2, 0, UniformCapacity(1))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 10 {
		t.Fatalf("edges = %d, want 10 (pure ring)", g.NumEdges())
	}
	for i := 0; i < 10; i++ {
		if !g.HasEdgeBetween(graph.NodeID(i), graph.NodeID((i+1)%10)) {
			t.Fatalf("missing ring edge %d-%d", i, (i+1)%10)
		}
	}
}

func TestWattsStrogatzValidation(t *testing.T) {
	src := rng.New(1)
	cases := []struct {
		n, k int
		beta float64
	}{
		{0, 2, 0.1},
		{10, 3, 0.1},  // odd k
		{10, 0, 0.1},  // k too small
		{4, 4, 0.1},   // k >= n
		{10, 2, -0.1}, // bad beta
		{10, 2, 1.5},
	}
	for _, c := range cases {
		if _, err := WattsStrogatz(src, c.n, c.k, c.beta, UniformCapacity(1)); err == nil {
			t.Fatalf("expected error for n=%d k=%d beta=%v", c.n, c.k, c.beta)
		}
	}
}

func TestBarabasiAlbertDegreeSkew(t *testing.T) {
	src := rng.New(3)
	g, err := BarabasiAlbert(src, 300, 2, UniformCapacity(10))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("BA graph not connected")
	}
	// Scale-free: max degree far above the mean.
	maxDeg, sum := 0, 0
	for i := 0; i < g.NumNodes(); i++ {
		d := g.Degree(graph.NodeID(i))
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(sum) / float64(g.NumNodes())
	if float64(maxDeg) < 3*mean {
		t.Fatalf("max degree %d not heavy-tailed vs mean %.1f", maxDeg, mean)
	}
}

func TestBarabasiAlbertValidation(t *testing.T) {
	src := rng.New(1)
	if _, err := BarabasiAlbert(src, 5, 0, UniformCapacity(1)); err == nil {
		t.Fatal("expected error for m=0")
	}
	if _, err := BarabasiAlbert(src, 2, 2, UniformCapacity(1)); err == nil {
		t.Fatal("expected error for n<=m")
	}
}

func TestStar(t *testing.T) {
	g, err := Star(6, UniformCapacity(5))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 5 {
		t.Fatalf("edges = %d, want 5", g.NumEdges())
	}
	if g.Degree(0) != 5 {
		t.Fatalf("hub degree = %d, want 5", g.Degree(0))
	}
	for i := 1; i < 6; i++ {
		if g.Degree(graph.NodeID(i)) != 1 {
			t.Fatalf("client %d degree = %d, want 1", i, g.Degree(graph.NodeID(i)))
		}
	}
	if _, err := Star(1, UniformCapacity(1)); err == nil {
		t.Fatal("expected error for n=1")
	}
}

func TestMultiStar(t *testing.T) {
	src := rng.New(9)
	g, hubs, err := MultiStar(src, 4, 20, UniformCapacity(1000), UniformCapacity(50))
	if err != nil {
		t.Fatal(err)
	}
	if len(hubs) != 4 {
		t.Fatalf("hubs = %v", hubs)
	}
	if g.NumNodes() != 24 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if !g.Connected() {
		t.Fatal("multi-star not connected")
	}
	// Every client has exactly one channel, to a hub.
	for i := 4; i < 24; i++ {
		if g.Degree(graph.NodeID(i)) != 1 {
			t.Fatalf("client %d degree = %d", i, g.Degree(graph.NodeID(i)))
		}
		e := g.Edge(g.Incident(graph.NodeID(i))[0])
		other := e.Other(graph.NodeID(i))
		if int(other) >= 4 {
			t.Fatalf("client %d attached to non-hub %d", i, other)
		}
	}
}

func TestMultiStarSingleHub(t *testing.T) {
	g, hubs, err := MultiStar(rng.New(1), 1, 5, UniformCapacity(100), UniformCapacity(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(hubs) != 1 || g.NumEdges() != 5 {
		t.Fatalf("hubs=%v edges=%d", hubs, g.NumEdges())
	}
}

func TestMultiStarValidation(t *testing.T) {
	if _, _, err := MultiStar(rng.New(1), 0, 5, UniformCapacity(1), UniformCapacity(1)); err == nil {
		t.Fatal("expected error for 0 hubs")
	}
	if _, _, err := MultiStar(rng.New(1), 2, 0, UniformCapacity(1), UniformCapacity(1)); err == nil {
		t.Fatal("expected error for 0 clients")
	}
}

func TestTopDegreeNodes(t *testing.T) {
	g, err := Star(8, UniformCapacity(1))
	if err != nil {
		t.Fatal(err)
	}
	top := TopDegreeNodes(g, 3)
	if len(top) != 3 || top[0] != 0 {
		t.Fatalf("top = %v, want hub (0) first", top)
	}
	all := TopDegreeNodes(g, 100)
	if len(all) != 8 {
		t.Fatalf("k>n should clamp: got %d", len(all))
	}
}

func TestTotalFunds(t *testing.T) {
	g := graph.New(3)
	if _, err := g.AddEdge(0, 1, 10, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(0, 2, 5, 5); err != nil {
		t.Fatal(err)
	}
	if got := TotalFunds(g, 0); got != 40 {
		t.Fatalf("TotalFunds = %v, want 40", got)
	}
	if got := TotalFunds(g, 1); got != 30 {
		t.Fatalf("TotalFunds(1) = %v, want 30", got)
	}
}

func TestPropertyGeneratorsAlwaysConnected(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%80 + 20
		src := rng.New(seed)
		ws, err := WattsStrogatz(src, n, 4, 0.5, UniformCapacity(10))
		if err != nil || !ws.Connected() {
			return false
		}
		ba, err := BarabasiAlbert(src, n, 2, UniformCapacity(10))
		if err != nil || !ba.Connected() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
