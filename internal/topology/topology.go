// Package topology generates the payment channel network graphs used by the
// Splicer evaluation: Watts–Strogatz small-world graphs (the paper follows
// Spider's benchmark, generating channel connections with ROLL [26] on the
// Watts–Strogatz model), Barabási–Albert scale-free graphs, and the
// star / multi-star hub topologies of §III-A.
package topology

import (
	"fmt"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/rng"
)

// CapacityFunc returns the funds to deposit on each side of a new channel.
// It is invoked once per channel.
type CapacityFunc func() (fwd, rev float64)

// UniformCapacity deposits the same fixed funds on both sides.
func UniformCapacity(c float64) CapacityFunc {
	return func() (float64, float64) { return c, c }
}

// WattsStrogatz generates a connected small-world graph over n nodes. Each
// node starts connected to its k nearest ring neighbors (k must be even and
// >= 2), then each edge is rewired with probability beta. Rewiring that
// would create a duplicate edge or self-loop is skipped, matching the
// standard construction. Capacities come from capFn.
func WattsStrogatz(src *rng.Source, n, k int, beta float64, capFn CapacityFunc) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: n must be positive, got %d", n)
	}
	if k < 2 || k%2 != 0 || k >= n {
		return nil, fmt.Errorf("topology: k must be even, >= 2 and < n; got k=%d n=%d", k, n)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("topology: beta must be in [0,1], got %v", beta)
	}
	g := graph.New(n)
	type pair struct{ u, v int }
	exists := make(map[pair]bool, n*k/2)
	norm := func(u, v int) pair {
		if u > v {
			u, v = v, u
		}
		return pair{u, v}
	}
	// Ring lattice.
	var lattice []pair
	for i := 0; i < n; i++ {
		for j := 1; j <= k/2; j++ {
			p := norm(i, (i+j)%n)
			if !exists[p] {
				exists[p] = true
				lattice = append(lattice, p)
			}
		}
	}
	// Rewire: for each lattice edge, with probability beta replace the far
	// endpoint with a uniform random node.
	for _, p := range lattice {
		u, v := p.u, p.v
		if src.Bool(beta) {
			// Try a few times to find a valid new endpoint.
			for attempt := 0; attempt < 8; attempt++ {
				w := src.IntN(n)
				if w == u || exists[norm(u, w)] {
					continue
				}
				delete(exists, norm(u, v))
				exists[norm(u, w)] = true
				v = w
				break
			}
		}
		fwd, rev := capFn()
		if _, err := g.AddEdge(graph.NodeID(u), graph.NodeID(v), fwd, rev); err != nil {
			return nil, err
		}
	}
	// Watts–Strogatz with k>=2 is connected with very high probability; if
	// rewiring disconnected it, stitch components back with extra channels.
	ensureConnected(src, g, capFn)
	return g, nil
}

// BarabasiAlbert generates a connected scale-free graph: start from a small
// clique of m0 = m+1 nodes, then attach each new node with m edges chosen by
// preferential attachment. This approximates the degree distribution the
// ROLL generator samples from.
func BarabasiAlbert(src *rng.Source, n, m int, capFn CapacityFunc) (*graph.Graph, error) {
	if m < 1 {
		return nil, fmt.Errorf("topology: m must be >= 1, got %d", m)
	}
	if n <= m {
		return nil, fmt.Errorf("topology: n must exceed m; got n=%d m=%d", n, m)
	}
	g := graph.New(n)
	// Repeated-endpoint list: a node appears once per incident edge, so
	// sampling uniformly from it is preferential attachment.
	var endpoints []int
	addEdge := func(u, v int) error {
		fwd, rev := capFn()
		if _, err := g.AddEdge(graph.NodeID(u), graph.NodeID(v), fwd, rev); err != nil {
			return err
		}
		endpoints = append(endpoints, u, v)
		return nil
	}
	// Seed clique on nodes 0..m.
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			if err := addEdge(u, v); err != nil {
				return nil, err
			}
		}
	}
	for u := m + 1; u < n; u++ {
		chosen := map[int]bool{}
		for len(chosen) < m {
			v := endpoints[src.IntN(len(endpoints))]
			if v == u || chosen[v] {
				continue
			}
			chosen[v] = true
		}
		for v := range chosen {
			if err := addEdge(u, v); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// ErdosRenyi generates a connected G(n, p) random graph: every unordered
// node pair gets a channel independently with probability p. The scenario
// engine offers it as the unstructured baseline next to the small-world and
// scale-free generators; ensureConnected stitches stray components so the
// result is always routable.
func ErdosRenyi(src *rng.Source, n int, p float64, capFn CapacityFunc) (*graph.Graph, error) {
	if n <= 1 {
		return nil, fmt.Errorf("topology: n must be >= 2, got %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("topology: p must be in [0,1], got %v", p)
	}
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !src.Bool(p) {
				continue
			}
			fwd, rev := capFn()
			if _, err := g.AddEdge(graph.NodeID(u), graph.NodeID(v), fwd, rev); err != nil {
				return nil, err
			}
		}
	}
	ensureConnected(src, g, capFn)
	return g, nil
}

// HierarchicalHubSpoke builds a two-tier hub hierarchy: `cores` top-level
// hubs form a ring backbone (plus random chords for path diversity, as in
// MultiStar), each core serves hubsPerCore mid-tier hubs, and each mid-tier
// hub serves clientsPerHub leaf clients. Node ids are laid out tier by tier
// — cores first, then hubs, then clients — and the returned slice lists the
// hub-tier nodes (cores + mid-tier hubs), e.g. as placement candidates or to
// exclude the infrastructure tier from a workload's client set.
//
// coreCapFn sizes core-core links, hubCapFn core-hub links, capFn the leaf
// channels; hierarchical deployments fund the backbone much more heavily
// than the edge.
func HierarchicalHubSpoke(src *rng.Source, cores, hubsPerCore, clientsPerHub int, coreCapFn, hubCapFn, capFn CapacityFunc) (*graph.Graph, []graph.NodeID, error) {
	if cores < 1 || hubsPerCore < 1 || clientsPerHub < 1 {
		return nil, nil, fmt.Errorf("topology: hub-spoke tiers must be >= 1, got cores=%d hubs/core=%d clients/hub=%d",
			cores, hubsPerCore, clientsPerHub)
	}
	numHubs := cores * hubsPerCore
	n := cores + numHubs + numHubs*clientsPerHub
	g := graph.New(n)
	// Core backbone: ring plus ~cores/2 random chords.
	for i := 0; i < cores; i++ {
		j := (i + 1) % cores
		if i == j || (cores == 2 && i > j) {
			continue
		}
		fwd, rev := coreCapFn()
		if _, err := g.AddEdge(graph.NodeID(i), graph.NodeID(j), fwd, rev); err != nil {
			return nil, nil, err
		}
	}
	for c := 0; c < cores/2; c++ {
		u, v := src.IntN(cores), src.IntN(cores)
		if u == v || g.HasEdgeBetween(graph.NodeID(u), graph.NodeID(v)) {
			continue
		}
		fwd, rev := coreCapFn()
		if _, err := g.AddEdge(graph.NodeID(u), graph.NodeID(v), fwd, rev); err != nil {
			return nil, nil, err
		}
	}
	// Mid tier: hub h attaches to its core, round-robin.
	for h := 0; h < numHubs; h++ {
		hub := graph.NodeID(cores + h)
		core := graph.NodeID(h % cores)
		fwd, rev := hubCapFn()
		if _, err := g.AddEdge(hub, core, fwd, rev); err != nil {
			return nil, nil, err
		}
	}
	// Leaves: client i attaches to hub i%numHubs.
	for i := 0; i < numHubs*clientsPerHub; i++ {
		client := graph.NodeID(cores + numHubs + i)
		hub := graph.NodeID(cores + i%numHubs)
		fwd, rev := capFn()
		if _, err := g.AddEdge(client, hub, fwd, rev); err != nil {
			return nil, nil, err
		}
	}
	hubTier := make([]graph.NodeID, cores+numHubs)
	for i := range hubTier {
		hubTier[i] = graph.NodeID(i)
	}
	return g, hubTier, nil
}

// Star builds the single-PCH topology of Fig. 2(a): node 0 is the hub, nodes
// 1..n-1 are clients each with one channel to the hub.
func Star(n int, capFn CapacityFunc) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: star needs >= 2 nodes, got %d", n)
	}
	g := graph.New(n)
	for i := 1; i < n; i++ {
		fwd, rev := capFn()
		if _, err := g.AddEdge(0, graph.NodeID(i), fwd, rev); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// MultiStar builds the multi-star topology of Fig. 2(b) and Definition 1:
// the first numHubs nodes are hubs forming a connected hub backbone (a ring
// plus random chords), and every remaining node is a client attached to one
// hub, assigned round-robin. hubCapFn sizes hub-to-hub channels (typically
// much larger), capFn sizes client channels.
func MultiStar(src *rng.Source, numHubs, numClients int, hubCapFn, capFn CapacityFunc) (*graph.Graph, []graph.NodeID, error) {
	if numHubs < 1 {
		return nil, nil, fmt.Errorf("topology: need >= 1 hub, got %d", numHubs)
	}
	if numClients < 1 {
		return nil, nil, fmt.Errorf("topology: need >= 1 client, got %d", numClients)
	}
	g := graph.New(numHubs + numClients)
	hubs := make([]graph.NodeID, numHubs)
	for i := range hubs {
		hubs[i] = graph.NodeID(i)
	}
	// Hub backbone: ring, plus ~numHubs/2 random chords for path diversity.
	if numHubs > 1 {
		for i := 0; i < numHubs; i++ {
			j := (i + 1) % numHubs
			if i == j || (numHubs == 2 && i > j) {
				continue
			}
			fwd, rev := hubCapFn()
			if _, err := g.AddEdge(hubs[i], hubs[j], fwd, rev); err != nil {
				return nil, nil, err
			}
		}
		for c := 0; c < numHubs/2; c++ {
			u, v := src.IntN(numHubs), src.IntN(numHubs)
			if u == v || g.HasEdgeBetween(hubs[u], hubs[v]) {
				continue
			}
			fwd, rev := hubCapFn()
			if _, err := g.AddEdge(hubs[u], hubs[v], fwd, rev); err != nil {
				return nil, nil, err
			}
		}
	}
	for i := 0; i < numClients; i++ {
		hub := hubs[i%numHubs]
		fwd, rev := capFn()
		if _, err := g.AddEdge(graph.NodeID(numHubs+i), hub, fwd, rev); err != nil {
			return nil, nil, err
		}
	}
	return g, hubs, nil
}

// ensureConnected adds channels between components until the graph is
// connected. Used as a safety net after random generation.
func ensureConnected(src *rng.Source, g *graph.Graph, capFn CapacityFunc) {
	n := g.NumNodes()
	if n <= 1 {
		return
	}
	for {
		dist := g.BFSHops(0)
		var orphan graph.NodeID = -1
		for i, d := range dist {
			if d < 0 {
				orphan = graph.NodeID(i)
				break
			}
		}
		if orphan < 0 {
			return
		}
		// Connect the orphan's component to a reachable node.
		var target graph.NodeID
		for {
			target = graph.NodeID(src.IntN(n))
			if dist[target] >= 0 {
				break
			}
		}
		fwd, rev := capFn()
		if _, err := g.AddEdge(orphan, target, fwd, rev); err != nil {
			// Only possible errors are self-loop/out-of-range, both
			// excluded by construction.
			panic(err)
		}
	}
}

// TopDegreeNodes returns the ids of the k highest-degree nodes, ties broken
// by lower id. The paper's candidate smooth nodes are the "better" nodes for
// outsourcing routing (more client connections, more funds); degree is the
// excellence proxy used when no vote data is available.
func TopDegreeNodes(g *graph.Graph, k int) []graph.NodeID {
	ids := make([]graph.NodeID, g.NumNodes())
	for i := range ids {
		ids[i] = graph.NodeID(i)
	}
	return TopDegreeNodesOf(g, ids, k)
}

// TopDegreeNodesOf is TopDegreeNodes restricted to an eligible subset (the
// dynamic-network layer excludes departed nodes and split-off components
// when re-running placement). The subset is reordered in place.
func TopDegreeNodesOf(g *graph.Graph, ids []graph.NodeID, k int) []graph.NodeID {
	n := len(ids)
	if k > n {
		k = n
	}
	// Selection by partial sort (n is small enough; keep it simple and
	// deterministic).
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			dj, db := g.Degree(ids[j]), g.Degree(ids[best])
			if dj > db || (dj == db && ids[j] < ids[best]) {
				best = j
			}
		}
		ids[i], ids[best] = ids[best], ids[i]
	}
	return ids[:k]
}

// TotalFunds returns the sum of both directions' capacities over all
// channels incident to u.
func TotalFunds(g *graph.Graph, u graph.NodeID) float64 {
	total := 0.0
	for _, eid := range g.Incident(u) {
		e := g.Edge(eid)
		total += e.CapFwd + e.CapRev
	}
	return total
}
