package topology

import (
	"bytes"
	"strings"
	"testing"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/rng"
)

func TestSnapshotRoundTrip(t *testing.T) {
	src := rng.New(11)
	g, err := WattsStrogatz(src, 40, 4, 0.25, UniformCapacity(100))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumLiveEdges() != g.NumLiveEdges() {
		t.Fatalf("round trip: %d nodes / %d edges, want %d / %d",
			got.NumNodes(), got.NumLiveEdges(), g.NumNodes(), g.NumLiveEdges())
	}
	for i := 0; i < g.NumEdges(); i++ {
		want, have := g.Edge(graph.EdgeID(i)), got.Edge(graph.EdgeID(i))
		if want.U != have.U || want.V != have.V || want.CapFwd != have.CapFwd || want.CapRev != have.CapRev {
			t.Fatalf("edge %d: got %+v, want %+v", i, have, want)
		}
	}
	// A second serialization is byte-identical (snapshots are canonical).
	var buf2 bytes.Buffer
	if err := WriteSnapshot(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("snapshot round trip is not canonical")
	}
}

func TestSnapshotSkipsRemovedEdges(t *testing.T) {
	g := graph.New(3)
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}, {0, 2}} {
		if _, err := g.AddEdge(e[0], e[1], 10, 10); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.RemoveEdge(1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != 2 {
		t.Fatalf("snapshot kept %d edges, want 2 (removed edge skipped)", got.NumEdges())
	}
}

func TestReadSnapshotRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"no header":    "0,1,5,5\n",
		"no channels":  "u,v,cap_fwd,cap_rev\n",
		"bad int":      "u,v,cap_fwd,cap_rev\nx,1,5,5\n",
		"self loop":    "u,v,cap_fwd,cap_rev\n2,2,5,5\n",
		"negative id":  "u,v,cap_fwd,cap_rev\n-1,1,5,5\n",
		"negative cap": "u,v,cap_fwd,cap_rev\n0,1,-5,5\n",
	}
	for name, in := range cases {
		if _, err := ReadSnapshot(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadSnapshot accepted malformed input", name)
		}
	}
}

func TestErdosRenyi(t *testing.T) {
	src := rng.New(7)
	g, err := ErdosRenyi(src, 60, 0.08, UniformCapacity(50))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 60 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if !g.Connected() {
		t.Fatal("ErdosRenyi graph not connected")
	}
	// Expected edge count ~ p*n*(n-1)/2 = 141.6; allow wide slack but catch
	// degenerate outputs (ensureConnected adds at most a few).
	if e := g.NumEdges(); e < 80 || e > 240 {
		t.Fatalf("edge count %d wildly off expectation ~142", e)
	}
	// Determinism.
	g2, err := ErdosRenyi(rng.New(7), 60, 0.08, UniformCapacity(50))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("same seed gave %d vs %d edges", g2.NumEdges(), g.NumEdges())
	}
	if _, err := ErdosRenyi(src, 1, 0.5, UniformCapacity(1)); err == nil {
		t.Fatal("accepted n=1")
	}
	if _, err := ErdosRenyi(src, 10, 1.5, UniformCapacity(1)); err == nil {
		t.Fatal("accepted p>1")
	}
}

func TestHierarchicalHubSpoke(t *testing.T) {
	src := rng.New(5)
	g, hubTier, err := HierarchicalHubSpoke(src, 3, 2, 5, UniformCapacity(1000), UniformCapacity(400), UniformCapacity(100))
	if err != nil {
		t.Fatal(err)
	}
	wantNodes := 3 + 6 + 30
	if g.NumNodes() != wantNodes {
		t.Fatalf("nodes = %d, want %d", g.NumNodes(), wantNodes)
	}
	if len(hubTier) != 9 {
		t.Fatalf("hub tier = %d, want 9", len(hubTier))
	}
	if !g.Connected() {
		t.Fatal("hub-spoke graph not connected")
	}
	// Leaves have degree exactly 1, onto a mid-tier hub.
	for i := 9; i < wantNodes; i++ {
		if d := g.Degree(graph.NodeID(i)); d != 1 {
			t.Fatalf("leaf %d degree %d, want 1", i, d)
		}
		e := g.Edge(g.Incident(graph.NodeID(i))[0])
		hub := e.Other(graph.NodeID(i))
		if hub < 3 || hub >= 9 {
			t.Fatalf("leaf %d attached to node %d, want a mid-tier hub in [3,9)", i, hub)
		}
	}
	if _, _, err := HierarchicalHubSpoke(src, 0, 1, 1, UniformCapacity(1), UniformCapacity(1), UniformCapacity(1)); err == nil {
		t.Fatal("accepted zero cores")
	}
}
