// Package voting implements the multiwinner election of the smooth-node
// candidate list (§III-B trust model): entities vote through a smart
// contract, and the tally balances the two properties the paper names —
// excellence (candidates that are "better" for outsourcing routing: more
// client connections, more funds, lower operational overhead) and diversity
// (candidate positions spread across the network).
//
// The paper leaves the optimal multiwinner rule to future work and cites
// Celis et al.; this package implements a greedy submodular-style rule:
// repeatedly pick the candidate maximizing excellence + diversity gain,
// which is the standard practical choice for this objective family.
package voting

import (
	"fmt"
	"sort"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/topology"
)

// Candidate is one node standing for the smooth-node list.
type Candidate struct {
	Node graph.NodeID
	// Excellence components.
	Connections int     // client connections (degree)
	Funds       float64 // total channel funds
	Overhead    float64 // operational overhead (lower is better)
	// Votes from the community ballot.
	Votes float64
}

// Ballot is one entity's approval vote: a set of candidates with weights.
type Ballot map[graph.NodeID]float64

// Config tunes the election.
type Config struct {
	// Winners is the size of the candidate list to elect.
	Winners int
	// DiversityWeight trades excellence against position diversity.
	DiversityWeight float64
	// Hops provides pairwise distances for the diversity term.
	Hops [][]int
}

// CandidatesFromGraph derives candidate records for the top-degree nodes.
func CandidatesFromGraph(g *graph.Graph, howMany int) []Candidate {
	nodes := topology.TopDegreeNodes(g, howMany)
	cands := make([]Candidate, len(nodes))
	for i, v := range nodes {
		cands[i] = Candidate{
			Node:        v,
			Connections: g.Degree(v),
			Funds:       topology.TotalFunds(g, v),
			// Overhead proxy: nodes with more channels to maintain pay more;
			// normalized later.
			Overhead: float64(g.Degree(v)) * 0.01,
		}
	}
	return cands
}

// Tally applies ballots to the candidates (votes accumulate).
func Tally(cands []Candidate, ballots []Ballot) []Candidate {
	out := append([]Candidate(nil), cands...)
	idx := map[graph.NodeID]int{}
	for i, c := range out {
		idx[c.Node] = i
	}
	for _, b := range ballots {
		for node, w := range b {
			if i, ok := idx[node]; ok && w > 0 {
				out[i].Votes += w
			}
		}
	}
	return out
}

// excellence is a normalized score in [0, ~3]: votes, connections and funds
// help; overhead hurts.
func excellence(c Candidate, maxVotes float64, maxConn int, maxFunds, maxOver float64) float64 {
	score := 0.0
	if maxVotes > 0 {
		score += c.Votes / maxVotes
	}
	if maxConn > 0 {
		score += float64(c.Connections) / float64(maxConn)
	}
	if maxFunds > 0 {
		score += c.Funds / maxFunds
	}
	if maxOver > 0 {
		score -= 0.5 * c.Overhead / maxOver
	}
	return score
}

// Elect runs the greedy excellence+diversity selection and returns the
// winning candidates in election order.
func Elect(cands []Candidate, cfg Config) ([]Candidate, error) {
	if cfg.Winners <= 0 {
		return nil, fmt.Errorf("voting: winners must be positive, got %d", cfg.Winners)
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("voting: no candidates")
	}
	if cfg.Winners > len(cands) {
		cfg.Winners = len(cands)
	}
	var maxVotes, maxFunds, maxOver float64
	maxConn := 0
	for _, c := range cands {
		if c.Votes > maxVotes {
			maxVotes = c.Votes
		}
		if c.Connections > maxConn {
			maxConn = c.Connections
		}
		if c.Funds > maxFunds {
			maxFunds = c.Funds
		}
		if c.Overhead > maxOver {
			maxOver = c.Overhead
		}
	}
	// Diversity gain of adding candidate c to set S: min hop distance to S
	// (farther = more diverse), normalized by the max pairwise distance.
	maxHop := 1
	if cfg.Hops != nil {
		for _, row := range cfg.Hops {
			for _, h := range row {
				if h > maxHop {
					maxHop = h
				}
			}
		}
	}
	diversity := func(c Candidate, chosen []Candidate) float64 {
		if cfg.Hops == nil || len(chosen) == 0 {
			return 0
		}
		minHop := maxHop
		for _, s := range chosen {
			h := cfg.Hops[c.Node][s.Node]
			if h >= 0 && h < minHop {
				minHop = h
			}
		}
		return float64(minHop) / float64(maxHop)
	}

	remaining := append([]Candidate(nil), cands...)
	// Deterministic base order.
	sort.Slice(remaining, func(i, j int) bool { return remaining[i].Node < remaining[j].Node })
	var chosen []Candidate
	for len(chosen) < cfg.Winners {
		best, bestScore := -1, 0.0
		for i, c := range remaining {
			score := excellence(c, maxVotes, maxConn, maxFunds, maxOver) +
				cfg.DiversityWeight*diversity(c, chosen)
			if best == -1 || score > bestScore {
				best, bestScore = i, score
			}
		}
		chosen = append(chosen, remaining[best])
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	return chosen, nil
}
