package voting

import (
	"testing"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/rng"
	"github.com/splicer-pcn/splicer/internal/topology"
)

func testCandidates(t *testing.T) ([]Candidate, *graph.Graph) {
	t.Helper()
	g, err := topology.WattsStrogatz(rng.New(3), 40, 4, 0.3, topology.UniformCapacity(50))
	if err != nil {
		t.Fatal(err)
	}
	return CandidatesFromGraph(g, 10), g
}

func TestCandidatesFromGraph(t *testing.T) {
	cands, g := testCandidates(t)
	if len(cands) != 10 {
		t.Fatalf("got %d candidates", len(cands))
	}
	for _, c := range cands {
		if c.Connections != g.Degree(c.Node) {
			t.Fatalf("connections mismatch for %d", c.Node)
		}
		if c.Funds <= 0 {
			t.Fatalf("candidate %d has no funds", c.Node)
		}
	}
}

func TestTallyAccumulates(t *testing.T) {
	cands, _ := testCandidates(t)
	ballots := []Ballot{
		{cands[0].Node: 2, cands[1].Node: 1},
		{cands[0].Node: 3},
		{graph.NodeID(9999): 5}, // unknown candidate ignored
	}
	out := Tally(cands, ballots)
	if out[0].Votes != 5 || out[1].Votes != 1 {
		t.Fatalf("votes: %v, %v", out[0].Votes, out[1].Votes)
	}
	// Original slice untouched.
	if cands[0].Votes != 0 {
		t.Fatal("Tally mutated input")
	}
}

func TestElectValidation(t *testing.T) {
	cands, _ := testCandidates(t)
	if _, err := Elect(cands, Config{Winners: 0}); err == nil {
		t.Fatal("zero winners accepted")
	}
	if _, err := Elect(nil, Config{Winners: 3}); err == nil {
		t.Fatal("empty candidates accepted")
	}
}

func TestElectRespectsVotes(t *testing.T) {
	cands, _ := testCandidates(t)
	// Give overwhelming votes to the last candidate.
	cands[len(cands)-1].Votes = 1000
	winners, err := Elect(cands, Config{Winners: 1})
	if err != nil {
		t.Fatal(err)
	}
	if winners[0].Node != cands[len(cands)-1].Node {
		t.Fatalf("winner %d, want most-voted %d", winners[0].Node, cands[len(cands)-1].Node)
	}
}

func TestElectClampsWinners(t *testing.T) {
	cands, _ := testCandidates(t)
	winners, err := Elect(cands, Config{Winners: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(winners) != len(cands) {
		t.Fatalf("got %d winners", len(winners))
	}
}

func TestElectDiversitySpreads(t *testing.T) {
	// Line graph: nodes 0..9. Candidates at 0,1,8,9 with equal excellence.
	g := graph.New(10)
	for i := 0; i < 9; i++ {
		if _, err := g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 10, 10); err != nil {
			t.Fatal(err)
		}
	}
	cands := []Candidate{
		{Node: 0, Connections: 1, Funds: 10},
		{Node: 1, Connections: 1, Funds: 10},
		{Node: 8, Connections: 1, Funds: 10},
		{Node: 9, Connections: 1, Funds: 10},
	}
	hops := g.AllPairsHops()
	winners, err := Elect(cands, Config{Winners: 2, DiversityWeight: 5, Hops: hops})
	if err != nil {
		t.Fatal(err)
	}
	// The two winners must not be adjacent (0,1 or 8,9 pairs rejected).
	d := hops[winners[0].Node][winners[1].Node]
	if d < 7 {
		t.Fatalf("winners %d and %d too close (%d hops) despite diversity weight",
			winners[0].Node, winners[1].Node, d)
	}
}

func TestElectDeterministic(t *testing.T) {
	cands, g := testCandidates(t)
	hops := g.AllPairsHops()
	w1, err := Elect(cands, Config{Winners: 4, DiversityWeight: 1, Hops: hops})
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Elect(cands, Config{Winners: 4, DiversityWeight: 1, Hops: hops})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w1 {
		if w1[i].Node != w2[i].Node {
			t.Fatal("election not deterministic")
		}
	}
}
