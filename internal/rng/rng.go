// Package rng provides deterministic random number generation and the
// statistical distributions used throughout the Splicer simulator.
//
// Every stochastic component of the simulator (topology generation, workload
// synthesis, randomized placement) draws from an *rng.Source seeded
// explicitly, so that experiments are reproducible run-to-run and
// machine-to-machine. Sources are splittable: deriving independent child
// streams for sub-components avoids accidental cross-coupling when one
// component changes how many variates it consumes.
package rng

import (
	"math"
	"math/rand/v2"
)

// Source is a deterministic random source with distribution helpers.
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with the given seed. Two Sources created with
// the same seed produce identical streams.
func New(seed uint64) *Source {
	return &Source{r: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Split derives an independent child stream. The child is a pure function of
// the parent seed and the label, so callers can re-create it without
// consuming parent state.
func (s *Source) Split(label uint64) *Source {
	// Mix the label through splitmix64 so that consecutive labels give
	// decorrelated seeds.
	z := label + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	hi := s.r.Uint64()
	return &Source{r: rand.New(rand.NewPCG(hi^z, z))}
}

// Float64 returns a uniform variate in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// IntN returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) IntN(n int) int { return s.r.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (s *Source) Uint64() uint64 { return s.r.Uint64() }

// NormFloat64 returns a standard normal variate.
func (s *Source) NormFloat64() float64 { return s.r.NormFloat64() }

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.r.Float64() < p }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle pseudo-randomizes the order of elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Exponential returns an exponential variate with the given rate (λ).
// The mean of the distribution is 1/rate. It panics if rate <= 0.
func (s *Source) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential rate must be positive")
	}
	return s.r.ExpFloat64() / rate
}

// LogNormal returns a log-normal variate with the given parameters of the
// underlying normal (mu, sigma).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.r.NormFloat64())
}

// Pareto returns a Pareto (type I) variate with minimum xm and shape alpha.
func (s *Source) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("rng: Pareto parameters must be positive")
	}
	u := 1 - s.r.Float64() // in (0, 1]
	return xm / math.Pow(u, 1/alpha)
}

// Poisson returns a Poisson variate with the given mean. For large means it
// uses the normal approximation, which is accurate enough for workload
// arrival counts.
func (s *Source) Poisson(mean float64) int {
	if mean < 0 {
		panic("rng: Poisson mean must be non-negative")
	}
	if mean == 0 {
		return 0
	}
	if mean > 500 {
		v := mean + math.Sqrt(mean)*s.r.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	// Knuth's algorithm.
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Zipf draws integers in [0, n) with probability proportional to
// 1/(rank+1)^skew. A skew of 0 is uniform.
type Zipf struct {
	cum []float64 // cumulative weights, normalized
	src *Source
}

// NewZipf builds a Zipf sampler over n elements with the given skew.
// It panics if n <= 0 or skew < 0.
func NewZipf(src *Source, n int, skew float64) *Zipf {
	if n <= 0 {
		panic("rng: Zipf n must be positive")
	}
	if skew < 0 {
		panic("rng: Zipf skew must be non-negative")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), skew)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum, src: src}
}

// Next returns the next Zipf-distributed rank in [0, n).
func (z *Zipf) Next() int {
	u := z.src.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the number of ranks the sampler draws from.
func (z *Zipf) N() int { return len(z.cum) }
