package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	same := 0
	for i := 0; i < 256; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("child streams look identical: %d collisions out of 256", same)
	}
}

func TestSplitReproducible(t *testing.T) {
	// Splitting with the same label from identically-seeded parents in the
	// same consumption state must give identical children.
	p1, p2 := New(9), New(9)
	c1, c2 := p1.Split(5), p2.Split(5)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("split children differ for identical parent state")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(1)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(3)
	const rate = 2.0
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exponential(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("exponential mean = %v, want ~%v", mean, 1/rate)
	}
}

func TestExponentialPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rate <= 0")
		}
	}()
	New(1).Exponential(0)
}

func TestLogNormalMedian(t *testing.T) {
	s := New(11)
	const mu, sigma = 5.0, 1.2
	const n = 100000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = s.LogNormal(mu, sigma)
	}
	// Median of a log-normal is exp(mu); check via counting.
	below := 0
	med := math.Exp(mu)
	for _, v := range vals {
		if v < med {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("fraction below exp(mu) = %v, want ~0.5", frac)
	}
}

func TestParetoMinimumAndTail(t *testing.T) {
	s := New(13)
	const xm, alpha = 4.0, 1.5
	for i := 0; i < 10000; i++ {
		v := s.Pareto(xm, alpha)
		if v < xm {
			t.Fatalf("Pareto variate %v below minimum %v", v, xm)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(17)
	for _, mean := range []float64{0.5, 4, 40, 800} {
		const n = 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += s.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Fatalf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	if got := New(1).Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
}

func TestZipfUniformWhenSkewZero(t *testing.T) {
	s := New(19)
	z := NewZipf(s, 10, 0)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for r, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("rank %d frequency %v, want ~0.1", r, frac)
		}
	}
}

func TestZipfSkewFavorsLowRanks(t *testing.T) {
	s := New(23)
	z := NewZipf(s, 100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("rank 0 count %d not greater than rank 50 count %d", counts[0], counts[50])
	}
	if counts[0] <= counts[99] {
		t.Fatalf("rank 0 count %d not greater than rank 99 count %d", counts[0], counts[99])
	}
}

func TestZipfRangeProperty(t *testing.T) {
	s := New(29)
	f := func(seed uint64, nRaw uint8, skewRaw uint8) bool {
		n := int(nRaw)%50 + 1
		skew := float64(skewRaw) / 64.0
		z := NewZipf(s.Split(seed), n, skew)
		for i := 0; i < 100; i++ {
			r := z.Next()
			if r < 0 || r >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(31)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(37)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %v", frac)
	}
}
