// Package ledger is a minimal on-chain substrate for Splicer: an
// account-based blockchain carrying the operations the paper puts on-chain —
// channel funding and closing, hub access deposits to the public pool, and
// deposit confiscation when a malicious PCH is removed (§III-B). Blocks are
// produced on demand; a transaction is final after ConfirmDepth blocks.
package ledger

import (
	"fmt"
	"sort"
)

// AccountID identifies an on-chain account.
type AccountID string

// ChannelID identifies a funded payment channel on-chain.
type ChannelID int

// ConfirmDepth is the number of blocks after inclusion at which a
// transaction is considered final.
const ConfirmDepth = 6

// TxKind enumerates on-chain operation types.
type TxKind int

// On-chain operation kinds.
const (
	TxTransfer TxKind = iota + 1
	TxOpenChannel
	TxCloseChannel
	TxDeposit
	TxSlash
)

// Tx is one on-chain transaction.
type Tx struct {
	Kind    TxKind
	From    AccountID
	To      AccountID
	Amount  float64 // Transfer/Deposit/Slash value, or From-side funding
	Amount2 float64 // To-side funding for OpenChannel
	Channel ChannelID
	Height  int64 // block height of inclusion (set by the ledger)
}

// channelState tracks a funded channel.
type channelState struct {
	a, b             AccountID
	fundsA, fundsB   float64
	open             bool
	openedAt, closed int64
}

// Ledger is the chain state. It is not safe for concurrent use; the
// simulator serializes access.
type Ledger struct {
	height   int64
	balances map[AccountID]float64
	channels map[ChannelID]*channelState
	deposits map[AccountID]float64 // hub access deposits in the public pool
	pool     float64               // confiscated funds
	nextChan ChannelID
	pending  []Tx
	history  []Tx
}

// New creates an empty ledger at height 0.
func New() *Ledger {
	return &Ledger{
		balances: map[AccountID]float64{},
		channels: map[ChannelID]*channelState{},
		deposits: map[AccountID]float64{},
	}
}

// Height returns the current block height.
func (l *Ledger) Height() int64 { return l.height }

// Mint credits new funds to an account (test/bootstrap faucet).
func (l *Ledger) Mint(acct AccountID, amount float64) error {
	if amount <= 0 {
		return fmt.Errorf("ledger: mint amount must be positive")
	}
	l.balances[acct] += amount
	return nil
}

// Balance returns the on-chain balance of acct.
func (l *Ledger) Balance(acct AccountID) float64 { return l.balances[acct] }

// Deposit returns the hub access deposit currently pledged by acct.
func (l *Ledger) Deposit(acct AccountID) float64 { return l.deposits[acct] }

// ConfiscatedPool returns the total of slashed deposits.
func (l *Ledger) ConfiscatedPool() float64 { return l.pool }

// Submit queues a transaction for inclusion in the next block. Validity is
// checked at inclusion time against the then-current state.
func (l *Ledger) Submit(tx Tx) {
	l.pending = append(l.pending, tx)
}

// ProduceBlock applies all pending transactions in submission order and
// advances the height. It returns the included transactions and any
// per-transaction rejection errors (rejected txs are dropped, as a real
// chain would drop invalid transactions at validation).
func (l *Ledger) ProduceBlock() (included []Tx, rejected []error) {
	l.height++
	for _, tx := range l.pending {
		if err := l.apply(&tx); err != nil {
			rejected = append(rejected, fmt.Errorf("ledger: height %d: %w", l.height, err))
			continue
		}
		tx.Height = l.height
		l.history = append(l.history, tx)
		included = append(included, tx)
	}
	l.pending = nil
	return included, rejected
}

func (l *Ledger) apply(tx *Tx) error {
	switch tx.Kind {
	case TxTransfer:
		if tx.Amount <= 0 {
			return fmt.Errorf("transfer amount must be positive")
		}
		if l.balances[tx.From] < tx.Amount {
			return fmt.Errorf("insufficient balance: %s has %v, needs %v", tx.From, l.balances[tx.From], tx.Amount)
		}
		l.balances[tx.From] -= tx.Amount
		l.balances[tx.To] += tx.Amount
	case TxOpenChannel:
		if tx.Amount < 0 || tx.Amount2 < 0 || tx.Amount+tx.Amount2 <= 0 {
			return fmt.Errorf("channel funding must be positive")
		}
		if l.balances[tx.From] < tx.Amount {
			return fmt.Errorf("insufficient funding balance for %s", tx.From)
		}
		if l.balances[tx.To] < tx.Amount2 {
			return fmt.Errorf("insufficient funding balance for %s", tx.To)
		}
		l.balances[tx.From] -= tx.Amount
		l.balances[tx.To] -= tx.Amount2
		id := l.nextChan
		l.nextChan++
		l.channels[id] = &channelState{
			a: tx.From, b: tx.To,
			fundsA: tx.Amount, fundsB: tx.Amount2,
			open: true, openedAt: l.height,
		}
		tx.Channel = id
	case TxCloseChannel:
		ch, ok := l.channels[tx.Channel]
		if !ok || !ch.open {
			return fmt.Errorf("channel %d not open", tx.Channel)
		}
		if tx.From != ch.a && tx.From != ch.b {
			return fmt.Errorf("%s is not a party to channel %d", tx.From, tx.Channel)
		}
		// Amount / Amount2 carry the final settled split; they must
		// conserve the channel's total funds.
		total := ch.fundsA + ch.fundsB
		if diff := tx.Amount + tx.Amount2 - total; diff > 1e-9 || diff < -1e-9 {
			return fmt.Errorf("close split %v+%v does not conserve channel total %v", tx.Amount, tx.Amount2, total)
		}
		ch.open = false
		ch.closed = l.height
		l.balances[ch.a] += tx.Amount
		l.balances[ch.b] += tx.Amount2
	case TxDeposit:
		if tx.Amount <= 0 {
			return fmt.Errorf("deposit must be positive")
		}
		if l.balances[tx.From] < tx.Amount {
			return fmt.Errorf("insufficient balance for deposit")
		}
		l.balances[tx.From] -= tx.Amount
		l.deposits[tx.From] += tx.Amount
	case TxSlash:
		// Confiscate the target's entire deposit into the public pool
		// (the punishment for malicious PCHs; "the loss is greater than
		// the profit").
		d := l.deposits[tx.To]
		if d <= 0 {
			return fmt.Errorf("no deposit to slash for %s", tx.To)
		}
		l.deposits[tx.To] = 0
		l.pool += d
	default:
		return fmt.Errorf("unknown tx kind %d", tx.Kind)
	}
	return nil
}

// Channel returns the channel's parties, per-side funds and open state.
func (l *Ledger) Channel(id ChannelID) (a, b AccountID, fundsA, fundsB float64, open bool, err error) {
	ch, ok := l.channels[id]
	if !ok {
		return "", "", 0, 0, false, fmt.Errorf("ledger: unknown channel %d", id)
	}
	return ch.a, ch.b, ch.fundsA, ch.fundsB, ch.open, nil
}

// Confirmed reports whether a transaction included at the given height is
// final at the current height.
func (l *Ledger) Confirmed(inclusionHeight int64) bool {
	return l.height-inclusionHeight >= ConfirmDepth
}

// TotalSupply sums balances, channel funds, deposits and the confiscated
// pool — conserved across all operations except Mint.
func (l *Ledger) TotalSupply() float64 {
	total := l.pool
	for _, b := range l.balances {
		total += b
	}
	for _, ch := range l.channels {
		if ch.open {
			total += ch.fundsA + ch.fundsB
		}
	}
	for _, d := range l.deposits {
		total += d
	}
	return total
}

// History returns the confirmed transactions in inclusion order.
func (l *Ledger) History() []Tx {
	return append([]Tx(nil), l.history...)
}

// OpenChannels lists ids of currently open channels in ascending order.
func (l *Ledger) OpenChannels() []ChannelID {
	var ids []ChannelID
	for id, ch := range l.channels {
		if ch.open {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
