package ledger

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/splicer-pcn/splicer/internal/rng"
)

func mint(t *testing.T, l *Ledger, acct AccountID, amt float64) {
	t.Helper()
	if err := l.Mint(acct, amt); err != nil {
		t.Fatal(err)
	}
}

func produceOK(t *testing.T, l *Ledger) []Tx {
	t.Helper()
	inc, rej := l.ProduceBlock()
	if len(rej) != 0 {
		t.Fatalf("rejected: %v", rej)
	}
	return inc
}

func TestMintAndTransfer(t *testing.T) {
	l := New()
	mint(t, l, "alice", 100)
	l.Submit(Tx{Kind: TxTransfer, From: "alice", To: "bob", Amount: 30})
	produceOK(t, l)
	if l.Balance("alice") != 70 || l.Balance("bob") != 30 {
		t.Fatalf("balances: alice=%v bob=%v", l.Balance("alice"), l.Balance("bob"))
	}
	if l.Height() != 1 {
		t.Fatalf("height = %d", l.Height())
	}
}

func TestMintValidation(t *testing.T) {
	l := New()
	if err := l.Mint("x", 0); err == nil {
		t.Fatal("expected error for zero mint")
	}
}

func TestOverdraftRejected(t *testing.T) {
	l := New()
	mint(t, l, "alice", 10)
	l.Submit(Tx{Kind: TxTransfer, From: "alice", To: "bob", Amount: 30})
	inc, rej := l.ProduceBlock()
	if len(inc) != 0 || len(rej) != 1 {
		t.Fatalf("included=%d rejected=%d", len(inc), len(rej))
	}
	if l.Balance("alice") != 10 {
		t.Fatal("rejected tx mutated state")
	}
}

func TestChannelLifecycle(t *testing.T) {
	l := New()
	mint(t, l, "alice", 100)
	mint(t, l, "bob", 100)
	l.Submit(Tx{Kind: TxOpenChannel, From: "alice", To: "bob", Amount: 40, Amount2: 60})
	inc := produceOK(t, l)
	id := inc[0].Channel
	a, b, fa, fb, open, err := l.Channel(id)
	if err != nil {
		t.Fatal(err)
	}
	if a != "alice" || b != "bob" || fa != 40 || fb != 60 || !open {
		t.Fatalf("channel: %v %v %v %v %v", a, b, fa, fb, open)
	}
	if l.Balance("alice") != 60 || l.Balance("bob") != 40 {
		t.Fatal("funding not debited")
	}
	// Close with a different split (off-chain payments moved 10 a→b).
	l.Submit(Tx{Kind: TxCloseChannel, From: "alice", Channel: id, Amount: 30, Amount2: 70})
	produceOK(t, l)
	if l.Balance("alice") != 90 || l.Balance("bob") != 110 {
		t.Fatalf("post-close balances: %v %v", l.Balance("alice"), l.Balance("bob"))
	}
	if ids := l.OpenChannels(); len(ids) != 0 {
		t.Fatalf("open channels after close: %v", ids)
	}
}

func TestCloseValidation(t *testing.T) {
	l := New()
	mint(t, l, "a", 50)
	mint(t, l, "b", 50)
	l.Submit(Tx{Kind: TxOpenChannel, From: "a", To: "b", Amount: 20, Amount2: 20})
	inc := produceOK(t, l)
	id := inc[0].Channel

	// Non-party close.
	l.Submit(Tx{Kind: TxCloseChannel, From: "mallory", Channel: id, Amount: 20, Amount2: 20})
	if _, rej := l.ProduceBlock(); len(rej) != 1 {
		t.Fatal("non-party close accepted")
	}
	// Non-conserving split.
	l.Submit(Tx{Kind: TxCloseChannel, From: "a", Channel: id, Amount: 100, Amount2: 100})
	if _, rej := l.ProduceBlock(); len(rej) != 1 {
		t.Fatal("inflationary close accepted")
	}
	// Unknown channel.
	l.Submit(Tx{Kind: TxCloseChannel, From: "a", Channel: 999, Amount: 0, Amount2: 0})
	if _, rej := l.ProduceBlock(); len(rej) != 1 {
		t.Fatal("unknown channel close accepted")
	}
	// Proper close, then double close.
	l.Submit(Tx{Kind: TxCloseChannel, From: "a", Channel: id, Amount: 20, Amount2: 20})
	produceOK(t, l)
	l.Submit(Tx{Kind: TxCloseChannel, From: "a", Channel: id, Amount: 20, Amount2: 20})
	if _, rej := l.ProduceBlock(); len(rej) != 1 {
		t.Fatal("double close accepted")
	}
}

func TestDepositAndSlash(t *testing.T) {
	l := New()
	mint(t, l, "hub", 500)
	l.Submit(Tx{Kind: TxDeposit, From: "hub", Amount: 200})
	produceOK(t, l)
	if l.Deposit("hub") != 200 || l.Balance("hub") != 300 {
		t.Fatalf("deposit=%v balance=%v", l.Deposit("hub"), l.Balance("hub"))
	}
	l.Submit(Tx{Kind: TxSlash, To: "hub"})
	produceOK(t, l)
	if l.Deposit("hub") != 0 || l.ConfiscatedPool() != 200 {
		t.Fatalf("slash failed: deposit=%v pool=%v", l.Deposit("hub"), l.ConfiscatedPool())
	}
	// Slash with no deposit rejected.
	l.Submit(Tx{Kind: TxSlash, To: "hub"})
	if _, rej := l.ProduceBlock(); len(rej) != 1 {
		t.Fatal("empty slash accepted")
	}
}

func TestConfirmationDepth(t *testing.T) {
	l := New()
	mint(t, l, "a", 10)
	l.Submit(Tx{Kind: TxTransfer, From: "a", To: "b", Amount: 1})
	inc := produceOK(t, l)
	h := inc[0].Height
	if l.Confirmed(h) {
		t.Fatal("confirmed immediately")
	}
	for i := 0; i < ConfirmDepth; i++ {
		produceOK(t, l)
	}
	if !l.Confirmed(h) {
		t.Fatal("not confirmed after ConfirmDepth blocks")
	}
}

func TestTotalSupplyConservation(t *testing.T) {
	l := New()
	mint(t, l, "a", 1000)
	mint(t, l, "b", 1000)
	start := l.TotalSupply()
	l.Submit(Tx{Kind: TxTransfer, From: "a", To: "b", Amount: 100})
	l.Submit(Tx{Kind: TxOpenChannel, From: "a", To: "b", Amount: 200, Amount2: 300})
	l.Submit(Tx{Kind: TxDeposit, From: "b", Amount: 150})
	produceOK(t, l)
	l.Submit(Tx{Kind: TxSlash, To: "b"})
	produceOK(t, l)
	if math.Abs(l.TotalSupply()-start) > 1e-9 {
		t.Fatalf("supply changed: %v -> %v", start, l.TotalSupply())
	}
}

func TestPropertySupplyConserved(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		l := New()
		accounts := []AccountID{"a", "b", "c", "d"}
		for _, a := range accounts {
			if err := l.Mint(a, 1000); err != nil {
				return false
			}
		}
		start := l.TotalSupply()
		var openIDs []ChannelID
		for step := 0; step < 30; step++ {
			from := accounts[src.IntN(len(accounts))]
			to := accounts[src.IntN(len(accounts))]
			switch src.IntN(5) {
			case 0:
				l.Submit(Tx{Kind: TxTransfer, From: from, To: to, Amount: float64(src.IntN(200) + 1)})
			case 1:
				l.Submit(Tx{Kind: TxOpenChannel, From: from, To: to,
					Amount: float64(src.IntN(100) + 1), Amount2: float64(src.IntN(100) + 1)})
			case 2:
				if len(openIDs) > 0 {
					id := openIDs[src.IntN(len(openIDs))]
					a, _, fa, fb, open, err := l.Channel(id)
					if err == nil && open {
						l.Submit(Tx{Kind: TxCloseChannel, From: a, Channel: id, Amount: fa + fb, Amount2: 0})
					}
				}
			case 3:
				l.Submit(Tx{Kind: TxDeposit, From: from, Amount: float64(src.IntN(100) + 1)})
			case 4:
				l.Submit(Tx{Kind: TxSlash, To: to})
			}
			inc, _ := l.ProduceBlock()
			for _, tx := range inc {
				if tx.Kind == TxOpenChannel {
					openIDs = append(openIDs, tx.Channel)
				}
			}
			if math.Abs(l.TotalSupply()-start) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryOrder(t *testing.T) {
	l := New()
	mint(t, l, "a", 100)
	l.Submit(Tx{Kind: TxTransfer, From: "a", To: "b", Amount: 1})
	l.Submit(Tx{Kind: TxTransfer, From: "a", To: "b", Amount: 2})
	produceOK(t, l)
	h := l.History()
	if len(h) != 2 || h[0].Amount != 1 || h[1].Amount != 2 {
		t.Fatalf("history: %+v", h)
	}
}

func TestUnknownTxKind(t *testing.T) {
	l := New()
	l.Submit(Tx{Kind: TxKind(99)})
	if _, rej := l.ProduceBlock(); len(rej) != 1 {
		t.Fatal("unknown kind accepted")
	}
}
