package scenario

import (
	"fmt"
	"testing"

	"github.com/splicer-pcn/splicer/internal/pcn"
)

// trimmedAttack returns a cheap variant of a registered attack scenario.
func trimmedAttack(t *testing.T, name string) Spec {
	t.Helper()
	e, ok := Lookup(name)
	if !ok {
		t.Fatalf("registry is missing %q", name)
	}
	s := e.Base
	s.Topology.Nodes = 50
	s.Workload.Rate = 30
	s.Workload.Duration = 2
	s.Routing.HubCandidates = 6
	s.Attack.Start = 0.5
	if s.Attack.Duration > 1 {
		s.Attack.Duration = 1
	}
	if s.Attack.RecoverAfter > 1 {
		s.Attack.RecoverAfter = 1
	}
	return s
}

// TestAttackPanelSmoke runs a trimmed variant of each attack scenario
// through the panel runner and checks determinism across worker counts —
// the worker-invariance contract the resilience panel inherits from the
// sweep engine. Conservation is asserted inside every cell by RunScheme.
func TestAttackPanelSmoke(t *testing.T) {
	grids := map[string][]float64{
		"jamming":     {0, 20},
		"flash-crowd": {1, 15},
		"hub-outage":  {0, 2},
	}
	for name, grid := range grids {
		t.Run(name, func(t *testing.T) {
			base := trimmedAttack(t, name)
			run := func(workers int) string {
				tsr, delay, err := RunAttackPanel(base, grid, []string{"Splicer", "ShortestPath"}, RunOptions{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				return fmt.Sprintf("%v %v", tsr, delay)
			}
			serial := run(1)
			if parallel := run(8); parallel != serial {
				t.Fatalf("8-worker attack panel diverged from serial:\nserial:\n%s\nparallel:\n%s", serial, parallel)
			}
		})
	}
}

// TestAttackStaticPath pins the trace-replay composition: a spec with an
// attack block and no dynamics block runs through the decomposed static
// path (extended horizon, same engine) and conserves funds.
func TestAttackStaticPath(t *testing.T) {
	s := trimmedAttack(t, "jamming")
	s.Dynamics = nil
	s.Workload.CirculationFraction = 0.25
	s.Attack.Intensity = 25
	res, err := s.RunScheme(pcn.SchemeSplicer)
	if err != nil {
		t.Fatal(err)
	}
	if res.AdversarialGenerated == 0 {
		t.Fatal("static attack run scheduled no adversarial payments")
	}
	if res.HeldTUs == 0 {
		t.Fatal("static attack run held no TUs")
	}
	// The same spec minus its attack block reproduces the unattacked cell:
	// Split(5) is drawn only when an attack is armed.
	clean := s
	clean.Attack = nil
	resClean, err := clean.RunScheme(pcn.SchemeSplicer)
	if err != nil {
		t.Fatal(err)
	}
	if resClean.AdversarialGenerated != 0 || resClean.HeldTUs != 0 {
		t.Fatalf("unattacked cell reports attack activity: %+v", resClean)
	}
	if res.Generated != resClean.Generated {
		t.Fatalf("honest Generated differs with/without attack: %d vs %d", res.Generated, resClean.Generated)
	}
}

// TestAttackSpecValidation pins the spec-level attack checks.
func TestAttackSpecValidation(t *testing.T) {
	s := JammingSpec()
	if err := s.Validate(); err != nil {
		t.Fatalf("registered jamming spec invalid: %v", err)
	}
	bad := s
	bad.Attack = &AttackSpec{Type: "ddos"}
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown attack type accepted")
	}
	bad = s
	bad.Attack = &AttackSpec{Type: "jamming", Intensity: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative intensity accepted")
	}
	bad = ReplaySnapshotSpec()
	bad.Attack = &AttackSpec{Type: "jamming"}
	if err := bad.Validate(); err == nil {
		t.Fatal("attack on a replay workload accepted")
	}
	bad = s
	bad.Routing.MaxInFlightTUs = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative max_in_flight_tus accepted")
	}
	if _, err := s.withParam("attack_intensity", 10); err != nil {
		t.Fatal(err)
	}
	noAttack := SmallSpec()
	if _, err := noAttack.withParam("attack_intensity", 10); err == nil {
		t.Fatal("attack_intensity sweep without an attack block accepted")
	}
}
