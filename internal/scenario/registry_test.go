package scenario

import (
	"fmt"
	"strings"
	"testing"
)

// TestRegistryCompleteness pins that every historical figure/table id is
// registered — cmd/scenarios must be able to reproduce the full evaluation.
func TestRegistryCompleteness(t *testing.T) {
	want := []string{
		"fig7a", "fig7b", "fig7c", "fig7d",
		"fig8a", "fig8b", "fig8c", "fig8d",
		"fig9a", "fig9b", "fig9c", "fig9d", "fig9e", "fig9f",
		"figscale", "figscale-xl", "figchurn", "table1", "table2",
		"replay-snapshot", "bursty-hubspoke", "ln-mainnet",
		"jamming", "flash-crowd", "hub-outage",
		"retry-jamming", "retry-flash-crowd", "retry-hub-outage",
	}
	for _, name := range want {
		e, ok := Lookup(name)
		if !ok {
			t.Errorf("registry is missing %q", name)
			continue
		}
		if e.Name != name {
			t.Errorf("entry %q self-reports name %q", name, e.Name)
		}
		if e.Description == "" || e.Title == "" {
			t.Errorf("entry %q lacks title/description", name)
		}
		if e.Kind != KindStatic {
			if err := e.Base.Validate(); err != nil {
				t.Errorf("entry %q base spec invalid: %v", name, err)
			}
		}
	}
	if got := len(Names()); got != len(want) {
		t.Errorf("registry has %d entries, want %d: %v", got, len(want), Names())
	}
}

// TestRegistrySmoke runs a cheap trimmed variant of each runner kind and
// checks determinism across worker counts — the worker-invariance contract
// every entry inherits from the sweep engine.
func TestRegistrySmoke(t *testing.T) {
	small := SmallSpec()
	small.Topology.Nodes = 50
	small.Workload.Rate = 30
	small.Workload.Duration = 2
	small.Routing.HubCandidates = 6

	churn := ChurnSpec()
	churn.Topology.Nodes = 50
	churn.Workload.Rate = 30
	churn.Workload.Duration = 2
	churn.Routing.HubCandidates = 6

	run := func(workers int) string {
		var out strings.Builder
		fig, err := RunFigure(small, Axis{Param: "tau_ms", Values: []float64{200, 800}},
			DefaultSchemes(), MetricTSR, RunOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&out, "%v\n", fig)
		tsr, delay, err := RunChurnPanel(churn, []float64{0, 2}, ChurnSchemes(), RunOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&out, "%v %v\n", tsr, delay)
		table, err := SchemeTable(small, []string{"Splicer", "ShortestPath"}, RunOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		out.WriteString(table.CSV())
		rows, err := RoutingChoices(small, small, ChoicesOptions{
			PathNumbers: []int{3}, PathTypes: nil, Schedulers: []string{"LIFO"}, SkipLarge: true,
		}, RunOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&out, "%v\n", rows)
		return out.String()
	}
	serial := run(1)
	if parallel := run(8); parallel != serial {
		t.Fatalf("8-worker engine output diverged from serial:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}

// TestSeedCountReplication checks the -seeds semantics: SeedCount derives
// each base spec's list from its own seed, and multi-seed runs produce
// different (averaged) output than single-seed runs.
func TestSeedCountReplication(t *testing.T) {
	small := SmallSpec()
	small.Topology.Nodes = 40
	small.Workload.Rate = 30
	small.Workload.Duration = 2
	small.Routing.HubCandidates = 5

	axis := Axis{Param: "tau_ms", Values: []float64{400}}
	one, err := RunFigure(small, axis, []string{"Splicer"}, MetricTSR, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	three, err := RunFigure(small, axis, []string{"Splicer"}, MetricTSR, RunOptions{SeedCount: 3, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := RunFigure(small, axis, []string{"Splicer"}, MetricTSR,
		RunOptions{Seeds: []uint64{small.Seed, small.Seed + 1, small.Seed + 2}})
	if err != nil {
		t.Fatal(err)
	}
	if three[0].Points[0].Y != explicit[0].Points[0].Y {
		t.Fatalf("SeedCount=3 (%v) != explicit seed list (%v)", three[0].Points[0].Y, explicit[0].Points[0].Y)
	}
	if one[0].Points[0].Y == three[0].Points[0].Y {
		t.Log("warning: single-seed and 3-seed means coincide; weak but not fatal")
	}
}

// TestEntryRunErrorsSurface pins the error-propagation satellite at the
// engine level: a spec that fails to build (an unbuildable topology) must
// surface through Entry.Run instead of vanishing into an empty table.
func TestEntryRunErrorsSurface(t *testing.T) {
	bad := SmallSpec()
	bad.Topology.Degree = 7 // Watts-Strogatz requires even degree: build-time error
	e := &Entry{
		Name: "bad", Title: "bad", Kind: KindFigure, Base: bad, XLabel: "tau_ms",
		Axis:    Axis{Param: "tau_ms", Values: []float64{200}},
		Schemes: []string{"Splicer"}, Metric: MetricTSR,
	}
	if _, err := e.Run(RunOptions{}); err == nil || !strings.Contains(err.Error(), "topology") {
		t.Fatalf("entry with unbuildable topology: err = %v", err)
	}
	// Same for a workload that generates an empty trace.
	bad2 := SmallSpec()
	bad2.Workload.Rate = 0.0001
	bad2.Workload.Duration = 0.001
	e2 := &Entry{
		Name: "bad2", Title: "bad2", Kind: KindFigure, Base: bad2, XLabel: "tau_ms",
		Axis:    Axis{Param: "tau_ms", Values: []float64{200}},
		Schemes: []string{"Splicer"}, Metric: MetricTSR,
	}
	if _, err := e2.Run(RunOptions{}); err == nil {
		t.Fatal("entry with empty workload ran without error")
	}
}
