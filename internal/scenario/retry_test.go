package scenario

import (
	"fmt"
	"testing"
)

// trimmedRetry returns a cheap variant of a registered retry-resilience
// scenario (same trim as trimmedAttack, retry block kept).
func trimmedRetry(t *testing.T, name string) Spec {
	t.Helper()
	e, ok := Lookup(name)
	if !ok {
		t.Fatalf("registry is missing %q", name)
	}
	s := e.Base
	s.Topology.Nodes = 50
	s.Workload.Rate = 30
	s.Workload.Duration = 2
	s.Routing.HubCandidates = 6
	s.Attack.Start = 0.5
	if s.Attack.Duration > 1 {
		s.Attack.Duration = 1
	}
	if s.Attack.RecoverAfter > 1 {
		s.Attack.RecoverAfter = 1
	}
	return s
}

// TestRetrySpecValidation pins the spec-level retry checks.
func TestRetrySpecValidation(t *testing.T) {
	for _, name := range []string{"retry-jamming", "retry-flash-crowd", "retry-hub-outage"} {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("registry is missing %q", name)
		}
		if err := e.Base.Validate(); err != nil {
			t.Fatalf("registered %s spec invalid: %v", name, err)
		}
	}
	bad := RetryJammingSpec()
	bad.Routing.Retry = &RetrySpec{MaxAttempts: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("retry block with max_attempts 1 accepted (unarmed blocks must be omitted, not zeroed)")
	}
	bad = RetryJammingSpec()
	bad.Routing.Retry = &RetrySpec{MaxAttempts: 3, BackoffMs: -5}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative backoff accepted")
	}
}

// TestRetryPanelSmoke runs a trimmed retry-resilience panel and checks the
// two invariance contracts at once: worker-count determinism (inherited from
// the sweep engine) and retry-off column identity — the unarmed variants
// must reproduce the plain attack panel byte-for-byte, because stripping the
// retry block restores the exact PR-8 spec and Split(6) is only drawn when
// armed. Conservation is asserted inside every cell by RunScheme.
func TestRetryPanelSmoke(t *testing.T) {
	base := trimmedRetry(t, "retry-jamming")
	grid := []float64{base.Attack.Intensity}
	schemes := []string{"Splicer", "ShortestPath"}

	run := func(workers int) string {
		tsr, delay, reasons, err := RunRetryPanel(base, grid, schemes, RunOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%v %v %v", tsr, delay, reasons)
	}
	serial := run(1)
	if parallel := run(8); parallel != serial {
		t.Fatalf("8-worker retry panel diverged from serial:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}

	tsr, _, _, err := RunRetryPanel(base, grid, schemes, RunOptions{Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	plain := base
	plain.Routing.Retry = nil
	attackTSR, _, err := RunAttackPanel(plain, grid, schemes, RunOptions{Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	off := map[string]float64{}
	for _, s := range tsr {
		off[s.Name] = s.Points[0].Y
	}
	for _, s := range attackTSR {
		if s.Name == OnlineLabel {
			continue // attack-panel-only variant, not part of the retry panel
		}
		got, ok := off[s.Name]
		if !ok {
			t.Fatalf("retry panel lacks unarmed column %q", s.Name)
		}
		if got != s.Points[0].Y {
			t.Fatalf("unarmed %s diverged from attack panel: %v vs %v", s.Name, got, s.Points[0].Y)
		}
	}
}

// TestRetryPanelRecoversTSR is the PR's acceptance criterion: with retries
// armed at the default max_attempts=3, the resilience panel must show
// measurably higher honest TSR than the unarmed cells on the jamming and
// hub-outage scenarios — and must never materially hurt any scheme.
func TestRetryPanelRecoversTSR(t *testing.T) {
	for _, name := range []string{"retry-jamming", "retry-hub-outage"} {
		t.Run(name, func(t *testing.T) {
			base := trimmedRetry(t, name)
			tsr, _, reasons, err := RunRetryPanel(base, []float64{base.Attack.Intensity},
				[]string{"Splicer", "ShortestPath"}, RunOptions{Workers: -1})
			if err != nil {
				t.Fatal(err)
			}
			byName := map[string]float64{}
			for _, s := range tsr {
				byName[s.Name] = s.Points[0].Y
			}
			recovered := false
			for _, sc := range []string{"Splicer", "ShortestPath"} {
				off, on := byName[sc], byName[sc+"+retry"]
				if on < off-1e-9 {
					t.Errorf("%s: retries reduced TSR %.4f -> %.4f", sc, off, on)
				}
				if on > off+0.01 {
					recovered = true
				}
			}
			if !recovered {
				t.Fatalf("no scheme recovered measurable TSR with retries armed: %v", byName)
			}
			if len(reasons) == 0 {
				t.Fatal("retry panel produced no failure-reason series")
			}
		})
	}
}
