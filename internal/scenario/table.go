// Figure/table output types. These moved here from internal/experiments
// (which now aliases them) so the scenario engine and the historical
// experiment API render through one code path; the CSV formatting is part of
// the golden-fixture contract and must not drift.
package scenario

import (
	"fmt"
	"sort"
	"strings"
)

// Point is one (x, y) sample of a figure line.
type Point struct {
	X float64
	Y float64
}

// Series is one labeled figure line.
type Series struct {
	Name   string
	Points []Point
}

// ReasonPoint is one x-axis sample of a variant's failure breakdown: the
// across-seed mean failure count per abort reason at that x.
type ReasonPoint struct {
	X       float64
	Reasons map[string]float64
}

// ReasonSeries is one variant's per-reason failure breakdown across the
// panel's x values.
type ReasonSeries struct {
	Name   string
	Points []ReasonPoint
}

// topReasons formats the up-to-three largest failure reasons of a point as
// "reason=count" pairs joined with ";" (count desc, ties by name asc, %.1f —
// counts are across-seed means). Deterministic for a fixed map content.
func topReasons(reasons map[string]float64) string {
	type rc struct {
		name  string
		count float64
	}
	list := make([]rc, 0, len(reasons))
	for name, c := range reasons {
		if c > 0 {
			list = append(list, rc{name, c})
		}
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].count != list[j].count {
			return list[i].count > list[j].count
		}
		return list[i].name < list[j].name
	})
	if len(list) > 3 {
		list = list[:3]
	}
	parts := make([]string, len(list))
	for i, r := range list {
		parts[i] = fmt.Sprintf("%s=%.1f", r.name, r.count)
	}
	return strings.Join(parts, ";")
}

// Table is a rendered result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// CSV renders the table as CSV.
func (t Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// SeriesTable renders a set of series sharing X values into a table with
// one column per series.
func SeriesTable(title, xLabel string, series []Series) Table {
	t := Table{Title: title, Header: []string{xLabel}}
	for _, s := range series {
		t.Header = append(t.Header, s.Name)
	}
	if len(series) == 0 {
		return t
	}
	for i, p := range series[0].Points {
		row := []string{fmt.Sprintf("%g", p.X)}
		for _, s := range series {
			if i < len(s.Points) {
				row = append(row, fmt.Sprintf("%.4f", s.Points[i].Y))
			} else {
				row = append(row, "")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// ChurnTable renders the churn panel: one row per churn rate, TSR and delay
// columns per variant.
func ChurnTable(title string, tsr, delay []Series) Table {
	return PanelTable(title, "churn_rate", tsr, delay)
}

// AttackTable renders the resilience panel: one row per attack intensity,
// TSR and delay columns per variant.
func AttackTable(title string, tsr, delay []Series) Table {
	return PanelTable(title, "attack_intensity", tsr, delay)
}

// PanelTable renders a two-metric scheme panel over the named x-axis: one
// row per x value, TSR and delay columns per variant. The column layout is
// the golden-fixture churn-panel format, generalized over the axis label.
// Optional reason series append one "<variant> fail_reasons" column each —
// the variant's top failure reasons as "reason=count" pairs — so retry
// recovery is attributable per cell; callers without them (the pre-existing
// churn and attack panels) render the historical layout unchanged.
func PanelTable(title, xLabel string, tsr, delay []Series, reasons ...ReasonSeries) Table {
	t := Table{Title: title, Header: []string{xLabel}}
	for _, s := range tsr {
		t.Header = append(t.Header, s.Name+" TSR")
	}
	for _, s := range delay {
		t.Header = append(t.Header, s.Name+" delay(s)")
	}
	for _, s := range reasons {
		t.Header = append(t.Header, s.Name+" fail_reasons")
	}
	if len(tsr) == 0 {
		return t
	}
	for i, p := range tsr[0].Points {
		row := []string{fmt.Sprintf("%g", p.X)}
		for _, s := range tsr {
			row = append(row, fmt.Sprintf("%.4f", s.Points[i].Y))
		}
		for _, s := range delay {
			row = append(row, fmt.Sprintf("%.4f", s.Points[i].Y))
		}
		for _, s := range reasons {
			cell := ""
			if i < len(s.Points) {
				cell = topReasons(s.Points[i].Reasons)
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// RetryTable renders the retry-resilience panel: one row per attack
// intensity; TSR, delay and failure-breakdown columns per scheme×{off,on}
// variant.
func RetryTable(title string, tsr, delay []Series, reasons []ReasonSeries) Table {
	return PanelTable(title, "attack_intensity", tsr, delay, reasons...)
}

// TradeoffTable renders Fig. 9(b) points.
func TradeoffTable(title string, points []TradeoffPoint) Table {
	t := Table{Title: title, Header: []string{"omega", "mgmt_cost", "sync_cost", "num_hubs"}}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", p.Omega),
			fmt.Sprintf("%.4f", p.MgmtCost),
			fmt.Sprintf("%.4f", p.SyncCost),
			fmt.Sprintf("%d", p.NumHubs),
		})
	}
	return t
}

// DelayOverheadTable renders Fig. 9(e/f) points.
func DelayOverheadTable(title string, points []DelayOverheadPoint) Table {
	t := Table{Title: title, Header: []string{"omega", "with_pch", "delay_ms", "overhead"}}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", p.Omega),
			fmt.Sprintf("%v", p.WithPCH),
			fmt.Sprintf("%.2f", p.DelayMs),
			fmt.Sprintf("%.3f", p.Overhead),
		})
	}
	return t
}

// TableIITable renders the routing-choice study rows.
func TableIITable(rows []TableIIRow) Table {
	t := Table{
		Title:  "Table II: influence of routing choices on Splicer's TSR",
		Header: []string{"Group", "Choice", "Small", "Large"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Group, r.Choice,
			fmt.Sprintf("%.2f%%", 100*r.Small),
			fmt.Sprintf("%.2f%%", 100*r.Large),
		})
	}
	return t
}
