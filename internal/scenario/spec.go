// Package scenario is the declarative experiment layer of the Splicer
// reproduction: a Spec describes one fully seeded simulation cell — a
// topology generator, a workload (synthetic, bursty, or a replayed trace),
// optional network dynamics, a routing scheme and its knobs — as plain data
// (JSON-loadable), and the engine turns Specs into sweep cells, figure
// panels and tables. The registry (registry.go) reconstructs every figure
// and table of the paper's evaluation as a named entry over these Specs, so
// a new workload is a config file rather than a new Go experiment runner.
//
// Determinism contract: a Spec is a pure function of its Seed. The build
// pipeline derives child rng streams in a fixed label order — Split(1) for
// channel sizes, Split(2) for the topology generator, Split(3) for the
// synthetic workload, Split(4) for the dynamics driver, Split(5) for the
// attack injector (drawn only when an attack block is armed), Split(6) for
// the retry backoff jitter (drawn only when a routing.retry block is armed,
// and always last, so arming retries shifts no earlier stream), Split(9) for
// analytical hop sampling — matching the hand-wired experiment runners the
// engine replaced, so registry output stays byte-identical to the historical
// CSVs (pinned by the golden-fixture conformance test).
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strconv"

	"github.com/splicer-pcn/splicer/internal/attack"
	"github.com/splicer-pcn/splicer/internal/channel"
	"github.com/splicer-pcn/splicer/internal/pcn"
	"github.com/splicer-pcn/splicer/internal/reliability"
	"github.com/splicer-pcn/splicer/internal/routing"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// Topology generator type names.
const (
	TopoWattsStrogatz  = "watts-strogatz"
	TopoBarabasiAlbert = "barabasi-albert"
	TopoErdosRenyi     = "erdos-renyi"
	TopoHubSpoke       = "hub-spoke"
	TopoSnapshot       = "snapshot"
)

// Workload type names.
const (
	WorkSynthetic = "synthetic"
	WorkReplay    = "replay"
)

// Spec declares one simulation cell. The zero values of optional fields
// resolve to the paper's §V-A defaults (see normalize).
type Spec struct {
	Name        string `json:"name,omitempty"`
	Description string `json:"description,omitempty"`
	// Seed makes the whole cell reproducible; every random component derives
	// from it.
	Seed uint64 `json:"seed"`
	// Scheme is the routing scheme ("Splicer", "Spider", "Flash",
	// "Landmark", "A2L", "ShortestPath"). Sweep entries override it per
	// cell; a standalone run requires it.
	Scheme   string        `json:"scheme,omitempty"`
	Topology TopologySpec  `json:"topology"`
	Workload WorkloadSpec  `json:"workload"`
	Dynamics *DynamicsSpec `json:"dynamics,omitempty"`
	Attack   *AttackSpec   `json:"attack,omitempty"`
	Routing  RoutingSpec   `json:"routing,omitempty"`
}

// TopologySpec selects and parameterizes the channel-graph generator.
type TopologySpec struct {
	Type string `json:"type"`
	// Nodes is the network size (generators except hub-spoke/snapshot).
	Nodes int `json:"nodes,omitempty"`
	// ChannelScale multiplies the LN-calibrated channel size distribution
	// (default 1).
	ChannelScale float64 `json:"channel_scale,omitempty"`
	// Degree and Beta parameterize Watts–Strogatz (defaults 4, 0.25).
	Degree int     `json:"degree,omitempty"`
	Beta   float64 `json:"beta,omitempty"`
	// AttachEdges is Barabási–Albert's m (edges per new node).
	AttachEdges int `json:"attach_edges,omitempty"`
	// EdgeProb is Erdős–Rényi's p.
	EdgeProb float64 `json:"edge_prob,omitempty"`
	// Cores / HubsPerCore / ClientsPerHub shape the hierarchical hub-spoke
	// generator; CoreCapScale and HubCapScale multiply the channel-size
	// distribution for backbone and mid-tier links (defaults 8 and 4).
	Cores         int     `json:"cores,omitempty"`
	HubsPerCore   int     `json:"hubs_per_core,omitempty"`
	ClientsPerHub int     `json:"clients_per_hub,omitempty"`
	CoreCapScale  float64 `json:"core_cap_scale,omitempty"`
	HubCapScale   float64 `json:"hub_cap_scale,omitempty"`
	// Snapshot names the topology file for type "snapshot": either a path
	// to a snapshot CSV or "builtin:<name>" for a shipped fixture.
	Snapshot string `json:"snapshot,omitempty"`
}

// WorkloadSpec selects and parameterizes the payment trace.
type WorkloadSpec struct {
	Type string `json:"type"`
	// Rate is the aggregate Poisson arrival rate (tx/s), Duration the trace
	// length in seconds (synthetic workloads).
	Rate     float64 `json:"rate,omitempty"`
	Duration float64 `json:"duration,omitempty"`
	// Timeout per payment in seconds (default 3).
	Timeout float64 `json:"timeout,omitempty"`
	// ZipfSkew shapes endpoint popularity; ValueScale multiplies the value
	// distribution (default 1); CirculationFraction injects the §II-B
	// deadlock pattern.
	ZipfSkew            float64 `json:"zipf_skew,omitempty"`
	ValueScale          float64 `json:"value_scale,omitempty"`
	CirculationFraction float64 `json:"circulation_fraction,omitempty"`
	// ExcludeHubTier drops the topology's hub-tier nodes (hub-spoke cores
	// and mid-tier hubs) from the client set, so demand originates at the
	// leaves only.
	ExcludeHubTier bool `json:"exclude_hub_tier,omitempty"`
	// OnOff switches arrivals to the bursty on-off modulated process.
	OnOff *OnOffSpec `json:"on_off,omitempty"`
	// Trace names the replayed trace for type "replay": a trace CSV path or
	// "builtin:<name>".
	Trace string `json:"trace,omitempty"`
}

// OnOffSpec mirrors workload.OnOffConfig.
type OnOffSpec struct {
	MeanOn    float64 `json:"mean_on"`
	MeanOff   float64 `json:"mean_off"`
	OnFactor  float64 `json:"on_factor"`
	OffFactor float64 `json:"off_factor"`
}

// DynamicsSpec switches the cell from a static trace run to a dynamic
// (churn-driven) run. Every knob not listed here follows
// dynamics.NewConfig's moderate defaults.
type DynamicsSpec struct {
	// ChurnRate drives all five structural processes (node join/leave,
	// channel open/close/top-up) at this many events/sec. 0 keeps the
	// topology static while demand stays diurnal and drifting.
	ChurnRate float64 `json:"churn_rate"`
	// ReplaceInterval re-runs Splicer's hub placement online every interval
	// (seconds; 0 keeps the initial placement).
	ReplaceInterval float64 `json:"replace_interval,omitempty"`
}

// AttackSpec arms the cell with one adversarial/stress injector from
// internal/attack. Intensity is the generic swept knob ("attack_intensity"
// axis); it maps per type — jamming: aggregate adversarial rate (tx/s),
// flash-crowd: spike factor over the base rate, hub-outage: top-k hubs
// struck. Unset parameters follow attack.Config's documented defaults.
type AttackSpec struct {
	// Type is the attack kind: "jamming", "flash-crowd" or "hub-outage".
	Type string `json:"type"`
	// Intensity is the swept attack strength (see above).
	Intensity float64 `json:"intensity,omitempty"`
	// Start and Duration bound the attack window in seconds (hub outages
	// strike once at Start).
	Start    float64 `json:"start,omitempty"`
	Duration float64 `json:"duration,omitempty"`
	// Attackers, HoldTime, Value parameterize jamming: attacker node count,
	// preimage-withholding time (s) and payment value.
	Attackers int     `json:"attackers,omitempty"`
	HoldTime  float64 `json:"hold_time,omitempty"`
	Value     float64 `json:"value,omitempty"`
	// RegionFraction is the flash crowd's target-region size.
	RegionFraction float64 `json:"region_fraction,omitempty"`
	// RecoverAfter rejoins struck hubs this many seconds after the outage
	// (0: no recovery).
	RecoverAfter float64 `json:"recover_after,omitempty"`
}

// RoutingSpec overrides pcn.Config knobs; zero values keep the paper's
// defaults from pcn.NewConfig.
type RoutingSpec struct {
	NumPaths       int     `json:"num_paths,omitempty"`
	PathType       string  `json:"path_type,omitempty"`
	Scheduler      string  `json:"scheduler,omitempty"`
	UpdateTauMs    float64 `json:"update_tau_ms,omitempty"`
	HubCandidates  int     `json:"hub_candidates,omitempty"`
	PlacementOmega float64 `json:"placement_omega,omitempty"`
	// Override selects the route-computation backend: "" or "exact" for the
	// exact PathFinder, "hub-labels" for the precomputed hub-label tier
	// (byte-identical results; a performance knob for hub-heavy cells).
	Override string `json:"override,omitempty"`
	// MaxInFlightTUs caps concurrently locked TUs per channel direction
	// (Lightning's max_accepted_htlcs — the resource HTLC jamming exhausts);
	// 0 keeps the paper's unlimited setting.
	MaxInFlightTUs int `json:"max_in_flight_tus,omitempty"`
	// Parallelism arms speculative route-planning workers inside each cell
	// (pcn.Config.Parallelism): >= 2 runs that many planning workers over a
	// shared topology, with outputs byte-identical to serial. 0 (default)
	// keeps every cell single-threaded, so all golden panels are untouched.
	Parallelism int `json:"parallelism,omitempty"`
	// Retry arms the failure-aware retry layer (internal/reliability). Absent
	// or unarmed, the cell is byte-identical to the retry-less simulator.
	Retry *RetrySpec `json:"retry,omitempty"`
}

// RetrySpec mirrors reliability.Config with spec-idiomatic millisecond
// durations. MaxAttempts must be >= 2 when the block is present (an armed
// block that disables retries is almost certainly a typo); omit the block to
// run without retries.
type RetrySpec struct {
	// MaxAttempts is the total send budget per TU, first attempt included.
	MaxAttempts int `json:"max_attempts"`
	// BackoffMs is the base re-send delay; attempt i waits i·backoff plus
	// jitter (default 50).
	BackoffMs float64 `json:"backoff_ms,omitempty"`
	// HalfLifeMs is the penalty decay half-life (default 2000).
	HalfLifeMs float64 `json:"half_life_ms,omitempty"`
	// ExclusionMs is the hard-exclusion window after a failure (default 500).
	ExclusionMs float64 `json:"exclusion_ms,omitempty"`
	// PenaltyWeight inflates a penalized edge's unit cost (default 4).
	PenaltyWeight float64 `json:"penalty_weight,omitempty"`
}

// config maps the retry block onto a reliability.Config (ms → seconds). The
// jitter stream seed is a placeholder: the build pipeline replaces it with
// the spec source's Split(6).
func (r *RetrySpec) config() reliability.Config {
	if r == nil {
		return reliability.Config{}
	}
	return reliability.Config{
		MaxAttempts:   r.MaxAttempts,
		Backoff:       r.BackoffMs / 1000,
		HalfLife:      r.HalfLifeMs / 1000,
		Exclusion:     r.ExclusionMs / 1000,
		PenaltyWeight: r.PenaltyWeight,
	}
}

// normalize fills documented defaults into a copy of the spec.
func (s Spec) normalize() Spec {
	if s.Topology.ChannelScale == 0 {
		s.Topology.ChannelScale = 1
	}
	if s.Topology.Type == TopoWattsStrogatz {
		if s.Topology.Degree == 0 {
			s.Topology.Degree = 4
		}
		if s.Topology.Beta == 0 {
			s.Topology.Beta = 0.25
		}
	}
	if s.Topology.Type == TopoHubSpoke {
		if s.Topology.CoreCapScale == 0 {
			s.Topology.CoreCapScale = 8
		}
		if s.Topology.HubCapScale == 0 {
			s.Topology.HubCapScale = 4
		}
	}
	if s.Workload.Type == "" {
		s.Workload.Type = WorkSynthetic
	}
	if s.Workload.Timeout == 0 {
		s.Workload.Timeout = 3
	}
	if s.Workload.ValueScale == 0 {
		s.Workload.ValueScale = 1
	}
	return s
}

// Validate checks the spec. It validates structure only; generator-level
// constraints (e.g. Watts–Strogatz degree bounds) surface at build time.
func (s Spec) Validate() error {
	s = s.normalize()
	if s.Scheme != "" {
		if _, err := pcn.SchemeByName(s.Scheme); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	switch s.Topology.Type {
	case TopoWattsStrogatz, TopoBarabasiAlbert, TopoErdosRenyi:
		if s.Topology.Nodes < 3 {
			return fmt.Errorf("scenario: topology %q needs nodes >= 3, got %d", s.Topology.Type, s.Topology.Nodes)
		}
		if s.Topology.Type == TopoBarabasiAlbert && s.Topology.AttachEdges < 1 {
			return fmt.Errorf("scenario: barabasi-albert needs attach_edges >= 1")
		}
		if s.Topology.Type == TopoErdosRenyi && (s.Topology.EdgeProb <= 0 || s.Topology.EdgeProb > 1) {
			return fmt.Errorf("scenario: erdos-renyi needs edge_prob in (0,1], got %v", s.Topology.EdgeProb)
		}
	case TopoHubSpoke:
		if s.Topology.Cores < 1 || s.Topology.HubsPerCore < 1 || s.Topology.ClientsPerHub < 1 {
			return fmt.Errorf("scenario: hub-spoke needs cores, hubs_per_core and clients_per_hub >= 1")
		}
	case TopoSnapshot:
		if s.Topology.Snapshot == "" {
			return fmt.Errorf("scenario: snapshot topology needs a snapshot file reference")
		}
	default:
		return fmt.Errorf("scenario: unknown topology type %q", s.Topology.Type)
	}
	if s.Topology.ChannelScale <= 0 {
		return fmt.Errorf("scenario: channel_scale must be positive, got %v", s.Topology.ChannelScale)
	}
	switch s.Workload.Type {
	case WorkSynthetic:
		if s.Workload.Rate <= 0 || s.Workload.Duration <= 0 {
			return fmt.Errorf("scenario: synthetic workload needs positive rate and duration")
		}
		if s.Workload.OnOff != nil {
			if err := s.Workload.OnOff.config().Validate(); err != nil {
				return fmt.Errorf("scenario: %w", err)
			}
		}
	case WorkReplay:
		if s.Workload.Trace == "" {
			return fmt.Errorf("scenario: replay workload needs a trace file reference")
		}
		if s.Dynamics != nil {
			return fmt.Errorf("scenario: replay workloads cannot drive a dynamic run (dynamics resolves endpoints against the live node set)")
		}
	default:
		return fmt.Errorf("scenario: unknown workload type %q", s.Workload.Type)
	}
	if s.Dynamics != nil {
		if s.Dynamics.ChurnRate < 0 {
			return fmt.Errorf("scenario: churn_rate must be >= 0, got %v", s.Dynamics.ChurnRate)
		}
		if s.Dynamics.ReplaceInterval < 0 {
			return fmt.Errorf("scenario: replace_interval must be >= 0, got %v", s.Dynamics.ReplaceInterval)
		}
		// The dynamics driver replaces the synthetic trace generator with
		// its own live demand process (diurnal thinning + hotspot drift over
		// the active node set), so trace-generator-only knobs would be
		// silently ignored — reject them instead.
		switch {
		case s.Workload.OnOff != nil:
			return fmt.Errorf("scenario: on_off arrivals are not applicable to a dynamic run (the dynamics demand process replaces the trace generator)")
		case s.Workload.ExcludeHubTier:
			return fmt.Errorf("scenario: exclude_hub_tier is not applicable to a dynamic run (dynamics resolves endpoints against the live node set)")
		case s.Workload.CirculationFraction != 0:
			return fmt.Errorf("scenario: circulation_fraction is not applicable to a dynamic run (the dynamics demand process replaces the trace generator)")
		}
	}
	if s.Attack != nil {
		if s.Workload.Type != WorkSynthetic {
			return fmt.Errorf("scenario: attacks require a synthetic workload (the injector derives its value and deadline rule from the workload block)")
		}
		if s.Attack.Intensity < 0 {
			return fmt.Errorf("scenario: attack intensity must be >= 0, got %v", s.Attack.Intensity)
		}
		if err := s.attackConfig().Validate(); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	if s.Routing.PathType != "" {
		if _, err := routing.PathTypeByName(s.Routing.PathType); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	if s.Routing.Scheduler != "" {
		if _, err := channel.SchedulerByName(s.Routing.Scheduler); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	if s.Routing.NumPaths < 0 || s.Routing.UpdateTauMs < 0 || s.Routing.HubCandidates < 0 ||
		s.Routing.PlacementOmega < 0 || s.Routing.MaxInFlightTUs < 0 || s.Routing.Parallelism < 0 {
		return fmt.Errorf("scenario: routing overrides must be >= 0")
	}
	if r := s.Routing.Retry; r != nil {
		if r.MaxAttempts < 2 {
			return fmt.Errorf("scenario: routing.retry needs max_attempts >= 2 (got %d); omit the block to disable retries", r.MaxAttempts)
		}
		if err := r.config().Validate(); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	if _, err := routingOverrideByName(s.Routing.Override); err != nil {
		return err
	}
	return nil
}

// routingOverrideByName maps the spec's override name to the pcn constant.
func routingOverrideByName(name string) (pcn.RoutingOverride, error) {
	switch name {
	case "", "exact":
		return pcn.RoutingExact, nil
	case "hub-labels":
		return pcn.RoutingHubLabels, nil
	}
	return 0, fmt.Errorf("scenario: unknown routing override %q (want \"exact\" or \"hub-labels\")", name)
}

// config maps the spec onto a pcn.Config for the given scheme, mirroring the
// historical runners: paper defaults first, then the spec's overrides.
func (s Spec) config(scheme pcn.Scheme) (pcn.Config, error) {
	cfg := pcn.NewConfig(scheme)
	r := s.Routing
	if r.HubCandidates > 0 {
		cfg.NumHubCandidates = r.HubCandidates
	}
	if r.NumPaths > 0 {
		cfg.NumPaths = r.NumPaths
	}
	if r.PathType != "" {
		pt, err := routing.PathTypeByName(r.PathType)
		if err != nil {
			return pcn.Config{}, err
		}
		cfg.PathType = pt
	}
	if r.Scheduler != "" {
		sched, err := channel.SchedulerByName(r.Scheduler)
		if err != nil {
			return pcn.Config{}, err
		}
		cfg.Scheduler = sched
	}
	if r.UpdateTauMs > 0 {
		cfg.UpdateTau = r.UpdateTauMs / 1000
	}
	if r.PlacementOmega > 0 {
		cfg.PlacementOmega = r.PlacementOmega
	}
	ov, err := routingOverrideByName(r.Override)
	if err != nil {
		return pcn.Config{}, err
	}
	cfg.RoutingOverride = ov
	if r.MaxInFlightTUs > 0 {
		cfg.MaxInFlightTUs = r.MaxInFlightTUs
	}
	if r.Retry != nil {
		cfg.Retry = r.Retry.config()
	}
	cfg.Parallelism = r.Parallelism
	if fp := forcedParallelism(); fp > cfg.Parallelism {
		// Conformance override: run every cell with fp planning workers.
		// Byte-identity makes this safe for any spec; the golden suite uses
		// it to pin parallel == serial across all panels.
		cfg.Parallelism = fp
	}
	return cfg, nil
}

// forceParallelismVar is the process-wide parallelism floor applied to every
// cell config. Seeded from SPLICER_FORCE_PARALLELISM so CI can sweep the
// whole suite in parallel mode without touching specs; tests override it via
// ForceParallelism.
var forceParallelismVar = envForcedParallelism()

func envForcedParallelism() int {
	n, err := strconv.Atoi(os.Getenv("SPLICER_FORCE_PARALLELISM"))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

func forcedParallelism() int { return forceParallelismVar }

// ForceParallelism overrides the process-wide parallelism floor (the
// SPLICER_FORCE_PARALLELISM knob) and returns a restore func. Test-only by
// convention; not safe for concurrent use with cell builds.
func ForceParallelism(workers int) (restore func()) {
	prev := forceParallelismVar
	forceParallelismVar = workers
	return func() { forceParallelismVar = prev }
}

// attackConfig maps the spec's attack block onto an attack.Config. The
// generic Intensity knob maps per type (see AttackSpec); the flash crowd
// echoes the workload's rate, value scale and timeout so spike payments
// follow the base demand's distributions.
func (s Spec) attackConfig() attack.Config {
	n := s.normalize()
	a := n.Attack
	cfg := attack.Config{
		Kind:           attack.Kind(a.Type),
		Start:          a.Start,
		Duration:       a.Duration,
		Attackers:      a.Attackers,
		HoldTime:       a.HoldTime,
		Value:          a.Value,
		RegionFraction: a.RegionFraction,
		RecoverAfter:   a.RecoverAfter,
		BaseRate:       n.Workload.Rate,
		ValueScale:     n.Workload.ValueScale,
		Timeout:        n.Workload.Timeout,
	}
	switch cfg.Kind {
	case attack.KindJamming:
		cfg.Rate = a.Intensity
	case attack.KindFlashCrowd:
		cfg.SpikeFactor = a.Intensity
	case attack.KindHubOutage:
		cfg.TopK = int(a.Intensity + 0.5)
	}
	return cfg
}

// hubCandidates is the candidate-list bound used by the placement panels.
func (s Spec) hubCandidates() int {
	if s.Routing.HubCandidates > 0 {
		return s.Routing.HubCandidates
	}
	return pcn.NewConfig(pcn.SchemeSplicer).NumHubCandidates
}

func (o *OnOffSpec) config() *workload.OnOffConfig {
	if o == nil {
		return nil
	}
	return &workload.OnOffConfig{MeanOn: o.MeanOn, MeanOff: o.MeanOff, OnFactor: o.OnFactor, OffFactor: o.OffFactor}
}

// withParam returns a copy of the spec with the named sweep parameter set to
// x. Parameters are the figure x-axes: "channel_scale", "value_scale",
// "tau_ms", "nodes", "churn_rate", "attack_intensity"; "" is the identity
// (single-cell entries).
func (s Spec) withParam(param string, x float64) (Spec, error) {
	switch param {
	case "":
		return s, nil
	case "channel_scale":
		s.Topology.ChannelScale = x
	case "value_scale":
		s.Workload.ValueScale = x
	case "tau_ms":
		s.Routing.UpdateTauMs = x
	case "nodes":
		s.Topology.Nodes = int(x)
	case "churn_rate":
		if s.Dynamics == nil {
			return s, fmt.Errorf("scenario: churn_rate sweep needs a dynamics block")
		}
		d := *s.Dynamics
		d.ChurnRate = x
		s.Dynamics = &d
	case "attack_intensity":
		if s.Attack == nil {
			return s, fmt.Errorf("scenario: attack_intensity sweep needs an attack block")
		}
		a := *s.Attack
		a.Intensity = x
		s.Attack = &a
	default:
		return s, fmt.Errorf("scenario: unknown sweep parameter %q", param)
	}
	return s, nil
}

// LoadSpec reads and validates a JSON spec file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	return ParseSpec(data)
}

// ParseSpec parses and validates a JSON spec. Unknown fields are rejected so
// a typoed knob fails instead of silently running the default.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// JSON renders the spec (normalized defaults included) as indented JSON.
func (s Spec) JSON() ([]byte, error) {
	return json.MarshalIndent(s.normalize(), "", "  ")
}
