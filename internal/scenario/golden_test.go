package scenario

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// -update-golden regenerates the fixtures instead of comparing (use only
// when an intentional behavior change lands; the diff is the review
// artifact).
var updateGolden = flag.Bool("update-golden", false, "rewrite golden CSV fixtures from current output")

// goldenEntries names the registry entries pinned byte-for-byte. The
// fixtures were produced by the hand-wired pre-engine experiment runners
// (cmd/experiments), so this test is the proof that the declarative engine
// reproduces the historical generators exactly — and it keeps future perf
// PRs honest mechanically: any change to the sweep machinery, the rng split
// discipline, the simulator core or the CSV formatting that shifts a single
// byte fails here.
//
// fig7c pins the static figure path (scheme sweep, tau mutation), figchurn
// the dynamics path (timeline, driver, online re-placement), table2 the
// config-mutation path (path types, path counts, schedulers, both scales).
// The retry-* entries pin the retry-resilience panel: the unarmed columns
// double as a second witness that arming the spec's retry block does not
// move any retry-off cell (the Split(6)-last contract), and the armed
// columns pin the recovered TSR per scheme. The remaining registry entries
// run through the same runners, so they are pinned transitively.
var goldenEntries = []string{
	"fig7c", "figchurn", "table2",
	"retry-jamming", "retry-flash-crowd", "retry-hub-outage",
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".csv")
}

func TestGoldenConformance(t *testing.T) {
	runGoldenConformance(t, false)
}

// TestGoldenConformanceParallel re-runs the pinned entries with speculative
// route planning forced to 4 workers in every cell. The fixtures are the
// SAME files as the serial suite: this is the tentpole's byte-identity
// proof at the panel level — event stream, metrics and CSV formatting all
// unmoved by intra-run parallelism, across the static, churn, table,
// attack and retry pipelines. -update-golden is refused here by
// construction (fixtures are regenerated serially only).
func TestGoldenConformanceParallel(t *testing.T) {
	if *updateGolden {
		t.Skip("golden fixtures regenerate from serial runs; skipping parallel twin under -update-golden")
	}
	restore := ForceParallelism(4)
	defer restore()
	runGoldenConformance(t, true)
}

func runGoldenConformance(t *testing.T, parallel bool) {
	for _, name := range goldenEntries {
		name := name
		t.Run(name, func(t *testing.T) {
			if testing.Short() && name == "table2" {
				t.Skip("table2 regenerates the full 3000-node study (~20s); run without -short")
			}
			entry, ok := Lookup(name)
			if !ok {
				t.Fatalf("registry entry %q missing", name)
			}
			table, err := entry.Run(RunOptions{Workers: -1})
			if err != nil {
				t.Fatal(err)
			}
			got := []byte(table.CSV())
			path := goldenPath(name)
			if *updateGolden && !parallel {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				suffix := ".got.csv"
				if parallel {
					suffix = ".got-parallel.csv"
				}
				diffPath := filepath.Join(t.TempDir(), name+suffix)
				if env := os.Getenv("GOLDEN_DIFF_DIR"); env != "" {
					if err := os.MkdirAll(env, 0o755); err == nil {
						diffPath = filepath.Join(env, name+suffix)
					}
				}
				if err := os.WriteFile(diffPath, got, 0o644); err != nil {
					t.Logf("could not write diff artifact: %v", err)
				}
				t.Fatalf("%s diverged from the golden fixture %s\nregenerated CSV written to %s\n"+
					"(if the change is intentional, regenerate with -update-golden and review the diff)",
					name, path, diffPath)
			}
		})
	}
}
