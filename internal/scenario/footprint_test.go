package scenario

import "testing"

func TestEstimateFootprintGenerators(t *testing.T) {
	small, err := EstimateFootprint(SmallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if small.Nodes != 100 || small.Edges != 200 { // WS degree 4: n·k/2
		t.Fatalf("small footprint = %+v, want 100 nodes / 200 edges", small)
	}
	if small.ApproxBytes <= 0 {
		t.Fatalf("non-positive byte estimate: %+v", small)
	}
	xl, err := EstimateFootprint(XLScaleSpec())
	if err != nil {
		t.Fatal(err)
	}
	if xl.Nodes != 20000 || xl.Edges != 60000 { // BA m=3
		t.Fatalf("xl footprint = %+v, want 20000 nodes / 60000 edges", xl)
	}
	if xl.ApproxBytes <= small.ApproxBytes {
		t.Fatalf("estimate not monotone in scale: %+v vs %+v", xl, small)
	}
}

func TestEstimateFootprintSnapshotCountsAsset(t *testing.T) {
	f, err := EstimateFootprint(MainnetSpec())
	if err != nil {
		t.Fatal(err)
	}
	if f.Nodes != mainnetSnapshotNodes || f.Edges != mainnetSnapshotEdges {
		t.Fatalf("mainnet footprint = %+v, want %d/%d", f, mainnetSnapshotNodes, mainnetSnapshotEdges)
	}
}

// TestMaxFootprintUsesLargestAxisValue pins the fail-fast contract for the
// XL series: the gate must size the 100k-node cell, not the base spec.
func TestMaxFootprintUsesLargestAxisValue(t *testing.T) {
	e, ok := Lookup("figscale-xl")
	if !ok {
		t.Fatal("figscale-xl not registered")
	}
	f, err := e.MaxFootprint()
	if err != nil {
		t.Fatal(err)
	}
	if f.Nodes != 100000 {
		t.Fatalf("max footprint sized %d nodes, want the 100000-node cell", f.Nodes)
	}
	if f.ApproxMB() < 50 {
		t.Fatalf("100k-node estimate suspiciously small: %d MiB", f.ApproxMB())
	}
	// Static entries have nothing to size.
	table1, _ := Lookup("table1")
	if f, err := table1.MaxFootprint(); err != nil || f.ApproxBytes != 0 {
		t.Fatalf("static entry footprint = %+v, %v", f, err)
	}
}
