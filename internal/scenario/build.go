// Spec → simulation materialization. The split-label discipline documented
// on the package comment lives here: every builder consumes the spec-level
// rng source in the same order as the hand-wired experiment runners did, so
// seeds reproduce historical topologies and traces bit-for-bit.
package scenario

import (
	"fmt"

	"github.com/splicer-pcn/splicer/internal/attack"
	"github.com/splicer-pcn/splicer/internal/dynamics"
	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/pcn"
	"github.com/splicer-pcn/splicer/internal/rng"
	"github.com/splicer-pcn/splicer/internal/sweep"
	"github.com/splicer-pcn/splicer/internal/topology"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// buildState carries the partially consumed spec-level rng source between
// build stages (the topology stage must run before the workload or dynamics
// stage may draw).
type buildState struct {
	spec    Spec // normalized
	src     *rng.Source
	sizes   *workload.ChannelSizeDist
	g       *graph.Graph
	hubTier []graph.NodeID
}

// beginBuild materializes the topology: Split(1) seeds the channel-size
// distribution, Split(2) the generator.
func (s Spec) beginBuild() (*buildState, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := s.normalize()
	st := &buildState{spec: n, src: rng.New(n.Seed)}
	st.sizes = workload.NewChannelSizeDist(st.src.Split(1), n.Topology.ChannelScale)
	topoSrc := st.src.Split(2)
	t := n.Topology
	var err error
	switch t.Type {
	case TopoWattsStrogatz:
		st.g, err = topology.WattsStrogatz(topoSrc, t.Nodes, t.Degree, t.Beta, st.sizes.CapacityFunc())
	case TopoBarabasiAlbert:
		st.g, err = topology.BarabasiAlbert(topoSrc, t.Nodes, t.AttachEdges, st.sizes.CapacityFunc())
	case TopoErdosRenyi:
		st.g, err = topology.ErdosRenyi(topoSrc, t.Nodes, t.EdgeProb, st.sizes.CapacityFunc())
	case TopoHubSpoke:
		scaled := func(mult float64) topology.CapacityFunc {
			return func() (float64, float64) {
				v := st.sizes.Sample() * mult
				return v, v
			}
		}
		st.g, st.hubTier, err = topology.HierarchicalHubSpoke(topoSrc,
			t.Cores, t.HubsPerCore, t.ClientsPerHub,
			scaled(t.CoreCapScale), scaled(t.HubCapScale), st.sizes.CapacityFunc())
	case TopoSnapshot:
		st.g, err = loadSnapshotAsset(t.Snapshot)
	default:
		err = fmt.Errorf("scenario: unknown topology type %q", t.Type)
	}
	if err != nil {
		return nil, fmt.Errorf("scenario: topology: %w", err)
	}
	return st, nil
}

// clients returns the workload's eligible endpoints in ascending id order.
func (st *buildState) clients() []graph.NodeID {
	excluded := map[graph.NodeID]bool{}
	if st.spec.Workload.ExcludeHubTier {
		for _, h := range st.hubTier {
			excluded[h] = true
		}
	}
	clients := make([]graph.NodeID, 0, st.g.NumNodes())
	for i := 0; i < st.g.NumNodes(); i++ {
		if !excluded[graph.NodeID(i)] {
			clients = append(clients, graph.NodeID(i))
		}
	}
	return clients
}

// trace materializes the workload: Split(3) seeds the synthetic generator;
// replayed traces consume no randomness.
func (st *buildState) trace() ([]workload.Tx, error) {
	w := st.spec.Workload
	switch w.Type {
	case WorkSynthetic:
		trace, err := workload.Generate(st.src.Split(3), workload.Config{
			Clients:             st.clients(),
			Rate:                w.Rate,
			Duration:            w.Duration,
			Timeout:             w.Timeout,
			ZipfSkew:            w.ZipfSkew,
			ValueScale:          w.ValueScale,
			CirculationFraction: w.CirculationFraction,
			OnOff:               w.OnOff.config(),
		})
		if err != nil {
			return nil, fmt.Errorf("scenario: workload: %w", err)
		}
		return trace, nil
	case WorkReplay:
		trace, err := loadTraceAsset(w.Trace)
		if err != nil {
			return nil, fmt.Errorf("scenario: workload: %w", err)
		}
		if max := workload.MaxNode(trace); int(max) >= st.g.NumNodes() {
			return nil, fmt.Errorf("scenario: workload: trace references node %d but the topology has %d nodes", max, st.g.NumNodes())
		}
		return trace, nil
	default:
		return nil, fmt.Errorf("scenario: unknown workload type %q", w.Type)
	}
}

// Build materializes the static inputs: the channel graph and the payment
// trace. Dynamic specs build their trace online instead; use Run.
func (s Spec) Build() (*graph.Graph, []workload.Tx, error) {
	st, err := s.beginBuild()
	if err != nil {
		return nil, nil, err
	}
	trace, err := st.trace()
	if err != nil {
		return nil, nil, err
	}
	return st.g, trace, nil
}

// dynConfig maps the spec onto a dynamics configuration, mirroring the
// historical churn runner: all five structural processes at ChurnRate, the
// demand shaped by the workload block, everything else on NewConfig's
// defaults.
func (s Spec) dynConfig() dynamics.Config {
	n := s.normalize()
	dyn := dynamics.NewConfig(n.Workload.Duration)
	dyn.JoinRate = n.Dynamics.ChurnRate
	dyn.LeaveRate = n.Dynamics.ChurnRate
	dyn.OpenRate = n.Dynamics.ChurnRate
	dyn.CloseRate = n.Dynamics.ChurnRate
	dyn.TopUpRate = n.Dynamics.ChurnRate
	dyn.ChannelScale = n.Topology.ChannelScale
	dyn.Rate = n.Workload.Rate
	dyn.ValueScale = n.Workload.ValueScale
	dyn.ZipfSkew = n.Workload.ZipfSkew
	dyn.Timeout = n.Workload.Timeout
	dyn.ReplaceInterval = n.Dynamics.ReplaceInterval
	return dyn
}

// RunScheme executes the cell for one scheme and checks the
// conservation-of-funds invariant at the end of the run, so every
// scenario-engine simulation asserts that routing moved funds without
// minting or burning them.
func (s Spec) RunScheme(scheme pcn.Scheme) (pcn.Result, error) {
	st, err := s.beginBuild()
	if err != nil {
		return pcn.Result{}, err
	}
	cfg, err := s.config(scheme)
	if err != nil {
		return pcn.Result{}, err
	}
	if s.Dynamics != nil {
		net, err := pcn.NewNetwork(st.g, cfg)
		if err != nil {
			return pcn.Result{}, err
		}
		d, err := dynamics.NewDriver(net, st.src.Split(4), s.dynConfig())
		if err != nil {
			return pcn.Result{}, err
		}
		if s.Attack != nil {
			inj, err := attack.NewInjector(net, st.src.Split(5), s.attackConfig())
			if err != nil {
				return pcn.Result{}, err
			}
			inj.AttachDriver(d)
			if err := inj.Install(); err != nil {
				return pcn.Result{}, err
			}
		}
		st.seedRetry(net)
		res, err := d.Run()
		if err != nil {
			return pcn.Result{}, err
		}
		return res, net.CheckConservation()
	}
	trace, err := st.trace()
	if err != nil {
		return pcn.Result{}, err
	}
	net, err := pcn.NewNetwork(st.g, cfg)
	if err != nil {
		return pcn.Result{}, err
	}
	if s.Attack != nil {
		res, err := s.runStaticAttack(st, net, trace)
		if err != nil {
			return pcn.Result{}, err
		}
		return res, net.CheckConservation()
	}
	st.seedRetry(net)
	res, err := net.Run(trace)
	if err != nil {
		return pcn.Result{}, err
	}
	return res, net.CheckConservation()
}

// runStaticAttack replays the static trace with an injector armed:
// pcn.Network.Run decomposed onto the stepwise API so the attack's events
// land on the same engine and the horizon covers the attack's unwind
// (held payments release, struck hubs recover) past the trace's own end.
// The injector draws from Split(5), disjoint from every other build stream,
// so a spec minus its attack block reproduces the unattacked cell exactly.
func (s Spec) runStaticAttack(st *buildState, net *pcn.Network, trace []workload.Tx) (pcn.Result, error) {
	if len(trace) == 0 {
		return pcn.Result{}, fmt.Errorf("pcn: empty trace")
	}
	acfg := s.attackConfig()
	horizon := trace[len(trace)-1].Deadline + 1
	if end := acfg.End() + 1; end > horizon {
		horizon = end
	}
	if err := net.BeginRun(horizon); err != nil {
		return pcn.Result{}, err
	}
	for i := range trace {
		if err := net.ScheduleArrival(trace[i]); err != nil {
			return pcn.Result{}, err
		}
	}
	inj, err := attack.NewInjector(net, st.src.Split(5), acfg)
	if err != nil {
		return pcn.Result{}, err
	}
	if err := inj.Install(); err != nil {
		return pcn.Result{}, err
	}
	st.seedRetry(net)
	return net.Execute(horizon)
}

// seedRetry hands the retry layer its backoff-jitter stream — the spec
// source's Split(6). It is the LAST split drawn in every run path (after
// Split(4)/Split(5) when those are armed) and is drawn only when the spec's
// retry block is armed, so cells without retries consume exactly the
// historical stream sequence and stay byte-identical.
func (st *buildState) seedRetry(net *pcn.Network) {
	if r := st.spec.Routing.Retry; r != nil && r.config().Armed() {
		net.SeedRetryJitter(st.src.Split(6))
	}
}

// Run executes the cell with the spec's own scheme.
func (s Spec) Run() (pcn.Result, error) {
	if s.Scheme == "" {
		return pcn.Result{}, fmt.Errorf("scenario: spec %q names no scheme", s.Name)
	}
	scheme, err := pcn.SchemeByName(s.Scheme)
	if err != nil {
		return pcn.Result{}, err
	}
	return s.RunScheme(scheme)
}

// Cell packages one (scheme, axis point) run as a sweep cell. The Run hook
// owns a private graph, trace and network, so cells parallelize on sweep
// workers without shared state.
func (s Spec) Cell(scheme pcn.Scheme, axis string, x float64, label string) sweep.Cell {
	return sweep.Cell{
		Scheme: scheme,
		Seed:   s.Seed,
		Axis:   axis,
		X:      x,
		Label:  label,
		Run:    func() (pcn.Result, error) { return s.RunScheme(scheme) },
	}
}
