// The named-scenario registry: every figure and table of the paper's
// evaluation — plus the post-paper panels (scaling, churn) and the new
// standalone scenarios — as a declarative entry over base Specs. cmd/
// scenarios runs entries by name; internal/experiments' historical API is a
// thin wrapper over the same entries, so both front ends produce identical
// CSVs.
package scenario

import (
	"fmt"
	"sort"
)

// Default sweep grids (figure x-axes). Functions return fresh copies so
// callers can trim them without affecting the registry.
func ChannelScaleGrid() []float64 { return []float64{0.25, 0.5, 1, 2, 4} }
func ValueScaleGrid() []float64   { return []float64{0.5, 1, 2, 4, 8} }
func TauGridMs() []float64        { return []float64{100, 200, 400, 600, 800, 1000} }
func NodeCountGrid() []float64    { return []float64{2000, 4000, 6000, 8000, 10000} }
func XLNodeCountGrid() []float64  { return []float64{20000, 50000, 100000} }
func ChurnRateGrid() []float64    { return []float64{0, 0.5, 1, 2, 4} }
func JammingRateGrid() []float64  { return []float64{0, 5, 10, 20, 40} }
func SpikeFactorGrid() []float64  { return []float64{1, 10, 30, 100} }
func HubOutageGrid() []float64    { return []float64{0, 1, 2, 4} }
func OmegaGrid() []float64 {
	return []float64{0.01, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 1.28, 2.56, 5.12}
}

// DefaultSchemes lists the five schemes of Figs. 7-8 in the paper's legend
// order.
func DefaultSchemes() []string {
	return []string{"Splicer", "Spider", "Flash", "Landmark", "A2L"}
}

// ChurnSchemes is the churn panel's comparison set: the paper's five plus
// the naive shortest-path baseline.
func ChurnSchemes() []string {
	return append(DefaultSchemes(), "ShortestPath")
}

// SmallSpec is the paper's small-scale scenario (100 nodes, §V-A).
func SmallSpec() Spec {
	return Spec{
		Name:        "small",
		Description: "paper small-scale: 100-node Watts-Strogatz, LN channel sizes, 120 tx/s for 8 s",
		Seed:        1,
		Topology: TopologySpec{
			Type: TopoWattsStrogatz, Nodes: 100, Degree: 4, Beta: 0.25, ChannelScale: 1,
		},
		Workload: WorkloadSpec{
			Type: WorkSynthetic, Rate: 120, Duration: 8, Timeout: 3,
			ZipfSkew: 0.8, ValueScale: 1, CirculationFraction: 0.25,
		},
		Routing: RoutingSpec{HubCandidates: 10},
	}
}

// LargeSpec is the paper's large-scale scenario (3000 nodes).
func LargeSpec() Spec {
	s := SmallSpec()
	s.Name = "large"
	s.Description = "paper large-scale: 3000-node Watts-Strogatz, 400 tx/s for 6 s"
	s.Seed = 2
	s.Topology.Nodes = 3000
	s.Workload.Rate = 400
	s.Workload.Duration = 6
	s.Routing.HubCandidates = 24
	return s
}

// ScaleSpec is the scaling scenario beyond the paper's grid (2k-10k nodes).
func ScaleSpec() Spec {
	s := SmallSpec()
	s.Name = "scale"
	s.Description = "scaling stress: 2k-10k-node Watts-Strogatz, exercises the path-computation layer"
	s.Seed = 3
	s.Topology.Nodes = 2000
	s.Workload.Rate = 200
	s.Workload.Duration = 4
	s.Routing.HubCandidates = 24
	return s
}

// ChurnSpec is the dynamic-network scenario.
func ChurnSpec() Spec {
	s := SmallSpec()
	s.Name = "churn"
	s.Description = "dynamic network: small-scale topology under churn, depletion repair and demand drift"
	s.Seed = 4
	s.Workload.Rate = 100
	s.Workload.Duration = 8
	// The dynamics driver owns the demand process; the circulation knob
	// belongs to the static trace generator and must be unset here.
	s.Workload.CirculationFraction = 0
	s.Dynamics = &DynamicsSpec{ChurnRate: 0}
	return s
}

// attackBase is the shared base of the three attack scenarios: the churn
// scenario's topology and demand with a quiet structural timeline
// (churn rate 0), so the attack is the only perturbation — the dynamics
// block stays armed for the panel's Splicer(online) recovery variant.
func attackBase() Spec {
	s := ChurnSpec()
	s.Dynamics = &DynamicsSpec{ChurnRate: 0}
	return s
}

// JammingSpec is the HTLC channel-jamming scenario: attacker nodes issue
// payments that lock value along paths and withhold the preimage until
// timeout, exhausting the per-direction HTLC slots the routing spec caps.
func JammingSpec() Spec {
	s := attackBase()
	s.Name = "jamming"
	s.Description = "HTLC jamming: attacker-held payments exhaust channel slots; TSR/delay vs adversarial rate (tx/s)"
	s.Seed = 13
	s.Routing.MaxInFlightTUs = 40
	s.Attack = &AttackSpec{Type: "jamming", Start: 1, Duration: 4, HoldTime: 2}
	return s
}

// FlashCrowdSpec is the demand-shock scenario: the arrival rate targeting
// one region of the network spikes to Intensity× the base rate.
func FlashCrowdSpec() Spec {
	s := attackBase()
	s.Name = "flash-crowd"
	s.Description = "flash crowd: arrival-rate spike (up to ~100x) on one region; TSR/delay vs spike factor"
	s.Seed = 14
	s.Attack = &AttackSpec{Type: "flash-crowd", Start: 2, Duration: 2, RegionFraction: 0.2}
	return s
}

// HubOutageSpec is the correlated-failure scenario: the top-k placement
// hubs depart simultaneously and recover after an interval.
func HubOutageSpec() Spec {
	s := attackBase()
	s.Name = "hub-outage"
	s.Description = "correlated hub outage: top-k placement hubs depart at once, recover after 3 s; TSR/delay vs k"
	s.Seed = 15
	s.Attack = &AttackSpec{Type: "hub-outage", Start: 2, RecoverAfter: 3}
	return s
}

// DefaultRetrySpec is the retry-resilience panel's armed configuration:
// max_attempts 3 (the first send plus two retries) with the reliability
// layer's default backoff/decay/exclusion knobs.
func DefaultRetrySpec() *RetrySpec {
	return &RetrySpec{MaxAttempts: 3}
}

// RetryJammingSpec, RetryFlashCrowdSpec and RetryHubOutageSpec are the three
// retry-resilience scenarios: the PR-8 attack cells at one representative
// intensity each, with the failure-aware retry layer armed. The panel runs
// each scheme with retries off and on, so the recovered TSR is read directly
// off adjacent columns.
func RetryJammingSpec() Spec {
	s := JammingSpec()
	s.Name = "retry-jamming"
	s.Description = "retry resilience under HTLC jamming (20 tx/s adversarial): recovered TSR per scheme, retries off vs on"
	s.Attack.Intensity = 20
	s.Routing.Retry = DefaultRetrySpec()
	return s
}

func RetryFlashCrowdSpec() Spec {
	s := FlashCrowdSpec()
	s.Name = "retry-flash-crowd"
	s.Description = "retry resilience under a 30x flash crowd: recovered TSR per scheme, retries off vs on"
	s.Attack.Intensity = 30
	s.Routing.Retry = DefaultRetrySpec()
	return s
}

func RetryHubOutageSpec() Spec {
	s := HubOutageSpec()
	s.Name = "retry-hub-outage"
	s.Description = "retry resilience under a top-4 hub outage: recovered TSR per scheme, retries off vs on"
	s.Attack.Intensity = 4
	s.Routing.Retry = DefaultRetrySpec()
	return s
}

// XLScaleSpec is the extreme-scale series (20k-100k nodes): scale-free
// growth (Watts–Strogatz rewiring is quadratic in the ring at these sizes,
// Barabási–Albert is not), a thin workload so path computation rather than
// payment volume dominates, and the hub-label routing tier on — the
// configuration the CSR-first graph core and precomputation exist for.
func XLScaleSpec() Spec {
	return Spec{
		Name:        "scale-xl",
		Description: "extreme scale: 20k-100k-node Barabasi-Albert, hub-label routing, thin workload",
		Seed:        11,
		Topology: TopologySpec{
			Type: TopoBarabasiAlbert, Nodes: 20000, AttachEdges: 3, ChannelScale: 1,
		},
		Workload: WorkloadSpec{
			Type: WorkSynthetic, Rate: 60, Duration: 2, Timeout: 3,
			ZipfSkew: 0.8, ValueScale: 1, CirculationFraction: 0.25,
		},
		Routing: RoutingSpec{HubCandidates: 24, Override: "hub-labels"},
	}
}

// XLSchemes is the scheme set for the extreme-scale series: the hub scheme
// the precomputation serves, the landmark scheme whose detour tails it
// serves, and the single-path baseline. (Spider/Flash's per-payment k-path
// searches at 100k nodes dominate runtime without informing the scaling
// story.)
func XLSchemes() []string {
	return []string{"Splicer", "Landmark", "ShortestPath"}
}

// MainnetSpec runs the scheme comparison on the mainnet-size snapshot asset
// (~15k nodes / ~80k channels) — the first-class "real topology" scenario.
func MainnetSpec() Spec {
	return Spec{
		Name:        "ln-mainnet",
		Description: "Lightning-mainnet-size snapshot (~15k nodes, ~80k channels), hub-label routing",
		Seed:        12,
		Topology:    TopologySpec{Type: TopoSnapshot, Snapshot: "builtin:ln-mainnet", ChannelScale: 1},
		Workload: WorkloadSpec{
			Type: WorkSynthetic, Rate: 150, Duration: 3, Timeout: 3,
			ZipfSkew: 0.8, ValueScale: 1, CirculationFraction: 0.25,
		},
		Routing: RoutingSpec{HubCandidates: 24, Override: "hub-labels"},
	}
}

// ReplaySnapshotSpec replays a captured trace over a snapshot topology: both
// the graph and the payments come from checked-in CSV fixtures rather than
// generators — the template for running real captured data.
func ReplaySnapshotSpec() Spec {
	return Spec{
		Name:        "replay-snapshot",
		Description: "trace replay on a snapshot topology: 80-node scale-free LN-like graph, 5 s captured trace",
		Seed:        6,
		Topology:    TopologySpec{Type: TopoSnapshot, Snapshot: "builtin:ln-small", ChannelScale: 1},
		Workload:    WorkloadSpec{Type: WorkReplay, Trace: "builtin:replay-small", Timeout: 3},
		Routing:     RoutingSpec{HubCandidates: 8},
	}
}

// BurstyHubSpokeSpec runs bursty on-off demand over a hierarchical hub-spoke
// topology: leaf clients behind mid-tier hubs behind a funded core backbone,
// with ~3x arrival bursts against a near-idle baseline.
func BurstyHubSpokeSpec() Spec {
	return Spec{
		Name:        "bursty-hubspoke",
		Description: "bursty on-off arrivals (3x bursts) on a 3-core hierarchical hub-spoke network, leaf-only demand",
		Seed:        7,
		Topology: TopologySpec{
			Type: TopoHubSpoke, Cores: 3, HubsPerCore: 3, ClientsPerHub: 10,
			CoreCapScale: 8, HubCapScale: 4, ChannelScale: 1,
		},
		Workload: WorkloadSpec{
			Type: WorkSynthetic, Rate: 80, Duration: 8, Timeout: 3,
			ZipfSkew: 0.8, ValueScale: 1, CirculationFraction: 0.25,
			ExcludeHubTier: true,
			OnOff:          &OnOffSpec{MeanOn: 1, MeanOff: 1.5, OnFactor: 3, OffFactor: 0.2},
		},
		Routing: RoutingSpec{HubCandidates: 8},
	}
}

// Kind selects an entry's runner shape.
type Kind int

// Entry kinds.
const (
	// KindFigure sweeps Axis over Schemes and reports Metric per point.
	KindFigure Kind = iota + 1
	// KindChurn is the churn panel (TSR + delay, schemes + online variant).
	KindChurn
	// KindBalanceCost / KindTradeoff / KindHubCount / KindDelayOverhead are
	// the Fig. 9 placement panels over Omegas.
	KindBalanceCost
	KindTradeoff
	KindHubCount
	KindDelayOverhead
	// KindStatic renders a fixed table (Table I).
	KindStatic
	// KindRoutingChoices is the Table II study over Base (small) and
	// BaseLarge.
	KindRoutingChoices
	// KindSchemeTable runs the base spec once per scheme (standalone
	// scenarios).
	KindSchemeTable
	// KindAttack is the resilience panel (TSR + delay vs attack intensity,
	// schemes + online variant).
	KindAttack
	// KindRetry is the retry-resilience panel: every scheme runs the attacked
	// cell with retries off and on, quantifying the TSR the failure-aware
	// retry layer recovers (plus a per-variant failure-reason breakdown).
	KindRetry
)

// Entry is one named, runnable scenario.
type Entry struct {
	Name        string
	Title       string
	Description string
	Kind        Kind
	Base        Spec
	// XLabel is the CSV x-column for figure entries.
	XLabel string
	// Axis, Schemes, Metric parameterize KindFigure (Axis.Values also feeds
	// KindChurn).
	Axis    Axis
	Schemes []string
	Metric  Metric
	// Omegas feeds the placement panels.
	Omegas []float64
	// BaseLarge and Choices feed KindRoutingChoices.
	BaseLarge *Spec
	Choices   *ChoicesOptions
	// Static produces KindStatic's table.
	Static func() Table
}

// Run executes the entry and renders its table.
func (e *Entry) Run(opts RunOptions) (Table, error) {
	switch e.Kind {
	case KindFigure:
		series, err := RunFigure(e.Base, e.Axis, e.Schemes, e.Metric, opts)
		if err != nil {
			return Table{}, err
		}
		return SeriesTable(e.Title, e.XLabel, series), nil
	case KindChurn:
		tsr, delay, err := RunChurnPanel(e.Base, e.Axis.Values, e.Schemes, opts)
		if err != nil {
			return Table{}, err
		}
		return ChurnTable(e.Title, tsr, delay), nil
	case KindBalanceCost:
		series, err := BalanceCostSeries(e.Base, e.Omegas)
		if err != nil {
			return Table{}, err
		}
		return SeriesTable(e.Title, "omega", series), nil
	case KindTradeoff:
		pts, err := CostTradeoff(e.Base, e.Omegas)
		if err != nil {
			return Table{}, err
		}
		return TradeoffTable(e.Title, pts), nil
	case KindHubCount:
		s, err := HubCount(e.Base, e.Omegas)
		if err != nil {
			return Table{}, err
		}
		return SeriesTable(e.Title, "omega", []Series{s}), nil
	case KindDelayOverhead:
		pts, err := DelayOverhead(e.Base, e.Omegas)
		if err != nil {
			return Table{}, err
		}
		return DelayOverheadTable(e.Title, pts), nil
	case KindStatic:
		return e.Static(), nil
	case KindRoutingChoices:
		var choices ChoicesOptions
		if e.Choices != nil {
			choices = *e.Choices
		}
		rows, err := RoutingChoices(e.Base, *e.BaseLarge, choices, opts)
		if err != nil {
			return Table{}, err
		}
		return TableIITable(rows), nil
	case KindSchemeTable:
		return SchemeTable(e.Base, e.Schemes, opts)
	case KindAttack:
		tsr, delay, err := RunAttackPanel(e.Base, e.Axis.Values, e.Schemes, opts)
		if err != nil {
			return Table{}, err
		}
		return AttackTable(e.Title, tsr, delay), nil
	case KindRetry:
		tsr, delay, reasons, err := RunRetryPanel(e.Base, e.Axis.Values, e.Schemes, opts)
		if err != nil {
			return Table{}, err
		}
		return RetryTable(e.Title, tsr, delay, reasons), nil
	default:
		return Table{}, fmt.Errorf("scenario: entry %q has unknown kind %d", e.Name, e.Kind)
	}
}

// TableI reproduces the paper's qualitative property matrix (Table I):
// which scheme family offers which property. Static by construction.
func TableI() Table {
	yes, no := "✓", "—"
	return Table{
		Title: "Table I: state-of-the-art PCN scalable schemes",
		Header: []string{
			"Property",
			"Lightning/Raiden", "Flare/Sprites", "REVIVE", "Spider", "Flash",
			"TumbleBit", "A2L", "Perun", "Commit-Chains", "Splicer",
		},
		Rows: [][]string{
			{"Improving throughput", no, no, yes, yes, yes, no, no, yes, yes, yes},
			{"Support large transactions", no, no, no, yes, yes, no, no, no, no, yes},
			{"Payment channel balance", no, no, yes, yes, no, no, no, no, no, yes},
			{"Deadlock-free routing", no, no, no, yes, no, no, no, no, no, yes},
			{"Transaction unlinkability", no, no, no, no, no, yes, yes, no, yes, yes},
			{"Optimal hub placement", no, no, no, no, no, no, no, no, no, yes},
		},
	}
}

// buildRegistry assembles the entry set.
func buildRegistry() map[string]*Entry {
	small, large, scale, churn := SmallSpec(), LargeSpec(), ScaleSpec(), ChurnSpec()
	largeCopy := large
	figure := func(name, title, param string, values []float64, base Spec, metric Metric) *Entry {
		return &Entry{
			Name: name, Title: title, Kind: KindFigure, Base: base,
			XLabel: param, Axis: Axis{Param: param, Values: values},
			Schemes: DefaultSchemes(), Metric: metric,
			Description: title,
		}
	}
	placementEntry := func(name, title string, kind Kind, base Spec) *Entry {
		return &Entry{
			Name: name, Title: title, Kind: kind, Base: base,
			Omegas: OmegaGrid(), Description: title,
		}
	}
	attackEntry := func(name, title string, base Spec, grid []float64) *Entry {
		return &Entry{
			Name: name, Title: title, Kind: KindAttack, Base: base,
			XLabel:  "attack_intensity",
			Axis:    Axis{Param: "attack_intensity", Values: grid},
			Schemes: ChurnSchemes(), Description: base.Description,
		}
	}
	retryEntry := func(name, title string, base Spec) *Entry {
		return &Entry{
			Name: name, Title: title, Kind: KindRetry, Base: base,
			XLabel: "attack_intensity",
			// One representative intensity per attack (the spec carries it):
			// the panel's axis is the off/on column pairs, not the grid.
			Axis:    Axis{Param: "attack_intensity", Values: []float64{base.Attack.Intensity}},
			Schemes: ChurnSchemes(), Description: base.Description,
		}
	}
	entries := []*Entry{
		figure("fig7a", "Fig 7(a): TSR vs channel size (small)", "channel_scale", ChannelScaleGrid(), small, MetricTSR),
		figure("fig7b", "Fig 7(b): TSR vs transaction size (small)", "value_scale", ValueScaleGrid(), small, MetricTSR),
		figure("fig7c", "Fig 7(c): TSR vs update time (small)", "tau_ms", TauGridMs(), small, MetricTSR),
		figure("fig7d", "Fig 7(d): normalized throughput vs update time (small)", "tau_ms", TauGridMs(), small, MetricThroughput),
		figure("fig8a", "Fig 8(a): TSR vs channel size (large)", "channel_scale", ChannelScaleGrid(), large, MetricTSR),
		figure("fig8b", "Fig 8(b): TSR vs transaction size (large)", "value_scale", ValueScaleGrid(), large, MetricTSR),
		figure("fig8c", "Fig 8(c): TSR vs update time (large)", "tau_ms", TauGridMs(), large, MetricTSR),
		figure("fig8d", "Fig 8(d): normalized throughput vs update time (large)", "tau_ms", TauGridMs(), large, MetricThroughput),
		figure("figscale", "Scaling: normalized throughput vs |V| (2k-10k nodes)", "nodes", NodeCountGrid(), scale, MetricThroughput),
		{
			Name: "figscale-xl", Title: "Scaling XL: normalized throughput vs |V| (20k-100k nodes)",
			Kind: KindFigure, Base: XLScaleSpec(), XLabel: "nodes",
			Axis:    Axis{Param: "nodes", Values: XLNodeCountGrid()},
			Schemes: XLSchemes(), Metric: MetricThroughput,
			Description: XLScaleSpec().Description,
		},
		{
			Name: "figchurn", Title: "Churn: TSR and delay vs churn rate (dynamic network)",
			Kind: KindChurn, Base: churn, XLabel: "churn_rate",
			Axis:        Axis{Param: "churn_rate", Values: ChurnRateGrid()},
			Schemes:     ChurnSchemes(),
			Description: "dynamic-network panel: six schemes + Splicer(online) under structural churn",
		},
		placementEntry("fig9a", "Fig 9(a): balance cost vs omega (small)", KindBalanceCost, small),
		placementEntry("fig9b", "Fig 9(b): cost tradeoff (small)", KindTradeoff, small),
		placementEntry("fig9c", "Fig 9(c): smooth nodes vs omega (small)", KindHubCount, small),
		placementEntry("fig9d", "Fig 9(d): smooth nodes vs omega (large)", KindHubCount, large),
		placementEntry("fig9e", "Fig 9(e): delay vs overhead (small)", KindDelayOverhead, small),
		placementEntry("fig9f", "Fig 9(f): delay vs overhead (large)", KindDelayOverhead, large),
		{
			Name: "table1", Title: "Table I: state-of-the-art PCN scalable schemes",
			Kind: KindStatic, Static: TableI,
			Description: "qualitative property matrix (static)",
		},
		{
			Name: "table2", Title: "Table II: influence of routing choices on Splicer's TSR",
			Kind: KindRoutingChoices, Base: small, BaseLarge: &largeCopy,
			Description: "routing-choice study: path type x path number x scheduler at both scales",
		},
		{
			Name: "replay-snapshot", Title: "Scenario replay-snapshot: scheme comparison",
			Kind: KindSchemeTable, Base: ReplaySnapshotSpec(), Schemes: DefaultSchemes(),
			Description: ReplaySnapshotSpec().Description,
		},
		{
			Name: "bursty-hubspoke", Title: "Scenario bursty-hubspoke: scheme comparison",
			Kind: KindSchemeTable, Base: BurstyHubSpokeSpec(), Schemes: DefaultSchemes(),
			Description: BurstyHubSpokeSpec().Description,
		},
		{
			Name: "ln-mainnet", Title: "Scenario ln-mainnet: scheme comparison",
			Kind: KindSchemeTable, Base: MainnetSpec(), Schemes: DefaultSchemes(),
			Description: MainnetSpec().Description,
		},
		attackEntry("jamming", "Resilience: TSR and delay vs HTLC-jamming rate", JammingSpec(), JammingRateGrid()),
		attackEntry("flash-crowd", "Resilience: TSR and delay vs flash-crowd spike factor", FlashCrowdSpec(), SpikeFactorGrid()),
		attackEntry("hub-outage", "Resilience: TSR and delay vs correlated hub outages (top-k)", HubOutageSpec(), HubOutageGrid()),
		retryEntry("retry-jamming", "Retry resilience: recovered TSR under HTLC jamming (20 tx/s)", RetryJammingSpec()),
		retryEntry("retry-flash-crowd", "Retry resilience: recovered TSR under a 30x flash crowd", RetryFlashCrowdSpec()),
		retryEntry("retry-hub-outage", "Retry resilience: recovered TSR under a top-4 hub outage", RetryHubOutageSpec()),
	}
	reg := make(map[string]*Entry, len(entries))
	for _, e := range entries {
		if _, dup := reg[e.Name]; dup {
			panic(fmt.Sprintf("scenario: duplicate registry entry %q", e.Name))
		}
		reg[e.Name] = e
	}
	return reg
}

var registry = buildRegistry()

// Lookup returns the named entry.
func Lookup(name string) (*Entry, bool) {
	e, ok := registry[name]
	return e, ok
}

// Names lists the registered entry names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
