// Placement panels (Fig. 9): analytical evaluations of the hub-placement
// solver over a spec's topology. Ported from internal/experiments, which
// now delegates here; the build path reuses the spec pipeline so the
// topologies (and hence the numbers) match the historical runners exactly.
package scenario

import (
	"fmt"
	"math"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/pcn"
	"github.com/splicer-pcn/splicer/internal/placement"
	"github.com/splicer-pcn/splicer/internal/rng"
	"github.com/splicer-pcn/splicer/internal/topology"
)

// placementParts materializes what every placement panel shares across its
// omega sweep — the topology (built once; it depends only on the seed, not
// on omega), the candidate list from the voting excellence proxy (top
// degree), and the remaining nodes as clients.
type placementParts struct {
	st      *buildState
	g       *graph.Graph
	cands   []graph.NodeID
	clients []graph.NodeID
}

func newPlacementParts(s Spec) (*placementParts, error) {
	st, err := s.beginBuild()
	if err != nil {
		return nil, err
	}
	p := &placementParts{st: st, g: st.g}
	p.cands = topology.TopDegreeNodes(p.g, s.hubCandidates())
	candSet := map[graph.NodeID]bool{}
	for _, c := range p.cands {
		candSet[c] = true
	}
	for i := 0; i < p.g.NumNodes(); i++ {
		if !candSet[graph.NodeID(i)] {
			p.clients = append(p.clients, graph.NodeID(i))
		}
	}
	return p, nil
}

// instance builds the placement instance for one omega.
func (p *placementParts) instance(omega float64) (*placement.Instance, error) {
	return placement.NewInstanceFromGraph(p.g, p.clients, p.cands, omega)
}

// solveBoth returns the approximation plan and (when the candidate set is
// small enough) the exact plan.
func solveBoth(inst *placement.Instance) (approx placement.Plan, exact placement.Plan, haveExact bool, err error) {
	approx, err = inst.SolveDoubleGreedy(nil)
	if err != nil {
		return placement.Plan{}, placement.Plan{}, false, err
	}
	if len(inst.Candidates) <= 16 {
		exact, err = inst.SolveExhaustive()
		if err != nil {
			return placement.Plan{}, placement.Plan{}, false, err
		}
		return approx, exact, true, nil
	}
	return approx, placement.Plan{}, false, nil
}

func bestPlan(inst *placement.Instance) (placement.Plan, error) {
	if len(inst.Candidates) <= 16 {
		return inst.SolveExhaustive()
	}
	return inst.SolveDoubleGreedy(nil)
}

// BalanceCostSeries is Fig. 9(a): average balance cost vs ω, model
// (approximation) vs optimal.
func BalanceCostSeries(base Spec, omegas []float64) ([]Series, error) {
	parts, err := newPlacementParts(base)
	if err != nil {
		return nil, err
	}
	model := Series{Name: "model"}
	optimal := Series{Name: "optimal"}
	for _, omega := range omegas {
		inst, err := parts.instance(omega)
		if err != nil {
			return nil, err
		}
		approx, exact, haveExact, err := solveBoth(inst)
		if err != nil {
			return nil, err
		}
		model.Points = append(model.Points, Point{X: omega, Y: approx.TotalCost})
		if haveExact {
			optimal.Points = append(optimal.Points, Point{X: omega, Y: exact.TotalCost})
		}
	}
	out := []Series{model}
	if len(optimal.Points) > 0 {
		out = append(out, optimal)
	}
	return out, nil
}

// TradeoffPoint is one annotated point of Fig. 9(b).
type TradeoffPoint struct {
	Omega    float64
	MgmtCost float64
	SyncCost float64
	NumHubs  int
}

// CostTradeoff is Fig. 9(b): the management-vs-synchronization cost curve,
// annotated with (ω, number of smooth nodes).
func CostTradeoff(base Spec, omegas []float64) ([]TradeoffPoint, error) {
	parts, err := newPlacementParts(base)
	if err != nil {
		return nil, err
	}
	var out []TradeoffPoint
	for _, omega := range omegas {
		inst, err := parts.instance(omega)
		if err != nil {
			return nil, err
		}
		plan, err := bestPlan(inst)
		if err != nil {
			return nil, err
		}
		out = append(out, TradeoffPoint{
			Omega:    omega,
			MgmtCost: plan.MgmtCost,
			SyncCost: plan.SyncCost,
			NumHubs:  plan.NumPlaced(),
		})
	}
	return out, nil
}

// HubCount is Fig. 9(c)/(d): the number of smooth nodes placed per ω. The
// series carries the spec's name, matching the historical legend.
func HubCount(base Spec, omegas []float64) (Series, error) {
	parts, err := newPlacementParts(base)
	if err != nil {
		return Series{}, err
	}
	s := Series{Name: base.Name}
	for _, omega := range omegas {
		inst, err := parts.instance(omega)
		if err != nil {
			return Series{}, err
		}
		plan, err := bestPlan(inst)
		if err != nil {
			return Series{}, err
		}
		s.Points = append(s.Points, Point{X: omega, Y: float64(plan.NumPlaced())})
	}
	return s, nil
}

// DelayOverheadPoint is one point of Fig. 9(e/f): average transaction delay
// vs total traffic overhead, with or without PCHs.
type DelayOverheadPoint struct {
	Omega    float64 // 0 for the "without PCHs" reference
	WithPCH  bool
	DelayMs  float64
	Overhead float64
}

// perHopDelayMs is the modeled per-hop communication latency for the
// Fig. 9(e/f) analytical curves.
const perHopDelayMs = 20

// DelayOverhead is Fig. 9(e)/9(f): iterate ω, compute the average payment
// delay (client → hub → hub → client path hops × per-hop latency) and the
// total communication overhead (management + synchronization cost mass);
// compare against the source-routing reference without PCHs, where every
// sender maintains the full topology.
func DelayOverhead(base Spec, omegas []float64) ([]DelayOverheadPoint, error) {
	parts, err := newPlacementParts(base)
	if err != nil {
		return nil, err
	}
	g, cands, clients := parts.g, parts.cands, parts.clients
	hopsFrom := make([][]int, len(cands))
	for i, c := range cands {
		hopsFrom[i] = g.BFSHops(c)
	}

	var out []DelayOverheadPoint
	for _, omega := range omegas {
		inst, err := parts.instance(omega)
		if err != nil {
			return nil, err
		}
		plan, err := bestPlan(inst)
		if err != nil {
			return nil, err
		}
		placed := plan.PlacedCandidates()
		// Average client→hub hop count under the plan's assignment.
		totalAccess := 0.0
		for m, hubIdx := range plan.Assign {
			totalAccess += float64(hopsFrom[hubIdx][clients[m]])
		}
		meanAccess := totalAccess / float64(len(clients))
		// Average hub→hub hop count.
		meanHubHub := 0.0
		if len(placed) > 1 {
			total, pairs := 0.0, 0
			for _, a := range placed {
				for _, b := range placed {
					if a != b {
						total += float64(hopsFrom[a][cands[b]])
						pairs++
					}
				}
			}
			meanHubHub = total / float64(pairs)
		}
		// A payment crosses: sender→hub, hub⇝hub, hub→recipient.
		delay := (2*meanAccess + meanHubHub) * perHopDelayMs
		overhead := plan.MgmtCost + plan.SyncCost
		out = append(out, DelayOverheadPoint{Omega: omega, WithPCH: true, DelayMs: delay, Overhead: overhead})
	}
	// Without PCHs: every sender source-routes. The per-payment delay has
	// three components the PCH side avoids: (i) the sender must probe its
	// candidate paths end-to-end before committing rates/amounts (a probe
	// round trip of 2×hops), (ii) the payment itself (hops), and (iii) the
	// sender-side route computation over the full topology. PCHs instead
	// decide from the epoch-synchronized global state and send immediately
	// (§III-C's management-cost motivation). Overhead: every node maintains
	// the full topology via gossip, costing management-cost-per-hop × mean
	// hops per node.
	meanPair, err := meanPairwiseHops(g, parts.st.src.Split(9), 200)
	if err != nil {
		return nil, err
	}
	computeMs := pcn.NewConfig(pcn.SchemeSpider).SenderComputeDelayPerNode * float64(g.NumNodes()) * 1000
	srcDelay := 3*meanPair*perHopDelayMs + computeMs
	srcOverhead := placement.DefaultMgmtPerHop * meanPair * float64(g.NumNodes())
	out = append(out, DelayOverheadPoint{Omega: 0, WithPCH: false, DelayMs: srcDelay, Overhead: srcOverhead})
	return out, nil
}

// meanPairwiseHops estimates the mean shortest-path hop count by sampling.
func meanPairwiseHops(g *graph.Graph, src *rng.Source, samples int) (float64, error) {
	if g.NumNodes() < 2 {
		return 0, fmt.Errorf("scenario: graph too small")
	}
	total, count := 0.0, 0
	for i := 0; i < samples; i++ {
		u := graph.NodeID(src.IntN(g.NumNodes()))
		dist := g.BFSHops(u)
		v := graph.NodeID(src.IntN(g.NumNodes()))
		if u == v || dist[v] < 0 {
			continue
		}
		total += float64(dist[v])
		count++
	}
	if count == 0 {
		return 0, fmt.Errorf("scenario: no connected samples")
	}
	return total / float64(count), nil
}

// MeanGap returns the mean relative gap between two series sharing X values;
// tests use it to quantify approximation quality in Fig. 9(a).
func MeanGap(a, b Series) float64 {
	n := len(a.Points)
	if len(b.Points) < n {
		n = len(b.Points)
	}
	if n == 0 {
		return math.NaN()
	}
	total := 0.0
	for i := 0; i < n; i++ {
		ref := b.Points[i].Y
		if ref == 0 {
			continue
		}
		total += math.Abs(a.Points[i].Y-ref) / math.Abs(ref)
	}
	return total / float64(n)
}
