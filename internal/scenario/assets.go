// Shipped fixtures. Spec file references of the form "builtin:<name>"
// resolve against this embedded set, so registered scenarios that replay a
// trace or load a snapshot work from any working directory (and inside `go
// test`); plain references are opened as OS paths.
package scenario

import (
	"embed"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/topology"
	"github.com/splicer-pcn/splicer/internal/workload"
)

//go:embed assets/*.csv
var assetFS embed.FS

// builtinAssets maps builtin names to embedded files.
var builtinAssets = map[string]string{
	// ln-small: an 80-node scale-free (Barabási–Albert m=2) channel graph
	// with LN-calibrated channel sizes — a stand-in for a captured Lightning
	// subgraph snapshot.
	"ln-small": "assets/ln_snapshot_small.csv",
	// replay-small: a 5-second, ~60 tx/s Zipf-skewed payment trace over the
	// ln-small node set, with the §II-B circulation component.
	"replay-small": "assets/trace_replay_small.csv",
}

// BuiltinAssets lists the builtin fixture names, sorted.
func BuiltinAssets() []string {
	names := make([]string, 0, len(builtinAssets))
	for n := range builtinAssets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// openAsset resolves a file reference: "builtin:<name>" from the embedded
// set, anything else from the filesystem.
func openAsset(ref string) (io.ReadCloser, error) {
	if name, ok := strings.CutPrefix(ref, "builtin:"); ok {
		path, ok := builtinAssets[name]
		if !ok {
			return nil, fmt.Errorf("scenario: unknown builtin asset %q (have %v)", name, BuiltinAssets())
		}
		return assetFS.Open(path)
	}
	return os.Open(ref)
}

func loadSnapshotAsset(ref string) (*graph.Graph, error) {
	r, err := openAsset(ref)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return topology.ReadSnapshot(r)
}

func loadTraceAsset(ref string) ([]workload.Tx, error) {
	r, err := openAsset(ref)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return workload.ReadTrace(r)
}
