// Shipped fixtures. Spec file references of the form "builtin:<name>"
// resolve against this embedded set, so registered scenarios that replay a
// trace or load a snapshot work from any working directory (and inside `go
// test`); plain references are opened as OS paths.
package scenario

import (
	"compress/gzip"
	"embed"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/topology"
	"github.com/splicer-pcn/splicer/internal/workload"
)

//go:embed assets/*.csv assets/*.csv.gz
var assetFS embed.FS

// builtinAssets maps builtin names to embedded files. Files ending in .gz
// are decompressed transparently by openAsset.
var builtinAssets = map[string]string{
	// ln-small: an 80-node scale-free (Barabási–Albert m=2) channel graph
	// with LN-calibrated channel sizes — a stand-in for a captured Lightning
	// subgraph snapshot.
	"ln-small": "assets/ln_snapshot_small.csv",
	// ln-mainnet: a Lightning-mainnet-sized channel graph (~15k nodes, ~80k
	// channels): Barabási–Albert m=5 growth plus degree-biased extra channels
	// between established nodes, LN-calibrated channel sizes. Regenerate with
	// `SPLICER_REGEN_ASSETS=1 go test ./internal/scenario -run RegenAssets`.
	"ln-mainnet": "assets/ln_snapshot_mainnet.csv.gz",
	// replay-small: a 5-second, ~60 tx/s Zipf-skewed payment trace over the
	// ln-small node set, with the §II-B circulation component.
	"replay-small": "assets/trace_replay_small.csv",
}

// BuiltinAssets lists the builtin fixture names, sorted.
func BuiltinAssets() []string {
	names := make([]string, 0, len(builtinAssets))
	for n := range builtinAssets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// openAsset resolves a file reference: "builtin:<name>" from the embedded
// set, anything else from the filesystem. A .gz suffix on the resolved file
// is decompressed transparently, so large snapshots ship compressed.
func openAsset(ref string) (io.ReadCloser, error) {
	path := ref
	var f io.ReadCloser
	var err error
	if name, ok := strings.CutPrefix(ref, "builtin:"); ok {
		path, ok = builtinAssets[name]
		if !ok {
			return nil, fmt.Errorf("scenario: unknown builtin asset %q (have %v)", name, BuiltinAssets())
		}
		f, err = assetFS.Open(path)
	} else {
		f, err = os.Open(path)
	}
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, nil
	}
	zr, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("scenario: open %s: %w", path, err)
	}
	return &gzipAsset{zr: zr, f: f}, nil
}

// gzipAsset closes both the decompressor and the underlying file.
type gzipAsset struct {
	zr *gzip.Reader
	f  io.Closer
}

func (g *gzipAsset) Read(p []byte) (int, error) { return g.zr.Read(p) }

func (g *gzipAsset) Close() error {
	zerr := g.zr.Close()
	ferr := g.f.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}

func loadSnapshotAsset(ref string) (*graph.Graph, error) {
	r, err := openAsset(ref)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return topology.ReadSnapshot(r)
}

func loadTraceAsset(ref string) ([]workload.Tx, error) {
	r, err := openAsset(ref)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return workload.ReadTrace(r)
}
