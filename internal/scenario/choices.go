// The routing-choice study (Table II): Splicer's TSR for each path type,
// path count and queue scheduling algorithm, at small and large scales.
// Ported from internal/experiments; cell order (choice-major, small before
// large, then seed) and labels are part of the golden-fixture contract.
package scenario

import (
	"fmt"

	"github.com/splicer-pcn/splicer/internal/channel"
	"github.com/splicer-pcn/splicer/internal/pcn"
	"github.com/splicer-pcn/splicer/internal/routing"
	"github.com/splicer-pcn/splicer/internal/sweep"
)

// TableIIRow is one cell group of Table II: a routing choice and its TSR at
// both network scales.
type TableIIRow struct {
	Group  string // "Path Type", "Path Number", "Scheduling Algorithm"
	Choice string
	Small  float64
	Large  float64
}

// ChoicesOptions narrows the routing-choice study for test/bench budgets.
type ChoicesOptions struct {
	// PathTypes, PathNumbers, Schedulers default to the paper's grids when
	// nil/empty.
	PathTypes   []routing.PathType
	PathNumbers []int
	Schedulers  []string
	// SkipLarge drops the large-scale column (test budgets).
	SkipLarge bool
	// SmallSeeds / LargeSeeds pin each scale's replication seed list
	// explicitly (the historical per-scenario Seeds semantics). Empty lists
	// fall back to the shared RunOptions derivation against that scale's
	// base seed.
	SmallSeeds []uint64
	LargeSeeds []uint64
}

func (o *ChoicesOptions) fill() {
	if len(o.PathTypes) == 0 {
		o.PathTypes = []routing.PathType{routing.KSP, routing.Heuristic, routing.EDW, routing.EDS}
	}
	if len(o.PathNumbers) == 0 {
		o.PathNumbers = []int{1, 3, 5, 7}
	}
	if len(o.Schedulers) == 0 {
		o.Schedulers = []string{"FIFO", "LIFO", "SPF", "EDF"}
	}
}

// RoutingChoices runs the Table II study over the small and large base
// specs. All cells run on one sweep worker pool; cell order is fixed so the
// rows are identical for any worker count.
func RoutingChoices(small, large Spec, opts ChoicesOptions, run RunOptions) ([]TableIIRow, error) {
	opts.fill()
	type choice struct {
		group, name string
		apply       func(*RoutingSpec)
	}
	var choices []choice
	for _, pt := range opts.PathTypes {
		pt := pt
		choices = append(choices, choice{"Path Type", pt.String(), func(r *RoutingSpec) { r.PathType = pt.String() }})
	}
	for _, k := range opts.PathNumbers {
		k := k
		choices = append(choices, choice{"Path Number", fmt.Sprintf("%d", k), func(r *RoutingSpec) { r.NumPaths = k }})
	}
	for _, name := range opts.Schedulers {
		name := name
		if _, err := channel.SchedulerByName(name); err != nil {
			return nil, err
		}
		choices = append(choices, choice{"Scheduling Algorithm", name, func(r *RoutingSpec) { r.Scheduler = name }})
	}
	// One cell per (choice, scale, seed); each (choice, scale) group keys on
	// its label and the rows report the across-seed mean TSR.
	var cells []sweep.Cell
	addCells := func(scen Spec, seeds []uint64, label string, apply func(*RoutingSpec)) {
		if len(seeds) == 0 {
			seeds = run.seedsFor(scen.Seed)
		}
		for _, seed := range seeds {
			cell := scen
			cell.Seed = seed
			apply(&cell.Routing)
			cells = append(cells, cell.Cell(pcn.SchemeSplicer, "scale", 0, label))
		}
	}
	for _, ch := range choices {
		label := ch.group + "/" + ch.name
		addCells(small, opts.SmallSeeds, label+" small", ch.apply)
		if !opts.SkipLarge {
			addCells(large, opts.LargeSeeds, label+" large", ch.apply)
		}
	}
	results := sweep.Run(cells, run.workerCount())
	if err := sweep.FirstErr(results); err != nil {
		return nil, fmt.Errorf("scenario: routing choices: %w", err)
	}
	tsrByLabel := map[string]float64{}
	for _, s := range sweep.Aggregate(results) {
		tsrByLabel[s.Label] = s.TSR.Mean
	}
	rows := make([]TableIIRow, len(choices))
	for i, ch := range choices {
		label := ch.group + "/" + ch.name
		rows[i] = TableIIRow{Group: ch.group, Choice: ch.name, Small: tsrByLabel[label+" small"]}
		if !opts.SkipLarge {
			rows[i].Large = tsrByLabel[label+" large"]
		}
	}
	return rows, nil
}
