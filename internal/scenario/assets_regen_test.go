package scenario

// Generator and pins for the large builtin assets. The mainnet-size
// snapshot is checked in compressed; TestRegenAssets rebuilds it
// deterministically when SPLICER_REGEN_ASSETS=1 is set, and the pin test
// keeps the shipped file honest (anyone who regenerates with different
// parameters trips the counts).

import (
	"compress/gzip"
	"os"
	"testing"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/rng"
	"github.com/splicer-pcn/splicer/internal/topology"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// Mainnet snapshot shape: public-Lightning scale (~15k active nodes, ~80k
// channels) as of the paper's evaluation era.
const (
	mainnetSnapshotSeed  = 20230701
	mainnetSnapshotNodes = 15000
	mainnetSnapshotEdges = 80000
	mainnetSnapshotPath  = "assets/ln_snapshot_mainnet.csv.gz"
)

// generateMainnetGraph builds the ln-mainnet channel graph: Barabási–Albert
// m=5 growth (the LN degree skew), then degree-biased extra channels
// between established nodes up to the target count — mirroring how
// well-connected routing nodes keep opening channels to each other.
func generateMainnetGraph(t *testing.T) *graph.Graph {
	t.Helper()
	src := rng.New(mainnetSnapshotSeed)
	sizes := workload.NewChannelSizeDist(src.Split(1), 1)
	capFn := sizes.CapacityFunc()
	g, err := topology.BarabasiAlbert(src.Split(2), mainnetSnapshotNodes, 5, capFn)
	if err != nil {
		t.Fatal(err)
	}
	// Degree-biased augmentation: sampling endpoints from the edge-endpoint
	// multiset is proportional to current degree (preferential attachment).
	aug := src.Split(3)
	ends := make([]graph.NodeID, 0, 2*g.NumEdges())
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(graph.EdgeID(i))
		ends = append(ends, e.U, e.V)
	}
	for g.NumEdges() < mainnetSnapshotEdges {
		u := ends[aug.IntN(len(ends))]
		v := ends[aug.IntN(len(ends))]
		if u == v || g.HasEdgeBetween(u, v) {
			continue
		}
		fwd, rev := capFn()
		if _, err := g.AddEdge(u, v, fwd, rev); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// TestRegenAssets rewrites the generated builtin assets in place. Gated so
// a normal test run never touches the working tree:
//
//	SPLICER_REGEN_ASSETS=1 go test ./internal/scenario -run RegenAssets
func TestRegenAssets(t *testing.T) {
	if os.Getenv("SPLICER_REGEN_ASSETS") == "" {
		t.Skip("set SPLICER_REGEN_ASSETS=1 to regenerate checked-in assets")
	}
	g := generateMainnetGraph(t)
	f, err := os.Create(mainnetSnapshotPath)
	if err != nil {
		t.Fatal(err)
	}
	zw, err := gzip.NewWriterLevel(f, gzip.BestCompression)
	if err != nil {
		t.Fatal(err)
	}
	if err := topology.WriteSnapshot(zw, g); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %d nodes, %d channels", mainnetSnapshotPath, g.NumNodes(), g.NumEdges())
}

// TestMainnetSnapshotPinned loads the shipped asset through the normal
// builtin path (exercising the gzip decompression) and pins its shape.
func TestMainnetSnapshotPinned(t *testing.T) {
	g, err := loadSnapshotAsset("builtin:ln-mainnet")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != mainnetSnapshotNodes {
		t.Fatalf("ln-mainnet has %d nodes, want %d", g.NumNodes(), mainnetSnapshotNodes)
	}
	if g.NumEdges() != mainnetSnapshotEdges {
		t.Fatalf("ln-mainnet has %d channels, want %d", g.NumEdges(), mainnetSnapshotEdges)
	}
	// BA growth keeps the graph connected; the augmentation only adds edges.
	hops := g.BFSHops(0)
	for v, h := range hops {
		if h < 0 {
			t.Fatalf("ln-mainnet is disconnected: node %d unreachable", v)
		}
	}
}
