// Topology footprint estimation: how big is the network a spec would
// build, before any generator allocates it. The 100k-node scale series
// makes "run it and find out" an expensive way to discover an
// out-of-memory kill, so the cmd/scenarios front end estimates first and
// fails fast when the estimate exceeds available memory.
package scenario

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// Footprint is the estimated scale of a spec's simulation state.
type Footprint struct {
	// Nodes and Edges are the topology dimensions: exact for snapshots
	// (counted from the asset) and hub-spoke (structural), expected values
	// for the random generators.
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// ApproxBytes is an order-of-magnitude estimate of one simulation
	// cell's resident state: graph + packed CSR mirror, channels with queue
	// headroom, path-finder scratch, route cache and label trees. Parallel
	// sweep workers each hold their own cell.
	ApproxBytes int64 `json:"approx_bytes"`
}

// ApproxMB returns ApproxBytes in mebibytes, rounded up.
func (f Footprint) ApproxMB() int64 { return (f.ApproxBytes + (1 << 20) - 1) >> 20 }

// Per-node and per-edge accounting behind ApproxBytes. Node state: adjacency
// slice headers, CSR spans, finder scratch (state/dist/prev arrays), label
// tree rows, hub bookkeeping. Edge state: the graph edge, two packed CSR
// arcs with capacities and positions, the channel struct with queue
// headroom, cached paths. Calibrated against heap profiles of the figscale
// cells; deliberately generous so the gate errs toward refusing.
const (
	footprintBytesPerNode = 400
	footprintBytesPerEdge = 450
)

// EstimateFootprint sizes the topology a spec would build. Snapshot specs
// read the referenced asset (rows are counted, the graph is not built);
// generator specs use closed-form expected sizes.
func EstimateFootprint(s Spec) (Footprint, error) {
	s = s.normalize()
	t := s.Topology
	var f Footprint
	switch t.Type {
	case TopoWattsStrogatz:
		f.Nodes = t.Nodes
		f.Edges = t.Nodes * t.Degree / 2
	case TopoBarabasiAlbert:
		f.Nodes = t.Nodes
		f.Edges = t.Nodes * t.AttachEdges
	case TopoErdosRenyi:
		f.Nodes = t.Nodes
		f.Edges = int(t.EdgeProb * float64(t.Nodes) * float64(t.Nodes-1) / 2)
	case TopoHubSpoke:
		hubs := t.Cores * t.HubsPerCore
		clients := hubs * t.ClientsPerHub
		f.Nodes = t.Cores + hubs + clients
		// Core ring + up to cores/2 chords, one uplink per hub, one channel
		// per client.
		f.Edges = t.Cores + t.Cores/2 + hubs + clients
	case TopoSnapshot:
		nodes, edges, err := snapshotDims(t.Snapshot)
		if err != nil {
			return Footprint{}, err
		}
		f.Nodes, f.Edges = nodes, edges
	default:
		return Footprint{}, fmt.Errorf("scenario: unknown topology type %q", t.Type)
	}
	// Hub schemes reshape to a multi-star: up to one extra client→hub
	// channel per node on top of the base topology.
	edgesWithReshape := f.Edges + f.Nodes
	f.ApproxBytes = int64(f.Nodes)*footprintBytesPerNode + int64(edgesWithReshape)*footprintBytesPerEdge
	return f, nil
}

// snapshotDims counts a snapshot asset's dimensions without building the
// graph: rows become edges, the highest endpoint id + 1 is the node count.
func snapshotDims(ref string) (nodes, edges int, err error) {
	r, err := openAsset(ref)
	if err != nil {
		return 0, 0, err
	}
	defer r.Close()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	maxID := -1
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if first {
			first = false // header row
			continue
		}
		fields := strings.SplitN(line, ",", 3)
		if len(fields) < 2 {
			return 0, 0, fmt.Errorf("scenario: snapshot %s: malformed row %q", ref, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return 0, 0, fmt.Errorf("scenario: snapshot %s: %w", ref, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return 0, 0, fmt.Errorf("scenario: snapshot %s: %w", ref, err)
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges++
	}
	if err := sc.Err(); err != nil {
		return 0, 0, fmt.Errorf("scenario: snapshot %s: %w", ref, err)
	}
	return maxID + 1, edges, nil
}

// MaxFootprint estimates the largest cell an entry will run: the base spec
// (and BaseLarge where present) at every swept axis value, worst case.
// Static entries have no footprint.
func (e *Entry) MaxFootprint() (Footprint, error) {
	if e.Kind == KindStatic {
		return Footprint{}, nil
	}
	bases := []Spec{e.Base}
	if e.BaseLarge != nil {
		bases = append(bases, *e.BaseLarge)
	}
	var out Footprint
	for _, base := range bases {
		values := e.Axis.Values
		param := e.Axis.Param
		if param == "" || len(values) == 0 {
			param, values = "", []float64{0}
		}
		for _, x := range values {
			sp, err := base.withParam(param, x)
			if err != nil {
				return Footprint{}, err
			}
			f, err := EstimateFootprint(sp)
			if err != nil {
				return Footprint{}, err
			}
			if f.ApproxBytes > out.ApproxBytes {
				out = f
			}
		}
	}
	return out, nil
}
