package scenario

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/splicer-pcn/splicer/internal/pcn"
)

func TestSpecValidate(t *testing.T) {
	valid := []Spec{
		SmallSpec(), LargeSpec(), ScaleSpec(), ChurnSpec(),
		ReplaySnapshotSpec(), BurstyHubSpokeSpec(),
		{
			Seed:     1,
			Topology: TopologySpec{Type: TopoErdosRenyi, Nodes: 30, EdgeProb: 0.2},
			Workload: WorkloadSpec{Type: WorkSynthetic, Rate: 10, Duration: 2},
		},
		{
			Seed:     1,
			Topology: TopologySpec{Type: TopoBarabasiAlbert, Nodes: 30, AttachEdges: 2},
			Workload: WorkloadSpec{Type: WorkSynthetic, Rate: 10, Duration: 2},
		},
	}
	for _, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("spec %q: unexpected validation error: %v", s.Name, err)
		}
	}

	invalid := map[string]func(*Spec){
		"unknown topology":   func(s *Spec) { s.Topology.Type = "torus" },
		"unknown workload":   func(s *Spec) { s.Workload.Type = "quantum" },
		"unknown scheme":     func(s *Spec) { s.Scheme = "Ripple" },
		"tiny nodes":         func(s *Spec) { s.Topology.Nodes = 2 },
		"zero rate":          func(s *Spec) { s.Workload.Rate = 0 },
		"zero duration":      func(s *Spec) { s.Workload.Duration = 0 },
		"bad edge prob":      func(s *Spec) { s.Topology.Type = TopoErdosRenyi; s.Topology.EdgeProb = 1.5 },
		"bad path type":      func(s *Spec) { s.Routing.PathType = "Quickest" },
		"bad scheduler":      func(s *Spec) { s.Routing.Scheduler = "Random" },
		"negative churn":     func(s *Spec) { s.Dynamics = &DynamicsSpec{ChurnRate: -1} },
		"bad on-off":         func(s *Spec) { s.Workload.OnOff = &OnOffSpec{MeanOn: 0, MeanOff: 1, OnFactor: 2} },
		"snapshot w/o file":  func(s *Spec) { s.Topology.Type = TopoSnapshot; s.Topology.Snapshot = "" },
		"negative overrides": func(s *Spec) { s.Routing.NumPaths = -1 },
	}
	for name, mutate := range invalid {
		s := SmallSpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid spec", name)
		}
	}

	// Replay + dynamics is structurally impossible.
	s := ReplaySnapshotSpec()
	s.Dynamics = &DynamicsSpec{ChurnRate: 1}
	if err := s.Validate(); err == nil {
		t.Error("Validate accepted replay workload with dynamics")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	for _, s := range []Spec{SmallSpec(), ChurnSpec(), ReplaySnapshotSpec(), BurstyHubSpokeSpec()} {
		data, err := s.JSON()
		if err != nil {
			t.Fatal(err)
		}
		got, err := ParseSpec(data)
		if err != nil {
			t.Fatalf("%s: %v\n%s", s.Name, err, data)
		}
		if !reflect.DeepEqual(got, s.normalize()) {
			t.Errorf("%s: JSON round trip diverged:\n got %+v\nwant %+v", s.Name, got, s.normalize())
		}
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"seed":1,"topolgy":{"type":"watts-strogatz"}}`)); err == nil {
		t.Fatal("ParseSpec accepted a typoed field name")
	}
}

func TestWithParamCopiesDynamics(t *testing.T) {
	base := ChurnSpec()
	a, err := base.withParam("churn_rate", 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := base.withParam("churn_rate", 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Dynamics.ChurnRate != 2 || b.Dynamics.ChurnRate != 4 || base.Dynamics.ChurnRate != 0 {
		t.Fatalf("withParam shared dynamics state: a=%v b=%v base=%v",
			a.Dynamics.ChurnRate, b.Dynamics.ChurnRate, base.Dynamics.ChurnRate)
	}
	if _, err := base.withParam("gravity", 1); err == nil {
		t.Fatal("withParam accepted an unknown parameter")
	}
}

func TestSpecBuildMatchesScenarioContract(t *testing.T) {
	// The small spec must build the same topology size/trace the historical
	// scenario produced (full byte-level parity is pinned by the golden
	// test; this catches gross drift fast).
	g, trace, err := SmallSpec().Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 100 {
		t.Fatalf("small spec built %d nodes", g.NumNodes())
	}
	if len(trace) == 0 {
		t.Fatal("small spec built an empty trace")
	}
	if !g.Connected() {
		t.Fatal("small spec graph not connected")
	}
}

func TestReplaySnapshotScenario(t *testing.T) {
	spec := ReplaySnapshotSpec()
	g, trace, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 80 {
		t.Fatalf("snapshot has %d nodes, want 80", g.NumNodes())
	}
	if len(trace) == 0 {
		t.Fatal("replay trace empty")
	}
	res, err := spec.RunScheme(pcn.SchemeSplicer)
	if err != nil {
		t.Fatal(err)
	}
	if res.TSR <= 0.5 || res.TSR > 1 {
		t.Fatalf("replay-snapshot Splicer TSR = %v, want a healthy run", res.TSR)
	}
	// Determinism: the replayed cell is a pure function of the fixtures.
	// (Compare formatted, not DeepEqual: NaN metrics are legitimately NaN.)
	again, err := spec.RunScheme(pcn.SchemeSplicer)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", res) != fmt.Sprintf("%+v", again) {
		t.Fatal("replay-snapshot run is not deterministic")
	}
}

func TestBurstyHubSpokeScenario(t *testing.T) {
	spec := BurstyHubSpokeSpec()
	g, trace, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	wantNodes := 3 + 9 + 90
	if g.NumNodes() != wantNodes {
		t.Fatalf("hub-spoke has %d nodes, want %d", g.NumNodes(), wantNodes)
	}
	// Leaf-only demand: no payment may originate or terminate at the hub
	// tier (nodes 0..11).
	for _, tx := range trace {
		if tx.Sender < 12 || tx.Recipient < 12 {
			t.Fatalf("payment %d uses hub-tier endpoint (%d -> %d)", tx.ID, tx.Sender, tx.Recipient)
		}
	}
	res, err := spec.RunScheme(pcn.SchemeSplicer)
	if err != nil {
		t.Fatal(err)
	}
	if res.TSR <= 0.3 || res.TSR > 1 {
		t.Fatalf("bursty-hubspoke Splicer TSR = %v, want a functioning run", res.TSR)
	}
	again, err := spec.RunScheme(pcn.SchemeSplicer)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", res) != fmt.Sprintf("%+v", again) {
		t.Fatal("bursty-hubspoke run is not deterministic")
	}
}

func TestRunRequiresScheme(t *testing.T) {
	s := SmallSpec()
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "scheme") {
		t.Fatalf("Run without scheme: err = %v", err)
	}
	s.Scheme = "Splicer"
	s.Workload.Duration = 1
	s.Workload.Rate = 30
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayTraceBoundsChecked(t *testing.T) {
	// A replay trace referencing nodes outside the snapshot must fail
	// loudly at build time.
	s := ReplaySnapshotSpec()
	s.Topology = TopologySpec{Type: TopoErdosRenyi, Nodes: 10, EdgeProb: 0.5}
	if _, _, err := s.Build(); err == nil || !strings.Contains(err.Error(), "references node") {
		t.Fatalf("out-of-range replay trace: err = %v", err)
	}
}

func TestUnknownBuiltinAsset(t *testing.T) {
	s := ReplaySnapshotSpec()
	s.Topology.Snapshot = "builtin:does-not-exist"
	if _, _, err := s.Build(); err == nil {
		t.Fatal("Build accepted an unknown builtin asset")
	}
}
