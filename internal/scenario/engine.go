// Sweep runners: the generic machinery that turns a base Spec plus a
// declarative axis into figure series and tables on the internal/sweep
// worker pool. Cell order is fixed (x-major, then scheme/variant, then
// seed) and aggregation folds in that order, so every runner's output is
// byte-identical for any worker count — the same contract the hand-wired
// experiment runners had.
package scenario

import (
	"fmt"

	"github.com/splicer-pcn/splicer/internal/pcn"
	"github.com/splicer-pcn/splicer/internal/sweep"
)

// Axis declares a swept parameter: the name doubles as the cell axis label
// and the CSV x-column. See Spec.withParam for the known parameters.
type Axis struct {
	Param  string    `json:"param"`
	Values []float64 `json:"values"`
}

// Metric selects which summary statistic a figure reports.
type Metric string

// Figure metrics.
const (
	MetricTSR        Metric = "tsr"
	MetricThroughput Metric = "throughput"
)

func (m Metric) of(s sweep.Summary) (float64, error) {
	switch m {
	case MetricThroughput:
		return s.Throughput.Mean, nil
	case MetricTSR, "":
		return s.TSR.Mean, nil
	default:
		return 0, fmt.Errorf("scenario: unknown metric %q", m)
	}
}

// RunOptions carries the execution knobs shared by every runner.
type RunOptions struct {
	// SeedCount replicates every cell over seeds base, base+1, …,
	// base+SeedCount−1 (relative to each base spec's seed — the historical
	// -seeds flag semantics); points report the across-seed mean. Takes
	// precedence over Seeds.
	SeedCount int
	// Seeds is an explicit replication seed list (empty: the base spec's
	// single seed).
	Seeds []uint64
	// Workers bounds the sweep worker pool: 0 or 1 serial, N > 1 parallel,
	// < 0 all cores. Results are identical for any value.
	Workers int
}

func (o RunOptions) seedsFor(base uint64) []uint64 {
	if o.SeedCount > 0 {
		out := make([]uint64, o.SeedCount)
		for i := range out {
			out[i] = base + uint64(i)
		}
		return out
	}
	if len(o.Seeds) > 0 {
		return o.Seeds
	}
	return []uint64{base}
}

func (o RunOptions) workerCount() int {
	switch {
	case o.Workers < 0:
		return 0 // all cores
	case o.Workers == 0:
		return 1 // serial default
	default:
		return o.Workers
	}
}

// parseSchemes maps scheme names through the policy registry.
func parseSchemes(names []string) ([]pcn.Scheme, error) {
	out := make([]pcn.Scheme, len(names))
	for i, name := range names {
		s, err := pcn.SchemeByName(name)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// figKey addresses one figure point in the aggregated sweep output.
type figKey struct {
	scheme pcn.Scheme
	x      float64
}

// RunFigure sweeps the axis over every scheme: each (x, scheme, seed) cell
// is an independent simulation, and each figure point is the across-seed
// mean of the chosen metric.
func RunFigure(base Spec, axis Axis, schemeNames []string, metric Metric, opts RunOptions) ([]Series, error) {
	schemes, err := parseSchemes(schemeNames)
	if err != nil {
		return nil, err
	}
	var cells []sweep.Cell
	for _, x := range axis.Values {
		scen, err := base.withParam(axis.Param, x)
		if err != nil {
			return nil, err
		}
		for _, scheme := range schemes {
			for _, seed := range opts.seedsFor(base.Seed) {
				cell := scen
				cell.Seed = seed
				cells = append(cells, cell.Cell(scheme, axis.Param, x, ""))
			}
		}
	}
	results := sweep.Run(cells, opts.workerCount())
	if err := sweep.FirstErr(results); err != nil {
		return nil, err
	}
	byKey := map[figKey]sweep.Summary{}
	for _, s := range sweep.Aggregate(results) {
		byKey[figKey{s.Scheme, s.X}] = s
	}
	out := make([]Series, len(schemes))
	for si, scheme := range schemes {
		out[si].Name = scheme.String()
		for _, x := range axis.Values {
			y, err := metric.of(byKey[figKey{scheme, x}])
			if err != nil {
				return nil, err
			}
			out[si].Points = append(out[si].Points, Point{X: x, Y: y})
		}
	}
	return out, nil
}

// OnlineLabel names the Splicer-with-online-re-placement churn variant.
const OnlineLabel = "Splicer(online)"

// OnlineReplaceInterval is how often the online churn variant re-runs
// placement (seconds).
const OnlineReplaceInterval = 1.0

// panelVariant is one line of a scheme-panel figure (churn or attack).
type panelVariant struct {
	scheme  pcn.Scheme
	label   string // aggregation label; "" for the plain scheme
	name    string // series name
	replace bool
}

// runVariantPanel sweeps the named parameter over every scheme plus the
// Splicer-with-online-re-placement variant, reporting TSR and mean delay
// series — the shared machinery behind the churn and attack panels. The
// base spec must carry a dynamics block (the online variant re-runs
// placement through the dynamics driver).
func runVariantPanel(base Spec, param string, values []float64, schemeNames []string, opts RunOptions) (tsr, delay []Series, err error) {
	schemes, err := parseSchemes(schemeNames)
	if err != nil {
		return nil, nil, err
	}
	var variants []panelVariant
	for _, sc := range schemes {
		variants = append(variants, panelVariant{scheme: sc, name: sc.String()})
	}
	variants = append(variants, panelVariant{
		scheme: pcn.SchemeSplicer, label: "online", name: OnlineLabel, replace: true,
	})
	var cells []sweep.Cell
	for _, x := range values {
		for _, v := range variants {
			for _, seed := range opts.seedsFor(base.Seed) {
				scen, err := base.withParam(param, x)
				if err != nil {
					return nil, nil, err
				}
				scen.Seed = seed
				if v.replace {
					d := *scen.Dynamics
					d.ReplaceInterval = OnlineReplaceInterval
					scen.Dynamics = &d
				}
				cells = append(cells, scen.Cell(v.scheme, param, x, v.label))
			}
		}
	}
	results := sweep.Run(cells, opts.workerCount())
	if err := sweep.FirstErr(results); err != nil {
		return nil, nil, err
	}
	type key struct {
		scheme pcn.Scheme
		label  string
		x      float64
	}
	byKey := map[key]sweep.Summary{}
	for _, s := range sweep.Aggregate(results) {
		byKey[key{s.Scheme, s.Label, s.X}] = s
	}
	tsr = make([]Series, len(variants))
	delay = make([]Series, len(variants))
	for vi, v := range variants {
		tsr[vi].Name = v.name
		delay[vi].Name = v.name
		for _, x := range values {
			s := byKey[key{v.scheme, v.label, x}]
			tsr[vi].Points = append(tsr[vi].Points, Point{X: x, Y: s.TSR.Mean})
			delay[vi].Points = append(delay[vi].Points, Point{X: x, Y: s.MeanDelay.Mean})
		}
	}
	return tsr, delay, nil
}

// RunChurnPanel sweeps churn rate over every scheme plus the
// Splicer-with-online-re-placement variant, reporting TSR and mean delay
// series. The base spec must carry a dynamics block; its ChurnRate is the
// swept parameter.
func RunChurnPanel(base Spec, churnRates []float64, schemeNames []string, opts RunOptions) (tsr, delay []Series, err error) {
	if base.Dynamics == nil {
		return nil, nil, fmt.Errorf("scenario: churn panel needs a dynamics block in spec %q", base.Name)
	}
	return runVariantPanel(base, "churn_rate", churnRates, schemeNames, opts)
}

// RunAttackPanel sweeps attack intensity over every scheme plus the
// Splicer-with-online-re-placement variant — the resilience panel: how does
// each routing scheme degrade as the attack strengthens, and how much does
// online re-placement recover. The base spec must carry an attack block
// (whose Intensity is the swept parameter) and a dynamics block (churn rate
// 0 for a topology that only the attack perturbs).
func RunAttackPanel(base Spec, intensities []float64, schemeNames []string, opts RunOptions) (tsr, delay []Series, err error) {
	if base.Attack == nil {
		return nil, nil, fmt.Errorf("scenario: attack panel needs an attack block in spec %q", base.Name)
	}
	if base.Dynamics == nil {
		return nil, nil, fmt.Errorf("scenario: attack panel needs a dynamics block in spec %q (the online variant re-places hubs through the dynamics driver)", base.Name)
	}
	return runVariantPanel(base, "attack_intensity", intensities, schemeNames, opts)
}

// RunRetryPanel is the retry-resilience panel: every scheme runs the same
// attacked cell twice — retries unarmed ("<scheme>") and armed
// ("<scheme>+retry") — so each pair of columns quantifies the TSR the
// failure-aware retry layer recovers under that attack. The base spec must
// carry an attack block (Intensity swept), a dynamics block, and an armed
// routing.retry block (the off variant strips it). A per-variant failure
// breakdown rides along so the recovery is attributable by abort reason.
func RunRetryPanel(base Spec, intensities []float64, schemeNames []string, opts RunOptions) (tsr, delay []Series, reasons []ReasonSeries, err error) {
	if base.Attack == nil {
		return nil, nil, nil, fmt.Errorf("scenario: retry panel needs an attack block in spec %q", base.Name)
	}
	if base.Dynamics == nil {
		return nil, nil, nil, fmt.Errorf("scenario: retry panel needs a dynamics block in spec %q", base.Name)
	}
	if base.Routing.Retry == nil {
		return nil, nil, nil, fmt.Errorf("scenario: retry panel needs an armed routing.retry block in spec %q", base.Name)
	}
	schemes, err := parseSchemes(schemeNames)
	if err != nil {
		return nil, nil, nil, err
	}
	type retryVariant struct {
		scheme pcn.Scheme
		label  string // aggregation label; "retry" for the armed variant
		name   string
		armed  bool
	}
	var variants []retryVariant
	for _, sc := range schemes {
		variants = append(variants,
			retryVariant{scheme: sc, name: sc.String()},
			retryVariant{scheme: sc, label: "retry", name: sc.String() + "+retry", armed: true})
	}
	var cells []sweep.Cell
	for _, x := range intensities {
		for _, v := range variants {
			for _, seed := range opts.seedsFor(base.Seed) {
				scen, err := base.withParam("attack_intensity", x)
				if err != nil {
					return nil, nil, nil, err
				}
				scen.Seed = seed
				if !v.armed {
					scen.Routing.Retry = nil
				}
				cells = append(cells, scen.Cell(v.scheme, "attack_intensity", x, v.label))
			}
		}
	}
	results := sweep.Run(cells, opts.workerCount())
	if err := sweep.FirstErr(results); err != nil {
		return nil, nil, nil, err
	}
	type key struct {
		scheme pcn.Scheme
		label  string
		x      float64
	}
	byKey := map[key]sweep.Summary{}
	for _, s := range sweep.Aggregate(results) {
		byKey[key{s.Scheme, s.Label, s.X}] = s
	}
	tsr = make([]Series, len(variants))
	delay = make([]Series, len(variants))
	reasons = make([]ReasonSeries, len(variants))
	for vi, v := range variants {
		tsr[vi].Name = v.name
		delay[vi].Name = v.name
		reasons[vi].Name = v.name
		for _, x := range intensities {
			s := byKey[key{v.scheme, v.label, x}]
			tsr[vi].Points = append(tsr[vi].Points, Point{X: x, Y: s.TSR.Mean})
			delay[vi].Points = append(delay[vi].Points, Point{X: x, Y: s.MeanDelay.Mean})
			rp := ReasonPoint{X: x}
			if len(s.FailureReasons) > 0 {
				rp.Reasons = make(map[string]float64, len(s.FailureReasons))
				for reason, st := range s.FailureReasons {
					rp.Reasons[reason] = st.Mean
				}
			}
			reasons[vi].Points = append(reasons[vi].Points, rp)
		}
	}
	return tsr, delay, reasons, nil
}

// SchemeTable runs the spec once per scheme and tabulates the headline
// metrics — the presentation for standalone scenarios (replayed traces,
// bursty workloads) that have no swept axis.
func SchemeTable(base Spec, schemeNames []string, opts RunOptions) (Table, error) {
	schemes, err := parseSchemes(schemeNames)
	if err != nil {
		return Table{}, err
	}
	var cells []sweep.Cell
	for _, scheme := range schemes {
		for _, seed := range opts.seedsFor(base.Seed) {
			cell := base
			cell.Seed = seed
			cells = append(cells, cell.Cell(scheme, "", 0, ""))
		}
	}
	results := sweep.Run(cells, opts.workerCount())
	if err := sweep.FirstErr(results); err != nil {
		return Table{}, err
	}
	t := Table{
		Title: fmt.Sprintf("Scenario %s: scheme comparison", base.Name),
		Header: []string{"scheme", "tsr", "norm_throughput", "mean_delay_s", "mean_queue_delay_s", "mean_imbalance",
			"cache_hit_rate", "label_served", "label_repairs", "fail_reasons"},
	}
	byScheme := map[pcn.Scheme]sweep.Summary{}
	for _, s := range sweep.Aggregate(results) {
		byScheme[s.Scheme] = s
	}
	for _, scheme := range schemes {
		s := byScheme[scheme]
		reasonMeans := make(map[string]float64, len(s.FailureReasons))
		for reason, st := range s.FailureReasons {
			reasonMeans[reason] = st.Mean
		}
		t.Rows = append(t.Rows, []string{
			scheme.String(),
			fmt.Sprintf("%.4f", s.TSR.Mean),
			fmt.Sprintf("%.4f", s.Throughput.Mean),
			fmt.Sprintf("%.4f", s.MeanDelay.Mean),
			fmt.Sprintf("%.4f", s.MeanQueueDelay.Mean),
			fmt.Sprintf("%.4f", s.MeanImbalance.Mean),
			fmt.Sprintf("%.4f", s.CacheHitRate.Mean),
			fmt.Sprintf("%.1f", s.LabelServed.Mean),
			fmt.Sprintf("%.1f", s.LabelRepairs.Mean),
			topReasons(reasonMeans),
		})
	}
	return t, nil
}
