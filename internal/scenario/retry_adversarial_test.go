package scenario

import (
	"testing"

	"github.com/splicer-pcn/splicer/internal/pcn"
)

// TestRetryNeverResurrectsAdversarialTUs pins the retry/attack interaction
// audit: a resurrected TU keeps its id and rate-controller slot, so
// retrying attacker traffic would amplify the jam and leak attacker
// failures into the honest breakdown. The lifecycle guards this three ways
// — maybeRetryTU refuses adversarial TUs outright, refuses held (Hold > 0)
// TUs, and the hold-release abort reason ("held_released") is not
// retryable — and this test pins the observable consequence: arming
// routing.retry inside the jamming panel moves no adversarial accounting.
//
// The direct-commit scheme (no channel queues) aborts starved honest TUs
// with retryable "no_funds", so its armed run must show live retry
// machinery; the queue-based Splicer scheme parks starved TUs and cancels
// them as "marked" (deliberately non-retryable — the sender already gave
// up), so zero retries there is itself pinned behavior.
func TestRetryNeverResurrectsAdversarialTUs(t *testing.T) {
	for _, tc := range []struct {
		scheme         pcn.Scheme
		requireRetries bool
	}{
		{pcn.SchemeShortestPath, true},
		{pcn.SchemeSplicer, false},
	} {
		base := trimmedAttack(t, "jamming")
		base.Attack.Intensity = 25
		// Inflate payment values against the channel-size distribution so
		// honest traffic hits balance exhaustion alongside the jam: the
		// armed run then exercises retries against held channels.
		base.Workload.ValueScale = 6
		off, err := base.RunScheme(tc.scheme)
		if err != nil {
			t.Fatal(err)
		}
		if off.AdversarialGenerated == 0 || off.HeldTUs == 0 {
			t.Fatalf("%v: jamming cell generated no adversarial pressure: %+v", tc.scheme, off)
		}

		armed := base
		armed.Routing.Retry = DefaultRetrySpec()
		on, err := armed.RunScheme(tc.scheme)
		if err != nil {
			t.Fatal(err)
		}
		if on.AdversarialGenerated != off.AdversarialGenerated {
			t.Errorf("%v: AdversarialGenerated moved when retries armed: %d -> %d",
				tc.scheme, off.AdversarialGenerated, on.AdversarialGenerated)
		}
		if on.AdversarialCompleted != off.AdversarialCompleted {
			t.Errorf("%v: AdversarialCompleted moved when retries armed: %d -> %d",
				tc.scheme, off.AdversarialCompleted, on.AdversarialCompleted)
		}
		if on.HeldTUs != off.HeldTUs || on.HeldLockValue != off.HeldLockValue {
			t.Errorf("%v: held-TU accounting moved when retries armed: %d/%.3f -> %d/%.3f",
				tc.scheme, off.HeldTUs, off.HeldLockValue, on.HeldTUs, on.HeldLockValue)
		}
		// Hold releases unwind via abortTU("held_released"); if one ever
		// leaked into the retry loop it would show up as extra attempts AND
		// extra adversarial completions. FailureReasons pins the unwind
		// channel stayed put.
		if on.FailureReasons["held_released"] != off.FailureReasons["held_released"] {
			t.Errorf("%v: held_released count moved when retries armed: %d -> %d",
				tc.scheme, off.FailureReasons["held_released"], on.FailureReasons["held_released"])
		}
		if tc.requireRetries && on.RetryAttempts == 0 {
			t.Errorf("%v: retry machinery never fired — the pin is vacuous; tighten the cell", tc.scheme)
		}
		if !tc.requireRetries && on.RetryAttempts == 0 {
			t.Logf("%v: queue-based scheme converts starvation to non-retryable marked aborts (expected)", tc.scheme)
		}
	}
}
