// Package serve is the routing service: a long-running daemon core that
// answers path queries for a live, churning PCN. It is the read side of the
// epoch-snapshot architecture — a pcn.Network (owned by exactly one writer
// goroutine: the dynamics driver, or whatever applies churn) publishes
// epochs through graph.SnapshotStore, and a fixed pool of query workers
// answers routing queries against pinned snapshots with zero locks on the
// compute path.
//
// Worker model (after skyd's renter worker pool): each worker owns its jobs
// queue and its private PathFinder scratch, so jobs dispatched to one
// worker serialize and scratch is never shared. Dispatch is round-robin;
// results come back on a per-job buffered channel, so an abandoned caller
// (context cancellation) never blocks a worker.
//
// Per-epoch route cache: workers share one pcn.RouteCache (sharded, safe
// for concurrent readers) per epoch, swapped atomically when a worker first
// sees a newer epoch. A worker pinned on an older epoch than the shared
// cache computes uncached rather than poisoning newer entries.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/pcn"
	"github.com/splicer-pcn/splicer/internal/routing"
)

// ErrShuttingDown is returned for queries that arrive after Shutdown began
// (or were still queued when the drain deadline expired).
var ErrShuttingDown = errors.New("serve: shutting down")

// ErrSaturated is returned when the target worker's job queue is full: the
// pool is overloaded and the caller should back off and retry (HTTP maps it
// to 503 + Retry-After). Shedding at admission keeps queue wait bounded
// instead of letting latency grow without limit under overload.
var ErrSaturated = errors.New("serve: worker pool saturated")

// ErrNoSnapshot is returned while the writer has not yet published an epoch
// — the server is up but not ready (503 + Retry-After, like saturation).
var ErrNoSnapshot = errors.New("serve: no snapshot published")

// Options configures a Server.
type Options struct {
	// Workers is the query-pool size; <= 0 means 2.
	Workers int
	// QueueDepth is each worker's job-queue capacity; <= 0 means 64.
	QueueDepth int
	// RequestTimeout bounds each HTTP request's total time in the handler
	// (parse + queue wait + compute); 0 means no per-request deadline. The
	// programmatic Route API is bounded by the caller's context either way.
	RequestTimeout time.Duration
	// StallDelay injects a sleep before each job's compute — a worker-stall
	// fault for graceful-degradation testing and benchmarks. 0 (production)
	// injects nothing.
	StallDelay time.Duration
}

// RouteRequest is one path query.
type RouteRequest struct {
	Src, Dst graph.NodeID
	// K is the number of paths (<= 0 means 1).
	K int
	// Type selects the path strategy; routing.KSP when zero-valued requests
	// arrive via NewRouteRequest/HTTP. Label-served when the source is a hub
	// and the type is KSP, exact otherwise — identical results either way.
	Type routing.PathType
}

// RoutePath is one path in a response, flattened for JSON.
type RoutePath struct {
	Nodes      []graph.NodeID `json:"nodes"`
	Edges      []graph.EdgeID `json:"edges"`
	Hops       int            `json:"hops"`
	Bottleneck float64        `json:"bottleneck"`
}

// RouteResponse carries the answer and the epoch it was computed against.
type RouteResponse struct {
	Epoch uint64      `json:"epoch"`
	Paths []RoutePath `json:"paths"`
}

// ServerStats is a point-in-time view of serving activity. The JSON shape
// is the /topology/stats wire contract: route-cache hit/miss counters and
// the snapshot store's publication stats ride along with the serving
// counters, so operators see cache efficiency and epoch churn in one fetch.
type ServerStats struct {
	Workers   int                 `json:"workers"`
	Served    uint64              `json:"served"`    // queries answered (including unroutable)
	Errors    uint64              `json:"errors"`    // queries failing validation or computation
	Shed      uint64              `json:"shed"`      // queries refused by shutdown
	Saturated uint64              `json:"saturated"` // queries refused by a full worker queue
	Timeouts  uint64              `json:"timeouts"`  // queries cut by a context deadline
	CacheHits uint64              `json:"cache_hits"`
	CacheMiss uint64              `json:"cache_misses"`
	Epoch     uint64              `json:"epoch"`
	Snapshots graph.SnapshotStats `json:"snapshots"`
}

type routeResult struct {
	resp *RouteResponse
	err  error
}

type job struct {
	req  RouteRequest
	resp chan routeResult // buffered(1): workers never block on abandoned callers
}

type worker struct {
	id   int
	jobs chan *job
	pf   *graph.PathFinder // created from the first pinned snapshot
}

// epochCache pairs a route cache with the epoch its entries were computed
// against.
type epochCache struct {
	epoch uint64
	cache *pcn.RouteCache
}

// Server is the daemon core. Create with NewServer, query with Route (or
// the HTTP handler), stop with Shutdown.
type Server struct {
	net   *pcn.Network
	store *graph.SnapshotStore

	workers  []*worker
	next     atomic.Uint64
	workerWG sync.WaitGroup
	quit     chan struct{}

	// stateMu orders Route admission against Shutdown: Route increments
	// inflight under the read lock while closed is false, Shutdown flips
	// closed under the write lock — so after Shutdown holds the write lock
	// once, no new inflight increment can slip past the closed check (the
	// WaitGroup add-vs-wait race is structurally excluded).
	stateMu  sync.RWMutex
	closed   bool
	inflight sync.WaitGroup
	stopOnce sync.Once

	cache atomic.Pointer[epochCache]

	opts      Options
	served    atomic.Uint64
	errs      atomic.Uint64
	shed      atomic.Uint64
	saturated atomic.Uint64
	timeouts  atomic.Uint64
}

// NewServer wraps a network in a serving pool. The network's snapshot store
// is attached (EnableSnapshots) if it wasn't already; after this call the
// caller's writer goroutine may keep mutating the network — workers only
// ever read pinned snapshots.
func NewServer(net *pcn.Network, opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	s := &Server{
		net:   net,
		store: net.EnableSnapshots(),
		quit:  make(chan struct{}),
		opts:  opts,
	}
	for i := 0; i < opts.Workers; i++ {
		w := &worker{id: i, jobs: make(chan *job, opts.QueueDepth)}
		s.workers = append(s.workers, w)
		s.workerWG.Add(1)
		go s.workerLoop(w)
	}
	return s
}

// Network returns the wrapped network (for the writer side and stats).
func (s *Server) Network() *pcn.Network { return s.net }

// Snapshots returns the epoch store workers read from.
func (s *Server) Snapshots() *graph.SnapshotStore { return s.store }

// Route answers one path query: validate, dispatch to a worker, wait. The
// context bounds the wait; the query may still complete on the worker after
// cancellation (its result is discarded).
func (s *Server) Route(ctx context.Context, req RouteRequest) (*RouteResponse, error) {
	s.stateMu.RLock()
	if s.closed {
		s.stateMu.RUnlock()
		s.shed.Add(1)
		return nil, ErrShuttingDown
	}
	s.inflight.Add(1)
	s.stateMu.RUnlock()
	defer s.inflight.Done()

	j := &job{req: req, resp: make(chan routeResult, 1)}
	w := s.workers[s.next.Add(1)%uint64(len(s.workers))]
	// Non-blocking admission: a full worker queue sheds the query instead of
	// parking the caller behind unbounded queue wait — the caller gets an
	// immediate, retryable overload signal (503 + Retry-After over HTTP).
	select {
	case w.jobs <- j:
	case <-s.quit:
		s.shed.Add(1)
		return nil, ErrShuttingDown
	default:
		s.saturated.Add(1)
		return nil, ErrSaturated
	}
	select {
	case r := <-j.resp:
		if r.err != nil {
			return nil, r.err
		}
		return r.resp, nil
	case <-ctx.Done():
		s.timeouts.Add(1)
		return nil, ctx.Err()
	}
}

// Shutdown drains the pool: new queries are refused immediately, in-flight
// queries get until ctx's deadline to finish, then workers stop (any still
// queued jobs are answered with ErrShuttingDown). Returns ctx.Err() if the
// deadline cut the drain short, nil on a clean drain. Safe to call more
// than once; later calls return nil without waiting.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.stopOnce.Do(func() {
		s.stateMu.Lock()
		s.closed = true
		s.stateMu.Unlock()

		done := make(chan struct{})
		go func() {
			s.inflight.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			err = ctx.Err()
		}
		close(s.quit)
		s.workerWG.Wait()
	})
	return err
}

// Stats returns a point-in-time activity snapshot.
func (s *Server) Stats() ServerStats {
	st := ServerStats{
		Workers:   len(s.workers),
		Served:    s.served.Load(),
		Errors:    s.errs.Load(),
		Shed:      s.shed.Load(),
		Saturated: s.saturated.Load(),
		Timeouts:  s.timeouts.Load(),
		Epoch:     s.store.Epoch(),
		Snapshots: s.store.Stats(),
	}
	if ec := s.cache.Load(); ec != nil {
		st.CacheHits = ec.cache.Hits()
		st.CacheMiss = ec.cache.Misses()
	}
	return st
}

// workerLoop is one worker's life: serve jobs until quit, then drain the
// queue with shutdown errors so no caller is left waiting.
func (s *Server) workerLoop(w *worker) {
	defer s.workerWG.Done()
	for {
		select {
		case j := <-w.jobs:
			if s.opts.StallDelay > 0 {
				time.Sleep(s.opts.StallDelay)
			}
			j.resp <- s.handle(w, j.req)
		case <-s.quit:
			for {
				select {
				case j := <-w.jobs:
					j.resp <- routeResult{err: ErrShuttingDown}
				default:
					return
				}
			}
		}
	}
}

// handle computes one query against a freshly pinned snapshot.
func (s *Server) handle(w *worker, req RouteRequest) routeResult {
	snap := s.store.Acquire()
	if snap == nil {
		s.errs.Add(1)
		return routeResult{err: ErrNoSnapshot}
	}
	defer snap.Release()
	g := snap.Graph()
	if int(req.Src) < 0 || int(req.Src) >= g.NumNodes() || int(req.Dst) < 0 || int(req.Dst) >= g.NumNodes() {
		s.errs.Add(1)
		return routeResult{err: fmt.Errorf("serve: endpoint out of range: %d->%d with %d nodes", req.Src, req.Dst, g.NumNodes())}
	}
	k := req.K
	if k <= 0 {
		k = 1
	}
	if req.Type == 0 {
		req.Type = routing.KSP
	}
	if w.pf == nil {
		w.pf = graph.NewPathFinder(g)
	} else {
		w.pf.Rebind(g)
	}
	paths, err := s.pathsFor(w, snap, req.Src, req.Dst, k, req.Type)
	if err != nil {
		s.errs.Add(1)
		return routeResult{err: err}
	}
	resp := &RouteResponse{Epoch: snap.Epoch(), Paths: make([]RoutePath, len(paths))}
	for i, p := range paths {
		resp.Paths[i] = RoutePath{
			Nodes:      p.Nodes,
			Edges:      p.Edges,
			Hops:       p.Len(),
			Bottleneck: p.Bottleneck(g),
		}
	}
	s.served.Add(1)
	return routeResult{resp: resp}
}

// pathsFor computes (or cache-hits) the path set on the pinned snapshot.
func (s *Server) pathsFor(w *worker, snap *graph.Snapshot, src, dst graph.NodeID, k int, pt routing.PathType) ([]graph.Path, error) {
	compute := func() ([]graph.Path, error) {
		if pt == routing.KSP {
			// Hub-label acceleration when the snapshot carries labels: the
			// view serves hub-rooted queries from precomputed trees and
			// falls back to the worker's finder otherwise — byte-identical
			// results either way.
			if v, ok := snap.Labels(); ok {
				return v.KShortestPathsUnit(w.pf, src, dst, k), nil
			}
		}
		return routing.SelectPathsWith(w.pf, src, dst, k, pt)
	}
	cache := s.cacheFor(snap.Epoch())
	if cache == nil {
		return compute()
	}
	return cache.GetOrCompute(pcn.RouteKey{Src: src, Dst: dst, Type: pt, K: k}, compute)
}

// cacheFor returns the shared route cache for epoch, installing a fresh one
// when epoch is newer than the installed cache. Returns nil when the caller
// is pinned on an OLDER epoch than the installed cache: its results would be
// stale for everyone else, so it computes uncached.
func (s *Server) cacheFor(epoch uint64) *pcn.RouteCache {
	for {
		ec := s.cache.Load()
		if ec != nil && ec.epoch == epoch {
			return ec.cache
		}
		if ec != nil && ec.epoch > epoch {
			return nil
		}
		if s.cache.CompareAndSwap(ec, &epochCache{epoch: epoch, cache: pcn.NewRouteCache()}) {
			continue // reload: we (or a racer) installed a cache for a newer epoch
		}
	}
}
