package serve

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/pcn"
	"github.com/splicer-pcn/splicer/internal/rng"
	"github.com/splicer-pcn/splicer/internal/routing"
	"github.com/splicer-pcn/splicer/internal/topology"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// testNetwork builds a placed Splicer network ready for serving.
func testNetwork(t testing.TB, seed uint64, nodes int) *pcn.Network {
	t.Helper()
	src := rng.New(seed)
	sizes := workload.NewChannelSizeDist(src.Split(1), 1)
	g, err := topology.WattsStrogatz(src.Split(2), nodes, 4, 0.25, sizes.CapacityFunc())
	if err != nil {
		t.Fatal(err)
	}
	cfg := pcn.NewConfig(pcn.SchemeSplicer)
	cfg.NumHubCandidates = 8
	n, err := pcn.NewNetwork(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRouteMatchesDirectComputation(t *testing.T) {
	n := testNetwork(t, 11, 60)
	s := NewServer(n, Options{Workers: 2})
	defer s.Shutdown(context.Background())

	snap := s.Snapshots().Acquire()
	pf := graph.NewPathFinder(snap.Graph())
	ctx := context.Background()
	for _, tc := range []struct {
		src, dst graph.NodeID
		k        int
		pt       routing.PathType
	}{
		{3, 41, 1, routing.KSP},
		{7, 22, 3, routing.KSP},
		{0, 55, 2, routing.EDS},
		{14, 30, 2, routing.EDW},
	} {
		resp, err := s.Route(ctx, RouteRequest{Src: tc.src, Dst: tc.dst, K: tc.k, Type: tc.pt})
		if err != nil {
			t.Fatalf("%d->%d: %v", tc.src, tc.dst, err)
		}
		if resp.Epoch != snap.Epoch() {
			t.Fatalf("%d->%d: served epoch %d, pinned %d", tc.src, tc.dst, resp.Epoch, snap.Epoch())
		}
		want, err := routing.SelectPathsWith(pf, tc.src, tc.dst, tc.k, tc.pt)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Paths) != len(want) {
			t.Fatalf("%d->%d: %d paths, want %d", tc.src, tc.dst, len(resp.Paths), len(want))
		}
		for i := range want {
			got := graph.Path{Nodes: resp.Paths[i].Nodes, Edges: resp.Paths[i].Edges}
			if !got.Equal(want[i]) {
				t.Fatalf("%d->%d path %d diverges from direct computation", tc.src, tc.dst, i)
			}
			if resp.Paths[i].Hops != want[i].Len() {
				t.Fatalf("%d->%d path %d hops %d, want %d", tc.src, tc.dst, i, resp.Paths[i].Hops, want[i].Len())
			}
		}
	}
	snap.Release()
	if st := s.Stats(); st.Served == 0 || st.Errors != 0 {
		t.Fatalf("stats after clean queries: %+v", st)
	}
}

func TestRouteValidation(t *testing.T) {
	n := testNetwork(t, 12, 40)
	s := NewServer(n, Options{Workers: 1})
	defer s.Shutdown(context.Background())
	if _, err := s.Route(context.Background(), RouteRequest{Src: -1, Dst: 5}); err == nil {
		t.Fatal("negative src accepted")
	}
	if _, err := s.Route(context.Background(), RouteRequest{Src: 0, Dst: 4000}); err == nil {
		t.Fatal("out-of-range dst accepted")
	}
	if st := s.Stats(); st.Errors != 2 {
		t.Fatalf("error counter = %d, want 2", st.Errors)
	}
}

// TestServeUnderChurn is the serving-layer -race test: concurrent clients
// query while the writer goroutine churns the network; every response must
// be internally consistent, and the pool must not leak pins.
func TestServeUnderChurn(t *testing.T) {
	n := testNetwork(t, 13, 80)
	s := NewServer(n, Options{Workers: 4})
	st := s.Snapshots()

	var stop atomic.Bool
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() { // the network's single writer
		defer writerWG.Done()
		rnd := rand.New(rand.NewSource(5))
		for i := 0; i < 120; i++ {
			u := graph.NodeID(rnd.Intn(n.Graph().NumNodes()))
			v := graph.NodeID(rnd.Intn(n.Graph().NumNodes()))
			if u != v {
				if eid, err := n.OpenChannel(u, v, 40, 40); err == nil && i%3 == 0 {
					n.CloseChannel(eid)
				}
			}
		}
		stop.Store(true)
	}()

	var clientWG sync.WaitGroup
	errs := make(chan error, 8)
	for c := 0; c < 8; c++ {
		clientWG.Add(1)
		go func(seed int64) {
			defer clientWG.Done()
			rnd := rand.New(rand.NewSource(seed))
			ctx := context.Background()
			for !stop.Load() {
				src := graph.NodeID(rnd.Intn(80))
				dst := graph.NodeID(rnd.Intn(80))
				resp, err := s.Route(ctx, RouteRequest{Src: src, Dst: dst, K: 1 + rnd.Intn(3)})
				if err != nil {
					errs <- err
					return
				}
				for _, p := range resp.Paths {
					if len(p.Nodes) == 0 || p.Nodes[0] != src || p.Nodes[len(p.Nodes)-1] != dst {
						errs <- errors.New("serve: path endpoints wrong")
						return
					}
					if len(p.Edges) != len(p.Nodes)-1 {
						errs <- errors.New("serve: ragged path")
						return
					}
				}
			}
		}(int64(300 + c))
	}
	clientWG.Wait()
	writerWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if pins := st.ActivePins(); pins != 0 {
		t.Fatalf("leaked %d pins", pins)
	}
}

// TestShutdownDrainsAndRefuses pins the graceful-lifecycle contract
// (SIGTERM-equivalent): in-flight queries finish, new ones are refused,
// and no pinned epoch leaks — even when the drain deadline cuts queued
// work short.
func TestShutdownDrainsAndRefuses(t *testing.T) {
	n := testNetwork(t, 14, 60)
	s := NewServer(n, Options{Workers: 2})
	st := s.Snapshots()
	ctx := context.Background()

	// Saturate the pool from several clients, then shut down mid-flight.
	var wg sync.WaitGroup
	var completed, refused atomic.Uint64
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				_, err := s.Route(ctx, RouteRequest{
					Src: graph.NodeID(rnd.Intn(60)),
					Dst: graph.NodeID(rnd.Intn(60)),
					K:   2,
				})
				switch {
				case err == nil:
					completed.Add(1)
				case errors.Is(err, ErrShuttingDown):
					refused.Add(1)
				default:
					panic(err)
				}
			}
		}(int64(c))
	}
	time.Sleep(5 * time.Millisecond) // let some queries get in flight
	dl, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if err := s.Shutdown(dl); err != nil {
		t.Fatalf("drain hit deadline: %v", err)
	}
	wg.Wait()

	if completed.Load() == 0 {
		t.Fatal("no query completed before shutdown; test is vacuous")
	}
	if refused.Load() == 0 {
		t.Fatal("no query was refused after shutdown; test is vacuous")
	}
	if _, err := s.Route(ctx, RouteRequest{Src: 0, Dst: 1}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown Route = %v, want ErrShuttingDown", err)
	}
	if pins := st.ActivePins(); pins != 0 {
		t.Fatalf("shutdown leaked %d pinned epochs", pins)
	}
	// Second shutdown is a no-op.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownDeadlineNeverLeaksPins: cancellation arrives while queries
// are queued and in flight; whatever their fate (answered or refused), all
// pins must be released.
func TestShutdownDeadlineNeverLeaksPins(t *testing.T) {
	n := testNetwork(t, 15, 60)
	s := NewServer(n, Options{Workers: 1, QueueDepth: 256})
	st := s.Snapshots()

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(seed))
			ctx := context.Background()
			for i := 0; i < 100; i++ {
				s.Route(ctx, RouteRequest{
					Src: graph.NodeID(rnd.Intn(60)),
					Dst: graph.NodeID(rnd.Intn(60)),
					K:   3,
				})
			}
		}(int64(40 + c))
	}
	// Already-expired deadline: the drain is cut short immediately and
	// queued jobs get ErrShuttingDown from the worker teardown path.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	s.Shutdown(expired)
	wg.Wait()
	if pins := st.ActivePins(); pins != 0 {
		t.Fatalf("deadline-cut shutdown leaked %d pinned epochs", pins)
	}
}

// TestEpochCacheSwaps pins the per-epoch cache: entries are served within
// an epoch and never across one.
func TestEpochCacheSwaps(t *testing.T) {
	n := testNetwork(t, 16, 60)
	s := NewServer(n, Options{Workers: 1})
	defer s.Shutdown(context.Background())
	ctx := context.Background()
	req := RouteRequest{Src: 2, Dst: 31, K: 2}

	if _, err := s.Route(ctx, req); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Route(ctx, req); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.CacheHits == 0 {
		t.Fatalf("repeat query missed the epoch cache: %+v", st)
	}

	// Churn → new epoch → fresh cache (the old entries must not serve).
	if _, err := n.OpenChannel(2, 31, 10, 10); err != nil {
		t.Fatal(err)
	}
	resp, err := s.Route(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Epoch < 2 {
		t.Fatalf("post-churn epoch = %d, want >= 2", resp.Epoch)
	}
	// The new direct channel must now be the shortest path.
	if len(resp.Paths) == 0 || resp.Paths[0].Hops != 1 {
		t.Fatalf("post-churn route ignores the new channel: %+v", resp.Paths)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	n := testNetwork(t, 17, 60)
	s := NewServer(n, Options{Workers: 2})
	defer s.Shutdown(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf [1 << 16]byte
		n, _ := resp.Body.Read(buf[:])
		return resp.StatusCode, buf[:n]
	}

	if code, body := get("/healthz"); code != 200 {
		t.Fatalf("/healthz = %d %s", code, body)
	}
	code, body := get("/route?src=3&dst=27&k=2")
	if code != 200 {
		t.Fatalf("/route = %d %s", code, body)
	}
	var rr RouteResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Epoch == 0 || len(rr.Paths) == 0 {
		t.Fatalf("/route payload: %+v", rr)
	}
	if code, _ := get("/route?src=bad&dst=2"); code != 400 {
		t.Fatalf("/route with bad src = %d, want 400", code)
	}
	if code, _ := get("/route?src=1&dst=999999"); code != 400 {
		t.Fatalf("/route out of range = %d, want 400", code)
	}

	code, body = get("/plan?src=3&dst=27&value=500")
	if code != 200 {
		t.Fatalf("/plan = %d %s", code, body)
	}
	var pr PlanResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Units) == 0 || pr.Value != 500 {
		t.Fatalf("/plan payload: %+v", pr)
	}
	sum := 0.0
	for _, u := range pr.Units {
		sum += u
	}
	if sum < 499.999 || sum > 500.001 {
		t.Fatalf("/plan units sum to %g, want 500", sum)
	}

	code, body = get("/topology/stats")
	if code != 200 {
		t.Fatalf("/topology/stats = %d %s", code, body)
	}
	var stats struct {
		Nodes     int    `json:"nodes"`
		LiveEdges int    `json:"live_edges"`
		Epoch     uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Nodes != 60 || stats.LiveEdges == 0 {
		t.Fatalf("/topology/stats payload: %s", body)
	}
	// The wire contract: cache and snapshot-store counters ride along under
	// stable snake_case keys (the splicerd dashboard scrapes these).
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"workers", "served", "errors", "cache_hits", "cache_misses", "epoch", "snapshots"} {
		if _, ok := raw[key]; !ok {
			t.Fatalf("/topology/stats missing key %q: %s", key, body)
		}
	}
	var snapStats map[string]json.RawMessage
	if err := json.Unmarshal(raw["snapshots"], &snapStats); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"publishes", "incremental_builds", "full_builds", "resyncs", "buffers", "recycled", "active_pins", "epoch"} {
		if _, ok := snapStats[key]; !ok {
			t.Fatalf("/topology/stats snapshots missing key %q: %s", key, raw["snapshots"])
		}
	}

	// Shutdown flips /healthz to 503 and /route to 503.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code, _ := get("/healthz"); code != 503 {
		t.Fatalf("post-shutdown /healthz = %d, want 503", code)
	}
	if code, _ := get("/route?src=1&dst=2"); code != 503 {
		t.Fatalf("post-shutdown /route = %d, want 503", code)
	}
}

func TestLoadGenSmoke(t *testing.T) {
	n := testNetwork(t, 18, 60)
	s := NewServer(n, Options{Workers: 2})
	defer s.Shutdown(context.Background())
	st := LoadGen(context.Background(), s, LoadGenConfig{
		Clients:  2,
		Duration: 100 * time.Millisecond,
		K:        2,
		Seed:     1,
	})
	if st.Requests == 0 || st.RoutesPerSec <= 0 {
		t.Fatalf("loadgen produced no throughput: %+v", st)
	}
	if st.Errors != 0 {
		t.Fatalf("loadgen errors on a static topology: %+v", st)
	}
}
