// HTTP/JSON front-end for the serving pool: a small API surface
// (/route, /plan, /topology/stats, /healthz) over Server. Handlers are
// thin — parse, call Route, marshal — so everything interesting stays
// testable without a socket.

package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/routing"
)

// PlanResponse is /plan's answer: the routed paths plus the demand split
// into transaction units under the network's TU bounds.
type PlanResponse struct {
	RouteResponse
	Value float64   `json:"value"`
	Units []float64 `json:"units"`
}

// Handler returns the HTTP API over this server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /route", s.handleRoute)
	mux.HandleFunc("GET /plan", s.handlePlan)
	mux.HandleFunc("GET /topology/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// parseRouteRequest reads src/dst/k/type query parameters.
func parseRouteRequest(r *http.Request) (RouteRequest, error) {
	q := r.URL.Query()
	src, err := strconv.Atoi(q.Get("src"))
	if err != nil {
		return RouteRequest{}, errors.New("serve: src must be a node id")
	}
	dst, err := strconv.Atoi(q.Get("dst"))
	if err != nil {
		return RouteRequest{}, errors.New("serve: dst must be a node id")
	}
	req := RouteRequest{Src: graph.NodeID(src), Dst: graph.NodeID(dst), K: 1, Type: routing.KSP}
	if ks := q.Get("k"); ks != "" {
		if req.K, err = strconv.Atoi(ks); err != nil || req.K <= 0 {
			return RouteRequest{}, errors.New("serve: k must be a positive integer")
		}
	}
	if ts := q.Get("type"); ts != "" {
		if req.Type, err = routing.PathTypeByName(ts); err != nil {
			return RouteRequest{}, err
		}
	}
	return req, nil
}

// requestContext applies the server's per-request deadline to an incoming
// request's context (identity when RequestTimeout is 0).
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.opts.RequestTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.opts.RequestTimeout)
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	req, err := parseRouteRequest(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	resp, err := s.Route(ctx, req)
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, resp)
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	req, err := parseRouteRequest(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	value, err := strconv.ParseFloat(r.URL.Query().Get("value"), 64)
	if err != nil || value <= 0 {
		httpError(w, http.StatusBadRequest, errors.New("serve: value must be a positive amount"))
		return
	}
	cfg := s.net.Config()
	units, err := routing.SplitDemand(value, cfg.MinTU, cfg.MaxTU)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	resp, err := s.Route(ctx, req)
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, PlanResponse{RouteResponse: *resp, Value: value, Units: units})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	type reliabilityStats struct {
		Failures     int `json:"failures"`
		Successes    int `json:"successes"`
		ExcludedHits int `json:"excluded_hits"`
	}
	type statsResponse struct {
		ServerStats
		Nodes     int `json:"nodes"`
		LiveEdges int `json:"live_edges"`
		// Reliability is the wrapped network's failure-aware routing store
		// activity (all-zero when the retry layer is unarmed).
		Reliability reliabilityStats `json:"reliability"`
	}
	rel := s.net.ReliabilityStats()
	resp := statsResponse{
		ServerStats: s.Stats(),
		Reliability: reliabilityStats{
			Failures:     rel.Failures,
			Successes:    rel.Successes,
			ExcludedHits: rel.ExcludedHits,
		},
	}
	// Read topology shape from a pinned snapshot, never the live graph.
	if snap := s.store.Acquire(); snap != nil {
		resp.Nodes = snap.Graph().NumNodes()
		resp.LiveEdges = snap.Graph().NumLiveEdges()
		snap.Release()
	}
	writeJSON(w, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.stateMu.RLock()
	closed := s.closed
	s.stateMu.RUnlock()
	if closed {
		httpError(w, http.StatusServiceUnavailable, ErrShuttingDown)
		return
	}
	writeJSON(w, map[string]string{"status": "ok"})
}

// statusFor maps transient serving conditions — shutdown, a saturated pool,
// no published snapshot yet, a request deadline — to 503 (retryable; the
// error response carries Retry-After) and everything else to 400.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrShuttingDown),
		errors.Is(err, ErrSaturated),
		errors.Is(err, ErrNoSnapshot),
		errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing useful left to do.
		_ = err
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	if code == http.StatusServiceUnavailable {
		// Transient overload/startup/shutdown: tell clients when to retry.
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
