package serve

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/pcn"
)

// TestDrawEndpointsNeverSelfRoutes pins the loadgen dst-draw fix: dst must
// exclude src. On a 2-node range the historical uniform draw self-routed
// with probability 1/2 per query, so 500 draws catch a regression with
// overwhelming certainty; the hub-rooted branch gets the same treatment
// with the hub as the forced source.
func TestDrawEndpointsNeverSelfRoutes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		src, dst := drawEndpoints(rng, 2, nil, 0)
		if src == dst {
			t.Fatalf("draw %d: self-route %d->%d", i, src, dst)
		}
	}
	hubs := []graph.NodeID{1}
	for i := 0; i < 500; i++ {
		src, dst := drawEndpoints(rng, 2, hubs, 1.0)
		if src != 1 {
			t.Fatalf("draw %d: hub fraction 1.0 drew non-hub source %d", i, src)
		}
		if src == dst {
			t.Fatalf("draw %d: self-route %d->%d", i, src, dst)
		}
	}
	// Larger range: the exclusion must hold without skewing termination.
	for i := 0; i < 500; i++ {
		if src, dst := drawEndpoints(rng, 5, nil, 0); src == dst {
			t.Fatalf("draw %d: self-route %d->%d", i, src, dst)
		}
	}
}

// TestLoadGenTinyGraph runs the generator end-to-end on the smallest
// network the simulator admits (3 nodes): with self-routes excluded every
// query exercises a real path computation and none error.
func TestLoadGenTinyGraph(t *testing.T) {
	g := graph.New(3)
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}} {
		if _, err := g.AddEdge(e[0], e[1], 100, 100); err != nil {
			t.Fatal(err)
		}
	}
	cfg := pcn.NewConfig(pcn.SchemeShortestPath)
	n, err := pcn.NewNetwork(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(n, Options{Workers: 1})
	defer s.Shutdown(context.Background())
	st := LoadGen(context.Background(), s, LoadGenConfig{
		Clients:  1,
		Duration: 50 * time.Millisecond,
		Seed:     3,
	})
	if st.Requests == 0 {
		t.Fatalf("loadgen produced no throughput on the tiny graph: %+v", st)
	}
	if st.Errors != 0 {
		t.Fatalf("loadgen errors on a static tiny graph: %+v", st)
	}
}
