package serve

// Graceful-degradation contract: a saturated or stalled pool sheds load
// with a retryable signal (ErrSaturated / 503 + Retry-After) instead of
// queueing without bound, per-request deadlines cut off stalled computes,
// and the reliability counters ride the stats endpoint. These are the
// serving-side halves of the failure-aware routing PR.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestSaturationSheds pins the admission path: with one worker, a one-slot
// queue and a long injected stall, the pool's capacity is exactly two
// in-flight queries — the third must be refused immediately with
// ErrSaturated, and the abandoned waits must land in the timeout counter.
func TestSaturationSheds(t *testing.T) {
	n := testNetwork(t, 21, 40)
	s := NewServer(n, Options{Workers: 1, QueueDepth: 1, StallDelay: time.Second})
	defer s.Shutdown(context.Background())

	var saturated bool
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		_, err := s.Route(ctx, RouteRequest{Src: 0, Dst: 20})
		cancel()
		if errors.Is(err, ErrSaturated) {
			saturated = true
			break
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("call %d: err = %v, want deadline (stalled worker) or saturation", i, err)
		}
	}
	if !saturated {
		t.Fatal("three queries against a capacity-2 stalled pool never saturated")
	}
	st := s.Stats()
	if st.Saturated == 0 {
		t.Fatalf("saturation not counted: %+v", st)
	}
	if st.Timeouts == 0 {
		t.Fatalf("abandoned waits not counted as timeouts: %+v", st)
	}
	if got := statusFor(ErrSaturated); got != http.StatusServiceUnavailable {
		t.Fatalf("statusFor(ErrSaturated) = %d, want 503", got)
	}
	if got := statusFor(context.DeadlineExceeded); got != http.StatusServiceUnavailable {
		t.Fatalf("statusFor(DeadlineExceeded) = %d, want 503", got)
	}
}

// TestRequestTimeoutHTTP pins the HTTP half: a stalled pool under a short
// per-request deadline answers 503 with a Retry-After header, not a hang.
func TestRequestTimeoutHTTP(t *testing.T) {
	n := testNetwork(t, 22, 40)
	s := NewServer(n, Options{
		Workers: 1, StallDelay: 500 * time.Millisecond, RequestTimeout: 25 * time.Millisecond,
	})
	defer s.Shutdown(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/route?src=1&dst=20")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stalled /route = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 response lacks Retry-After")
	}
	if st := s.Stats(); st.Timeouts == 0 {
		t.Fatalf("request deadline not counted: %+v", st)
	}
}

// TestStatsReliabilityKeys pins the /topology/stats wire contract additions:
// the saturation/timeout counters and the reliability sub-object are always
// present (zero-valued when the retry layer is unarmed).
func TestStatsReliabilityKeys(t *testing.T) {
	n := testNetwork(t, 23, 40)
	s := NewServer(n, Options{Workers: 1})
	defer s.Shutdown(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/topology/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"saturated", "timeouts", "reliability"} {
		if _, ok := raw[key]; !ok {
			t.Fatalf("/topology/stats missing key %q", key)
		}
	}
	var rel map[string]json.RawMessage
	if err := json.Unmarshal(raw["reliability"], &rel); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"failures", "successes", "excluded_hits"} {
		if _, ok := rel[key]; !ok {
			t.Fatalf("reliability sub-object missing key %q: %s", key, raw["reliability"])
		}
	}
}

// TestLoadGenUnderStall is the satellite's degradation measurement in
// miniature: the load generator against a stalled pool still makes forward
// progress (bounded throughput, not a wedge) and reports any shed queries.
func TestLoadGenUnderStall(t *testing.T) {
	n := testNetwork(t, 24, 40)
	s := NewServer(n, Options{Workers: 2, QueueDepth: 2, StallDelay: 2 * time.Millisecond})
	defer s.Shutdown(context.Background())
	st := LoadGen(context.Background(), s, LoadGenConfig{
		Clients:  8,
		Duration: 150 * time.Millisecond,
		Seed:     2,
	})
	if st.Requests == 0 {
		t.Fatalf("stalled pool made no progress: %+v", st)
	}
	// Shed queries (if any) must be accounted, not silently dropped: the
	// loadgen's saturation counter and the server's must agree.
	if st.Saturated != s.Stats().Saturated {
		t.Fatalf("loadgen saw %d sheds, server counted %d", st.Saturated, s.Stats().Saturated)
	}
}
