// Load generator: sustained-throughput measurement against a Server, used
// by cmd/bench's -loadgen mode (BENCH_PR7.json serve/ entries) and the CI
// loadgen smoke. Clients call Server.Route directly — the HTTP layer is
// deliberately out of the measured path, so the number is the serving
// core's routes/sec, not a socket benchmark.

package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/splicer-pcn/splicer/internal/graph"
)

// LoadGenConfig shapes a load run.
type LoadGenConfig struct {
	// Clients is the number of concurrent requesters; <= 0 means the
	// server's worker count (one outstanding request per worker keeps every
	// worker busy without unbounded queueing).
	Clients int
	// Duration is how long to sustain load.
	Duration time.Duration
	// K is the paths-per-query (<= 0 means 1); queries are unit-KSP, the
	// serving hot path.
	K int
	// Seed seeds the endpoint draws (per-client streams are derived).
	Seed int64
	// HubFraction in [0,1] is the fraction of queries rooted at a hub
	// (label-served); the rest draw uniform sources. Payment traffic in a
	// hub-routed PCN is hub-mediated, so the default loadgen uses 0.5.
	HubFraction float64
}

// LoadStats is a load run's outcome.
type LoadStats struct {
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	// Saturated counts queries shed by a full worker queue (subset of
	// Errors): nonzero means the pool degraded gracefully — load was refused
	// with a retryable signal instead of queueing without bound.
	Saturated     uint64  `json:"saturated"`
	DurationSecs  float64 `json:"duration_secs"`
	RoutesPerSec  float64 `json:"routes_per_sec"`
	Clients       int     `json:"clients"`
	ServerWorkers int     `json:"server_workers"`
}

// drawEndpoints picks one query's endpoints: the source is a hub with
// probability hubFraction (when hubs exist) and uniform otherwise, the
// destination uniform over the node range excluding the source. Self-routes
// are trivially answerable (0-hop), so drawing dst without excluding src
// padded routes_per_sec with ~1/nodes no-op queries — on the tiny graphs of
// tests, far worse. Callers guarantee nodes >= 2, so the redraw terminates.
func drawEndpoints(rng *rand.Rand, nodes int, hubs []graph.NodeID, hubFraction float64) (src, dst graph.NodeID) {
	if len(hubs) > 0 && rng.Float64() < hubFraction {
		src = hubs[rng.Intn(len(hubs))]
	} else {
		src = graph.NodeID(rng.Intn(nodes))
	}
	dst = graph.NodeID(rng.Intn(nodes))
	for dst == src {
		dst = graph.NodeID(rng.Intn(nodes))
	}
	return src, dst
}

// LoadGen drives the server with random route queries from cfg.Clients
// goroutines for cfg.Duration (or until ctx cancels) and reports sustained
// throughput. Endpoints are drawn from the CURRENT snapshot's node range at
// client startup; the topology may churn underneath — out-of-range errors
// after a departure-heavy run count as Errors, not failures.
func LoadGen(ctx context.Context, s *Server, cfg LoadGenConfig) LoadStats {
	if cfg.Clients <= 0 {
		cfg.Clients = len(s.workers)
	}
	if cfg.K <= 0 {
		cfg.K = 1
	}

	var nodes int
	var hubs []graph.NodeID
	if snap := s.Snapshots().Acquire(); snap != nil {
		nodes = snap.Graph().NumNodes()
		if v, ok := snap.Labels(); ok {
			hubs = append(hubs, v.Hubs()...)
		}
		snap.Release()
	}
	if nodes < 2 {
		return LoadStats{Clients: cfg.Clients, ServerWorkers: len(s.workers)}
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	var requests, errs, saturated atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for runCtx.Err() == nil {
				src, dst := drawEndpoints(rng, nodes, hubs, cfg.HubFraction)
				if _, err := s.Route(runCtx, RouteRequest{Src: src, Dst: dst, K: cfg.K}); err != nil {
					if runCtx.Err() != nil {
						break // cancellation, not a serving error
					}
					errs.Add(1)
					if errors.Is(err, ErrSaturated) {
						// Overload shed: back off briefly like an HTTP client
						// honoring Retry-After, instead of hot-spinning the
						// admission path.
						saturated.Add(1)
						select {
						case <-runCtx.Done():
						case <-time.After(200 * time.Microsecond):
						}
					}
					continue
				}
				requests.Add(1)
			}
		}(cfg.Seed + int64(c)*7919)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	st := LoadStats{
		Requests:      requests.Load(),
		Errors:        errs.Load(),
		Saturated:     saturated.Load(),
		DurationSecs:  elapsed,
		Clients:       cfg.Clients,
		ServerWorkers: len(s.workers),
	}
	if elapsed > 0 {
		st.RoutesPerSec = float64(st.Requests) / elapsed
	}
	return st
}
