package contract

import (
	"fmt"
	"testing"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/ledger"
	"github.com/splicer-pcn/splicer/internal/placement"
	"github.com/splicer-pcn/splicer/internal/rng"
	"github.com/splicer-pcn/splicer/internal/topology"
	"github.com/splicer-pcn/splicer/internal/voting"
)

// pipelineFixture builds a graph, ledger with funded hub accounts, and a
// runtime advanced through election and placement.
type pipelineFixture struct {
	g        *graph.Graph
	l        *ledger.Ledger
	rt       *Runtime
	accounts map[graph.NodeID]ledger.AccountID
	inst     *placement.Instance
}

func newFixture(t *testing.T) *pipelineFixture {
	t.Helper()
	g, err := topology.WattsStrogatz(rng.New(7), 40, 4, 0.3, topology.UniformCapacity(50))
	if err != nil {
		t.Fatal(err)
	}
	l := ledger.New()
	cands := voting.CandidatesFromGraph(g, 8)
	accounts := map[graph.NodeID]ledger.AccountID{}
	for _, c := range cands {
		acct := ledger.AccountID(fmt.Sprintf("node-%d", c.Node))
		accounts[c.Node] = acct
		if err := l.Mint(acct, 1000); err != nil {
			t.Fatal(err)
		}
	}
	rt := NewRuntime(l)
	if err := rt.RunElection(cands, nil, voting.Config{Winners: 6, DiversityWeight: 1, Hops: g.AllPairsHops()}); err != nil {
		t.Fatal(err)
	}
	candNodes := make([]graph.NodeID, 0, len(rt.Candidates()))
	candSet := map[graph.NodeID]bool{}
	for _, c := range rt.Candidates() {
		candNodes = append(candNodes, c.Node)
		candSet[c.Node] = true
	}
	var clients []graph.NodeID
	for i := 0; i < g.NumNodes(); i++ {
		if !candSet[graph.NodeID(i)] {
			clients = append(clients, graph.NodeID(i))
		}
	}
	inst, err := placement.NewInstanceFromGraph(g, clients, candNodes, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return &pipelineFixture{g: g, l: l, rt: rt, accounts: accounts, inst: inst}
}

func TestPipelinePhases(t *testing.T) {
	f := newFixture(t)
	if f.rt.Phase() != PhaseCandidates {
		t.Fatalf("phase after election = %v", f.rt.Phase())
	}
	if err := f.rt.RunPlacement(f.inst, f.accounts); err != nil {
		t.Fatal(err)
	}
	if f.rt.Phase() != PhaseActualPCHs {
		t.Fatalf("phase after placement = %v", f.rt.Phase())
	}
	hubs := f.rt.Hubs()
	if len(hubs) == 0 {
		t.Fatal("no hubs selected")
	}
	// Every hub pledged the deposit.
	for _, h := range hubs {
		if f.l.Deposit(f.accounts[h]) != f.rt.RequiredDeposit {
			t.Fatalf("hub %d deposit = %v", h, f.l.Deposit(f.accounts[h]))
		}
	}
}

func TestPhaseOrderEnforced(t *testing.T) {
	f := newFixture(t)
	// Election again in candidate phase fails.
	if err := f.rt.RunElection(nil, nil, voting.Config{Winners: 1}); err == nil {
		t.Fatal("second election accepted")
	}
	// Report before placement fails.
	if _, err := f.rt.Report(f.rt.Candidates()[0].Node, f.accounts, 10); err == nil {
		t.Fatal("report accepted before placement")
	}
}

func TestReportQuorumSlashes(t *testing.T) {
	f := newFixture(t)
	if err := f.rt.RunPlacement(f.inst, f.accounts); err != nil {
		t.Fatal(err)
	}
	hub := f.rt.Hubs()[0]
	const entities = 10 // quorum = ceil(6.7) reports
	removed := false
	for i := 0; i < 7; i++ {
		var err error
		removed, err = f.rt.Report(hub, f.accounts, entities)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !removed {
		t.Fatal("hub not removed after quorum of reports")
	}
	if f.l.Deposit(f.accounts[hub]) != 0 {
		t.Fatal("deposit not slashed")
	}
	if f.l.ConfiscatedPool() != f.rt.RequiredDeposit {
		t.Fatalf("pool = %v", f.l.ConfiscatedPool())
	}
	for _, h := range f.rt.Hubs() {
		if h == hub {
			t.Fatal("removed hub still serving")
		}
	}
	// Reporting the removed hub again errors.
	if _, err := f.rt.Report(hub, f.accounts, entities); err == nil {
		t.Fatal("report against removed hub accepted")
	}
}

func TestReportUnknownHub(t *testing.T) {
	f := newFixture(t)
	if err := f.rt.RunPlacement(f.inst, f.accounts); err != nil {
		t.Fatal(err)
	}
	if _, err := f.rt.Report(graph.NodeID(9999), f.accounts, 10); err == nil {
		t.Fatal("report against non-hub accepted")
	}
}

func TestReplaceHub(t *testing.T) {
	f := newFixture(t)
	if err := f.rt.RunPlacement(f.inst, f.accounts); err != nil {
		t.Fatal(err)
	}
	before := len(f.rt.Hubs())
	hub := f.rt.Hubs()[0]
	for i := 0; i < 7; i++ {
		if _, err := f.rt.Report(hub, f.accounts, 10); err != nil {
			t.Fatal(err)
		}
	}
	if len(f.rt.Hubs()) != before-1 {
		t.Fatal("hub not removed")
	}
	replacement, err := f.rt.ReplaceHub(f.accounts)
	if err != nil {
		t.Fatal(err)
	}
	if replacement == hub {
		t.Fatal("slashed hub re-admitted")
	}
	if len(f.rt.Hubs()) != before {
		t.Fatalf("hub count %d after replacement, want %d", len(f.rt.Hubs()), before)
	}
	if f.l.Deposit(f.accounts[replacement]) != f.rt.RequiredDeposit {
		t.Fatal("replacement did not pledge")
	}
}

func TestSupplyConservedThroughPipeline(t *testing.T) {
	f := newFixture(t)
	start := f.l.TotalSupply()
	if err := f.rt.RunPlacement(f.inst, f.accounts); err != nil {
		t.Fatal(err)
	}
	hub := f.rt.Hubs()[0]
	for i := 0; i < 7; i++ {
		if _, err := f.rt.Report(hub, f.accounts, 10); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.rt.ReplaceHub(f.accounts); err != nil {
		t.Fatal(err)
	}
	if got := f.l.TotalSupply(); got != start {
		t.Fatalf("supply %v != %v", got, start)
	}
}
