// Package contract simulates the smart-contract layer of Splicer's trust
// transference model (§III-B, Fig. 4): the voting contract electing the
// smooth-node candidate list, the placement-optimization contract the
// candidates run to decide the actual PCHs, and the reporting/arbitration
// mechanism that slashes and replaces malicious PCHs.
package contract

import (
	"fmt"
	"sort"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/ledger"
	"github.com/splicer-pcn/splicer/internal/placement"
	"github.com/splicer-pcn/splicer/internal/voting"
)

// Phase of the trust-transference pipeline.
type Phase int

// Pipeline phases (Fig. 4, left to right).
const (
	PhaseVoting Phase = iota + 1
	PhaseCandidates
	PhaseActualPCHs
)

func (p Phase) String() string {
	switch p {
	case PhaseVoting:
		return "voting"
	case PhaseCandidates:
		return "candidates"
	case PhaseActualPCHs:
		return "actual-pchs"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Runtime drives the pipeline over a ledger.
type Runtime struct {
	ledger *ledger.Ledger
	phase  Phase

	// RequiredDeposit is the pledge each actual PCH posts to the public
	// pool for access.
	RequiredDeposit float64
	// ApprovalQuorum is the community-majority fraction for decisions
	// (the paper: 67%).
	ApprovalQuorum float64

	candidates []voting.Candidate
	hubs       []graph.NodeID
	reports    map[graph.NodeID]int // accusation counts against hubs
	removed    map[graph.NodeID]bool
}

// NewRuntime creates a contract runtime over the ledger.
func NewRuntime(l *ledger.Ledger) *Runtime {
	return &Runtime{
		ledger:          l,
		phase:           PhaseVoting,
		RequiredDeposit: 100,
		ApprovalQuorum:  0.67,
		reports:         map[graph.NodeID]int{},
		removed:         map[graph.NodeID]bool{},
	}
}

// Phase returns the current pipeline phase.
func (r *Runtime) Phase() Phase { return r.phase }

// Candidates returns the elected candidate list.
func (r *Runtime) Candidates() []voting.Candidate {
	return append([]voting.Candidate(nil), r.candidates...)
}

// Hubs returns the actual PCHs in effect.
func (r *Runtime) Hubs() []graph.NodeID { return append([]graph.NodeID(nil), r.hubs...) }

// RunElection executes the voting contract: tally ballots, elect the
// candidate list, advance to the candidate phase.
func (r *Runtime) RunElection(cands []voting.Candidate, ballots []voting.Ballot, cfg voting.Config) error {
	if r.phase != PhaseVoting {
		return fmt.Errorf("contract: election in phase %v", r.phase)
	}
	tallied := voting.Tally(cands, ballots)
	winners, err := voting.Elect(tallied, cfg)
	if err != nil {
		return fmt.Errorf("contract: election: %w", err)
	}
	r.candidates = winners
	r.phase = PhaseCandidates
	return nil
}

// RunPlacement executes the placement-optimization contract over the
// candidate list: solve the instance, collect the required deposit from
// every selected hub, advance to long-term operation. accounts maps node id
// to ledger account for deposit collection.
func (r *Runtime) RunPlacement(inst *placement.Instance, accounts map[graph.NodeID]ledger.AccountID) error {
	if r.phase != PhaseCandidates {
		return fmt.Errorf("contract: placement in phase %v", r.phase)
	}
	var plan placement.Plan
	var err error
	if len(inst.Candidates) <= 16 {
		plan, err = inst.SolveExhaustive()
	} else {
		plan, err = inst.SolveDoubleGreedy(nil)
	}
	if err != nil {
		return fmt.Errorf("contract: placement solve: %w", err)
	}
	var hubs []graph.NodeID
	for _, idx := range plan.PlacedCandidates() {
		hubs = append(hubs, inst.Candidates[idx])
	}
	// Collect deposits.
	for _, h := range hubs {
		acct, ok := accounts[h]
		if !ok {
			return fmt.Errorf("contract: no account for hub %d", h)
		}
		r.ledger.Submit(ledger.Tx{Kind: ledger.TxDeposit, From: acct, Amount: r.RequiredDeposit})
	}
	if _, rejected := r.ledger.ProduceBlock(); len(rejected) > 0 {
		return fmt.Errorf("contract: deposit collection failed: %v", rejected[0])
	}
	r.hubs = hubs
	r.phase = PhaseActualPCHs
	return nil
}

// Report files a client accusation against a hub. When accusations from
// distinct reporters reach the quorum fraction of totalEntities, the hub is
// slashed and removed; the contract returns true in that case.
func (r *Runtime) Report(hub graph.NodeID, accounts map[graph.NodeID]ledger.AccountID, totalEntities int) (bool, error) {
	if r.phase != PhaseActualPCHs {
		return false, fmt.Errorf("contract: report in phase %v", r.phase)
	}
	if r.removed[hub] {
		return false, fmt.Errorf("contract: hub %d already removed", hub)
	}
	found := false
	for _, h := range r.hubs {
		if h == hub {
			found = true
			break
		}
	}
	if !found {
		return false, fmt.Errorf("contract: %d is not an actual PCH", hub)
	}
	r.reports[hub]++
	if float64(r.reports[hub]) < r.ApprovalQuorum*float64(totalEntities) {
		return false, nil
	}
	// Quorum reached: slash the deposit and remove the hub.
	acct, ok := accounts[hub]
	if !ok {
		return false, fmt.Errorf("contract: no account for hub %d", hub)
	}
	r.ledger.Submit(ledger.Tx{Kind: ledger.TxSlash, To: acct})
	if _, rejected := r.ledger.ProduceBlock(); len(rejected) > 0 {
		return false, fmt.Errorf("contract: slash failed: %v", rejected[0])
	}
	r.removed[hub] = true
	var kept []graph.NodeID
	for _, h := range r.hubs {
		if h != hub {
			kept = append(kept, h)
		}
	}
	r.hubs = kept
	return true, nil
}

// ReplaceHub admits a replacement from the candidate list for a removed
// hub, collecting its deposit. Candidates not already serving are
// considered in descending vote order.
func (r *Runtime) ReplaceHub(accounts map[graph.NodeID]ledger.AccountID) (graph.NodeID, error) {
	if r.phase != PhaseActualPCHs {
		return 0, fmt.Errorf("contract: replace in phase %v", r.phase)
	}
	serving := map[graph.NodeID]bool{}
	for _, h := range r.hubs {
		serving[h] = true
	}
	pool := append([]voting.Candidate(nil), r.candidates...)
	sort.Slice(pool, func(i, j int) bool { return pool[i].Votes > pool[j].Votes })
	for _, c := range pool {
		if serving[c.Node] || r.removed[c.Node] {
			continue
		}
		acct, ok := accounts[c.Node]
		if !ok {
			continue
		}
		r.ledger.Submit(ledger.Tx{Kind: ledger.TxDeposit, From: acct, Amount: r.RequiredDeposit})
		if _, rejected := r.ledger.ProduceBlock(); len(rejected) > 0 {
			continue // cannot afford the pledge; try the next candidate
		}
		r.hubs = append(r.hubs, c.Node)
		return c.Node, nil
	}
	return 0, fmt.Errorf("contract: no eligible replacement candidate")
}
