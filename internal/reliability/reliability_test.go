package reliability

import (
	"math"
	"reflect"
	"testing"

	"github.com/splicer-pcn/splicer/internal/graph"
)

// diamond builds 0-1-3 and 0-2-3: two equal-hop routes, so a penalty on one
// deterministically steers the shortest path through the other.
func diamond(t *testing.T) (*graph.Graph, [4]graph.EdgeID) {
	t.Helper()
	g := graph.New(4)
	var ids [4]graph.EdgeID
	for i, pair := range [][2]graph.NodeID{{0, 1}, {1, 3}, {0, 2}, {2, 3}} {
		id, err := g.AddEdge(pair[0], pair[1], 100, 100)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	return g, ids
}

func TestConfigValidate(t *testing.T) {
	var zero Config
	if err := zero.Validate(); err != nil {
		t.Fatalf("zero (unarmed) config invalid: %v", err)
	}
	if zero.Armed() {
		t.Fatal("zero config reports armed")
	}
	if !NewConfig().Armed() {
		t.Fatal("NewConfig is not armed")
	}
	bad := NewConfig()
	bad.Backoff = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative backoff validated")
	}
	// Unarmed configs skip knob validation entirely: MaxAttempts <= 1 means
	// the store is never built, so garbage knobs are inert.
	bad.MaxAttempts = 1
	if err := bad.Validate(); err != nil {
		t.Fatalf("unarmed config with junk knobs invalid: %v", err)
	}
}

func TestPenaltyDecay(t *testing.T) {
	st := NewStore(NewConfig()) // half-life 2s
	st.ObserveFailure(0, 0)
	if p := st.Penalty(0, 0); p != 1 {
		t.Fatalf("penalty right after failure = %v, want 1", p)
	}
	if p := st.Penalty(0, 2); math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("penalty one half-life later = %v, want 0.5", p)
	}
	if p := st.Penalty(0, 4); math.Abs(p-0.25) > 1e-12 {
		t.Fatalf("penalty two half-lives later = %v, want 0.25", p)
	}
	if p := st.Penalty(99, 4); p != 0 {
		t.Fatalf("never-observed edge penalty = %v, want 0", p)
	}
}

func TestExclusionWindow(t *testing.T) {
	st := NewStore(NewConfig()) // exclusion 0.5s
	st.ObserveFailure(3, 1)
	if !st.Excluded(3, 1.4) {
		t.Fatal("edge not excluded inside its window")
	}
	if st.Excluded(3, 1.6) {
		t.Fatal("edge still excluded after its window")
	}
	// Inside the window the overlay prices the edge unroutable.
	w := st.Weight(1.4)
	if c := w(graph.Edge{ID: 3}, 0); !math.IsInf(c, 1) {
		t.Fatalf("excluded edge weight = %v, want +Inf", c)
	}
	if st.Stats().ExcludedHits == 0 {
		t.Fatal("exclusion hit not counted")
	}
	// After the window it is penalized, not excluded.
	if c := st.Weight(1.6)(graph.Edge{ID: 3}, 0); math.IsInf(c, 1) || c <= 1 {
		t.Fatalf("post-window weight = %v, want finite > 1", c)
	}
}

func TestSuccessForgives(t *testing.T) {
	st := NewStore(NewConfig())
	st.ObserveFailure(5, 0)
	st.ObserveSuccess(5, 0)
	if p := st.Penalty(5, 0); math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("penalty after failure+success = %v, want 0.5", p)
	}
	if st.Excluded(5, 0.1) {
		t.Fatal("success did not end the exclusion window")
	}
	want := Stats{Failures: 1, Successes: 1}
	if got := st.Stats(); got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
}

// TestEmptyStoreWeightIdentity pins the golden-byte contract: a store that
// has never observed anything hands back graph.UnitWeight ITSELF, so every
// path query through it is the same call the retry-less simulator makes.
func TestEmptyStoreWeightIdentity(t *testing.T) {
	st := NewStore(NewConfig())
	w := st.Weight(3)
	if reflect.ValueOf(w).Pointer() != reflect.ValueOf(graph.WeightFunc(graph.UnitWeight)).Pointer() {
		t.Fatal("empty store's Weight is not graph.UnitWeight itself")
	}
	g, _ := diamond(t)
	pf := graph.NewPathFinder(g)
	got, ok1 := pf.ShortestPath(0, 3, st.Weight(0))
	want, ok2 := pf.UnitShortestPath(0, 3)
	if ok1 != ok2 || !reflect.DeepEqual(got, want) {
		t.Fatalf("empty-store query diverged: %+v vs %+v", got, want)
	}
}

func TestPenaltySteersPath(t *testing.T) {
	g, ids := diamond(t)
	pf := graph.NewPathFinder(g)
	st := NewStore(NewConfig())
	// Fail the 0-1 edge and query after the exclusion window: the penalty
	// (1 + 4·p > 1) must push the route through 0-2-3.
	st.ObserveFailure(ids[0], 0)
	p, ok := pf.ShortestPath(0, 3, st.Weight(1))
	if !ok {
		t.Fatal("0->3 unreachable")
	}
	if want := []graph.NodeID{0, 2, 3}; !reflect.DeepEqual(p.Nodes, want) {
		t.Fatalf("penalized route = %v, want %v", p.Nodes, want)
	}
}

func TestWeightAvoiding(t *testing.T) {
	g, ids := diamond(t)
	pf := graph.NewPathFinder(g)
	st := NewStore(NewConfig())
	// Even an empty store must honor the avoided hop: that is the retry
	// re-plan's "not the edge that just failed" guarantee.
	p, ok := pf.ShortestPath(0, 3, st.WeightAvoiding(0, ids[2]))
	if !ok {
		t.Fatal("0->3 unreachable")
	}
	if want := []graph.NodeID{0, 1, 3}; !reflect.DeepEqual(p.Nodes, want) {
		t.Fatalf("avoiding route = %v, want %v", p.Nodes, want)
	}
	if c := st.WeightAvoiding(0, ids[2])(graph.Edge{ID: ids[2]}, 0); !math.IsInf(c, 1) {
		t.Fatalf("avoided edge weight = %v, want +Inf", c)
	}
}

// TestDeterministicFold pins that the store is a pure fold: replaying the
// same observation sequence yields identical penalties and weights.
func TestDeterministicFold(t *testing.T) {
	build := func() *Store {
		st := NewStore(NewConfig())
		for i := 0; i < 200; i++ {
			e := graph.EdgeID(i % 17)
			now := float64(i) * 0.03
			if i%3 == 0 {
				st.ObserveSuccess(e, now)
			} else {
				st.ObserveFailure(e, now)
			}
		}
		return st
	}
	a, b := build(), build()
	for e := graph.EdgeID(0); e < 17; e++ {
		if pa, pb := a.Penalty(e, 7), b.Penalty(e, 7); pa != pb {
			t.Fatalf("edge %d penalty diverged: %v vs %v", e, pa, pb)
		}
		if xa, xb := a.Excluded(e, 7), b.Excluded(e, 7); xa != xb {
			t.Fatalf("edge %d exclusion diverged", e)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}
