// Package reliability is the failure-aware routing layer: a deterministic,
// seeded reimplementation of the "mission control" pattern production
// Lightning routers use. The payment lifecycle reports every transaction-unit
// outcome at its failing hop; the Store turns those observations into
// per-edge penalty scores with exponential time-decay and a hard-exclusion
// window after each failure, and exposes them as a cost overlay for
// graph.PathFinder so retries (and any penalty-aware re-plan) route around
// edges that recently failed.
//
// Determinism contract: the Store is a pure fold over the observation
// sequence (edge, time, outcome) — no clocks, no randomness, no maps with
// iteration-order dependence. A Store that has never observed anything
// returns graph.UnitWeight itself from Weight, so empty-store path queries
// are bit-identical to PathFinder.UnitShortestPath; the retry layer in pcn
// only consults the overlay after the first observation, and only when
// armed, which is how the golden panels stay byte-identical with retries
// off.
//
// A Store belongs to exactly one pcn.Network and is not goroutine-safe
// (sweep workers each own a private network, matching the simulator's
// single-writer discipline).
package reliability

import (
	"fmt"
	"math"

	"github.com/splicer-pcn/splicer/internal/graph"
)

// Config parameterizes the retry layer. The zero value is unarmed: no
// store is created, no observations are made, and the payment lifecycle is
// byte-identical to the retry-less simulator.
type Config struct {
	// MaxAttempts is the total send budget per transaction unit, first
	// attempt included. <= 1 disables retries (the armed threshold).
	MaxAttempts int
	// Backoff is the base re-send delay in seconds; attempt i waits
	// i·Backoff plus jitter before re-planning. Default 0.05.
	Backoff float64
	// HalfLife is the penalty decay half-life in seconds: an edge's penalty
	// halves every HalfLife of quiet time. Default 2.
	HalfLife float64
	// Exclusion is the hard-exclusion window in seconds: for this long
	// after a failure the edge is unroutable (+Inf cost), not merely
	// penalized. Default 0.5.
	Exclusion float64
	// PenaltyWeight inflates a penalized edge's unit cost to
	// 1 + PenaltyWeight·penalty. Default 4.
	PenaltyWeight float64
	// Seed seeds the backoff-jitter stream (pcn derives an rng from it;
	// the scenario layer overrides the stream with the spec source's
	// Split(6) so the other build streams keep their draw order).
	Seed uint64
}

// NewConfig returns the armed defaults (MaxAttempts 3).
func NewConfig() Config {
	return Config{
		MaxAttempts:   3,
		Backoff:       0.05,
		HalfLife:      2,
		Exclusion:     0.5,
		PenaltyWeight: 4,
	}
}

// Armed reports whether the configuration enables retries at all.
func (c Config) Armed() bool { return c.MaxAttempts > 1 }

// Validate rejects nonsensical armed configurations. The zero value
// (unarmed) always validates.
func (c Config) Validate() error {
	if !c.Armed() {
		return nil
	}
	if c.Backoff < 0 || c.HalfLife < 0 || c.Exclusion < 0 || c.PenaltyWeight < 0 {
		return fmt.Errorf("reliability: negative retry parameter (backoff %v, half-life %v, exclusion %v, penalty weight %v)",
			c.Backoff, c.HalfLife, c.Exclusion, c.PenaltyWeight)
	}
	return nil
}

// withDefaults fills unset knobs of an armed config.
func (c Config) withDefaults() Config {
	d := NewConfig()
	if c.Backoff == 0 {
		c.Backoff = d.Backoff
	}
	if c.HalfLife == 0 {
		c.HalfLife = d.HalfLife
	}
	if c.Exclusion == 0 {
		c.Exclusion = d.Exclusion
	}
	if c.PenaltyWeight == 0 {
		c.PenaltyWeight = d.PenaltyWeight
	}
	return c
}

// Stats counts the store's observation activity.
type Stats struct {
	// Failures and Successes are observations recorded.
	Failures, Successes int
	// ExcludedHits counts weight queries answered with +Inf because the
	// edge was inside its exclusion window.
	ExcludedHits int
}

// edgeState is one edge's learned reliability: a decayed penalty score and
// the end of its current hard-exclusion window.
type edgeState struct {
	penalty       float64
	updated       float64 // time the penalty was last decayed to
	excludedUntil float64
}

// Store accumulates per-edge reliability observations.
type Store struct {
	cfg    Config
	edges  []edgeState // indexed by EdgeID, grown on demand
	seen   bool        // any observation ever recorded
	decayK float64     // ln 2 / half-life (0: no decay)
	stats  Stats
}

// NewStore builds a store under cfg (defaults filled for unset knobs).
func NewStore(cfg Config) *Store {
	cfg = cfg.withDefaults()
	s := &Store{cfg: cfg}
	if cfg.HalfLife > 0 {
		s.decayK = math.Ln2 / cfg.HalfLife
	}
	return s
}

// Config returns the store's (default-filled) configuration.
func (s *Store) Config() Config { return s.cfg }

// Stats returns the observation counters.
func (s *Store) Stats() Stats { return s.stats }

// Empty reports whether the store has never recorded an observation.
// While true, Weight returns graph.UnitWeight itself.
func (s *Store) Empty() bool { return !s.seen }

func (s *Store) state(e graph.EdgeID) *edgeState {
	if int(e) >= len(s.edges) {
		grown := make([]edgeState, int(e)+1)
		copy(grown, s.edges)
		s.edges = grown
	}
	return &s.edges[e]
}

// decayTo brings an edge's penalty forward to now.
func (es *edgeState) decayTo(now, k float64) {
	if dt := now - es.updated; dt > 0 && k > 0 && es.penalty > 0 {
		es.penalty *= math.Exp(-k * dt)
	}
	es.updated = now
}

// ObserveFailure records a TU failure at edge e: the penalty steps up by
// one (after decay) and the edge's hard-exclusion window restarts.
func (s *Store) ObserveFailure(e graph.EdgeID, now float64) {
	if e < 0 {
		return
	}
	es := s.state(e)
	es.decayTo(now, s.decayK)
	es.penalty++
	if until := now + s.cfg.Exclusion; until > es.excludedUntil {
		es.excludedUntil = until
	}
	s.seen = true
	s.stats.Failures++
}

// ObserveSuccess records a settled hop at edge e: the penalty halves (on
// top of time-decay), so an edge that recovers is forgiven quickly, and any
// exclusion window ends — the edge demonstrably forwards again.
func (s *Store) ObserveSuccess(e graph.EdgeID, now float64) {
	if e < 0 {
		return
	}
	es := s.state(e)
	es.decayTo(now, s.decayK)
	es.penalty *= 0.5
	es.excludedUntil = now
	s.seen = true
	s.stats.Successes++
}

// Penalty returns edge e's decayed penalty score at time now (0 for edges
// never observed).
func (s *Store) Penalty(e graph.EdgeID, now float64) float64 {
	if int(e) >= len(s.edges) || e < 0 {
		return 0
	}
	es := &s.edges[e]
	es.decayTo(now, s.decayK)
	return es.penalty
}

// Excluded reports whether edge e is inside its hard-exclusion window.
func (s *Store) Excluded(e graph.EdgeID, now float64) bool {
	if int(e) >= len(s.edges) || e < 0 {
		return false
	}
	return now < s.edges[e].excludedUntil
}

// Weight returns the penalty-aware cost overlay for PathFinder queries at
// time now: an edge inside its exclusion window costs +Inf (Dijkstra skips
// it), every other edge costs 1 + PenaltyWeight·penalty. An empty store
// returns graph.UnitWeight itself, so the query is bit-identical to
// PathFinder.UnitShortestPath — the pinned empty-store contract.
func (s *Store) Weight(now float64) graph.WeightFunc {
	return s.WeightAvoiding(now, -1)
}

// WeightAvoiding is Weight with one additional hard-excluded edge — the
// hop a retry is routing around — regardless of the store's state for it.
func (s *Store) WeightAvoiding(now float64, avoid graph.EdgeID) graph.WeightFunc {
	if !s.seen && avoid < 0 {
		return graph.UnitWeight
	}
	return func(e graph.Edge, _ graph.NodeID) float64 {
		if e.ID == avoid {
			return math.Inf(1)
		}
		if int(e.ID) >= len(s.edges) {
			return 1
		}
		es := &s.edges[e.ID]
		if now < es.excludedUntil {
			s.stats.ExcludedHits++
			return math.Inf(1)
		}
		es.decayTo(now, s.decayK)
		return 1 + s.cfg.PenaltyWeight*es.penalty
	}
}
