package workload

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/rng"
)

func TestChannelSizeCalibration(t *testing.T) {
	d := NewChannelSizeDist(rng.New(1), 1)
	const n = 200000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = d.Sample()
	}
	st := Summarize(vals)
	if st.Min < LNChannelMin {
		t.Fatalf("min %v below dataset min %v", st.Min, LNChannelMin)
	}
	if math.Abs(st.Mean-LNChannelMean) > 0.05*LNChannelMean {
		t.Fatalf("mean %v, want ~%v", st.Mean, LNChannelMean)
	}
	if math.Abs(st.Median-LNChannelMedian) > 0.05*LNChannelMedian {
		t.Fatalf("median %v, want ~%v", st.Median, LNChannelMedian)
	}
	// Heavy tail: max should dwarf the mean.
	if st.Max < 10*st.Mean {
		t.Fatalf("max %v not heavy-tailed vs mean %v", st.Max, st.Mean)
	}
}

func TestChannelSizeScale(t *testing.T) {
	base := NewChannelSizeDist(rng.New(5), 1)
	scaled := NewChannelSizeDist(rng.New(5), 3)
	for i := 0; i < 100; i++ {
		b, s := base.Sample(), scaled.Sample()
		if math.Abs(s-3*b) > 1e-9 {
			t.Fatalf("scaling broken: %v vs 3*%v", s, b)
		}
	}
}

func TestChannelSizePanicsOnBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewChannelSizeDist(rng.New(1), 0)
}

func TestTxValueDistProperties(t *testing.T) {
	d := NewTxValueDist(rng.New(2), 1)
	const n = 100000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = d.Sample()
	}
	st := Summarize(vals)
	if st.Min < 1 {
		t.Fatalf("value %v below Min-TU 1", st.Min)
	}
	// Must contain elephants far above the median (large-value txs the LN
	// cannot handle over a median-sized channel of 152).
	sort.Float64s(vals)
	if vals[n-1] < 500 {
		t.Fatalf("no large-value transactions: max %v", vals[n-1])
	}
	if st.Median > 20 {
		t.Fatalf("median %v too large; body should be small payments", st.Median)
	}
}

func clients(n int) []graph.NodeID {
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(i)
	}
	return out
}

func validCfg() Config {
	return Config{
		Clients:             clients(20),
		Rate:                100,
		Duration:            10,
		Timeout:             3,
		ZipfSkew:            0.9,
		ValueScale:          1,
		CirculationFraction: 0.2,
	}
}

func TestGenerateBasics(t *testing.T) {
	txs, err := Generate(rng.New(3), validCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Poisson(100/s * 10s) ≈ 1000 arrivals.
	if len(txs) < 800 || len(txs) > 1200 {
		t.Fatalf("trace length %d, want ~1000", len(txs))
	}
	prev := -1.0
	for i, tx := range txs {
		if tx.ID != i {
			t.Fatalf("ids not dense: tx[%d].ID = %d", i, tx.ID)
		}
		if tx.Arrival < prev {
			t.Fatal("arrivals not sorted")
		}
		prev = tx.Arrival
		if tx.Sender == tx.Recipient {
			t.Fatalf("self-payment in trace: %+v", tx)
		}
		if tx.Value < 1 {
			t.Fatalf("value below Min-TU: %+v", tx)
		}
		if math.Abs(tx.Deadline-tx.Arrival-3) > 1e-9 {
			t.Fatalf("deadline wrong: %+v", tx)
		}
		if tx.Arrival < 0 || tx.Arrival >= 10 {
			t.Fatalf("arrival outside duration: %+v", tx)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	t1, err := Generate(rng.New(11), validCfg())
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Generate(rng.New(11), validCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(t1) != len(t2) {
		t.Fatalf("lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("trace differs at %d: %+v vs %+v", i, t1[i], t2[i])
		}
	}
}

func TestGenerateCirculationInducesImbalance(t *testing.T) {
	cfg := validCfg()
	cfg.CirculationFraction = 0.9
	cfg.ZipfSkew = 0
	txs, err := Generate(rng.New(13), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Net flow per the Fig. 1(b) pattern: B receives from A and C but only
	// pays A, so C's net outflow is strictly positive (it is drained).
	net := map[graph.NodeID]float64{}
	for _, tx := range txs {
		net[tx.Sender] -= tx.Value
		net[tx.Recipient] += tx.Value
	}
	c := cfg.Clients[2]
	if net[c] >= 0 {
		t.Fatalf("circulation should drain client C: net[%d] = %v", c, net[c])
	}
}

func TestGenerateValidation(t *testing.T) {
	mod := func(f func(*Config)) Config {
		c := validCfg()
		f(&c)
		return c
	}
	bad := []Config{
		mod(func(c *Config) { c.Clients = clients(1) }),
		mod(func(c *Config) { c.Rate = 0 }),
		mod(func(c *Config) { c.Duration = -1 }),
		mod(func(c *Config) { c.Timeout = 0 }),
		mod(func(c *Config) { c.ZipfSkew = -0.5 }),
		mod(func(c *Config) { c.ValueScale = 0 }),
		mod(func(c *Config) { c.CirculationFraction = 1 }),
		mod(func(c *Config) { c.CirculationFraction = -0.1 }),
	}
	for i, c := range bad {
		if _, err := Generate(rng.New(1), c); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestGenerateZipfSkewConcentrates(t *testing.T) {
	cfg := validCfg()
	cfg.ZipfSkew = 1.5
	cfg.CirculationFraction = 0
	cfg.Duration = 50
	txs, err := Generate(rng.New(17), cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[graph.NodeID]int{}
	for _, tx := range txs {
		counts[tx.Sender]++
	}
	// Rank-0 client should dominate.
	if counts[cfg.Clients[0]] <= counts[cfg.Clients[10]] {
		t.Fatalf("no sender skew: rank0=%d rank10=%d", counts[cfg.Clients[0]], counts[cfg.Clients[10]])
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if st := Summarize(nil); st.N != 0 {
		t.Fatalf("empty summarize: %+v", st)
	}
}

func TestSummarizeKnown(t *testing.T) {
	st := Summarize([]float64{3, 1, 2})
	if st.Min != 1 || st.Max != 3 || st.Median != 2 || math.Abs(st.Mean-2) > 1e-12 || st.N != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPropertyTraceWellFormed(t *testing.T) {
	f := func(seed uint64, skewRaw, circRaw uint8) bool {
		cfg := validCfg()
		cfg.ZipfSkew = float64(skewRaw) / 100
		cfg.CirculationFraction = float64(circRaw%90) / 100
		cfg.Duration = 2
		txs, err := Generate(rng.New(seed), cfg)
		if err != nil {
			return len(txs) == 0 // only the "empty trace" error is legal here
		}
		for _, tx := range txs {
			if tx.Sender == tx.Recipient || tx.Value < 1 || tx.Deadline <= tx.Arrival {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
