// Trace persistence: a payment trace serialized as CSV so captured or
// externally produced workloads (a measurement trace, a trimmed replay of a
// production log) can drive the simulator instead of the synthetic
// generator. The scenario engine's "replay" workload type is built on this.
package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"github.com/splicer-pcn/splicer/internal/graph"
)

// traceHeader is the canonical column set of a trace CSV.
var traceHeader = []string{"id", "sender", "recipient", "value", "arrival", "deadline"}

// WriteTrace serializes a trace as CSV in slice order.
func WriteTrace(w io.Writer, txs []Tx) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(traceHeader); err != nil {
		return err
	}
	for _, tx := range txs {
		rec := []string{
			strconv.Itoa(tx.ID),
			strconv.Itoa(int(tx.Sender)),
			strconv.Itoa(int(tx.Recipient)),
			strconv.FormatFloat(tx.Value, 'g', -1, 64),
			strconv.FormatFloat(tx.Arrival, 'g', -1, 64),
			strconv.FormatFloat(tx.Deadline, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTrace parses a trace CSV. Rows are validated the way Generate's output
// is shaped: positive values, distinct endpoints, deadlines at or after
// arrival, and arrivals sorted non-decreasing — a replayed trace must be a
// plausible simulator input, not just parseable.
func ReadTrace(r io.Reader) ([]Tx, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: trace: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("workload: trace: empty file")
	}
	if len(records[0]) != len(traceHeader) || records[0][0] != "id" {
		return nil, fmt.Errorf("workload: trace: missing header %v", traceHeader)
	}
	rows := records[1:]
	if len(rows) == 0 {
		return nil, fmt.Errorf("workload: trace: no transactions")
	}
	txs := make([]Tx, 0, len(rows))
	for i, rec := range rows {
		var tx Tx
		var s, rcpt int
		var errs [6]error
		tx.ID, errs[0] = strconv.Atoi(rec[0])
		s, errs[1] = strconv.Atoi(rec[1])
		rcpt, errs[2] = strconv.Atoi(rec[2])
		tx.Value, errs[3] = strconv.ParseFloat(rec[3], 64)
		tx.Arrival, errs[4] = strconv.ParseFloat(rec[4], 64)
		tx.Deadline, errs[5] = strconv.ParseFloat(rec[5], 64)
		for _, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("workload: trace row %d: %w", i+1, err)
			}
		}
		tx.Sender, tx.Recipient = graph.NodeID(s), graph.NodeID(rcpt)
		switch {
		case s < 0 || rcpt < 0:
			return nil, fmt.Errorf("workload: trace row %d: negative endpoint", i+1)
		case s == rcpt:
			return nil, fmt.Errorf("workload: trace row %d: sender == recipient (%d)", i+1, s)
		case tx.Value <= 0:
			return nil, fmt.Errorf("workload: trace row %d: non-positive value %v", i+1, tx.Value)
		case tx.Arrival < 0:
			return nil, fmt.Errorf("workload: trace row %d: negative arrival %v", i+1, tx.Arrival)
		case tx.Deadline < tx.Arrival:
			return nil, fmt.Errorf("workload: trace row %d: deadline %v before arrival %v", i+1, tx.Deadline, tx.Arrival)
		}
		if len(txs) > 0 && tx.Arrival < txs[len(txs)-1].Arrival {
			return nil, fmt.Errorf("workload: trace row %d: arrivals not sorted (%v after %v)",
				i+1, tx.Arrival, txs[len(txs)-1].Arrival)
		}
		txs = append(txs, tx)
	}
	return txs, nil
}

// LoadTrace reads a trace CSV from disk.
func LoadTrace(path string) ([]Tx, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: trace: %w", err)
	}
	defer f.Close()
	return ReadTrace(f)
}

// MaxNode returns the highest endpoint id referenced by the trace (-1 for an
// empty trace); replay validation checks it against the topology.
func MaxNode(txs []Tx) graph.NodeID {
	max := graph.NodeID(-1)
	for _, tx := range txs {
		if tx.Sender > max {
			max = tx.Sender
		}
		if tx.Recipient > max {
			max = tx.Recipient
		}
	}
	return max
}
